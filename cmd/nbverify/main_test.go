package main

import (
	"bytes"
	"strings"
	"testing"
)

func verify(t *testing.T, n, m, r int, scheme, pattern string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(&buf, n, m, r, scheme, 50, 1, 8, false, true, pattern); err != nil {
		t.Fatalf("run(%s): %v", scheme, err)
	}
	return buf.String()
}

func TestVerifyPaperNonblocking(t *testing.T) {
	out := verify(t, 2, 4, 5, "paper", "")
	if !strings.Contains(out, "verdict: NONBLOCKING (exact") {
		t.Fatalf("output: %s", out)
	}
}

func TestVerifyFoldedBlockingWithWitness(t *testing.T) {
	out := verify(t, 2, 3, 5, "paper-folded", "")
	if !strings.Contains(out, "verdict: BLOCKING (exact") {
		t.Fatalf("output: %s", out)
	}
	if !strings.Contains(out, "blocked permutation:") {
		t.Fatal("witness missing")
	}
	if !strings.Contains(out, "violated link:") {
		t.Fatal("verbose link detail missing")
	}
}

func TestVerifyBaselinesBlock(t *testing.T) {
	for _, scheme := range []string{"dest-mod", "source-mod", "dest-switch-mod", "random-fixed"} {
		out := verify(t, 2, 4, 5, scheme, "")
		if !strings.Contains(out, "BLOCKING") {
			t.Errorf("%s: expected blocking, got: %s", scheme, out)
		}
	}
}

func TestVerifyAdaptiveSweeps(t *testing.T) {
	// Tiny: exhaustive sweep.
	out := verify(t, 2, 12, 4, "adaptive", "")
	if !strings.Contains(out, "exhaustive patterns") {
		t.Fatalf("output: %s", out)
	}
	if !strings.Contains(out, "no blocking found") {
		t.Fatal("adaptive should pass")
	}
	// Bigger: randomized sweep.
	out = verify(t, 3, 36, 9, "adaptive", "")
	if !strings.Contains(out, "randomized+structured patterns") {
		t.Fatalf("output: %s", out)
	}
}

func TestVerifyGreedyLocalBlocksInSweep(t *testing.T) {
	out := verify(t, 2, 4, 5, "greedy-local", "")
	if !strings.Contains(out, "BLOCKING") {
		t.Fatalf("greedy-local should block: %s", out)
	}
}

func TestVerifyGlobalPasses(t *testing.T) {
	out := verify(t, 2, 2, 5, "global", "")
	if !strings.Contains(out, "no blocking found") {
		t.Fatalf("global m=n should pass sweeps: %s", out)
	}
}

func TestVerifyExplicitPattern(t *testing.T) {
	out := verify(t, 2, 4, 5, "paper", "0->4 2->5")
	if !strings.Contains(out, "contention-free") {
		t.Fatalf("output: %s", out)
	}
	out = verify(t, 2, 3, 5, "paper-folded", "0->2 1->3")
	if !strings.Contains(out, "CONTENTION") {
		t.Fatalf("output: %s", out)
	}
}

func TestVerifyErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 2, 4, 5, "nosuch", 10, 1, 8, false, false, ""); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := run(&buf, 2, 3, 5, "paper", 10, 1, 8, false, false, ""); err == nil {
		t.Fatal("paper with m<n² should error")
	}
	if err := run(&buf, 2, 4, 5, "paper", 10, 1, 8, false, false, "bogus"); err == nil {
		t.Fatal("malformed pattern accepted")
	}
	if err := run(&buf, 2, 1, 4, "adaptive", 10, 1, 99, false, false, ""); err == nil {
		t.Fatal("adaptive m=1 sweep should surface route error")
	}
}

func TestVerifyFirstBlockedStopsEarly(t *testing.T) {
	// greedy-local on 2+4,5 blocks; first-blocked mode must stop at the
	// first contended pattern instead of sweeping all 10!.
	var buf bytes.Buffer
	if err := run(&buf, 2, 4, 5, "greedy-local", 50, 1, 10, true, false, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "exhaustive (first-blocked) patterns") {
		t.Fatalf("output: %s", out)
	}
	if !strings.Contains(out, "BLOCKING — 1 of ") {
		t.Fatalf("expected exactly one blocked pattern before stopping: %s", out)
	}
	if !strings.Contains(out, "first blocked permutation:") {
		t.Fatalf("witness missing: %s", out)
	}
}
