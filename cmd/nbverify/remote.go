package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/api"
)

// runRemote is nbverify's client mode: instead of deciding locally, it
// submits the network as an exhaustive sweep to a (possibly coordinating)
// nbserve node, follows the job's SSE event stream printing progress as
// shards complete, and renders the final VerifyReport with the same
// verdict lines the local engines print.
func runRemote(ctx context.Context, out io.Writer, remote string, n, m, r int, scheme string, sprayWidth, maxExh int, sym bool) error {
	if !strings.Contains(remote, "://") {
		remote = "http://" + remote
	}
	q := api.Request{N: n, M: m, R: r, Routing: scheme, SprayWidth: sprayWidth, MaxExhaustive: maxExh, SymReduce: sym}
	body, err := json.Marshal(&q)
	if err != nil {
		return err
	}
	acc, err := postSweep(ctx, remote, body)
	if err != nil {
		return err
	}
	if acc.Workers > 0 {
		fmt.Fprintf(out, "remote sweep %s: %d shards across %d workers (%d resumed)\n",
			acc.JobID, acc.Shards, acc.Workers, acc.Resumed)
	} else {
		fmt.Fprintf(out, "remote sweep %s: local engine on %s\n", acc.JobID, remote)
	}

	final, err := followEvents(ctx, out, remote+acc.EventsURL)
	if err != nil {
		return err
	}
	if final.State == "failed" {
		return fmt.Errorf("remote sweep failed: %s", final.Error)
	}
	var rep api.VerifyReport
	if err := json.Unmarshal(final.Result, &rep); err != nil {
		return fmt.Errorf("decode sweep result: %w", err)
	}
	if rep.Blocked > 0 {
		fmt.Fprintf(out, "verdict: BLOCKING — %d of %d exhaustive patterns contended\n", rep.Blocked, rep.Tested)
		fmt.Fprintf(out, "first blocked permutation: %s\n", rep.Witness)
	} else {
		fmt.Fprintf(out, "verdict: no blocking found over %d exhaustive patterns (max link load %d)\n",
			rep.Tested, rep.MaxLinkLoad)
	}
	return nil
}

func postSweep(ctx context.Context, remote string, body []byte) (*api.SweepAccepted, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, remote+"/v1/verify/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusAccepted {
		var er api.ErrorReport
		if json.Unmarshal(out, &er) == nil && er.Error != "" {
			return nil, fmt.Errorf("remote rejected sweep (%d): %s", resp.StatusCode, er.Error)
		}
		return nil, fmt.Errorf("remote rejected sweep: status %d", resp.StatusCode)
	}
	var acc api.SweepAccepted
	if err := json.Unmarshal(out, &acc); err != nil {
		return nil, fmt.Errorf("decode sweep acceptance: %w", err)
	}
	return &acc, nil
}

// followEvents consumes the job's SSE stream, printing one progress line
// per event, until the terminal `done` event arrives; it returns that
// event's status payload.
func followEvents(ctx context.Context, out io.Writer, url string) (*api.SweepStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("event stream: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var st api.SweepStatus
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
				return nil, fmt.Errorf("decode %s event: %w", event, err)
			}
			if event == "done" {
				return &st, nil
			}
			fmt.Fprintf(out, "progress: %d/%d shards, %d patterns swept, %d blocked\n",
				st.ShardsDone, st.ShardsTotal, st.Tested, st.Blocked)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("event stream ended without a done event")
}
