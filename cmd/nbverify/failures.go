package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/api"
	"repro/internal/campaign"
)

// failOpts carries the -fail-* flags of the campaign mode.
type failOpts struct {
	scenario string
	max      int
	samples  int
	trials   int
	schemes  string
	sim      bool
	workers  int
}

func (o failOpts) schemeList() []string {
	if strings.TrimSpace(o.schemes) == "" {
		return nil // campaign default: every scheme
	}
	var out []string
	for _, s := range strings.Split(o.schemes, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// runFailures runs a fault campaign locally and renders the degradation
// curves.
func runFailures(ctx context.Context, out io.Writer, n, m, r int, seed int64, o failOpts) error {
	rep, err := campaign.Run(ctx, campaign.Config{
		N: n, M: m, R: r,
		Scenario:    campaign.Scenario(o.scenario),
		MaxFailures: o.max,
		Samples:     o.samples,
		Trials:      o.trials,
		Schemes:     o.schemeList(),
		Seed:        seed,
		Workers:     o.workers,
		Sim:         o.sim,
	})
	if err != nil {
		return err
	}
	campaign.Render(out, rep)
	return nil
}

// runFailuresRemote submits the campaign to an nbserve node's /v1/failures
// endpoint and renders the returned report. The topology is spelled out in
// full (including m) so the remote result matches the local engine
// byte-for-byte for the same seed.
func runFailuresRemote(ctx context.Context, out io.Writer, remote string, n, m, r int, seed int64, o failOpts) error {
	if !strings.Contains(remote, "://") {
		remote = "http://" + remote
	}
	q := api.Request{
		N: n, M: m, R: r, Seed: api.SeedPtr(seed), Workers: o.workers,
		Failures: &api.FailuresRequest{
			Scenario:    o.scenario,
			MaxFailures: o.max,
			Samples:     o.samples,
			Trials:      o.trials,
			Schemes:     o.schemeList(),
			Sim:         o.sim,
		},
	}
	body, err := json.Marshal(&q)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, remote+"/v1/failures", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var er api.ErrorReport
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			return fmt.Errorf("remote rejected campaign (%d): %s", resp.StatusCode, er.Error)
		}
		return fmt.Errorf("remote rejected campaign: status %d", resp.StatusCode)
	}
	var rep api.FailuresReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("decode campaign report: %w", err)
	}
	campaign.Render(out, &rep)
	return nil
}
