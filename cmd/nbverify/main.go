// Command nbverify decides whether a folded-Clos network is nonblocking in
// the computer-communication sense (Definition 2 of the paper) under a
// chosen routing scheme.
//
// For single-path deterministic routers the decision is exact via the
// Lemma-1 all-pairs analysis; for adaptive routers it runs an exhaustive
// sweep on tiny networks and a seeded randomized+structured sweep
// otherwise. When the answer is "blocking" it prints a concrete blocked
// permutation.
//
// Usage:
//
//	nbverify -n 4 -m 16 -r 20 -routing paper        # exact: nonblocking
//	nbverify -n 4 -m 15 -r 20 -routing paper-folded # exact: blocking + witness
//	nbverify -n 2 -m 12 -r 4 -routing adaptive      # sweep
//	nbverify -n 4 -m 16 -r 20 -routing dest-mod     # exact: blocking
//	nbverify -n 4 -m 4  -r 20 -routing global       # centralized baseline
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/analysis"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	var (
		n       = flag.Int("n", 4, "hosts per bottom switch")
		m       = flag.Int("m", 16, "top-level switches")
		r       = flag.Int("r", 20, "bottom-level switches")
		scheme  = flag.String("routing", "paper", "paper | paper-folded | dest-mod | source-mod | dest-switch-mod | random-fixed | adaptive | greedy-local | global | spray")
		sprayW  = flag.Int("spray-width", 0, "spray path fan-out (0 or >= m sprays over all m trunks)")
		trials  = flag.Int("trials", 500, "random permutations for sweep-based verification")
		seed    = flag.Int64("seed", 1, "sweep seed")
		maxExh  = flag.Int("max-exhaustive", 9, "use exhaustive sweep up to this many hosts")
		firstB  = flag.Bool("first-blocked", false, "stop the exhaustive sweep at the first blocked pattern")
		sym     = flag.Bool("sym", false, "reduce the exhaustive sweep over the fabric's host-relabeling symmetry group (byte-identical verdict; enables sweeps past the factorial wall where the routing is equivariant)")
		verbose = flag.Bool("v", false, "print per-link detail for violations")
		pattern = flag.String("pattern", "", `check one explicit pattern, e.g. "0->4 2->5", instead of deciding nonblocking`)
		remote  = flag.String("remote", "", "nbserve address (host:port): submit the sweep to a remote node and stream its progress")

		failures = flag.Bool("failures", false, "run a fault-injection campaign instead of a verification: sweep failure counts, compare fault-routing schemes")
		failScen = flag.String("fail-scenario", "tops", "failure scenario: links | tops | tops-correlated | pods")
		failMax  = flag.Int("fail-max", 4, "largest failure count swept")
		failSam  = flag.Int("fail-samples", 3, "failure sets sampled per count")
		failTri  = flag.Int("fail-trials", 50, "random surviving-host permutations per failure set")
		failSch  = flag.String("fail-schemes", "", "comma-separated campaign schemes (default: all four)")
		failSim  = flag.Bool("fail-sim", false, "also measure open-loop accepted load per failure set")
		failWrk  = flag.Int("fail-workers", 0, "campaign worker pool size (0 or 1: sequential; output is identical either way)")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM cancels a long-running sweep instead of killing the
	// process mid-output; a cancelled run exits nonzero with context.Canceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *failures {
		o := failOpts{scenario: *failScen, max: *failMax, samples: *failSam,
			trials: *failTri, schemes: *failSch, sim: *failSim, workers: *failWrk}
		var err error
		if *remote != "" {
			err = runFailuresRemote(ctx, os.Stdout, *remote, *n, *m, *r, *seed, o)
		} else {
			err = runFailures(ctx, os.Stdout, *n, *m, *r, *seed, o)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "nbverify:", err)
			os.Exit(1)
		}
		return
	}

	if *remote != "" {
		if err := runRemote(ctx, os.Stdout, *remote, *n, *m, *r, *scheme, *sprayW, *maxExh, *sym); err != nil {
			fmt.Fprintln(os.Stderr, "nbverify:", err)
			os.Exit(1)
		}
		return
	}

	if err := runCtx(ctx, os.Stdout, *n, *m, *r, *scheme, *sprayW, *trials, *seed, *maxExh, *firstB, *sym, *verbose, *pattern); err != nil {
		fmt.Fprintln(os.Stderr, "nbverify:", err)
		os.Exit(1)
	}
}

// run keeps the pre-context signature for tests and in-process callers.
func run(out io.Writer, n, m, r int, scheme string, trials int, seed int64, maxExh int, firstBlocked, verbose bool, pattern string) error {
	return runCtx(context.Background(), out, n, m, r, scheme, 0, trials, seed, maxExh, firstBlocked, false, verbose, pattern)
}

func runCtx(ctx context.Context, out io.Writer, n, m, r int, scheme string, sprayWidth, trials int, seed int64, maxExh int, firstBlocked, sym, verbose bool, pattern string) error {
	f := topology.NewFoldedClos(n, m, r)
	fmt.Fprintf(out, "network: %s (%d hosts, %d switches)\n", f.Net.Name, f.Ports(), f.Switches())

	var router routing.Router
	switch scheme {
	case "paper":
		pr, err := routing.NewPaperDeterministic(f)
		if err != nil {
			return err
		}
		router = pr
	case "paper-folded":
		router = routing.NewPaperDeterministicFolded(f)
	case "dest-mod":
		router = routing.NewDestMod(f)
	case "source-mod":
		router = routing.NewSourceMod(f)
	case "dest-switch-mod":
		router = routing.NewDestSwitchMod(f)
	case "random-fixed":
		router = routing.NewRandomFixed(f, seed)
	case "adaptive":
		ad, err := routing.NewNonblockingAdaptive(f)
		if err != nil {
			return err
		}
		router = ad
	case "greedy-local":
		router = routing.NewGreedyLocal(f)
	case "global":
		router = routing.NewGlobalRearrangeable(f)
	case "spray":
		if sprayWidth <= 0 || sprayWidth >= m {
			router = routing.NewFullSpray(f)
		} else {
			ks, err := routing.NewKSpray(f, sprayWidth)
			if err != nil {
				return err
			}
			router = ks
		}
	default:
		return fmt.Errorf("unknown routing %q", scheme)
	}
	fmt.Fprintf(out, "routing: %s\n", router.Name())

	if pattern != "" {
		p, err := permutation.Parse(f.Ports(), pattern)
		if err != nil {
			return err
		}
		a, err := router.Route(p)
		if err != nil {
			return err
		}
		rep := analysis.Check(a)
		if rep.HasContention() {
			fmt.Fprintf(out, "pattern %s: CONTENTION — %v\n", p, rep.ContentionError())
		} else {
			fmt.Fprintf(out, "pattern %s: contention-free (max link load %d)\n", p, rep.MaxLoad)
		}
		return nil
	}

	if pr, ok := router.(routing.PairRouter); ok {
		res, err := analysis.CheckLemma1AllPairs(pr, f.Ports())
		if err != nil {
			return err
		}
		if res.Nonblocking {
			fmt.Fprintln(out, "verdict: NONBLOCKING (exact, Lemma-1 all-pairs analysis)")
			return nil
		}
		fmt.Fprintln(out, "verdict: BLOCKING (exact, Lemma-1 all-pairs analysis)")
		w, err := analysis.BlockingWitness(res, f.Ports())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "blocked permutation: %s\n", w)
		if verbose && res.Violation != nil {
			lk := f.Net.Link(res.Violation.Link)
			fmt.Fprintf(out, "violated link: %s -> %s with %d sources and %d destinations\n",
				f.Net.Node(lk.From).Label, f.Net.Node(lk.To).Label,
				len(res.Violation.Sources), len(res.Violation.Dests))
		}
		return nil
	}

	if sym {
		// -sym forces the exhaustive decision through the symmetry-reduced
		// engine: where the reduction applies, even hosts! past the
		// -max-exhaustive wall collapse to a feasible count of orbit
		// representatives. Past the wall with no applicable reduction there
		// is nothing safe to fall back to, so that is an error rather than
		// a silent factorial sweep.
		if st := analysis.SymApplicable(router, f.Ports(), n); !st.Applied && f.Ports() > maxExh {
			return fmt.Errorf("symmetry reduction not applicable (%s) and %d hosts exceed -max-exhaustive=%d; the full %d! sweep needs that explicit opt-in",
				st.Reason, f.Ports(), maxExh, f.Ports())
		}
		var res *analysis.SweepResult
		var stats *analysis.SymStats
		var err error
		kind := "exhaustive"
		if firstBlocked {
			kind = "exhaustive (first-blocked)"
			res, stats, err = analysis.SweepExhaustiveSymFirstBlockedCtx(ctx, router, f.Ports(), n)
		} else {
			res, stats, err = analysis.SweepExhaustiveSymCtx(ctx, router, f.Ports(), n)
		}
		if err != nil {
			return err
		}
		if stats.Applied {
			fmt.Fprintf(out, "symmetry: %d orbit representatives for %d patterns (group order %d)\n",
				stats.Orbits, permutation.CountFull(f.Ports()), stats.GroupOrder)
		} else {
			fmt.Fprintf(out, "symmetry: fell back to the full sweep: %s\n", stats.Reason)
		}
		report(out, res, kind)
		return res.RouteErr
	}
	if f.Ports() <= maxExh {
		if firstBlocked {
			res, err := analysis.SweepExhaustiveFirstBlockedCtx(ctx, router, f.Ports())
			if err != nil {
				return err
			}
			report(out, res, "exhaustive (first-blocked)")
			return res.RouteErr
		}
		res, err := analysis.SweepExhaustiveCtx(ctx, router, f.Ports())
		if err != nil {
			return err
		}
		report(out, res, "exhaustive")
		return res.RouteErr
	}
	res, err := analysis.SweepRandomCtx(ctx, router, f.Ports(), trials, seed)
	if err != nil {
		return err
	}
	report(out, res, "randomized+structured")
	return res.RouteErr
}

func report(out io.Writer, res *analysis.SweepResult, kind string) {
	if res.RouteErr != nil {
		fmt.Fprintf(out, "verdict: ROUTING FAILED during %s sweep: %v\n", kind, res.RouteErr)
		return
	}
	if res.Blocked == 0 {
		fmt.Fprintf(out, "verdict: no blocking found over %d %s patterns (max link load %d)\n",
			res.Tested, kind, res.MaxLinkLoad)
		return
	}
	fmt.Fprintf(out, "verdict: BLOCKING — %d of %d %s patterns contended\n", res.Blocked, res.Tested, kind)
	fmt.Fprintf(out, "first blocked permutation: %s\n", res.FirstBlocked)
}
