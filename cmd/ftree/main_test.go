package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSummaries(t *testing.T) {
	type cfg struct {
		topo                   string
		n, m, r, k, ports, lvl int
		want                   string
	}
	for _, c := range []cfg{
		{"ftree", 2, 4, 5, 2, 8, 2, "ftree(2+4,5): 10 hosts, 9 switches"},
		{"nonblocking", 4, 0, 20, 2, 8, 2, "ftree(4+16,20)"},
		{"mnt", 2, 4, 5, 2, 20, 2, "FT(20,2): 200 hosts, 30 switches"},
		{"kary", 2, 4, 5, 3, 8, 2, "3-ary 2-tree: 9 hosts, 6 switches"},
		{"clos", 3, 5, 4, 2, 8, 2, "Clos(3,5,4): 12 ports, strict-sense nonblocking iff m ≥ 2n−1 (true)"},
		{"three-level", 2, 4, 5, 2, 8, 2, "ftree3(2,12): 24 hosts, 52 switches"},
		{"crossbar", 2, 4, 5, 2, 16, 2, "crossbar(16): 16 hosts, 1 switch"},
	} {
		var buf bytes.Buffer
		m := c.m
		if c.topo == "nonblocking" {
			m = 0
		}
		if err := run(&buf, c.topo, c.n, m, c.r, c.k, c.ports, c.lvl, false); err != nil {
			t.Errorf("%s: %v", c.topo, err)
			continue
		}
		if !strings.Contains(buf.String(), c.want) {
			t.Errorf("%s: output %q missing %q", c.topo, buf.String(), c.want)
		}
		// The unidirectional Clos is not strongly connected (traffic
		// flows one way); every folded topology is.
		wantConn := "strongly connected: true"
		if c.topo == "clos" {
			wantConn = "strongly connected: false"
		}
		if !strings.Contains(buf.String(), wantConn) {
			t.Errorf("%s: connectivity line missing or wrong", c.topo)
		}
	}
}

func TestRunDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "ftree", 2, 2, 2, 2, 8, 2, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph \"ftree(2+2,2)\"") {
		t.Fatalf("DOT output wrong: %s", buf.String())
	}
}

func TestRunUnknownTopology(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "torus", 2, 2, 2, 2, 8, 2, false); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestRunNewTopologies(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "multi", 2, 0, 0, 2, 8, 3, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ftree3(n=2): 24 hosts, 52 switches") {
		t.Fatalf("multi output: %s", buf.String())
	}
	buf.Reset()
	if err := run(&buf, "benes", 2, 0, 0, 3, 8, 2, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "benes(8): 8 terminals, 5 stages") {
		t.Fatalf("benes output: %s", buf.String())
	}
}
