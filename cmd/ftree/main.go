// Command ftree builds and describes the interconnect topologies of the
// repository, and exports them as Graphviz DOT.
//
// Usage:
//
//	ftree -topo ftree -n 4 -m 16 -r 20            # describe ftree(4+16,20)
//	ftree -topo nonblocking -n 4 -r 20            # ftree(n+n²,r)
//	ftree -topo mnt -ports 20 -levels 2           # FT(20,2)
//	ftree -topo kary -k 4 -levels 3               # 4-ary 3-tree
//	ftree -topo clos -n 3 -m 5 -r 4               # Clos(3,5,4)
//	ftree -topo three-level -n 2                  # recursive 3-level
//	ftree -topo crossbar -ports 16
//	ftree -topo benes -k 3                        # Benes B(3), 8 terminals
//	ftree -topo multi -n 2 -levels 3              # generic L-level nonblocking
//	ftree -topo ftree -n 2 -m 4 -r 5 -dot         # DOT to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/topology"
)

func main() {
	var (
		topo   = flag.String("topo", "ftree", "topology: ftree | nonblocking | mnt | kary | clos | three-level | multi | benes | crossbar")
		n      = flag.Int("n", 2, "hosts per bottom switch (ftree/nonblocking/clos/three-level)")
		m      = flag.Int("m", 4, "top/middle switches (ftree/clos)")
		r      = flag.Int("r", 5, "bottom switches (ftree/nonblocking/clos); for three-level defaults to n³+n²")
		k      = flag.Int("k", 2, "arity (kary)")
		ports  = flag.Int("ports", 8, "switch ports (mnt) or host count (crossbar)")
		levels = flag.Int("levels", 2, "tree levels (mnt/kary)")
		dot    = flag.Bool("dot", false, "emit Graphviz DOT instead of a summary")
	)
	flag.Parse()

	if err := run(os.Stdout, *topo, *n, *m, *r, *k, *ports, *levels, *dot); err != nil {
		fmt.Fprintln(os.Stderr, "ftree:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, topo string, n, m, r, k, ports, levels int, dot bool) error {
	var (
		net      *topology.Network
		validate func() error
		summary  string
	)
	switch topo {
	case "ftree":
		f := topology.NewFoldedClos(n, m, r)
		net, validate = f.Net, f.Validate
		summary = fmt.Sprintf("%s: %d hosts, %d switches (%d bottom of radix %d, %d top of radix %d)",
			f.Net.Name, f.Ports(), f.Switches(), f.R, f.N+f.M, f.M, f.R)
	case "nonblocking":
		f := topology.NewFoldedClos(n, n*n, r)
		net, validate = f.Net, f.Validate
		summary = fmt.Sprintf("%s (nonblocking with the Theorem-3 routing): %d hosts, %d switches",
			f.Net.Name, f.Ports(), f.Switches())
	case "mnt":
		t := topology.NewMPortNTree(ports, levels)
		net, validate = t.Net, t.Validate
		summary = fmt.Sprintf("%s: %d hosts, %d switches (rearrangeably nonblocking; blocking under distributed control)",
			t.Net.Name, t.Hosts(), t.Switches())
	case "kary":
		t := topology.NewKAryNTree(k, levels)
		net, validate = t.Net, t.Validate
		summary = fmt.Sprintf("%s: %d hosts, %d switches", t.Net.Name, t.Hosts(), t.Switches())
	case "clos":
		c := topology.NewClos(n, m, r)
		net, validate = c.Net, c.Validate
		summary = fmt.Sprintf("%s: %d ports, strict-sense nonblocking iff m ≥ 2n−1 (%v), rearrangeable iff m ≥ n (%v) — telephone environment only",
			c.Net.Name, c.Ports(), m >= 2*n-1, m >= n)
	case "three-level":
		rr := r
		if rr == 5 { // the flag default: use the canonical size
			rr = n*n*n + n*n
		}
		t := topology.NewThreeLevelFtree(n, rr)
		net, validate = t.Net, t.Validate
		summary = fmt.Sprintf("%s: %d hosts, %d switches (recursive nonblocking construction)",
			t.Net.Name, t.Ports(), t.Switches())
	case "multi":
		t := topology.NewMultiFtree(n, levels)
		net, validate = t.Net, t.Validate
		summary = fmt.Sprintf("%s: %d hosts, %d switches of %d ports (generic recursive nonblocking)",
			t.Net.Name, t.Ports(), t.Switches(), t.SwitchRadix())
	case "benes":
		b := topology.NewBenes(k)
		net, validate = b.Net, b.Validate
		summary = fmt.Sprintf("%s: %d terminals, %d stages of %d 2x2 switches (rearrangeable via looping)",
			b.Net.Name, b.N, b.Stages(), b.N/2)
	case "crossbar":
		x := topology.NewCrossbar(ports)
		net, validate = x.Net, func() error { return nil }
		summary = fmt.Sprintf("%s: %d hosts, 1 switch (reference interconnect)", x.Net.Name, x.N)
	default:
		return fmt.Errorf("unknown topology %q", topo)
	}
	if err := validate(); err != nil {
		return err
	}
	if dot {
		return topology.WriteDOT(out, net)
	}
	fmt.Fprintln(out, summary)
	fmt.Fprintf(out, "nodes: %d, directed links: %d, strongly connected: %v\n",
		net.NumNodes(), net.NumLinks(), net.Connected())
	return nil
}
