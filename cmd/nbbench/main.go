// Command nbbench runs the repository's key simulator benchmarks through
// testing.Benchmark, emits a stable JSON report, and gates performance
// regressions against a committed baseline — the engine behind the CI
// bench-gate job (see .github/workflows/ci.yml and EXPERIMENTS.md).
//
// The benchmarks mirror their bench_test.go namesakes: the randomized and
// exhaustive verification sweeps (the flat-array contention-accounting hot
// path), the incremental delta sweep over a precomputed route table, the
// full-load open-loop run (the dense event core hot path), and a 4-trial
// closed-loop driver pass. DesignPlanCatalog additionally gates the
// nbdesign planner hot path (enumeration, closed forms, dominance pruning,
// monotone group searches) against a stub verifier.
//
// Usage:
//
//	nbbench -out BENCH_sim.json                  # measure, write baseline
//	nbbench -baseline BENCH_sim.json             # measure, gate (CI)
//	nbbench -baseline BENCH_sim.json -out fresh.json
//	nbbench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The gate fails when any benchmark exceeds the baseline ns/op by more
// than -max-ns-regress (default 25%) or allocates more per op than the
// baseline at all: allocation counts are deterministic, so any increase
// is a real regression. The ns/op comparison only runs when the baseline
// was recorded by the same Go toolchain: on a version mismatch the gate
// prints a warning and passes, since codegen differences between
// toolchains are not regressions.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	fclos "repro"
	"repro/internal/api"
	"repro/internal/store"
)

// benchSchemaVersion identifies the BENCH_sim.json layout; bump on any
// incompatible change to benchFile/benchResult.
const benchSchemaVersion = 1

// benchResult is one benchmark's measurement: min-of-reps timing, the
// deterministic allocation profile, and a payload of simulator metrics
// (accepted load, utilization, makespans) that double as correctness
// anchors for the numbers being timed.
type benchResult struct {
	Name     string             `json:"name"`
	NsPerOp  float64            `json:"ns_op"`
	BytesOp  int64              `json:"bytes_op"`
	AllocsOp int64              `json:"allocs_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// benchFile is the on-disk schema of BENCH_sim.json.
type benchFile struct {
	Schema  int           `json:"schema"`
	Go      string        `json:"go"`
	Results []benchResult `json:"results"`
}

// benchmark pairs a benchmark body with the deterministic metrics payload
// its setup computed.
type benchmark struct {
	name string
	fn   func(b *testing.B)
	met  map[string]float64
}

// buildBenchmarks constructs the gated benchmark set. Configurations
// mirror bench_test.go exactly so `go test -bench` and nbbench time the
// same work.
func buildBenchmarks() ([]benchmark, error) {
	var benches []benchmark

	// SweepRandom: randomized Lemma-1 verification on the Table-I network.
	{
		f := fclos.NewFoldedClos(4, 16, 20)
		r, err := fclos.NewPaperDeterministic(f)
		if err != nil {
			return nil, err
		}
		hosts := f.Ports()
		benches = append(benches, benchmark{
			name: "SweepRandom",
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if !fclos.SweepRandom(r, hosts, 10, 1).Nonblocking() {
						b.Fatal("paper routing blocked")
					}
				}
			},
			met: map[string]float64{"trials": 10},
		})
	}

	// SweepExhaustive: all 8! permutations of ftree(4+16, 2).
	{
		f := fclos.NewFoldedClos(4, 16, 2)
		r, err := fclos.NewPaperDeterministic(f)
		if err != nil {
			return nil, err
		}
		hosts := f.Ports()
		benches = append(benches, benchmark{
			name: "SweepExhaustive",
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if !fclos.SweepExhaustive(r, hosts).Nonblocking() {
						b.Fatal("paper routing blocked")
					}
				}
			},
		})
	}

	// SweepExhaustiveDelta: all 9! permutations of ftree(3+9, 3) through
	// the incremental engine — one route-table build, then O(path length)
	// per permutation. A factorial step up from SweepExhaustive (362880
	// patterns vs 40320) that stays fast only while the delta path does.
	{
		f := fclos.NewFoldedClos(3, 9, 3)
		r, err := fclos.NewPaperDeterministic(f)
		if err != nil {
			return nil, err
		}
		hosts := f.Ports()
		benches = append(benches, benchmark{
			name: "SweepExhaustiveDelta",
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if !fclos.SweepExhaustive(r, hosts).Nonblocking() {
						b.Fatal("paper routing blocked")
					}
				}
			},
			met: map[string]float64{"patterns": 362880},
		})
	}

	// SweepExhaustiveSymN9: the symmetry-reduced n=9 certificate — all
	// 362880 patterns of ftree(3+5, 3) under full spray collapse to 443
	// orbit representatives (group S_3 ≀ S_3, order 1296). The verdict must
	// stay exact: 345168 blocked patterns, scaled from orbit counters.
	// Gates both the orbit enumerator and the delta-checker integration;
	// compare against SweepExhaustiveDelta for the frontier speedup.
	{
		f := fclos.NewFoldedClos(3, 5, 3)
		r := fclos.NewFullSpray(f)
		hosts := f.Ports()
		res, stats := fclos.SweepExhaustiveSym(r, hosts, 3)
		if !stats.Applied {
			return nil, fmt.Errorf("sym sweep fell back at n=9: %s", stats.Reason)
		}
		benches = append(benches, benchmark{
			name: "SweepExhaustiveSymN9",
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, stats := fclos.SweepExhaustiveSym(r, hosts, 3)
					if !stats.Applied || res.Blocked != 345168 || res.Tested != 362880 {
						b.Fatalf("sym sweep drifted: applied=%t blocked=%d tested=%d",
							stats.Applied, res.Blocked, res.Tested)
					}
				}
			},
			met: map[string]float64{
				"orbits":      float64(stats.Orbits),
				"patterns":    float64(res.Tested),
				"group_order": float64(stats.GroupOrder),
			},
		})
	}

	// OpenLoop: one full-load open-loop run on the nonblocking network.
	{
		f := fclos.NewNonblockingFtree(3, 12)
		r, err := fclos.NewPaperDeterministic(f)
		if err != nil {
			return nil, err
		}
		p := fclos.SwitchShiftPerm(3, 12, 1)
		dst := make([]int, p.N())
		for i := 0; i < p.N(); i++ {
			dst[i] = p.Dst(i)
		}
		pairs := fclos.PermPairs(dst)
		cfg := fclos.OpenLoopConfig{
			PacketFlits: 4, Rate: 1.0, WarmupPackets: 10, MeasuredPackets: 50,
			Seed: 1, Arbiter: fclos.ArbiterRoundRobin,
		}
		// One metered run anchors the numbers the benchmark re-validates.
		mcfg := cfg
		mcfg.Collector = fclos.NewMetricsCollector()
		mres, err := fclos.OpenLoop(f.Net, pairs, fclos.PairPathsFunc(r), mcfg)
		if err != nil {
			return nil, err
		}
		benches = append(benches, benchmark{
			name: "OpenLoop",
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := fclos.OpenLoop(f.Net, pairs, fclos.PairPathsFunc(r), cfg)
					if err != nil {
						b.Fatal(err)
					}
					if res.AcceptedLoad < 0.9 {
						b.Fatalf("nonblocking accepted %.2f", res.AcceptedLoad)
					}
				}
			},
			met: map[string]float64{
				"accepted_load":        mres.AcceptedLoad,
				"p99_latency":          float64(mres.P99Latency),
				"max_link_utilization": mres.Metrics.MaxUtilization(),
			},
		})
	}

	// ClosedLoop4Trial: the sequential trial driver over 4 random
	// permutations.
	{
		f := fclos.NewNonblockingFtree(3, 12)
		r, err := fclos.NewPaperDeterministic(f)
		if err != nil {
			return nil, err
		}
		hosts := f.Ports()
		cfg := fclos.SimConfig{PacketFlits: 4, PacketsPerPair: 8, Arbiter: fclos.ArbiterRoundRobin}
		trials, err := fclos.RunTrials(f.Net, r, hosts, 4, 1, cfg)
		if err != nil {
			return nil, err
		}
		var makespan int64
		for _, res := range trials {
			makespan += res.Makespan
		}
		benches = append(benches, benchmark{
			name: "ClosedLoop4Trial",
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					results, err := fclos.RunTrials(f.Net, r, hosts, 4, 1, cfg)
					if err != nil {
						b.Fatal(err)
					}
					for _, res := range results {
						if res.Delivered != res.TotalPackets {
							b.Fatal("lost packets")
						}
					}
				}
			},
			met: map[string]float64{"total_makespan": float64(makespan)},
		})
	}

	// DesignPlanCatalog: the nbdesign three-tier planner — enumeration,
	// cost-ascending sort, closed-form decisions, dominance pruning, and
	// the monotone group binary searches with their probe memo — over a
	// 576-candidate ftree catalog. Probes answer from a closed-form stub
	// (nonblocking iff m ≥ n·r, the verified dest-mod truth) so the
	// benchmark times the planner itself, not the sweep engines, and every
	// counter and allocation is deterministic.
	{
		cat := &fclos.DesignCatalog{
			Families: []string{"ftree"},
			Routers:  []string{"dest-mod", "dest-switch-mod"},
			N:        &api.DesignRange{Min: 2, Max: 4},
			R:        &api.DesignRange{Min: 3, Max: 8},
			M:        &api.DesignRange{Min: 1, Max: 16},
			Verify:   &api.DesignVerify{MaxHosts: 32, MaxExhaustive: 7, Trials: 100},
		}
		stub := func(_ context.Context, q *api.Request) (*api.VerifyReport, error) {
			rep := &api.VerifyReport{Method: "lemma1-exact", Exact: true, Verdict: "blocking"}
			if q.M >= q.N*q.R {
				rep.Verdict = "nonblocking"
			}
			return rep, nil
		}
		plan := func() (*fclos.DesignReport, error) {
			memo := store.NewMemory(1024)
			defer memo.Close()
			return fclos.PlanDesignSpace(context.Background(), cat, fclos.DesignOptions{Verify: stub, Memo: memo})
		}
		rep, err := plan()
		if err != nil {
			return nil, err
		}
		if rep.Candidates != 576 {
			return nil, fmt.Errorf("design catalog drifted: %d candidates, want 576", rep.Candidates)
		}
		benches = append(benches, benchmark{
			name: "DesignPlanCatalog",
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					got, err := plan()
					if err != nil {
						b.Fatal(err)
					}
					if got.Candidates != rep.Candidates || got.Tier0 != rep.Tier0 ||
						got.Pruned != rep.Pruned || len(got.Frontier) != len(rep.Frontier) {
						b.Fatalf("plan drifted: candidates=%d tier0=%d pruned=%d frontier=%d",
							got.Candidates, got.Tier0, got.Pruned, len(got.Frontier))
					}
				}
			},
			met: map[string]float64{
				"candidates":      float64(rep.Candidates),
				"tier0":           float64(rep.Tier0),
				"tier1":           float64(rep.Tier1),
				"tier2":           float64(rep.Tier2),
				"pruned":          float64(rep.Pruned),
				"groups":          float64(rep.Groups),
				"fresh_runs":      float64(rep.FreshRuns),
				"frontier_points": float64(len(rep.Frontier)),
			},
		})
	}

	// FaultCampaign: the fault-injection campaign engine — failure-set
	// sampling, per-set router rebuilds across all four fault-routing
	// schemes, and the pattern-analysis fan-out — sequentially on a small
	// fabric (the fault-smoke configuration without the simulator). The
	// anchored degradation sums pin the curves the benchmark re-times.
	{
		cfg := fclos.CampaignConfig{
			N: 2, M: 8, R: 4, Scenario: "tops",
			MaxFailures: 3, Samples: 2, Trials: 10, Seed: 1,
		}
		rep, err := fclos.RunFaultCampaign(context.Background(), cfg)
		if err != nil {
			return nil, err
		}
		var degraded float64
		for _, c := range rep.Curves {
			degraded += c.Points[len(c.Points)-1].DegradedFrac
		}
		benches = append(benches, benchmark{
			name: "FaultCampaign",
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					got, err := fclos.RunFaultCampaign(context.Background(), cfg)
					if err != nil {
						b.Fatal(err)
					}
					var d float64
					for _, c := range got.Curves {
						d += c.Points[len(c.Points)-1].DegradedFrac
					}
					if len(got.Curves) != len(rep.Curves) || d != degraded {
						b.Fatalf("campaign drifted: %d curves, final degraded sum %.4f (want %d, %.4f)",
							len(got.Curves), d, len(rep.Curves), degraded)
					}
				}
			},
			met: map[string]float64{
				"schemes":            float64(len(rep.Curves)),
				"cells":              float64(len(rep.Curves) * (1 + cfg.MaxFailures*cfg.Samples)),
				"sum_final_degraded": degraded,
			},
		})
	}
	return benches, nil
}

// measure runs bm reps times under testing.Benchmark and keeps the
// minimum per-op numbers: min-of-N filters scheduler noise, which only
// ever slows a run down.
func measure(bm benchmark, reps int) benchResult {
	out := benchResult{Name: bm.name, Metrics: bm.met}
	for i := 0; i < reps; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			bm.fn(b)
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if i == 0 || ns < out.NsPerOp {
			out.NsPerOp = ns
		}
		if a := r.AllocsPerOp(); i == 0 || a < out.AllocsOp {
			out.AllocsOp = a
		}
		if by := r.AllocedBytesPerOp(); i == 0 || by < out.BytesOp {
			out.BytesOp = by
		}
	}
	return out
}

// gate compares fresh against baseline and returns one violation string
// per regression: ns/op beyond the threshold fraction, any allocs/op
// increase, or a baseline benchmark missing from the fresh run.
func gate(baseline, fresh *benchFile, nsThreshold float64) []string {
	var violations []string
	byName := make(map[string]benchResult, len(fresh.Results))
	for _, r := range fresh.Results {
		byName[r.Name] = r
	}
	for _, b := range baseline.Results {
		f, ok := byName[b.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: in baseline but not measured", b.Name))
			continue
		}
		if b.NsPerOp > 0 && f.NsPerOp > b.NsPerOp*(1+nsThreshold) {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.0f%%",
				b.Name, f.NsPerOp, b.NsPerOp, nsThreshold*100))
		}
		if f.AllocsOp > b.AllocsOp {
			violations = append(violations, fmt.Sprintf(
				"%s: %d allocs/op regresses baseline %d allocs/op",
				b.Name, f.AllocsOp, b.AllocsOp))
		}
	}
	return violations
}

func readBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if bf.Schema != benchSchemaVersion {
		return nil, fmt.Errorf("%s: schema %d, want %d", path, bf.Schema, benchSchemaVersion)
	}
	return &bf, nil
}

func writeBenchFile(path string, bf *benchFile) error {
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func run(out io.Writer, outPath, baselinePath, cpuProfile, memProfile string, reps int, nsThreshold float64) error {
	benches, err := buildBenchmarks()
	if err != nil {
		return err
	}
	if cpuProfile != "" {
		pf, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
	}
	fresh := &benchFile{Schema: benchSchemaVersion, Go: runtime.Version()}
	for _, bm := range benches {
		res := measure(bm, reps)
		fmt.Fprintf(out, "%-20s %12.0f ns/op %10d B/op %8d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesOp, res.AllocsOp)
		fresh.Results = append(fresh.Results, res)
	}
	if cpuProfile != "" {
		pprof.StopCPUProfile()
		fmt.Fprintf(out, "wrote CPU profile %s\n", cpuProfile)
	}
	if memProfile != "" {
		pf, err := os.Create(memProfile)
		if err != nil {
			return err
		}
		runtime.GC() // settle the steady-state heap before snapshotting
		if err := pprof.WriteHeapProfile(pf); err != nil {
			pf.Close()
			return err
		}
		if err := pf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote heap profile %s\n", memProfile)
	}
	if outPath != "" {
		if err := writeBenchFile(outPath, fresh); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", outPath)
	}
	if baselinePath != "" {
		baseline, err := readBenchFile(baselinePath)
		if err != nil {
			return err
		}
		if baseline.Go != fresh.Go {
			// ns/op differences between toolchains are codegen, not
			// regressions; comparing across them would gate on noise.
			fmt.Fprintf(out, "gate skipped: baseline %s was recorded with %s, running %s (re-record the baseline to re-arm the gate)\n",
				baselinePath, baseline.Go, fresh.Go)
			return nil
		}
		if violations := gate(baseline, fresh, nsThreshold); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(out, "REGRESSION:", v)
			}
			return fmt.Errorf("%d benchmark regression(s) against %s", len(violations), baselinePath)
		}
		fmt.Fprintf(out, "gate passed against %s (ns/op threshold %.0f%%, allocs exact)\n",
			baselinePath, nsThreshold*100)
	}
	return nil
}

func main() {
	var (
		outPath      = flag.String("out", "", "write the measured results as JSON to this path")
		baselinePath = flag.String("baseline", "", "gate the measured results against this JSON baseline")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the measured benchmark bodies to this path")
		memProfile   = flag.String("memprofile", "", "write a post-GC heap profile to this path after measuring")
		reps         = flag.Int("reps", 3, "benchmark repetitions; min-of-reps is reported")
		nsRegress    = flag.Float64("max-ns-regress", 0.25, "allowed fractional ns/op regression before the gate fails")
	)
	flag.Parse()
	if err := run(os.Stdout, *outPath, *baselinePath, *cpuProfile, *memProfile, *reps, *nsRegress); err != nil {
		fmt.Fprintln(os.Stderr, "nbbench:", err)
		os.Exit(1)
	}
}
