package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func result(name string, ns float64, allocs int64) benchResult {
	return benchResult{Name: name, NsPerOp: ns, AllocsOp: allocs}
}

func file(results ...benchResult) *benchFile {
	return &benchFile{Schema: benchSchemaVersion, Go: "go-test", Results: results}
}

func TestGatePassesAgainstItself(t *testing.T) {
	bf := file(result("OpenLoop", 1000, 340), result("SweepRandom", 500, 933))
	if v := gate(bf, bf, 0.25); len(v) != 0 {
		t.Fatalf("self-comparison produced violations: %v", v)
	}
}

func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	baseline := file(result("OpenLoop", 1000, 340))
	// A 2x slowdown is far past the 25% threshold and must trip the gate.
	slow := file(result("OpenLoop", 2000, 340))
	v := gate(baseline, slow, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "ns/op") {
		t.Fatalf("2x slowdown not caught: %v", v)
	}
	// 20% stays inside the threshold.
	if v := gate(baseline, file(result("OpenLoop", 1200, 340)), 0.25); len(v) != 0 {
		t.Fatalf("20%% regression tripped a 25%% gate: %v", v)
	}
	// Just past the threshold trips it.
	if v := gate(baseline, file(result("OpenLoop", 1251, 340)), 0.25); len(v) != 1 {
		t.Fatalf("25.1%% regression not caught: %v", v)
	}
}

func TestGateFailsOnAnyAllocRegression(t *testing.T) {
	baseline := file(result("OpenLoop", 1000, 340))
	v := gate(baseline, file(result("OpenLoop", 1000, 341)), 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "allocs/op") {
		t.Fatalf("+1 alloc not caught: %v", v)
	}
	// Fewer allocations (or faster runs) are improvements, not violations.
	if v := gate(baseline, file(result("OpenLoop", 600, 100)), 0.25); len(v) != 0 {
		t.Fatalf("improvement flagged: %v", v)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	baseline := file(result("OpenLoop", 1000, 340), result("SweepRandom", 500, 933))
	v := gate(baseline, file(result("OpenLoop", 1000, 340)), 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "not measured") {
		t.Fatalf("dropped benchmark not caught: %v", v)
	}
	// Extra fresh benchmarks (new additions) are fine.
	fresh := file(result("OpenLoop", 1000, 340), result("SweepRandom", 500, 933), result("New", 1, 1))
	if v := gate(baseline, fresh, 0.25); len(v) != 0 {
		t.Fatalf("new benchmark flagged: %v", v)
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := file(
		benchResult{Name: "OpenLoop", NsPerOp: 3465239, BytesOp: 557488, AllocsOp: 340,
			Metrics: map[string]float64{"accepted_load": 1}},
	)
	if err := writeBenchFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := readBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.Results[0].Name != "OpenLoop" ||
		got.Results[0].AllocsOp != 340 || got.Results[0].Metrics["accepted_load"] != 1 {
		t.Fatalf("round trip mangled: %+v", got)
	}
	// A future-schema file must be rejected, not silently compared.
	bad := file()
	bad.Schema = benchSchemaVersion + 1
	if err := writeBenchFile(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := readBenchFile(path); err == nil {
		t.Fatal("wrong schema version accepted")
	}
}

func TestMeasureMinOfReps(t *testing.T) {
	// A trivial deterministic benchmark: measure must report its (zero)
	// allocation profile and a positive timing.
	calls := 0
	bm := benchmark{
		name: "Trivial",
		fn: func(b *testing.B) {
			calls++
			s := 0
			for i := 0; i < b.N; i++ {
				s += i
			}
			if s < 0 {
				b.Fatal("impossible")
			}
		},
		met: map[string]float64{"k": 1},
	}
	res := measure(bm, 2)
	if calls < 2 {
		t.Fatalf("measure ran the benchmark %d times, want at least 2 reps", calls)
	}
	if res.Name != "Trivial" || res.NsPerOp <= 0 || res.AllocsOp != 0 || res.Metrics["k"] != 1 {
		t.Fatalf("unexpected measurement: %+v", res)
	}
}

func TestBuildBenchmarksConstructs(t *testing.T) {
	benches, err := buildBenchmarks()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SweepRandom", "SweepExhaustive", "SweepExhaustiveDelta", "SweepExhaustiveSymN9", "OpenLoop", "ClosedLoop4Trial", "DesignPlanCatalog", "FaultCampaign"}
	if len(benches) != len(want) {
		t.Fatalf("got %d benchmarks, want %d", len(benches), len(want))
	}
	for i, bm := range benches {
		if bm.name != want[i] {
			t.Fatalf("benchmark %d is %q, want %q", i, bm.name, want[i])
		}
	}
	// The open-loop setup run must have observed a clean nonblocking
	// network: full acceptance, no link over capacity.
	var open benchmark
	for _, bm := range benches {
		if bm.name == "OpenLoop" {
			open = bm
		}
	}
	if open.met["accepted_load"] < 0.9 {
		t.Fatalf("open-loop accepted load %v", open.met["accepted_load"])
	}
	if u := open.met["max_link_utilization"]; u <= 0 || u > 1 {
		t.Fatalf("open-loop max utilization %v outside (0,1]", u)
	}
	// The sym setup run must have engaged the reduction with the pinned
	// orbit count — a fallback would time the wrong engine.
	var symBm benchmark
	for _, bm := range benches {
		if bm.name == "SweepExhaustiveSymN9" {
			symBm = bm
		}
	}
	if symBm.met["orbits"] != 443 || symBm.met["patterns"] != 362880 || symBm.met["group_order"] != 1296 {
		t.Fatalf("sym benchmark metrics drifted: %+v", symBm.met)
	}
	// The design-planner setup run must have exercised all three tiers of
	// machinery (closed forms, group searches with stub probes, pruning)
	// over the pinned catalog — a tier-2-free plan would time only the
	// enumerator.
	var designBm benchmark
	for _, bm := range benches {
		if bm.name == "DesignPlanCatalog" {
			designBm = bm
		}
	}
	if designBm.met["candidates"] != 576 {
		t.Fatalf("design benchmark catalog drifted: %+v", designBm.met)
	}
	for _, k := range []string{"tier0", "tier2", "pruned", "groups", "fresh_runs", "frontier_points"} {
		if designBm.met[k] <= 0 {
			t.Fatalf("design benchmark %s = %v, want > 0 (metrics %+v)", k, designBm.met[k], designBm.met)
		}
	}
	// The campaign setup run must have compared all four fault-routing
	// schemes and observed real degradation at the sweep's edge — a clean
	// curve would mean the failure injection went missing.
	var faultBm benchmark
	for _, bm := range benches {
		if bm.name == "FaultCampaign" {
			faultBm = bm
		}
	}
	if faultBm.met["schemes"] != 4 {
		t.Fatalf("fault benchmark scheme count drifted: %+v", faultBm.met)
	}
	if faultBm.met["sum_final_degraded"] <= 0 {
		t.Fatalf("fault benchmark saw no degradation at max failures: %+v", faultBm.met)
	}
}

func TestRunGateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	// One quick rep: write a baseline, then gate a second measurement
	// against it with a generous threshold (both runs share one machine
	// state, so only allocs — which are deterministic — are tight).
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	var buf bytes.Buffer
	if err := run(&buf, base, "", "", "", 1, 0.25); err != nil {
		t.Fatalf("baseline run: %v\n%s", err, buf.String())
	}
	buf.Reset()
	if err := run(&buf, "", base, "", "", 1, 5.0); err != nil {
		t.Fatalf("gate run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "gate passed") {
		t.Fatalf("output: %s", buf.String())
	}
	// Doctor the baseline to simulate a 2x speedup in the past — i.e. the
	// fresh run is a 2x slowdown — and the same gate must now fail.
	bf, err := readBenchFile(base)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bf.Results {
		bf.Results[i].NsPerOp /= 100
	}
	if err := writeBenchFile(base, bf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run(&buf, "", base, "", "", 1, 0.25); err == nil {
		t.Fatalf("gate passed against a 100x-faster baseline:\n%s", buf.String())
	}
	// Same doctored (100x-faster) baseline, but recorded by a different Go
	// toolchain: the ns/op comparison is meaningless across toolchains, so
	// the gate must warn and pass instead of failing.
	bf.Go = "go0.0-other"
	if err := writeBenchFile(base, bf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run(&buf, "", base, "", "", 1, 0.25); err != nil {
		t.Fatalf("version-mismatched gate failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "gate skipped") {
		t.Fatalf("expected mismatch warning, got:\n%s", buf.String())
	}
	// Profiles: both flags must produce non-empty files.
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	buf.Reset()
	if err := run(&buf, "", "", cpu, mem, 1, 0.25); err != nil {
		t.Fatalf("profiled run: %v\n%s", err, buf.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}
