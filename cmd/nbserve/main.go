// Command nbserve exposes the paper's verification and simulation engines
// as a concurrent HTTP JSON service: nonblocking decisions (Lemma-1 exact
// and sweep-based), adversarial worst-case pattern search, and the
// crossbar-relative packet simulations, all behind a bounded worker pool
// with an LRU result cache. Design-space tools that issue many small
// (n, m, r, routing) queries get concurrency, caching, deadlines, and
// cancellation that the batch CLIs cannot offer.
//
// Usage:
//
//	nbserve -addr :8080 -workers 8 -queue 128
//
//	curl -s localhost:8080/v1/verify -d '{"n":4,"m":16,"r":20,"routing":"paper"}'
//	curl -s localhost:8080/v1/worstcase -d '{"n":4,"m":4,"r":8,"routing":"dest-mod"}'
//	curl -s localhost:8080/v1/sim -d '{"n":2,"m":4,"r":6,"routing":"paper","pattern":"shift"}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM trigger a graceful shutdown: listeners close, in-flight
// jobs drain, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 4, "concurrent job executors")
		queue      = flag.Int("queue", 64, "queued-job bound; overflow returns 429")
		cacheSize  = flag.Int("cache", 256, "LRU result-cache entries")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
		drain      = flag.Duration("drain", time.Minute, "shutdown drain window for in-flight jobs")
	)
	flag.Parse()

	s := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheSize,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "nbserve: listening on %s (%d workers, queue %d, cache %d)\n",
		*addr, *workers, *queue, *cacheSize)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "nbserve: shutting down, draining in-flight jobs")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Shutdown closes the listener and waits for in-flight handlers,
		// which block on their jobs; Close then joins the worker pool.
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "nbserve: drain window expired:", err)
		}
		s.Close()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "nbserve:", err)
			os.Exit(1)
		}
	}
}
