// Command nbserve exposes the paper's verification and simulation engines
// as a concurrent HTTP JSON service: nonblocking decisions (Lemma-1 exact
// and sweep-based), adversarial worst-case pattern search, and the
// crossbar-relative packet simulations, all behind a bounded worker pool
// with an LRU result cache. Design-space tools that issue many small
// (n, m, r, routing) queries get concurrency, caching, deadlines, and
// cancellation that the batch CLIs cannot offer.
//
// Usage:
//
//	nbserve -addr :8080 -workers 8 -queue 128
//	nbserve -store file -store-path nbserve-results.log   # cache survives restarts
//	nbserve -coordinator -workers-list host1:8080,host2:8080   # distributed sweeps
//
//	curl -s localhost:8080/v1/verify -d '{"n":4,"m":16,"r":20,"routing":"paper"}'
//	curl -s localhost:8080/v1/verify/batch -d '{"items":[{"n":2,"r":4},{"n":2,"r":5}]}'
//	curl -s localhost:8080/v1/worstcase -d '{"n":4,"m":4,"r":8,"routing":"dest-mod"}'
//	curl -s localhost:8080/v1/sim -d '{"n":2,"m":4,"r":6,"routing":"paper","pattern":"shift"}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM trigger a graceful shutdown: listeners close, in-flight
// jobs drain, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 4, "concurrent job executors")
		queue      = flag.Int("queue", 64, "queued-job bound; overflow returns 429")
		cacheSize  = flag.Int("cache", 256, "result-store entry bound (both backends)")
		storeKind  = flag.String("store", "memory", "result-store backend: memory | file")
		storePath  = flag.String("store-path", "nbserve-results.log", "file-store log path (with -store file)")
		batchMax   = flag.Int("batch-max", 256, "item bound for one /v1/verify/batch call")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
		drain      = flag.Duration("drain", time.Minute, "shutdown drain window for in-flight jobs")

		coordinator = flag.Bool("coordinator", false, "act as a distributed-sweep coordinator (requires -workers-list)")
		workersList = flag.String("workers-list", "", "comma-separated worker nbserve addresses (host:port) for -coordinator")
		shardTO     = flag.Duration("shard-timeout", 2*time.Minute, "per-shard dispatch deadline (with -coordinator)")
		shardRetry  = flag.Int("shard-retries", 3, "re-dispatch attempts per failed shard (with -coordinator)")
		shardConc   = flag.Int("shard-concurrency", 2, "in-flight shards per worker (with -coordinator)")
	)
	flag.Parse()

	var coord *server.CoordinatorConfig
	if *coordinator {
		var workerAddrs []string
		for _, w := range strings.Split(*workersList, ",") {
			if w = strings.TrimSpace(w); w != "" {
				workerAddrs = append(workerAddrs, w)
			}
		}
		if len(workerAddrs) == 0 {
			fmt.Fprintln(os.Stderr, "nbserve: -coordinator requires a non-empty -workers-list")
			os.Exit(1)
		}
		coord = &server.CoordinatorConfig{
			Workers:          workerAddrs,
			ShardTimeout:     *shardTO,
			ShardRetries:     *shardRetry,
			ShardConcurrency: *shardConc,
		}
	}

	var st store.Store
	switch *storeKind {
	case "memory":
		// Leave Config.Store nil; the server builds its own memory LRU.
	case "file":
		fs, err := store.NewFile(*storePath, *cacheSize)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nbserve:", err)
			os.Exit(1)
		}
		st = fs
		fmt.Fprintf(os.Stderr, "nbserve: file store %s (%d entries replayed)\n", *storePath, fs.Len())
	default:
		fmt.Fprintf(os.Stderr, "nbserve: unknown -store %q (memory | file)\n", *storeKind)
		os.Exit(1)
	}

	s := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheSize,
		Store:          st,
		MaxBatchItems:  *batchMax,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Coordinator:    coord,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "nbserve: listening on %s (%d workers, queue %d, %s store, %d entries)\n",
		*addr, *workers, *queue, *storeKind, *cacheSize)
	if coord != nil {
		fmt.Fprintf(os.Stderr, "nbserve: coordinator for %d workers (%d shards each in flight)\n",
			len(coord.Workers), coord.ShardConcurrency)
	}

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "nbserve: shutting down, draining in-flight jobs")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Shutdown closes the listener and waits for in-flight handlers,
		// which block on their jobs; Close then joins the worker pool.
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "nbserve: drain window expired:", err)
		}
		s.Close()
	case err := <-errCh:
		s.Close()
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "nbserve:", err)
			os.Exit(1)
		}
	}
}
