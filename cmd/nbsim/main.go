// Command nbsim runs the cycle-accurate packet simulator on a folded-Clos
// or m-port n-tree network and reports permutation throughput against the
// ideal crossbar — the experiment behind the paper's motivation ([5], [7])
// and its central claim that a nonblocking folded-Clos behaves like a
// crossbar switch.
//
// Usage:
//
//	nbsim -n 4 -r 20 -routing paper -trials 20          # nonblocking ftree
//	nbsim -n 4 -r 20 -routing dest-mod                  # static routing blocks
//	nbsim -topo mnt -ports 20 -routing mnt-dest-mod     # FT(20,2) baseline
//	nbsim -n 4 -r 20 -routing spray -spray-width 4      # oblivious multipath
//	nbsim -n 2 -r 12 -routing adaptive -pattern shift   # one structured pattern
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	var (
		topo       = flag.String("topo", "ftree", "ftree | mnt")
		n          = flag.Int("n", 4, "hosts per bottom switch (ftree)")
		m          = flag.Int("m", 0, "top switches (ftree); 0 = n²")
		r          = flag.Int("r", 20, "bottom switches (ftree)")
		ports      = flag.Int("ports", 20, "switch ports (mnt)")
		levels     = flag.Int("levels", 2, "levels (mnt)")
		scheme     = flag.String("routing", "paper", "paper | dest-mod | adaptive | global | spray | mnt-dest-mod | mnt-random")
		sprayWidth = flag.Int("spray-width", 0, "paths per pair for -routing spray; 0 = all")
		pattern    = flag.String("pattern", "random", "random | shift | rotate | transpose")
		trials     = flag.Int("trials", 10, "random permutations (pattern=random)")
		seed       = flag.Int64("seed", 1, "seed")
		flits      = flag.Int("flits", 4, "flits per packet")
		pkts       = flag.Int("pkts", 8, "packets per SD pair")
		arbiter    = flag.String("arbiter", "round-robin", "round-robin | oldest-first")
		openloop   = flag.Bool("openloop", false, "open-loop rate sweep instead of closed-loop makespan (ftree single-path routings only)")
		workers    = flag.Int("workers", 0, "parallel simulation workers; 0 = GOMAXPROCS, 1 = sequential")
		jsonOut    = flag.Bool("json", false, "emit a machine-readable JSON report (enables the metrics collector) instead of text")
	)
	flag.Parse()
	if err := run(os.Stdout, *topo, *n, *m, *r, *ports, *levels, *scheme, *sprayWidth,
		*pattern, *trials, *seed, *flits, *pkts, *arbiter, *openloop, *workers, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "nbsim:", err)
		os.Exit(1)
	}
}

// simReport is the -json output schema (documented in EXPERIMENTS.md,
// "Metrics schema"), shared with the nbserve /v1/sim endpoint so CLI and
// service tooling interoperate. Exactly one of Closed, Sweep, Trials is
// populated, keyed by Mode; metrics payloads round-trip through
// encoding/json.
type simReport = api.SimReport

// closedReport is the closed-loop (single structured pattern) section.
type closedReport = api.ClosedReport

func emitJSON(out io.Writer, rep *simReport) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func run(out io.Writer, topo string, n, m, r, ports, levels int, scheme string, sprayWidth int,
	pattern string, trials int, seed int64, flits, pkts int, arbiter string, openloop bool, workers int, jsonOut bool) error {
	cfg := sim.Config{PacketFlits: flits, PacketsPerPair: pkts, Seed: seed}
	switch arbiter {
	case "round-robin":
		cfg.Arbiter = sim.RoundRobin
	case "oldest-first":
		cfg.Arbiter = sim.OldestFirst
	default:
		return fmt.Errorf("unknown arbiter %q", arbiter)
	}

	var (
		net    *topology.Network
		router routing.Router
		hosts  int
	)
	switch topo {
	case "ftree":
		if m == 0 {
			m = n * n
		}
		f := topology.NewFoldedClos(n, m, r)
		net, hosts = f.Net, f.Ports()
		switch scheme {
		case "paper":
			pr, err := routing.NewPaperDeterministic(f)
			if err != nil {
				return err
			}
			router = pr
		case "dest-mod":
			router = routing.NewDestMod(f)
		case "adaptive":
			ad, err := routing.NewNonblockingAdaptive(f)
			if err != nil {
				return err
			}
			router = ad
		case "global":
			router = routing.NewGlobalRearrangeable(f)
		case "spray":
			if sprayWidth <= 0 || sprayWidth >= f.M {
				router = routing.NewFullSpray(f)
			} else {
				ks, err := routing.NewKSpray(f, sprayWidth)
				if err != nil {
					return err
				}
				router = ks
			}
		default:
			return fmt.Errorf("routing %q not available on ftree", scheme)
		}
	case "mnt":
		t := topology.NewMPortNTree(ports, levels)
		net, hosts = t.Net, t.Hosts()
		switch scheme {
		case "mnt-dest-mod":
			router = routing.NewMNTDestMod(t)
		case "mnt-random":
			router = routing.NewMNTRandomFixed(t, seed)
		default:
			return fmt.Errorf("routing %q not available on mnt", scheme)
		}
	default:
		return fmt.Errorf("unknown topology %q", topo)
	}

	rep := &simReport{
		Network: net.Name, Hosts: hosts, Routing: router.Name(),
		PacketFlits: flits, Arbiter: cfg.Arbiter.String(),
	}
	if !jsonOut {
		fmt.Fprintf(out, "network: %s (%d hosts), routing: %s, packets: %d × %d flits, arbiter: %s\n",
			net.Name, hosts, router.Name(), pkts, flits, cfg.Arbiter)
	}

	if openloop {
		if topo != "ftree" {
			return fmt.Errorf("-openloop supports -topo ftree only")
		}
		pr, ok := router.(routing.PairRouter)
		if !ok {
			return fmt.Errorf("-openloop needs a single-path deterministic routing (got %s)", router.Name())
		}
		perm := permutation.SwitchShift(n, r, 1)
		dst := make([]int, perm.N())
		for i := 0; i < perm.N(); i++ {
			dst[i] = perm.Dst(i)
		}
		pairs := sim.PermPairs(dst)
		base := sim.OpenLoopConfig{
			PacketFlits:     flits,
			WarmupPackets:   20,
			MeasuredPackets: 100,
			Seed:            seed,
			Arbiter:         cfg.Arbiter,
		}
		if jsonOut {
			base.Collector = sim.NewMetricsCollector()
		}
		rates := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
		// The parallel sweep is byte-identical to the sequential one.
		var points []sim.LoadSweepPoint
		var err error
		if workers == 1 {
			points, err = sim.LoadSweep(net, pairs, sim.PairPathsFunc(pr), rates, base)
		} else {
			points, err = sim.LoadSweepParallel(net, pairs, sim.PairPathsFunc(pr), rates, base)
		}
		if err != nil {
			return err
		}
		if jsonOut {
			rep.Mode, rep.Pattern, rep.Sweep = "open-loop", "switch-shift", points
			return emitJSON(out, rep)
		}
		fmt.Fprintln(out, "open-loop sweep on the switch-shift permutation:")
		fmt.Fprintln(out, "offered  accepted  mean-latency  p99")
		for _, pt := range points {
			fmt.Fprintf(out, "%.2f     %.2f      %.1f          %d\n",
				pt.OfferedLoad, pt.AcceptedLoad, pt.MeanLatency, pt.P99Latency)
		}
		return nil
	}

	if pattern == "random" {
		sum, err := sim.CompareToCrossbarParallel(net, router, hosts, trials, workers, seed, cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			rep.Mode, rep.Pattern, rep.PacketsPerPair, rep.Trials = "random-trials", "random", pkts, sum
			return emitJSON(out, rep)
		}
		fmt.Fprintf(out, "random permutations: %d trials\n", sum.Patterns)
		fmt.Fprintf(out, "slowdown vs crossbar: mean %.2f, median %.2f, max %.2f\n",
			sum.MeanSlowdown, sum.MedianSlowdown, sum.MaxSlowdown)
		fmt.Fprintf(out, "mean relative throughput: %.2f\n", sum.MeanRelThroughput)
		return nil
	}

	var p *permutation.Permutation
	switch pattern {
	case "shift":
		p = permutation.Shift(hosts, hosts/2)
	case "rotate":
		if topo != "ftree" {
			return fmt.Errorf("pattern rotate needs -topo ftree")
		}
		p = permutation.LocalRotate(n, r)
	case "transpose":
		d := 2
		for d*d < hosts {
			d++
		}
		if d*d != hosts {
			return fmt.Errorf("transpose needs a square host count, have %d", hosts)
		}
		p = permutation.Transpose(d, d)
	default:
		return fmt.Errorf("unknown pattern %q", pattern)
	}
	if jsonOut {
		cfg.Collector = sim.NewMetricsCollector()
	}
	a, res, err := sim.RunPermutation(net, router, p, cfg)
	if err != nil {
		return err
	}
	if res.Metrics != nil {
		// Detach from the collector before the crossbar reference reuses it.
		res.Metrics = res.Metrics.Clone()
	}
	cfg.Collector = nil
	chk := analysis.Check(a)
	ref, err := sim.CrossbarReference(hosts, p, cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		rep.Mode, rep.Pattern, rep.PacketsPerPair = "closed-loop", pattern, pkts
		rep.Closed = &closedReport{
			Pairs:            p.Size(),
			ContendedLinks:   len(chk.Contended),
			MaxLinkLoad:      chk.MaxLoad,
			Makespan:         res.Makespan,
			CrossbarMakespan: ref.Makespan,
			Slowdown:         res.Slowdown(ref),
			MeanLatency:      res.MeanLatency(),
			Metrics:          res.Metrics,
		}
		return emitJSON(out, rep)
	}
	fmt.Fprintf(out, "pattern: %s (%d pairs)\n", pattern, p.Size())
	fmt.Fprintf(out, "contended links: %d (max %d SD pairs on one link)\n", len(chk.Contended), chk.MaxLoad)
	fmt.Fprintf(out, "makespan: %d cycles (crossbar %d), slowdown %.2f\n",
		res.Makespan, ref.Makespan, res.Slowdown(ref))
	fmt.Fprintf(out, "mean packet latency: %.1f cycles, busiest link utilization %.2f\n",
		res.MeanLatency(), res.MaxLinkUtilization())
	return nil
}
