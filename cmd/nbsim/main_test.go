package main

import (
	"bytes"
	"strings"
	"testing"
)

func simRun(t *testing.T, args ...interface{}) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(&buf,
		args[0].(string),  // topo
		args[1].(int),     // n
		args[2].(int),     // m
		args[3].(int),     // r
		args[4].(int),     // ports
		args[5].(int),     // levels
		args[6].(string),  // scheme
		args[7].(int),     // sprayWidth
		args[8].(string),  // pattern
		args[9].(int),     // trials
		int64(1),          // seed
		2,                 // flits
		4,                 // pkts
		args[10].(string), // arbiter
		false,             // openloop
		0,                 // workers
	)
	return buf.String(), err
}

func TestSimOpenLoopSweep(t *testing.T) {
	var buf bytes.Buffer
	for _, workers := range []int{1, 0} {
		buf.Reset()
		err := run(&buf, "ftree", 2, 0, 5, 20, 2, "paper", 0,
			"random", 3, int64(1), 2, 4, "round-robin", true, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !strings.Contains(buf.String(), "open-loop sweep") {
			t.Fatalf("workers=%d output: %s", workers, buf.String())
		}
	}
}

func TestSimRandomPaper(t *testing.T) {
	out, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "paper", 0, "random", 3, "round-robin")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "slowdown vs crossbar") {
		t.Fatalf("output: %s", out)
	}
}

func TestSimStructuredPatterns(t *testing.T) {
	for _, pattern := range []string{"shift", "rotate"} {
		out, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "dest-mod", 0, pattern, 3, "oldest-first")
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		if !strings.Contains(out, "makespan:") {
			t.Fatalf("%s output: %s", pattern, out)
		}
	}
	// Transpose needs a square host count: ftree(2+4,8) has 16 hosts.
	out, err := simRun(t, "ftree", 2, 0, 8, 20, 2, "paper", 0, "transpose", 3, "round-robin")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "contended links: 0") {
		t.Fatalf("nonblocking transpose should be clean: %s", out)
	}
}

func TestSimOtherRouters(t *testing.T) {
	if _, err := simRun(t, "ftree", 2, 12, 4, 20, 2, "adaptive", 0, "shift", 3, "round-robin"); err != nil {
		t.Fatal(err)
	}
	if _, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "global", 0, "shift", 3, "round-robin"); err != nil {
		t.Fatal(err)
	}
	if _, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "spray", 2, "shift", 3, "round-robin"); err != nil {
		t.Fatal(err)
	}
	if _, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "spray", 0, "shift", 3, "round-robin"); err != nil {
		t.Fatal(err)
	}
	if _, err := simRun(t, "mnt", 2, 0, 5, 6, 2, "mnt-dest-mod", 0, "shift", 3, "round-robin"); err != nil {
		t.Fatal(err)
	}
	if _, err := simRun(t, "mnt", 2, 0, 5, 6, 2, "mnt-random", 0, "random", 2, "round-robin"); err != nil {
		t.Fatal(err)
	}
}

func TestSimErrors(t *testing.T) {
	if _, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "paper", 0, "random", 3, "bogus"); err == nil {
		t.Fatal("bad arbiter accepted")
	}
	if _, err := simRun(t, "torus", 2, 0, 5, 20, 2, "paper", 0, "random", 3, "round-robin"); err == nil {
		t.Fatal("bad topology accepted")
	}
	if _, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "mnt-dest-mod", 0, "random", 3, "round-robin"); err == nil {
		t.Fatal("mnt routing on ftree accepted")
	}
	if _, err := simRun(t, "mnt", 2, 0, 5, 6, 2, "paper", 0, "random", 3, "round-robin"); err == nil {
		t.Fatal("ftree routing on mnt accepted")
	}
	if _, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "paper", 0, "nosuch", 3, "round-robin"); err == nil {
		t.Fatal("bad pattern accepted")
	}
	if _, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "paper", 0, "transpose", 3, "round-robin"); err == nil {
		t.Fatal("non-square transpose accepted")
	}
	if _, err := simRun(t, "mnt", 2, 0, 5, 6, 2, "mnt-dest-mod", 0, "rotate", 3, "round-robin"); err == nil {
		t.Fatal("rotate on mnt accepted")
	}
	if _, err := simRun(t, "ftree", 2, 3, 5, 20, 2, "paper", 0, "random", 3, "round-robin"); err == nil {
		t.Fatal("paper with m<n² accepted")
	}
}
