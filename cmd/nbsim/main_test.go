package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func simRun(t *testing.T, args ...interface{}) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(&buf,
		args[0].(string),  // topo
		args[1].(int),     // n
		args[2].(int),     // m
		args[3].(int),     // r
		args[4].(int),     // ports
		args[5].(int),     // levels
		args[6].(string),  // scheme
		args[7].(int),     // sprayWidth
		args[8].(string),  // pattern
		args[9].(int),     // trials
		int64(1),          // seed
		2,                 // flits
		4,                 // pkts
		args[10].(string), // arbiter
		false,             // openloop
		0,                 // workers
		false,             // jsonOut
	)
	return buf.String(), err
}

func TestSimOpenLoopSweep(t *testing.T) {
	var buf bytes.Buffer
	for _, workers := range []int{1, 0} {
		buf.Reset()
		err := run(&buf, "ftree", 2, 0, 5, 20, 2, "paper", 0,
			"random", 3, int64(1), 2, 4, "round-robin", true, workers, false)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !strings.Contains(buf.String(), "open-loop sweep") {
			t.Fatalf("workers=%d output: %s", workers, buf.String())
		}
	}
}

func TestSimRandomPaper(t *testing.T) {
	out, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "paper", 0, "random", 3, "round-robin")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "slowdown vs crossbar") {
		t.Fatalf("output: %s", out)
	}
}

func TestSimStructuredPatterns(t *testing.T) {
	for _, pattern := range []string{"shift", "rotate"} {
		out, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "dest-mod", 0, pattern, 3, "oldest-first")
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		if !strings.Contains(out, "makespan:") {
			t.Fatalf("%s output: %s", pattern, out)
		}
	}
	// Transpose needs a square host count: ftree(2+4,8) has 16 hosts.
	out, err := simRun(t, "ftree", 2, 0, 8, 20, 2, "paper", 0, "transpose", 3, "round-robin")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "contended links: 0") {
		t.Fatalf("nonblocking transpose should be clean: %s", out)
	}
}

func TestSimOtherRouters(t *testing.T) {
	if _, err := simRun(t, "ftree", 2, 12, 4, 20, 2, "adaptive", 0, "shift", 3, "round-robin"); err != nil {
		t.Fatal(err)
	}
	if _, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "global", 0, "shift", 3, "round-robin"); err != nil {
		t.Fatal(err)
	}
	if _, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "spray", 2, "shift", 3, "round-robin"); err != nil {
		t.Fatal(err)
	}
	if _, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "spray", 0, "shift", 3, "round-robin"); err != nil {
		t.Fatal(err)
	}
	if _, err := simRun(t, "mnt", 2, 0, 5, 6, 2, "mnt-dest-mod", 0, "shift", 3, "round-robin"); err != nil {
		t.Fatal(err)
	}
	if _, err := simRun(t, "mnt", 2, 0, 5, 6, 2, "mnt-random", 0, "random", 2, "round-robin"); err != nil {
		t.Fatal(err)
	}
}

func TestSimErrors(t *testing.T) {
	if _, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "paper", 0, "random", 3, "bogus"); err == nil {
		t.Fatal("bad arbiter accepted")
	}
	if _, err := simRun(t, "torus", 2, 0, 5, 20, 2, "paper", 0, "random", 3, "round-robin"); err == nil {
		t.Fatal("bad topology accepted")
	}
	if _, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "mnt-dest-mod", 0, "random", 3, "round-robin"); err == nil {
		t.Fatal("mnt routing on ftree accepted")
	}
	if _, err := simRun(t, "mnt", 2, 0, 5, 6, 2, "paper", 0, "random", 3, "round-robin"); err == nil {
		t.Fatal("ftree routing on mnt accepted")
	}
	if _, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "paper", 0, "nosuch", 3, "round-robin"); err == nil {
		t.Fatal("bad pattern accepted")
	}
	if _, err := simRun(t, "ftree", 2, 0, 5, 20, 2, "paper", 0, "transpose", 3, "round-robin"); err == nil {
		t.Fatal("non-square transpose accepted")
	}
	if _, err := simRun(t, "mnt", 2, 0, 5, 6, 2, "mnt-dest-mod", 0, "rotate", 3, "round-robin"); err == nil {
		t.Fatal("rotate on mnt accepted")
	}
	if _, err := simRun(t, "ftree", 2, 3, 5, 20, 2, "paper", 0, "random", 3, "round-robin"); err == nil {
		t.Fatal("paper with m<n² accepted")
	}
}

func TestSimJSONRoundTrip(t *testing.T) {
	// -json output must parse back through encoding/json into the same
	// schema, carry metrics, and satisfy the empirical Lemma-1 signature
	// for the nonblocking paper routing: zero wait beyond the injection
	// stage and every link utilization at most 1.
	var buf bytes.Buffer
	err := run(&buf, "ftree", 2, 0, 5, 20, 2, "paper", 0,
		"shift", 3, int64(1), 2, 4, "round-robin", false, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	var rep simReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Mode != "closed-loop" || rep.Closed == nil || rep.Closed.Metrics == nil {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	m := rep.Closed.Metrics
	if rep.Closed.ContendedLinks != 0 {
		t.Fatalf("paper routing contended on %d links", rep.Closed.ContendedLinks)
	}
	for _, s := range []int{sim.StageUp, sim.StageDown, sim.StageDrain} {
		if m.Stages[s].Wait != 0 {
			t.Errorf("nonblocking routing: stage %s wait %d, want 0", sim.StageName(s), m.Stages[s].Wait)
		}
	}
	for l := range m.Links {
		if u := m.Utilization(topology.LinkID(l)); u > 1 {
			t.Errorf("link %d utilization %v > 1", l, u)
		}
	}
	// Re-encoding the parsed report must reproduce the emitted bytes:
	// the schema round-trips losslessly.
	re, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.TrimSpace(string(re)), strings.TrimSpace(buf.String()); got != want {
		t.Error("re-encoded JSON differs from emitted JSON")
	}
}

func TestSimJSONOpenLoopAndTrials(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "ftree", 2, 0, 5, 20, 2, "paper", 0,
		"random", 3, int64(1), 2, 4, "round-robin", true, 1, true); err != nil {
		t.Fatal(err)
	}
	var rep simReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("open-loop JSON invalid: %v", err)
	}
	if rep.Mode != "open-loop" || len(rep.Sweep) != 5 {
		t.Fatalf("unexpected open-loop report: %+v", rep)
	}
	// Pin the documented wire names (Go-side round trips would pass even
	// without tags, so check the raw bytes).
	for _, key := range []string{`"offered_load"`, `"accepted_load"`, `"p99_latency"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("sweep JSON missing %s", key)
		}
	}
	for i, pt := range rep.Sweep {
		if pt.Metrics == nil {
			t.Fatalf("sweep point %d carries no metrics", i)
		}
	}

	buf.Reset()
	if err := run(&buf, "ftree", 2, 0, 5, 20, 2, "paper", 0,
		"random", 3, int64(1), 2, 4, "round-robin", false, 0, true); err != nil {
		t.Fatal(err)
	}
	rep = simReport{}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("trials JSON invalid: %v", err)
	}
	if rep.Mode != "random-trials" || rep.Trials == nil || rep.Trials.Patterns != 3 {
		t.Fatalf("unexpected trials report: %+v", rep)
	}
	for _, key := range []string{`"patterns"`, `"mean_slowdown"`, `"median_slowdown"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("trials JSON missing %s", key)
		}
	}
}
