// Command nbdesign explores the (topology family × n × m × r × router)
// design space of the paper's folded-Clos constructions: catalog file in,
// Pareto frontier of cost versus nonblocking guarantee out, every point
// tagged with the certificate tier that decided it.
//
// The planner answers candidates in three tiers: closed forms (Theorems
// 1–3 and 5, the Benes rearrangeability floor, the recursive multi-level
// construction) without building a topology; monotonicity on the
// top-switch count m (one binary search decides a whole (n, r, router)
// group) plus dominance pruning; and, last, real verification sweeps
// memoized under the nbserve result-store keys.
//
// Usage:
//
//	nbdesign -catalog catalog.json                  # run locally
//	nbdesign -catalog catalog.json -no-prune        # tier-0 + individual sweeps only
//	nbdesign -catalog catalog.json -remote :8080    # POST /v1/design on a live nbserve
//
// The report on stdout is deterministic for a fixed catalog (diffable
// against a golden file); timing and progress go to stderr.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/design"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		catalogPath = flag.String("catalog", "", "catalog JSON file (required; - reads stdin)")
		noPrune     = flag.Bool("no-prune", false, "disable tier 1 (monotone binary search + dominance pruning); verifies every undecided candidate individually — the baseline the planner is measured against")
		remote      = flag.String("remote", "", "nbserve address (host:port): POST the catalog to /v1/design instead of planning locally")
		cacheSize   = flag.Int("cache", 4096, "probe memo entries for local runs")
		timeoutMs   = flag.Int64("timeout-ms", 0, "remote request deadline (0 = server default)")
		quiet       = flag.Bool("q", false, "suppress progress lines on stderr")
		frontOnly   = flag.Bool("frontier-only", false, "print only the frontier points without certificates (for diffing runs whose planner effort — tier counters, proof shape — legitimately differs)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *catalogPath == "" {
		fmt.Fprintln(os.Stderr, "nbdesign: -catalog is required")
		os.Exit(2)
	}
	raw, err := readCatalog(*catalogPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbdesign:", err)
		os.Exit(1)
	}

	start := time.Now()
	var rep *api.DesignReport
	if *remote != "" {
		rep, err = runRemote(ctx, *remote, raw, *noPrune, *timeoutMs)
	} else {
		rep, err = runLocal(ctx, raw, *noPrune, *cacheSize, *quiet)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbdesign:", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	var out any = rep
	if *frontOnly {
		// The guarantee surface only: a pruned and a -no-prune run reach
		// the same points and levels through different proofs (monotone
		// witness vs direct sweep), so certificates are dropped here.
		pts := make([]api.DesignPoint, len(rep.Frontier))
		copy(pts, rep.Frontier)
		for i := range pts {
			pts[i].Certificate = api.DesignCertificate{}
		}
		out = pts
	}
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "nbdesign:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "nbdesign: %d candidates (tier0 %d, tier1 %d, tier2 %d; %d pruned, %d groups, %d fresh runs, %d memo hits), %d frontier points in %v\n",
		rep.Candidates, rep.Tier0, rep.Tier1, rep.Tier2, rep.Pruned, rep.Groups,
		rep.FreshRuns, rep.MemoHits, len(rep.Frontier), time.Since(start).Round(time.Millisecond))
}

// readCatalog loads and strictly decodes the catalog file, returning the
// parsed form (local runs re-encode nothing; remote runs wrap it in a
// DesignRequest).
func readCatalog(path string) (*api.DesignCatalog, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var cat api.DesignCatalog
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cat); err != nil {
		return nil, fmt.Errorf("decode catalog: %w", err)
	}
	return &cat, nil
}

// runLocal plans in-process: probes run through the same engine POST
// /v1/verify uses, memoized in a local store under the server keys.
func runLocal(ctx context.Context, cat *api.DesignCatalog, noPrune bool, cacheSize int, quiet bool) (*api.DesignReport, error) {
	memo := store.NewMemory(cacheSize)
	defer memo.Close()
	opts := design.Options{
		Verify: func(ctx context.Context, q *api.Request) (*api.VerifyReport, error) {
			rep, err := server.RunVerifyRequest(ctx, q)
			if err != nil && server.IsBadRequest(err) {
				return nil, fmt.Errorf("%w: %v", design.ErrInfeasible, err)
			}
			return rep, err
		},
		Memo:    memo,
		NoPrune: noPrune,
	}
	if !quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	return design.Plan(ctx, cat, opts)
}

// runRemote posts the catalog to a live nbserve's /v1/design.
func runRemote(ctx context.Context, addr string, cat *api.DesignCatalog, noPrune bool, timeoutMs int64) (*api.DesignReport, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	body, err := json.Marshal(api.DesignRequest{Catalog: *cat, NoPrune: noPrune, TimeoutMs: timeoutMs})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimRight(addr, "/")+"/v1/design", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var e api.ErrorReport
		if json.Unmarshal(out, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(out)))
	}
	var rep api.DesignReport
	if err := json.Unmarshal(out, &rep); err != nil {
		return nil, fmt.Errorf("decode report: %w", err)
	}
	return &rep, nil
}
