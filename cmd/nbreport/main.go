// Command nbreport runs the full experiment suite and writes a
// self-contained Markdown report — the reproducibility artifact backing
// EXPERIMENTS.md. Every number in the report is regenerated on the spot
// with the given seed.
//
// Usage:
//
//	nbreport                      # report to stdout
//	nbreport -seed 7 -trials 200  # heavier statistical sections
//	nbreport -fast                # CI-sized trial counts
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	var (
		trials = flag.Int("trials", 100, "trials for randomized sections")
		seed   = flag.Int64("seed", 1, "seed for randomized sections")
		fast   = flag.Bool("fast", false, "CI-sized trial counts (overrides -trials)")
	)
	flag.Parse()
	if *fast {
		*trials = 20
	}
	if err := run(os.Stdout, *trials, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "nbreport:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, trials int, seed int64) error {
	start := time.Now()
	fmt.Fprintf(out, "# Reproduction report — Nonblocking Folded-Clos Networks (IPPS 2011)\n\n")
	fmt.Fprintf(out, "seed %d, %d trials per randomized section\n\n", seed, trials)

	section := func(title string) {
		fmt.Fprintf(out, "## %s\n\n```\n", title)
	}
	endSection := func() { fmt.Fprint(out, "```\n\n") }

	section("T1 — Table I")
	experiments.TableI().Render(out)
	endSection()

	section("E1 — Theorems 2 & 3 (exact verification + tightness)")
	t3, err := experiments.Theorem3([][2]int{{2, 5}, {2, 8}, {3, 7}, {4, 9}})
	if err != nil {
		return err
	}
	t3.Render(out)
	endSection()

	section("E2 — Lemma 2 exact maxima")
	experiments.Lemma2([]int{1, 2, 3}, []int{2, 3, 4, 5, 6}).Render(out)
	endSection()

	section("E3 — Theorem 1 port bounds")
	experiments.Theorem1([]int{2, 3, 4}).Render(out)
	endSection()

	section("E4 — NONBLOCKINGADAPTIVE demand scaling")
	ad, err := experiments.Adaptive([]int{4, 6, 8, 12, 16, 24}, trials/3+1, seed)
	if err != nil {
		return err
	}
	ad.Render(out)
	endSection()

	cfg := sim.Config{PacketFlits: 4, PacketsPerPair: 8}

	section("E6 — simulated permutation throughput")
	th, err := experiments.Throughput(3, trials/2+1, seed, cfg)
	if err != nil {
		return err
	}
	th.Render(out)
	endSection()

	section("E7 — oblivious multipath (§IV.B)")
	mp, err := experiments.Multipath(2, 8, trials, seed)
	if err != nil {
		return err
	}
	mp.Render(out)
	endSection()

	section("E8 — recursive constructions")
	for _, n := range []int{2, 3} {
		tl, err := experiments.ThreeLevel(n)
		if err != nil {
			return err
		}
		tl.Render(out)
	}
	ml, err := experiments.MultiLevel(2, []int{2, 3, 4})
	if err != nil {
		return err
	}
	ml.Render(out)
	endSection()

	section("E9 — centralized rearrangeable baseline")
	bn, err := experiments.Benes(3, 6, trials, seed)
	if err != nil {
		return err
	}
	bn.Render(out)
	endSection()

	section("E10 — online circuit switching (§II)")
	on, err := experiments.Online(2, 4, trials, seed)
	if err != nil {
		return err
	}
	on.Render(out)
	endSection()

	section("E11 — degraded mode")
	ft, err := experiments.Fault(8, 64, 2, 3, seed)
	if err != nil {
		return err
	}
	ft.Render(out)
	endSection()

	section("E12 — open-loop load sweep")
	ls, err := experiments.LoadSweepExperiment(3, 12, []float64{0.2, 0.4, 0.6, 0.8, 1.0}, seed)
	if err != nil {
		return err
	}
	ls.Render(out)
	endSection()

	section("E13 — collectives")
	cl, err := experiments.Collectives(3, seed, cfg)
	if err != nil {
		return err
	}
	cl.Render(out)
	endSection()

	section("E14 — randomized-routing birthday model")
	rm, err := experiments.RandomModel(2, 8, trials*2, []int{4, 8, 16, 32, 64, 128}, seed)
	if err != nil {
		return err
	}
	rm.Render(out)
	endSection()

	section("E15 — oversubscription frontier")
	ov, err := experiments.Oversub(4, 12, trials/2+1, seed, sim.Config{PacketFlits: 2, PacketsPerPair: 4})
	if err != nil {
		return err
	}
	ov.Render(out)
	endSection()

	section("E16 — in-network per-packet adaptivity")
	in, err := experiments.InNetworkAdaptive(3, 12, trials/4+1, seed, cfg)
	if err != nil {
		return err
	}
	in.Render(out)
	endSection()

	section("E17 — exact worst-case link load")
	wl, err := experiments.WorstLoad(3, 10, seed)
	if err != nil {
		return err
	}
	wl.Render(out)
	endSection()

	section("E18 — observability (per-stage wait, link utilization)")
	if err := metricsSection(out, cfg); err != nil {
		return err
	}
	endSection()

	section("E20 — fault campaign: nonblocking margin vs failures")
	// m = 8 staggers the cliffs inside the sweep: the avoiding adaptive
	// refuses once its demand bound (6 tops for these patterns) exceeds the
	// healthy count (k >= 3), the spared scheme burns its 4 spares and dies
	// at k = 5, while naive remap and local rerouting degrade gradually —
	// the curves separate all four schemes.
	frep, err := campaign.Run(context.Background(), campaign.Config{
		N: 2, M: 8, R: 4,
		Scenario:    campaign.ScenarioTops,
		MaxFailures: 5,
		Samples:     3,
		Trials:      trials,
		Seed:        seed,
		Sim:         true,
	})
	if err != nil {
		return err
	}
	campaign.Render(out, frep)
	endSection()

	section("Scaling — 2- vs 3-level cost")
	sc, err := experiments.Scaling([]int{2, 3, 4, 5, 6})
	if err != nil {
		return err
	}
	sc.Render(out)
	endSection()

	fmt.Fprintf(out, "---\ngenerated in %s by cmd/nbreport\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// metricsSection contrasts the nonblocking paper routing with a router
// that forces every pair through top switch 0, on one shift permutation
// through the metrics collector: the Lemma-1 signature is zero queueing
// wait beyond the injection stage and no link above full utilization;
// blocking routing shows up as up-stage wait and a hot link.
func metricsSection(out io.Writer, cfg sim.Config) error {
	f := topology.NewFoldedClos(2, 4, 5)
	paper, err := routing.NewPaperDeterministic(f)
	if err != nil {
		return err
	}
	single := &routing.FtreeSinglePath{
		F: f, RouterName: "single-top", TopChoice: func(s, d int) int { return 0 },
	}
	perm := permutation.Shift(f.Ports(), f.Ports()/2)
	for _, rt := range []routing.Router{paper, single} {
		c := cfg
		c.Collector = sim.NewMetricsCollector()
		_, res, err := sim.RunPermutation(f.Net, rt, perm, c)
		if err != nil {
			return err
		}
		m := res.Metrics
		fmt.Fprintf(out, "%s on shift(%d): makespan %d, max link utilization %.2f, latency p50/p99 %d/%d\n",
			rt.Name(), f.Ports()/2, res.Makespan, m.MaxUtilization(), m.Latency.P50(), m.Latency.P99())
		for s := 0; s < sim.NumStages; s++ {
			st := m.Stages[s]
			if st.Hops == 0 {
				continue
			}
			fmt.Fprintf(out, "  stage %-9s  hops %4d  mean wait %5.2f  max wait %3d\n",
				sim.StageName(s), st.Hops, float64(st.Wait)/float64(st.Hops), st.MaxWait)
		}
		// The busiest link, by integrated busy cycles.
		var hot topology.LinkID
		for l := range m.Links {
			if m.Links[l].Busy > m.Links[hot].Busy {
				hot = topology.LinkID(l)
			}
		}
		fmt.Fprintf(out, "  busiest link: utilization %.2f, peak queue %d\n\n",
			m.Utilization(hot), m.Links[hot].PeakQueue)
	}
	return nil
}
