package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestReportContainsEverySection(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 10, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Reproduction report",
		"T1 — Table I",
		"E1 — Theorems 2 & 3",
		"E2 — Lemma 2",
		"E3 — Theorem 1",
		"E4 — NONBLOCKINGADAPTIVE",
		"E6 — simulated permutation throughput",
		"E7 — oblivious multipath",
		"E8 — recursive constructions",
		"E9 — centralized rearrangeable",
		"E10 — online circuit switching",
		"E11 — degraded mode",
		"E12 — open-loop load sweep",
		"E13 — collectives",
		"E14 — randomized-routing birthday model",
		"E15 — oversubscription frontier",
		"E16 — in-network per-packet adaptivity",
		"E17 — exact worst-case link load",
		"E18 — observability",
		"stage injection",
		"busiest link:",
		"Scaling — 2- vs 3-level cost",
		"generated in",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Markdown fencing is balanced.
	if strings.Count(out, "```")%2 != 0 {
		t.Error("unbalanced code fences")
	}
}
