// Command nbtables regenerates the paper's Table I and the derived
// experiment tables (the experiment index is DESIGN.md §5; the
// paper-vs-measured record is EXPERIMENTS.md).
//
// Usage:
//
//	nbtables -table1               # Table I (T1)
//	nbtables -theorem3             # E1: exact nonblocking + tightness
//	nbtables -lemma2               # E2: exact max pairs per top switch
//	nbtables -theorem1             # E3: small-top-switch port bound
//	nbtables -adaptive             # E4: NONBLOCKINGADAPTIVE scaling
//	nbtables -throughput           # E6: simulator comparison
//	nbtables -multipath            # E7: oblivious multipath blocking
//	nbtables -threelevel           # E8: recursive construction
//	nbtables -benes                # E9: centralized vs distributed at m≈n
//	nbtables -scaling              # Discussion cost scaling
//	nbtables -all                  # everything
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	var (
		all        = flag.Bool("all", false, "run every experiment")
		table1     = flag.Bool("table1", false, "Table I")
		theorem3   = flag.Bool("theorem3", false, "E1: Theorem 3 verification and Theorem 2 tightness")
		lemma2     = flag.Bool("lemma2", false, "E2: Lemma-2 exact search")
		theorem1   = flag.Bool("theorem1", false, "E3: Theorem-1 port bounds")
		adaptive   = flag.Bool("adaptive", false, "E4: adaptive top-switch demand")
		throughput = flag.Bool("throughput", false, "E6: simulated throughput vs crossbar")
		multipath  = flag.Bool("multipath", false, "E7: multipath blocking probability")
		threelevel = flag.Bool("threelevel", false, "E8: three-level construction")
		benes      = flag.Bool("benes", false, "E9: Benes baseline")
		online     = flag.Bool("online", false, "E10: online circuit-switching conditions (Clos/Yang-Wang)")
		fault      = flag.Bool("fault", false, "E11: degraded-mode routing with failed top switches")
		loadsweep  = flag.Bool("loadsweep", false, "E12: open-loop latency/throughput curves")
		worstcase  = flag.Bool("worstcase", false, "adversarial contention search")
		collect    = flag.Bool("collectives", false, "E13: collective workloads (all-to-all, transpose, random phases)")
		randmodel  = flag.Bool("randmodel", false, "E14: birthday model of randomized routing vs Monte Carlo")
		oversub    = flag.Bool("oversub", false, "E15: oversubscription cost/performance frontier")
		innetwork  = flag.Bool("innetwork", false, "E16: per-packet in-network adaptivity vs pattern-level routing")
		worstload  = flag.Bool("worstload", false, "E17: exact worst-case link load per deterministic scheme")
		scaling    = flag.Bool("scaling", false, "Discussion scaling table")
		trials     = flag.Int("trials", 100, "trials for randomized experiments")
		seed       = flag.Int64("seed", 1, "seed for randomized experiments")
		simN       = flag.Int("sim-n", 3, "n for the throughput experiment (hosts = n(n+n²))")
	)
	flag.Parse()
	if err := run(*all, *table1, *theorem3, *lemma2, *theorem1, *adaptive, *throughput,
		*multipath, *threelevel, *benes, *online, *fault, *loadsweep, *worstcase,
		*collect, *randmodel, *oversub, *innetwork, *worstload, *scaling, *trials, *seed, *simN, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nbtables:", err)
		os.Exit(1)
	}
}

func run(all, table1, theorem3, lemma2, theorem1, adaptive, throughput, multipath,
	threelevel, benes, online, fault, loadsweep, worstcase, collect, randmodel, oversub, innetwork, worstload, scaling bool,
	trials int, seed int64, simN int, out io.Writer) error {
	ran := false
	section := func(title string) {
		if ran {
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "== %s ==\n", title)
		ran = true
	}
	if all || table1 {
		section("T1: Table I — nonblocking ftree(n+n²,n+n²) vs FT(N,2)")
		experiments.TableI().Render(out)
	}
	if all || theorem3 {
		section("E1: Theorem 3 (exact) and Theorem 2 tightness")
		res, err := experiments.Theorem3([][2]int{{2, 5}, {2, 8}, {3, 7}, {4, 9}})
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || lemma2 {
		section("E2: Lemma 2 — exact max SD pairs through one top switch")
		experiments.Lemma2([]int{1, 2, 3}, []int{2, 3, 4, 5, 6}).Render(out)
	}
	if all || theorem1 {
		section("E3: Theorem 1 — ports vs 2(n+m) for r ≤ 2n+1")
		experiments.Theorem1([]int{2, 3, 4}).Render(out)
	}
	if all || adaptive {
		section("E4: NONBLOCKINGADAPTIVE top-switch demand (r = n²)")
		res, err := experiments.Adaptive([]int{4, 6, 8, 12, 16, 24, 32}, trials/3+1, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || throughput {
		section("E6: simulated permutation throughput vs crossbar")
		cfg := sim.Config{PacketFlits: 4, PacketsPerPair: 8}
		res, err := experiments.Throughput(simN, trials, seed, cfg)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || multipath {
		section("E7: traffic-oblivious multipath does not relax the condition")
		res, err := experiments.Multipath(2, 8, trials, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || threelevel {
		section("E8: recursive three-level nonblocking construction")
		for _, n := range []int{2, 3} {
			res, err := experiments.ThreeLevel(n)
			if err != nil {
				return err
			}
			res.Render(out)
		}
		ml, err := experiments.MultiLevel(2, []int{2, 3, 4})
		if err != nil {
			return err
		}
		ml.Render(out)
	}
	if all || benes {
		section("E9: centralized rearrangeable vs distributed greedy")
		res, err := experiments.Benes(3, 6, trials, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || online {
		section("E10: online circuit switching on Clos(n,m,r) (§II conditions)")
		res, err := experiments.Online(2, 4, trials, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || fault {
		section("E11: degraded mode — failed top-level switches")
		res, err := experiments.Fault(8, 64, 2, 5, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || loadsweep {
		section("E12: open-loop load sweep (latency vs offered load)")
		res, err := experiments.LoadSweepExperiment(3, 12, []float64{0.2, 0.4, 0.6, 0.8, 1.0}, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || worstcase {
		section("adversarial worst-case contention search")
		res, err := experiments.WorstCase(3, 10, 4, 150, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || collect {
		section("E13: bulk-synchronous collectives")
		res, err := experiments.Collectives(3, seed, sim.Config{PacketFlits: 4, PacketsPerPair: 8})
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || randmodel {
		section("E14: randomized routing — birthday model vs measurement")
		res, err := experiments.RandomModel(2, 8, trials, []int{4, 8, 16, 32, 64, 128}, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || oversub {
		section("E15: oversubscription frontier (m below n²)")
		res, err := experiments.Oversub(4, 12, trials, seed, sim.Config{PacketFlits: 2, PacketsPerPair: 4})
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || innetwork {
		section("E16: per-packet in-network adaptivity")
		res, err := experiments.InNetworkAdaptive(3, 12, trials/4+1, seed, sim.Config{PacketFlits: 4, PacketsPerPair: 8})
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || worstload {
		section("E17: exact worst-case link load (per-link maximum matching)")
		res, err := experiments.WorstLoad(3, 10, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || scaling {
		section("Discussion: 2-level vs 3-level scaling")
		res, err := experiments.Scaling([]int{2, 3, 4, 5, 6})
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if !ran {
		return fmt.Errorf("no experiment selected; try -all (see -help)")
	}
	return nil
}
