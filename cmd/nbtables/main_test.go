package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunNothingSelected(t *testing.T) {
	var buf bytes.Buffer
	err := run(false, false, false, false, false, false, false, false, false, false,
		false, false, false, false, false, false, false, false, false, false, 10, 1, 2, &buf)
	if err == nil {
		t.Fatal("expected error when nothing selected")
	}
}

func TestRunSelectedSections(t *testing.T) {
	var buf bytes.Buffer
	err := run(false, true /*table1*/, true /*theorem3*/, false, true /*theorem1*/, false, false,
		false, false, false, false, false, false, false, false, false, false, false, false, true /*scaling*/, 5, 1, 2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"T1: Table I",
		"E1: Theorem 3",
		"E3: Theorem 1",
		"Discussion: 2-level vs 3-level scaling",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing section %q", want)
		}
	}
	if strings.Contains(out, "E4:") {
		t.Error("unselected section rendered")
	}
}

func TestRunFastExperiments(t *testing.T) {
	// Exercise the cheap randomized sections with tiny trial counts.
	var buf bytes.Buffer
	err := run(false, false, false, true /*lemma2*/, false, false, false,
		true /*multipath*/, false, true /*benes*/, true /*online*/, false, false, false, false, false, false, false, false, false,
		5, 1, 2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E2: Lemma 2", "E7:", "E9:", "E10:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing section %q", want)
		}
	}
}
