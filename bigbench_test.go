package fclos_test

import (
	"math/rand"
	"testing"

	fclos "repro"
)

// BenchmarkSimLargePermutation times one closed-loop simulation of a full
// random permutation on the largest Table-I network, ftree(6+36, 42):
// 252 hosts, 252 flows × 16 packets.
func BenchmarkSimLargePermutation(b *testing.B) {
	f := fclos.NewNonblockingFtree(6, 42)
	r, err := fclos.NewPaperDeterministic(f)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	p := fclos.RandomPermutation(rng, f.Ports())
	cfg := fclos.SimConfig{PacketFlits: 4, PacketsPerPair: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := fclos.SimulatePermutation(f.Net, r, p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Delivered != res.TotalPackets {
			b.Fatal("packets lost")
		}
	}
}
