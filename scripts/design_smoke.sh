#!/bin/sh
# Design-explorer smoke test over real binaries: nbdesign on the pinned
# smoke catalog diffed against the committed golden frontier (the report
# is deterministic by construction), the -no-prune baseline checked for
# frontier equality, and the same catalog POSTed to /v1/design on a live
# nbserve — whose response must match the local run byte for byte. The
# in-process planner properties (binary search == linear scan, certificate
# replays, memo/key parity with the result store) live in
# internal/design's tests; this script proves the CLI flags, the catalog
# file format, and the HTTP endpoint end to end.
set -eu

GO=${GO:-go}
ADDR=127.0.0.1:18090

tmp=$(mktemp -d)
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	if [ -n "${SMOKE_LOG_DIR:-}" ]; then
		mkdir -p "$SMOKE_LOG_DIR"
		cp "$tmp"/*.log "$tmp"/*.json "$tmp"/*.err "$SMOKE_LOG_DIR"/ 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/nbdesign" ./cmd/nbdesign
$GO build -o "$tmp/nbserve" ./cmd/nbserve

# Local plan against the committed golden.
"$tmp/nbdesign" -catalog catalogs/smoke.json -q >"$tmp/local.json" 2>"$tmp/local.err"
if ! diff -u catalogs/smoke_golden.json "$tmp/local.json"; then
	echo "design-smoke: local frontier drifted from catalogs/smoke_golden.json (regenerate it only if the change is intended)" >&2
	exit 1
fi

# The planner is an optimization, not a different answer: -no-prune must
# reach the same frontier (tier counters legitimately differ, so the
# comparison is -frontier-only against -frontier-only).
"$tmp/nbdesign" -catalog catalogs/smoke.json -frontier-only -q >"$tmp/local_frontier.json" 2>"$tmp/local.err"
"$tmp/nbdesign" -catalog catalogs/smoke.json -no-prune -frontier-only -q >"$tmp/noprune_frontier.json" 2>"$tmp/noprune.err"
if ! diff -u "$tmp/local_frontier.json" "$tmp/noprune_frontier.json"; then
	echo "design-smoke: -no-prune frontier differs from the planned frontier" >&2
	exit 1
fi

# Live /v1/design: the HTTP response body is the same deterministic
# report, so it must equal the local run exactly.
"$tmp/nbserve" -addr "$ADDR" 2>"$tmp/serve.log" &
pids="$pids $!"
i=0
until "$tmp/nbdesign" -catalog catalogs/smoke.json -remote "$ADDR" -q >"$tmp/remote.json" 2>"$tmp/remote.err"; do
	i=$((i + 1))
	if [ $i -ge 100 ]; then
		echo "design-smoke: nbserve at $ADDR did not answer:" >&2
		cat "$tmp/remote.err" >&2
		exit 1
	fi
	sleep 0.1
done
if ! diff -u catalogs/smoke_golden.json "$tmp/remote.json"; then
	echo "design-smoke: /v1/design response differs from the local plan" >&2
	exit 1
fi

echo "design-smoke: local, -no-prune, and /v1/design frontiers all match the golden"
