#!/bin/sh
# Frontier smoke test over the real nbverify binary: the symmetry-reduced
# exhaustive sweep (-sym) must print a verdict byte-identical to the full
# engine at n=8, certify a fabric past the factorial wall (n=12, 12! =
# 479001600 patterns) in seconds by sweeping orbit representatives only,
# and refuse — rather than silently run a factorial sweep — when the
# reduction cannot apply past -max-exhaustive. The in-process byte-identity
# property tests live in internal/analysis and internal/server; this
# script proves the flag and its output contract end to end.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
cleanup() {
	if [ -n "${SMOKE_LOG_DIR:-}" ]; then
		mkdir -p "$SMOKE_LOG_DIR"
		cp "$tmp"/*.out "$tmp"/*.raw "$SMOKE_LOG_DIR"/ 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/nbverify" ./cmd/nbverify

# n=8 spray: full engine vs -sym, byte-for-byte after dropping the
# `symmetry:` status line (the only line the reduced engine adds).
"$tmp/nbverify" -n 2 -m 2 -r 4 -routing spray -max-exhaustive 8 >"$tmp/full.out"
"$tmp/nbverify" -n 2 -m 2 -r 4 -routing spray -max-exhaustive 8 -sym >"$tmp/sym.raw"
grep -v '^symmetry:' "$tmp/sym.raw" >"$tmp/sym.out"
if ! diff -u "$tmp/full.out" "$tmp/sym.out"; then
	echo "frontier-smoke: -sym verdict differs from the full engine at n=8" >&2
	exit 1
fi
if ! grep -q '^symmetry: [0-9]* orbit representatives' "$tmp/sym.raw"; then
	echo "frontier-smoke: reduction did not engage at n=8:" >&2
	cat "$tmp/sym.raw" >&2
	exit 1
fi

# Past the wall: 12 hosts with the default -max-exhaustive 9. The orbit
# counts and the verdict are pinned — they are exact certificates, so any
# drift is a bug, not noise.
"$tmp/nbverify" -n 4 -m 8 -r 3 -routing spray -sym >"$tmp/n12.out"
if ! grep -q '^symmetry: 8919 orbit representatives for 479001600 patterns (group order 82944)$' "$tmp/n12.out"; then
	echo "frontier-smoke: n=12 orbit enumeration drifted:" >&2
	cat "$tmp/n12.out" >&2
	exit 1
fi
if ! grep -q '^verdict: BLOCKING — 476554752 of 479001600 exhaustive patterns contended$' "$tmp/n12.out"; then
	echo "frontier-smoke: n=12 verdict drifted:" >&2
	cat "$tmp/n12.out" >&2
	exit 1
fi

# Where the reduction cannot apply (pattern-dependent adaptive routing),
# past the wall must be an error, never a silent 12! sweep.
if "$tmp/nbverify" -n 4 -m 8 -r 3 -routing adaptive -sym >"$tmp/bad.out" 2>&1; then
	echo "frontier-smoke: inapplicable -sym past the wall did not error" >&2
	cat "$tmp/bad.out" >&2
	exit 1
fi
if ! grep -q 'symmetry reduction not applicable' "$tmp/bad.out"; then
	echo "frontier-smoke: wrong error for inapplicable -sym:" >&2
	cat "$tmp/bad.out" >&2
	exit 1
fi

echo "frontier-smoke: -sym matches the full engine at n=8 and certifies n=12"
grep '^symmetry:' "$tmp/n12.out"
