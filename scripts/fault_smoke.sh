#!/bin/sh
# Fault-campaign smoke test over real binaries: nbverify -failures on a
# pinned small fabric diffed against the committed golden curves (the
# campaign is deterministic by construction), the same campaign run on a
# worker pool checked for byte-identity, and the same campaign POSTed to
# /v1/failures on a live nbserve — whose rendered response must match the
# local run exactly. The in-process engine properties (parallel ==
# sequential, no router emits a failed path) live in internal/campaign's
# tests; this script proves the CLI flags, the renderer, and the HTTP
# endpoint end to end.
set -eu

GO=${GO:-go}
ADDR=127.0.0.1:18091
ARGS="-n 2 -m 8 -r 4 -seed 1 -failures -fail-scenario tops -fail-max 3 -fail-samples 2 -fail-trials 10 -fail-sim"

tmp=$(mktemp -d)
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	if [ -n "${SMOKE_LOG_DIR:-}" ]; then
		mkdir -p "$SMOKE_LOG_DIR"
		cp "$tmp"/*.log "$tmp"/*.txt "$tmp"/*.err "$SMOKE_LOG_DIR"/ 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/nbverify" ./cmd/nbverify
$GO build -o "$tmp/nbserve" ./cmd/nbserve

# Local campaign against the committed golden.
"$tmp/nbverify" $ARGS >"$tmp/local.txt" 2>"$tmp/local.err"
if ! diff -u testdata/fault_smoke_golden.txt "$tmp/local.txt"; then
	echo "fault-smoke: campaign output drifted from testdata/fault_smoke_golden.txt (regenerate it only if the change is intended)" >&2
	exit 1
fi

# The worker pool is an optimization, not a different answer.
"$tmp/nbverify" $ARGS -fail-workers 4 >"$tmp/parallel.txt" 2>"$tmp/parallel.err"
if ! diff -u "$tmp/local.txt" "$tmp/parallel.txt"; then
	echo "fault-smoke: parallel campaign differs from the sequential run" >&2
	exit 1
fi

# Live /v1/failures: the server computes the same report, so the rendered
# response must equal the local run exactly.
"$tmp/nbserve" -addr "$ADDR" 2>"$tmp/serve.log" &
pids="$pids $!"
i=0
until "$tmp/nbverify" $ARGS -remote "$ADDR" >"$tmp/remote.txt" 2>"$tmp/remote.err"; do
	i=$((i + 1))
	if [ $i -ge 100 ]; then
		echo "fault-smoke: nbserve at $ADDR did not answer:" >&2
		cat "$tmp/remote.err" >&2
		exit 1
	fi
	sleep 0.1
done
if ! diff -u "$tmp/local.txt" "$tmp/remote.txt"; then
	echo "fault-smoke: /v1/failures response differs from the local campaign" >&2
	exit 1
fi

echo "fault-smoke: local, parallel, and /v1/failures campaign curves all match the golden"
