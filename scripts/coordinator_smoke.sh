#!/bin/sh
# Coordinator smoke test over real binaries: two worker nbserve nodes and
# one coordinator on loopback, an n=8 exhaustive sweep submitted with
# `nbverify -remote`, and the distributed verdict diffed against the same
# sweep run on a single worker (the server-local parallel engine). The
# in-process byte-identity proof lives in internal/server's coordinator
# tests; this script proves the flags, the process wiring, and the SSE
# client end to end.
set -eu

GO=${GO:-go}
W1=127.0.0.1:18081
W2=127.0.0.1:18082
COORD=127.0.0.1:18080

tmp=$(mktemp -d)
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	# Preserve server/worker logs for CI artifact upload when asked.
	if [ -n "${SMOKE_LOG_DIR:-}" ]; then
		mkdir -p "$SMOKE_LOG_DIR"
		cp "$tmp"/*.log "$tmp"/*.out "$tmp"/*.err "$SMOKE_LOG_DIR"/ 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/nbserve" ./cmd/nbserve
$GO build -o "$tmp/nbverify" ./cmd/nbverify

"$tmp/nbserve" -addr "$W1" 2>"$tmp/w1.log" &
pids="$pids $!"
"$tmp/nbserve" -addr "$W2" 2>"$tmp/w2.log" &
pids="$pids $!"
"$tmp/nbserve" -addr "$COORD" -coordinator -workers-list "$W1,$W2" 2>"$tmp/coord.log" &
pids="$pids $!"

# run_remote retries until the target node answers (covers startup).
run_remote() {
	addr=$1
	out=$2
	i=0
	while [ $i -lt 100 ]; do
		if "$tmp/nbverify" -remote "$addr" -n 2 -m 2 -r 4 -routing dest-mod >"$out" 2>"$out.err"; then
			return 0
		fi
		i=$((i + 1))
		sleep 0.1
	done
	echo "coordinator-smoke: $addr did not answer:" >&2
	cat "$out.err" >&2
	return 1
}

run_remote "$W1" "$tmp/local.out"    # single node: the in-process engine
run_remote "$COORD" "$tmp/coord.out" # distributed across both workers

grep -E '^(verdict|first blocked)' "$tmp/local.out" >"$tmp/local.verdict"
grep -E '^(verdict|first blocked)' "$tmp/coord.out" >"$tmp/coord.verdict"
if ! diff -u "$tmp/local.verdict" "$tmp/coord.verdict"; then
	echo "coordinator-smoke: distributed verdict differs from local engine" >&2
	exit 1
fi
if ! grep -q 'shards across 2 workers' "$tmp/coord.out"; then
	echo "coordinator-smoke: sweep did not fan out across both workers:" >&2
	cat "$tmp/coord.out" >&2
	exit 1
fi

echo "coordinator-smoke: distributed sweep matches the local engine"
cat "$tmp/coord.verdict"
