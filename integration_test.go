package fclos_test

import (
	"math/rand"
	"testing"

	fclos "repro"
)

// TestIntegrationDesignToDeployment walks the full downstream-user
// pipeline: plan a nonblocking interconnect for a switch radix, build it,
// verify it exactly, route and simulate application workloads, inject
// failures, and confirm the degraded network still performs.
func TestIntegrationDesignToDeployment(t *testing.T) {
	// 1. Feasibility: what can 20-port switches buy?
	proposals, err := fclos.Plan(20)
	if err != nil {
		t.Fatal(err)
	}
	var det fclos.Proposal
	for _, p := range proposals {
		if p.Class == fclos.Deterministic {
			det = p
		}
	}
	if det.Ports == 0 {
		t.Fatal("no deterministic proposal")
	}

	// 2. Build and verify the planned system exactly.
	sys, err := fclos.NewDeterministicSystem(det.N, det.R)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Verify(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Nonblocking {
		t.Fatalf("planned system not nonblocking: %+v", rep)
	}

	// 3. Application workload at crossbar speed.
	cfg := fclos.SimConfig{PacketFlits: 2, PacketsPerPair: 4}
	w, err := fclos.RandomPhases(sys.Ports(), 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	pr, ok := sys.Router.(fclos.PairRouter)
	if !ok {
		t.Fatal("deterministic system should expose a PairRouter")
	}
	run, err := fclos.RunWorkload(sys.F.Net, pr, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fclos.RunWorkloadCrossbar(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := run.Slowdown(ref); s > 1.6 {
		t.Fatalf("workload slowdown %.2f", s)
	}
	if run.ContendedPhases() != 0 {
		t.Fatal("nonblocking system contended")
	}

	// 4. Harden with spares and fail two top switches.
	f := fclos.NewFoldedClos(det.N, det.N*det.N+2, det.R)
	failed := map[int]bool{1: true, 5: true}
	spared, err := fclos.NewPaperDeterministicSpared(f, failed)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := fclos.CheckLemma1AllPairs(spared, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	if !l1.Nonblocking {
		t.Fatal("spared system not nonblocking under failures")
	}

	// 5. Adaptive alternative on the same radix budget: verify sweeps and
	// measure its top-switch demand on a random permutation.
	ad, err := fclos.NewAdaptiveSystem(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	p := fclos.RandomPermutation(rng, ad.Ports())
	a, contention, err := ad.RoutePattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if contention.HasContention() {
		t.Fatal("adaptive system contended")
	}
	if a.TopSwitchesUsed == 0 || a.TopSwitchesUsed > ad.F.M {
		t.Fatalf("top switch accounting wrong: %d of %d", a.TopSwitchesUsed, ad.F.M)
	}
}

// TestIntegrationBaselinesBehaveAsPaperPredicts cross-checks the paper's
// qualitative hierarchy end to end on one configuration: crossbar =
// nonblocking ftree < adaptive budget < deterministic budget < FT(N,2)
// with static routing.
func TestIntegrationBaselinesBehaveAsPaperPredicts(t *testing.T) {
	n := 2
	f := fclos.NewNonblockingFtree(n, n+n*n)
	paper, err := fclos.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fclos.SimConfig{PacketFlits: 2, PacketsPerPair: 6}
	sumNB, err := fclos.CompareToCrossbar(f.Net, paper, f.Ports(), 5, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ft := fclos.NewMPortNTree(n+n*n, 2)
	sumFT, err := fclos.CompareToCrossbar(ft.Net, fclos.NewMNTDestMod(ft), ft.Hosts(), 5, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sumNB.MeanSlowdown >= sumFT.MeanSlowdown {
		t.Fatalf("nonblocking (%.2f) should beat static fat-tree (%.2f)", sumNB.MeanSlowdown, sumFT.MeanSlowdown)
	}
	// Condition hierarchy: rearrangeable < adaptive budget < deterministic
	// for large n (asymptotic regime).
	bigN := 32
	if !(fclos.ClosRearrangeableM(bigN) < fclos.AdaptiveSimpleM(bigN, 2) &&
		fclos.AdaptiveSimpleM(bigN, 2) < fclos.DeterministicMinM(bigN)) {
		t.Fatal("condition hierarchy violated at n=32")
	}
}
