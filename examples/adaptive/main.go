// Adaptive routing: run NONBLOCKINGADAPTIVE (Fig. 4 of the paper) on
// random and adversarial permutations and compare the number of top-level
// switches it consumes against the deterministic requirement m = n² and
// the paper's analytic bounds — the §V claim that local adaptivity makes
// nonblocking folded-Clos networks cheaper.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	fclos "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tr=n²\tadaptive m (random worst of 20)\tadaptive m (adversarial)\tsimple bound\tdeterministic n²")

	for _, n := range []int{4, 6, 8, 10, 12, 16} {
		r := n * n
		ftree := fclos.NewFoldedClos(n, 1, r) // topology only; demand measured via Plan
		router, err := fclos.NewNonblockingAdaptive(ftree)
		if err != nil {
			log.Fatal(err)
		}
		worstRandom := 0
		for trial := 0; trial < 20; trial++ {
			p := fclos.RandomPermutation(rng, ftree.Ports())
			need, err := router.RequiredM(p)
			if err != nil {
				log.Fatal(err)
			}
			if need > worstRandom {
				worstRandom = need
			}
		}
		adversarial, err := router.RequiredM(adversary(n, r, router.C))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\n",
			n, r, worstRandom, adversarial,
			fclos.AdaptiveSimpleM(n, router.C), fclos.DeterministicMinM(n))
	}
	tw.Flush()

	// End-to-end check on one instance: build a system with the simple
	// worst-case budget and confirm a hostile pattern routes clean.
	fmt.Println()
	sys, err := fclos.NewAdaptiveSystem(6, 36)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system %s with m = %d (vs deterministic n² = %d)\n",
		sys.F.Net.Name, sys.F.M, fclos.DeterministicMinM(6))
	p := adversary(6, 36, 2)
	a, contention, err := sys.RoutePattern(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adversarial permutation: %d pairs, %d configurations, %d top switches, contention: %v\n",
		len(a.Pairs), a.Configurations, a.TopSwitchesUsed, contention.HasContention())
}

// adversary builds the low-digit-spread permutation that maximizes the
// configurations NONBLOCKINGADAPTIVE needs.
func adversary(n, r, c int) *fclos.Permutation {
	// Re-exported generator: greedy low-spread destinations per switch.
	return fclos.GreedyLowSpread(n, r, c)
}
