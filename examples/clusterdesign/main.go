// Cluster design: the feasibility analysis the paper motivates. Given the
// port count of the switches you can buy, enumerate the nonblocking
// interconnects each routing class can build, their host counts and their
// cost — then regenerate Table I and the multi-level scaling comparison.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	fclos "repro"
)

func main() {
	for _, radix := range []int{20, 30, 42} {
		fmt.Printf("== switches with %d ports ==\n", radix)
		props, err := fclos.Plan(radix)
		if err != nil {
			log.Fatal(err)
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "class\tftree(n+m,r)\thosts\tswitches\tswitches/host\tcondition")
		for _, p := range props {
			fmt.Fprintf(tw, "%s\tftree(%d+%d,%d)\t%d\t%d\t%.3f\t%s\n",
				p.Class, p.N, p.M, p.R, p.Ports, p.Switches, p.CostPerPort(), p.Note)
		}
		tw.Flush()
		fmt.Println()
	}

	fmt.Println("== Table I (paper) ==")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "switch ports\tnonblocking sw/ports\tFT(N,2) sw/ports")
	for _, row := range fclos.PaperTableI() {
		fmt.Fprintf(tw, "%d\t%d/%d\t%d/%d\n", row.SwitchPorts,
			row.Nonblocking.Switches, row.Nonblocking.Ports,
			row.Rearrangeable.Switches, row.Rearrangeable.Ports)
	}
	tw.Flush()

	fmt.Println()
	fmt.Println("== growing beyond two levels (Discussion §IV.A) ==")
	rows, err := fclos.ScalingTable([]int{4, 5, 6})
	if err != nil {
		log.Fatal(err)
	}
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "N\t2-level nonblocking\t3-level nonblocking\treplace-bottom (rejected)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d sw / %d hosts\t%d sw / %d hosts\t%d sw / %d hosts\n",
			r.N,
			r.Nonblocking2L.Switches, r.Nonblocking2L.Ports,
			r.Nonblocking3L.Switches, r.Nonblocking3L.Ports,
			r.ReplaceBottomVariant.Switches, r.ReplaceBottomVariant.Ports)
	}
	tw.Flush()
	fmt.Println("Theorem 1 in action: replacing bottom switches adds cost but no hosts;")
	fmt.Println("replacing top switches (the 3-level column) scales the network.")
}
