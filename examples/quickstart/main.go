// Quickstart: build the paper's nonblocking folded-Clos network, verify
// the nonblocking property exactly, route a random permutation and show
// that no link carries more than one SD pair.
package main

import (
	"fmt"
	"log"
	"math/rand"

	fclos "repro"
)

func main() {
	// ftree(4+16, 20): the Table-I design built from 20-port switches —
	// 80 hosts, 36 switches, nonblocking with the Theorem-3 routing.
	sys, err := fclos.NewDeterministicSystem(4, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d hosts, %d switches\n",
		sys.F.Net.Name, sys.Ports(), sys.F.Switches())

	// Exact verification: Lemma 1 over all r(r−1)n² SD pairs.
	rep, err := sys.Verify(0, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nonblocking (exact %s): %v\n", rep.Method, rep.Nonblocking)

	// Route a random permutation and inspect link loads.
	rng := rand.New(rand.NewSource(2011))
	perm := fclos.RandomPermutation(rng, sys.Ports())
	assignment, contention, err := sys.RoutePattern(perm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed %d SD pairs\n", len(assignment.Pairs))
	fmt.Printf("contended links: %d, max SD pairs on any link: %d\n",
		len(contention.Contended), contention.MaxLoad)

	// Contrast: destination-mod static routing on the same network.
	destMod := fclos.NewDestMod(sys.F)
	a2, err := destMod.Route(perm)
	if err != nil {
		log.Fatal(err)
	}
	rep2 := fclos.CheckContention(a2)
	fmt.Printf("same permutation under %s: %d contended links, max load %d\n",
		destMod.Name(), len(rep2.Contended), rep2.MaxLoad)
}
