// Collectives: the application-level payoff of a nonblocking interconnect.
// Classic HPC collectives (all-to-all, recursive-doubling exchanges, 2-D
// halo exchanges, matrix transposes) decompose into sequences of
// permutation phases. On the paper's nonblocking folded-Clos every phase
// runs contention-free at crossbar speed; on the same network with static
// destination-keyed routing, and on a conventional fat-tree, phases
// serialize on shared links.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	fclos "repro"
	"repro/internal/workload"
)

func main() {
	const n = 3
	f := fclos.NewNonblockingFtree(n, n+n*n) // ftree(3+9,12): 36 hosts
	hosts := f.Ports()
	paper, err := fclos.NewPaperDeterministic(f)
	if err != nil {
		log.Fatal(err)
	}
	destMod := fclos.NewDestMod(f)
	cfg := fclos.SimConfig{PacketFlits: 4, PacketsPerPair: 8, Arbiter: fclos.ArbiterRoundRobin}

	var workloads []*workload.Workload
	for _, build := range []func() (*workload.Workload, error){
		func() (*workload.Workload, error) { return workload.AllToAll(hosts) },
		func() (*workload.Workload, error) { return workload.RingExchange(hosts) },
		func() (*workload.Workload, error) { return workload.Stencil2D(6, 6) },
		func() (*workload.Workload, error) { return workload.TransposeWorkload(6, 6) },
		func() (*workload.Workload, error) { return workload.RandomPhases(hosts, 8, 2011) },
	} {
		w, err := build()
		if err != nil {
			log.Fatal(err)
		}
		workloads = append(workloads, w)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "collective\tphases\tcrossbar cycles\tnonblocking (slowdown)\tdest-mod (slowdown)\tdest-mod contended phases")
	for _, w := range workloads {
		ref, err := workload.RunCrossbar(w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		nb, err := workload.Run(f.Net, paper, w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		dm, err := workload.Run(f.Net, destMod, w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d (%.2fx)\t%d (%.2fx)\t%d/%d\n",
			w.Name, len(w.Phases), ref.TotalCycles,
			nb.TotalCycles, nb.Slowdown(ref),
			dm.TotalCycles, dm.Slowdown(ref),
			dm.ContendedPhases(), len(w.Phases))
	}
	tw.Flush()
	fmt.Println()
	fmt.Println("every phase of every collective is a permutation: the nonblocking network")
	fmt.Println("(Theorem 3) runs each at crossbar speed plus fixed pipeline depth.")
}
