// Simulation: the Hoefler-style motivation experiment ([5], [7] in the
// paper). Classically "nonblocking" fat-trees with static routing deliver
// far less than crossbar throughput on random permutations; the paper's
// nonblocking construction matches the crossbar. Cycle-accurate packet
// simulation, distributed per-link arbitration.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	fclos "repro"
)

func main() {
	const (
		n      = 3  // hosts per bottom switch
		trials = 10 // random permutations per configuration
		seed   = 42
	)
	cfg := fclos.SimConfig{
		PacketFlits:    4,
		PacketsPerPair: 16,
		Arbiter:        fclos.ArbiterRoundRobin,
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "network\trouting\thosts\tmean slowdown\tmax slowdown\trel. throughput")

	// (a) The paper's nonblocking ftree(n+n², n+n²).
	nb := fclos.NewNonblockingFtree(n, n+n*n)
	paper, err := fclos.NewPaperDeterministic(nb)
	if err != nil {
		log.Fatal(err)
	}
	row(tw, nb.Net.Name, paper.Name(), nb.Ports(), must(fclos.CompareToCrossbar(nb.Net, paper, nb.Ports(), trials, seed, cfg)))

	// (b) Same network, destination-mod static routing.
	row(tw, nb.Net.Name, "dest-mod", nb.Ports(), must(fclos.CompareToCrossbar(nb.Net, fclos.NewDestMod(nb), nb.Ports(), trials, seed, cfg)))

	// (c) The rearrangeably nonblocking FT(N,2) with InfiniBand-style
	// destination routing — "nonblocking" on paper, blocking in practice.
	ft := fclos.NewMPortNTree(n+n*n, 2)
	row(tw, ft.Net.Name, "mnt-dest-mod", ft.Hosts(), must(fclos.CompareToCrossbar(ft.Net, fclos.NewMNTDestMod(ft), ft.Hosts(), trials, seed, cfg)))

	// (d) FT(N,2) with frozen random routing [6].
	row(tw, ft.Net.Name, "mnt-random-fixed", ft.Hosts(), must(fclos.CompareToCrossbar(ft.Net, fclos.NewMNTRandomFixed(ft, seed), ft.Hosts(), trials, seed, cfg)))

	tw.Flush()
	fmt.Println()
	fmt.Println("slowdown 1.0x = ideal crossbar. The nonblocking construction pays only")
	fmt.Println("its fixed pipeline depth; static routings serialize colliding flows.")
}

func row(tw *tabwriter.Writer, network, router string, hosts int, s *fclos.ThroughputSummary) {
	fmt.Fprintf(tw, "%s\t%s\t%d\t%.2fx\t%.2fx\t%.2f\n",
		network, router, hosts, s.MeanSlowdown, s.MaxSlowdown, s.MeanRelThroughput)
}

func must(s *fclos.ThroughputSummary, err error) *fclos.ThroughputSummary {
	if err != nil {
		log.Fatal(err)
	}
	return s
}
