// Package fclos is a from-scratch Go reproduction of Xin Yuan,
// "On Nonblocking Folded-Clos Networks in Computer Communication
// Environments" (IPPS 2011). It provides:
//
//   - builders for folded-Clos fat-trees ftree(n+m, r), three-stage Clos
//     networks, m-port n-trees, k-ary n-trees, crossbars and the paper's
//     recursive multi-level nonblocking construction (package
//     internal/topology, re-exported here);
//   - every routing scheme the paper analyzes — the Theorem-3 nonblocking
//     single-path deterministic routing, traffic-oblivious multipath,
//     the local adaptive algorithm NONBLOCKINGADAPTIVE, plus baselines
//     (destination-mod static routing, centralized rearrangeable routing
//     via bipartite edge coloring);
//   - exact and randomized nonblocking verification (Lemma 1 all-pairs
//     analysis, exhaustive and seeded permutation sweeps);
//   - the closed-form nonblocking conditions (Theorems 1, 2, 5; Lemmas 2
//     and 6) and the Table-I cost model;
//   - a deterministic cycle-accurate packet simulator for throughput
//     experiments against a crossbar reference.
//
// Quick start — build the nonblocking network of Theorem 3, route a
// permutation, confirm zero contention:
//
//	sys, _ := fclos.NewDeterministicSystem(4, 20) // ftree(4+16, 20), 80 hosts
//	rep, _ := sys.Verify(0, 0, 0)                 // exact Lemma-1 decision
//	fmt.Println(rep.Nonblocking)                  // true
//
// The cmd/ directory ships CLI tools (ftree, nbverify, nbtables, nbsim)
// and examples/ contains runnable scenario walkthroughs.
package fclos

import (
	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/conditions"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/design"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Topologies
// ---------------------------------------------------------------------------

// Re-exported topology types. See package internal/topology for full
// documentation of each.
type (
	// Network is the directed-graph model all topologies share.
	Network = topology.Network
	// NodeID identifies a host or switch.
	NodeID = topology.NodeID
	// LinkID identifies a directed link.
	LinkID = topology.LinkID
	// Path is a route through a Network.
	Path = topology.Path
	// FoldedClos is the two-level fat-tree ftree(n+m, r).
	FoldedClos = topology.FoldedClos
	// Clos is the three-stage unidirectional Clos(n, m, r).
	Clos = topology.Clos
	// Crossbar is the single-switch reference interconnect.
	Crossbar = topology.Crossbar
	// MPortNTree is the m-port n-tree FT(m, n) of Lin et al.
	MPortNTree = topology.MPortNTree
	// KAryNTree is the k-ary n-tree of Petrini and Vanneschi.
	KAryNTree = topology.KAryNTree
	// ThreeLevelFtree is the recursive 3-level nonblocking construction.
	ThreeLevelFtree = topology.ThreeLevelFtree
	// MultiFtree is the generic L-level recursive nonblocking network.
	MultiFtree = topology.MultiFtree
	// Benes is the rearrangeable Benes network B(k) on 2^k terminals.
	Benes = topology.Benes
	// XGFT is the extended generalized fat tree of Öhring et al.
	XGFT = topology.XGFT
)

// NewFoldedClos builds ftree(n+m, r): r bottom switches with n hosts each,
// m top switches of radix r.
func NewFoldedClos(n, m, r int) *FoldedClos { return topology.NewFoldedClos(n, m, r) }

// NewNonblockingFtree builds ftree(n+n², r), the smallest folded-Clos that
// is nonblocking under single-path deterministic routing (Theorems 2–3).
func NewNonblockingFtree(n, r int) *FoldedClos { return topology.NewFoldedClos(n, n*n, r) }

// NewClos builds the three-stage Clos(n, m, r).
func NewClos(n, m, r int) *Clos { return topology.NewClos(n, m, r) }

// NewCrossbar builds an n-port crossbar.
func NewCrossbar(n int) *Crossbar { return topology.NewCrossbar(n) }

// NewMPortNTree builds the m-port n-tree FT(m, levels).
func NewMPortNTree(m, levels int) *MPortNTree { return topology.NewMPortNTree(m, levels) }

// NewKAryNTree builds the k-ary n-tree.
func NewKAryNTree(k, levels int) *KAryNTree { return topology.NewKAryNTree(k, levels) }

// NewThreeLevelFtree builds the recursive three-level nonblocking network
// with n hosts per bottom switch and r bottom switches (r divisible by n);
// the canonical instance uses r = n³+n².
func NewThreeLevelFtree(n, r int) *ThreeLevelFtree { return topology.NewThreeLevelFtree(n, r) }

// NewMultiFtree builds the canonical L-level recursive nonblocking network
// (n^(L+1)+n^L hosts from (n+n²)-port switches).
func NewMultiFtree(n, levels int) *MultiFtree { return topology.NewMultiFtree(n, levels) }

// NewBenes builds the Benes network B(k) on 2^k terminals.
func NewBenes(k int) *Benes { return topology.NewBenes(k) }

// NewXGFT builds XGFT(h; m…; w…), the per-level-parameterized fat-tree
// family ([13]); XGFT(2; [n, r]; [1, m]) is exactly ftree(n+m, r).
func NewXGFT(h int, m, w []int) *XGFT { return topology.NewXGFT(h, m, w) }

// WriteDOT renders a network in Graphviz DOT format.
var WriteDOT = topology.WriteDOT

// ---------------------------------------------------------------------------
// Permutations
// ---------------------------------------------------------------------------

// Permutation is a (possibly partial) permutation communication pattern
// (Definition 1 of the paper).
type Permutation = permutation.Permutation

// Pair is one source→destination communication.
type Pair = permutation.Pair

// Permutation constructors and generators; see internal/permutation.
var (
	NewPermutation    = permutation.New
	PermFromPairs     = permutation.FromPairs
	PermFromDsts      = permutation.FromDsts
	RandomPermutation = permutation.Random
	RandomPartial     = permutation.RandomPartial
	IdentityPerm      = permutation.Identity
	ShiftPerm         = permutation.Shift
	TransposePerm     = permutation.Transpose
	BitReversalPerm   = permutation.BitReversal
	NeighborPerm      = permutation.Neighbor
	SwitchShiftPerm   = permutation.SwitchShift
	LocalRotatePerm   = permutation.LocalRotate
	GreedyLowSpread   = permutation.GreedyLowSpread
	ButterflyPerm     = permutation.Butterfly
	EnumerateFull     = permutation.EnumerateFull
	EnumerateSubsets  = permutation.EnumerateSubsets
	// ParsePermutation reads "0->3 1->2"-style patterns.
	ParsePermutation = permutation.Parse
)

// BlockSymmetry is the host-relabeling automorphism group S_b ≀ S_r of a
// folded-Clos fabric (hosts interchangeable within a bottom switch, bottom
// switches interchangeable), acting on patterns by conjugation. It backs
// the symmetry-reduced exhaustive sweeps.
type BlockSymmetry = permutation.BlockSymmetry

var (
	// NewBlockSymmetry builds the group for hosts split into blocks of
	// blockSize consecutive hosts; SymFeasible reports whether the reduced
	// enumeration applies to that geometry without building anything.
	NewBlockSymmetry = permutation.NewBlockSymmetry
	SymFeasible      = permutation.SymFeasible
)

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

// Routing types; see internal/routing.
type (
	// Router routes whole communication patterns.
	Router = routing.Router
	// PairRouter is a single-path deterministic router.
	PairRouter = routing.PairRouter
	// Assignment is the set of paths carrying each SD pair.
	Assignment = routing.Assignment
	// NonblockingAdaptive is algorithm NONBLOCKINGADAPTIVE (Fig. 4).
	NonblockingAdaptive = routing.NonblockingAdaptive
	// RouteTable is the precomputed all-pairs link-set cache (CSR layout)
	// behind the incremental sweep engine.
	RouteTable = routing.RouteTable
)

// Route-table construction; see internal/routing.
var (
	// BuildRouteTable precomputes every SD pair's deduplicated link set
	// for a router with pattern-independent paths. It returns
	// ErrPatternDependent for adaptive/global routers.
	BuildRouteTable = routing.BuildRouteTable
	// ErrPatternDependent marks routers whose per-pair link sets cannot
	// be cached.
	ErrPatternDependent = routing.ErrPatternDependent
)

// Router constructors; see internal/routing for the scheme definitions.
var (
	// NewPaperDeterministic is the Theorem-3 routing (requires m ≥ n²).
	NewPaperDeterministic = routing.NewPaperDeterministic
	// NewPaperDeterministicFolded folds top indices mod m (blocks when
	// m < n²; used for tightness experiments).
	NewPaperDeterministicFolded = routing.NewPaperDeterministicFolded
	// NewDestMod / NewSourceMod / NewDestSwitchMod are static baselines.
	NewDestMod       = routing.NewDestMod
	NewSourceMod     = routing.NewSourceMod
	NewDestSwitchMod = routing.NewDestSwitchMod
	// NewRandomFixed freezes a random path per SD pair.
	NewRandomFixed = routing.NewRandomFixed
	// NewFullSpray / NewKSpray / NewPaperMultipath are §IV.B oblivious
	// multipath schemes.
	NewFullSpray      = routing.NewFullSpray
	NewKSpray         = routing.NewKSpray
	NewPaperMultipath = routing.NewPaperMultipath
	// NewNonblockingAdaptive is NONBLOCKINGADAPTIVE (§V).
	NewNonblockingAdaptive = routing.NewNonblockingAdaptive
	// NewGreedyLocal is the local adaptive baseline without Class-DIFF.
	NewGreedyLocal = routing.NewGreedyLocal
	// NewGlobalRearrangeable / NewClosRearrangeable realize the Benes
	// m ≥ n condition by bipartite edge coloring (centralized control).
	NewGlobalRearrangeable = routing.NewGlobalRearrangeable
	NewClosRearrangeable   = routing.NewClosRearrangeable
	// NewBenesLooping routes any permutation on B(k) edge-disjointly
	// via the classic looping algorithm.
	NewBenesLooping = routing.NewBenesLooping
	// EdgeColorBipartite is the coloring engine itself.
	EdgeColorBipartite = routing.EdgeColorBipartite
	// m-port n-tree routers.
	NewMNTDestMod     = routing.NewMNTDestMod
	NewMNTRandomFixed = routing.NewMNTRandomFixed
	NewMNTSpray       = routing.NewMNTSpray
	// k-ary n-tree routers.
	NewKAryDestMod     = routing.NewKAryDestMod
	NewKAryRandomFixed = routing.NewKAryRandomFixed
	// NewThreeLevelPaper routes the recursive 3-level construction;
	// NewMultiLevelPaper the generic L-level one.
	NewThreeLevelPaper = routing.NewThreeLevelPaper
	NewMultiLevelPaper = routing.NewMultiLevelPaper
	// NewCrossbarRouter routes the reference crossbar.
	NewCrossbarRouter = routing.NewCrossbarRouter
	// NewPaperDeterministicSpared hardens the Theorem-3 scheme with
	// dedicated spare top switches for fault tolerance.
	NewPaperDeterministicSpared = routing.NewPaperDeterministicSpared
	// NewClosOnline manages circuits under the classic telephone model.
	NewClosOnline = routing.NewClosOnline
	// ReplayClosEvents applies an online setup/teardown sequence.
	ReplayClosEvents = routing.Replay
)

// Online circuit-switching types (§II baselines).
type (
	// ClosOnline is the online connection manager.
	ClosOnline = routing.ClosOnline
	// ClosEvent is one setup or teardown request.
	ClosEvent = routing.ClosEvent
	// ClosPolicy selects the middle-switch strategy.
	ClosPolicy = routing.ClosPolicy
	// SparedDeterministic is the fault-hardened Theorem-3 router.
	SparedDeterministic = routing.SparedDeterministic
)

// Online middle-switch selection policies.
const (
	// PolicyFirstFit realizes Clos strict-sense behaviour at m ≥ 2n−1.
	PolicyFirstFit = routing.FirstFit
	// PolicyPacking is the Yang–Wang wide-sense strategy.
	PolicyPacking = routing.Packing
	// PolicyLeastLoaded spreads circuits (provably inferior).
	PolicyLeastLoaded = routing.LeastLoaded
)

// ---------------------------------------------------------------------------
// Analysis and verification
// ---------------------------------------------------------------------------

// Analysis types; see internal/analysis.
type (
	// ContentionReport is the per-link load analysis of an assignment.
	ContentionReport = analysis.Report
	// Lemma1Result is the exact all-pairs nonblocking decision.
	Lemma1Result = analysis.Lemma1Result
	// SweepResult summarizes a permutation sweep.
	SweepResult = analysis.SweepResult
	// SymStats reports how a symmetry-reduced sweep executed (applied vs
	// fell back, orbit count, group order).
	SymStats = analysis.SymStats
	// Checker is the reusable flat-array contention accounting scratch
	// backing CheckContention and the sweeps; hoist one outside a loop to
	// analyze many patterns without per-pattern allocation.
	Checker = analysis.Checker
	// DeltaChecker is the incremental counterpart of Checker for
	// swap-adjacent enumerations over a precomputed RouteTable.
	DeltaChecker = analysis.DeltaChecker
)

// Verification entry points; see internal/analysis.
var (
	// CheckContention computes link loads of a routed pattern.
	CheckContention = analysis.Check
	// ComputeLoadStats summarizes a routed pattern's per-link load
	// distribution.
	ComputeLoadStats = analysis.ComputeLoadStats
	// NewChecker builds a reusable Checker (nil network is allowed; the
	// scratch grows on demand).
	NewChecker = analysis.NewChecker
	// NewDeltaChecker builds an incremental checker over a RouteTable.
	NewDeltaChecker = analysis.NewDeltaChecker
	// CheckLemma1AllPairs decides nonblocking exactly for deterministic
	// routing (Lemma 1); the Parallel variant shards the all-pairs
	// routing by source host with an identical result.
	CheckLemma1AllPairs         = analysis.CheckLemma1AllPairs
	CheckLemma1AllPairsParallel = analysis.CheckLemma1AllPairsParallel
	// BlockingWitness extracts a blocked two-pair permutation from a
	// Lemma-1 violation.
	BlockingWitness = analysis.BlockingWitness
	// SweepExhaustive / SweepRandom test many permutations;
	// SweepExhaustiveParallel shards the n! patterns over a worker pool.
	// Routers with pattern-independent paths are swept by the incremental
	// delta engine over a precomputed RouteTable; SweepExhaustiveOracle
	// forces the per-pattern reference engine, and
	// SweepExhaustiveFirstBlocked stops at the first contended pattern.
	SweepExhaustive             = analysis.SweepExhaustive
	SweepExhaustiveParallel     = analysis.SweepExhaustiveParallel
	SweepExhaustiveOracle       = analysis.SweepExhaustiveOracle
	SweepExhaustiveFirstBlocked = analysis.SweepExhaustiveFirstBlocked
	SweepRandom                 = analysis.SweepRandom

	// Symmetry-reduced sweeps: byte-identical to their full counterparts,
	// sweeping one canonical representative per BlockSymmetry orbit (with
	// counters scaled by orbit size) wherever the routing is equivariant,
	// and falling back to the full engine where it is not. SymApplicable
	// prechecks applicability without sweeping.
	SweepExhaustiveSym             = analysis.SweepExhaustiveSym
	SweepExhaustiveSymCtx          = analysis.SweepExhaustiveSymCtx
	SweepExhaustiveSymFirstBlocked = analysis.SweepExhaustiveSymFirstBlocked
	SymApplicable                  = analysis.SymApplicable

	// The Ctx variants accept a context.Context and support cooperative
	// cancellation: workers poll the context on a stride outside the
	// per-pattern hot loop, so a context.Background() run costs one nil
	// check per pattern and matches the plain variants exactly. On
	// cancellation they return the partial result plus ctx.Err().
	SweepExhaustiveCtx             = analysis.SweepExhaustiveCtx
	SweepExhaustiveParallelCtx     = analysis.SweepExhaustiveParallelCtx
	SweepExhaustiveOracleCtx       = analysis.SweepExhaustiveOracleCtx
	SweepExhaustiveFirstBlockedCtx = analysis.SweepExhaustiveFirstBlockedCtx
	SweepRandomCtx                 = analysis.SweepRandomCtx
	// BlockingProbability estimates P(contention) over random
	// permutations (Parallel variant splits trials across workers).
	BlockingProbability         = analysis.BlockingProbability
	BlockingProbabilityParallel = analysis.BlockingProbabilityParallel
	// MaxRootPairsModes / MaxRootPairsNaive / RootSetWitness /
	// CheckRootSet are the Lemma-2 exact searches.
	MaxRootPairsModes         = analysis.MaxRootPairsModes
	MaxRootPairsModesParallel = analysis.MaxRootPairsModesParallel
	MaxRootPairsNaive         = analysis.MaxRootPairsNaive
	RootSetWitness            = analysis.RootSetWitness
	CheckRootSet              = analysis.CheckRootSet
)

// WorstCaseSearch hill-climbs for maximally contended permutations.
type WorstCaseSearch = analysis.WorstCaseSearch

// Analytic randomized-routing model ([6]); see internal/analysis.
var (
	// ModelRandomClearProb approximates P(random permutation clear)
	// under uniform random top-switch choices.
	ModelRandomClearProb = analysis.ModelRandomClearProb
	// MeasureRandomClearProb estimates the same by Monte Carlo.
	MeasureRandomClearProb = analysis.MeasureRandomClearProb
	// ModelExpectedCollisions is the first-order collision count 2r·C(n,2)/m.
	ModelExpectedCollisions = analysis.ModelExpectedCollisions
	// WorstCaseLinkLoad computes the exact worst-case permutation load
	// per link (maximum matching); WorstCasePermutationFor constructs a
	// permutation realizing it. The Parallel variant shards the
	// underlying all-pairs routing by source host.
	WorstCaseLinkLoad         = analysis.WorstCaseLinkLoad
	WorstCaseLinkLoadParallel = analysis.WorstCaseLinkLoadParallel
	WorstCasePermutationFor   = analysis.WorstCasePermutationFor
)

// ---------------------------------------------------------------------------
// Conditions (closed forms) and cost model
// ---------------------------------------------------------------------------

// Closed-form conditions; see internal/conditions.
var (
	Lemma2Cap                          = conditions.Lemma2Cap
	CrossSwitchPairs                   = conditions.CrossSwitchPairs
	DeterministicMinM                  = conditions.DeterministicMinM
	IsDeterministicNonblockingFeasible = conditions.IsDeterministicNonblockingFeasible
	SmallTopMinM                       = conditions.SmallTopMinM
	Theorem1PortBound                  = conditions.Theorem1PortBound
	SmallestC                          = conditions.SmallestC
	AdaptiveSimpleM                    = conditions.AdaptiveSimpleM
	AdaptiveRecurrenceT                = conditions.AdaptiveRecurrenceT
	AdaptiveTheorem5M                  = conditions.AdaptiveTheorem5M
	AdaptiveAsymptote                  = conditions.AdaptiveAsymptote
	Lemma6MinSpread                    = conditions.Lemma6MinSpread
	Lemma6Spread                       = conditions.Lemma6Spread
	ClosStrictM                        = conditions.ClosStrictM
	ClosRearrangeableM                 = conditions.ClosRearrangeableM
)

// Cost-model types; see internal/cost.
type (
	// Design summarizes one interconnect build.
	Design = cost.Design
	// TableIRow is one row of the paper's Table I.
	TableIRow = cost.TableIRow
	// ScalingRow compares 2- and 3-level constructions.
	ScalingRow = cost.ScalingRow
)

// Cost-model entry points; see internal/cost.
var (
	// TableI regenerates Table I for given building-block sizes.
	TableI = cost.TableI
	// PaperTableI is Table I with 20/30/42-port switches.
	PaperTableI = cost.PaperTableI
	// NonblockingFtreeDesign is the ftree(n+n², n+n²) cost row.
	NonblockingFtreeDesign = cost.NonblockingFtree
	// ThreeLevelNonblockingDesign is the recursive 3-level cost row.
	ThreeLevelNonblockingDesign = cost.ThreeLevelNonblocking
	// ScalingTable is the Discussion's multi-level comparison.
	ScalingTable = cost.ScalingTable
)

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

// Simulator types; see internal/sim.
type (
	// SimConfig parameterizes a simulation run.
	SimConfig = sim.Config
	// SimResult is one run's metrics.
	SimResult = sim.Result
	// SimFlow is one SD pair's traffic.
	SimFlow = sim.Flow
	// ThroughputSummary aggregates crossbar-relative performance.
	ThroughputSummary = sim.ThroughputSummary
)

// Simulator entry points; see internal/sim.
var (
	// Simulate runs flows over a network.
	Simulate = sim.Run
	// SimulatePermutation routes then simulates one pattern.
	SimulatePermutation = sim.RunPermutation
	// CrossbarReference simulates the pattern on an ideal crossbar.
	CrossbarReference = sim.CrossbarReference
	// CompareToCrossbar reports slowdown statistics over random patterns.
	CompareToCrossbar = sim.CompareToCrossbar
	// FlowsFromAssignment adapts routing output for the simulator.
	FlowsFromAssignment = sim.FlowsFromAssignment
	// RunTrials simulates seeded random permutations sequentially.
	RunTrials = sim.RunTrials
	// RunTrialsParallel / LoadSweepParallel / CompareToCrossbarParallel
	// are the deterministic parallel drivers: worker pools whose merged
	// output is byte-identical to the sequential counterparts.
	RunTrialsParallel         = sim.RunTrialsParallel
	LoadSweepParallel         = sim.LoadSweepParallel
	CompareToCrossbarParallel = sim.CompareToCrossbarParallel
	// OpenLoop / LoadSweep run rate-injected (open-loop) simulations;
	// OpenLoopResult.Undelivered reports in-flight packets on saturated
	// aborts.
	OpenLoop  = sim.OpenLoop
	LoadSweep = sim.LoadSweep
	// PairPathsFunc / MultiPathsFunc / AssignmentPathsFunc adapt routers
	// for open-loop runs; PermPairs converts a destination vector.
	PairPathsFunc       = sim.PairPathsFunc
	MultiPathsFunc      = sim.MultiPathsFunc
	AssignmentPathsFunc = sim.AssignmentPathsFunc
	PermPairs           = sim.PermPairs
)

// Open-loop simulation types.
type (
	// OpenLoopConfig parameterizes rate-injected runs.
	OpenLoopConfig = sim.OpenLoopConfig
	// OpenLoopResult is one open-loop run's metrics.
	OpenLoopResult = sim.OpenLoopResult
	// LoadSweepPoint is one offered-load sample.
	LoadSweepPoint = sim.LoadSweepPoint
)

// Observability types; see internal/sim. Attaching a Collector to a
// SimConfig/OpenLoopConfig records per-link utilization and queue depths,
// the per-stage hop-latency breakdown, and the end-to-end latency
// histogram; with no collector the engines pay nothing.
type (
	// Metrics is one run's (or merge's) observability payload.
	Metrics = sim.Metrics
	// LinkStats is per-link busy/queue accounting.
	LinkStats = sim.LinkStats
	// StageStats is the per-pipeline-stage hop-latency breakdown.
	StageStats = sim.StageStats
	// Histogram is the power-of-two-bucket latency histogram.
	Histogram = sim.Histogram
	// Collector is the engine-side observability interface.
	Collector = sim.Collector
	// MetricsCollector is the pooled default Collector.
	MetricsCollector = sim.MetricsCollector
)

// Observability entry points; see internal/sim.
var (
	// NewMetricsCollector returns a reusable default collector.
	NewMetricsCollector = sim.NewMetricsCollector
	// AggregateMetrics merges per-trial metrics in trial order.
	AggregateMetrics = sim.AggregateMetrics
	// StageName names a pipeline stage for reports and JSON.
	StageName = sim.StageName
)

// Pipeline stages of a folded-Clos traversal, as reported by StageStats.
const (
	StageInjection = sim.StageInjection
	StageUp        = sim.StageUp
	StageDown      = sim.StageDown
	StageDrain     = sim.StageDrain
	NumStages      = sim.NumStages
)

// Simulator enum re-exports.
const (
	// ArbiterOldestFirst serves the longest-waiting packet.
	ArbiterOldestFirst = sim.OldestFirst
	// ArbiterRoundRobin cycles over flows.
	ArbiterRoundRobin = sim.RoundRobin
	// SprayRoundRobin / SprayRandom pick multipath packets' paths.
	SprayRoundRobin = sim.SprayRoundRobin
	SprayRandom     = sim.SprayRandom
	// AdaptLocal / AdaptOracle select the in-network adaptive modes.
	AdaptLocal  = sim.AdaptLocal
	AdaptOracle = sim.AdaptOracle
)

// RunFtreeAdaptive simulates per-packet in-network adaptive trunk
// selection on a folded-Clos (E16; the [1]/[9] baseline).
var RunFtreeAdaptive = sim.RunFtreeAdaptive

// ---------------------------------------------------------------------------
// Collective workloads
// ---------------------------------------------------------------------------

// Workload types; see internal/workload.
type (
	// Workload is a sequence of permutation phases (BSP collectives).
	Workload = workload.Workload
	// WorkloadResult aggregates a simulated workload run.
	WorkloadResult = workload.Result
)

// Collective workload generators and runners; see internal/workload.
var (
	// AllToAll / ButterflyExchange / RingExchange / Stencil2D /
	// TransposeWorkload / RandomPhases build standard collectives.
	AllToAll          = workload.AllToAll
	ButterflyExchange = workload.ButterflyExchange
	RingExchange      = workload.RingExchange
	Stencil2D         = workload.Stencil2D
	TransposeWorkload = workload.TransposeWorkload
	RandomPhases      = workload.RandomPhases
	// RunWorkload simulates a workload phase by phase;
	// RunWorkloadCrossbar is the ideal reference.
	RunWorkload         = workload.Run
	RunWorkloadCrossbar = workload.RunCrossbar
)

// ---------------------------------------------------------------------------
// High-level systems (the paper's contribution, assembled)
// ---------------------------------------------------------------------------

// System pairs a folded-Clos network with the router that makes it
// nonblocking; see internal/core.
type (
	System       = core.System
	VerifyReport = core.VerifyReport
	RoutingClass = core.RoutingClass
	Proposal     = core.Proposal
)

// Routing classes for Plan and System.
const (
	Deterministic       = core.Deterministic
	LocalAdaptive       = core.LocalAdaptive
	GlobalRearrangeable = core.GlobalRearrangeable
)

// System constructors and the design planner; see internal/core.
var (
	// NewDeterministicSystem builds ftree(n+n², r) + Theorem-3 routing.
	NewDeterministicSystem = core.NewDeterministicSystem
	// NewAdaptiveSystem builds ftree(n+m, r) + NONBLOCKINGADAPTIVE.
	NewAdaptiveSystem = core.NewAdaptiveSystem
	// NewRearrangeableSystem builds the centralized m = n baseline.
	NewRearrangeableSystem = core.NewRearrangeableSystem
	// Plan enumerates nonblocking designs for a switch radix.
	Plan = core.Plan
)

// ---------------------------------------------------------------------------
// Design-space explorer (nbdesign)
// ---------------------------------------------------------------------------

// Explorer types; see internal/api (the JSON schema shared with
// POST /v1/design) and internal/design (the planner).
type (
	// DesignCatalog is the axes of the (family × n × m × r × router) grid.
	DesignCatalog = api.DesignCatalog
	// DesignReport is the planner output: tier counters plus the Pareto
	// frontier of cost versus guarantee, each point with a certificate.
	DesignReport = api.DesignReport
	// DesignFrontierPoint is one decided candidate on the frontier.
	DesignFrontierPoint = api.DesignPoint
	// DesignOptions configures a PlanDesignSpace run (tier-2 verifier,
	// probe memo, pruning toggle).
	DesignOptions = design.Options
)

// Explorer entry points; see internal/design.
var (
	// PlanDesignSpace enumerates a catalog and decides every candidate
	// through the three-tier planner (closed forms, monotone binary search
	// plus dominance pruning, memoized verification sweeps).
	PlanDesignSpace = design.Plan
	// ValidateDesignCatalog rejects malformed catalogs before enumeration.
	ValidateDesignCatalog = design.ValidateCatalog
	// ReplayDesignCondition re-derives a frontier point's tier-0 condition
	// and checks its certificate's structural consistency.
	ReplayDesignCondition = design.ReplayCondition
)

// ---------------------------------------------------------------------------
// Fault campaigns (nbverify -failures, /v1/failures)
// ---------------------------------------------------------------------------

// Failure model and campaign types; see internal/topology for the
// FailureSet invariants (whole-element semantics, canonical keys) and
// internal/campaign for the engine's determinism contract.
type (
	// FailureSet names failed top switches, bottom switches, and trunk
	// cables of a folded Clos.
	FailureSet = topology.FailureSet
	// FailedTrunk is one failed bottom↔top duplex cable.
	FailedTrunk = topology.Trunk
	// FailureView is a FailureSet bound to a fabric for O(1) health
	// lookups.
	FailureView = topology.FailureView
	// CampaignConfig parameterizes one fault-injection campaign.
	CampaignConfig = campaign.Config
	// FailureScenario selects the failure-set sampler (links, tops,
	// tops-correlated, pods).
	FailureScenario = campaign.Scenario
	// FaultCampaignReport is the per-scheme degradation curves (the JSON
	// schema shared with POST /v1/failures).
	FaultCampaignReport = api.FailuresReport
)

// Campaign entry points and the fault-routing zoo; see internal/campaign
// and internal/routing.
var (
	// RunFaultCampaign sweeps failure counts, rebuilds every scheme per
	// sampled failure set, and reports nonblocking margin vs failures.
	// Parallel runs (Config.Workers > 1) are byte-identical to sequential.
	RunFaultCampaign = campaign.Run
	// RenderFaultCampaign writes a report as text tables.
	RenderFaultCampaign = campaign.Render
	// SampleFailures draws one failure set of a scenario.
	SampleFailures = campaign.SampleFailures
	// DefaultFaultSchemes lists the four campaign routing schemes.
	DefaultFaultSchemes = campaign.DefaultSchemes
	// BuildFaultRouter instantiates a campaign scheme against a view.
	BuildFaultRouter = campaign.BuildRouter
	// NewLocalReroute is Bankhamer-style randomized local fast rerouting:
	// deflections at the point of failure, no global recomputation.
	NewLocalReroute = routing.NewLocalReroute
	// NewAvoidingAdaptive routes around a failure view with the
	// nonblocking adaptive assignment over the healthy top switches.
	NewAvoidingAdaptive = routing.NewAvoidingAdaptive
	// NewSparedDeterministicView remaps failed class switches onto spare
	// tops (Theorem 3 with spares).
	NewSparedDeterministicView = routing.NewSparedDeterministicView
	// NewNaiveRemapView is the negative control: failed class switches
	// remapped by modulo over the healthy tops, destroying the Theorem-3
	// conflict-freedom.
	NewNaiveRemapView = routing.NewNaiveRemapView
)
