package fclos_test

import (
	"bytes"
	"math/rand"
	"testing"

	fclos "repro"
)

// TestPublicQuickstart exercises the README quick-start path end to end
// through the public facade only.
func TestPublicQuickstart(t *testing.T) {
	sys, err := fclos.NewDeterministicSystem(4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Ports() != 80 {
		t.Fatalf("ports = %d, want 80", sys.Ports())
	}
	rep, err := sys.Verify(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Nonblocking {
		t.Fatalf("verify failed: %+v", rep)
	}
	rng := rand.New(rand.NewSource(1))
	p := fclos.RandomPermutation(rng, sys.Ports())
	_, contention, err := sys.RoutePattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if contention.HasContention() {
		t.Fatal("nonblocking system contended")
	}
}

func TestPublicTopologiesAndDOT(t *testing.T) {
	f := fclos.NewNonblockingFtree(2, 6)
	if f.M != 4 {
		t.Fatalf("m = %d, want n²=4", f.M)
	}
	var buf bytes.Buffer
	if err := fclos.WriteDOT(&buf, f.Net); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty DOT output")
	}
	if fclos.NewClos(2, 3, 4).Ports() != 8 {
		t.Fatal("Clos ports")
	}
	if fclos.NewCrossbar(7).N != 7 {
		t.Fatal("crossbar")
	}
	if fclos.NewMPortNTree(4, 2).Hosts() != 8 {
		t.Fatal("FT(4,2)")
	}
	if fclos.NewKAryNTree(2, 3).Hosts() != 8 {
		t.Fatal("2-ary 3-tree")
	}
	if fclos.NewThreeLevelFtree(2, 12).Ports() != 24 {
		t.Fatal("3-level")
	}
}

func TestPublicConditionsAndCost(t *testing.T) {
	if fclos.DeterministicMinM(4) != 16 {
		t.Fatal("DeterministicMinM")
	}
	if fclos.Lemma2Cap(2, 5) != 20 {
		t.Fatal("Lemma2Cap")
	}
	if fclos.ClosStrictM(4) != 7 || fclos.ClosRearrangeableM(4) != 4 {
		t.Fatal("classic conditions")
	}
	rows := fclos.PaperTableI()
	if len(rows) != 3 || rows[0].Nonblocking.Ports != 80 {
		t.Fatal("Table I")
	}
	props, err := fclos.Plan(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) == 0 {
		t.Fatal("no proposals")
	}
}

func TestPublicSimulation(t *testing.T) {
	f := fclos.NewNonblockingFtree(2, 5)
	r, err := fclos.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fclos.SimConfig{PacketFlits: 2, PacketsPerPair: 4, Arbiter: fclos.ArbiterRoundRobin}
	p := fclos.SwitchShiftPerm(2, 5, 1)
	_, res, err := fclos.SimulatePermutation(f.Net, r, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fclos.CrossbarReference(f.Ports(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown(ref) > 1.5 {
		t.Fatalf("nonblocking slowdown %.2f", res.Slowdown(ref))
	}
}

func TestPublicAdaptive(t *testing.T) {
	f := fclos.NewFoldedClos(3, 27, 9)
	ad, err := fclos.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	p := fclos.RandomPermutation(rng, f.Ports())
	a, err := ad.Route(p)
	if err != nil {
		t.Fatal(err)
	}
	if fclos.CheckContention(a).HasContention() {
		t.Fatal("adaptive contended")
	}
	if a.Configurations < 1 || a.TopSwitchesUsed < 1 {
		t.Fatal("adaptive stats unset")
	}
}
