// Package server implements nbserve: the paper's verification and
// simulation engines behind a concurrent HTTP JSON API. The design goals,
// in order: never lose a correctness property the batch CLIs have
// (responses are byte-compatible with `nbsim -json`; sweep results are
// deterministic), bound resource usage under load (a fixed worker pool
// with queue backpressure — overflow is an immediate 429, not an unbounded
// goroutine pile; a validation layer rejects out-of-range and
// factorially-explosive requests before they reach a worker), and make
// repeated design-space queries cheap (a pluggable result store over
// canonicalized requests — in-memory LRU or a persistent file-backed
// backend that survives restarts — plus a batch endpoint that
// deduplicates identical points within one call). Every engine sits
// behind the uniform Job interface in jobs.go; the handler pipeline,
// the store, and the batch fan-out are engine-agnostic. Long sweeps honor
// per-request deadlines and client disconnects through the context
// plumbing in internal/analysis, and shutdown drains in-flight jobs
// before the process exits.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/store"
)

// Config sizes the service. Zero values select the defaults.
type Config struct {
	// Workers is the number of concurrent job executors (0 = 4).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running; a full queue
	// rejects with 429 (0 = 64).
	QueueDepth int
	// CacheEntries bounds the default in-memory result store (0 = 256).
	// Ignored when Store is set.
	CacheEntries int
	// Store is the result store backend. Nil selects an in-memory LRU of
	// CacheEntries. The server takes ownership: Close closes it.
	Store store.Store
	// MaxBatchItems bounds the item count of one /v1/verify/batch call
	// (0 = 256).
	MaxBatchItems int
	// DefaultTimeout applies when a request carries no timeout_ms;
	// MaxTimeout caps client-supplied deadlines (0 = 30s / 5m).
	DefaultTimeout, MaxTimeout time.Duration
	// Coordinator, when set, makes this node a distributed-sweep
	// coordinator: /v1/verify/sweep fans shards across its Workers instead
	// of running the in-process parallel engine.
	Coordinator *CoordinatorConfig
	// ProgressInterval is the SSE sampling period for /v1/jobs/{id}/events
	// (0 = 100ms).
	ProgressInterval time.Duration
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 100 * time.Millisecond
	}
	if c.Coordinator != nil {
		c.Coordinator.fill()
	}
}

// job is one queued unit of work. done is buffered so a worker never
// blocks handing back a result after the handler has given up.
type job struct {
	ctx  context.Context
	run  func(ctx context.Context) ([]byte, error)
	done chan jobResult
}

type jobResult struct {
	body []byte
	err  error
}

// Server is the nbserve core: worker pool, result store, metrics, and the
// HTTP handler. Create with New, serve via Handler, stop with Close.
type Server struct {
	cfg   Config
	queue chan *job
	wg    sync.WaitGroup
	store store.Store
	met   *metrics

	// closeMu serializes enqueue against Close: senders hold the read
	// lock while sending, Close flips closed under the write lock before
	// closing the channel, so an enqueue racing shutdown answers a clean
	// 503 instead of panicking on a send to a closed channel.
	closeMu   sync.RWMutex
	closed    bool
	closeOnce sync.Once

	// Sweep-job tracking for /v1/verify/sweep and the /v1/jobs endpoints.
	// sweepCtx parents every runner so Close can cancel and join them
	// (sweepWg) before the store shuts down.
	sweepMu     sync.Mutex
	sweeps      map[string]*sweepJob
	sweepByKey  map[string]*sweepJob
	sweepSeq    int
	sweepWg     sync.WaitGroup
	sweepCtx    context.Context
	sweepCancel context.CancelFunc
}

// batchOp is the metrics key for /v1/verify/batch (it is not a Job — it
// fans items through verifyJob).
const batchOp = "verify_batch"

// opNames lists every metrics endpoint key: the registered jobs plus the
// batch endpoint.
func opNames() []string {
	names := make([]string, 0, len(jobs)+3)
	for _, jb := range jobs {
		names = append(names, jb.Op())
	}
	return append(names, batchOp, sweepOp, designOp)
}

// New starts cfg.Workers executor goroutines and returns the server.
func New(cfg Config) *Server {
	cfg.fill()
	st := cfg.Store
	if st == nil {
		st = store.NewMemory(cfg.CacheEntries)
	}
	s := &Server{
		cfg:        cfg,
		queue:      make(chan *job, cfg.QueueDepth),
		store:      st,
		met:        newMetrics(opNames()),
		sweeps:     make(map[string]*sweepJob),
		sweepByKey: make(map[string]*sweepJob),
	}
	s.sweepCtx, s.sweepCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops accepting jobs, waits for queued and in-flight jobs to
// finish, joins all workers, and closes the result store (flushing the
// persistent backend's log). Call after the HTTP server has been shut
// down (http.Server.Shutdown already waits out in-flight handlers, which
// in turn wait on their jobs, so the queue is quiet by then; Close is the
// backstop that makes the drain unconditional).
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.closeMu.Lock()
		s.closed = true
		s.closeMu.Unlock()
		// Cancel and join sweep runners first: they write checkpoints and
		// results through the store, which closes last.
		s.sweepCancel()
		s.sweepWg.Wait()
		close(s.queue)
		s.wg.Wait()
		s.store.Close()
	})
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		// A job whose deadline elapsed while queued is not worth starting.
		if err := j.ctx.Err(); err != nil {
			s.met.queueDepth.Add(-1)
			j.done <- jobResult{err: err}
			continue
		}
		start := time.Now()
		body, err := j.run(j.ctx)
		s.met.observeJob(time.Since(start).Microseconds())
		s.met.queueDepth.Add(-1)
		j.done <- jobResult{body: body, err: err}
	}
}

// enqueue errors: the queue is full (caller answers 429) or the server
// is shutting down (503).
var (
	errQueueFull     = errors.New("job queue full")
	errServerClosing = errors.New("server shutting down")
)

// enqueue submits a job without blocking; a non-nil error names why the
// job was not accepted.
func (s *Server) enqueue(j *job) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		s.met.jobsRejected.Add(1)
		return errServerClosing
	}
	s.met.queueDepth.Add(1)
	select {
	case s.queue <- j:
		return nil
	default:
		s.met.queueDepth.Add(-1)
		s.met.jobsRejected.Add(1)
		return errQueueFull
	}
}

// timeoutFor resolves a client-requested deadline against the configured
// default and cap.
func (s *Server) timeoutFor(ms int64) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

// Handler returns the nbserve routing table, derived from the job
// registry plus the batch and introspection endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, jb := range jobs {
		mux.HandleFunc("/v1/"+jb.Op(), s.jobHandler(jb))
	}
	mux.HandleFunc("/v1/verify/batch", s.batchHandler(verifyJob))
	mux.HandleFunc("POST /v1/design", s.designHandler)
	mux.HandleFunc("POST /v1/verify/sweep", s.sweepHandler)
	mux.HandleFunc("GET /v1/jobs/{id}", s.jobStatusHandler)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.jobEventsHandler)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.met.snapshot(s.store.Len()))
	})
	return mux
}

// errStatus maps a job error to its HTTP status and message. Shared by the
// single-request handler (response status) and the batch handler
// (per-item status).
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline exceeded: " + err.Error()
	case errors.Is(err, context.Canceled):
		// Client went away; the status is for logs only.
		return http.StatusServiceUnavailable, "request cancelled"
	case errors.As(err, &errBadRequest{}):
		return http.StatusBadRequest, err.Error()
	default:
		return http.StatusInternalServerError, err.Error()
	}
}

// jobHandler wires one POST endpoint through the full pipeline:
// decode → normalize → validate → store lookup → enqueue (429 on
// overflow) → wait under the request deadline → store fill → respond. The
// X-Nbserve-Cache header says whether the body came from the result store
// ("hit") or a fresh job ("miss").
func (s *Server) jobHandler(jb Job) http.HandlerFunc {
	em := s.met.endpoints[jb.Op()]
	return func(w http.ResponseWriter, r *http.Request) {
		em.requests.Add(1)
		if r.Method != http.MethodPost {
			em.errors.Add(1)
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var q api.Request
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&q); err != nil {
			em.errors.Add(1)
			writeError(w, http.StatusBadRequest, "decode request: "+err.Error())
			return
		}
		normalize(&q)
		if err := jb.Validate(&q); err != nil {
			em.errors.Add(1)
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}

		key := jb.Key(&q)
		if !q.NoCache {
			if body, ok := s.store.Get(key); ok {
				em.cacheHits.Add(1)
				s.met.storeHits.Add(1)
				writeJSON(w, http.StatusOK, "hit", body)
				return
			}
			s.met.storeMisses.Add(1)
		}

		ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(q.TimeoutMs))
		defer cancel()

		j := &job{ctx: ctx, done: make(chan jobResult, 1), run: func(ctx context.Context) ([]byte, error) {
			out, err := jb.Run(ctx, &q)
			if err != nil {
				return nil, err
			}
			return jb.Encode(out)
		}}
		if err := s.enqueue(j); err != nil {
			em.errors.Add(1)
			if err == errQueueFull {
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, err.Error())
			} else {
				writeError(w, http.StatusServiceUnavailable, err.Error())
			}
			return
		}

		// Wait for the result OR the request deadline — never just the
		// result: a job whose deadline passes while still queued must get
		// its 504 now, not after the whole queue ahead of it drains. The
		// worker that eventually dequeues the abandoned job sees the dead
		// ctx, skips the run, decrements the queue gauge, and its handback
		// lands in the buffered done channel without blocking.
		var res jobResult
		select {
		case res = <-j.done:
		case <-ctx.Done():
			res = jobResult{err: ctx.Err()}
		}
		if res.err != nil {
			em.errors.Add(1)
			status, msg := errStatus(res.err)
			writeError(w, status, msg)
			return
		}
		if !q.NoCache {
			s.store.Put(key, res.body)
			s.met.storePuts.Add(1)
		}
		writeJSON(w, http.StatusOK, "miss", res.body)
	}
}

func writeJSON(w http.ResponseWriter, status int, cacheState string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Nbserve-Cache", cacheState)
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	body, _ := json.Marshal(api.ErrorReport{Error: msg})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}
