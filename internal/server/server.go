// Package server implements nbserve: the paper's verification and
// simulation engines behind a concurrent HTTP JSON API. The design goals,
// in order: never lose a correctness property the batch CLIs have
// (responses are byte-compatible with `nbsim -json`; sweep results are
// deterministic), bound resource usage under load (a fixed worker pool
// with queue backpressure — overflow is an immediate 429, not an unbounded
// goroutine pile), and make repeated design-space queries cheap (an LRU
// cache over canonicalized requests serves repeats without re-running the
// sweep). Long sweeps honor per-request deadlines and client disconnects
// through the context plumbing in internal/analysis, and shutdown drains
// in-flight jobs before the process exits.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
)

// Config sizes the service. Zero values select the defaults.
type Config struct {
	// Workers is the number of concurrent job executors (0 = 4).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running; a full queue
	// rejects with 429 (0 = 64).
	QueueDepth int
	// CacheEntries bounds the LRU result cache (0 = 256).
	CacheEntries int
	// DefaultTimeout applies when a request carries no timeout_ms;
	// MaxTimeout caps client-supplied deadlines (0 = 30s / 5m).
	DefaultTimeout, MaxTimeout time.Duration
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
}

// job is one queued unit of work. done is buffered so a worker never
// blocks handing back a result after the handler has given up.
type job struct {
	ctx  context.Context
	run  func(ctx context.Context) (any, error)
	done chan jobResult
}

type jobResult struct {
	body []byte
	err  error
}

// Server is the nbserve core: worker pool, result cache, metrics, and the
// HTTP handler. Create with New, serve via Handler, stop with Close.
type Server struct {
	cfg   Config
	queue chan *job
	wg    sync.WaitGroup
	cache *resultCache
	met   *metrics

	closeOnce sync.Once
}

// ops are the job-backed endpoints (metrics are keyed by these names).
var ops = []string{"verify", "worstcase", "sim"}

// New starts cfg.Workers executor goroutines and returns the server.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:   cfg,
		queue: make(chan *job, cfg.QueueDepth),
		cache: newResultCache(cfg.CacheEntries),
		met:   newMetrics(ops),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops accepting jobs, waits for queued and in-flight jobs to
// finish, and joins all workers. Call after the HTTP server has been shut
// down (http.Server.Shutdown already waits out in-flight handlers, which
// in turn wait on their jobs, so the queue is quiet by then; Close is the
// backstop that makes the drain unconditional).
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.queue)
		s.wg.Wait()
	})
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		// A job whose deadline elapsed while queued is not worth starting.
		if err := j.ctx.Err(); err != nil {
			s.met.queueDepth.Add(-1)
			j.done <- jobResult{err: err}
			continue
		}
		start := time.Now()
		out, err := j.run(j.ctx)
		var res jobResult
		if err != nil {
			res.err = err
		} else {
			res.body, res.err = json.Marshal(out)
		}
		s.met.observeJob(time.Since(start).Microseconds())
		s.met.queueDepth.Add(-1)
		j.done <- res
	}
}

// Handler returns the nbserve routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/verify", s.jobHandler("verify", runVerify))
	mux.HandleFunc("/v1/worstcase", s.jobHandler("worstcase", runWorstCase))
	mux.HandleFunc("/v1/sim", s.jobHandler("sim", runSim))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.met.snapshot(s.cache.len()))
	})
	return mux
}

// jobHandler wires one POST endpoint through the full pipeline:
// decode → normalize → cache lookup → enqueue (429 on overflow) → wait
// under the request deadline → cache fill → respond. The X-Nbserve-Cache
// header says whether the body came from the cache ("hit") or a fresh job
// ("miss").
func (s *Server) jobHandler(op string, run func(ctx context.Context, q *api.Request) (any, error)) http.HandlerFunc {
	em := s.met.endpoints[op]
	return func(w http.ResponseWriter, r *http.Request) {
		em.requests.Add(1)
		if r.Method != http.MethodPost {
			em.errors.Add(1)
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var q api.Request
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&q); err != nil {
			em.errors.Add(1)
			writeError(w, http.StatusBadRequest, "decode request: "+err.Error())
			return
		}
		normalize(&q)

		key := q.CacheKey(op)
		if !q.NoCache {
			if body, ok := s.cache.get(key); ok {
				em.cacheHits.Add(1)
				writeJSON(w, http.StatusOK, "hit", body)
				return
			}
		}

		timeout := s.cfg.DefaultTimeout
		if q.TimeoutMs > 0 {
			timeout = time.Duration(q.TimeoutMs) * time.Millisecond
		}
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		j := &job{ctx: ctx, done: make(chan jobResult, 1), run: func(ctx context.Context) (any, error) {
			return run(ctx, &q)
		}}
		s.met.queueDepth.Add(1)
		select {
		case s.queue <- j:
		default:
			s.met.queueDepth.Add(-1)
			s.met.jobsRejected.Add(1)
			em.errors.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "job queue full")
			return
		}

		res := <-j.done
		if res.err != nil {
			em.errors.Add(1)
			switch {
			case errors.Is(res.err, context.DeadlineExceeded):
				writeError(w, http.StatusGatewayTimeout, "deadline exceeded: "+res.err.Error())
			case errors.Is(res.err, context.Canceled):
				// Client went away; the status is for logs only.
				writeError(w, http.StatusServiceUnavailable, "request cancelled")
			case errors.As(res.err, &errBadRequest{}):
				writeError(w, http.StatusBadRequest, res.err.Error())
			default:
				writeError(w, http.StatusInternalServerError, res.err.Error())
			}
			return
		}
		if !q.NoCache {
			s.cache.put(key, res.body)
		}
		writeJSON(w, http.StatusOK, "miss", res.body)
	}
}

func writeJSON(w http.ResponseWriter, status int, cacheState string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Nbserve-Cache", cacheState)
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	body, _ := json.Marshal(api.ErrorReport{Error: msg})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}
