package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/api"
	"repro/internal/store"
)

func postBatch(t *testing.T, url string, b *api.BatchRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/verify/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestBatchMixed50 is the acceptance scenario: 50 mixed verify points —
// 8 unique keys heavily duplicated plus one invalid item — in one call.
// Per-item results come back in order, the invalid item fails alone, and
// duplicates are served from one computation each (proven by jobs_run).
// A second identical batch is answered entirely from the result store.
func TestBatchMixed50(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const total = 50
	const badIdx = 25
	batch := &api.BatchRequest{}
	for i := 0; i < total; i++ {
		q := api.Request{N: 2, M: 4, R: 3 + i%8, Routing: "paper"}
		if i == badIdx {
			q.Trials = -1 // per-item validation failure
		}
		batch.Items = append(batch.Items, q)
	}

	resp, body := postBatch(t, ts.URL, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	var rep api.BatchReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Items) != total {
		t.Fatalf("%d items back, want %d", len(rep.Items), total)
	}

	// Order: every valid item's result matches its own request (hosts =
	// n·r of the item at that index).
	seenMiss := map[int]bool{}
	for i, item := range rep.Items {
		if i == badIdx {
			if item.Status != http.StatusBadRequest || item.Error == "" || item.Result != nil {
				t.Fatalf("invalid item: %+v", item)
			}
			continue
		}
		if item.Status != http.StatusOK || item.Error != "" {
			t.Fatalf("item %d: %+v", i, item)
		}
		var vr api.VerifyReport
		if err := json.Unmarshal(item.Result, &vr); err != nil {
			t.Fatalf("item %d result: %v", i, err)
		}
		wantHosts := 2 * (3 + i%8)
		if vr.Hosts != wantHosts {
			t.Fatalf("item %d answered out of order: hosts %d, want %d", i, vr.Hosts, wantHosts)
		}
		if vr.Verdict != "nonblocking" {
			t.Fatalf("item %d verdict %q", i, vr.Verdict)
		}
		r := 3 + i%8
		switch item.Cache {
		case "miss":
			if seenMiss[r] {
				t.Fatalf("item %d: second miss for r=%d", i, r)
			}
			seenMiss[r] = true
		case "dedup":
			if !seenMiss[r] {
				t.Fatalf("item %d: dedup before its miss", i)
			}
		default:
			t.Fatalf("item %d cache %q", i, item.Cache)
		}
	}
	if rep.Unique != 8 || rep.JobsRun != 8 {
		t.Fatalf("unique %d, jobs_run %d, want 8/8", rep.Unique, rep.JobsRun)
	}
	if rep.Deduplicated != total-1-8 {
		t.Fatalf("deduplicated %d, want %d", rep.Deduplicated, total-1-8)
	}
	m := getMetrics(t, ts.URL)
	if m.JobsRun != 8 {
		t.Fatalf("server ran %d jobs for 8 unique keys", m.JobsRun)
	}
	if m.Batches != 1 || m.BatchItems != total {
		t.Fatalf("batch counters: %d batches, %d items", m.Batches, m.BatchItems)
	}

	// Second identical batch: every valid item is a store hit, zero jobs.
	resp, body = postBatch(t, ts.URL, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat batch: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.JobsRun != 0 || rep.CacheHits != total-1 {
		t.Fatalf("repeat batch: jobs_run %d, cache_hits %d, want 0/%d", rep.JobsRun, rep.CacheHits, total-1)
	}
	// Hit-group duplicates were answered by the store, not by another
	// item's computation: they must not double-count as Deduplicated.
	if rep.Deduplicated != 0 {
		t.Fatalf("repeat batch: deduplicated %d, want 0", rep.Deduplicated)
	}
	for i, item := range rep.Items {
		if i == badIdx {
			continue
		}
		if item.Cache != "hit" {
			t.Fatalf("repeat item %d cache %q", i, item.Cache)
		}
	}
	if after := getMetrics(t, ts.URL); after.JobsRun != 8 {
		t.Fatalf("repeat batch ran jobs: %d", after.JobsRun)
	}
}

// TestBatchNoCacheItem pins the per-item no_cache contract under dedup: an
// item with no_cache:true is never served a store hit, even when another
// item in the batch shares its canonical key. no_cache items group apart
// from cacheable ones (recomputing once, deduplicating against each
// other), and their fresh result is not written back to the store.
func TestBatchNoCacheItem(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Prime the store with the point's result.
	q := api.Request{N: 2, M: 4, R: 3, Routing: "paper"}
	resp, body := postJSON(t, ts.URL+"/v1/verify", &q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prime: status %d: %s", resp.StatusCode, body)
	}

	fresh := q
	fresh.NoCache = true
	batch := &api.BatchRequest{Items: []api.Request{q, fresh, fresh}}
	resp, body = postBatch(t, ts.URL, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	var rep api.BatchReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	wantCache := []string{"hit", "miss", "dedup"}
	for i, item := range rep.Items {
		if item.Status != http.StatusOK || item.Cache != wantCache[i] {
			t.Fatalf("item %d: status %d cache %q, want 200 %q", i, item.Status, item.Cache, wantCache[i])
		}
	}
	// Two groups (cacheable hit + no_cache recompute), one fresh job, and
	// CacheHits/Deduplicated stay disjoint.
	if rep.Unique != 2 || rep.JobsRun != 1 || rep.CacheHits != 1 || rep.Deduplicated != 1 {
		t.Fatalf("report %+v, want unique 2, jobs_run 1, cache_hits 1, deduplicated 1", rep)
	}
	// Only the priming request wrote to the store; the no_cache group's
	// result was not put back.
	if m := getMetrics(t, ts.URL); m.StorePuts != 1 {
		t.Fatalf("store_puts %d, want 1 (no_cache result must not be stored)", m.StorePuts)
	}
}

// TestBatchPartialFailure: a bad item (unknown routing) and a
// deadline-style failure never take down their neighbors.
func TestBatchPartialFailure(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	batch := &api.BatchRequest{Items: []api.Request{
		{N: 2, M: 4, R: 4, Routing: "paper"},
		{N: 2, M: 4, R: 4, Routing: "warp-drive"},
		{Topo: "torus"},
		{N: 2, M: 4, R: 5, Routing: "paper"},
	}}
	resp, body := postBatch(t, ts.URL, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rep api.BatchReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	wantStatus := []int{200, 400, 400, 200}
	for i, item := range rep.Items {
		if item.Status != wantStatus[i] {
			t.Fatalf("item %d: status %d (%s), want %d", i, item.Status, item.Error, wantStatus[i])
		}
	}
}

// TestBatchQueueCapacity429: a batch whose unique misses cannot fit the
// job queue even when idle is rejected whole with 429 and Retry-After,
// before any work is scheduled.
func TestBatchQueueCapacity429(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	batch := &api.BatchRequest{}
	for r := 3; r < 7; r++ { // 4 unique keys > queue depth 2
		batch.Items = append(batch.Items, api.Request{N: 2, M: 4, R: r, Routing: "paper"})
	}
	resp, body := postBatch(t, ts.URL, batch)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if m := getMetrics(t, ts.URL); m.JobsRun != 0 {
		t.Fatalf("rejected batch ran %d jobs", m.JobsRun)
	}

	// The same points split into two small batches fit fine.
	for i := 0; i < 2; i++ {
		half := &api.BatchRequest{Items: batch.Items[i*2 : i*2+2]}
		resp, body := postBatch(t, ts.URL, half)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("half %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
}

// TestBatchMalformed pins batch-level 400s: empty batches, oversized
// batches, bad JSON, unknown fields, and GET.
func TestBatchMalformed(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, MaxBatchItems: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postBatch(t, ts.URL, &api.BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d: %s", resp.StatusCode, body)
	}

	over := &api.BatchRequest{Items: make([]api.Request, 5)}
	resp, body = postBatch(t, ts.URL, over)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d: %s", resp.StatusCode, body)
	}

	r, err := http.Post(ts.URL+"/v1/verify/batch", "application/json", bytes.NewReader([]byte(`{"items":[`)))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", r.StatusCode)
	}

	r, err = http.Post(ts.URL+"/v1/verify/batch", "application/json", bytes.NewReader([]byte(`{"points":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", r.StatusCode)
	}

	r, err = http.Get(ts.URL + "/v1/verify/batch")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", r.StatusCode)
	}
}

// TestFileStoreRestartHit is the persistence acceptance: a server backed
// by the file store is restarted (new Server, new store on the same
// path), and a previously computed sweep is served as a cache hit without
// re-running — X-Nbserve-Cache says hit and no job runs.
func TestFileStoreRestartHit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	open := func() (*Server, *httptest.Server) {
		st, err := store.NewFile(path, 64)
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{Workers: 2, QueueDepth: 8, Store: st})
		return s, httptest.NewServer(s.Handler())
	}

	// A real exhaustive sweep, so a silent re-run would be measurable.
	q := &api.Request{N: 2, M: 12, R: 3, Routing: "adaptive", Mode: "exhaustive"}

	s1, ts1 := open()
	resp, first := postJSON(t, ts1.URL+"/v1/verify", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d: %s", resp.StatusCode, first)
	}
	if got := resp.Header.Get("X-Nbserve-Cache"); got != "miss" {
		t.Fatalf("first run served from %q", got)
	}
	ts1.Close()
	s1.Close() // flushes the store log

	s2, ts2 := open()
	defer s2.Close()
	defer ts2.Close()
	resp, body := postJSON(t, ts2.URL+"/v1/verify", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after restart: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Nbserve-Cache"); got != "hit" {
		t.Fatalf("restarted server served from %q, want hit", got)
	}
	if !bytes.Equal(body, first) {
		t.Fatalf("restarted body differs:\n%s\n%s", body, first)
	}
	if m := getMetrics(t, ts2.URL); m.JobsRun != 0 {
		t.Fatalf("restarted server re-ran the sweep (%d jobs)", m.JobsRun)
	}

	// Batch items hit the same persistent entry.
	resp, bb := postBatch(t, ts2.URL, &api.BatchRequest{Items: []api.Request{*q, *q}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch after restart: status %d: %s", resp.StatusCode, bb)
	}
	var rep api.BatchReport
	if err := json.Unmarshal(bb, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 2 || rep.JobsRun != 0 {
		t.Fatalf("batch after restart: %+v", rep)
	}
}
