package server

import (
	"context"
	"encoding/json"

	"repro/internal/api"
)

// Job is one engine behind the HTTP surface. The three endpoints (verify,
// worstcase, sim) are instances of this interface, and everything above it
// — the handler pipeline, the result store, the batch endpoint — is
// engine-agnostic: decode → normalize → Validate → Key → store lookup →
// Run on the worker pool → Encode → store fill. Adding an engine is one
// registry entry, and a validation rule added here holds on every path
// that can reach a worker (single requests and batch items alike).
type Job interface {
	// Op names the job: its /v1/<op> route and its metrics key.
	Op() string
	// Validate rejects out-of-range or dangerous parameters with an
	// errBadRequest before the request can occupy a worker. It runs on
	// normalized requests.
	Validate(q *api.Request) error
	// Key is the canonical result-store key for a normalized request.
	// Equal keys compute byte-identical responses.
	Key(q *api.Request) string
	// Run executes the engine under ctx (deadline + client disconnect).
	Run(ctx context.Context, q *api.Request) (any, error)
	// Encode marshals Run's report into the response body bytes.
	Encode(v any) ([]byte, error)
}

// jobDef is the shared Job implementation: a name plus validate/run hooks.
// Key and Encode are uniform across engines (canonicalized request key,
// JSON body).
type jobDef struct {
	op       string
	validate func(q *api.Request) error
	run      func(ctx context.Context, q *api.Request) (any, error)
}

func (j *jobDef) Op() string { return j.op }

func (j *jobDef) Validate(q *api.Request) error {
	if err := validateCommon(q); err != nil {
		return err
	}
	return j.validate(q)
}

func (j *jobDef) Key(q *api.Request) string { return q.CacheKey(j.op) }

func (j *jobDef) Run(ctx context.Context, q *api.Request) (any, error) {
	return j.run(ctx, q)
}

func (j *jobDef) Encode(v any) ([]byte, error) { return json.Marshal(v) }

// The job registry. Handler() derives the /v1/* routes from it, and the
// batch endpoint reuses verifyJob for its items.
var (
	verifyJob    Job = &jobDef{op: "verify", validate: validateVerify, run: runVerify}
	shardJob     Job = &jobDef{op: "verify/shard", validate: validateShard, run: runShard}
	worstcaseJob Job = &jobDef{op: "worstcase", validate: validateWorstCase, run: runWorstCase}
	simJob       Job = &jobDef{op: "sim", validate: validateSim, run: runSim}
	failuresJob  Job = &jobDef{op: "failures", validate: validateFailures, run: runFailures}

	jobs = []Job{verifyJob, shardJob, worstcaseJob, simJob, failuresJob}
)

// Service-wide size caps. A request may not build a topology bigger than
// this no matter what it asks for: topology construction happens on a
// worker and cannot be cancelled by a deadline, so an absurd size would
// monopolize (or OOM) the pool. The CLIs remain uncapped.
const (
	maxRequestHosts  = 1 << 20 // hosts in the requested topology
	maxRequestLinks  = 1 << 22 // duplex links in the requested topology
	maxRequestLevels = 64      // mnt levels; 2^64 hosts saturates any k >= 2
)

// requestHosts computes the host count of the requested topology without
// building it (ftree: n·r; mnt: ports for one level, 2·(ports/2)^levels
// above). Saturates at maxRequestHosts+1 instead of overflowing.
func requestHosts(q *api.Request) int {
	if q.Topo == "mnt" {
		if q.Levels == 1 {
			return q.Ports
		}
		if q.Levels > maxRequestLevels {
			return maxRequestHosts + 1
		}
		k, h := q.Ports/2, 2
		if k < 2 {
			// ports=2 gives k=1: h never grows, so don't loop q.Levels
			// times — an absurd levels value must cost O(1) here, not CPU.
			return h
		}
		for i := 0; i < q.Levels; i++ {
			if h > maxRequestHosts || k > maxRequestHosts {
				return maxRequestHosts + 1
			}
			h *= k
		}
		return h
	}
	if q.N > maxRequestHosts || q.R > maxRequestHosts {
		return maxRequestHosts + 1
	}
	return q.N * q.R
}

// requestLinks estimates the duplex link count (ftree: r bottom switches
// with n host links and m uplinks each; mnt: one up-link per host per
// level). Saturates like requestHosts.
func requestLinks(q *api.Request) int {
	if q.Topo == "mnt" {
		h := requestHosts(q)
		if h > maxRequestHosts || q.Levels > maxRequestLevels {
			return maxRequestLinks + 1
		}
		return h * q.Levels
	}
	// Cap every factor individually before multiplying: q.N+q.M itself can
	// signed-overflow for huge m (e.g. 2^62), sailing a negative sum past
	// the old `q.N+q.M > maxRequestLinks` comparison. With each factor
	// bounded by maxRequestLinks (2^22) the int64 product is at most 2^45
	// and cannot overflow, so the estimate saturates instead of wrapping.
	if q.R > maxRequestLinks || q.N > maxRequestLinks || q.M > maxRequestLinks {
		return maxRequestLinks + 1
	}
	if v := int64(q.R) * (int64(q.N) + int64(q.M)); v <= maxRequestLinks {
		return int(v)
	}
	return maxRequestLinks + 1
}

// validateCommon enforces the execution-parameter ranges shared by every
// job. normalize only fills zero values, so anything negative a client
// sent is still here to be caught — this is the single enforcement point
// that replaces per-endpoint patches.
func validateCommon(q *api.Request) error {
	for _, p := range []struct {
		name string
		v    int
	}{
		{"n", q.N}, {"m", q.M}, {"r", q.R},
		{"ports", q.Ports}, {"levels", q.Levels},
		{"trials", q.Trials}, {"flits", q.Flits}, {"pkts", q.Pkts},
		{"steps", q.Steps}, {"restarts", q.Restarts},
		{"max_exhaustive", q.MaxExhaustive},
	} {
		if p.v < 1 {
			return badRequest("%s must be >= 1 (have %d)", p.name, p.v)
		}
	}
	for _, p := range []struct {
		name string
		v    int
	}{
		{"workers", q.Workers}, {"spray_width", q.SprayWidth},
	} {
		if p.v < 0 {
			return badRequest("%s must be >= 0 (have %d)", p.name, p.v)
		}
	}
	if q.TimeoutMs < 0 {
		return badRequest("timeout_ms must be >= 0 (have %d)", q.TimeoutMs)
	}
	if q.Topo == "mnt" && q.Ports%2 != 0 {
		return badRequest("mnt ports must be even (have %d)", q.Ports)
	}
	if q.Topo == "mnt" && q.Levels > maxRequestLevels {
		return badRequest("levels must be <= %d (have %d)", maxRequestLevels, q.Levels)
	}
	if h := requestHosts(q); h > maxRequestHosts {
		return badRequest("requested topology exceeds %d hosts; use the CLIs for offline runs at this size", maxRequestHosts)
	}
	if l := requestLinks(q); l > maxRequestLinks {
		return badRequest("requested topology exceeds %d links; use the CLIs for offline runs at this size", maxRequestLinks)
	}
	return nil
}

// validateVerify refuses forced exhaustive sweeps whose factorial pattern
// space exceeds the max_exhaustive cap — previously such a request (80
// hosts → 80! patterns) started enumerating and only a deadline could kill
// it. Raising max_exhaustive in the request is the explicit opt-in.
func validateVerify(q *api.Request) error {
	if len(q.ShardPrefix) > 0 {
		return badRequest("shard_prefix is only valid on /v1/verify/shard")
	}
	if len(q.SymShard) > 0 {
		return badRequest("sym_shard is only valid on /v1/verify/shard")
	}
	if q.Failures != nil {
		return badRequest("failures block is only valid on /v1/failures")
	}
	switch q.Mode {
	case "auto", "exact", "exhaustive", "exhaustive-parallel", "random":
	default:
		return badRequest("unknown verify mode %q", q.Mode)
	}
	if q.SymReduce && (q.Mode == "random" || q.Mode == "exact") {
		return badRequest("sym_reduce applies to exhaustive sweeps only (mode %q)", q.Mode)
	}
	if q.Mode == "exhaustive" || q.Mode == "exhaustive-parallel" {
		if h := requestHosts(q); h > q.MaxExhaustive {
			return badRequest("forced %s sweep over %d hosts exceeds max_exhaustive=%d (%d! patterns); raise max_exhaustive explicitly or use mode random",
				q.Mode, h, q.MaxExhaustive, h)
		}
	}
	return nil
}

// validateShard guards the worker half of the distributed sweep: the
// prefix must name a real shard of the requested topology's host space,
// and the shard's own pattern count ((hosts−len(prefix))! enumerated
// permutations) is held to the same max_exhaustive opt-in as a forced
// exhaustive sweep — a coordinator fanning a big sweep raises
// max_exhaustive explicitly on every shard request.
func validateShard(q *api.Request) error {
	if q.Failures != nil {
		return badRequest("failures block is only valid on /v1/failures")
	}
	h := requestHosts(q)
	if len(q.SymShard) > 0 {
		// A symmetry-reduced shard: one contiguous range of top-level
		// necklace indices of the orbit enumeration. The range's exact upper
		// bound depends on the necklace alphabet, which the engine validates
		// when it builds the group; here we enforce the request shape plus
		// the same max_exhaustive opt-in a full sweep over these hosts needs,
		// since orbit counters are scaled back to hosts! patterns.
		if !q.SymReduce {
			return badRequest("sym_shard requires sym_reduce")
		}
		if len(q.ShardPrefix) > 0 {
			return badRequest("sym_shard and shard_prefix are mutually exclusive")
		}
		if len(q.SymShard) != 2 {
			return badRequest("sym_shard must be [lo, hi), have %d entries", len(q.SymShard))
		}
		if lo, hi := q.SymShard[0], q.SymShard[1]; lo < 0 || hi <= lo {
			return badRequest("sym_shard range [%d, %d) is empty or negative", lo, hi)
		}
		if h > q.MaxExhaustive {
			return badRequest("sym shard sweeps %d hosts, exceeds max_exhaustive=%d (%d! patterns); raise max_exhaustive explicitly",
				h, q.MaxExhaustive, h)
		}
		return nil
	}
	if q.SymReduce {
		return badRequest("sym_reduce on /v1/verify/shard requires sym_shard")
	}
	if len(q.ShardPrefix) > h {
		return badRequest("shard_prefix has %d entries for %d hosts", len(q.ShardPrefix), h)
	}
	seen := make(map[int]bool, len(q.ShardPrefix))
	for _, d := range q.ShardPrefix {
		if d < 0 || d >= h {
			return badRequest("shard_prefix destination %d out of range [0,%d)", d, h)
		}
		if seen[d] {
			return badRequest("shard_prefix repeats destination %d", d)
		}
		seen[d] = true
	}
	if free := h - len(q.ShardPrefix); free > q.MaxExhaustive {
		return badRequest("shard sweeps %d free hosts, exceeds max_exhaustive=%d (%d! patterns); raise max_exhaustive explicitly",
			free, q.MaxExhaustive, free)
	}
	return nil
}

func validateWorstCase(q *api.Request) error {
	if len(q.ShardPrefix) > 0 {
		return badRequest("shard_prefix is only valid on /v1/verify/shard")
	}
	if len(q.SymShard) > 0 {
		return badRequest("sym_shard is only valid on /v1/verify/shard")
	}
	if q.SymReduce {
		return badRequest("sym_reduce is only valid on verify endpoints")
	}
	if q.Failures != nil {
		return badRequest("failures block is only valid on /v1/failures")
	}
	return nil
}

func validateSim(q *api.Request) error {
	if len(q.ShardPrefix) > 0 {
		return badRequest("shard_prefix is only valid on /v1/verify/shard")
	}
	if len(q.SymShard) > 0 {
		return badRequest("sym_shard is only valid on /v1/verify/shard")
	}
	if q.SymReduce {
		return badRequest("sym_reduce is only valid on verify endpoints")
	}
	if q.Failures != nil {
		return badRequest("failures block is only valid on /v1/failures")
	}
	switch q.Arbiter {
	case "round-robin", "oldest-first":
	default:
		return badRequest("unknown arbiter %q", q.Arbiter)
	}
	switch q.Pattern {
	case "random", "shift", "rotate", "transpose":
	default:
		return badRequest("unknown pattern %q", q.Pattern)
	}
	if q.OpenLoop && q.Topo != "ftree" {
		return badRequest("open_loop supports topo ftree only")
	}
	return nil
}
