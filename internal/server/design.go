package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/api"
	"repro/internal/design"
)

// designOp is the metrics key of POST /v1/design. The endpoint is not a
// Job: its body is a DesignRequest, not a Request, and its tier-2 probes
// are the jobs — each one fans through the bounded worker pool and the
// shared result store exactly like a POST /v1/verify would.
const designOp = "design"

// IsBadRequest reports whether err is (or wraps) a request-validation
// rejection — the class the HTTP surface answers with 400. Exported for
// the design planner's adapters: a probe refused by validation means the
// candidate is not constructible there, not that the run failed.
func IsBadRequest(err error) bool {
	return errors.As(err, &errBadRequest{})
}

// RunVerifyRequest answers one verification request with POST /v1/verify
// semantics — normalize, validate, run — without a server instance.
// cmd/nbdesign's local mode feeds the planner through this.
func RunVerifyRequest(ctx context.Context, q *api.Request) (*api.VerifyReport, error) {
	normalize(q)
	if err := verifyJob.Validate(q); err != nil {
		return nil, err
	}
	out, err := runVerify(ctx, q)
	if err != nil {
		return nil, err
	}
	return out.(*api.VerifyReport), nil
}

// VerifyCacheKey returns the canonical result-store key POST /v1/verify
// computes for q. The design planner memoizes probes under exactly these
// keys (a parity test pins it), so explorer and server share one cache.
func VerifyCacheKey(q api.Request) string {
	normalize(&q)
	return verifyJob.Key(&q)
}

// designVerifier adapts the worker pool to the planner's VerifyFunc: each
// tier-2 probe is enqueued as a regular job (backpressure, deadlines, and
// metrics included) and validation rejections come back as ErrInfeasible
// so the planner treats the point as not-nonblocking instead of failing
// the whole plan.
func (s *Server) designVerifier() design.VerifyFunc {
	return func(ctx context.Context, q *api.Request) (*api.VerifyReport, error) {
		normalize(q)
		if err := verifyJob.Validate(q); err != nil {
			if IsBadRequest(err) {
				return nil, fmt.Errorf("%w: %v", design.ErrInfeasible, err)
			}
			return nil, err
		}
		var rep *api.VerifyReport
		j := &job{ctx: ctx, done: make(chan jobResult, 1), run: func(ctx context.Context) ([]byte, error) {
			out, err := runVerify(ctx, q)
			if err != nil {
				return nil, err
			}
			rep = out.(*api.VerifyReport)
			return nil, nil
		}}
		if err := s.enqueue(j); err != nil {
			return nil, err
		}
		select {
		case res := <-j.done:
			if res.err != nil {
				if IsBadRequest(res.err) {
					return nil, fmt.Errorf("%w: %v", design.ErrInfeasible, res.err)
				}
				return nil, res.err
			}
			return rep, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// designHandler serves POST /v1/design: decode the catalog, run the
// three-tier planner with the server's store as the probe memo, respond
// with the deterministic DesignReport. The report itself is not cached —
// its probes are, under the /v1/verify keys, which is what makes repeat
// explorations (and later verify calls on the same points) cheap.
func (s *Server) designHandler(w http.ResponseWriter, r *http.Request) {
	em := s.met.endpoints[designOp]
	em.requests.Add(1)
	var req api.DesignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		em.errors.Add(1)
		writeError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	if err := design.ValidateCatalog(&req.Catalog); err != nil {
		em.errors.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMs))
	defer cancel()
	rep, err := design.Plan(ctx, &req.Catalog, design.Options{
		Verify:  s.designVerifier(),
		Memo:    s.store,
		NoPrune: req.NoPrune,
	})
	if err != nil {
		em.errors.Add(1)
		switch {
		case errors.Is(err, errQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, errServerClosing):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			status, msg := errStatus(err)
			writeError(w, status, msg)
		}
		return
	}
	body, err := json.Marshal(rep)
	if err != nil {
		em.errors.Add(1)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, "miss", body)
}
