package server

import (
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// metrics aggregates the service counters exposed on /metrics. Counters
// are atomics (hot path: one Add per event); the job-latency histogram is
// the PR-3 sim.Histogram behind a mutex, observed once per completed job
// (microseconds), so quantiles come for free from its existing JSON
// marshalling.
type metrics struct {
	endpoints map[string]*endpointMetrics

	jobsRun      atomic.Int64 // jobs a worker actually executed
	jobsRejected atomic.Int64 // backpressure 429s
	queueDepth   atomic.Int64 // jobs submitted but not yet finished

	storeHits   atomic.Int64 // result-store lookups that served a body
	storeMisses atomic.Int64 // lookups that fell through to a job
	storePuts   atomic.Int64 // bodies written to the store

	batches      atomic.Int64 // /v1/verify/batch calls accepted for decode
	batchItems   atomic.Int64 // items across all batches
	batchDeduped atomic.Int64 // items answered by another item's computation

	shardsDispatched atomic.Int64 // shard HTTP dispatches to workers (incl. retries)
	shardsRetried    atomic.Int64 // shard dispatches that were retries
	shardsResumed    atomic.Int64 // shards restored from store checkpoints

	symSweeps    atomic.Int64 // sweeps that ran symmetry-reduced
	symFallbacks atomic.Int64 // sym_reduce sweeps that fell back to the full engine

	mu         sync.Mutex
	jobLatency sim.Histogram // microseconds per executed job
}

type endpointMetrics struct {
	requests  atomic.Int64
	cacheHits atomic.Int64
	errors    atomic.Int64
}

func newMetrics(ops []string) *metrics {
	m := &metrics{endpoints: make(map[string]*endpointMetrics, len(ops))}
	for _, op := range ops {
		m.endpoints[op] = &endpointMetrics{}
	}
	return m
}

func (m *metrics) observeJob(micros int64) {
	m.jobsRun.Add(1)
	m.mu.Lock()
	m.jobLatency.Observe(micros)
	m.mu.Unlock()
}

// EndpointSnapshot is one endpoint's counters in the /metrics payload.
type EndpointSnapshot struct {
	Requests  int64 `json:"requests"`
	CacheHits int64 `json:"cache_hits"`
	Errors    int64 `json:"errors"`
}

// MetricsSnapshot is the /metrics response body.
type MetricsSnapshot struct {
	Endpoints    map[string]EndpointSnapshot `json:"endpoints"`
	JobsRun      int64                       `json:"jobs_run"`
	JobsRejected int64                       `json:"jobs_rejected"`
	QueueDepth   int64                       `json:"queue_depth"`
	CacheEntries int                         `json:"cache_entries"`
	// Result-store counters, backend-agnostic (memory or file).
	StoreHits   int64 `json:"store_hits"`
	StoreMisses int64 `json:"store_misses"`
	StorePuts   int64 `json:"store_puts"`
	// Batch-endpoint counters.
	Batches      int64 `json:"batches"`
	BatchItems   int64 `json:"batch_items"`
	BatchDeduped int64 `json:"batch_deduped"`
	// Distributed-sweep coordinator counters.
	ShardsDispatched int64 `json:"shards_dispatched"`
	ShardsRetried    int64 `json:"shards_retried"`
	ShardsResumed    int64 `json:"shards_resumed"`
	// Symmetry-reduction counters: sweeps that ran over orbit
	// representatives vs sym_reduce sweeps that fell back to the full
	// engine (infeasible geometry or non-equivariant routing).
	SymSweeps    int64 `json:"sym_sweeps"`
	SymFallbacks int64 `json:"sym_fallbacks"`
	// JobLatency is the per-job execution-time histogram in microseconds
	// (sim.Histogram JSON: count, sum, and log-scale buckets).
	JobLatency *sim.Histogram `json:"job_latency_us"`
}

func (m *metrics) snapshot(cacheEntries int) *MetricsSnapshot {
	s := &MetricsSnapshot{
		Endpoints:        make(map[string]EndpointSnapshot, len(m.endpoints)),
		JobsRun:          m.jobsRun.Load(),
		JobsRejected:     m.jobsRejected.Load(),
		QueueDepth:       m.queueDepth.Load(),
		CacheEntries:     cacheEntries,
		StoreHits:        m.storeHits.Load(),
		StoreMisses:      m.storeMisses.Load(),
		StorePuts:        m.storePuts.Load(),
		Batches:          m.batches.Load(),
		BatchItems:       m.batchItems.Load(),
		BatchDeduped:     m.batchDeduped.Load(),
		ShardsDispatched: m.shardsDispatched.Load(),
		ShardsRetried:    m.shardsRetried.Load(),
		ShardsResumed:    m.shardsResumed.Load(),
		SymSweeps:        m.symSweeps.Load(),
		SymFallbacks:     m.symFallbacks.Load(),
	}
	for op, em := range m.endpoints {
		s.Endpoints[op] = EndpointSnapshot{
			Requests:  em.requests.Load(),
			CacheHits: em.cacheHits.Load(),
			Errors:    em.errors.Load(),
		}
	}
	m.mu.Lock()
	h := m.jobLatency // value copy under the lock
	m.mu.Unlock()
	s.JobLatency = &h
	return s
}
