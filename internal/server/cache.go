package server

import (
	"container/list"
	"sync"
)

// resultCache is a fixed-capacity LRU over encoded response bodies, keyed
// by the canonicalized request (api.Request.CacheKey). Values are the exact
// bytes previously written to a client, so a hit is a single map lookup
// plus a write — no sweep, no re-encoding. Entries are immutable once
// inserted; eviction is strictly least-recently-used (Get refreshes
// recency).
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *cacheEntry
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{max: max, order: list.New(), items: make(map[string]*list.Element, max)}
}

// get returns the cached body for key, refreshing its recency.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put inserts body under key, evicting the least-recently-used entry when
// over capacity. Re-inserting an existing key refreshes it.
func (c *resultCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
