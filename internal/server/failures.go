package server

import (
	"context"

	"repro/internal/api"
	"repro/internal/campaign"
)

// Caps on the failures block. The per-cell work is Trials pattern
// analyses over the fabric, so the combined cap below bounds the total
// path-check work a single request can schedule — the failures analogue
// of the max_exhaustive opt-in on verify sweeps (but with no opt-in: a
// bigger campaign belongs on the nbverify CLI).
const (
	maxFailureSamples = 64
	maxFailureTrials  = 5000
	maxCampaignWork   = 1 << 26 // cells × trials × hosts
)

// normalizeFailures fills the failures-block defaults (campaign's own
// defaults, spelled out here so explicit and implicit requests share a
// cache key).
func normalizeFailures(q *api.Request) {
	fr := q.Failures
	if fr == nil {
		return
	}
	if fr.Scenario == "" {
		fr.Scenario = string(campaign.ScenarioTops)
	}
	if fr.MaxFailures == 0 {
		fr.MaxFailures = 4
	}
	if fr.Samples == 0 {
		fr.Samples = 3
	}
	if fr.Trials == 0 {
		fr.Trials = 50
	}
	if len(fr.Schemes) == 0 {
		fr.Schemes = campaign.DefaultSchemes()
	}
}

func validateFailures(q *api.Request) error {
	if len(q.ShardPrefix) > 0 {
		return badRequest("shard_prefix is only valid on /v1/verify/shard")
	}
	if len(q.SymShard) > 0 {
		return badRequest("sym_shard is only valid on /v1/verify/shard")
	}
	if q.SymReduce {
		return badRequest("sym_reduce is only valid on verify endpoints")
	}
	if q.Topo != "ftree" {
		return badRequest("fault campaigns support topo ftree only (have %q)", q.Topo)
	}
	fr := q.Failures
	if fr == nil {
		return badRequest("/v1/failures requires a failures block")
	}
	sc := campaign.Scenario(fr.Scenario)
	if !campaign.KnownScenario(sc) {
		return badRequest("unknown failure scenario %q", fr.Scenario)
	}
	dom, err := campaign.ScenarioDomain(sc, q.N, q.M, q.R)
	if err != nil {
		return badRequest("%v", err)
	}
	if fr.MaxFailures < 0 || fr.MaxFailures > dom {
		return badRequest("max_failures %d out of range [0, %d] for scenario %s on ftree(%d+%d,%d)",
			fr.MaxFailures, dom, sc, q.N, q.M, q.R)
	}
	if fr.Samples < 1 || fr.Samples > maxFailureSamples {
		return badRequest("samples %d out of range [1, %d]", fr.Samples, maxFailureSamples)
	}
	if fr.Trials < 1 || fr.Trials > maxFailureTrials {
		return badRequest("failure trials %d out of range [1, %d]", fr.Trials, maxFailureTrials)
	}
	for _, s := range fr.Schemes {
		if !campaign.KnownScheme(s) {
			return badRequest("unknown failure scheme %q", s)
		}
	}
	cells := int64(len(fr.Schemes)) * int64(1+fr.MaxFailures*fr.Samples)
	if work := cells * int64(fr.Trials) * int64(requestHosts(q)); work > maxCampaignWork {
		return badRequest("campaign schedules %d pattern-host checks, exceeds %d; shrink the sweep or use nbverify -failures offline",
			work, int64(maxCampaignWork))
	}
	return nil
}

// runFailures maps the request onto the campaign engine. Validation has
// already pinned every parameter, so campaign.Run's own validation is a
// backstop only.
func runFailures(ctx context.Context, q *api.Request) (any, error) {
	fr := q.Failures
	return campaign.Run(ctx, campaign.Config{
		N:           q.N,
		M:           q.M,
		R:           q.R,
		Scenario:    campaign.Scenario(fr.Scenario),
		MaxFailures: fr.MaxFailures,
		Samples:     fr.Samples,
		Trials:      fr.Trials,
		Schemes:     fr.Schemes,
		Seed:        q.SeedValue(),
		Workers:     q.Workers,
		Sim:         fr.Sim,
		SimFlits:    q.Flits,
		SimPackets:  q.Pkts,
	})
}
