package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/api"
)

// batchGroup is one unique canonical key within a batch: the first item
// with the key plus every duplicate's index. One computation (or one store
// hit) answers all of them.
type batchGroup struct {
	key     string
	req     *api.Request
	indices []int // item positions answering to this key, in order

	status int    // HTTP status the items report
	cache  string // hit | miss (duplicates beyond the first become dedup)
	errMsg string
	body   []byte
	done   chan jobResult // non-nil while a job is in flight
}

// batchHandler answers POST /v1/verify/batch: many verify points in one
// call. Items are normalized and validated individually (a bad item gets a
// per-item 400 and never blocks its neighbors), deduplicated by canonical
// key within the batch, looked up in the result store, and the remaining
// unique misses fan out concurrently through the same bounded worker pool
// as single requests. The response carries per-item results/errors in
// request order. A batch whose unique misses cannot fit the job queue even
// when empty is rejected whole with 429 — partial evaluation of an
// oversized batch would return a mix of answers and retries forever.
func (s *Server) batchHandler(jb Job) http.HandlerFunc {
	em := s.met.endpoints[batchOp]
	return func(w http.ResponseWriter, r *http.Request) {
		em.requests.Add(1)
		if r.Method != http.MethodPost {
			em.errors.Add(1)
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var batch api.BatchRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&batch); err != nil {
			em.errors.Add(1)
			writeError(w, http.StatusBadRequest, "decode batch: "+err.Error())
			return
		}
		if len(batch.Items) == 0 {
			em.errors.Add(1)
			writeError(w, http.StatusBadRequest, "batch has no items")
			return
		}
		if len(batch.Items) > s.cfg.MaxBatchItems {
			em.errors.Add(1)
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("batch has %d items, limit %d", len(batch.Items), s.cfg.MaxBatchItems))
			return
		}
		s.met.batches.Add(1)
		s.met.batchItems.Add(int64(len(batch.Items)))

		// Normalize, validate, and group by canonical key. Invalid items
		// are answered in place and never grouped.
		rep := api.BatchReport{Items: make([]api.BatchItemReport, len(batch.Items))}
		groups := make(map[string]*batchGroup)
		var order []*batchGroup
		for i := range batch.Items {
			it := &batch.Items[i]
			normalize(it)
			if err := jb.Validate(it); err != nil {
				rep.Items[i] = api.BatchItemReport{Status: http.StatusBadRequest, Error: err.Error()}
				continue
			}
			key := jb.Key(it)
			// no_cache items group separately from cacheable ones with the
			// same canonical key: folding them into a cacheable group would
			// silently serve them a store hit via the first item's flag.
			// They still dedup against each other — one fresh computation,
			// never stored, answers every no_cache duplicate.
			gkey := key
			if it.NoCache {
				gkey = "!" + key
			}
			g, ok := groups[gkey]
			if !ok {
				g = &batchGroup{key: key, req: it}
				groups[gkey] = g
				order = append(order, g)
			}
			g.indices = append(g.indices, i)
		}
		rep.Unique = len(order)

		// Result-store lookups settle groups without scheduling work.
		noCache := batch.NoCache
		var toRun []*batchGroup
		for _, g := range order {
			if !noCache && !g.req.NoCache {
				if body, ok := s.store.Get(g.key); ok {
					g.status, g.cache, g.body = http.StatusOK, "hit", body
					em.cacheHits.Add(1)
					s.met.storeHits.Add(1)
					continue
				}
				s.met.storeMisses.Add(1)
			}
			toRun = append(toRun, g)
		}

		// Backpressure: the whole remainder must fit the queue. This keeps
		// the 429 decision deterministic (capacity, not racing clients) and
		// whole-batch, matching the single-request contract.
		if len(toRun) > s.cfg.QueueDepth {
			em.errors.Add(1)
			s.met.jobsRejected.Add(int64(len(toRun)))
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("batch needs %d job slots, queue capacity is %d", len(toRun), s.cfg.QueueDepth))
			return
		}

		ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(batch.TimeoutMs))
		defer cancel()

		// Fan out. Concurrent single-request traffic may still have filled
		// the queue between the capacity check and here; those groups get a
		// per-item 429 instead of failing the batch.
		for _, g := range toRun {
			req := g.req
			j := &job{ctx: ctx, done: make(chan jobResult, 1), run: func(ctx context.Context) ([]byte, error) {
				out, err := jb.Run(ctx, req)
				if err != nil {
					return nil, err
				}
				return jb.Encode(out)
			}}
			if err := s.enqueue(j); err != nil {
				if err == errQueueFull {
					g.status, g.errMsg = http.StatusTooManyRequests, err.Error()
				} else {
					g.status, g.errMsg = http.StatusServiceUnavailable, err.Error()
				}
				continue
			}
			g.done = j.done
			rep.JobsRun++
		}
		for _, g := range toRun {
			if g.done == nil {
				continue
			}
			// Wait for the group's result or the batch deadline, whichever
			// comes first — a dead batch must not serialize behind queued
			// work it will never use. Abandoned jobs are skipped by the
			// worker (dead ctx) and their handback lands in the buffered
			// done channel.
			var res jobResult
			select {
			case res = <-g.done:
			case <-ctx.Done():
				res = jobResult{err: ctx.Err()}
			}
			g.done = nil
			if res.err != nil {
				g.status, g.errMsg = errStatus(res.err)
				continue
			}
			g.status, g.cache, g.body = http.StatusOK, "miss", res.body
			if !noCache && !g.req.NoCache {
				s.store.Put(g.key, res.body)
				s.met.storePuts.Add(1)
			}
		}

		// Fan results back to every item position, in order. The first
		// item of a group keeps the group's cache state; duplicates that
		// were computed in this batch report "dedup". Every item of a
		// store-hit group counts as a cache hit and nothing else: those
		// duplicates were answered by the store, not by another item's
		// computation, so they do not also count as Deduplicated.
		for _, g := range order {
			for n, idx := range g.indices {
				item := api.BatchItemReport{Status: g.status, Cache: g.cache, Error: g.errMsg, Result: g.body}
				if g.cache == "hit" {
					rep.CacheHits++
				} else if n > 0 {
					rep.Deduplicated++
					s.met.batchDeduped.Add(1)
					if item.Cache == "miss" {
						item.Cache = "dedup"
					}
				}
				rep.Items[idx] = item
			}
		}

		body, err := json.Marshal(&rep)
		if err != nil {
			em.errors.Add(1)
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, "batch", body)
	}
}
