package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
)

func postJSON(t *testing.T, url string, q *api.Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getMetrics(t *testing.T, base string) *MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return &m
}

// TestHTTPSmoke drives the full pipeline over real HTTP on a random port:
// verify (exact and sweep), sim, health, metrics, and the cache-hit
// contract — a repeated identical request is served from the cache without
// running a second job, proven by the job counters.
func TestHTTPSmoke(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Exact Lemma-1 verdict on the Theorem-3 provisioned ftree.
	resp, body := postJSON(t, ts.URL+"/v1/verify", &api.Request{N: 2, M: 4, R: 5, Routing: "paper"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Nbserve-Cache"); got != "miss" {
		t.Fatalf("first verify served from %q", got)
	}
	var vr api.VerifyReport
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Verdict != "nonblocking" || vr.Method != "lemma1-exact" || !vr.Exact {
		t.Fatalf("verify report %+v", vr)
	}
	firstBody := body

	// Under-provisioned folded variant blocks, with a witness.
	resp, body = postJSON(t, ts.URL+"/v1/verify", &api.Request{N: 2, M: 2, R: 5, Routing: "dest-mod"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify dest-mod: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Verdict != "blocking" || vr.Witness == "" {
		t.Fatalf("verify dest-mod report %+v", vr)
	}

	// Forced sweep engines agree with each other.
	var seq, par api.VerifyReport
	resp, body = postJSON(t, ts.URL+"/v1/verify", &api.Request{N: 2, M: 12, R: 3, Routing: "adaptive", Mode: "exhaustive"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify exhaustive: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &seq); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/verify", &api.Request{N: 2, M: 12, R: 3, Routing: "adaptive", Mode: "exhaustive-parallel", Workers: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify parallel: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &par); err != nil {
		t.Fatal(err)
	}
	if seq.Tested != par.Tested || seq.Blocked != par.Blocked || seq.Verdict != par.Verdict {
		t.Fatalf("engines disagree: exhaustive %+v vs parallel %+v", seq, par)
	}
	if seq.Verdict != "no-blocking-found" || !seq.Exact {
		t.Fatalf("adaptive sweep report %+v", seq)
	}

	// Closed-loop sim returns the nbsim -json schema.
	resp, body = postJSON(t, ts.URL+"/v1/sim", &api.Request{N: 2, M: 4, R: 5, Routing: "paper", Pattern: "shift", Pkts: 2, Flits: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sim: status %d: %s", resp.StatusCode, body)
	}
	var sr api.SimReport
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Mode != "closed-loop" || sr.Closed == nil || sr.Closed.Makespan <= 0 {
		t.Fatalf("sim report %+v", sr)
	}
	if sr.Closed.ContendedLinks != 0 {
		t.Fatalf("nonblocking shift contended %d links", sr.Closed.ContendedLinks)
	}

	// Worst-case search on a blocking router finds contention.
	resp, body = postJSON(t, ts.URL+"/v1/worstcase", &api.Request{N: 2, M: 4, R: 5, Routing: "dest-mod", Restarts: 2, Steps: 50})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worstcase: status %d: %s", resp.StatusCode, body)
	}
	var wr api.WorstCaseReport
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Evaluated <= 0 || wr.Permutation == "" {
		t.Fatalf("worstcase report %+v", wr)
	}

	// Health endpoint.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", hresp.StatusCode)
	}

	// Cache: a repeated identical request is a hit and runs no new job.
	before := getMetrics(t, ts.URL)
	resp, body2 := postJSON(t, ts.URL+"/v1/verify", &api.Request{N: 2, M: 4, R: 5, Routing: "paper"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached verify: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Nbserve-Cache"); got != "hit" {
		t.Fatalf("repeat verify served from %q", got)
	}
	if !bytes.Equal(body2, firstBody) {
		t.Fatalf("cached body %s != original %s", body2, firstBody)
	}
	after := getMetrics(t, ts.URL)
	if after.JobsRun != before.JobsRun {
		t.Fatalf("cache hit ran a job: %d -> %d", before.JobsRun, after.JobsRun)
	}
	if after.Endpoints["verify"].CacheHits != before.Endpoints["verify"].CacheHits+1 {
		t.Fatalf("cache_hits %d -> %d", before.Endpoints["verify"].CacheHits, after.Endpoints["verify"].CacheHits)
	}
	if after.JobLatency == nil || after.JobLatency.Count != after.JobsRun {
		t.Fatalf("latency histogram count %v vs jobs_run %d", after.JobLatency, after.JobsRun)
	}

	// And the cached body is byte-identical to a fresh no-cache run.
	resp, fresh := postJSON(t, ts.URL+"/v1/verify", &api.Request{N: 2, M: 4, R: 5, Routing: "paper", NoCache: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no-cache verify: status %d", resp.StatusCode)
	}
	if !bytes.Equal(bytes.TrimSpace(body2), bytes.TrimSpace(fresh)) {
		t.Fatalf("cached body %s != fresh body %s", body2, fresh)
	}
}

// TestBadRequests pins the 400 mapping: malformed JSON, unknown fields,
// unknown routing/topology/pattern, and GET on a POST endpoint.
func TestBadRequests(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader([]byte(`{"bogus_field":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}

	for _, q := range []*api.Request{
		{Routing: "warp-drive"},
		{Topo: "torus"},
		{N: 2, M: 4, R: 5, Routing: "paper", Pattern: "zigzag"},
	} {
		url := ts.URL + "/v1/verify"
		if q.Pattern != "" {
			url = ts.URL + "/v1/sim"
		}
		resp, body := postJSON(t, url, q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%+v: status %d: %s", q, resp.StatusCode, body)
		}
		var er api.ErrorReport
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Fatalf("%+v: error body %s", q, body)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/verify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", resp.StatusCode)
	}
}

// TestQueueOverflow429 fills a 1-worker, 1-deep server with long jobs and
// asserts the next request is rejected immediately with 429 and counted in
// jobs_rejected. The long jobs are adversarial searches with effectively
// unbounded step budgets, cut off by their own request deadlines, so the
// test never waits on them.
func TestQueueOverflow429(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow := func(seed int64) *api.Request {
		return &api.Request{
			N: 2, M: 4, R: 8, Routing: "dest-mod",
			Restarts: 1 << 30, Steps: 1 << 30, Seed: api.SeedPtr(seed),
			TimeoutMs: 3000,
		}
	}
	var wg sync.WaitGroup
	results := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/worstcase", slow(int64(i+1)))
			results[i] = resp.StatusCode
		}(i)
	}
	// Wait until one job is running and one is queued.
	deadline := time.Now().Add(2 * time.Second)
	for getMetrics(t, ts.URL).QueueDepth < 2 {
		if time.Now().After(deadline) {
			t.Fatal("jobs never saturated the queue")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/worstcase", slow(99))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if m := getMetrics(t, ts.URL); m.JobsRejected == 0 {
		t.Fatal("jobs_rejected not counted")
	}
	wg.Wait()
	// The saturating jobs end via their deadlines (504), or 200 if a very
	// fast machine finished the first one before saturation; never 429.
	for i, code := range results {
		if code != http.StatusGatewayTimeout && code != http.StatusOK {
			t.Fatalf("saturating job %d: status %d", i, code)
		}
	}
}

// TestConcurrentLoad fires 500 concurrent requests (a mix of cacheable
// repeats and distinct keys across all three endpoints) at a pool sized so
// nothing overflows, and requires every response to succeed. Run under
// -race this is the data-race gate for the whole pipeline.
func TestConcurrentLoad(t *testing.T) {
	s := New(Config{Workers: 8, QueueDepth: 600})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// The default transport caps per-host conns; raise it so 500 requests
	// actually run concurrently.
	client := ts.Client()
	client.Transport.(*http.Transport).MaxConnsPerHost = 0
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256

	const total = 500
	var wg sync.WaitGroup
	codes := make([]int, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var (
				url string
				q   *api.Request
			)
			switch i % 3 {
			case 0: // exact verify, 5 distinct keys
				url = ts.URL + "/v1/verify"
				q = &api.Request{N: 2, M: 4, R: 3 + i%5, Routing: "paper"}
			case 1: // small exhaustive sweep, heavy repeats
				url = ts.URL + "/v1/verify"
				q = &api.Request{N: 2, M: 4, R: 2, Routing: "adaptive", Mode: "exhaustive"}
			default: // random-trials sim, 4 distinct seeds
				url = ts.URL + "/v1/sim"
				q = &api.Request{N: 2, M: 4, R: 3, Routing: "paper", Trials: 2, Pkts: 1, Flits: 2, Seed: api.SeedPtr(int64(1 + i%4))}
			}
			body, err := json.Marshal(q)
			if err != nil {
				codes[i] = -1
				return
			}
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				codes[i] = -2
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	m := getMetrics(t, ts.URL)
	if m.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", m.QueueDepth)
	}
	var requests int64
	for _, em := range m.Endpoints {
		requests += em.Requests
	}
	if requests != total {
		t.Fatalf("request counters sum to %d, want %d", requests, total)
	}
	// The repeat-heavy mix must have been served mostly from cache: far
	// fewer jobs ran than requests arrived.
	if m.JobsRun >= total {
		t.Fatalf("no caching under load: %d jobs for %d requests", m.JobsRun, total)
	}
}

// TestDrainOnShutdown reproduces the nbserve SIGTERM path: Shutdown is
// called while a job is in flight, and the client still receives the
// complete response because the drain waits for the handler.
func TestDrainOnShutdown(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	// A worst-case search sized to stay in flight while Shutdown runs:
	// millions of delta evaluations, hard-capped by its own 4s deadline,
	// so the outcome is either a complete 200 or a prompt 504 — never a
	// torn response.
	type outcome struct {
		code int
		body []byte
	}
	ch := make(chan outcome, 1)
	go func() {
		q := &api.Request{N: 2, M: 4, R: 8, Routing: "dest-mod", Restarts: 4, Steps: 1 << 21, TimeoutMs: 4000}
		body, _ := json.Marshal(q)
		resp, err := http.Post(base+"/v1/worstcase", "application/json", bytes.NewReader(body))
		if err != nil {
			ch <- outcome{code: -1}
			return
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		ch <- outcome{code: resp.StatusCode, body: out}
	}()

	// Wait until the job is actually in flight, then shut down.
	deadline := time.Now().Add(2 * time.Second)
	for getMetrics(t, base).QueueDepth < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	s.Close()

	got := <-ch
	if got.code != http.StatusOK && got.code != http.StatusGatewayTimeout {
		t.Fatalf("in-flight request: status %d body %s", got.code, got.body)
	}
	if got.code == http.StatusOK {
		var wr api.WorstCaseReport
		if err := json.Unmarshal(got.body, &wr); err != nil || wr.Evaluated == 0 {
			t.Fatalf("drained response incomplete: %s", got.body)
		}
	}
}

// TestDeadlineExceeded pins the 504 mapping: a request whose budget cannot
// cover its sweep is cut off promptly by its own deadline.
func TestDeadlineExceeded(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 16 hosts exhaustive: ~2·10^13 patterns, impossible; 200ms budget.
	// max_exhaustive is raised explicitly — the validation layer refuses
	// forced exhaustive sweeps beyond the cap (TestValidation pins that).
	q := &api.Request{N: 2, M: 4, R: 8, Routing: "paper", Mode: "exhaustive", MaxExhaustive: 16, TimeoutMs: 200}
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/verify", q)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline observed only after %v", elapsed)
	}
	var er api.ErrorReport
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("error body %s", body)
	}
}

// TestCacheKeyNormalization: a request spelling out the defaults and one
// omitting them share a cache key; changing a result-determining field
// changes it; execution controls do not.
func TestCacheKeyNormalization(t *testing.T) {
	a := &api.Request{}
	b := &api.Request{Topo: "ftree", N: 4, M: 16, R: 20, Routing: "paper", Mode: "auto",
		Trials: 500, Seed: api.SeedPtr(1), MaxExhaustive: 9, Restarts: 8, Steps: 400,
		Pattern: "random", Flits: 4, Pkts: 8, Arbiter: "round-robin"}
	normalize(a)
	normalize(b)
	if a.CacheKey("verify") != b.CacheKey("verify") {
		t.Fatalf("default and explicit keys differ:\n%s\n%s", a.CacheKey("verify"), b.CacheKey("verify"))
	}
	c := &api.Request{Seed: api.SeedPtr(2)}
	normalize(c)
	if a.CacheKey("verify") == c.CacheKey("verify") {
		t.Fatal("seed not in cache key")
	}
	d := &api.Request{TimeoutMs: 9999, NoCache: true, Workers: 7}
	normalize(d)
	if a.CacheKey("verify") != d.CacheKey("verify") {
		t.Fatal("execution controls leaked into the cache key")
	}
	if a.CacheKey("verify") == a.CacheKey("sim") {
		t.Fatal("op not in cache key")
	}
}

func ExampleServer() {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(&api.Request{N: 2, M: 4, R: 5, Routing: "paper"})
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	var vr api.VerifyReport
	json.NewDecoder(resp.Body).Decode(&vr)
	fmt.Println(vr.Verdict, vr.Method)
	// Output: nonblocking lemma1-exact
}
