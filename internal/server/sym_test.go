package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/permutation"
	"repro/internal/store"
)

// TestSymVerifyParity: /v1/verify with sym_reduce produces a body
// byte-identical to the plain engine's — across modes, first_blocked, an
// equivariant multipath routing, and a routing that forces the fallback —
// and the two share one cache entry (sym_reduce is an execution control,
// not part of the canonical key).
func TestSymVerifyParity(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 32})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []api.Request{
		{N: 2, M: 3, R: 3, Routing: "spray", Mode: "exhaustive"},
		{N: 2, M: 3, R: 3, Routing: "spray", Mode: "exhaustive", FirstBlocked: true},
		{N: 2, M: 3, R: 3, Routing: "spray", Mode: "exhaustive-parallel"},
		// Seeded random routing fails the equivariance certificate: the
		// engine falls back to the full sweep, still byte-identically.
		{N: 2, M: 2, R: 4, Routing: "random-fixed", Mode: "exhaustive"},
	}
	for _, base := range cases {
		plain := base
		plain.NoCache = true
		resp, wantBody := postJSON(t, ts.URL+"/v1/verify", &plain)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plain verify: %d %s", resp.StatusCode, wantBody)
		}

		sq := base
		sq.SymReduce = true
		resp, got := postJSON(t, ts.URL+"/v1/verify", &sq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sym verify: %d %s", resp.StatusCode, got)
		}
		if !bytes.Equal(got, wantBody) {
			t.Fatalf("sym body differs from plain engine:\n got %s\nwant %s", got, wantBody)
		}
		if c := resp.Header.Get("X-Nbserve-Cache"); c != "miss" {
			t.Fatalf("first sym verify cache=%s", c)
		}

		// The sym run's cached result serves the equivalent full request.
		resp, got = postJSON(t, ts.URL+"/v1/verify", &base)
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Nbserve-Cache") != "hit" {
			t.Fatalf("full verify after sym: %d cache=%s", resp.StatusCode, resp.Header.Get("X-Nbserve-Cache"))
		}
		if !bytes.Equal(got, wantBody) {
			t.Fatalf("cached body differs:\n got %s\nwant %s", got, wantBody)
		}
	}
}

// TestSymValidation pins the request-shape rules for the new fields.
func TestSymValidation(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name string
		path string
		q    api.Request
	}{
		{"sym_reduce random", "/v1/verify", api.Request{Mode: "random", SymReduce: true}},
		{"sym_reduce exact", "/v1/verify", api.Request{N: 2, M: 4, R: 4, Routing: "paper", Mode: "exact", SymReduce: true}},
		{"sym_shard on verify", "/v1/verify", api.Request{SymShard: []int{0, 1}, SymReduce: true}},
		{"sym_shard without sym_reduce", "/v1/verify/shard", api.Request{N: 2, M: 3, R: 3, Routing: "spray", SymShard: []int{0, 1}}},
		{"sym_reduce without sym_shard", "/v1/verify/shard", api.Request{N: 2, M: 3, R: 3, Routing: "spray", SymReduce: true}},
		{"sym_shard with shard_prefix", "/v1/verify/shard", api.Request{N: 2, M: 3, R: 3, Routing: "spray", SymReduce: true, SymShard: []int{0, 1}, ShardPrefix: []int{0}}},
		{"sym_shard wrong shape", "/v1/verify/shard", api.Request{N: 2, M: 3, R: 3, Routing: "spray", SymReduce: true, SymShard: []int{0, 1, 2}}},
		{"sym_shard empty range", "/v1/verify/shard", api.Request{N: 2, M: 3, R: 3, Routing: "spray", SymReduce: true, SymShard: []int{3, 3}}},
		{"sym_shard negative", "/v1/verify/shard", api.Request{N: 2, M: 3, R: 3, Routing: "spray", SymReduce: true, SymShard: []int{-1, 2}}},
		{"sym_shard over max_exhaustive", "/v1/verify/shard", api.Request{N: 3, M: 3, R: 4, Routing: "spray", SymReduce: true, SymShard: []int{0, 1}}},
		{"sym_reduce on sim", "/v1/sim", api.Request{SymReduce: true}},
		{"sym_reduce on worstcase", "/v1/worstcase", api.Request{SymReduce: true}},
		{"sym_shard on sim", "/v1/sim", api.Request{SymShard: []int{0, 1}}},
	} {
		resp, body := postJSON(t, ts.URL+tc.path, &tc.q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
	}
}

// TestSymShardEndpoint sweeps every sym shard of a 6-host spray fabric
// through /v1/verify/shard and checks the merged counters equal the full
// verify's, shard IDs use the "sym.lo.hi" form, and an inapplicable
// router is a fatal 400, not a silent fallback.
func TestSymShardEndpoint(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 32})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	full := api.Request{N: 2, M: 3, R: 3, Routing: "spray", Mode: "exhaustive-parallel", NoCache: true}
	resp, body := postJSON(t, ts.URL+"/v1/verify", &full)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full verify: %d %s", resp.StatusCode, body)
	}
	var want api.VerifyReport
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}

	sym, err := permutation.NewBlockSymmetry(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	var tested, blocked, maxLoad int
	for _, rg := range sym.Shards(2) {
		q := api.Request{N: 2, M: 3, R: 3, Routing: "spray", SymReduce: true, SymShard: []int{rg[0], rg[1]}}
		resp, body := postJSON(t, ts.URL+"/v1/verify/shard", &q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sym shard %v: %d %s", rg, resp.StatusCode, body)
		}
		var rep api.ShardReport
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatal(err)
		}
		if want := api.SymShardID(rg[0], rg[1]); rep.Shard != want {
			t.Fatalf("shard id %q, want %q", rep.Shard, want)
		}
		if rep.RouteErr != "" {
			t.Fatalf("sym shard %v reported route error %q", rg, rep.RouteErr)
		}
		tested += rep.Tested
		blocked += rep.Blocked
		if rep.MaxLinkLoad > maxLoad {
			maxLoad = rep.MaxLinkLoad
		}
	}
	if tested != want.Tested || blocked != want.Blocked || maxLoad != want.MaxLinkLoad {
		t.Fatalf("merged sym shards (%d,%d,%d) != full verify (%d,%d,%d)",
			tested, blocked, maxLoad, want.Tested, want.Blocked, want.MaxLinkLoad)
	}

	bad := api.Request{N: 2, M: 2, R: 4, Routing: "random-fixed", SymReduce: true, SymShard: []int{0, 1}}
	resp, body = postJSON(t, ts.URL+"/v1/verify/shard", &bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inapplicable sym shard: %d %s, want 400", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "not applicable") {
		t.Fatalf("inapplicable sym shard error %s", body)
	}
}

// TestCoordinatedSymSweep: a sym_reduce sweep fanned across two workers
// merges to a body byte-identical to the single-process full engine, both
// where the reduction applies (orbit-range shards, witness re-derived)
// and where planning falls back to the prefix partition (non-equivariant
// routing), with the matching sym_sweeps / sym_fallbacks counters.
func TestCoordinatedSymSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweeps in -short")
	}
	wa, wb := newWorkerServer(t), newWorkerServer(t)

	for _, tc := range []struct {
		name    string
		q       api.Request
		wantSym bool
	}{
		{"spray n6 sym", api.Request{N: 2, M: 3, R: 3, Routing: "spray", SymReduce: true}, true},
		{"spray n8 sym", api.Request{N: 2, M: 2, R: 4, Routing: "spray", SymReduce: true}, true},
		{"random-fixed fallback", api.Request{N: 2, M: 2, R: 4, Routing: "random-fixed", SymReduce: true}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.q
			ref.SymReduce = false
			want := localVerifyBody(t, ref)

			_, ts := newCoordinator(t, &CoordinatorConfig{
				Workers:          []string{wa.URL, wb.URL},
				ShardConcurrency: 2,
			}, nil)
			q := tc.q
			acc := postSweep(t, ts.URL, &q)
			st := waitSweep(t, ts.URL, acc.JobID)
			if st.State != "done" {
				t.Fatalf("sweep state %s: %s", st.State, st.Error)
			}
			if got := string(st.Result); got != want {
				t.Fatalf("coordinated sym result differs from local engine:\n got %s\nwant %s", got, want)
			}
			m := getMetrics(t, ts.URL)
			if tc.wantSym && m.SymSweeps == 0 {
				t.Fatal("sym sweep ran without bumping sym_sweeps")
			}
			if !tc.wantSym && m.SymFallbacks == 0 {
				t.Fatal("fallback sweep ran without bumping sym_fallbacks")
			}

			// The sym sweep fills the shared verify cache: the equivalent
			// non-sym verify is a hit with the identical body.
			q2 := ref
			q2.Mode = "exhaustive-parallel"
			resp, body := postJSON(t, ts.URL+"/v1/verify", &q2)
			if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Nbserve-Cache") != "hit" {
				t.Fatalf("verify after sym sweep: %d cache=%s", resp.StatusCode, resp.Header.Get("X-Nbserve-Cache"))
			}
			if got := strings.TrimSuffix(string(body), "\n"); got != want {
				t.Fatalf("verify served %s, sym sweep computed %s", got, want)
			}
		})
	}
}

// TestCoordinatedSymSweepResume proves checkpoint resume for orbit-range
// shards: a first coordinator whose worker fails every sym shard past the
// second checkpoints two "sym.lo.hi" entries, then fails the sweep; a
// second coordinator over the same store resumes exactly those two and
// finishes byte-identically to the local full engine.
func TestCoordinatedSymSweepResume(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweeps in -short")
	}
	shared := store.NewMemory(1024)

	sym, err := permutation.NewBlockSymmetry(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One worker × one slot plans sym.Shards(1); crash every shard from
	// the third onward.
	shards := sym.Shards(1)
	if len(shards) < 3 {
		t.Fatalf("need >= 3 sym shards for the crash plan, have %d", len(shards))
	}
	crashLo := shards[2][0]

	worker := New(Config{Workers: 4, QueueDepth: 64})
	t.Cleanup(worker.Close)
	handler := worker.Handler()
	partial := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var sq api.Request
		if json.Unmarshal(body, &sq) == nil && len(sq.SymShard) == 2 && sq.SymShard[0] >= crashLo {
			http.Error(w, "injected crash", http.StatusInternalServerError)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(partial.Close)

	q := api.Request{N: 2, M: 2, R: 4, Routing: "spray", SymReduce: true}
	ref := q
	ref.SymReduce = false
	want := localVerifyBody(t, ref)

	_, ts1 := newCoordinator(t, &CoordinatorConfig{
		Workers:          []string{partial.URL},
		ShardConcurrency: 1,
		ShardRetries:     1,
	}, shared)
	q1 := q
	acc1 := postSweep(t, ts1.URL, &q1)
	if acc1.Shards != len(shards) {
		t.Fatalf("planned %d shards, want %d orbit ranges", acc1.Shards, len(shards))
	}
	if acc1.Resumed != 0 {
		t.Fatalf("fresh sym sweep resumed %d shards", acc1.Resumed)
	}
	st1 := waitSweep(t, ts1.URL, acc1.JobID)
	if st1.State != "failed" {
		t.Fatalf("partial sym sweep state %s, want failed", st1.State)
	}
	if st1.ShardsDone != 2 {
		t.Fatalf("partial sym sweep completed %d shards, want 2", st1.ShardsDone)
	}

	_, ts2 := newCoordinator(t, &CoordinatorConfig{
		Workers:          []string{newWorkerServer(t).URL},
		ShardConcurrency: 1,
	}, shared)
	q2 := q
	acc2 := postSweep(t, ts2.URL, &q2)
	if acc2.Resumed != 2 {
		t.Fatalf("resumed %d sym shards, want 2", acc2.Resumed)
	}
	st2 := waitSweep(t, ts2.URL, acc2.JobID)
	if st2.State != "done" {
		t.Fatalf("resumed sym sweep state %s: %s", st2.State, st2.Error)
	}
	if got := string(st2.Result); got != want {
		t.Fatalf("resumed sym result differs:\n got %s\nwant %s", got, want)
	}
	snap := getMetrics(t, ts2.URL)
	if snap.ShardsResumed != 2 {
		t.Fatalf("shards_resumed = %d, want 2", snap.ShardsResumed)
	}
	if snap.SymSweeps == 0 {
		t.Fatal("resumed sym sweep did not bump sym_sweeps")
	}
}

// TestSymLocalSweepProgress drives a local (no workers) sym_reduce sweep
// through the job endpoints: the final body matches the plain engine and
// the progress counters land exactly on the full pattern count.
func TestSymLocalSweepProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweeps in -short")
	}
	q := api.Request{N: 2, M: 3, R: 3, Routing: "spray"}
	want := localVerifyBody(t, q)

	s := New(Config{Workers: 4, QueueDepth: 16})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sq := q
	sq.SymReduce = true
	acc := postSweep(t, ts.URL, &sq)
	if acc.Workers != 0 {
		t.Fatalf("local sweep accepted with %d workers", acc.Workers)
	}
	st := waitSweep(t, ts.URL, acc.JobID)
	if st.State != "done" {
		t.Fatalf("sweep state %s: %s", st.State, st.Error)
	}
	if got := string(st.Result); got != want {
		t.Fatalf("local sym sweep differs:\n got %s\nwant %s", got, want)
	}
	var rep api.VerifyReport
	if err := json.Unmarshal(st.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if st.Tested != int64(rep.Tested) || st.Blocked != int64(rep.Blocked) {
		t.Fatalf("progress counters (%d,%d) != report (%d,%d)", st.Tested, st.Blocked, rep.Tested, rep.Blocked)
	}
	if m := getMetrics(t, ts.URL); m.SymSweeps == 0 {
		t.Fatal("local sym sweep did not bump sym_sweeps")
	}
}
