package server

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
)

// plugQueue occupies every worker (and optionally queue slots) with jobs
// that block until the returned release func is called.
func plugQueue(t *testing.T, s *Server, n int) (release func()) {
	t.Helper()
	block := make(chan struct{})
	for i := 0; i < n; i++ {
		j := &job{ctx: context.Background(), done: make(chan jobResult, 1), run: func(context.Context) ([]byte, error) {
			<-block
			return []byte("{}"), nil
		}}
		if err := s.enqueue(j); err != nil {
			t.Fatalf("plug %d: %v", i, err)
		}
	}
	var once sync.Once
	return func() { once.Do(func() { close(block) }) }
}

// TestValidationOverflowM is the regression for the requestLinks overflow:
// a huge m used to signed-overflow q.N+q.M (and then the product) past the
// links cap and reach topology construction on a worker. Every overflow
// shape must be a 400 mentioning the links cap, with no job run.
func TestValidationOverflowM(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		q    api.Request
	}{
		// n+m wraps negative; r·(n+m) double-wraps back to a small positive
		// value the old `v >= 0 && v <= max` guard accepted.
		{"m maxint double wrap", api.Request{N: 2, M: math.MaxInt, R: 2, Routing: "dest-mod"}},
		{"m 2^62", api.Request{N: 2, M: 1 << 62, R: 3, Routing: "dest-mod"}},
		{"m just past cap", api.Request{N: 2, M: 1<<22 + 1, R: 1, Routing: "dest-mod"}},
		{"r times sum past cap", api.Request{N: 2, M: 1 << 20, R: 1 << 10, Routing: "dest-mod"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.q
			resp, body := postJSON(t, ts.URL+"/v1/verify", &q)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), "links") {
				t.Fatalf("error %s does not mention the links cap", body)
			}
		})
	}
	if m := getMetrics(t, ts.URL); m.JobsRun != 0 {
		t.Fatalf("overflow request ran %d jobs", m.JobsRun)
	}

	// The estimate saturates rather than rejecting legal sizes: a request
	// just under every cap still validates.
	q := api.Request{N: 2, M: 4, R: 3, Routing: "paper", Mode: "random", Trials: 2}
	if resp, body := postJSON(t, ts.URL+"/v1/verify", &q); resp.StatusCode != http.StatusOK {
		t.Fatalf("legal request rejected: %d %s", resp.StatusCode, body)
	}
}

// TestQueuedDeadline504 is the regression for the blocking wait: a request
// whose deadline passes while its job is still queued must receive its 504
// immediately, not after every job ahead of it completes.
func TestQueuedDeadline504(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := plugQueue(t, s, 1) // park the only worker
	defer release()

	q := &api.Request{N: 2, M: 4, R: 2, Routing: "paper", TimeoutMs: 60}
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/verify", q)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// The old code waited for the worker to dequeue — which here means
	// forever. Any bound well under the plug duration proves the fix; 5s
	// allows arbitrary CI scheduling noise.
	if elapsed > 5*time.Second {
		t.Fatalf("504 took %v; handler waited for the queue to drain", elapsed)
	}

	// The worker later drains the abandoned job without blocking on the
	// handback, and the queue gauge returns to zero.
	release()
	deadline := time.Now().Add(2 * time.Second)
	for getMetrics(t, ts.URL).QueueDepth != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue_depth stuck at %d", getMetrics(t, ts.URL).QueueDepth)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBatchQueuedDeadline504 is the same regression for the batch path: a
// batch whose deadline expires while its groups are queued answers each
// queued item 504 promptly instead of serializing behind the plug.
func TestBatchQueuedDeadline504(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := plugQueue(t, s, 1)
	defer release()

	batch := api.BatchRequest{
		Items: []api.Request{
			{N: 2, M: 4, R: 2, Routing: "paper"},
			{N: 2, M: 4, R: 3, Routing: "paper"},
		},
		TimeoutMs: 60,
	}
	start := time.Now()
	resp, body := postBatch(t, ts.URL, &batch)
	if time.Since(start) > 5*time.Second {
		t.Fatal("batch handler waited for the queue to drain")
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var rep api.BatchReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	for i, it := range rep.Items {
		if it.Status != http.StatusGatewayTimeout {
			t.Fatalf("item %d: status %d, want 504", i, it.Status)
		}
	}
}

// TestEnqueueCloseRace hammers enqueue from many goroutines while Close
// runs. Before the closed-flag fix this panicked on send-to-closed-channel;
// now racing enqueues get errServerClosing (a 503 at the HTTP layer) and
// accepted jobs still drain. Run under -race this is also the memory-model
// gate for the closeMu protocol.
func TestEnqueueCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := New(Config{Workers: 2, QueueDepth: 4})
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					j := &job{ctx: context.Background(), done: make(chan jobResult, 1), run: func(context.Context) ([]byte, error) {
						return []byte("{}"), nil
					}}
					if err := s.enqueue(j); err == errServerClosing {
						return
					}
				}
			}()
		}
		close(start)
		s.Close()
		wg.Wait()
		// After Close returns, every further enqueue is a clean 503.
		j := &job{ctx: context.Background(), done: make(chan jobResult, 1)}
		if err := s.enqueue(j); err != errServerClosing {
			t.Fatalf("enqueue after Close: %v", err)
		}
	}
}
