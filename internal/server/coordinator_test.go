package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/store"
)

// newWorkerServer starts a plain nbserve node for a coordinator to
// dispatch shards to.
func newWorkerServer(t *testing.T) *httptest.Server {
	t.Helper()
	ws := New(Config{Workers: 4, QueueDepth: 64})
	t.Cleanup(ws.Close)
	ts := httptest.NewServer(ws.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func newCoordinator(t *testing.T, cc *CoordinatorConfig, st store.Store) (*Server, *httptest.Server) {
	t.Helper()
	if cc.RetryBackoff == 0 {
		cc.RetryBackoff = time.Millisecond
	}
	s := New(Config{Coordinator: cc, Store: st, ProgressInterval: 2 * time.Millisecond})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postSweep submits q to base's sweep endpoint and returns the 202
// acceptance metadata.
func postSweep(t *testing.T, base string, q *api.Request) *api.SweepAccepted {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/verify/sweep", q)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	var acc api.SweepAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatalf("decode acceptance: %v (%s)", err, body)
	}
	return &acc
}

// waitSweep polls the job status endpoint until the job leaves "running".
func waitSweep(t *testing.T, base, jobID string) *api.SweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		var st api.SweepStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "running" {
			return &st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sweep %s still running after 60s", jobID)
	return nil
}

// localVerifyBody computes the single-process reference: the /v1/verify
// response body for q forced through the exhaustive-parallel engine,
// without the trailing newline the HTTP framing appends.
func localVerifyBody(t *testing.T, q api.Request) string {
	t.Helper()
	s := New(Config{Workers: 4, QueueDepth: 16})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	q.Mode = "exhaustive-parallel"
	resp, body := postJSON(t, ts.URL+"/v1/verify", &q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference verify: %d %s", resp.StatusCode, body)
	}
	return strings.TrimSuffix(string(body), "\n")
}

// TestCoordinatedSweepMatchesLocal is the distributed-parity acceptance
// test: a sweep fanned across two worker nodes must produce a final body
// byte-identical to the in-process SweepExhaustiveParallel verify — for
// blocking and nonblocking networks, at 8 and 9 hosts, under level-1
// sharding and under the deepened partition (more worker slots than
// level-1 shards), where the witness must be re-derived.
func TestCoordinatedSweepMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweeps in -short")
	}
	wa, wb := newWorkerServer(t), newWorkerServer(t)
	cases := []struct {
		name string
		q    api.Request
		conc int
	}{
		// 8 hosts, blocking (m=2 < n²): 2 workers × 2 slots < 8 shards,
		// so level-1 sharding with worker-reported witnesses.
		{"n8 blocking level1", api.Request{N: 2, M: 2, R: 4, Routing: "dest-mod"}, 2},
		// Same network, 2 workers × 5 slots > 8 → deepened to 8·7=56
		// two-digit shards; the witness comes from re-derivation.
		{"n8 blocking deep", api.Request{N: 2, M: 2, R: 4, Routing: "dest-mod"}, 5},
		// 8 hosts, nonblocking (Theorem-1 provisioning m=n²).
		{"n8 nonblocking", api.Request{N: 2, M: 4, R: 4, Routing: "paper"}, 2},
		// 9 hosts: 9! = 362880 patterns across the fleet.
		{"n9 blocking", api.Request{N: 3, M: 3, R: 3, Routing: "dest-mod"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := localVerifyBody(t, tc.q)
			s, ts := newCoordinator(t, &CoordinatorConfig{
				Workers:          []string{wa.URL, wb.URL},
				ShardConcurrency: tc.conc,
			}, nil)
			q := tc.q
			acc := postSweep(t, ts.URL, &q)
			if acc.Workers != 2 {
				t.Fatalf("accepted with %d workers", acc.Workers)
			}
			minShards := 2 * tc.conc
			if acc.Shards < minShards || acc.Shards%1 != 0 {
				t.Fatalf("accepted with %d shards for %d slots", acc.Shards, minShards)
			}
			st := waitSweep(t, ts.URL, acc.JobID)
			if st.State != "done" {
				t.Fatalf("sweep state %s: %s", st.State, st.Error)
			}
			if got := string(st.Result); got != want {
				t.Fatalf("coordinated result differs from local engine:\n got %s\nwant %s", got, want)
			}
			if st.ShardsDone != st.ShardsTotal || st.ShardsTotal != acc.Shards {
				t.Fatalf("finished with %d/%d shards (accepted %d)", st.ShardsDone, st.ShardsTotal, acc.Shards)
			}
			m := getMetrics(t, ts.URL)
			if m.ShardsDispatched < int64(acc.Shards) {
				t.Fatalf("dispatched %d shards, want >= %d", m.ShardsDispatched, acc.Shards)
			}
			// The sweep fills the verify cache: the same point on /v1/verify
			// is a hit with the identical body.
			q2 := tc.q
			q2.Mode = "exhaustive-parallel"
			resp, body := postJSON(t, ts.URL+"/v1/verify", &q2)
			if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Nbserve-Cache") != "hit" {
				t.Fatalf("verify after sweep: %d cache=%s", resp.StatusCode, resp.Header.Get("X-Nbserve-Cache"))
			}
			if got := strings.TrimSuffix(string(body), "\n"); got != want {
				t.Fatalf("verify served %s, sweep computed %s", got, want)
			}
			_ = s
		})
	}
}

// TestCoordinatedSweepWorkerKill kills one of two workers after its first
// shard: every shard routed to it afterwards fails, is retried with
// backoff, and is reassigned to the surviving worker. The sweep must
// still complete with the byte-identical result.
func TestCoordinatedSweepWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweeps in -short")
	}
	alive := newWorkerServer(t)

	dying := New(Config{Workers: 4, QueueDepth: 64})
	t.Cleanup(dying.Close)
	handler := dying.Handler()
	var served atomic.Int64
	dyingTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 1 {
			http.Error(w, "worker killed", http.StatusInternalServerError)
			return
		}
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(dyingTS.Close)

	q := api.Request{N: 2, M: 2, R: 4, Routing: "dest-mod"}
	want := localVerifyBody(t, q)
	s, ts := newCoordinator(t, &CoordinatorConfig{
		Workers:          []string{alive.URL, dyingTS.URL},
		ShardConcurrency: 2,
	}, nil)
	acc := postSweep(t, ts.URL, &q)
	st := waitSweep(t, ts.URL, acc.JobID)
	if st.State != "done" {
		t.Fatalf("sweep state %s: %s", st.State, st.Error)
	}
	if got := string(st.Result); got != want {
		t.Fatalf("result after worker kill differs:\n got %s\nwant %s", got, want)
	}
	m := getMetrics(t, ts.URL)
	if m.ShardsRetried == 0 {
		t.Fatal("worker kill produced no retries")
	}
	if s.met.shardsDispatched.Load() <= int64(acc.Shards) {
		t.Fatalf("dispatched %d with retries, want > %d", m.ShardsDispatched, acc.Shards)
	}
}

// TestCoordinatedSweepResume proves checkpoint resume across coordinator
// restarts: a first coordinator whose worker fails every shard with
// leading digit >= 2 checkpoints shards 0 and 1, then fails the sweep;
// a second coordinator sharing the same store resumes those two shards
// from checkpoints, dispatches only the remaining six, and finishes with
// the byte-identical result.
func TestCoordinatedSweepResume(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweeps in -short")
	}
	shared := store.NewMemory(1024)

	worker := New(Config{Workers: 4, QueueDepth: 64})
	t.Cleanup(worker.Close)
	handler := worker.Handler()
	partial := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var sq api.Request
		if json.Unmarshal(body, &sq) == nil && len(sq.ShardPrefix) > 0 && sq.ShardPrefix[0] >= 2 {
			http.Error(w, "injected crash", http.StatusInternalServerError)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(partial.Close)

	q := api.Request{N: 2, M: 2, R: 4, Routing: "dest-mod"}
	want := localVerifyBody(t, q)

	// First run: serial dispatch (one worker, one slot) checkpoints shards
	// 0 and 1, then dies retrying shard 2.
	_, ts1 := newCoordinator(t, &CoordinatorConfig{
		Workers:          []string{partial.URL},
		ShardConcurrency: 1,
		ShardRetries:     1,
	}, shared)
	acc1 := postSweep(t, ts1.URL, &q)
	if acc1.Resumed != 0 {
		t.Fatalf("fresh sweep resumed %d shards", acc1.Resumed)
	}
	st1 := waitSweep(t, ts1.URL, acc1.JobID)
	if st1.State != "failed" {
		t.Fatalf("partial sweep state %s, want failed", st1.State)
	}
	if st1.ShardsDone != 2 {
		t.Fatalf("partial sweep completed %d shards, want 2", st1.ShardsDone)
	}

	// Second run, fresh coordinator over the same store with a healthy
	// worker: resumes the two checkpointed shards.
	_, ts2 := newCoordinator(t, &CoordinatorConfig{
		Workers:          []string{newWorkerServer(t).URL},
		ShardConcurrency: 1,
	}, shared)
	acc2 := postSweep(t, ts2.URL, &q)
	if acc2.Resumed != 2 {
		t.Fatalf("resumed %d shards, want 2", acc2.Resumed)
	}
	st2 := waitSweep(t, ts2.URL, acc2.JobID)
	if st2.State != "done" {
		t.Fatalf("resumed sweep state %s: %s", st2.State, st2.Error)
	}
	if got := string(st2.Result); got != want {
		t.Fatalf("resumed result differs:\n got %s\nwant %s", got, want)
	}
	m, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(m.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	m.Body.Close()
	if snap.ShardsResumed != 2 {
		t.Fatalf("shards_resumed = %d, want 2", snap.ShardsResumed)
	}
	if snap.ShardsDispatched != int64(acc2.Shards-2) {
		t.Fatalf("dispatched %d, want %d (total %d minus 2 resumed)", snap.ShardsDispatched, acc2.Shards-2, acc2.Shards)
	}
}

// sseEvent is one parsed server-sent event from the job stream.
type sseEvent struct {
	event  string
	status api.SweepStatus
}

// readSSE consumes base/v1/jobs/{id}/events until the stream closes,
// returning every event in order.
func readSSE(t *testing.T, base, jobID string) []sseEvent {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + jobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var events []sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	name := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev := sseEvent{event: name}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev.status); err != nil {
				t.Fatalf("decode %s event: %v", name, err)
			}
			events = append(events, ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestSweepSSEProgress drives a local (non-coordinated) sweep and a
// coordinated sweep through the SSE endpoint: every stream must deliver
// monotonically non-decreasing counters and end with exactly one terminal
// `done` event carrying the final result.
func TestSweepSSEProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweeps in -short")
	}
	t.Run("local", func(t *testing.T) {
		s := New(Config{Workers: 4, QueueDepth: 16, ProgressInterval: time.Millisecond})
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		q := api.Request{N: 3, M: 3, R: 3, Routing: "dest-mod"}
		acc := postSweep(t, ts.URL, &q)
		verifySSE(t, readSSE(t, ts.URL, acc.JobID), 362880)
	})
	t.Run("coordinated", func(t *testing.T) {
		w := newWorkerServer(t)
		_, ts := newCoordinator(t, &CoordinatorConfig{Workers: []string{w.URL}, ShardConcurrency: 2}, nil)
		q := api.Request{N: 2, M: 2, R: 4, Routing: "dest-mod"}
		acc := postSweep(t, ts.URL, &q)
		verifySSE(t, readSSE(t, ts.URL, acc.JobID), 40320)
	})
}

// verifySSE asserts the SSE contract on a finished stream: monotonic
// counters, exactly one terminal done event, and a decodable final
// VerifyReport.
func verifySSE(t *testing.T, events []sseEvent, wantTested int64) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	var last api.SweepStatus
	for i, ev := range events {
		st := ev.status
		if st.Tested < last.Tested || st.Blocked < last.Blocked || st.ShardsDone < last.ShardsDone {
			t.Fatalf("event %d went backwards: %+v after %+v", i, st, last)
		}
		if isLast := i == len(events)-1; isLast != (ev.event == "done") {
			t.Fatalf("event %d (%s) misplaced: done must be exactly the final event", i, ev.event)
		}
		last = st
	}
	if last.State != "done" || last.Tested != wantTested {
		t.Fatalf("terminal event state=%s tested=%d, want done/%d", last.State, last.Tested, wantTested)
	}
	var rep api.VerifyReport
	if err := json.Unmarshal(last.Result, &rep); err != nil {
		t.Fatalf("terminal result does not decode: %v", err)
	}
	if rep.Method != "exhaustive-parallel" || !rep.Exact {
		t.Fatalf("terminal report method=%s exact=%t", rep.Method, rep.Exact)
	}
}

// TestSweepEndpointValidation: the sweep endpoint enforces the same
// validation as a forced exhaustive verify, and the job endpoints 404 on
// unknown ids.
func TestSweepEndpointValidation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 80 hosts: the factorial guard must refuse the sweep up front.
	q := api.Request{N: 4, M: 16, R: 20, Routing: "adaptive"}
	resp, body := postJSON(t, ts.URL+"/v1/verify/sweep", &q)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "max_exhaustive") {
		t.Fatalf("oversized sweep: %d %s", resp.StatusCode, body)
	}

	for _, url := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", url, resp.StatusCode)
		}
	}
}

// TestSweepDedupAndCache: a second identical sweep while the first runs
// follows the same job id; once finished, a third request is served as a
// pre-completed job from the store.
func TestSweepDedupAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweeps in -short")
	}
	// Gate the worker so the first sweep is deterministically still
	// running when the duplicate request arrives.
	worker := New(Config{Workers: 4, QueueDepth: 64})
	t.Cleanup(worker.Close)
	handler := worker.Handler()
	gate := make(chan struct{})
	gated := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-gate
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(gated.Close)
	_, ts := newCoordinator(t, &CoordinatorConfig{Workers: []string{gated.URL}, ShardConcurrency: 2}, nil)

	q := api.Request{N: 2, M: 2, R: 4, Routing: "dest-mod"}
	acc1 := postSweep(t, ts.URL, &q)
	acc2 := postSweep(t, ts.URL, &q)
	close(gate)
	if acc2.JobID != acc1.JobID {
		t.Fatalf("identical running sweep not deduplicated: %s vs %s", acc2.JobID, acc1.JobID)
	}
	st := waitSweep(t, ts.URL, acc1.JobID)
	if st.State != "done" {
		t.Fatalf("sweep state %s: %s", st.State, st.Error)
	}
	acc3 := postSweep(t, ts.URL, &q)
	if acc3.JobID == acc1.JobID {
		t.Fatal("finished sweep id reused")
	}
	st3 := waitSweep(t, ts.URL, acc3.JobID)
	if st3.State != "done" || string(st3.Result) != string(st.Result) {
		t.Fatalf("store-served sweep differs: %s", st3.Result)
	}
	m := getMetrics(t, ts.URL)
	if m.Endpoints[sweepOp].CacheHits == 0 {
		t.Fatal("finished sweep not served from the store")
	}
}

// TestMetricsConformance: after a mixed load — completed jobs, queue
// overflow 429s, and a queued job expiring to 504 — the queue gauge must
// return to zero, and the metrics payload must carry the coordinator
// counters and the sweep endpoint entry.
func TestMetricsConformance(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A normal job completes first.
	ok := api.Request{N: 2, M: 4, R: 2, Routing: "paper"}
	if resp, body := postJSON(t, ts.URL+"/v1/verify", &ok); resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline verify: %d %s", resp.StatusCode, body)
	}

	// Plug the single worker; a short-deadline request expires while
	// queued (504), and with the queue then full the next request is
	// rejected (429).
	release := plugQueue(t, s, 1)
	expired := api.Request{N: 2, M: 4, R: 2, Routing: "dest-mod", TimeoutMs: 60, NoCache: true}
	if resp, body := postJSON(t, ts.URL+"/v1/verify", &expired); resp.StatusCode != http.StatusGatewayTimeout {
		release()
		t.Fatalf("queued-expiry: %d %s", resp.StatusCode, body)
	}
	rejected := api.Request{N: 2, M: 4, R: 3, Routing: "dest-mod", NoCache: true}
	if resp, body := postJSON(t, ts.URL+"/v1/verify", &rejected); resp.StatusCode != http.StatusTooManyRequests {
		release()
		t.Fatalf("overflow: %d %s", resp.StatusCode, body)
	}
	release()

	deadline := time.Now().Add(5 * time.Second)
	var m *MetricsSnapshot
	for {
		m = getMetrics(t, ts.URL)
		if m.QueueDepth == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m.QueueDepth != 0 {
		t.Fatalf("queue_depth = %d after load drained", m.QueueDepth)
	}
	if m.JobsRejected == 0 {
		t.Fatal("429 not counted in jobs_rejected")
	}
	if m.ShardsDispatched != 0 || m.ShardsRetried != 0 || m.ShardsResumed != 0 {
		t.Fatalf("idle coordinator counters nonzero: %d/%d/%d", m.ShardsDispatched, m.ShardsRetried, m.ShardsResumed)
	}
	if _, ok := m.Endpoints[sweepOp]; !ok {
		t.Fatalf("metrics missing %q endpoint entry", sweepOp)
	}
	if _, ok := m.Endpoints["verify/shard"]; !ok {
		t.Fatal("metrics missing verify/shard endpoint entry")
	}

	// The wire payload spells the counters out by name.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, field := range []string{"shards_dispatched", "shards_retried", "shards_resumed", "queue_depth"} {
		if !bytes.Contains(raw, []byte(fmt.Sprintf("%q", field))) {
			t.Fatalf("metrics payload missing %q: %s", field, raw)
		}
	}
}
