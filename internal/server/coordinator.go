package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/permutation"
	"repro/internal/store"
)

// The distributed sweep coordinator. One exhaustive sweep is cut into
// prefix shards (permutation.PrefixShards — deepened past one level when
// the worker fleet has more slots than the n level-1 shards), each shard
// is POSTed to a worker nbserve's /v1/verify/shard with a per-shard
// timeout, failures are retried with exponential backoff on a different
// worker when one is available, and the per-shard SweepResults merge — in
// lexicographic prefix order — into exactly the result the in-process
// SweepExhaustiveParallel computes. Completed shards checkpoint to the
// result store under reserved keys, so a coordinator killed mid-sweep
// resumes without redoing finished shards.

// CoordinatorConfig configures distributed sweep dispatch. Zero values
// select the defaults noted per field.
type CoordinatorConfig struct {
	// Workers lists worker nbserve base URLs (host:port or http://...).
	// Empty means this node serves /v1/verify/sweep locally.
	Workers []string
	// ShardTimeout bounds one shard dispatch, connection to response
	// (0 = 2m). Sent to the worker as the shard request's timeout_ms.
	ShardTimeout time.Duration
	// ShardRetries is how many times one shard may be re-dispatched after
	// a retryable failure before the sweep fails (0 = 3).
	ShardRetries int
	// RetryBackoff is the first retry's delay; each further retry of the
	// same shard doubles it (0 = 250ms). Capped at 10s.
	RetryBackoff time.Duration
	// ShardConcurrency is the number of in-flight shards per worker
	// (0 = 2). len(Workers)·ShardConcurrency is the slot count the shard
	// partition is deepened to reach.
	ShardConcurrency int
	// Client is the HTTP client for shard dispatch (nil = a client with
	// no overall timeout; per-shard contexts bound each call).
	Client *http.Client
}

func (c *CoordinatorConfig) fill() {
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 2 * time.Minute
	}
	if c.ShardRetries <= 0 {
		c.ShardRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.ShardConcurrency <= 0 {
		c.ShardConcurrency = 2
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	for i, w := range c.Workers {
		if !strings.Contains(w, "://") {
			c.Workers[i] = "http://" + w
		}
	}
}

// shardTask tracks one shard's dispatch lifecycle.
type shardTask struct {
	idx      int
	prefix   []int
	attempts int
	failedOn map[int]bool // worker indexes this shard already failed on
}

// shardEvent is one dispatch outcome, delivered to the coordinator loop.
type shardEvent struct {
	task   *shardTask
	worker int
	rep    *api.ShardReport
	err    error // retryable failure (transport, 5xx, 429)
	fatal  error // permanent failure (a worker 400: the sweep is misconfigured)
}

// runCoordinated fans plan.shards across the worker fleet and merges the
// results. It returns the merged SweepResult in exactly the shape the
// in-process parallel engine would have produced (including the
// canonical re-derivations for witnesses under deep sharding and for
// routing errors), leaving report assembly to the caller.
func (s *Server) runCoordinated(ctx context.Context, sj *sweepJob, q *api.Request, plan *sweepPlan) (*analysis.SweepResult, error) {
	cc := s.cfg.Coordinator
	if plan.sym {
		s.met.symSweeps.Add(1)
	} else if q.SymReduce {
		s.met.symFallbacks.Add(1)
	}
	results := make([]*api.ShardReport, len(plan.shards))
	var pending []*shardTask
	for i, sh := range plan.shards {
		if rep, ok := plan.resumed[plan.shardID(sh)]; ok {
			results[i] = rep
			continue
		}
		pending = append(pending, &shardTask{idx: i, prefix: sh, failedOn: map[int]bool{}})
	}

	if len(pending) > 0 {
		// Buffered for every outcome any schedule can produce, so a
		// dispatch goroutine can always deliver and exit even if the loop
		// has already failed the sweep.
		events := make(chan shardEvent, len(pending)*(cc.ShardRetries+1))
		requeue := make(chan *shardTask, len(pending)*(cc.ShardRetries+1))
		inflight := make([]int, len(cc.Workers))
		running := 0
		completed := 0

		dispatch := func(t *shardTask, w int) {
			t.attempts++
			inflight[w]++
			running++
			s.met.shardsDispatched.Add(1)
			if t.attempts > 1 {
				s.met.shardsRetried.Add(1)
			}
			go func() {
				rep, err, fatal := s.dispatchShard(ctx, cc, q, plan, t.prefix, cc.Workers[w])
				events <- shardEvent{task: t, worker: w, rep: rep, err: err, fatal: fatal}
			}()
		}
		// pickWorker prefers a free slot on a worker this shard has not
		// failed on; when every candidate already failed it, any free slot
		// will do (the failure may have been transient).
		pickWorker := func(t *shardTask) int {
			fallback := -1
			for w := range cc.Workers {
				if inflight[w] >= cc.ShardConcurrency {
					continue
				}
				if !t.failedOn[w] {
					return w
				}
				if fallback < 0 {
					fallback = w
				}
			}
			return fallback
		}

		total := len(pending)
		for completed < total {
			// Assign every ready shard that has a slot.
			for len(pending) > 0 {
				w := pickWorker(pending[0])
				if w < 0 {
					break
				}
				t := pending[0]
				pending = pending[1:]
				dispatch(t, w)
			}
			if running == 0 && len(pending) == 0 {
				// Everything outstanding is waiting on a backoff timer.
				select {
				case t := <-requeue:
					pending = append(pending, t)
					continue
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			select {
			case ev := <-events:
				inflight[ev.worker]--
				running--
				switch {
				case ev.fatal != nil:
					return nil, ev.fatal
				case ev.err != nil:
					ev.task.failedOn[ev.worker] = true
					if ev.task.attempts > cc.ShardRetries {
						return nil, fmt.Errorf("shard %s failed after %d attempts: %w",
							plan.shardID(ev.task.prefix), ev.task.attempts, ev.err)
					}
					backoff := cc.RetryBackoff << (ev.task.attempts - 1)
					if backoff > 10*time.Second {
						backoff = 10 * time.Second
					}
					t := ev.task
					time.AfterFunc(backoff, func() { requeue <- t })
				default:
					results[ev.task.idx] = ev.rep
					completed++
					sj.shardsDone.Add(1)
					sj.tested.Add(int64(ev.rep.Tested))
					sj.blocked.Add(int64(ev.rep.Blocked))
					if !q.NoCache {
						if body, err := json.Marshal(ev.rep); err == nil {
							s.store.Put(store.CheckpointKey(plan.key, ev.rep.Shard), body)
						}
					}
				}
			case t := <-requeue:
				pending = append(pending, t)
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}

	return s.mergeCoordinated(ctx, plan, results)
}

// dispatchShard POSTs one shard to one worker. err is retryable; fatal
// means the worker rejected the request as invalid (400), which no retry
// can fix.
func (s *Server) dispatchShard(ctx context.Context, cc *CoordinatorConfig, q *api.Request, plan *sweepPlan, shard []int, workerURL string) (rep *api.ShardReport, err, fatal error) {
	sq := *q
	if plan.sym {
		sq.SymReduce, sq.SymShard, sq.ShardPrefix = true, shard, nil
	} else {
		// A sym_reduce sweep that fell back to prefix sharding (reduction
		// inapplicable) must not carry the flag to workers: on the shard
		// endpoint sym_reduce demands a sym_shard.
		sq.SymReduce, sq.SymShard, sq.ShardPrefix = false, nil, shard
	}
	sq.Mode = "" // shard requests carry no engine mode
	sq.NoCache = q.NoCache
	sq.TimeoutMs = cc.ShardTimeout.Milliseconds()
	body, merr := json.Marshal(&sq)
	if merr != nil {
		return nil, nil, merr
	}
	cctx, cancel := context.WithTimeout(ctx, cc.ShardTimeout)
	defer cancel()
	req, merr := http.NewRequestWithContext(cctx, http.MethodPost, workerURL+"/v1/verify/shard", bytes.NewReader(body))
	if merr != nil {
		return nil, nil, merr
	}
	req.Header.Set("Content-Type", "application/json")
	resp, herr := cc.Client.Do(req)
	if herr != nil {
		return nil, fmt.Errorf("worker %s: %w", workerURL, herr), nil
	}
	defer resp.Body.Close()
	out, herr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if herr != nil {
		return nil, fmt.Errorf("worker %s: read response: %w", workerURL, herr), nil
	}
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusBadRequest:
		var er api.ErrorReport
		_ = json.Unmarshal(out, &er)
		return nil, nil, badRequest("worker %s rejected shard: %s", workerURL, er.Error)
	default:
		return nil, fmt.Errorf("worker %s: status %d: %s", workerURL, resp.StatusCode, bytes.TrimSpace(out)), nil
	}
	var sr api.ShardReport
	if uerr := json.Unmarshal(out, &sr); uerr != nil {
		return nil, fmt.Errorf("worker %s: decode shard report: %w", workerURL, uerr), nil
	}
	return &sr, nil, nil
}

// mergeCoordinated folds the per-shard reports (already in lexicographic
// prefix order) into the single-process parallel sweep's result. Two
// cases need local canonical re-derivation on the coordinator:
//   - any shard reporting a routing error ⇒ the statistical fields are
//     meaningless and the canonical sequential-order first routing error
//     is recomputed, exactly as sweepParallelOracle does;
//   - a blocking sweep under deeper-than-level-1 sharding ⇒ sub-shard
//     witnesses cannot reproduce the level-1 Heap-order witness, so the
//     lowest blocked top-level shard is re-scanned first-blocked-only in
//     its native enumeration order.
func (s *Server) mergeCoordinated(ctx context.Context, plan *sweepPlan, results []*api.ShardReport) (*analysis.SweepResult, error) {
	for _, rep := range results {
		if rep.RouteErr != "" {
			return analysis.SweepFirstRouteErr(plan.t.router, plan.t.hosts), nil
		}
	}
	merged := &analysis.SweepResult{}
	firstBlocked := -1
	for i, rep := range results {
		merged.Tested += rep.Tested
		merged.Blocked += rep.Blocked
		if rep.MaxLinkLoad > merged.MaxLinkLoad {
			merged.MaxLinkLoad = rep.MaxLinkLoad
		}
		if firstBlocked < 0 && rep.Blocked > 0 {
			firstBlocked = i
		}
	}
	if firstBlocked < 0 {
		return merged, nil
	}
	if plan.sym {
		// Sym shard witnesses are canonical representatives in enumeration
		// order — they prove blockedness but are not the parallel engine's
		// witness. Re-derive it locally in the parallel merge order (first
		// blocked pattern of the lowest level-1 prefix shard), exactly what
		// a single-node sweep reports.
		w, err := analysis.SweepSymWitness(ctx, plan.t.router, plan.t.hosts, true)
		if err != nil {
			return nil, err
		}
		if w == nil {
			return nil, fmt.Errorf("sym witness re-derivation found no blocked pattern")
		}
		merged.FirstBlocked = w
		return merged, nil
	}
	if len(plan.shards[firstBlocked]) <= 1 {
		// Level-1 sharding: the worker's witness IS the parallel engine's
		// (same shard, same engine selection, same enumeration order).
		p, err := permutation.Parse(plan.t.hosts, results[firstBlocked].FirstBlocked)
		if err != nil {
			return nil, fmt.Errorf("shard %s: bad witness: %w", results[firstBlocked].Shard, err)
		}
		merged.FirstBlocked = p
		return merged, nil
	}
	top := plan.shards[firstBlocked][0]
	fb, err := analysis.SweepShardFirstBlockedCtx(ctx, plan.t.router, plan.t.hosts, []int{top}, nil)
	if err != nil {
		return nil, err
	}
	if fb.FirstBlocked == nil {
		return nil, fmt.Errorf("witness re-derivation found no blocked pattern in shard %d", top)
	}
	merged.FirstBlocked = fb.FirstBlocked
	return merged, nil
}
