package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/campaign"
)

// TestFailuresEndpoint round-trips a small campaign through /v1/failures:
// the response must decode to the FailuresReport the campaign engine
// produces for the same (normalized) parameters, and a repeat request
// must be a cache hit under the canonical key.
func TestFailuresEndpoint(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := &api.Request{
		N: 2, M: 6, R: 3, Routing: "paper",
		Failures: &api.FailuresRequest{Scenario: "tops", MaxFailures: 2, Samples: 2, Trials: 5},
	}
	resp, body := postJSON(t, ts.URL+"/v1/failures", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Nbserve-Cache"); got != "miss" {
		t.Fatalf("first request served from %q", got)
	}
	var rep api.FailuresReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if len(rep.Curves) != 4 {
		t.Fatalf("curves = %d, want the 4 default schemes", len(rep.Curves))
	}
	for _, c := range rep.Curves {
		if len(c.Points) != 3 {
			t.Fatalf("scheme %s: %d points, want 3 (k=0..2)", c.Scheme, len(c.Points))
		}
	}

	// The server response is byte-identical to a direct engine run with the
	// normalized request parameters (seed defaults to 1, sequential).
	want, err := campaign.Run(context.Background(), campaign.Config{
		N: 2, M: 6, R: 3, Scenario: campaign.ScenarioTops,
		MaxFailures: 2, Samples: 2, Trials: 5, Seed: 1,
		SimFlits: 4, SimPackets: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	wj, _ := json.Marshal(want)
	if strings.TrimSpace(string(body)) != string(wj) {
		t.Fatalf("server response differs from direct campaign run:\n%s\nvs\n%s", body, wj)
	}

	// Same request again: canonical key, cache hit.
	resp, _ = postJSON(t, ts.URL+"/v1/failures", q)
	if got := resp.Header.Get("X-Nbserve-Cache"); got != "hit" {
		t.Fatalf("repeat request served from %q", got)
	}

	// Spelling out the defaults the server fills (scenario tops is the
	// default) hits the same cache entry — normalize runs before keying.
	q2 := &api.Request{
		N: 2, M: 6, R: 3, Routing: "paper",
		Failures: &api.FailuresRequest{
			Scenario: "tops", MaxFailures: 2, Samples: 2, Trials: 5,
			Schemes: campaign.DefaultSchemes(),
		},
	}
	resp, _ = postJSON(t, ts.URL+"/v1/failures", q2)
	if got := resp.Header.Get("X-Nbserve-Cache"); got != "hit" {
		t.Fatalf("default-spelling request served from %q, want hit", got)
	}

	// A different scenario is a different key.
	q3 := &api.Request{
		N: 2, M: 6, R: 3, Routing: "paper",
		Failures: &api.FailuresRequest{Scenario: "links", MaxFailures: 2, Samples: 2, Trials: 5},
	}
	resp, body = postJSON(t, ts.URL+"/v1/failures", q3)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("links scenario: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Nbserve-Cache"); got != "miss" {
		t.Fatalf("links-scenario request served from %q, want miss", got)
	}
}

// TestFailuresValidation pins the request surface of /v1/failures: the
// block is required there and rejected everywhere else, and every
// parameter is range-checked before a worker sees the request.
func TestFailuresValidation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fb := func() *api.FailuresRequest {
		return &api.FailuresRequest{Scenario: "tops", MaxFailures: 2, Samples: 1, Trials: 5}
	}
	cases := []struct {
		name    string
		path    string
		q       api.Request
		wantSub string
	}{
		{"missing block", "/v1/failures",
			api.Request{N: 2, M: 6, R: 3, Routing: "paper"}, "failures block"},
		{"mnt topo", "/v1/failures",
			api.Request{Topo: "mnt", Ports: 4, Levels: 2, Routing: "mnt-dest-mod", Failures: fb()}, "ftree"},
		{"unknown scenario", "/v1/failures",
			api.Request{N: 2, M: 6, R: 3, Routing: "paper",
				Failures: &api.FailuresRequest{Scenario: "meteor", Samples: 1, Trials: 5}}, "scenario"},
		{"max beyond domain", "/v1/failures",
			api.Request{N: 2, M: 6, R: 3, Routing: "paper",
				Failures: &api.FailuresRequest{Scenario: "pods", MaxFailures: 4, Samples: 1, Trials: 5}}, "max_failures"},
		{"negative max", "/v1/failures",
			api.Request{N: 2, M: 6, R: 3, Routing: "paper",
				Failures: &api.FailuresRequest{Scenario: "tops", MaxFailures: -1, Samples: 1, Trials: 5}}, "max_failures"},
		{"oversized samples", "/v1/failures",
			api.Request{N: 2, M: 6, R: 3, Routing: "paper",
				Failures: &api.FailuresRequest{Scenario: "tops", MaxFailures: 2, Samples: 1000, Trials: 5}}, "samples"},
		{"oversized trials", "/v1/failures",
			api.Request{N: 2, M: 6, R: 3, Routing: "paper",
				Failures: &api.FailuresRequest{Scenario: "tops", MaxFailures: 2, Samples: 1, Trials: 100000}}, "trials"},
		{"unknown scheme", "/v1/failures",
			api.Request{N: 2, M: 6, R: 3, Routing: "paper",
				Failures: &api.FailuresRequest{Scenario: "tops", MaxFailures: 2, Samples: 1, Trials: 5,
					Schemes: []string{"telepathy"}}}, "scheme"},
		{"work cap", "/v1/failures",
			api.Request{N: 8, M: 70, R: 100, Routing: "paper",
				Failures: &api.FailuresRequest{Scenario: "tops", MaxFailures: 64, Samples: 64, Trials: 5000}}, "pattern-host"},
		{"sym_reduce", "/v1/failures",
			api.Request{N: 2, M: 6, R: 3, Routing: "paper", SymReduce: true, Failures: fb()}, "sym_reduce"},
		// The failures block is rejected on every other endpoint.
		{"block on verify", "/v1/verify",
			api.Request{N: 2, M: 6, R: 3, Routing: "paper", Failures: fb()}, "failures"},
		{"block on worstcase", "/v1/worstcase",
			api.Request{N: 2, M: 6, R: 3, Routing: "paper", Failures: fb()}, "failures"},
		{"block on sim", "/v1/sim",
			api.Request{N: 2, M: 6, R: 3, Routing: "paper", Failures: fb()}, "failures"},
		{"block on shard", "/v1/verify/shard",
			api.Request{N: 2, M: 6, R: 3, Routing: "paper", Failures: fb()}, "failures"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.q
			resp, body := postJSON(t, ts.URL+tc.path, &q)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var er api.ErrorReport
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error body %s", body)
			}
			if !strings.Contains(er.Error, tc.wantSub) {
				t.Fatalf("error %q does not mention %q", er.Error, tc.wantSub)
			}
		})
	}

	// Every rejection happened before the queue.
	if m := getMetrics(t, ts.URL); m.JobsRun != 0 {
		t.Fatalf("validation let %d jobs run", m.JobsRun)
	}
}
