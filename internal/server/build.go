package server

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// errBadRequest wraps validation failures (unknown topology/routing/
// pattern, malformed sizes) so the handler maps them to 400 instead of
// 500. Engine failures (routing errors mid-sweep) stay unwrapped.
type errBadRequest struct{ err error }

func (e errBadRequest) Error() string { return e.err.Error() }
func (e errBadRequest) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return errBadRequest{fmt.Errorf(format, args...)}
}

// normalize fills CLI-equivalent defaults in place. It runs before
// validation and cache keying, so a request spelling out the defaults and
// one omitting them share a cache entry. It only fills absent values —
// range enforcement is Job.Validate's (validateCommon's) responsibility,
// and Seed distinguishes absent (nil → 1) from an explicit zero.
func normalize(q *api.Request) {
	if q.Topo == "" {
		q.Topo = "ftree"
	}
	if q.N == 0 {
		q.N = 4
	}
	if q.M == 0 {
		q.M = q.N * q.N
	}
	if q.R == 0 {
		q.R = 20
	}
	if q.Ports == 0 {
		q.Ports = 20
	}
	if q.Levels == 0 {
		q.Levels = 2
	}
	if q.Routing == "" {
		if q.Topo == "mnt" {
			q.Routing = "mnt-dest-mod"
		} else {
			q.Routing = "paper"
		}
	}
	if q.Mode == "" {
		q.Mode = "auto"
	}
	if q.Trials == 0 {
		q.Trials = 500
	}
	if q.Seed == nil {
		q.Seed = api.SeedPtr(1)
	}
	if q.MaxExhaustive == 0 {
		q.MaxExhaustive = 9
	}
	if q.Restarts == 0 {
		q.Restarts = 8
	}
	if q.Steps == 0 {
		q.Steps = 400
	}
	if q.Pattern == "" {
		q.Pattern = "random"
	}
	if q.Flits == 0 {
		q.Flits = 4
	}
	if q.Pkts == 0 {
		q.Pkts = 8
	}
	if q.Arbiter == "" {
		q.Arbiter = "round-robin"
	}
	normalizeFailures(q)
}

// target is a constructed topology + router pair shared by the runners.
type target struct {
	net    *topology.Network
	hosts  int
	router routing.Router
	ftree  *topology.FoldedClos // nil for mnt
}

// buildTarget mirrors the nbsim/nbverify construction switches. Every
// failure is a bad request: the engines only see targets that exist.
func buildTarget(q *api.Request) (*target, error) {
	switch q.Topo {
	case "ftree":
		if q.N < 1 || q.M < 1 || q.R < 1 {
			return nil, badRequest("ftree needs n, m, r >= 1 (have %d, %d, %d)", q.N, q.M, q.R)
		}
		f := topology.NewFoldedClos(q.N, q.M, q.R)
		t := &target{net: f.Net, hosts: f.Ports(), ftree: f}
		switch q.Routing {
		case "paper":
			pr, err := routing.NewPaperDeterministic(f)
			if err != nil {
				return nil, badRequest("%v", err)
			}
			t.router = pr
		case "paper-folded":
			t.router = routing.NewPaperDeterministicFolded(f)
		case "dest-mod":
			t.router = routing.NewDestMod(f)
		case "source-mod":
			t.router = routing.NewSourceMod(f)
		case "dest-switch-mod":
			t.router = routing.NewDestSwitchMod(f)
		case "random-fixed":
			t.router = routing.NewRandomFixed(f, q.SeedValue())
		case "adaptive":
			ad, err := routing.NewNonblockingAdaptive(f)
			if err != nil {
				return nil, badRequest("%v", err)
			}
			t.router = ad
		case "greedy-local":
			t.router = routing.NewGreedyLocal(f)
		case "global":
			t.router = routing.NewGlobalRearrangeable(f)
		case "spray":
			if q.SprayWidth <= 0 || q.SprayWidth >= f.M {
				t.router = routing.NewFullSpray(f)
			} else {
				ks, err := routing.NewKSpray(f, q.SprayWidth)
				if err != nil {
					return nil, badRequest("%v", err)
				}
				t.router = ks
			}
		default:
			return nil, badRequest("routing %q not available on ftree", q.Routing)
		}
		return t, nil
	case "mnt":
		if q.Ports < 2 || q.Levels < 1 {
			return nil, badRequest("mnt needs ports >= 2 and levels >= 1 (have %d, %d)", q.Ports, q.Levels)
		}
		mt := topology.NewMPortNTree(q.Ports, q.Levels)
		t := &target{net: mt.Net, hosts: mt.Hosts()}
		switch q.Routing {
		case "mnt-dest-mod":
			t.router = routing.NewMNTDestMod(mt)
		case "mnt-random":
			t.router = routing.NewMNTRandomFixed(mt, q.SeedValue())
		default:
			return nil, badRequest("routing %q not available on mnt", q.Routing)
		}
		return t, nil
	default:
		return nil, badRequest("unknown topology %q", q.Topo)
	}
}

// symBlockSize is the hosts-per-bottom-switch block size the symmetry
// group acts on: n for ftree(n+m, r), ports/2 (hosts per leaf switch) for
// the m-port n-tree. Where the resulting group does not actually commute
// with the routing, the engine's equivariance certificate rejects it and
// the sweep falls back — still byte-identical — so this only has to name
// the fabric's natural block.
func symBlockSize(q *api.Request, t *target) int {
	if t.ftree != nil {
		return q.N
	}
	return q.Ports / 2
}

// runVerify answers POST /v1/verify: the nbverify decision procedure with
// cancellation. Mode auto uses the exact Lemma-1 analysis for single-path
// routers, an exhaustive sweep up to max_exhaustive hosts, and the
// randomized+structured sweep beyond; exhaustive | exhaustive-parallel |
// random force a sweep engine. sym_reduce asks the exhaustive engines to
// sweep orbit representatives of the fabric's block symmetry group
// instead of all hosts! patterns; the report is byte-identical either
// way (the engine falls back to the full sweep where the reduction does
// not apply), which is why sym_reduce stays out of the cache key.
func runVerify(ctx context.Context, q *api.Request) (any, error) {
	t, err := buildTarget(q)
	if err != nil {
		return nil, err
	}
	rep := &api.VerifyReport{Network: t.net.Name, Hosts: t.hosts, Routing: t.router.Name()}

	mode := q.Mode
	if mode == "auto" || mode == "exact" {
		if pr, ok := t.router.(routing.PairRouter); ok {
			res, err := analysis.CheckLemma1AllPairs(pr, t.hosts)
			if err != nil {
				return nil, err
			}
			rep.Method, rep.Exact = "lemma1-exact", true
			if res.Nonblocking {
				rep.Verdict = "nonblocking"
				return rep, nil
			}
			rep.Verdict = "blocking"
			w, err := analysis.BlockingWitness(res, t.hosts)
			if err != nil {
				return nil, err
			}
			rep.Witness = w.String()
			return rep, nil
		}
		if mode == "exact" {
			return nil, badRequest("mode exact needs a single-path deterministic routing (got %s)", t.router.Name())
		}
		if t.hosts <= q.MaxExhaustive {
			mode = "exhaustive"
		} else {
			mode = "random"
		}
	}

	var res *analysis.SweepResult
	switch mode {
	case "exhaustive":
		if q.FirstBlocked {
			rep.Method = "exhaustive-first-blocked"
			if q.SymReduce {
				res, _, err = analysis.SweepExhaustiveSymFirstBlockedCtx(ctx, t.router, t.hosts, symBlockSize(q, t))
			} else {
				res, err = analysis.SweepExhaustiveFirstBlockedCtx(ctx, t.router, t.hosts)
			}
		} else {
			rep.Method = "exhaustive"
			if q.SymReduce {
				res, _, err = analysis.SweepExhaustiveSymCtx(ctx, t.router, t.hosts, symBlockSize(q, t))
			} else {
				res, err = analysis.SweepExhaustiveCtx(ctx, t.router, t.hosts)
			}
		}
		rep.Exact = true
	case "exhaustive-parallel":
		rep.Method, rep.Exact = "exhaustive-parallel", true
		if q.SymReduce {
			res, _, err = analysis.SweepExhaustiveSymParallelProgressCtx(ctx, t.router, t.hosts, symBlockSize(q, t), q.Workers, nil)
		} else {
			res, err = analysis.SweepExhaustiveParallelCtx(ctx, t.router, t.hosts, q.Workers)
		}
	case "random":
		rep.Method = "random"
		res, err = analysis.SweepRandomCtx(ctx, t.router, t.hosts, q.Trials, q.SeedValue())
	default:
		return nil, badRequest("unknown verify mode %q", q.Mode)
	}
	if err != nil {
		return nil, err
	}
	if res.RouteErr != nil {
		return nil, res.RouteErr
	}
	rep.Tested, rep.Blocked, rep.MaxLinkLoad = res.Tested, res.Blocked, res.MaxLinkLoad
	if res.Blocked > 0 {
		rep.Verdict = "blocking"
		rep.Witness = res.FirstBlocked.String()
	} else {
		rep.Verdict = "no-blocking-found"
	}
	return rep, nil
}

// runShard answers POST /v1/verify/shard: one prefix shard of an
// exhaustive sweep, the worker half of the distributed coordinator. The
// raw per-shard SweepResult is returned unmerged; a routing failure is
// shard data (RouteErr in the report), not an HTTP error, so the
// coordinator can tell "shard finished and found a route error" apart
// from transport failures it should retry.
func runShard(ctx context.Context, q *api.Request) (any, error) {
	t, err := buildTarget(q)
	if err != nil {
		return nil, err
	}
	if len(q.SymShard) == 2 {
		// A symmetry-reduced shard: one range of the orbit enumeration,
		// counters already scaled by orbit size. The coordinator plans sym
		// shards only after proving applicability, so a worker that cannot
		// apply the reduction is misconfigured relative to its coordinator —
		// a fatal 400, never a silent fallback (the counters would not mean
		// the same thing).
		bs := symBlockSize(q, t)
		if stats := analysis.SymApplicable(t.router, t.hosts, bs); !stats.Applied {
			return nil, badRequest("symmetry reduction not applicable here: %s", stats.Reason)
		}
		res, _, err := analysis.SweepSymShardCtx(ctx, t.router, t.hosts, bs, q.SymShard[0], q.SymShard[1], nil)
		if err != nil {
			return nil, err
		}
		rep := &api.ShardReport{
			Network: t.net.Name, Hosts: t.hosts, Routing: t.router.Name(),
			Shard:  api.SymShardID(q.SymShard[0], q.SymShard[1]),
			Tested: res.Tested, Blocked: res.Blocked, MaxLinkLoad: res.MaxLinkLoad,
		}
		if res.FirstBlocked != nil {
			// Signals blockedness only: the coordinator re-derives the
			// full-order witness itself.
			rep.FirstBlocked = res.FirstBlocked.String()
		}
		return rep, nil
	}
	res, err := analysis.SweepShardCtx(ctx, t.router, t.hosts, q.ShardPrefix, nil)
	if err != nil {
		return nil, err
	}
	rep := &api.ShardReport{
		Network: t.net.Name, Hosts: t.hosts, Routing: t.router.Name(),
		Shard:  api.ShardID(q.ShardPrefix),
		Tested: res.Tested, Blocked: res.Blocked, MaxLinkLoad: res.MaxLinkLoad,
	}
	if res.FirstBlocked != nil {
		rep.FirstBlocked = res.FirstBlocked.String()
	}
	if res.RouteErr != nil {
		rep.RouteErr = res.RouteErr.Error()
	}
	return rep, nil
}

// runWorstCase answers POST /v1/worstcase: the adversarial hill-climbing
// search for maximally contended permutations.
func runWorstCase(ctx context.Context, q *api.Request) (any, error) {
	t, err := buildTarget(q)
	if err != nil {
		return nil, err
	}
	s := &analysis.WorstCaseSearch{
		Router: t.router, Hosts: t.hosts,
		Restarts: q.Restarts, Steps: q.Steps, Seed: q.SeedValue(),
	}
	res, err := s.RunCtx(ctx)
	if err != nil {
		return nil, err
	}
	rep := &api.WorstCaseReport{
		Network: t.net.Name, Hosts: t.hosts, Routing: t.router.Name(),
		ContendedLinks: res.ContendedLinks, MaxLinkLoad: res.MaxLoad,
		Evaluated: res.Evaluated,
	}
	if res.Permutation != nil {
		rep.Permutation = res.Permutation.String()
	}
	return rep, nil
}

// runSim answers POST /v1/sim with the `nbsim -json` report. The packet
// simulators do not poll mid-run — cancellation is honored between the
// queue and the start of the simulation — so deadlines bound queue wait
// plus one run.
func runSim(ctx context.Context, q *api.Request) (any, error) {
	t, err := buildTarget(q)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{PacketFlits: q.Flits, PacketsPerPair: q.Pkts, Seed: q.SeedValue()}
	switch q.Arbiter {
	case "round-robin":
		cfg.Arbiter = sim.RoundRobin
	case "oldest-first":
		cfg.Arbiter = sim.OldestFirst
	default:
		return nil, badRequest("unknown arbiter %q", q.Arbiter)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &api.SimReport{
		Network: t.net.Name, Hosts: t.hosts, Routing: t.router.Name(),
		PacketFlits: q.Flits, Arbiter: cfg.Arbiter.String(),
	}

	if q.OpenLoop {
		if t.ftree == nil {
			return nil, badRequest("open_loop supports topo ftree only")
		}
		pr, ok := t.router.(routing.PairRouter)
		if !ok {
			return nil, badRequest("open_loop needs a single-path deterministic routing (got %s)", t.router.Name())
		}
		perm := permutation.SwitchShift(q.N, q.R, 1)
		dst := make([]int, perm.N())
		for i := 0; i < perm.N(); i++ {
			dst[i] = perm.Dst(i)
		}
		pairs := sim.PermPairs(dst)
		base := sim.OpenLoopConfig{
			PacketFlits:     q.Flits,
			WarmupPackets:   20,
			MeasuredPackets: 100,
			Seed:            q.SeedValue(),
			Arbiter:         cfg.Arbiter,
			Collector:       sim.NewMetricsCollector(),
		}
		rates := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
		points, err := sim.LoadSweepParallel(t.net, pairs, sim.PairPathsFunc(pr), rates, base)
		if err != nil {
			return nil, err
		}
		rep.Mode, rep.Pattern, rep.Sweep = "open-loop", "switch-shift", points
		return rep, nil
	}

	if q.Pattern == "random" {
		sum, err := sim.CompareToCrossbarParallel(t.net, t.router, t.hosts, q.Trials, q.Workers, q.SeedValue(), cfg)
		if err != nil {
			return nil, err
		}
		rep.Mode, rep.Pattern, rep.PacketsPerPair, rep.Trials = "random-trials", "random", q.Pkts, sum
		return rep, nil
	}

	var p *permutation.Permutation
	switch q.Pattern {
	case "shift":
		p = permutation.Shift(t.hosts, t.hosts/2)
	case "rotate":
		if t.ftree == nil {
			return nil, badRequest("pattern rotate needs topo ftree")
		}
		p = permutation.LocalRotate(q.N, q.R)
	case "transpose":
		d := 2
		for d*d < t.hosts {
			d++
		}
		if d*d != t.hosts {
			return nil, badRequest("transpose needs a square host count, have %d", t.hosts)
		}
		p = permutation.Transpose(d, d)
	default:
		return nil, badRequest("unknown pattern %q", q.Pattern)
	}
	cfg.Collector = sim.NewMetricsCollector()
	a, res, err := sim.RunPermutation(t.net, t.router, p, cfg)
	if err != nil {
		return nil, err
	}
	if res.Metrics != nil {
		// Detach from the collector before the crossbar reference reuses it.
		res.Metrics = res.Metrics.Clone()
	}
	cfg.Collector = nil
	chk := analysis.Check(a)
	ref, err := sim.CrossbarReference(t.hosts, p, cfg)
	if err != nil {
		return nil, err
	}
	rep.Mode, rep.Pattern, rep.PacketsPerPair = "closed-loop", q.Pattern, q.Pkts
	rep.Closed = &api.ClosedReport{
		Pairs:            p.Size(),
		ContendedLinks:   len(chk.Contended),
		MaxLinkLoad:      chk.MaxLoad,
		Makespan:         res.Makespan,
		CrossbarMakespan: ref.Makespan,
		Slowdown:         res.Slowdown(ref),
		MeanLatency:      res.MeanLatency(),
		Metrics:          res.Metrics,
	}
	return rep, nil
}
