package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/permutation"
	"repro/internal/store"
)

// The sweep job registry: POST /v1/verify/sweep runs an exhaustive sweep
// as a tracked background job — locally through the in-process parallel
// engine, or fanned across worker nodes when the server is a coordinator
// — and clients follow it via GET /v1/jobs/{id} (status snapshot) or
// GET /v1/jobs/{id}/events (SSE stream: `progress` events while counters
// move, one terminal `done` event carrying the final body). All counters
// are monotonically non-decreasing, so an SSE client never observes
// progress moving backwards.

// sweepOp is the metrics key for /v1/verify/sweep.
const sweepOp = "verify_sweep"

// sweepJob is one tracked sweep. Counter fields are atomics written by
// the runner (and, for coordinated sweeps, its dispatch goroutines);
// state/result transitions happen under mu exactly once, after which done
// is closed.
type sweepJob struct {
	id  string
	key string // canonical verify cache key; "" for no_cache jobs

	shardsTotal int
	resumed     int

	shardsDone atomic.Int64
	tested     atomic.Int64
	blocked    atomic.Int64

	mu     sync.Mutex
	state  string // running | done | failed
	errMsg string
	result []byte

	done chan struct{}
}

// status snapshots the job as the wire schema shared by the status
// endpoint and every SSE event.
func (sj *sweepJob) status() *api.SweepStatus {
	sj.mu.Lock()
	state, errMsg, result := sj.state, sj.errMsg, sj.result
	sj.mu.Unlock()
	st := &api.SweepStatus{
		JobID:       sj.id,
		State:       state,
		ShardsTotal: sj.shardsTotal,
		ShardsDone:  int(sj.shardsDone.Load()),
		Resumed:     sj.resumed,
		Tested:      sj.tested.Load(),
		Blocked:     sj.blocked.Load(),
		Error:       errMsg,
	}
	if state == "done" {
		st.Result = json.RawMessage(result)
	}
	return st
}

func (sj *sweepJob) finish(result []byte) {
	sj.mu.Lock()
	if sj.state == "running" {
		sj.state, sj.result = "done", result
		close(sj.done)
	}
	sj.mu.Unlock()
}

func (sj *sweepJob) fail(msg string) {
	sj.mu.Lock()
	if sj.state == "running" {
		sj.state, sj.errMsg = "failed", msg
		close(sj.done)
	}
	sj.mu.Unlock()
}

// sweepPlan is everything the handler resolves up front: the validated
// target, the canonical key, the shard partition, and any checkpointed
// shard results found in the store. When sym is true the sweep is
// symmetry-reduced: each shards entry is a [lo, hi) necklace-index range
// of the orbit enumeration instead of a destination prefix, identified
// as "sym.lo.hi" in checkpoints and reports.
type sweepPlan struct {
	t         *target
	key       string
	shards    [][]int
	resumed   map[string]*api.ShardReport // by shard id
	workers   []string
	sym       bool
	blockSize int
}

// shardID renders one plan entry's identifier in its scheme's canonical
// form (dotted prefix, or "sym.lo.hi" for symmetry-reduced ranges).
func (p *sweepPlan) shardID(shard []int) string {
	if p.sym {
		return api.SymShardID(shard[0], shard[1])
	}
	return api.ShardID(shard)
}

// newSweep registers a fresh job for plan and returns it. Callers hold no
// locks.
func (s *Server) newSweep(plan *sweepPlan, dedupKey string) *sweepJob {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	s.sweepSeq++
	sj := &sweepJob{
		id:          fmt.Sprintf("s%d", s.sweepSeq),
		key:         plan.key,
		shardsTotal: len(plan.shards),
		resumed:     len(plan.resumed),
		state:       "running",
		done:        make(chan struct{}),
	}
	sj.shardsDone.Store(int64(len(plan.resumed)))
	for _, rep := range plan.resumed {
		sj.tested.Add(int64(rep.Tested))
		sj.blocked.Add(int64(rep.Blocked))
	}
	s.sweeps[sj.id] = sj
	if dedupKey != "" {
		s.sweepByKey[dedupKey] = sj
	}
	return sj
}

func (s *Server) lookupSweep(id string) *sweepJob {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	return s.sweeps[id]
}

// sweepHandler answers POST /v1/verify/sweep: validate exactly like a
// forced exhaustive-parallel verify, serve finished results straight from
// the store, dedup against an identical running sweep, otherwise plan the
// shard partition (resuming from checkpoints) and launch the runner. The
// response is always 202-shaped metadata (SweepAccepted); the result
// arrives via the job endpoints.
func (s *Server) sweepHandler(w http.ResponseWriter, r *http.Request) {
	em := s.met.endpoints[sweepOp]
	em.requests.Add(1)
	var q api.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		em.errors.Add(1)
		writeError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	normalize(&q)
	// A sweep IS a forced exhaustive-parallel verify: same validation
	// (including the max_exhaustive opt-in), same canonical key, and a
	// final body byte-identical to /v1/verify in that mode.
	q.Mode = "exhaustive-parallel"
	if err := verifyJob.Validate(&q); err != nil {
		em.errors.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := q.CacheKey("verify")

	accepted := func(sj *sweepJob) {
		body, _ := json.Marshal(&api.SweepAccepted{
			JobID:     sj.id,
			Shards:    sj.shardsTotal,
			Workers:   len(s.coordWorkers()),
			Resumed:   sj.resumed,
			StatusURL: "/v1/jobs/" + sj.id,
			EventsURL: "/v1/jobs/" + sj.id + "/events",
		})
		writeJSON(w, http.StatusAccepted, "miss", body)
	}

	if !q.NoCache {
		// Finished earlier (by a sweep or a plain verify): a pre-completed
		// job hands the stored body to the job endpoints unchanged.
		if body, ok := s.store.Get(key); ok {
			em.cacheHits.Add(1)
			s.met.storeHits.Add(1)
			sj := s.newSweep(&sweepPlan{key: key}, "")
			sj.finish(body)
			accepted(sj)
			return
		}
		s.met.storeMisses.Add(1)
		// Identical sweep already running: follow it instead of redoing
		// the work.
		s.sweepMu.Lock()
		running := s.sweepByKey[key]
		s.sweepMu.Unlock()
		if running != nil {
			accepted(running)
			return
		}
	}

	plan, err := s.planSweep(&q, key)
	if err != nil {
		em.errors.Add(1)
		status, msg := errStatus(err)
		writeError(w, status, msg)
		return
	}
	dedupKey := key
	if q.NoCache {
		dedupKey = ""
	}
	sj := s.newSweep(plan, dedupKey)
	s.sweepWg.Add(1)
	go s.runSweep(sj, &q, plan)
	accepted(sj)
}

// coordWorkers returns the configured worker list (nil when this node is
// not a coordinator).
func (s *Server) coordWorkers() []string {
	if s.cfg.Coordinator == nil {
		return nil
	}
	return s.cfg.Coordinator.Workers
}

// planSweep builds the target, plans the shard partition, and loads any
// checkpointed shards. Local (non-coordinated) sweeps are one implicit
// shard with no checkpointing — the in-process parallel engine already
// shards internally.
func (s *Server) planSweep(q *api.Request, key string) (*sweepPlan, error) {
	t, err := buildTarget(q)
	if err != nil {
		return nil, err
	}
	plan := &sweepPlan{t: t, key: key, resumed: map[string]*api.ShardReport{}, workers: s.coordWorkers()}
	if len(plan.workers) == 0 {
		plan.shards = [][]int{nil} // one implicit shard: the whole space
		return plan, nil
	}
	cc := s.cfg.Coordinator
	slots := len(plan.workers) * cc.ShardConcurrency
	if q.SymReduce {
		// Plan orbit-range shards when the reduction provably applies to
		// this target; otherwise fall back to the prefix partition of the
		// full sweep (the merged result is byte-identical either way, so
		// both plans serve the same cache key). Applicability is
		// deterministic in (router, hosts, blockSize): identically
		// configured workers always reach the same answer, and one that
		// disagrees fails its shard with a fatal 400.
		bs := symBlockSize(q, t)
		if analysis.SymApplicable(t.router, t.hosts, bs).Applied {
			sym, err := permutation.NewBlockSymmetry(t.hosts, bs)
			if err != nil {
				return nil, err
			}
			plan.sym, plan.blockSize = true, bs
			for _, rg := range sym.Shards(slots) {
				plan.shards = append(plan.shards, []int{rg[0], rg[1]})
			}
		}
	}
	if !plan.sym {
		plan.shards = permutation.PrefixShards(t.hosts, slots)
	}
	if !q.NoCache {
		for _, sh := range plan.shards {
			id := plan.shardID(sh)
			body, ok := s.store.Get(store.CheckpointKey(key, id))
			if !ok {
				continue
			}
			var rep api.ShardReport
			if json.Unmarshal(body, &rep) != nil {
				continue // torn checkpoint: recompute the shard
			}
			plan.resumed[id] = &rep
			s.met.shardsResumed.Add(1)
		}
	}
	return plan, nil
}

// runSweep executes one tracked sweep to completion and publishes the
// terminal state. It runs on its own goroutine under the server's sweep
// context, so Close cancels and joins it before the store shuts down.
func (s *Server) runSweep(sj *sweepJob, q *api.Request, plan *sweepPlan) {
	defer s.sweepWg.Done()
	defer func() {
		s.sweepMu.Lock()
		if s.sweepByKey[sj.key] == sj {
			delete(s.sweepByKey, sj.key)
		}
		s.sweepMu.Unlock()
	}()
	ctx, cancel := context.WithTimeout(s.sweepCtx, s.timeoutFor(q.TimeoutMs))
	defer cancel()

	var res *analysis.SweepResult
	var err error
	if len(plan.workers) > 0 {
		res, err = s.runCoordinated(ctx, sj, q, plan)
	} else {
		progress := func(dt, db int) {
			sj.tested.Add(int64(dt))
			sj.blocked.Add(int64(db))
		}
		if q.SymReduce {
			// The sym engine matches the parallel engine byte-for-byte and
			// reports orbit-scaled progress deltas, so the SSE stream still
			// counts patterns, not representatives.
			var stats *analysis.SymStats
			res, stats, err = analysis.SweepExhaustiveSymParallelProgressCtx(
				ctx, plan.t.router, plan.t.hosts, symBlockSize(q, plan.t), q.Workers, progress)
			if err == nil && stats.Applied {
				s.met.symSweeps.Add(1)
			} else if err == nil {
				s.met.symFallbacks.Add(1)
			}
		} else {
			res, err = analysis.SweepExhaustiveParallelProgressCtx(ctx, plan.t.router, plan.t.hosts, q.Workers, progress)
		}
		if err == nil {
			sj.shardsDone.Store(1)
		}
	}
	if err == nil && res.RouteErr != nil {
		err = res.RouteErr
	}
	if err != nil {
		s.met.endpoints[sweepOp].errors.Add(1)
		_, msg := errStatus(err)
		sj.fail(msg)
		return
	}

	rep := &api.VerifyReport{
		Network: plan.t.net.Name, Hosts: plan.t.hosts, Routing: plan.t.router.Name(),
		Method: "exhaustive-parallel", Exact: true,
		Tested: res.Tested, Blocked: res.Blocked, MaxLinkLoad: res.MaxLinkLoad,
	}
	if res.Blocked > 0 {
		rep.Verdict = "blocking"
		rep.Witness = res.FirstBlocked.String()
	} else {
		rep.Verdict = "no-blocking-found"
	}
	body, merr := json.Marshal(rep)
	if merr != nil {
		sj.fail(merr.Error())
		return
	}
	if !q.NoCache {
		s.store.Put(sj.key, body)
		s.met.storePuts.Add(1)
	}
	sj.finish(body)
}

// jobStatusHandler answers GET /v1/jobs/{id} with the job's current
// status snapshot (including the final result once done).
func (s *Server) jobStatusHandler(w http.ResponseWriter, r *http.Request) {
	sj := s.lookupSweep(r.PathValue("id"))
	if sj == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	body, _ := json.Marshal(sj.status())
	writeJSON(w, http.StatusOK, "live", body)
}

// jobEventsHandler answers GET /v1/jobs/{id}/events with an SSE stream:
// an immediate `progress` snapshot, further `progress` events whenever
// the counters move (sampled at the configured interval), and a terminal
// `done` event carrying the final status — result or error — after which
// the stream closes. Events are monotonic because the underlying counters
// only ever increase.
func (s *Server) jobEventsHandler(w http.ResponseWriter, r *http.Request) {
	sj := s.lookupSweep(r.PathValue("id"))
	if sj == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, st *api.SweepStatus) {
		data, _ := json.Marshal(st)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}
	last := sj.status()
	emit("progress", last)
	ticker := time.NewTicker(s.cfg.ProgressInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sj.done:
			emit("done", sj.status())
			return
		case <-ticker.C:
			st := sj.status()
			if st.ShardsDone != last.ShardsDone || st.Tested != last.Tested ||
				st.Blocked != last.Blocked || st.State != last.State {
				emit("progress", st)
				last = st
			}
		}
	}
}
