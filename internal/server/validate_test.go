package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
)

// TestValidation pins the single enforcement point on the Job interface:
// out-of-range execution parameters that normalize used to pass straight
// into the engines (it only fills zero values, so negatives flowed
// through) are rejected with 400 before a worker sees them. The metrics
// prove rejection happens pre-queue: no job runs for any case.
func TestValidation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	base := func() api.Request { return api.Request{N: 2, M: 4, R: 3, Routing: "paper"} }
	cases := []struct {
		name    string
		path    string
		mutate  func(*api.Request)
		wantSub string
	}{
		{"negative trials", "/v1/verify", func(q *api.Request) { q.Trials = -1; q.Mode = "random" }, "trials"},
		{"negative flits", "/v1/sim", func(q *api.Request) { q.Flits = -4; q.Pattern = "shift" }, "flits"},
		{"negative pkts", "/v1/sim", func(q *api.Request) { q.Pkts = -8; q.Pattern = "shift" }, "pkts"},
		{"negative steps", "/v1/worstcase", func(q *api.Request) { q.Steps = -400 }, "steps"},
		{"negative restarts", "/v1/worstcase", func(q *api.Request) { q.Restarts = -8 }, "restarts"},
		{"negative workers", "/v1/verify", func(q *api.Request) { q.Workers = -2; q.Mode = "random" }, "workers"},
		{"negative spray_width", "/v1/verify", func(q *api.Request) { q.Routing = "spray"; q.SprayWidth = -3 }, "spray_width"},
		{"negative max_exhaustive", "/v1/verify", func(q *api.Request) { q.MaxExhaustive = -1 }, "max_exhaustive"},
		{"negative timeout_ms", "/v1/verify", func(q *api.Request) { q.TimeoutMs = -100 }, "timeout_ms"},
		{"negative n", "/v1/verify", func(q *api.Request) { q.N = -2 }, "n must be"},
		{"odd mnt ports", "/v1/verify", func(q *api.Request) {
			*q = api.Request{Topo: "mnt", Ports: 5, Levels: 2, Routing: "mnt-dest-mod"}
		}, "even"},
		// The levels hole: ports=2 makes the per-level multiplier 1, so the
		// host count never grows and requestHosts used to loop q.Levels
		// times — this request would spin the handler for years. The table
		// completing at all is the regression.
		{"mnt levels spin", "/v1/verify", func(q *api.Request) {
			*q = api.Request{Topo: "mnt", Ports: 2, Levels: 1 << 60, Routing: "mnt-dest-mod"}
		}, "levels"},
		{"mnt levels over cap", "/v1/verify", func(q *api.Request) {
			*q = api.Request{Topo: "mnt", Ports: 8, Levels: 100, Routing: "mnt-dest-mod"}
		}, "levels"},
		{"oversized topology", "/v1/verify", func(q *api.Request) {
			*q = api.Request{N: 2000, M: 4, R: 600, Routing: "dest-mod"}
		}, "hosts"},
		{"oversized links", "/v1/verify", func(q *api.Request) {
			// m defaults to n² = 1M top switches: r·(n+m) links explode
			// even though n·r hosts stay modest.
			*q = api.Request{N: 1024, R: 64, Routing: "dest-mod"}
		}, "links"},
		{"unknown verify mode", "/v1/verify", func(q *api.Request) { q.Mode = "heuristic" }, "mode"},
		// The forced-exhaustive hole: 80 hosts → 80! patterns used to start
		// enumerating with only the deadline as a backstop.
		{"forced exhaustive over cap", "/v1/verify", func(q *api.Request) {
			*q = api.Request{N: 8, M: 64, R: 10, Routing: "adaptive", Mode: "exhaustive"}
		}, "max_exhaustive"},
		{"forced exhaustive-parallel over cap", "/v1/verify", func(q *api.Request) {
			*q = api.Request{N: 8, M: 64, R: 10, Routing: "adaptive", Mode: "exhaustive-parallel"}
		}, "max_exhaustive"},
		{"first_blocked exhaustive over cap", "/v1/verify", func(q *api.Request) {
			*q = api.Request{N: 2, M: 4, R: 8, Routing: "paper", Mode: "exhaustive", FirstBlocked: true}
		}, "max_exhaustive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := base()
			tc.mutate(&q)
			resp, body := postJSON(t, ts.URL+tc.path, &q)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var er api.ErrorReport
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error body %s", body)
			}
			if !strings.Contains(er.Error, tc.wantSub) {
				t.Fatalf("error %q does not mention %q", er.Error, tc.wantSub)
			}
		})
	}

	// Every rejection happened before the queue: nothing ran.
	if m := getMetrics(t, ts.URL); m.JobsRun != 0 {
		t.Fatalf("validation let %d jobs run", m.JobsRun)
	}

	// Raising max_exhaustive in the request is the explicit opt-in that
	// keeps forced big sweeps possible.
	q := &api.Request{N: 2, M: 12, R: 3, Routing: "adaptive", Mode: "exhaustive", MaxExhaustive: 6}
	resp, body := postJSON(t, ts.URL+"/v1/verify", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("opt-in exhaustive: status %d: %s", resp.StatusCode, body)
	}
}

// TestSeedZeroRequestable is the end-to-end regression for the seed hole:
// normalize used to remap seed 0 → 1, making seed 0 unrequestable. Now an
// explicit {"seed": 0} runs with seed 0, caches under its own key, and
// stays distinct from the absent-seed default.
func TestSeedZeroRequestable(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw := []byte(`{"n":2,"m":4,"r":2,"routing":"paper","mode":"random","trials":3,"seed":0}`)
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed 0: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Nbserve-Cache"); got != "miss" {
		t.Fatalf("first seed-0 request served from %q", got)
	}

	// Identical seed-0 request: same canonical key, so a cache hit.
	resp, err = http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Nbserve-Cache"); got != "hit" {
		t.Fatalf("repeat seed-0 request served from %q", got)
	}

	// Same request without a seed resolves to the default (1) — a
	// different key, so a miss, proving 0 is no longer folded into 1.
	q := &api.Request{N: 2, M: 4, R: 2, Routing: "paper", Mode: "random", Trials: 3}
	resp, body := postJSON(t, ts.URL+"/v1/verify", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("absent seed: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Nbserve-Cache"); got != "miss" {
		t.Fatalf("absent-seed request shared the seed-0 cache entry (%q)", got)
	}
}
