package topology

import (
	"fmt"
	"sort"
	"strings"
)

// This file models degraded ftree(n+m, r) fabrics. A FailureSet names the
// failed elements; a FailureView binds one to a concrete FoldedClos and
// answers O(1) health queries for links, nodes and whole paths.
//
// Invariants (see DESIGN.md):
//
//   - Failures are whole-element: a failed switch takes every incident
//     link with it, and a failed trunk cable takes both directions of the
//     duplex pair. There is no half-duplex failure mode — the paper's
//     duplex-cable model (§III) makes a one-direction failure
//     indistinguishable from a cable failure at the routing layer.
//   - A failed bottom switch detaches its n hosts: patterns over a
//     degraded fabric may only use alive hosts (AliveHosts), and every
//     fault-aware router errors on a pair whose endpoint is detached.
//   - Normalize is idempotent and View normalizes first, so two
//     FailureSets naming the same physical damage (in any order, with
//     duplicates, or listing trunks already implied by a failed switch)
//     produce identical views and identical canonical Keys.
type FailureSet struct {
	// Tops lists failed top-level switch indices (0..m−1).
	Tops []int `json:"tops,omitempty"`
	// Bottoms lists failed bottom-level switch indices (0..r−1); the
	// switch's hosts are detached with it (whole-pod loss).
	Bottoms []int `json:"bottoms,omitempty"`
	// Trunks lists failed bottom↔top duplex cables.
	Trunks []Trunk `json:"trunks,omitempty"`
}

// Trunk identifies the duplex cable between bottom switch Bottom and top
// switch Top.
type Trunk struct {
	Bottom int `json:"bottom"`
	Top    int `json:"top"`
}

// Empty reports whether the set names no failures.
func (fs *FailureSet) Empty() bool {
	return len(fs.Tops) == 0 && len(fs.Bottoms) == 0 && len(fs.Trunks) == 0
}

// Count reports the number of failed elements after normalization
// (duplicates and implied trunks are not counted twice).
func (fs *FailureSet) Count() int {
	n := fs.normalized()
	return len(n.Tops) + len(n.Bottoms) + len(n.Trunks)
}

// Validate checks every named element against the fabric's ranges.
func (fs *FailureSet) Validate(f *FoldedClos) error {
	for _, t := range fs.Tops {
		if t < 0 || t >= f.M {
			return fmt.Errorf("topology: failed top switch %d out of range [0,%d)", t, f.M)
		}
	}
	for _, v := range fs.Bottoms {
		if v < 0 || v >= f.R {
			return fmt.Errorf("topology: failed bottom switch %d out of range [0,%d)", v, f.R)
		}
	}
	for _, tr := range fs.Trunks {
		if tr.Bottom < 0 || tr.Bottom >= f.R || tr.Top < 0 || tr.Top >= f.M {
			return fmt.Errorf("topology: failed trunk (%d,%d) out of range ftree r=%d m=%d", tr.Bottom, tr.Top, f.R, f.M)
		}
	}
	return nil
}

// normalized returns a sorted, deduplicated copy with trunks implied by a
// failed endpoint switch removed.
func (fs *FailureSet) normalized() FailureSet {
	var out FailureSet
	out.Tops = dedupInts(fs.Tops)
	out.Bottoms = dedupInts(fs.Bottoms)
	if len(fs.Trunks) > 0 {
		topDown := intSet(out.Tops)
		botDown := intSet(out.Bottoms)
		seen := make(map[Trunk]bool, len(fs.Trunks))
		for _, tr := range fs.Trunks {
			if topDown[tr.Top] || botDown[tr.Bottom] || seen[tr] {
				continue
			}
			seen[tr] = true
			out.Trunks = append(out.Trunks, tr)
		}
		sort.Slice(out.Trunks, func(i, j int) bool {
			if out.Trunks[i].Bottom != out.Trunks[j].Bottom {
				return out.Trunks[i].Bottom < out.Trunks[j].Bottom
			}
			return out.Trunks[i].Top < out.Trunks[j].Top
		})
	}
	return out
}

// Normalize sorts and deduplicates the set in place and drops trunks
// already implied by a failed endpoint switch.
func (fs *FailureSet) Normalize() { *fs = fs.normalized() }

// Key returns a canonical string for the normalized set, suitable for
// cache keys: equal damage ⇒ equal key.
func (fs *FailureSet) Key() string {
	n := fs.normalized()
	var b strings.Builder
	b.WriteByte('t')
	for i, t := range n.Tops {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", t)
	}
	b.WriteString(";b")
	for i, v := range n.Bottoms {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteString(";l")
	for i, tr := range n.Trunks {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d-%d", tr.Bottom, tr.Top)
	}
	return b.String()
}

func dedupInts(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	cp := append([]int(nil), xs...)
	sort.Ints(cp)
	out := cp[:1]
	for _, x := range cp[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func intSet(xs []int) map[int]bool {
	m := make(map[int]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

// FailureView is a FailureSet bound to a FoldedClos with O(1) health
// lookups. Trunk health subsumes switch health: TrunkFailed(v, t) is true
// when the cable itself failed OR either endpoint switch failed, so local
// link-health knowledge at a switch is enough to avoid failed switches —
// the locality assumption behind local fast rerouting.
type FailureView struct {
	F *FoldedClos

	set        FailureSet // normalized copy
	topDown    []bool     // len m
	bottomDown []bool     // len r
	trunkDown  []bool     // len r*m, index v*m+t
	topIntact  []bool     // len m: switch alive and ALL incident trunks healthy
	alive      int        // alive host count
}

// View normalizes and validates the set against f and builds the lookup
// tables.
func (fs FailureSet) View(f *FoldedClos) (*FailureView, error) {
	if err := fs.Validate(f); err != nil {
		return nil, err
	}
	n := fs.normalized()
	v := &FailureView{
		F:          f,
		set:        n,
		topDown:    make([]bool, f.M),
		bottomDown: make([]bool, f.R),
		trunkDown:  make([]bool, f.R*f.M),
		topIntact:  make([]bool, f.M),
	}
	for _, t := range n.Tops {
		v.topDown[t] = true
	}
	for _, b := range n.Bottoms {
		v.bottomDown[b] = true
	}
	for _, tr := range n.Trunks {
		v.trunkDown[tr.Bottom*f.M+tr.Top] = true
	}
	for b := 0; b < f.R; b++ {
		if v.bottomDown[b] {
			for t := 0; t < f.M; t++ {
				v.trunkDown[b*f.M+t] = true
			}
		}
	}
	for t := 0; t < f.M; t++ {
		if v.topDown[t] {
			for b := 0; b < f.R; b++ {
				v.trunkDown[b*f.M+t] = true
			}
		}
	}
	for t := 0; t < f.M; t++ {
		// Trunks to failed bottom switches don't count against a top:
		// no surviving pair can traverse them anyway.
		intact := !v.topDown[t]
		for b := 0; intact && b < f.R; b++ {
			if !v.bottomDown[b] && v.trunkDown[b*f.M+t] {
				intact = false
			}
		}
		v.topIntact[t] = intact
	}
	v.alive = 0
	for b := 0; b < f.R; b++ {
		if !v.bottomDown[b] {
			v.alive += f.N
		}
	}
	return v, nil
}

// Set returns the normalized failure set the view was built from.
func (v *FailureView) Set() FailureSet { return v.set }

// TopFailed reports whether top switch t failed.
func (v *FailureView) TopFailed(t int) bool { return v.topDown[t] }

// BottomFailed reports whether bottom switch b failed.
func (v *FailureView) BottomFailed(b int) bool { return v.bottomDown[b] }

// TrunkFailed reports whether the duplex trunk between bottom b and top t
// is unusable (cable failed or either endpoint switch failed).
func (v *FailureView) TrunkFailed(b, t int) bool { return v.trunkDown[b*v.F.M+t] }

// TopIntact reports whether top switch t is alive with every trunk to a
// surviving bottom switch healthy — the condition for a global scheme to
// assign the switch to a traffic class without inspecting per-pair links.
func (v *FailureView) TopIntact(t int) bool { return v.topIntact[t] }

// IntactTops returns the indices of fully intact top switches, ascending.
func (v *FailureView) IntactTops() []int {
	out := make([]int, 0, v.F.M)
	for t := 0; t < v.F.M; t++ {
		if v.topIntact[t] {
			out = append(out, t)
		}
	}
	return out
}

// HostAlive reports whether host h (paper leaf numbering) is attached.
func (v *FailureView) HostAlive(h int) bool {
	return h >= 0 && h < v.F.Ports() && !v.bottomDown[h/v.F.N]
}

// AliveHosts returns all attached host indices, ascending.
func (v *FailureView) AliveHosts() []int {
	out := make([]int, 0, v.alive)
	for b := 0; b < v.F.R; b++ {
		if v.bottomDown[b] {
			continue
		}
		for k := 0; k < v.F.N; k++ {
			out = append(out, b*v.F.N+k)
		}
	}
	return out
}

// NodeFailed reports whether node id is failed (hosts fail with their
// bottom switch).
func (v *FailureView) NodeFailed(id NodeID) bool {
	f := v.F
	switch {
	case id < f.bottomBase:
		return v.bottomDown[int(id)/f.N]
	case id < f.topBase:
		return v.bottomDown[int(id-f.bottomBase)]
	default:
		return v.topDown[int(id-f.topBase)]
	}
}

// LinkFailed reports whether directed link id is unusable.
func (v *FailureView) LinkFailed(id LinkID) bool {
	f := v.F
	if id < f.trunkBase {
		// Host link: fails with the bottom switch.
		return v.bottomDown[int(id-f.hostLinkBase)/2/f.N]
	}
	return v.trunkDown[int(id-f.trunkBase)/2]
}

// PathHealthy reports whether p traverses no failed link or node.
func (v *FailureView) PathHealthy(p Path) bool {
	for _, l := range p.Links {
		if v.LinkFailed(l) {
			return false
		}
	}
	for _, n := range p.Nodes {
		if v.NodeFailed(n) {
			return false
		}
	}
	return true
}
