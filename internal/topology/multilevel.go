package topology

import "fmt"

// MultiFtree is the paper's recursive nonblocking construction generalized
// to an arbitrary number of levels (Discussion §IV.A): the canonical
// L-level network supports n^(L+1) + n^L hosts using only (n+n²)-port
// switches. Level 2 is ftree(n+n², n+n²); level L replaces each of the n²
// top-level "switches" of ftree(n+n², r_L) — which must have radix
// r_L = ports(L−1) = n^L + n^(L−1) — with a complete (L−1)-level network. By induction every level is nonblocking under the recursive
// Theorem-3 routing (each virtual switch sees at most a partial permutation
// of its ports).
//
// The explicit ThreeLevelFtree builder is the L = 3 special case with a
// flat address layout; MultiFtree trades a little lookup indirection for
// arbitrary depth.
type MultiFtree struct {
	// N is the hosts-per-bottom-switch parameter.
	N int
	// Levels is L ≥ 2.
	Levels int

	// Net is the underlying directed graph.
	Net *Network

	root *fabric
}

// fabric is one recursive unit: a nonblocking sub-network with `ports`
// external ports. A level-1 fabric is a single physical switch; a level-l
// fabric has ports/n bottom switches and n² level-(l−1) sub-fabrics as its
// virtual top switches.
type fabric struct {
	level int
	ports int
	// sw is the single switch of a level-1 fabric.
	sw NodeID
	// bottoms are the bottom switches of a level-≥2 fabric.
	bottoms []NodeID
	// subs are the n² virtual top sub-fabrics.
	subs []*fabric
	n    int
}

// NewMultiFtree builds the canonical L-level network: levels ≥ 2, n ≥ 1;
// it supports n^(L+1) + n^L hosts.
func NewMultiFtree(n, levels int) *MultiFtree {
	if n < 1 || levels < 2 {
		panic(fmt.Sprintf("topology: invalid MultiFtree(n=%d, levels=%d)", n, levels))
	}
	ports := pow(n, levels+1) + pow(n, levels)
	m := &MultiFtree{
		N:      n,
		Levels: levels,
		Net:    NewNetwork(fmt.Sprintf("ftree%d(n=%d)", levels, n)),
	}
	for h := 0; h < ports; h++ {
		m.Net.AddNode(Host, 0, h, fmt.Sprintf("h%d", h))
	}
	m.root = m.buildFabric(levels, ports, "f")
	// Attach hosts to the outermost fabric's ports.
	for h := 0; h < ports; h++ {
		m.Net.AddDuplex(NodeID(h), m.root.attach(h))
	}
	return m
}

// buildFabric recursively constructs a level-`level` fabric with `ports`
// external ports and wires bottoms to sub-fabric ports.
func (m *MultiFtree) buildFabric(level, ports int, label string) *fabric {
	f := &fabric{level: level, ports: ports, n: m.N}
	if level == 1 {
		// A physical switch of radix `ports`. Its graph level is the
		// construction depth so DOT layouts stack correctly.
		f.sw = m.Net.AddNode(Switch, m.Levels, 0, label+".sw")
		return f
	}
	n := m.N
	if ports%n != 0 {
		panic(fmt.Sprintf("topology: fabric ports %d not divisible by n=%d", ports, n))
	}
	r := ports / n
	f.bottoms = make([]NodeID, r)
	// Graph level: hosts 0; outermost bottoms 1; each recursion adds one.
	graphLevel := m.Levels - level + 1
	for v := 0; v < r; v++ {
		f.bottoms[v] = m.Net.AddNode(Switch, graphLevel, v, fmt.Sprintf("%s.b%d", label, v))
	}
	f.subs = make([]*fabric, n*n)
	for s := range f.subs {
		f.subs[s] = m.buildFabric(level-1, r, fmt.Sprintf("%s.t%d", label, s))
		for v := 0; v < r; v++ {
			m.Net.AddDuplex(f.bottoms[v], f.subs[s].attach(v))
		}
	}
	return f
}

// attach returns the physical switch that external port p of the fabric
// connects to.
func (f *fabric) attach(p int) NodeID {
	if p < 0 || p >= f.ports {
		panic(fmt.Sprintf("topology: fabric port %d out of range [0,%d)", p, f.ports))
	}
	if f.level == 1 {
		return f.sw
	}
	return f.bottoms[p/f.n]
}

// route returns the internal switch sequence carrying traffic from port a
// to port b of the fabric under the recursive Theorem-3 rule: the virtual
// top (i, j) = (a mod n)·n + (b mod n) carries the pair, recursively.
func (f *fabric) route(a, b int) []NodeID {
	if a == b {
		panic("topology: fabric route requires distinct ports")
	}
	if f.level == 1 {
		return []NodeID{f.sw}
	}
	n := f.n
	va, vb := a/n, b/n
	if va == vb {
		return []NodeID{f.bottoms[va]}
	}
	sub := (a%n)*n + b%n
	inner := f.subs[sub].route(va, vb)
	path := make([]NodeID, 0, len(inner)+2)
	path = append(path, f.bottoms[va])
	path = append(path, inner...)
	path = append(path, f.bottoms[vb])
	return path
}

// Ports reports the host count n^(L+1) + n^L.
func (m *MultiFtree) Ports() int { return m.root.ports }

// Switches reports the physical switch count, satisfying
// S(1) = 1, S(l) = ports(l)/n + n²·S(l−1).
func (m *MultiFtree) Switches() int { return m.Net.NumSwitches() }

// SwitchRadix reports the uniform physical switch radix, n+n².
func (m *MultiFtree) SwitchRadix() int { return m.N + m.N*m.N }

// HostID returns the node ID of host h (hosts are the low IDs).
func (m *MultiFtree) HostID(h int) NodeID {
	if h < 0 || h >= m.Ports() {
		panic(fmt.Sprintf("topology: host %d out of range in %s", h, m.Net.Name))
	}
	return NodeID(h)
}

// Route returns the full path from host src to host dst under the
// recursive Theorem-3 routing.
func (m *MultiFtree) Route(src, dst NodeID) Path {
	if src == dst {
		panic("topology: Route requires distinct src and dst")
	}
	inner := m.root.route(int(src), int(dst))
	nodes := make([]NodeID, 0, len(inner)+2)
	nodes = append(nodes, src)
	nodes = append(nodes, inner...)
	nodes = append(nodes, dst)
	p, err := m.Net.PathBetween(nodes...)
	if err != nil {
		panic(err) // construction and routing disagree: a bug, not input error
	}
	return p
}

// Validate checks the construction: host count, uniform switch radix and
// strong connectivity.
func (m *MultiFtree) Validate() error {
	g := m.Net
	want := pow(m.N, m.Levels+1) + pow(m.N, m.Levels)
	if g.NumHosts() != want {
		return fmt.Errorf("%s: have %d hosts, want %d", g.Name, g.NumHosts(), want)
	}
	radix := m.SwitchRadix()
	for id := NodeID(0); int(id) < g.NumNodes(); id++ {
		nd := g.Node(id)
		if nd.Kind != Switch {
			continue
		}
		if r := g.Radix(id); r != radix {
			return fmt.Errorf("%s: switch %q radix %d, want %d", g.Name, nd.Label, r, radix)
		}
	}
	if !g.Connected() {
		return fmt.Errorf("%s: not strongly connected", g.Name)
	}
	return nil
}

// ExpectedSwitches evaluates the recursion S(1) = 1,
// S(l) = ports(l)/n + n²·S(l−1) in closed iterative form, for tests and
// the cost model.
func ExpectedSwitches(n, levels int) int {
	s := 1
	for l := 2; l <= levels; l++ {
		ports := pow(n, l+1) + pow(n, l)
		s = ports/n + n*n*s
	}
	return s
}
