package topology

import "fmt"

// KAryNTree is the k-ary n-tree of Petrini and Vanneschi [14]: k^n hosts,
// n levels of k^(n−1) switches each. Hosts are addressed by n base-k digits
// u_{n−1}…u_0; switches at every level by n−1 base-k digits w_{n−2}…w_0. A
// level-l switch connects upward to the k level-(l+1) switches agreeing with
// it on every digit except w_l, so an up-path to level l freely chooses
// digits w_0…w_{l−1}. Non-top switches have radix 2k; top switches use only
// their k down ports.
type KAryNTree struct {
	// K is the arity (down/up ports per non-top switch).
	K int
	// Levels is n.
	Levels int

	// Net is the underlying directed graph.
	Net *Network

	lvlBase []NodeID
}

// NewKAryNTree builds the k-ary n-tree, k ≥ 2, n ≥ 1.
func NewKAryNTree(k, n int) *KAryNTree {
	if k < 2 || n < 1 {
		panic(fmt.Sprintf("topology: invalid %d-ary %d-tree", k, n))
	}
	t := &KAryNTree{K: k, Levels: n, Net: NewNetwork(fmt.Sprintf("%d-ary %d-tree", k, n))}
	hosts := pow(k, n)
	for i := 0; i < hosts; i++ {
		t.Net.AddNode(Host, 0, i, fmt.Sprintf("h%s", digitsLabel(i, k, n)))
	}
	perLevel := pow(k, n-1)
	t.lvlBase = make([]NodeID, n)
	for l := 0; l < n; l++ {
		t.lvlBase[l] = NodeID(t.Net.NumNodes())
		for w := 0; w < perLevel; w++ {
			t.Net.AddNode(Switch, l+1, w, fmt.Sprintf("L%d.%s", l, digitsLabel(w, k, n-1)))
		}
	}
	// Hosts ↔ leaf switches: host u attaches to the switch whose digits
	// are u_{n−1}…u_1.
	for i := 0; i < hosts; i++ {
		t.Net.AddDuplex(NodeID(i), t.SwitchID(0, i/k))
	}
	// Level l ↔ l+1: vary digit w_l.
	for l := 0; l+1 < n; l++ {
		stride := pow(k, l)
		for w := 0; w < perLevel; w++ {
			lo := t.SwitchID(l, w)
			base := w - (w/stride%k)*stride
			for d := 0; d < k; d++ {
				t.Net.AddDuplex(lo, t.SwitchID(l+1, base+d*stride))
			}
		}
	}
	return t
}

// Hosts reports the host count k^n.
func (t *KAryNTree) Hosts() int { return pow(t.K, t.Levels) }

// Switches reports the switch count n·k^(n−1).
func (t *KAryNTree) Switches() int { return t.Levels * pow(t.K, t.Levels-1) }

// HostID returns the node ID of the host with base-k address u.
func (t *KAryNTree) HostID(u int) NodeID {
	if u < 0 || u >= t.Hosts() {
		panic(fmt.Sprintf("topology: host %d out of range in %s", u, t.Net.Name))
	}
	return NodeID(u)
}

// SwitchID returns the node ID of the level-l switch with digit index w.
func (t *KAryNTree) SwitchID(l, w int) NodeID {
	if l < 0 || l >= t.Levels || w < 0 || w >= pow(t.K, t.Levels-1) {
		panic(fmt.Sprintf("topology: switch (l=%d,w=%d) out of range in %s", l, w, t.Net.Name))
	}
	return t.lvlBase[l] + NodeID(w)
}

// NumUpHops reports the number of up hops (beyond the leaf switch) a
// src→dst path needs: the highest digit position where the host addresses
// differ, 0 when they share a leaf switch.
func (t *KAryNTree) NumUpHops(src, dst NodeID) int {
	s := toDigits(int(src), t.K, t.Levels)
	d := toDigits(int(dst), t.K, t.Levels)
	for j := t.Levels - 1; j >= 1; j-- {
		if s[j] != d[j] {
			return j
		}
	}
	return 0
}

// UpDownPath returns the up*/down* path from src to dst; upChoices supplies
// the freed digit at each up hop (length ≥ NumUpHops(src, dst)).
func (t *KAryNTree) UpDownPath(src, dst NodeID, upChoices []int) (Path, error) {
	if src == dst {
		return Path{}, fmt.Errorf("topology: src == dst")
	}
	k, n := t.K, t.Levels
	sdig := toDigits(int(src), k, n)
	ddig := toDigits(int(dst), k, n)
	apex := t.NumUpHops(src, dst)
	if len(upChoices) < apex {
		return Path{}, fmt.Errorf("topology: need %d up choices, have %d", apex, len(upChoices))
	}
	w := make([]int, n-1) // w[j] is switch digit w_j; leaf switch has w_j = u_{j+1}
	for j := 0; j < n-1; j++ {
		w[j] = sdig[j+1]
	}
	idx := func() int { return fromDigits(w, k) }
	nodes := []NodeID{src, t.SwitchID(0, idx())}
	for l := 0; l < apex; l++ {
		c := upChoices[l]
		if c < 0 || c >= k {
			return Path{}, fmt.Errorf("topology: up choice %d out of [0,%d)", c, k)
		}
		w[l] = c
		nodes = append(nodes, t.SwitchID(l+1, idx()))
	}
	for l := apex; l > 0; l-- {
		w[l-1] = ddig[l]
		nodes = append(nodes, t.SwitchID(l-1, idx()))
	}
	nodes = append(nodes, dst)
	return t.Net.PathBetween(nodes...)
}

// Validate performs structural self-checks.
func (t *KAryNTree) Validate() error {
	g := t.Net
	if g.NumHosts() != t.Hosts() {
		return fmt.Errorf("%s: have %d hosts, want %d", g.Name, g.NumHosts(), t.Hosts())
	}
	if g.NumSwitches() != t.Switches() {
		return fmt.Errorf("%s: have %d switches, want %d", g.Name, g.NumSwitches(), t.Switches())
	}
	for l := 0; l < t.Levels; l++ {
		want := 2 * t.K
		if l == t.Levels-1 {
			want = t.K // top level: down ports only
		}
		for w := 0; w < pow(t.K, t.Levels-1); w++ {
			if r := g.Radix(t.SwitchID(l, w)); r != want {
				return fmt.Errorf("%s: switch (l=%d,w=%d) radix %d, want %d", g.Name, l, w, r, want)
			}
		}
	}
	if !g.Connected() {
		return fmt.Errorf("%s: not strongly connected", g.Name)
	}
	return nil
}
