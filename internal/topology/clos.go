package topology

import "fmt"

// Clos is the classic three-stage unidirectional Clos network Clos(n, m, r)
// of Fig. 1(a): r input switches of size n×m, m middle switches of size r×r,
// and r output switches of size m×n. Traffic enters at one of r·n input
// terminals, crosses exactly one middle switch, and leaves at one of r·n
// output terminals. The folded-Clos ftree(n+m, r) is the one-sided version
// obtained by merging input switch i with output switch i.
type Clos struct {
	// N is the number of terminals per input (and output) switch.
	N int
	// M is the number of middle-stage switches.
	M int
	// R is the number of input switches (= number of output switches).
	R int

	// Net is the underlying directed graph. All links are unidirectional,
	// matching the telephone-switching model the classic nonblocking
	// conditions (strict: m ≥ 2n−1, rearrangeable: m ≥ n) were proven in.
	Net *Network

	inTermBase  NodeID
	outTermBase NodeID
	inSwBase    NodeID
	midSwBase   NodeID
	outSwBase   NodeID

	ingressBase LinkID // input terminal → input switch
	upBase      LinkID // input switch → middle switch
	downBase    LinkID // middle switch → output switch
	egressBase  LinkID // output switch → output terminal
}

// NewClos builds Clos(n, m, r).
func NewClos(n, m, r int) *Clos {
	if n <= 0 || m <= 0 || r <= 0 {
		panic(fmt.Sprintf("topology: invalid Clos(%d,%d,%d): parameters must be positive", n, m, r))
	}
	c := &Clos{N: n, M: m, R: r, Net: NewNetwork(fmt.Sprintf("Clos(%d,%d,%d)", n, m, r))}
	c.inTermBase = 0
	for i := 0; i < r*n; i++ {
		c.Net.AddNode(Host, 0, i, fmt.Sprintf("in%d", i))
	}
	c.outTermBase = NodeID(r * n)
	for i := 0; i < r*n; i++ {
		c.Net.AddNode(Host, 0, r*n+i, fmt.Sprintf("out%d", i))
	}
	c.inSwBase = NodeID(2 * r * n)
	for i := 0; i < r; i++ {
		c.Net.AddNode(Switch, 1, i, fmt.Sprintf("I%d", i))
	}
	c.midSwBase = c.inSwBase + NodeID(r)
	for j := 0; j < m; j++ {
		c.Net.AddNode(Switch, 2, j, fmt.Sprintf("M%d", j))
	}
	c.outSwBase = c.midSwBase + NodeID(m)
	for i := 0; i < r; i++ {
		c.Net.AddNode(Switch, 3, i, fmt.Sprintf("O%d", i))
	}

	c.ingressBase = 0
	for i := 0; i < r; i++ {
		for k := 0; k < n; k++ {
			c.Net.AddLink(c.InTerminal(i*n+k), c.InputSwitch(i))
		}
	}
	c.upBase = LinkID(r * n)
	for i := 0; i < r; i++ {
		for j := 0; j < m; j++ {
			c.Net.AddLink(c.InputSwitch(i), c.MiddleSwitch(j))
		}
	}
	c.downBase = c.upBase + LinkID(r*m)
	for j := 0; j < m; j++ {
		for i := 0; i < r; i++ {
			c.Net.AddLink(c.MiddleSwitch(j), c.OutputSwitch(i))
		}
	}
	c.egressBase = c.downBase + LinkID(r*m)
	for i := 0; i < r; i++ {
		for k := 0; k < n; k++ {
			c.Net.AddLink(c.OutputSwitch(i), c.OutTerminal(i*n+k))
		}
	}
	return c
}

// Ports reports the number of input terminals (= output terminals), r·n.
func (c *Clos) Ports() int { return c.R * c.N }

// InTerminal returns the node ID of input terminal i, 0 ≤ i < r·n.
func (c *Clos) InTerminal(i int) NodeID {
	if i < 0 || i >= c.R*c.N {
		panic(fmt.Sprintf("topology: input terminal %d out of range in %s", i, c.Net.Name))
	}
	return c.inTermBase + NodeID(i)
}

// OutTerminal returns the node ID of output terminal i, 0 ≤ i < r·n.
func (c *Clos) OutTerminal(i int) NodeID {
	if i < 0 || i >= c.R*c.N {
		panic(fmt.Sprintf("topology: output terminal %d out of range in %s", i, c.Net.Name))
	}
	return c.outTermBase + NodeID(i)
}

// InputSwitch returns the node ID of input-stage switch i, 0 ≤ i < r.
func (c *Clos) InputSwitch(i int) NodeID {
	if i < 0 || i >= c.R {
		panic(fmt.Sprintf("topology: input switch %d out of range in %s", i, c.Net.Name))
	}
	return c.inSwBase + NodeID(i)
}

// MiddleSwitch returns the node ID of middle-stage switch j, 0 ≤ j < m.
func (c *Clos) MiddleSwitch(j int) NodeID {
	if j < 0 || j >= c.M {
		panic(fmt.Sprintf("topology: middle switch %d out of range in %s", j, c.Net.Name))
	}
	return c.midSwBase + NodeID(j)
}

// OutputSwitch returns the node ID of output-stage switch i, 0 ≤ i < r.
func (c *Clos) OutputSwitch(i int) NodeID {
	if i < 0 || i >= c.R {
		panic(fmt.Sprintf("topology: output switch %d out of range in %s", i, c.Net.Name))
	}
	return c.outSwBase + NodeID(i)
}

// IngressLink returns the link input terminal i → its input switch.
func (c *Clos) IngressLink(i int) LinkID {
	c.InTerminal(i)
	return c.ingressBase + LinkID(i)
}

// UpLink returns the link input switch i → middle switch j.
func (c *Clos) UpLink(i, j int) LinkID {
	c.InputSwitch(i)
	c.MiddleSwitch(j)
	return c.upBase + LinkID(i*c.M+j)
}

// DownLink returns the link middle switch j → output switch i.
func (c *Clos) DownLink(j, i int) LinkID {
	c.MiddleSwitch(j)
	c.OutputSwitch(i)
	return c.downBase + LinkID(j*c.R+i)
}

// EgressLink returns the link output switch → output terminal i.
func (c *Clos) EgressLink(i int) LinkID {
	c.OutTerminal(i)
	return c.egressBase + LinkID(i)
}

// RouteVia returns the unique path from input terminal s to output terminal
// d through middle switch j. Unlike the folded network, every connection
// crosses the middle stage, including ones whose endpoints share a switch
// index.
func (c *Clos) RouteVia(s, d, j int) Path {
	si := s / c.N
	di := d / c.N
	return Path{
		Nodes: []NodeID{c.InTerminal(s), c.InputSwitch(si), c.MiddleSwitch(j), c.OutputSwitch(di), c.OutTerminal(d)},
		Links: []LinkID{c.IngressLink(s), c.UpLink(si, j), c.DownLink(j, di), c.EgressLink(d)},
	}
}

// Validate performs structural self-checks and returns the first
// inconsistency found, or nil.
func (c *Clos) Validate() error {
	g := c.Net
	wantLinks := 2*c.R*c.N + 2*c.R*c.M
	if g.NumLinks() != wantLinks {
		return fmt.Errorf("%s: have %d links, want %d", g.Name, g.NumLinks(), wantLinks)
	}
	for i := 0; i < c.R; i++ {
		if d := g.OutDegree(c.InputSwitch(i)); d != c.M {
			return fmt.Errorf("%s: input switch %d out-degree %d, want m=%d", g.Name, i, d, c.M)
		}
		if d := g.InDegree(c.InputSwitch(i)); d != c.N {
			return fmt.Errorf("%s: input switch %d in-degree %d, want n=%d", g.Name, i, d, c.N)
		}
		if d := g.OutDegree(c.OutputSwitch(i)); d != c.N {
			return fmt.Errorf("%s: output switch %d out-degree %d, want n=%d", g.Name, i, d, c.N)
		}
		if d := g.InDegree(c.OutputSwitch(i)); d != c.M {
			return fmt.Errorf("%s: output switch %d in-degree %d, want m=%d", g.Name, i, d, c.M)
		}
	}
	for j := 0; j < c.M; j++ {
		if d := g.OutDegree(c.MiddleSwitch(j)); d != c.R {
			return fmt.Errorf("%s: middle switch %d out-degree %d, want r=%d", g.Name, j, d, c.R)
		}
		if d := g.InDegree(c.MiddleSwitch(j)); d != c.R {
			return fmt.Errorf("%s: middle switch %d in-degree %d, want r=%d", g.Name, j, d, c.R)
		}
	}
	for i := 0; i < c.R; i++ {
		for j := 0; j < c.M; j++ {
			if got := g.FindLink(c.InputSwitch(i), c.MiddleSwitch(j)); got != c.UpLink(i, j) {
				return fmt.Errorf("%s: uplink (%d,%d) mismatch", g.Name, i, j)
			}
			if got := g.FindLink(c.MiddleSwitch(j), c.OutputSwitch(i)); got != c.DownLink(j, i) {
				return fmt.Errorf("%s: downlink (%d,%d) mismatch", g.Name, j, i)
			}
		}
	}
	return nil
}

// Crossbar is a single N×N switch connecting N hosts: the reference
// interconnect the paper compares against ("such an interconnect behaves
// like a crossbar switch"). Any permutation is contention-free by
// construction since each host has a dedicated duplex link to the switch.
type Crossbar struct {
	// N is the number of hosts.
	N int
	// Net is the underlying directed graph.
	Net *Network

	sw NodeID
}

// NewCrossbar builds an N-port crossbar.
func NewCrossbar(n int) *Crossbar {
	if n <= 0 {
		panic(fmt.Sprintf("topology: invalid crossbar size %d", n))
	}
	x := &Crossbar{N: n, Net: NewNetwork(fmt.Sprintf("crossbar(%d)", n))}
	for i := 0; i < n; i++ {
		x.Net.AddNode(Host, 0, i, fmt.Sprintf("h%d", i))
	}
	x.sw = x.Net.AddNode(Switch, 1, 0, "xbar")
	for i := 0; i < n; i++ {
		x.Net.AddDuplex(x.HostID(i), x.sw)
	}
	return x
}

// HostID returns the node ID of host i.
func (x *Crossbar) HostID(i int) NodeID {
	if i < 0 || i >= x.N {
		panic(fmt.Sprintf("topology: crossbar host %d out of range", i))
	}
	return NodeID(i)
}

// SwitchID returns the node ID of the single crossbar switch.
func (x *Crossbar) SwitchID() NodeID { return x.sw }

// Route returns the two-hop path from host s to host d through the switch.
func (x *Crossbar) Route(s, d int) Path {
	up := LinkID(2 * s)
	down := LinkID(2*d + 1)
	return Path{
		Nodes: []NodeID{x.HostID(s), x.sw, x.HostID(d)},
		Links: []LinkID{up, down},
	}
}
