package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestFoldedClosStructure(t *testing.T) {
	cases := []struct{ n, m, r int }{
		{1, 1, 1}, {1, 1, 2}, {2, 4, 5}, {2, 4, 8}, {3, 9, 7}, {4, 16, 20},
	}
	for _, c := range cases {
		f := NewFoldedClos(c.n, c.m, c.r)
		if err := f.Validate(); err != nil {
			t.Errorf("ftree(%d+%d,%d): %v", c.n, c.m, c.r, err)
		}
		if f.Ports() != c.r*c.n {
			t.Errorf("ftree(%d+%d,%d): ports = %d", c.n, c.m, c.r, f.Ports())
		}
		if f.Switches() != c.r+c.m {
			t.Errorf("ftree(%d+%d,%d): switches = %d", c.n, c.m, c.r, f.Switches())
		}
	}
}

func TestFoldedClosNumbering(t *testing.T) {
	f := NewFoldedClos(3, 2, 4)
	// Host (v,k) must be leaf number v*n+k, matching the paper's scheme.
	for v := 0; v < 4; v++ {
		for k := 0; k < 3; k++ {
			id := f.HostID(v, k)
			if int(id) != v*3+k {
				t.Fatalf("host (%d,%d) id = %d, want %d", v, k, id, v*3+k)
			}
			if f.HostSwitch(id) != v || f.HostLocal(id) != k {
				t.Fatalf("host (%d,%d): decode mismatch", v, k)
			}
			if !f.IsHost(id) {
				t.Fatalf("host (%d,%d) not recognized", v, k)
			}
		}
	}
	if f.IsHost(f.Bottom(0)) {
		t.Fatal("bottom switch misclassified as host")
	}
	for v := 0; v < 4; v++ {
		if f.BottomIndex(f.Bottom(v)) != v {
			t.Fatalf("bottom %d: index roundtrip failed", v)
		}
	}
	for m := 0; m < 2; m++ {
		if f.TopIndex(f.Top(m)) != m {
			t.Fatalf("top %d: index roundtrip failed", m)
		}
	}
}

func TestFoldedClosRouteVia(t *testing.T) {
	f := NewFoldedClos(2, 3, 4)
	src := f.HostID(0, 1)
	dst := f.HostID(2, 0)
	p := f.RouteVia(src, dst, 1)
	if !p.Valid(f.Net) {
		t.Fatal("RouteVia produced invalid path")
	}
	want := []NodeID{src, f.Bottom(0), f.Top(1), f.Bottom(2), dst}
	for i, n := range want {
		if p.Nodes[i] != n {
			t.Fatalf("node %d = %d, want %d", i, p.Nodes[i], n)
		}
	}
	if p.Links[1] != f.UpLink(0, 1) || p.Links[2] != f.DownLink(1, 2) {
		t.Fatal("trunk link IDs mismatch")
	}
	// Same-switch SD pair bypasses the top level.
	p = f.RouteVia(f.HostID(1, 0), f.HostID(1, 1), 2)
	if p.Len() != 2 || p.Nodes[1] != f.Bottom(1) {
		t.Fatalf("intra-switch path wrong: %+v", p)
	}
	if !p.Valid(f.Net) {
		t.Fatal("intra-switch path invalid")
	}
}

func TestFoldedClosRouteViaPanics(t *testing.T) {
	f := NewFoldedClos(2, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for src == dst")
		}
	}()
	f.RouteVia(f.HostID(0, 0), f.HostID(0, 0), 0)
}

func TestFoldedClosSubtree(t *testing.T) {
	f := NewFoldedClos(3, 9, 7)
	s := f.Subtree()
	if s.N != 3 || s.M != 1 || s.R != 7 {
		t.Fatalf("subtree parameters: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fig. 2: the subgraph is a regular tree with the root having r
	// children and each bottom switch n leaves.
	if d := s.Net.Radix(s.Top(0)); d != 7 {
		t.Fatalf("root radix = %d, want 7", d)
	}
}

func TestFoldedClosInvalidParamsPanic(t *testing.T) {
	for _, c := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFoldedClos(%v) should panic", c)
				}
			}()
			NewFoldedClos(c[0], c[1], c[2])
		}()
	}
}

func TestFoldedClosLinkAccessorsPanicOutOfRange(t *testing.T) {
	f := NewFoldedClos(2, 2, 2)
	for name, fn := range map[string]func(){
		"HostID":   func() { f.HostID(2, 0) },
		"Bottom":   func() { f.Bottom(-1) },
		"Top":      func() { f.Top(2) },
		"UpLink":   func() { f.UpLink(0, 5) },
		"HostUp":   func() { f.HostUpLink(0, 2) },
		"HostSw":   func() { f.HostSwitch(f.Bottom(0)) },
		"TopIndex": func() { f.TopIndex(f.Bottom(0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestClosStructure(t *testing.T) {
	for _, c := range []struct{ n, m, r int }{{1, 1, 1}, {2, 3, 4}, {3, 5, 3}, {4, 7, 6}} {
		cl := NewClos(c.n, c.m, c.r)
		if err := cl.Validate(); err != nil {
			t.Errorf("Clos(%d,%d,%d): %v", c.n, c.m, c.r, err)
		}
		if cl.Ports() != c.r*c.n {
			t.Errorf("Clos(%d,%d,%d): ports = %d", c.n, c.m, c.r, cl.Ports())
		}
	}
}

func TestClosRouteVia(t *testing.T) {
	c := NewClos(2, 3, 4)
	p := c.RouteVia(1, 6, 2)
	if !p.Valid(c.Net) {
		t.Fatal("invalid Clos path")
	}
	if p.Len() != 4 {
		t.Fatalf("Clos path length = %d, want 4", p.Len())
	}
	// Even same-index endpoints cross the middle stage (unidirectional).
	p = c.RouteVia(0, 1, 0)
	if p.Len() != 4 {
		t.Fatalf("same-switch Clos path length = %d, want 4", p.Len())
	}
}

func TestClosFtreeEquivalence(t *testing.T) {
	// Clos(n,m,r) and ftree(n+m,r) are logically equivalent: same port
	// count, same trunk link count per direction.
	n, m, r := 3, 5, 7
	c := NewClos(n, m, r)
	f := NewFoldedClos(n, m, r)
	if c.Ports() != f.Ports() {
		t.Fatal("port counts differ")
	}
	// Clos up links = ftree up trunk links; Clos down = ftree down.
	if c.R*c.M != f.R*f.M {
		t.Fatal("trunk counts differ")
	}
}

func TestCrossbar(t *testing.T) {
	x := NewCrossbar(5)
	if x.Net.NumHosts() != 5 || x.Net.NumSwitches() != 1 {
		t.Fatal("crossbar counts wrong")
	}
	if x.Net.Radix(x.SwitchID()) != 5 {
		t.Fatal("crossbar radix wrong")
	}
	p := x.Route(1, 3)
	if !p.Valid(x.Net) {
		t.Fatalf("crossbar path invalid: %+v", p)
	}
	if p.Len() != 2 {
		t.Fatalf("crossbar path length = %d", p.Len())
	}
	// Distinct SD pairs in a permutation never share a crossbar link.
	p2 := x.Route(2, 4)
	for _, l1 := range p.Links {
		for _, l2 := range p2.Links {
			if l1 == l2 {
				t.Fatal("crossbar paths share a link")
			}
		}
	}
}

func TestWriteDOT(t *testing.T) {
	f := NewFoldedClos(2, 2, 2)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, f.Net); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "graph \"ftree(2+2,2)\"") {
		t.Fatalf("missing header: %s", s)
	}
	// 4 host-bottom cables + 4 trunk cables = 8 undirected edges.
	if got := strings.Count(s, " -- "); got != 8 {
		t.Fatalf("edges = %d, want 8", got)
	}
	if !strings.Contains(s, "shape=box") || !strings.Contains(s, "shape=ellipse") {
		t.Fatal("missing node shapes")
	}
}

func TestClosAccessorPanics(t *testing.T) {
	c := NewClos(2, 3, 4)
	for name, fn := range map[string]func(){
		"InTerminal":   func() { c.InTerminal(-1) },
		"OutTerminal":  func() { c.OutTerminal(8) },
		"InputSwitch":  func() { c.InputSwitch(4) },
		"MiddleSwitch": func() { c.MiddleSwitch(3) },
		"OutputSwitch": func() { c.OutputSwitch(-2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCrossbarHostPanics(t *testing.T) {
	x := NewCrossbar(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.HostID(3)
}
