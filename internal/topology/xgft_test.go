package topology

import "testing"

func TestXGFTMatchesFoldedClos(t *testing.T) {
	// XGFT(2; [n, r]; [1, m]) is exactly ftree(n+m, r).
	n, m, r := 3, 9, 7
	x := NewXGFT(2, []int{n, r}, []int{1, m})
	f := NewFoldedClos(n, m, r)
	if x.Hosts() != f.Ports() {
		t.Fatalf("hosts %d vs %d", x.Hosts(), f.Ports())
	}
	if x.Switches() != f.Switches() {
		t.Fatalf("switches %d vs %d", x.Switches(), f.Switches())
	}
	if x.Net.NumLinks() != f.Net.NumLinks() {
		t.Fatalf("links %d vs %d", x.Net.NumLinks(), f.Net.NumLinks())
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if x.LevelSize(1) != r || x.LevelSize(2) != m {
		t.Fatalf("level sizes: %d, %d", x.LevelSize(1), x.LevelSize(2))
	}
}

func TestXGFTThreeLevels(t *testing.T) {
	// XGFT(3; [2,2,2]; [1,2,2]): 8 processors, levels of 4, 4, 4 routers.
	x := NewXGFT(3, []int{2, 2, 2}, []int{1, 2, 2})
	if x.Hosts() != 8 {
		t.Fatalf("hosts = %d", x.Hosts())
	}
	if got := []int{x.LevelSize(1), x.LevelSize(2), x.LevelSize(3)}; got[0] != 4 || got[1] != 4 || got[2] != 4 {
		t.Fatalf("level sizes = %v", got)
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every processor reaches every other processor.
	for s := 0; s < x.Hosts(); s++ {
		for d := 0; d < x.Hosts(); d++ {
			if s == d {
				continue
			}
			if _, err := x.Net.ShortestPath(x.NodeAt(0, s), x.NodeAt(0, d)); err != nil {
				t.Fatalf("%d cannot reach %d: %v", s, d, err)
			}
		}
	}
}

func TestXGFTHeterogeneousArities(t *testing.T) {
	// Per-level knobs differ: XGFT(3; [3,2,4]; [1,2,3]).
	x := NewXGFT(3, []int{3, 2, 4}, []int{1, 2, 3})
	if x.Hosts() != 24 {
		t.Fatalf("hosts = %d", x.Hosts())
	}
	// Level sizes: L1 = m2·m3·w1 = 8, L2 = m3·w1·w2 = 8, L3 = w1·w2·w3 = 6.
	if x.LevelSize(1) != 8 || x.LevelSize(2) != 8 || x.LevelSize(3) != 6 {
		t.Fatalf("level sizes: %d %d %d", x.LevelSize(1), x.LevelSize(2), x.LevelSize(3))
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	// Oversubscribed variant: fewer parents shrink the upper levels.
	thin := NewXGFT(3, []int{3, 2, 4}, []int{1, 1, 2})
	if thin.LevelSize(3) >= x.LevelSize(3) {
		t.Fatal("thinner widths should shrink the top level")
	}
	if err := thin.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestXGFTPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"height":    func() { NewXGFT(0, nil, nil) },
		"len":       func() { NewXGFT(2, []int{2}, []int{1, 2}) },
		"arity":     func() { NewXGFT(2, []int{2, 0}, []int{1, 2}) },
		"multihome": func() { NewXGFT(2, []int{2, 2}, []int{2, 2}) },
		"level":     func() { NewXGFT(2, []int{2, 2}, []int{1, 2}).LevelSize(3) },
		"node":      func() { NewXGFT(2, []int{2, 2}, []int{1, 2}).NodeAt(1, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
