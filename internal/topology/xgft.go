package topology

import "fmt"

// XGFT is the extended generalized fat tree XGFT(h; m₁..m_h; w₁..w_h) of
// Öhring, Ibel, Das and Kumar [13] — the family the paper cites as the
// broad generalization of fat-trees. Level 0 holds the m₁·m₂···m_h leaf
// processors; each level-i node (1 ≤ i ≤ h) has m_i children and, if
// i < h, w_{i+1} parents. Both the k-ary n-tree (m_i = k, w_i = k with a
// thinner top) and the m-port n-tree are instances up to top-level
// merging; XGFT exposes the per-level arity/width knobs explicitly, which
// is what makes it the standard vehicle for studying cost/bandwidth
// trade-offs like the paper's m ≥ n² condition (a 2-level XGFT with
// m₁ = n, w₂ = m *is* ftree(n+m, r)).
//
// Addressing (following [13]): a level-i node is identified by
// (i, a_h…a_{i+1}, b_i…b_1) where a_j ∈ [0, m_j) locates the subtree the
// node belongs to at each level above it and b_j ∈ [0, w_j) distinguishes
// the replicated routers inside the subtree. Node (i, a, b) connects to
// the level-(i+1) nodes that agree on a_h…a_{i+2} and b_i…b_1's prefix —
// concretely, parent p ∈ [0, w_{i+1}) yields (i+1, a_h…a_{i+2}, p·…) with
// the child's a_{i+1} forgotten and p appended to the b-vector.
type XGFT struct {
	// H is the height (number of switch levels).
	H int
	// M[i] is m_{i+1}: the child count of level-(i+1) nodes.
	M []int
	// W[i] is w_{i+1}: the parent count of level-i nodes.
	W []int

	// Net is the underlying directed graph.
	Net *Network

	lvlBase []NodeID // first node ID of each level (0 = leaves)
	lvlSize []int
}

// NewXGFT builds XGFT(h; m...; w...). len(m) == len(w) == h, all entries
// ≥ 1. w[0] (the leaves' parent count) must be 1 in this implementation:
// each processor attaches to a single first-level switch, matching every
// topology in this repository.
func NewXGFT(h int, m, w []int) *XGFT {
	if h < 1 || len(m) != h || len(w) != h {
		panic(fmt.Sprintf("topology: invalid XGFT(h=%d, |m|=%d, |w|=%d)", h, len(m), len(w)))
	}
	for i := 0; i < h; i++ {
		if m[i] < 1 || w[i] < 1 {
			panic(fmt.Sprintf("topology: XGFT arity m[%d]=%d w[%d]=%d must be >= 1", i, m[i], i, w[i]))
		}
	}
	if w[0] != 1 {
		panic("topology: XGFT with multi-homed processors (w1 > 1) is not supported")
	}
	x := &XGFT{H: h, M: append([]int(nil), m...), W: append([]int(nil), w...),
		Net: NewNetwork(fmt.Sprintf("XGFT(%d;%v;%v)", h, m, w))}

	// Level sizes: level 0 = ∏ m_i leaves; level i = (∏_{j>i} m_j)·(∏_{j≤i} w_j).
	x.lvlBase = make([]NodeID, h+1)
	x.lvlSize = make([]int, h+1)
	for i := 0; i <= h; i++ {
		size := 1
		for j := i; j < h; j++ {
			size *= m[j]
		}
		for j := 0; j < i; j++ {
			size *= w[j]
		}
		x.lvlSize[i] = size
	}
	for i := 0; i <= h; i++ {
		x.lvlBase[i] = NodeID(x.Net.NumNodes())
		kind := Switch
		if i == 0 {
			kind = Host
		}
		for idx := 0; idx < x.lvlSize[i]; idx++ {
			label := fmt.Sprintf("L%d.%d", i, idx)
			if i == 0 {
				label = fmt.Sprintf("p%d", idx)
			}
			x.Net.AddNode(kind, i, idx, label)
		}
	}

	// Wiring. Encode a level-i node index as
	//   idx = A·(∏_{j≤i} w_j) + B
	// where A enumerates (a_h…a_{i+1}) and B enumerates (b_i…b_1). The
	// level-(i+1) parents of (A, B) split A = A'·m_{i+1-1}... : the child
	// forgets digit a_{i+1} (A = A'·m[i] + a) and gains digit b_{i+1} = p:
	//   parentIdx = A'·(∏_{j≤i+1} w_j) + p·(∏_{j≤i} w_j) + B.
	wProd := make([]int, h+1) // wProd[i] = ∏_{j<i} w_j
	wProd[0] = 1
	for i := 0; i < h; i++ {
		wProd[i+1] = wProd[i] * w[i]
	}
	for i := 0; i < h; i++ {
		bMod := wProd[i] // size of the b-digit block at level i (1 at the leaves)
		for idx := 0; idx < x.lvlSize[i]; idx++ {
			aPart := idx / bMod // digits a_h…a_{i+1}
			B := idx % bMod     // digits b_i…b_1
			aHigh := aPart / m[i]
			for p := 0; p < w[i]; p++ {
				parent := aHigh*(bMod*w[i]) + p*bMod + B
				x.Net.AddDuplex(x.lvlBase[i]+NodeID(idx), x.lvlBase[i+1]+NodeID(parent))
			}
		}
	}
	return x
}

// Hosts reports the processor count ∏ m_i.
func (x *XGFT) Hosts() int { return x.lvlSize[0] }

// Switches reports the total router count Σ_{i≥1} level sizes.
func (x *XGFT) Switches() int {
	s := 0
	for i := 1; i <= x.H; i++ {
		s += x.lvlSize[i]
	}
	return s
}

// LevelSize reports the node count of one level (0 = processors).
func (x *XGFT) LevelSize(i int) int {
	if i < 0 || i > x.H {
		panic(fmt.Sprintf("topology: XGFT level %d out of range", i))
	}
	return x.lvlSize[i]
}

// NodeAt returns the node ID of index idx within level i.
func (x *XGFT) NodeAt(i, idx int) NodeID {
	if i < 0 || i > x.H || idx < 0 || idx >= x.lvlSize[i] {
		panic(fmt.Sprintf("topology: XGFT node (%d,%d) out of range", i, idx))
	}
	return x.lvlBase[i] + NodeID(idx)
}

// Validate checks level sizes, degree structure and connectivity.
func (x *XGFT) Validate() error {
	g := x.Net
	for i := 0; i <= x.H; i++ {
		for idx := 0; idx < x.lvlSize[i]; idx++ {
			id := x.NodeAt(i, idx)
			up, down := 0, 0
			for _, l := range g.Out(id) {
				to := g.Node(g.Link(l).To)
				if to.Level > i {
					up++
				} else {
					down++
				}
			}
			wantUp := 0
			if i < x.H {
				wantUp = x.W[i]
			}
			wantDown := 0
			if i > 0 {
				wantDown = x.M[i-1]
			}
			if up != wantUp || down != wantDown {
				return fmt.Errorf("%s: node (%d,%d) has %d up/%d down, want %d/%d",
					g.Name, i, idx, up, down, wantUp, wantDown)
			}
		}
	}
	if !g.Connected() {
		return fmt.Errorf("%s: not strongly connected", g.Name)
	}
	return nil
}
