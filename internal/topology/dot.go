package topology

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the network in Graphviz DOT format. Duplex link pairs
// are collapsed into single undirected edges; hosts are drawn as plain
// nodes and switches as boxes, ranked by level so fat-trees lay out with
// hosts at the bottom.
func WriteDOT(w io.Writer, g *Network) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", g.Name)
	b.WriteString("  rankdir=BT;\n  node [fontsize=10];\n")

	byLevel := map[int][]NodeID{}
	maxLevel := 0
	for id := NodeID(0); int(id) < g.NumNodes(); id++ {
		n := g.Node(id)
		byLevel[n.Level] = append(byLevel[n.Level], id)
		if n.Level > maxLevel {
			maxLevel = n.Level
		}
	}
	for lvl := 0; lvl <= maxLevel; lvl++ {
		ids := byLevel[lvl]
		if len(ids) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  { rank=same;")
		for _, id := range ids {
			fmt.Fprintf(&b, " n%d;", id)
		}
		b.WriteString(" }\n")
		for _, id := range ids {
			n := g.Node(id)
			shape := "ellipse"
			if n.Kind == Switch {
				shape = "box"
			}
			fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", id, n.Label, shape)
		}
	}
	// Emit each unordered pair once.
	seen := make(map[[2]NodeID]bool)
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(LinkID(i))
		a, c := l.From, l.To
		if a > c {
			a, c = c, a
		}
		key := [2]NodeID{a, c}
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Fprintf(&b, "  n%d -- n%d;\n", a, c)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
