package topology

import "fmt"

// Benes is the Benes rearrangeable network B(k) on N = 2^k terminals
// ([3], [4] in the paper): 2k−1 stages of N/2 2×2 crossing switches,
// built recursively as butterfly — two half-size Benes networks —
// butterfly. Every permutation is routable with edge-disjoint paths (the
// looping algorithm in package routing), making it the minimal-hardware
// rearrangeable baseline the paper's §II contrasts against: N·log N
// switch cost but centralized, rearranging control.
//
// Stage s switch j (0 ≤ j < N/2) has inputs 2j and 2j+1 of stage s and
// outputs feeding stage s+1 according to the butterfly wiring: in the
// outer stages the "distance" is N/2, halving toward the middle and
// doubling back out.
type Benes struct {
	// K is log2 of the terminal count.
	K int
	// N is the terminal count, 2^k.
	N int

	// Net is the underlying directed graph: input terminals, switch
	// nodes per stage, output terminals.
	Net *Network

	inBase, outBase NodeID
	stageBase       []NodeID
}

// Stages reports the stage count 2k−1.
func (b *Benes) Stages() int { return 2*b.K - 1 }

// NewBenes builds B(k) for N = 2^k terminals, k ≥ 1. B(1) is a single
// 2×2 switch.
func NewBenes(k int) *Benes {
	if k < 1 {
		panic(fmt.Sprintf("topology: invalid Benes parameter k=%d", k))
	}
	n := 1 << k
	b := &Benes{K: k, N: n, Net: NewNetwork(fmt.Sprintf("benes(%d)", n))}
	b.inBase = 0
	for i := 0; i < n; i++ {
		b.Net.AddNode(Host, 0, i, fmt.Sprintf("in%d", i))
	}
	b.outBase = NodeID(n)
	for i := 0; i < n; i++ {
		b.Net.AddNode(Host, 0, n+i, fmt.Sprintf("out%d", i))
	}
	stages := 2*k - 1
	b.stageBase = make([]NodeID, stages)
	for s := 0; s < stages; s++ {
		b.stageBase[s] = NodeID(b.Net.NumNodes())
		for j := 0; j < n/2; j++ {
			b.Net.AddNode(Switch, s+1, j, fmt.Sprintf("s%d.%d", s, j))
		}
	}
	// Terminals to/from the outer stages.
	for i := 0; i < n; i++ {
		b.Net.AddLink(b.InTerminal(i), b.SwitchID(0, i/2))
		b.Net.AddLink(b.SwitchID(stages-1, i/2), b.OutTerminal(i))
	}
	// Inter-stage wiring: between stage s and s+1 the network behaves as
	// parallel sub-Benes blocks; within a block of size 2^(d+1) lines,
	// output line x of stage s connects to input line of stage s+1 by
	// the perfect-shuffle of the block (first half / second half split
	// on the way in, inverse on the way out).
	for s := 0; s+1 < stages; s++ {
		for line := 0; line < n; line++ {
			b.Net.AddLink(b.SwitchID(s, line/2), b.SwitchID(s+1, b.nextLine(s, line)/2))
		}
	}
	return b
}

// subShift returns log2 of the sub-block size the wiring between stage s
// and s+1 operates on: the recursion depth d grows toward the middle
// stage and shrinks after it.
func (b *Benes) subShift(s int) int {
	depth := s
	if mirrored := b.Stages() - 2 - s; mirrored < depth {
		depth = mirrored
	}
	return b.K - depth
}

// nextLine maps output line `line` of stage s to the input line of stage
// s+1 it is wired to. Entering the first half of a block means "upper
// sub-network": within a block of size B = 2^t, input line x goes to
// sub-network x mod 2, position x div 2 (unshuffle) while descending, and
// the inverse (shuffle) while ascending after the middle stage.
func (b *Benes) nextLine(s, line int) int {
	t := b.subShift(s) // block size exponent on the descending side
	block := 1 << t
	base := line &^ (block - 1)
	x := line & (block - 1)
	if s < b.Stages()/2 {
		// Descending: unshuffle within the block.
		return base | (x>>1 | (x&1)<<(t-1))
	}
	// Ascending: shuffle within the block (inverse permutation).
	return base | ((x<<1)&(block-1) | x>>(t-1))
}

// InTerminal returns the node ID of input terminal i.
func (b *Benes) InTerminal(i int) NodeID {
	if i < 0 || i >= b.N {
		panic(fmt.Sprintf("topology: Benes input %d out of range", i))
	}
	return b.inBase + NodeID(i)
}

// OutTerminal returns the node ID of output terminal i.
func (b *Benes) OutTerminal(i int) NodeID {
	if i < 0 || i >= b.N {
		panic(fmt.Sprintf("topology: Benes output %d out of range", i))
	}
	return b.outBase + NodeID(i)
}

// SwitchID returns the node ID of switch j in stage s.
func (b *Benes) SwitchID(s, j int) NodeID {
	if s < 0 || s >= b.Stages() || j < 0 || j >= b.N/2 {
		panic(fmt.Sprintf("topology: Benes switch (%d,%d) out of range", s, j))
	}
	return b.stageBase[s] + NodeID(j)
}

// NextLine exposes the inter-stage wiring for the looping router: the
// input line of stage s+1 fed by output line `line` of stage s.
func (b *Benes) NextLine(s, line int) int {
	if s < 0 || s+1 >= b.Stages() {
		panic(fmt.Sprintf("topology: no wiring after stage %d", s))
	}
	if line < 0 || line >= b.N {
		panic(fmt.Sprintf("topology: line %d out of range", line))
	}
	return b.nextLine(s, line)
}

// Validate checks stage structure and wiring consistency: every stage's
// inter-stage wiring must be a permutation of the N lines, switch degrees
// must be 2×2, and the network must be connected input→output.
func (b *Benes) Validate() error {
	g := b.Net
	stages := b.Stages()
	wantSwitches := stages * b.N / 2
	if g.NumSwitches() != wantSwitches {
		return fmt.Errorf("%s: have %d switches, want %d", g.Name, g.NumSwitches(), wantSwitches)
	}
	for s := 0; s+1 < stages; s++ {
		seen := make([]bool, b.N)
		for line := 0; line < b.N; line++ {
			nl := b.nextLine(s, line)
			if nl < 0 || nl >= b.N || seen[nl] {
				return fmt.Errorf("%s: stage %d wiring not a permutation (line %d -> %d)", g.Name, s, line, nl)
			}
			seen[nl] = true
		}
	}
	for s := 0; s < stages; s++ {
		for j := 0; j < b.N/2; j++ {
			id := b.SwitchID(s, j)
			if g.OutDegree(id) != 2 || g.InDegree(id) != 2 {
				return fmt.Errorf("%s: switch (%d,%d) degree %d/%d, want 2/2", g.Name, s, j, g.InDegree(id), g.OutDegree(id))
			}
		}
	}
	// Every input must reach every output.
	for i := 0; i < b.N; i += maxInt(1, b.N/4) {
		if _, err := g.ShortestPath(b.InTerminal(i), b.OutTerminal(b.N-1-i)); err != nil {
			return fmt.Errorf("%s: input %d cannot reach output %d", g.Name, i, b.N-1-i)
		}
	}
	return nil
}
