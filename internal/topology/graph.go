// Package topology models interconnection-network topologies as directed
// graphs and provides builders for the network families studied in
// Xin Yuan, "On Nonblocking Folded-Clos Networks in Computer Communication
// Environments" (IPPS 2011): folded-Clos (fat-tree) networks ftree(n+m, r),
// three-stage Clos networks Clos(n, m, r), m-port n-trees FT(m, n),
// k-ary n-trees, crossbars, and recursively constructed multi-level
// nonblocking folded-Clos networks.
//
// All links are directed. A bidirectional cable between two switches is
// modeled as a pair of opposite directed links, matching the paper's
// treatment of uplinks and downlinks as separate contention domains.
package topology

import (
	"fmt"
	"slices"
)

// NodeID identifies a node (host or switch) within one Network.
type NodeID int32

// LinkID identifies a directed link within one Network.
type LinkID int32

// NoLink is returned by lookups when no link connects the queried endpoints.
const NoLink LinkID = -1

// NoNode is returned by lookups when no node matches the query.
const NoNode NodeID = -1

// NodeKind distinguishes traffic endpoints from switching elements.
type NodeKind uint8

const (
	// Host is a leaf node: a traffic source and destination.
	Host NodeKind = iota
	// Switch is an internal switching element; it never originates or
	// terminates traffic.
	Switch
)

// String returns "host" or "switch".
func (k NodeKind) String() string {
	switch k {
	case Host:
		return "host"
	case Switch:
		return "switch"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Node is one vertex of a Network.
type Node struct {
	ID    NodeID
	Kind  NodeKind
	Level int    // 0 for hosts; switches use builder-specific levels ≥ 1
	Index int    // index of this node within its (kind, level) group
	Label string // human-readable name used in DOT export and reports
}

// Link is one directed edge of a Network. Traffic flowing From→To contends
// only with other traffic routed over this same directed link.
type Link struct {
	ID   LinkID
	From NodeID
	To   NodeID
}

// Network is a directed multigraph of hosts and switches. The zero value is
// an empty network ready for AddNode/AddLink; builders in this package
// produce fully populated networks with deterministic node and link IDs.
type Network struct {
	Name  string
	nodes []Node
	links []Link

	out   [][]LinkID // outgoing link IDs per node
	in    [][]LinkID // incoming link IDs per node
	byEnd map[endpoints]LinkID

	hosts []NodeID // all Host nodes in ID order
}

type endpoints struct {
	from, to NodeID
}

// NewNetwork returns an empty named network.
func NewNetwork(name string) *Network {
	return &Network{
		Name:  name,
		byEnd: make(map[endpoints]LinkID),
	}
}

// AddNode appends a node and returns its ID. Level and index are recorded
// verbatim; label may be empty, in which case a default is synthesized.
func (g *Network) AddNode(kind NodeKind, level, index int, label string) NodeID {
	id := NodeID(len(g.nodes))
	if label == "" {
		label = fmt.Sprintf("%s-%d-%d", kind, level, index)
	}
	g.nodes = append(g.nodes, Node{ID: id, Kind: kind, Level: level, Index: index, Label: label})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	if kind == Host {
		g.hosts = append(g.hosts, id)
	}
	return id
}

// AddLink appends a directed link from→to and returns its ID. Adding two
// links with identical endpoints is rejected: every topology in this
// repository uses at most one cable between any ordered pair, and silently
// aliasing parallel links would corrupt contention accounting.
func (g *Network) AddLink(from, to NodeID) LinkID {
	if err := g.checkNode(from); err != nil {
		panic(err)
	}
	if err := g.checkNode(to); err != nil {
		panic(err)
	}
	if from == to {
		panic(fmt.Sprintf("topology: self-loop on node %d", from))
	}
	key := endpoints{from, to}
	if _, dup := g.byEnd[key]; dup {
		panic(fmt.Sprintf("topology: duplicate link %d->%d", from, to))
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, From: from, To: to})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.byEnd[key] = id
	return id
}

// AddDuplex adds the two directed links modeling one bidirectional cable and
// returns (a→b, b→a).
func (g *Network) AddDuplex(a, b NodeID) (LinkID, LinkID) {
	return g.AddLink(a, b), g.AddLink(b, a)
}

func (g *Network) checkNode(id NodeID) error {
	if id < 0 || int(id) >= len(g.nodes) {
		return fmt.Errorf("topology: node %d out of range [0,%d)", id, len(g.nodes))
	}
	return nil
}

// NumNodes reports the total number of nodes (hosts plus switches).
func (g *Network) NumNodes() int { return len(g.nodes) }

// NumLinks reports the total number of directed links.
func (g *Network) NumLinks() int { return len(g.links) }

// NumHosts reports the number of Host nodes.
func (g *Network) NumHosts() int { return len(g.hosts) }

// NumSwitches reports the number of Switch nodes.
func (g *Network) NumSwitches() int { return len(g.nodes) - len(g.hosts) }

// Node returns the node with the given ID. It panics on out-of-range IDs,
// which always indicate a programming error rather than a runtime condition.
func (g *Network) Node(id NodeID) Node {
	if err := g.checkNode(id); err != nil {
		panic(err)
	}
	return g.nodes[id]
}

// Link returns the link with the given ID, panicking on out-of-range IDs.
func (g *Network) Link(id LinkID) Link {
	if id < 0 || int(id) >= len(g.links) {
		panic(fmt.Sprintf("topology: link %d out of range [0,%d)", id, len(g.links)))
	}
	return g.links[id]
}

// Hosts returns the IDs of all hosts in ascending order. The returned slice
// is owned by the network and must not be modified.
func (g *Network) Hosts() []NodeID { return g.hosts }

// Out returns the IDs of links leaving node id, in insertion order. The
// returned slice is owned by the network and must not be modified.
func (g *Network) Out(id NodeID) []LinkID {
	if err := g.checkNode(id); err != nil {
		panic(err)
	}
	return g.out[id]
}

// In returns the IDs of links entering node id, in insertion order. The
// returned slice is owned by the network and must not be modified.
func (g *Network) In(id NodeID) []LinkID {
	if err := g.checkNode(id); err != nil {
		panic(err)
	}
	return g.in[id]
}

// OutDegree reports the number of links leaving node id.
func (g *Network) OutDegree(id NodeID) int { return len(g.Out(id)) }

// InDegree reports the number of links entering node id.
func (g *Network) InDegree(id NodeID) int { return len(g.In(id)) }

// Radix reports the number of distinct neighbors of node id, i.e. the port
// count of the physical device when every neighbor is cabled with one duplex
// cable.
func (g *Network) Radix(id NodeID) int {
	seen := make(map[NodeID]struct{}, len(g.Out(id))+len(g.In(id)))
	for _, l := range g.Out(id) {
		seen[g.links[l].To] = struct{}{}
	}
	for _, l := range g.In(id) {
		seen[g.links[l].From] = struct{}{}
	}
	return len(seen)
}

// FindLink returns the ID of the directed link from→to, or NoLink when the
// nodes are not adjacent in that direction.
func (g *Network) FindLink(from, to NodeID) LinkID {
	if id, ok := g.byEnd[endpoints{from, to}]; ok {
		return id
	}
	return NoLink
}

// Neighbors returns the distinct nodes reachable over outgoing links of id,
// in ascending ID order.
func (g *Network) Neighbors(id NodeID) []NodeID {
	out := g.Out(id)
	res := make([]NodeID, 0, len(out))
	seen := make(map[NodeID]struct{}, len(out))
	for _, l := range out {
		to := g.links[l].To
		if _, ok := seen[to]; !ok {
			seen[to] = struct{}{}
			res = append(res, to)
		}
	}
	slices.Sort(res)
	return res
}

// Path is a route through the network: Nodes has one more element than
// Links, Links[i] connects Nodes[i] to Nodes[i+1].
type Path struct {
	Nodes []NodeID
	Links []LinkID
}

// Len reports the number of links (hops) on the path.
func (p Path) Len() int { return len(p.Links) }

// Valid reports whether the path is internally consistent within g: each
// link must exist and connect the adjacent node pair.
func (p Path) Valid(g *Network) bool {
	if len(p.Nodes) != len(p.Links)+1 {
		return false
	}
	if len(p.Nodes) == 0 {
		return false
	}
	for i, l := range p.Links {
		if l < 0 || int(l) >= len(g.links) {
			return false
		}
		lk := g.links[l]
		if lk.From != p.Nodes[i] || lk.To != p.Nodes[i+1] {
			return false
		}
	}
	return true
}

// PathBetween assembles a Path from a node sequence, resolving each hop's
// link ID. It returns an error if any consecutive pair is not adjacent.
func (g *Network) PathBetween(nodes ...NodeID) (Path, error) {
	if len(nodes) == 0 {
		return Path{}, fmt.Errorf("topology: empty path")
	}
	p := Path{Nodes: nodes, Links: make([]LinkID, 0, len(nodes)-1)}
	for i := 0; i+1 < len(nodes); i++ {
		l := g.FindLink(nodes[i], nodes[i+1])
		if l == NoLink {
			return Path{}, fmt.Errorf("topology: nodes %d and %d are not adjacent", nodes[i], nodes[i+1])
		}
		p.Links = append(p.Links, l)
	}
	return p, nil
}

// ShortestPath returns one minimum-hop path from src to dst found by BFS,
// breaking ties toward lower node IDs so results are deterministic. It
// returns an error when dst is unreachable.
func (g *Network) ShortestPath(src, dst NodeID) (Path, error) {
	if err := g.checkNode(src); err != nil {
		return Path{}, err
	}
	if err := g.checkNode(dst); err != nil {
		return Path{}, err
	}
	if src == dst {
		return Path{Nodes: []NodeID{src}}, nil
	}
	prev := make([]LinkID, len(g.nodes))
	for i := range prev {
		prev[i] = NoLink
	}
	queue := []NodeID{src}
	visited := make([]bool, len(g.nodes))
	visited[src] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range g.out[cur] {
			to := g.links[l].To
			if visited[to] {
				continue
			}
			visited[to] = true
			prev[to] = l
			if to == dst {
				return g.tracePath(src, dst, prev), nil
			}
			queue = append(queue, to)
		}
	}
	return Path{}, fmt.Errorf("topology: no path from %d to %d", src, dst)
}

func (g *Network) tracePath(src, dst NodeID, prev []LinkID) Path {
	var rlinks []LinkID
	cur := dst
	for cur != src {
		l := prev[cur]
		rlinks = append(rlinks, l)
		cur = g.links[l].From
	}
	p := Path{Nodes: make([]NodeID, 0, len(rlinks)+1), Links: make([]LinkID, 0, len(rlinks))}
	p.Nodes = append(p.Nodes, src)
	for i := len(rlinks) - 1; i >= 0; i-- {
		p.Links = append(p.Links, rlinks[i])
		p.Nodes = append(p.Nodes, g.links[rlinks[i]].To)
	}
	return p
}

// Connected reports whether every node can reach every other node following
// directed links. All topologies built by this package are connected.
func (g *Network) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	// A directed graph is strongly connected iff one node reaches all
	// nodes along outgoing links and is reached by all nodes (BFS along
	// incoming links).
	return g.bfsCount(0, true) == len(g.nodes) && g.bfsCount(0, false) == len(g.nodes)
}

func (g *Network) bfsCount(start NodeID, forward bool) int {
	visited := make([]bool, len(g.nodes))
	visited[start] = true
	queue := []NodeID{start}
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var adj []LinkID
		if forward {
			adj = g.out[cur]
		} else {
			adj = g.in[cur]
		}
		for _, l := range adj {
			next := g.links[l].To
			if !forward {
				next = g.links[l].From
			}
			if !visited[next] {
				visited[next] = true
				count++
				queue = append(queue, next)
			}
		}
	}
	return count
}

// SwitchIDs returns the IDs of all switches at the given level, ascending.
func (g *Network) SwitchIDs(level int) []NodeID {
	var res []NodeID
	for _, n := range g.nodes {
		if n.Kind == Switch && n.Level == level {
			res = append(res, n.ID)
		}
	}
	return res
}

// MaxSwitchLevel returns the highest switch level present, or 0 when the
// network has no switches.
func (g *Network) MaxSwitchLevel() int {
	max := 0
	for _, n := range g.nodes {
		if n.Kind == Switch && n.Level > max {
			max = n.Level
		}
	}
	return max
}
