package topology

import (
	"testing"
	"testing/quick"
)

func TestBenesCountsAndStages(t *testing.T) {
	for k := 1; k <= 6; k++ {
		b := NewBenes(k)
		n := 1 << k
		if b.N != n {
			t.Fatalf("k=%d: N=%d", k, b.N)
		}
		if b.Stages() != 2*k-1 {
			t.Fatalf("k=%d: stages=%d", k, b.Stages())
		}
		if got := b.Net.NumSwitches(); got != (2*k-1)*n/2 {
			t.Fatalf("k=%d: switches=%d, want %d", k, got, (2*k-1)*n/2)
		}
		if got := b.Net.NumHosts(); got != 2*n {
			t.Fatalf("k=%d: terminals=%d, want %d", k, got, 2*n)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestBenesWiringIsBlockedPermutation(t *testing.T) {
	// Every inter-stage wiring must be a permutation of lines that stays
	// within its recursion block.
	b := NewBenes(4)
	for s := 0; s+1 < b.Stages(); s++ {
		seen := map[int]bool{}
		for line := 0; line < b.N; line++ {
			nl := b.NextLine(s, line)
			if nl < 0 || nl >= b.N || seen[nl] {
				t.Fatalf("stage %d: line %d -> %d duplicates or out of range", s, line, nl)
			}
			seen[nl] = true
		}
	}
}

func TestBenesB2WiringExplicit(t *testing.T) {
	// B(4 terminals): stage 0 -> 1 is the unshuffle of 4 lines
	// (0,1,2,3 -> 0,2,1,3); stage 1 -> 2 the shuffle (its inverse).
	b := NewBenes(2)
	wantDown := []int{0, 2, 1, 3}
	for line, want := range wantDown {
		if got := b.NextLine(0, line); got != want {
			t.Fatalf("unshuffle(%d) = %d, want %d", line, got, want)
		}
	}
	for line := 0; line < 4; line++ {
		if got := b.NextLine(1, wantDown[line]); got != line {
			t.Fatalf("shuffle(unshuffle(%d)) = %d", line, got)
		}
	}
}

func TestBenesMirrorSymmetry(t *testing.T) {
	// The ascending wiring at mirrored depth inverts the descending one:
	// nextLine(mirror(s), nextLine(s, x)) == x whenever both operate on
	// the same block size, checked via quick random probes.
	b := NewBenes(5)
	f := func(stage, line uint8) bool {
		s := int(stage) % (b.Stages() / 2) // descending side only
		x := int(line) % b.N
		mirror := b.Stages() - 2 - s // ascending stage with equal block size
		return b.NextLine(mirror, b.NextLine(s, x)) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBenesAccessorPanics(t *testing.T) {
	b := NewBenes(2)
	for name, fn := range map[string]func(){
		"InTerminal":  func() { b.InTerminal(4) },
		"OutTerminal": func() { b.OutTerminal(-1) },
		"SwitchID-s":  func() { b.SwitchID(3, 0) },
		"SwitchID-j":  func() { b.SwitchID(0, 2) },
		"NextLine-s":  func() { b.NextLine(2, 0) },
		"NextLine-l":  func() { b.NextLine(0, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBenesTerminalWiring(t *testing.T) {
	b := NewBenes(3)
	// Input i feeds switch i/2 of stage 0; output i is fed by switch i/2
	// of the last stage.
	for i := 0; i < b.N; i++ {
		if b.Net.FindLink(b.InTerminal(i), b.SwitchID(0, i/2)) == NoLink {
			t.Fatalf("input %d not wired", i)
		}
		if b.Net.FindLink(b.SwitchID(b.Stages()-1, i/2), b.OutTerminal(i)) == NoLink {
			t.Fatalf("output %d not wired", i)
		}
	}
}
