package topology

import "testing"

func TestMultiFtreeMatchesClosedForms(t *testing.T) {
	cases := []struct{ n, levels, ports, switches int }{
		{2, 2, 12, 10},   // ftree(2+4,6): n³+n² = 12 hosts, 2n²+n = 10
		{3, 2, 36, 21},   // 2n²+n = 21
		{4, 2, 80, 36},   // Table I row 1
		{2, 3, 24, 52},   // matches ThreeLevelFtree
		{3, 3, 108, 225}, // matches ThreeLevelFtree
		{2, 4, 48, 232},  // S(4) = n⁴+n³ + n²·S(3)
	}
	for _, c := range cases {
		m := NewMultiFtree(c.n, c.levels)
		if m.Ports() != c.ports {
			t.Errorf("ftree%d(n=%d): ports %d, want %d", c.levels, c.n, m.Ports(), c.ports)
		}
		if m.Switches() != c.switches {
			t.Errorf("ftree%d(n=%d): switches %d, want %d", c.levels, c.n, m.Switches(), c.switches)
		}
		if m.Switches() != ExpectedSwitches(c.n, c.levels) {
			t.Errorf("ftree%d(n=%d): recursion formula mismatch", c.levels, c.n)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("ftree%d(n=%d): %v", c.levels, c.n, err)
		}
	}
}

func TestMultiFtreeAgreesWithThreeLevelFtree(t *testing.T) {
	// The generic builder and the explicit 3-level builder must produce
	// networks of identical size and switch radix.
	for _, n := range []int{2, 3} {
		generic := NewMultiFtree(n, 3)
		explicit := NewThreeLevelFtree(n, n*n*n+n*n)
		if generic.Ports() != explicit.Ports() {
			t.Errorf("n=%d: ports %d vs %d", n, generic.Ports(), explicit.Ports())
		}
		if generic.Switches() != explicit.Switches() {
			t.Errorf("n=%d: switches %d vs %d", n, generic.Switches(), explicit.Switches())
		}
		if generic.Net.NumLinks() != explicit.Net.NumLinks() {
			t.Errorf("n=%d: links %d vs %d", n, generic.Net.NumLinks(), explicit.Net.NumLinks())
		}
	}
}

func TestMultiFtreeRoutesAllPairs(t *testing.T) {
	for _, c := range [][2]int{{2, 2}, {2, 3}, {3, 2}, {2, 4}} {
		m := NewMultiFtree(c[0], c[1])
		for s := 0; s < m.Ports(); s++ {
			for d := 0; d < m.Ports(); d++ {
				if s == d {
					continue
				}
				p := m.Route(m.HostID(s), m.HostID(d))
				if !p.Valid(m.Net) {
					t.Fatalf("ftree%d(n=%d): invalid path %d->%d", c[1], c[0], s, d)
				}
				if p.Nodes[0] != NodeID(s) || p.Nodes[len(p.Nodes)-1] != NodeID(d) {
					t.Fatalf("endpoints wrong for %d->%d", s, d)
				}
				// Path length: 2 hops per level crossed, up to 2·levels.
				if p.Len() > 2*c[1] {
					t.Fatalf("path %d->%d length %d exceeds 2·levels=%d", s, d, p.Len(), 2*c[1])
				}
			}
		}
	}
}

func TestMultiFtreePathDepthsByLocality(t *testing.T) {
	m := NewMultiFtree(2, 3) // 24 hosts, bottoms of 2
	// Same bottom switch: 2 hops.
	if got := m.Route(0, 1).Len(); got != 2 {
		t.Fatalf("local route length %d", got)
	}
	// Same inner-bottom (ports 0..3 share inner bottom 0): 4 hops.
	if got := m.Route(0, 2).Len(); got != 4 {
		t.Fatalf("one-level route length %d", got)
	}
	// Far pair: full 6 hops.
	if got := m.Route(0, 23).Len(); got != 6 {
		t.Fatalf("deep route length %d", got)
	}
}

func TestMultiFtreePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMultiFtree(0, 2) },
		func() { NewMultiFtree(2, 1) },
		func() { NewMultiFtree(2, 2).Route(0, 0) },
		func() { NewMultiFtree(2, 2).HostID(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
