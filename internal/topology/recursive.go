package topology

import "fmt"

// ThreeLevelFtree is the recursively constructed three-level nonblocking
// folded-Clos network from the paper's Discussion (§IV.A): start from
// ftree(n+n², r) and realize each of the n² top-level "switches" — which
// must have radix r — as a complete two-level nonblocking
// ftree(n+n², r/n) whose r host ports attach to the r bottom switches.
//
// With the canonical parameters r = n³+n² every physical switch in the
// network has radix n+n², and the network supports n⁴+n³ hosts — the
// paper's example of building an O(N²)-port nonblocking interconnect from
// O(N²) O(N)-port switches (N = n+n²).
//
// Following Theorem 1's guidance, the *top* switches are the ones replaced
// by sub-networks (replacing bottom switches is provably less effective).
type ThreeLevelFtree struct {
	// N is the number of hosts per bottom switch.
	N int
	// R is the number of bottom switches; R must be a multiple of N.
	R int
	// M is the number of virtual top-level networks, N² for the
	// nonblocking construction.
	M int
	// InnerR is R/N: the number of bottom switches inside each virtual
	// top network (each owning N of the virtual switch's R ports).
	InnerR int
	// InnerM is N²: the top switches inside each virtual top network.
	InnerM int

	// Net is the underlying directed graph. Levels: 0 hosts, 1 bottom
	// switches, 2 inner-bottom switches, 3 inner-top switches.
	Net *Network

	hostBase    NodeID
	bottomBase  NodeID
	innerBase   NodeID // per-virtual-switch blocks of (InnerR + InnerM) switches
	hostLinkLo  LinkID
	trunkLinkLo LinkID
	innerLinkLo LinkID
}

// NewThreeLevelFtree builds the three-level construction with hosts-per-
// switch n and r bottom switches (r divisible by n). The canonical paper
// instance is NewThreeLevelFtree(n, n*n*n+n*n).
func NewThreeLevelFtree(n, r int) *ThreeLevelFtree {
	if n <= 0 || r <= 0 || r%n != 0 {
		panic(fmt.Sprintf("topology: invalid 3-level ftree: n=%d r=%d (r must be a positive multiple of n)", n, r))
	}
	t := &ThreeLevelFtree{
		N:      n,
		R:      r,
		M:      n * n,
		InnerR: r / n,
		InnerM: n * n,
		Net:    NewNetwork(fmt.Sprintf("ftree3(%d,%d)", n, r)),
	}
	t.hostBase = 0
	for v := 0; v < r; v++ {
		for k := 0; k < n; k++ {
			t.Net.AddNode(Host, 0, v*n+k, fmt.Sprintf("h%d.%d", v, k))
		}
	}
	t.bottomBase = NodeID(r * n)
	for v := 0; v < r; v++ {
		t.Net.AddNode(Switch, 1, v, fmt.Sprintf("b%d", v))
	}
	t.innerBase = t.bottomBase + NodeID(r)
	for vt := 0; vt < t.M; vt++ {
		for b := 0; b < t.InnerR; b++ {
			t.Net.AddNode(Switch, 2, vt*t.InnerR+b, fmt.Sprintf("t%d.b%d", vt, b))
		}
		for u := 0; u < t.InnerM; u++ {
			t.Net.AddNode(Switch, 3, vt*t.InnerM+u, fmt.Sprintf("t%d.t%d", vt, u))
		}
	}

	t.hostLinkLo = 0
	for v := 0; v < r; v++ {
		for k := 0; k < n; k++ {
			t.Net.AddDuplex(t.HostID(v, k), t.Bottom(v))
		}
	}
	// Bottom switch v attaches to port v of every virtual top network,
	// i.e. to inner-bottom switch v/N of that network.
	t.trunkLinkLo = LinkID(t.Net.NumLinks())
	for v := 0; v < r; v++ {
		for vt := 0; vt < t.M; vt++ {
			t.Net.AddDuplex(t.Bottom(v), t.InnerBottom(vt, v/n))
		}
	}
	t.innerLinkLo = LinkID(t.Net.NumLinks())
	for vt := 0; vt < t.M; vt++ {
		for b := 0; b < t.InnerR; b++ {
			for u := 0; u < t.InnerM; u++ {
				t.Net.AddDuplex(t.InnerBottom(vt, b), t.InnerTop(vt, u))
			}
		}
	}
	return t
}

// Ports reports the number of hosts, r·n.
func (t *ThreeLevelFtree) Ports() int { return t.R * t.N }

// Switches reports the total physical switch count:
// r + n²·(r/n + n²).
func (t *ThreeLevelFtree) Switches() int {
	return t.R + t.M*(t.InnerR+t.InnerM)
}

// HostID returns the node ID of host (v, k).
func (t *ThreeLevelFtree) HostID(v, k int) NodeID {
	if v < 0 || v >= t.R || k < 0 || k >= t.N {
		panic(fmt.Sprintf("topology: host (%d,%d) out of range in %s", v, k, t.Net.Name))
	}
	return t.hostBase + NodeID(v*t.N+k)
}

// Bottom returns the node ID of bottom switch v.
func (t *ThreeLevelFtree) Bottom(v int) NodeID {
	if v < 0 || v >= t.R {
		panic(fmt.Sprintf("topology: bottom switch %d out of range in %s", v, t.Net.Name))
	}
	return t.bottomBase + NodeID(v)
}

// InnerBottom returns the node ID of bottom switch b inside virtual top
// network vt.
func (t *ThreeLevelFtree) InnerBottom(vt, b int) NodeID {
	if vt < 0 || vt >= t.M || b < 0 || b >= t.InnerR {
		panic(fmt.Sprintf("topology: inner bottom (%d,%d) out of range in %s", vt, b, t.Net.Name))
	}
	return t.innerBase + NodeID(vt*(t.InnerR+t.InnerM)+b)
}

// InnerTop returns the node ID of top switch u inside virtual top network vt.
func (t *ThreeLevelFtree) InnerTop(vt, u int) NodeID {
	if vt < 0 || vt >= t.M || u < 0 || u >= t.InnerM {
		panic(fmt.Sprintf("topology: inner top (%d,%d) out of range in %s", vt, u, t.Net.Name))
	}
	return t.innerBase + NodeID(vt*(t.InnerR+t.InnerM)+t.InnerR+u)
}

// HostSwitch returns the bottom switch index of host id.
func (t *ThreeLevelFtree) HostSwitch(id NodeID) int {
	i := int(id - t.hostBase)
	if i < 0 || i >= t.Ports() {
		panic(fmt.Sprintf("topology: node %d is not a host in %s", id, t.Net.Name))
	}
	return i / t.N
}

// HostLocal returns the local leaf index of host id within its switch.
func (t *ThreeLevelFtree) HostLocal(id NodeID) int {
	i := int(id - t.hostBase)
	if i < 0 || i >= t.Ports() {
		panic(fmt.Sprintf("topology: node %d is not a host in %s", id, t.Net.Name))
	}
	return i % t.N
}

// Route returns the recursive Theorem-3 path for SD pair (src, dst):
// the outer level selects virtual top network (i, j) = i·n+j from the
// source and destination local indices; the inner level applies the same
// rule to the virtual switch's port numbers. Hosts on one bottom switch
// route locally; ports on one inner-bottom switch shortcut the inner top
// level.
func (t *ThreeLevelFtree) Route(src, dst NodeID) Path {
	if src == dst {
		panic("topology: Route requires distinct src and dst")
	}
	sv, i := t.HostSwitch(src), t.HostLocal(src)
	dv, j := t.HostSwitch(dst), t.HostLocal(dst)
	if sv == dv {
		p, err := t.Net.PathBetween(src, t.Bottom(sv), dst)
		if err != nil {
			panic(err)
		}
		return p
	}
	vt := i*t.N + j
	ib, id2 := sv/t.N, sv%t.N // inner "host" address of port sv
	ob, od := dv/t.N, dv%t.N
	var nodes []NodeID
	if ib == ob {
		nodes = []NodeID{src, t.Bottom(sv), t.InnerBottom(vt, ib), t.Bottom(dv), dst}
	} else {
		iu := id2*t.N + od // inner Theorem-3 top switch (i', j')
		nodes = []NodeID{src, t.Bottom(sv), t.InnerBottom(vt, ib), t.InnerTop(vt, iu), t.InnerBottom(vt, ob), t.Bottom(dv), dst}
	}
	p, err := t.Net.PathBetween(nodes...)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate performs structural self-checks: every physical switch must have
// the same radix when built with the canonical parameters, plus counts and
// connectivity.
func (t *ThreeLevelFtree) Validate() error {
	g := t.Net
	if g.NumHosts() != t.Ports() {
		return fmt.Errorf("%s: have %d hosts, want %d", g.Name, g.NumHosts(), t.Ports())
	}
	if g.NumSwitches() != t.Switches() {
		return fmt.Errorf("%s: have %d switches, want %d", g.Name, g.NumSwitches(), t.Switches())
	}
	for v := 0; v < t.R; v++ {
		if d := g.Radix(t.Bottom(v)); d != t.N+t.M {
			return fmt.Errorf("%s: bottom switch %d radix %d, want %d", g.Name, v, d, t.N+t.M)
		}
	}
	for vt := 0; vt < t.M; vt++ {
		for b := 0; b < t.InnerR; b++ {
			if d := g.Radix(t.InnerBottom(vt, b)); d != t.N+t.InnerM {
				return fmt.Errorf("%s: inner bottom (%d,%d) radix %d, want %d", g.Name, vt, b, d, t.N+t.InnerM)
			}
		}
		for u := 0; u < t.InnerM; u++ {
			if d := g.Radix(t.InnerTop(vt, u)); d != t.InnerR {
				return fmt.Errorf("%s: inner top (%d,%d) radix %d, want %d", g.Name, vt, u, d, t.InnerR)
			}
		}
	}
	if !g.Connected() {
		return fmt.Errorf("%s: not strongly connected", g.Name)
	}
	return nil
}
