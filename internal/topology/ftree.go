package topology

import "fmt"

// FoldedClos is the two-level folded-Clos (fat-tree) network ftree(n+m, r)
// of the paper: r bottom-level switches, each with n hosts below and one
// uplink to each of m top-level switches; m top-level switches of radix r.
// It supports r·n hosts and is logically equivalent to the three-stage
// Clos(n, m, r) network with input/output switch pairs merged.
//
// Node numbering follows §III of the paper: top-level switches 0..m−1,
// bottom-level switches 0..r−1, hosts 0..r·n−1 where host (v, k) = v·n+k
// is the k-th leaf of bottom switch v.
type FoldedClos struct {
	// N is the number of hosts per bottom switch.
	N int
	// M is the number of top-level switches (uplinks per bottom switch).
	M int
	// R is the number of bottom-level switches (radix of top switches).
	R int

	// Net is the underlying directed graph.
	Net *Network

	hostBase   NodeID
	bottomBase NodeID
	topBase    NodeID

	hostLinkBase LinkID // host↔bottom duplex pairs
	trunkBase    LinkID // bottom↔top duplex pairs
}

// NewFoldedClos builds ftree(n+m, r). It panics when any parameter is
// non-positive; use Validate after construction for structural self-checks.
func NewFoldedClos(n, m, r int) *FoldedClos {
	if n <= 0 || m <= 0 || r <= 0 {
		panic(fmt.Sprintf("topology: invalid ftree(%d+%d, %d): parameters must be positive", n, m, r))
	}
	f := &FoldedClos{
		N:   n,
		M:   m,
		R:   r,
		Net: NewNetwork(fmt.Sprintf("ftree(%d+%d,%d)", n, m, r)),
	}
	// Hosts first so that host IDs coincide with the paper's leaf numbers.
	f.hostBase = 0
	for v := 0; v < r; v++ {
		for k := 0; k < n; k++ {
			f.Net.AddNode(Host, 0, v*n+k, fmt.Sprintf("h%d.%d", v, k))
		}
	}
	f.bottomBase = NodeID(r * n)
	for v := 0; v < r; v++ {
		f.Net.AddNode(Switch, 1, v, fmt.Sprintf("b%d", v))
	}
	f.topBase = f.bottomBase + NodeID(r)
	for t := 0; t < m; t++ {
		f.Net.AddNode(Switch, 2, t, fmt.Sprintf("t%d", t))
	}

	f.hostLinkBase = 0
	for v := 0; v < r; v++ {
		for k := 0; k < n; k++ {
			f.Net.AddDuplex(f.HostID(v, k), f.Bottom(v))
		}
	}
	f.trunkBase = LinkID(2 * r * n)
	for v := 0; v < r; v++ {
		for t := 0; t < m; t++ {
			f.Net.AddDuplex(f.Bottom(v), f.Top(t))
		}
	}
	return f
}

// Ports reports the number of hosts the network supports (r·n).
func (f *FoldedClos) Ports() int { return f.R * f.N }

// Switches reports the total switch count (r bottom + m top).
func (f *FoldedClos) Switches() int { return f.R + f.M }

// HostID returns the node ID of host (v, k): leaf k of bottom switch v.
func (f *FoldedClos) HostID(v, k int) NodeID {
	if v < 0 || v >= f.R || k < 0 || k >= f.N {
		panic(fmt.Sprintf("topology: host (%d,%d) out of range in %s", v, k, f.Net.Name))
	}
	return f.hostBase + NodeID(v*f.N+k)
}

// Bottom returns the node ID of bottom-level switch v.
func (f *FoldedClos) Bottom(v int) NodeID {
	if v < 0 || v >= f.R {
		panic(fmt.Sprintf("topology: bottom switch %d out of range in %s", v, f.Net.Name))
	}
	return f.bottomBase + NodeID(v)
}

// Top returns the node ID of top-level switch t.
func (f *FoldedClos) Top(t int) NodeID {
	if t < 0 || t >= f.M {
		panic(fmt.Sprintf("topology: top switch %d out of range in %s", t, f.Net.Name))
	}
	return f.topBase + NodeID(t)
}

// IsHost reports whether id is a host node of this network.
func (f *FoldedClos) IsHost(id NodeID) bool {
	return id >= f.hostBase && id < f.hostBase+NodeID(f.R*f.N)
}

// HostSwitch returns the bottom switch index v of host id.
func (f *FoldedClos) HostSwitch(id NodeID) int {
	if !f.IsHost(id) {
		panic(fmt.Sprintf("topology: node %d is not a host in %s", id, f.Net.Name))
	}
	return int(id-f.hostBase) / f.N
}

// HostLocal returns the local leaf index k of host id within its switch.
func (f *FoldedClos) HostLocal(id NodeID) int {
	if !f.IsHost(id) {
		panic(fmt.Sprintf("topology: node %d is not a host in %s", id, f.Net.Name))
	}
	return int(id-f.hostBase) % f.N
}

// TopIndex returns the top-level switch index t of node id.
func (f *FoldedClos) TopIndex(id NodeID) int {
	if id < f.topBase || id >= f.topBase+NodeID(f.M) {
		panic(fmt.Sprintf("topology: node %d is not a top switch in %s", id, f.Net.Name))
	}
	return int(id - f.topBase)
}

// BottomIndex returns the bottom-level switch index v of node id.
func (f *FoldedClos) BottomIndex(id NodeID) int {
	if id < f.bottomBase || id >= f.bottomBase+NodeID(f.R) {
		panic(fmt.Sprintf("topology: node %d is not a bottom switch in %s", id, f.Net.Name))
	}
	return int(id - f.bottomBase)
}

// HostUpLink returns the directed link host (v, k) → bottom switch v.
func (f *FoldedClos) HostUpLink(v, k int) LinkID {
	f.HostID(v, k) // range check
	return f.hostLinkBase + LinkID(2*(v*f.N+k))
}

// HostDownLink returns the directed link bottom switch v → host (v, k).
func (f *FoldedClos) HostDownLink(v, k int) LinkID {
	return f.HostUpLink(v, k) + 1
}

// UpLink returns the directed trunk link bottom switch v → top switch t.
func (f *FoldedClos) UpLink(v, t int) LinkID {
	if v < 0 || v >= f.R || t < 0 || t >= f.M {
		panic(fmt.Sprintf("topology: trunk (%d,%d) out of range in %s", v, t, f.Net.Name))
	}
	return f.trunkBase + LinkID(2*(v*f.M+t))
}

// DownLink returns the directed trunk link top switch t → bottom switch v.
func (f *FoldedClos) DownLink(t, v int) LinkID {
	return f.UpLink(v, t) + 1
}

// RouteVia returns the unique path for SD pair (src, dst) through top-level
// switch t, or the intra-switch path when src and dst share a bottom switch
// (in which case t is ignored). src and dst must be distinct hosts.
func (f *FoldedClos) RouteVia(src, dst NodeID, t int) Path {
	if src == dst {
		panic("topology: RouteVia requires distinct src and dst")
	}
	sv, sk := f.HostSwitch(src), f.HostLocal(src)
	dv, dk := f.HostSwitch(dst), f.HostLocal(dst)
	if sv == dv {
		return Path{
			Nodes: []NodeID{src, f.Bottom(sv), dst},
			Links: []LinkID{f.HostUpLink(sv, sk), f.HostDownLink(dv, dk)},
		}
	}
	return Path{
		Nodes: []NodeID{src, f.Bottom(sv), f.Top(t), f.Bottom(dv), dst},
		Links: []LinkID{
			f.HostUpLink(sv, sk),
			f.UpLink(sv, t),
			f.DownLink(t, dv),
			f.HostDownLink(dv, dk),
		},
	}
}

// Subtree returns the Fig. 2 subgraph of ftree(n+m, r): the ftree(n+1, r)
// containing all bottom switches and hosts but only one top-level switch.
// It is used by the Lemma-2 analysis of how many SD pairs a single root can
// carry.
func (f *FoldedClos) Subtree() *FoldedClos {
	return NewFoldedClos(f.N, 1, f.R)
}

// Validate performs structural self-checks: port budgets of every switch,
// link count, arithmetic link-lookup consistency and strong connectivity.
// It returns the first inconsistency found, or nil.
func (f *FoldedClos) Validate() error {
	g := f.Net
	wantLinks := 2*f.R*f.N + 2*f.R*f.M
	if g.NumLinks() != wantLinks {
		return fmt.Errorf("%s: have %d links, want %d", g.Name, g.NumLinks(), wantLinks)
	}
	if g.NumHosts() != f.Ports() {
		return fmt.Errorf("%s: have %d hosts, want %d", g.Name, g.NumHosts(), f.Ports())
	}
	if g.NumSwitches() != f.Switches() {
		return fmt.Errorf("%s: have %d switches, want %d", g.Name, g.NumSwitches(), f.Switches())
	}
	for v := 0; v < f.R; v++ {
		b := f.Bottom(v)
		if d := g.OutDegree(b); d != f.N+f.M {
			return fmt.Errorf("%s: bottom switch %d out-degree %d, want %d", g.Name, v, d, f.N+f.M)
		}
		if d := g.InDegree(b); d != f.N+f.M {
			return fmt.Errorf("%s: bottom switch %d in-degree %d, want %d", g.Name, v, d, f.N+f.M)
		}
	}
	for t := 0; t < f.M; t++ {
		top := f.Top(t)
		if d := g.OutDegree(top); d != f.R {
			return fmt.Errorf("%s: top switch %d out-degree %d, want %d", g.Name, t, d, f.R)
		}
		if d := g.InDegree(top); d != f.R {
			return fmt.Errorf("%s: top switch %d in-degree %d, want %d", g.Name, t, d, f.R)
		}
	}
	// Arithmetic link IDs must agree with graph adjacency.
	for v := 0; v < f.R; v++ {
		for k := 0; k < f.N; k++ {
			if got := g.FindLink(f.HostID(v, k), f.Bottom(v)); got != f.HostUpLink(v, k) {
				return fmt.Errorf("%s: host uplink (%d,%d) mismatch: %d vs %d", g.Name, v, k, got, f.HostUpLink(v, k))
			}
			if got := g.FindLink(f.Bottom(v), f.HostID(v, k)); got != f.HostDownLink(v, k) {
				return fmt.Errorf("%s: host downlink (%d,%d) mismatch", g.Name, v, k)
			}
		}
		for t := 0; t < f.M; t++ {
			if got := g.FindLink(f.Bottom(v), f.Top(t)); got != f.UpLink(v, t) {
				return fmt.Errorf("%s: uplink (%d,%d) mismatch", g.Name, v, t)
			}
			if got := g.FindLink(f.Top(t), f.Bottom(v)); got != f.DownLink(t, v) {
				return fmt.Errorf("%s: downlink (%d,%d) mismatch", g.Name, t, v)
			}
		}
	}
	if !g.Connected() {
		return fmt.Errorf("%s: not strongly connected", g.Name)
	}
	return nil
}
