package topology

import (
	"math/rand"
	"testing"
)

func TestMPortNTreeCounts(t *testing.T) {
	cases := []struct{ m, n, hosts, switches int }{
		{4, 1, 4, 1},
		{4, 2, 8, 6},     // ftree(2+2,4): 2k^2=8 hosts, 3k=6 switches
		{20, 2, 200, 30}, // Table I row 1: FT(20,2)
		{30, 2, 450, 45}, // Table I row 2
		{42, 2, 882, 63}, // Table I row 3 (paper prints 884, see EXPERIMENTS.md)
		{4, 3, 16, 20},   // Al-Fares fat-tree with 4-port switches
		{6, 3, 54, 45},
		{4, 4, 32, 56},
	}
	for _, c := range cases {
		ft := NewMPortNTree(c.m, c.n)
		if ft.Hosts() != c.hosts {
			t.Errorf("FT(%d,%d): hosts = %d, want %d", c.m, c.n, ft.Hosts(), c.hosts)
		}
		if ft.Switches() != c.switches {
			t.Errorf("FT(%d,%d): switches = %d, want %d", c.m, c.n, ft.Switches(), c.switches)
		}
		if err := ft.Validate(); err != nil {
			t.Errorf("FT(%d,%d): %v", c.m, c.n, err)
		}
	}
}

func TestMPortNTreeFormulas(t *testing.T) {
	// hosts = 2(m/2)^n, switches = (2n-1)(m/2)^(n-1), per Lin et al.
	for _, m := range []int{4, 6, 8} {
		for _, n := range []int{2, 3} {
			ft := NewMPortNTree(m, n)
			k := m / 2
			if ft.Hosts() != 2*pow(k, n) {
				t.Errorf("FT(%d,%d) hosts formula mismatch", m, n)
			}
			if ft.Switches() != (2*n-1)*pow(k, n-1) {
				t.Errorf("FT(%d,%d) switches formula mismatch", m, n)
			}
		}
	}
}

func TestMPortNTreeInvalidParams(t *testing.T) {
	for _, c := range [][2]int{{3, 2}, {0, 2}, {4, 0}, {-2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMPortNTree(%v) should panic", c)
				}
			}()
			NewMPortNTree(c[0], c[1])
		}()
	}
}

func TestMPortNTreeUpDownPathsAllPairs(t *testing.T) {
	for _, c := range [][2]int{{4, 2}, {4, 3}, {6, 2}, {6, 3}} {
		ft := NewMPortNTree(c[0], c[1])
		hosts := ft.Net.Hosts()
		rng := rand.New(rand.NewSource(7))
		for _, s := range hosts {
			for _, d := range hosts {
				if s == d {
					continue
				}
				hops := ft.NumUpHops(s, d)
				choices := make([]int, hops)
				for i := range choices {
					choices[i] = rng.Intn(ft.K)
				}
				p, err := ft.UpDownPath(s, d, choices)
				if err != nil {
					t.Fatalf("FT(%d,%d) path %d->%d: %v", c[0], c[1], s, d, err)
				}
				if !p.Valid(ft.Net) {
					t.Fatalf("FT(%d,%d) path %d->%d invalid", c[0], c[1], s, d)
				}
				if p.Nodes[0] != s || p.Nodes[len(p.Nodes)-1] != d {
					t.Fatalf("FT(%d,%d) path endpoints wrong", c[0], c[1])
				}
				if want := 2 + 2*hops; p.Len() != want {
					t.Fatalf("FT(%d,%d) path %d->%d length %d, want %d", c[0], c[1], s, d, p.Len(), want)
				}
			}
		}
	}
}

func TestMPortNTreePathDiversity(t *testing.T) {
	// Cross-group hosts in FT(m,2) must reach each other via every top
	// switch: k distinct paths.
	ft := NewMPortNTree(6, 2)
	s := ft.HostID(0, 0)
	d := ft.HostID(3, 1)
	seen := map[NodeID]bool{}
	for x := 0; x < ft.K; x++ {
		p, err := ft.UpDownPath(s, d, []int{x})
		if err != nil {
			t.Fatal(err)
		}
		mid := p.Nodes[2]
		if seen[mid] {
			t.Fatalf("top switch %d reused", mid)
		}
		seen[mid] = true
	}
	if len(seen) != ft.K {
		t.Fatalf("distinct top switches = %d, want %d", len(seen), ft.K)
	}
}

func TestMPortNTreeSingleLevel(t *testing.T) {
	ft := NewMPortNTree(8, 1)
	if err := ft.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := ft.UpDownPath(NodeID(0), NodeID(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("single-level path length = %d", p.Len())
	}
}

func TestMPortNTreeErrors(t *testing.T) {
	ft := NewMPortNTree(4, 2)
	if _, err := ft.UpDownPath(ft.HostID(0, 0), ft.HostID(0, 0), nil); err == nil {
		t.Fatal("src == dst should error")
	}
	if _, err := ft.UpDownPath(ft.HostID(0, 0), ft.HostID(1, 0), nil); err == nil {
		t.Fatal("missing up choices should error")
	}
	if _, err := ft.UpDownPath(ft.HostID(0, 0), ft.HostID(1, 0), []int{9}); err == nil {
		t.Fatal("out-of-range up choice should error")
	}
}

func TestMPortNTreeEquivalentToFtree(t *testing.T) {
	// FT(2k, 2) must be structurally identical to ftree(k+k, 2k).
	k := 3
	ft := NewMPortNTree(2*k, 2)
	f2 := NewFoldedClos(k, k, 2*k)
	if ft.Hosts() != f2.Ports() || ft.Switches() != f2.Switches() {
		t.Fatal("FT(2k,2) vs ftree(k+k,2k) size mismatch")
	}
	if ft.Net.NumLinks() != f2.Net.NumLinks() {
		t.Fatal("link count mismatch")
	}
}

func TestKAryNTreeCounts(t *testing.T) {
	for _, c := range []struct{ k, n int }{{2, 2}, {2, 3}, {3, 2}, {3, 3}, {4, 2}, {2, 4}} {
		tr := NewKAryNTree(c.k, c.n)
		if tr.Hosts() != pow(c.k, c.n) {
			t.Errorf("%d-ary %d-tree hosts = %d", c.k, c.n, tr.Hosts())
		}
		if tr.Switches() != c.n*pow(c.k, c.n-1) {
			t.Errorf("%d-ary %d-tree switches = %d", c.k, c.n, tr.Switches())
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%d-ary %d-tree: %v", c.k, c.n, err)
		}
	}
}

func TestKAryNTreePathsAllPairs(t *testing.T) {
	for _, c := range []struct{ k, n int }{{2, 3}, {3, 2}, {3, 3}} {
		tr := NewKAryNTree(c.k, c.n)
		rng := rand.New(rand.NewSource(11))
		for s := 0; s < tr.Hosts(); s++ {
			for d := 0; d < tr.Hosts(); d++ {
				if s == d {
					continue
				}
				hops := tr.NumUpHops(NodeID(s), NodeID(d))
				choices := make([]int, hops)
				for i := range choices {
					choices[i] = rng.Intn(c.k)
				}
				p, err := tr.UpDownPath(NodeID(s), NodeID(d), choices)
				if err != nil {
					t.Fatalf("%d-ary %d-tree %d->%d: %v", c.k, c.n, s, d, err)
				}
				if !p.Valid(tr.Net) {
					t.Fatalf("%d-ary %d-tree %d->%d invalid path", c.k, c.n, s, d)
				}
				if want := 2 + 2*hops; p.Len() != want {
					t.Fatalf("%d-ary %d-tree %d->%d length %d, want %d", c.k, c.n, s, d, p.Len(), want)
				}
			}
		}
	}
}

func TestKAryNTreeErrors(t *testing.T) {
	tr := NewKAryNTree(2, 2)
	if _, err := tr.UpDownPath(0, 0, nil); err == nil {
		t.Fatal("src == dst should error")
	}
	if _, err := tr.UpDownPath(0, 3, nil); err == nil {
		t.Fatal("missing choices should error")
	}
	if _, err := tr.UpDownPath(0, 3, []int{5}); err == nil {
		t.Fatal("bad choice should error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("invalid params should panic")
			}
		}()
		NewKAryNTree(1, 2)
	}()
}

func TestThreeLevelFtreeStructure(t *testing.T) {
	for _, n := range []int{2, 3} {
		r := n*n*n + n*n
		tl := NewThreeLevelFtree(n, r)
		if err := tl.Validate(); err != nil {
			t.Fatalf("ftree3(n=%d): %v", n, err)
		}
		if tl.Ports() != n*n*n*n+n*n*n {
			t.Fatalf("ftree3(n=%d): ports = %d, want n^4+n^3", n, tl.Ports())
		}
		// Corrected switch count: 2n^4 + 2n^3 + n^2 (the paper prints
		// 2n^4+3n^3+n^2; see EXPERIMENTS.md E8).
		want := 2*n*n*n*n + 2*n*n*n + n*n
		if tl.Switches() != want {
			t.Fatalf("ftree3(n=%d): switches = %d, want %d", n, tl.Switches(), want)
		}
		// Canonical construction: every physical switch has radix n+n².
		radix := n + n*n
		for v := 0; v < tl.R; v++ {
			if d := tl.Net.Radix(tl.Bottom(v)); d != radix {
				t.Fatalf("bottom radix %d, want %d", d, radix)
			}
		}
		if d := tl.Net.Radix(tl.InnerBottom(0, 0)); d != radix {
			t.Fatalf("inner bottom radix %d, want %d", d, radix)
		}
		if d := tl.Net.Radix(tl.InnerTop(0, 0)); d != radix {
			t.Fatalf("inner top radix %d, want %d", d, radix)
		}
	}
}

func TestThreeLevelFtreeRoutes(t *testing.T) {
	n := 2
	tl := NewThreeLevelFtree(n, n*n*n+n*n)
	hosts := tl.Net.Hosts()
	for _, s := range hosts {
		for _, d := range hosts {
			if s == d {
				continue
			}
			p := tl.Route(s, d)
			if !p.Valid(tl.Net) {
				t.Fatalf("route %d->%d invalid", s, d)
			}
			if p.Nodes[0] != s || p.Nodes[len(p.Nodes)-1] != d {
				t.Fatalf("route %d->%d endpoints wrong", s, d)
			}
			sv, dv := tl.HostSwitch(s), tl.HostSwitch(d)
			switch {
			case sv == dv:
				if p.Len() != 2 {
					t.Fatalf("intra-switch route length %d", p.Len())
				}
			case sv/n == dv/n:
				if p.Len() != 4 {
					t.Fatalf("same-inner-bottom route length %d", p.Len())
				}
			default:
				if p.Len() != 6 {
					t.Fatalf("full route length %d", p.Len())
				}
			}
		}
	}
}

func TestThreeLevelFtreeInvalidParams(t *testing.T) {
	for _, c := range [][2]int{{0, 4}, {2, 0}, {2, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewThreeLevelFtree(%v) should panic", c)
				}
			}()
			NewThreeLevelFtree(c[0], c[1])
		}()
	}
}

func TestDigitHelpers(t *testing.T) {
	d := toDigits(23, 5, 3) // 23 = 0*25+4*5+3
	if d[0] != 3 || d[1] != 4 || d[2] != 0 {
		t.Fatalf("toDigits(23,5,3) = %v", d)
	}
	if fromDigits(d, 5) != 23 {
		t.Fatalf("fromDigits roundtrip failed: %v", d)
	}
	if pow(3, 4) != 81 || pow(7, 0) != 1 {
		t.Fatal("pow wrong")
	}
	if digitsLabel(23, 5, 3) != "043" {
		t.Fatalf("digitsLabel = %q", digitsLabel(23, 5, 3))
	}
	if digitsLabel(0, 5, 0) != "0" {
		t.Fatalf("digitsLabel empty = %q", digitsLabel(0, 5, 0))
	}
	if maxInt(2, 5) != 5 || maxInt(5, 2) != 5 {
		t.Fatal("maxInt wrong")
	}
}
