package topology

import (
	"strings"
	"testing"
)

func TestNetworkAddNodeAndLink(t *testing.T) {
	g := NewNetwork("test")
	a := g.AddNode(Host, 0, 0, "a")
	b := g.AddNode(Switch, 1, 0, "b")
	c := g.AddNode(Host, 0, 1, "")
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("unexpected node IDs: %d %d %d", a, b, c)
	}
	if g.NumNodes() != 3 || g.NumHosts() != 2 || g.NumSwitches() != 1 {
		t.Fatalf("counts wrong: nodes=%d hosts=%d switches=%d", g.NumNodes(), g.NumHosts(), g.NumSwitches())
	}
	l1 := g.AddLink(a, b)
	l2 := g.AddLink(b, a)
	if l1 != 0 || l2 != 1 {
		t.Fatalf("unexpected link IDs: %d %d", l1, l2)
	}
	if g.FindLink(a, b) != l1 || g.FindLink(b, a) != l2 {
		t.Fatal("FindLink mismatch")
	}
	if g.FindLink(a, c) != NoLink {
		t.Fatal("FindLink should report NoLink for non-adjacent nodes")
	}
	if g.OutDegree(a) != 1 || g.InDegree(a) != 1 {
		t.Fatalf("degrees wrong: out=%d in=%d", g.OutDegree(a), g.InDegree(a))
	}
}

func TestNetworkDefaultLabel(t *testing.T) {
	g := NewNetwork("test")
	id := g.AddNode(Switch, 2, 7, "")
	if got := g.Node(id).Label; got != "switch-2-7" {
		t.Fatalf("default label = %q", got)
	}
}

func TestNetworkDuplicateLinkPanics(t *testing.T) {
	g := NewNetwork("test")
	a := g.AddNode(Host, 0, 0, "a")
	b := g.AddNode(Switch, 1, 0, "b")
	g.AddLink(a, b)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate link")
		}
	}()
	g.AddLink(a, b)
}

func TestNetworkSelfLoopPanics(t *testing.T) {
	g := NewNetwork("test")
	a := g.AddNode(Switch, 1, 0, "a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	g.AddLink(a, a)
}

func TestNetworkRadixCollapsesDuplex(t *testing.T) {
	g := NewNetwork("test")
	a := g.AddNode(Switch, 1, 0, "a")
	b := g.AddNode(Switch, 1, 1, "b")
	c := g.AddNode(Switch, 1, 2, "c")
	g.AddDuplex(a, b)
	g.AddDuplex(a, c)
	if r := g.Radix(a); r != 2 {
		t.Fatalf("radix = %d, want 2", r)
	}
}

func TestNetworkNeighbors(t *testing.T) {
	g := NewNetwork("test")
	a := g.AddNode(Switch, 1, 0, "a")
	b := g.AddNode(Switch, 1, 1, "b")
	c := g.AddNode(Switch, 1, 2, "c")
	g.AddDuplex(a, c)
	g.AddDuplex(a, b)
	nb := g.Neighbors(a)
	if len(nb) != 2 || nb[0] != b || nb[1] != c {
		t.Fatalf("Neighbors = %v, want [%d %d] sorted", nb, b, c)
	}
}

func TestShortestPath(t *testing.T) {
	f := NewFoldedClos(2, 3, 4)
	src := f.HostID(0, 0)
	dst := f.HostID(3, 1)
	p, err := f.Net.ShortestPath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("cross-switch shortest path length = %d, want 4", p.Len())
	}
	if !p.Valid(f.Net) {
		t.Fatal("path not valid")
	}
	// Same-switch pair: 2 hops.
	p, err = f.Net.ShortestPath(f.HostID(1, 0), f.HostID(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("same-switch shortest path length = %d, want 2", p.Len())
	}
}

func TestShortestPathSelf(t *testing.T) {
	f := NewFoldedClos(2, 2, 3)
	p, err := f.Net.ShortestPath(f.HostID(0, 0), f.HostID(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 || len(p.Nodes) != 1 {
		t.Fatalf("self path = %+v", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewNetwork("test")
	a := g.AddNode(Host, 0, 0, "a")
	b := g.AddNode(Host, 0, 1, "b")
	g.AddLink(a, b) // one-way only
	if _, err := g.ShortestPath(b, a); err == nil {
		t.Fatal("expected error for unreachable destination")
	}
}

func TestPathBetweenRejectsNonAdjacent(t *testing.T) {
	f := NewFoldedClos(2, 2, 3)
	_, err := f.Net.PathBetween(f.HostID(0, 0), f.HostID(1, 0))
	if err == nil {
		t.Fatal("expected error: hosts are not adjacent")
	}
}

func TestPathValidRejectsCorrupt(t *testing.T) {
	f := NewFoldedClos(2, 2, 3)
	p, err := f.Net.PathBetween(f.HostID(0, 0), f.Bottom(0))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid(f.Net) {
		t.Fatal("valid path reported invalid")
	}
	bad := Path{Nodes: p.Nodes, Links: []LinkID{p.Links[0] + 1}}
	if bad.Valid(f.Net) {
		t.Fatal("corrupt path reported valid")
	}
	empty := Path{}
	if empty.Valid(f.Net) {
		t.Fatal("empty path reported valid")
	}
}

func TestConnected(t *testing.T) {
	f := NewFoldedClos(2, 2, 3)
	if !f.Net.Connected() {
		t.Fatal("ftree should be strongly connected")
	}
	g := NewNetwork("disconnected")
	g.AddNode(Host, 0, 0, "a")
	g.AddNode(Host, 0, 1, "b")
	if g.Connected() {
		t.Fatal("two isolated nodes reported connected")
	}
}

func TestSwitchIDsAndMaxLevel(t *testing.T) {
	f := NewFoldedClos(2, 3, 4)
	if got := len(f.Net.SwitchIDs(1)); got != 4 {
		t.Fatalf("level-1 switches = %d, want 4", got)
	}
	if got := len(f.Net.SwitchIDs(2)); got != 3 {
		t.Fatalf("level-2 switches = %d, want 3", got)
	}
	if got := f.Net.MaxSwitchLevel(); got != 2 {
		t.Fatalf("MaxSwitchLevel = %d, want 2", got)
	}
}

func TestNodeKindString(t *testing.T) {
	if Host.String() != "host" || Switch.String() != "switch" {
		t.Fatal("NodeKind.String mismatch")
	}
	if s := NodeKind(9).String(); !strings.Contains(s, "9") {
		t.Fatalf("unknown kind string = %q", s)
	}
}
