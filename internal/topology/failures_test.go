package topology

import "testing"

func TestFailureSetNormalizeAndKey(t *testing.T) {
	f := NewFoldedClos(2, 4, 3)
	a := FailureSet{
		Tops:    []int{3, 1, 3},
		Bottoms: []int{2, 2},
		Trunks: []Trunk{
			{Bottom: 0, Top: 2},
			{Bottom: 0, Top: 2}, // duplicate
			{Bottom: 2, Top: 0}, // implied by failed bottom 2
			{Bottom: 1, Top: 3}, // implied by failed top 3
		},
	}
	b := FailureSet{
		Tops:    []int{1, 3},
		Bottoms: []int{2},
		Trunks:  []Trunk{{Bottom: 0, Top: 2}},
	}
	if got, want := a.Key(), b.Key(); got != want {
		t.Fatalf("keys differ: %q vs %q", got, want)
	}
	a.Normalize()
	if len(a.Tops) != 2 || len(a.Bottoms) != 1 || len(a.Trunks) != 1 {
		t.Fatalf("normalize: got %+v", a)
	}
	if a.Count() != 4 {
		t.Fatalf("count: got %d, want 4", a.Count())
	}
	if err := a.Validate(f); err != nil {
		t.Fatalf("validate: %v", err)
	}
	bad := FailureSet{Tops: []int{4}}
	if err := bad.Validate(f); err == nil {
		t.Fatal("expected range error for top 4 of m=4")
	}
	if (&FailureSet{}).Key() != "t;b;l" {
		t.Fatalf("empty key: %q", (&FailureSet{}).Key())
	}
}

func TestFailureViewLookups(t *testing.T) {
	f := NewFoldedClos(2, 4, 3)
	fs := FailureSet{
		Tops:    []int{1},
		Bottoms: []int{2},
		Trunks:  []Trunk{{Bottom: 0, Top: 3}},
	}
	v, err := fs.View(f)
	if err != nil {
		t.Fatal(err)
	}
	if !v.TopFailed(1) || v.TopFailed(0) {
		t.Fatal("TopFailed wrong")
	}
	if !v.BottomFailed(2) || v.BottomFailed(0) {
		t.Fatal("BottomFailed wrong")
	}
	// Trunk health subsumes switch health.
	for b := 0; b < f.R; b++ {
		if !v.TrunkFailed(b, 1) {
			t.Fatalf("trunk (%d,1) should fail with top 1", b)
		}
		if !v.TrunkFailed(2, b%f.M) {
			t.Fatal("trunks of bottom 2 should fail with it")
		}
	}
	if !v.TrunkFailed(0, 3) || v.TrunkFailed(1, 3) {
		t.Fatal("cable failure misplaced")
	}
	// TopIntact: 1 failed; 3 has a failed cable to alive bottom 0; 0 and
	// 2 only lose trunks to dead bottom 2, which no surviving pair can
	// use, so they stay intact.
	if got := v.IntactTops(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("IntactTops: %v", got)
	}

	if v.HostAlive(4) || v.HostAlive(5) {
		t.Fatal("hosts of bottom 2 should be detached")
	}
	alive := v.AliveHosts()
	if len(alive) != 4 {
		t.Fatalf("alive hosts: %v", alive)
	}
	// Paths through failed elements are unhealthy.
	if v.PathHealthy(f.RouteVia(f.HostID(0, 0), f.HostID(1, 0), 1)) {
		t.Fatal("path via failed top 1 should be unhealthy")
	}
	if v.PathHealthy(f.RouteVia(f.HostID(0, 0), f.HostID(1, 0), 3)) {
		t.Fatal("path over failed cable (0,3) should be unhealthy")
	}
	if !v.PathHealthy(f.RouteVia(f.HostID(0, 0), f.HostID(1, 0), 0)) {
		t.Fatal("path via healthy top 0 should be healthy")
	}
	if v.PathHealthy(f.RouteVia(f.HostID(2, 0), f.HostID(0, 0), 0)) {
		t.Fatal("path from a detached host should be unhealthy")
	}

	if !v.LinkFailed(f.HostUpLink(2, 1)) || v.LinkFailed(f.HostUpLink(1, 1)) {
		t.Fatal("host-link health wrong")
	}
	if !v.NodeFailed(f.Top(1)) || v.NodeFailed(f.Top(0)) || !v.NodeFailed(f.Bottom(2)) || !v.NodeFailed(f.HostID(2, 0)) {
		t.Fatal("NodeFailed wrong")
	}
}
