package topology

import "fmt"

// MPortNTree is the m-port n-tree FT(m, n) of Lin, Chung and Huang [12],
// the rearrangeably nonblocking folded-Clos family the paper's Table I
// compares against. Built from m-port switches (m even, k = m/2), it
// supports 2·k^n hosts with (2n−1)·k^(n−1) switches. FT(m, 2) is
// ftree(k+k, 2k); FT(m, 3) is the classic three-level "fat-tree" used in
// commodity clusters.
//
// Addressing: hosts are (q, u_{n−2}, …, u_0) with q ∈ [0, 2k) selecting one
// of 2k subtree groups ("pods" when n = 3) and u_j ∈ [0, k). Switch levels
// run 0 (leaf) … n−1 (top). Non-top level-l switches are (q, d_{n−2}, …,
// d_1); top switches are (x, d_{n−2}, …, d_1) with x ∈ [0, k). A level-l
// switch connects upward to the k level-(l+1) switches that agree with it on
// every digit except d_{l+1} (the top level plays the role of digit n−1 via
// x). Consequently an up-path from a leaf to level l freely chooses digits
// d_1…d_l, which is exactly the path diversity multipath and adaptive
// schemes exploit.
type MPortNTree struct {
	// M is the switch port count (even).
	M int
	// Levels is n, the number of switch levels.
	Levels int
	// K is M/2.
	K int

	// Net is the underlying directed graph.
	Net *Network

	hostBase NodeID
	lvlBase  []NodeID // lvlBase[l] is the first switch ID of level l
}

// NewMPortNTree builds FT(m, n). m must be even and ≥ 2; n ≥ 1. FT(m, 1) is
// a single m-port switch with m hosts.
func NewMPortNTree(m, n int) *MPortNTree {
	if m < 2 || m%2 != 0 {
		panic(fmt.Sprintf("topology: FT(%d,%d): m must be even and >= 2", m, n))
	}
	if n < 1 {
		panic(fmt.Sprintf("topology: FT(%d,%d): n must be >= 1", m, n))
	}
	k := m / 2
	t := &MPortNTree{M: m, Levels: n, K: k, Net: NewNetwork(fmt.Sprintf("FT(%d,%d)", m, n))}

	if n == 1 {
		t.hostBase = 0
		for i := 0; i < m; i++ {
			t.Net.AddNode(Host, 0, i, fmt.Sprintf("h%d", i))
		}
		sw := t.Net.AddNode(Switch, 1, 0, "s0")
		t.lvlBase = []NodeID{sw}
		for i := 0; i < m; i++ {
			t.Net.AddDuplex(NodeID(i), sw)
		}
		return t
	}

	groupSz := pow(k, n-1) // hosts per q group
	t.hostBase = 0
	for q := 0; q < 2*k; q++ {
		for u := 0; u < groupSz; u++ {
			t.Net.AddNode(Host, 0, q*groupSz+u, fmt.Sprintf("h%d.%s", q, digitsLabel(u, k, n-1)))
		}
	}
	// Non-top levels: 2k·k^(n−2) switches each; top level: k^(n−1).
	nonTop := 2 * k * pow(k, n-2)
	t.lvlBase = make([]NodeID, n)
	for l := 0; l < n-1; l++ {
		t.lvlBase[l] = NodeID(t.Net.NumNodes())
		for i := 0; i < nonTop; i++ {
			t.Net.AddNode(Switch, l+1, i, fmt.Sprintf("L%d.%d", l, i))
		}
	}
	t.lvlBase[n-1] = NodeID(t.Net.NumNodes())
	top := pow(k, n-1)
	for i := 0; i < top; i++ {
		t.Net.AddNode(Switch, n, i, fmt.Sprintf("T%d", i))
	}

	// Host ↔ leaf switch.
	for q := 0; q < 2*k; q++ {
		for u := 0; u < groupSz; u++ {
			t.Net.AddDuplex(t.HostID(q, u), t.SwitchID(0, q, u/k))
		}
	}
	// Level l ↔ l+1, both non-top: vary digit d_{l+1} (index l in the
	// (n−2)-digit switch suffix, counting d_1 as index 0).
	for l := 0; l+1 < n-1; l++ {
		stride := pow(k, l) // weight of digit d_{l+1} within the suffix
		for q := 0; q < 2*k; q++ {
			for s := 0; s < pow(k, n-2); s++ {
				lo := t.SwitchID(l, q, s)
				base := s - (s/stride%k)*stride
				for d := 0; d < k; d++ {
					hi := t.SwitchID(l+1, q, base+d*stride)
					t.Net.AddDuplex(lo, hi)
				}
			}
		}
	}
	// Level n−2 ↔ top: suffix digits all agree; top adds digit x.
	if n >= 2 {
		suf := pow(k, n-2)
		for q := 0; q < 2*k; q++ {
			for s := 0; s < suf; s++ {
				lo := t.SwitchID(n-2, q, s)
				for x := 0; x < k; x++ {
					t.Net.AddDuplex(lo, t.lvlBase[n-1]+NodeID(x*suf+s))
				}
			}
		}
	}
	return t
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

func digitsLabel(v, base, digits int) string {
	s := ""
	for i := 0; i < digits; i++ {
		s = fmt.Sprintf("%d", v%base) + s
		v /= base
	}
	if s == "" {
		s = "0"
	}
	return s
}

// Hosts reports the number of hosts, 2·k^n.
func (t *MPortNTree) Hosts() int {
	if t.Levels == 1 {
		return t.M
	}
	return 2 * pow(t.K, t.Levels)
}

// Switches reports the total switch count, (2n−1)·k^(n−1).
func (t *MPortNTree) Switches() int {
	if t.Levels == 1 {
		return 1
	}
	return (2*t.Levels - 1) * pow(t.K, t.Levels-1)
}

// HostID returns the node ID of the host with group q and in-group index u
// (u encodes digits u_{n−2}…u_0 in base k).
func (t *MPortNTree) HostID(q, u int) NodeID {
	groupSz := pow(t.K, t.Levels-1)
	if q < 0 || q >= 2*t.K || u < 0 || u >= groupSz {
		panic(fmt.Sprintf("topology: host (%d,%d) out of range in %s", q, u, t.Net.Name))
	}
	return t.hostBase + NodeID(q*groupSz+u)
}

// SwitchID returns the node ID of the non-top switch at level l with group q
// and suffix index s (s encodes digits d_{n−2}…d_1 in base k). For the top
// level use TopID.
func (t *MPortNTree) SwitchID(l, q, s int) NodeID {
	if l < 0 || l >= t.Levels-1 {
		panic(fmt.Sprintf("topology: level %d out of range in %s", l, t.Net.Name))
	}
	suf := pow(t.K, t.Levels-2)
	if q < 0 || q >= 2*t.K || s < 0 || s >= suf {
		panic(fmt.Sprintf("topology: switch (l=%d,q=%d,s=%d) out of range in %s", l, q, s, t.Net.Name))
	}
	return t.lvlBase[l] + NodeID(q*suf+s)
}

// TopID returns the node ID of top-level switch (x, s): x ∈ [0, k) and s the
// (n−2)-digit suffix shared with the level-(n−2) switches below it.
func (t *MPortNTree) TopID(x, s int) NodeID {
	suf := pow(t.K, t.Levels-2)
	if x < 0 || x >= t.K || s < 0 || s >= suf {
		panic(fmt.Sprintf("topology: top switch (%d,%d) out of range in %s", x, s, t.Net.Name))
	}
	return t.lvlBase[t.Levels-1] + NodeID(x*suf+s)
}

// HostAddr decomposes a host node ID into (q, u).
func (t *MPortNTree) HostAddr(id NodeID) (q, u int) {
	groupSz := pow(t.K, t.Levels-1)
	i := int(id - t.hostBase)
	if i < 0 || i >= 2*t.K*groupSz {
		panic(fmt.Sprintf("topology: node %d is not a host in %s", id, t.Net.Name))
	}
	return i / groupSz, i % groupSz
}

// UpDownPath returns the up*/down* path from host src to host dst.
// upChoices supplies the free digit selected at each up step (values in
// [0, k)); its length must be at least the number of up hops. For hosts in
// the same group the path climbs only to the first level where the
// addresses merge; for hosts in different groups it climbs to the top.
func (t *MPortNTree) UpDownPath(src, dst NodeID, upChoices []int) (Path, error) {
	if t.Levels == 1 {
		return t.Net.PathBetween(src, t.lvlBase[0], dst)
	}
	qs, us := t.HostAddr(src)
	qd, ud := t.HostAddr(dst)
	if src == dst {
		return Path{}, fmt.Errorf("topology: src == dst")
	}
	k, n := t.K, t.Levels
	sdig := toDigits(us, k, n-1) // u_0 … u_{n−2}
	ddig := toDigits(ud, k, n-1)

	// Climb height: same leaf switch → 0 hops beyond leaf; same group →
	// highest differing digit index; different group → through the top.
	topMost := 0 // switch level of the path apex
	if qs == qd {
		for j := n - 2; j >= 1; j-- {
			if sdig[j] != ddig[j] {
				topMost = j
				break
			}
		}
	} else {
		topMost = n - 1
	}

	nodes := []NodeID{src}
	// d[j] holds suffix digit d_{j+1}, whose weight within the suffix
	// index is k^j.
	suffix := func(d []int) int {
		s := 0
		for j := 0; j <= n-3; j++ {
			s += d[j] * pow(k, j)
		}
		return s
	}
	d := make([]int, maxInt(n-2, 0))
	for j := 0; j <= n-3; j++ {
		d[j] = sdig[j+1] // leaf switch suffix = source digits u_1…u_{n−2}
	}
	nodes = append(nodes, t.SwitchID(0, qs, suffix(d)))

	need := topMost // up hops beyond the leaf switch
	if len(upChoices) < need {
		return Path{}, fmt.Errorf("topology: need %d up choices, have %d", need, len(upChoices))
	}
	for _, c := range upChoices[:need] {
		if c < 0 || c >= k {
			return Path{}, fmt.Errorf("topology: up choice %d out of [0,%d)", c, k)
		}
	}
	// Ascend.
	for l := 0; l < topMost; l++ {
		if l+1 <= n-2 {
			// moving to non-top level l+1: digit d_{l+1} ← choice
			d[l] = upChoices[l]
			nodes = append(nodes, t.SwitchID(l+1, qs, suffix(d)))
		} else {
			// moving to the top level: x ← choice
			nodes = append(nodes, t.TopID(upChoices[l], suffix(d)))
		}
	}
	// Descend.
	for l := topMost; l > 0; l-- {
		if l == n-1 {
			// top → level n−2 in the destination group; suffix unchanged
			nodes = append(nodes, t.SwitchID(n-2, qd, suffix(d)))
		} else {
			// level l → l−1: digit d_l ← destination digit u_l
			d[l-1] = ddig[l]
			nodes = append(nodes, t.SwitchID(l-1, qd, suffix(d)))
		}
	}
	nodes = append(nodes, dst)
	return t.Net.PathBetween(nodes...)
}

// NumUpHops reports how many free up-hop choices a path from src to dst has
// (0 when the hosts share a leaf switch).
func (t *MPortNTree) NumUpHops(src, dst NodeID) int {
	if t.Levels == 1 {
		return 0
	}
	qs, us := t.HostAddr(src)
	qd, ud := t.HostAddr(dst)
	if qs != qd {
		return t.Levels - 1
	}
	sdig := toDigits(us, t.K, t.Levels-1)
	ddig := toDigits(ud, t.K, t.Levels-1)
	for j := t.Levels - 2; j >= 1; j-- {
		if sdig[j] != ddig[j] {
			return j
		}
	}
	return 0
}

// Validate performs structural self-checks: host/switch counts, switch
// radixes and strong connectivity.
func (t *MPortNTree) Validate() error {
	g := t.Net
	if g.NumHosts() != t.Hosts() {
		return fmt.Errorf("%s: have %d hosts, want %d", g.Name, g.NumHosts(), t.Hosts())
	}
	if g.NumSwitches() != t.Switches() {
		return fmt.Errorf("%s: have %d switches, want %d", g.Name, g.NumSwitches(), t.Switches())
	}
	for id := NodeID(0); int(id) < g.NumNodes(); id++ {
		nd := g.Node(id)
		if nd.Kind != Switch {
			continue
		}
		r := g.Radix(id)
		if t.Levels == 1 {
			if r != t.M {
				return fmt.Errorf("%s: switch %d radix %d, want %d", g.Name, id, r, t.M)
			}
			continue
		}
		if r != t.M {
			return fmt.Errorf("%s: switch %q radix %d, want m=%d", g.Name, nd.Label, r, t.M)
		}
	}
	if !g.Connected() {
		return fmt.Errorf("%s: not strongly connected", g.Name)
	}
	return nil
}

// toDigits returns v written in base `base` with `digits` digits, least
// significant first.
func toDigits(v, base, digits int) []int {
	d := make([]int, digits)
	for i := 0; i < digits; i++ {
		d[i] = v % base
		v /= base
	}
	return d
}

// fromDigits folds base-`base` digits (least significant first) into an int.
func fromDigits(d []int, base int) int {
	v := 0
	for i := len(d) - 1; i >= 0; i-- {
		v = v*base + d[i]
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
