package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// CollectiveRow is one workload × router cell of experiment E13.
type CollectiveRow struct {
	Workload       string
	Phases         int
	CrossbarCycles int64
	Rows           []CollectiveCell
}

// CollectiveCell is one router's outcome for a workload.
type CollectiveCell struct {
	Router          string
	TotalCycles     int64
	Slowdown        float64
	ContendedPhases int
}

// CollectivesResult is experiment E13: bulk-synchronous collective
// completion time on the nonblocking network vs static routing vs the
// crossbar reference.
type CollectivesResult struct {
	Hosts int
	Rows  []CollectiveRow
}

// Collectives simulates the standard collective workloads on
// ftree(n+n², n+n²) under the Theorem-3 routing and destination-mod static
// routing, against the crossbar.
func Collectives(n int, seed int64, cfg sim.Config) (*CollectivesResult, error) {
	f := topology.NewFoldedClos(n, n*n, n+n*n)
	hosts := f.Ports()
	paper, err := routing.NewPaperDeterministic(f)
	if err != nil {
		return nil, err
	}
	routers := []routing.Router{paper, routing.NewDestMod(f)}
	res := &CollectivesResult{Hosts: hosts}

	a2a, err := workload.AllToAll(hosts)
	if err != nil {
		return nil, err
	}
	ring, err := workload.RingExchange(hosts)
	if err != nil {
		return nil, err
	}
	random, err := workload.RandomPhases(hosts, 6, seed)
	if err != nil {
		return nil, err
	}
	workloads := []*workload.Workload{a2a, ring, random}
	// A square transpose when the host count allows.
	for d := 2; d*d <= hosts; d++ {
		if d*d == hosts {
			tr, err := workload.TransposeWorkload(d, d)
			if err != nil {
				return nil, err
			}
			workloads = append(workloads, tr)
		}
	}
	for _, w := range workloads {
		ref, err := workload.RunCrossbar(w, cfg)
		if err != nil {
			return nil, err
		}
		row := CollectiveRow{Workload: w.Name, Phases: len(w.Phases), CrossbarCycles: ref.TotalCycles}
		for _, rt := range routers {
			out, err := workload.Run(f.Net, rt, w, cfg)
			if err != nil {
				return nil, err
			}
			row.Rows = append(row.Rows, CollectiveCell{
				Router:          rt.Name(),
				TotalCycles:     out.TotalCycles,
				Slowdown:        out.Slowdown(ref),
				ContendedPhases: out.ContendedPhases(),
			})
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the collectives table.
func (t *CollectivesResult) Render(w io.Writer) {
	fmt.Fprintf(w, "bulk-synchronous collectives on %d hosts, completion vs crossbar\n", t.Hosts)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "collective\tphases\tcrossbar\trouting\tcycles\tslowdown\tcontended phases")
	for _, row := range t.Rows {
		for i, cell := range row.Rows {
			name, phases, ref := row.Workload, fmt.Sprint(row.Phases), fmt.Sprint(row.CrossbarCycles)
			if i > 0 {
				name, phases, ref = "", "", ""
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%.2f\t%d\n",
				name, phases, ref, cell.Router, cell.TotalCycles, cell.Slowdown, cell.ContendedPhases)
		}
	}
	tw.Flush()
	fmt.Fprintln(w, "note: shift-structured collectives happen to avoid dest-mod collisions on")
	fmt.Fprintln(w, "      this configuration; random phases expose the static-routing penalty.")
}
