package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestOversubExperiment(t *testing.T) {
	res, err := Oversub(2, 6, 30, 1, sim.Config{PacketFlits: 2, PacketsPerPair: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	var atN2, belowN2 *OversubRow
	for i := range res.Rows {
		r := &res.Rows[i]
		if r.Router == "global-rearrangeable" {
			if r.BlockFraction != 0 {
				t.Errorf("centralized routing blocked at m=%d", r.M)
			}
			continue
		}
		if r.M == 4 {
			atN2 = r
		}
		if r.M == 2 {
			belowN2 = r
		}
	}
	if atN2 == nil || belowN2 == nil {
		t.Fatalf("rows missing: %+v", res.Rows)
	}
	if atN2.BlockFraction != 0 {
		t.Errorf("m=n² deterministic blocked: %+v", atN2)
	}
	if belowN2.BlockFraction == 0 {
		t.Errorf("m<n² deterministic should block: %+v", belowN2)
	}
	if belowN2.MeanSlowdown <= atN2.MeanSlowdown {
		t.Errorf("oversubscribed slowdown %.2f not above provisioned %.2f",
			belowN2.MeanSlowdown, atN2.MeanSlowdown)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "oversub") {
		t.Error("render incomplete")
	}
}
