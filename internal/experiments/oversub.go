package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/analysis"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// OversubRow is one provisioning point of experiment E15.
type OversubRow struct {
	M int
	// Oversubscription is n²/m: 1.0 = the paper's nonblocking point.
	Oversubscription float64
	// Switches is the network cost r+m.
	Switches int
	// Router names the scheme evaluated at this m.
	Router string
	// BlockFraction is P(contention) over random permutations.
	BlockFraction float64
	// MeanSlowdown is the simulated slowdown vs crossbar.
	MeanSlowdown float64
}

// OversubResult is experiment E15: the cost/performance frontier of
// under-provisioned ("oversubscribed") folded-Clos networks — the
// feasibility analysis under cost constraints the paper's introduction
// motivates. For m < n² no routing is nonblocking (Theorem 2); the table
// quantifies how performance degrades as m shrinks, using the best
// available scheme per point: the Theorem-3 assignment folded mod m
// (deterministic) and the centralized edge-coloring router (the
// upper bound any distributed scheme could hope for).
type OversubResult struct {
	N, R, Trials int
	Rows         []OversubRow
}

// Oversub sweeps m from the Benes point n to the nonblocking point n².
func Oversub(n, r, trials int, seed int64, cfg sim.Config) (*OversubResult, error) {
	res := &OversubResult{N: n, R: r, Trials: trials}
	ms := []int{n, 2 * n, n * n / 2, n * n}
	seen := map[int]bool{}
	for _, m := range ms {
		if m < 1 || m > r*n || seen[m] {
			continue
		}
		seen[m] = true
		f := topology.NewFoldedClos(n, m, r)
		var routers []routing.Router
		if m >= n*n {
			pd, err := routing.NewPaperDeterministic(f)
			if err != nil {
				return nil, err
			}
			routers = append(routers, pd)
		} else {
			routers = append(routers, routing.NewPaperDeterministicFolded(f))
		}
		routers = append(routers, routing.NewGlobalRearrangeable(f))
		for _, rt := range routers {
			frac, _, err := analysis.BlockingProbability(rt, f.Ports(), trials, seed)
			if err != nil {
				return nil, err
			}
			sum, err := sim.CompareToCrossbar(f.Net, rt, f.Ports(), trials/4+1, seed, cfg)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, OversubRow{
				M:                m,
				Oversubscription: float64(n*n) / float64(m),
				Switches:         r + m,
				Router:           rt.Name(),
				BlockFraction:    frac,
				MeanSlowdown:     sum.MeanSlowdown,
			})
		}
	}
	return res, nil
}

// Render writes the oversubscription frontier.
func (t *OversubResult) Render(w io.Writer) {
	fmt.Fprintf(w, "ftree(%d+m,%d): cost vs performance as m shrinks below n²=%d (%d random permutations)\n",
		t.N, t.R, t.N*t.N, t.Trials)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "m\toversub n²/m\tswitches\trouting\tP(contention)\tmean slowdown")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%.1f\t%d\t%s\t%.2f\t%.2f\n",
			r.M, r.Oversubscription, r.Switches, r.Router, r.BlockFraction, r.MeanSlowdown)
	}
	tw.Flush()
}
