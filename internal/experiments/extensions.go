package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"repro/internal/analysis"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// This file holds the extension experiments beyond the paper's own tables:
// E10 exercises the classic online (telephone) conditions the paper builds
// on, E11 the fault-tolerance contrast between the routing classes, and
// E12 the open-loop load/latency curves.

// OnlineRow is one (m, policy) cell of experiment E10.
type OnlineRow struct {
	M      int
	Policy routing.ClosPolicy
	// AdversaryBlocked reports whether the classic setup/teardown
	// adversary blocked.
	AdversaryBlocked bool
	// RandomBlockFraction is the fraction of random churn runs that hit
	// a blocked setup.
	RandomBlockFraction float64
}

// OnlineResult is experiment E10.
type OnlineResult struct {
	N, R, Trials int
	Rows         []OnlineRow
}

// Online exercises the classic online circuit-switching conditions on
// Clos(n, m, r): m = 2n−1 never blocks (strict-sense, Clos [2]); m = 2n−2
// blocks under the adversarial sequence and occasionally under random
// churn; m = n blocks frequently online even though it is rearrangeably
// sufficient offline.
func Online(n, r, trials int, seed int64) (*OnlineResult, error) {
	res := &OnlineResult{N: n, R: r, Trials: trials}
	seen := map[int]bool{}
	for _, m := range []int{n, 2*n - 2, 2*n - 1} {
		if m < 1 || seen[m] {
			continue
		}
		seen[m] = true
		c := topology.NewClos(n, m, r)
		for _, pol := range []routing.ClosPolicy{routing.FirstFit, routing.Packing} {
			row := OnlineRow{M: m, Policy: pol}
			if n == 2 && m >= 2 {
				idx, err := routing.Replay(c, pol, routing.ClosAdversary())
				if err != nil {
					return nil, err
				}
				row.AdversaryBlocked = idx >= 0
			}
			blocked := 0
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < trials; trial++ {
				if churnBlocks(c, pol, rng, 200) {
					blocked++
				}
			}
			row.RandomBlockFraction = float64(blocked) / float64(trials)
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// churnBlocks runs a random setup/teardown sequence and reports whether
// any setup with idle terminals blocked.
func churnBlocks(c *topology.Clos, pol routing.ClosPolicy, rng *rand.Rand, steps int) bool {
	o := routing.NewClosOnline(c, pol)
	dstOf := make(map[int]int)
	dstBusy := make(map[int]bool)
	for step := 0; step < steps; step++ {
		s := rng.Intn(c.Ports())
		if d, busy := dstOf[s]; busy {
			if err := o.Disconnect(s); err != nil {
				panic(err) // malformed bookkeeping is a bug, not blocking
			}
			delete(dstOf, s)
			delete(dstBusy, d)
			continue
		}
		d := rng.Intn(c.Ports())
		if dstBusy[d] {
			continue
		}
		if _, err := o.Connect(s, d); err != nil {
			return true
		}
		dstOf[s] = d
		dstBusy[d] = true
	}
	return false
}

// Render writes the online-conditions table.
func (t *OnlineResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Clos(%d,m,%d) online circuit switching, %d random churn runs\n", t.N, t.R, t.Trials)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "m\tpolicy\tadversary blocks\trandom churn P(block)")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%s\t%v\t%.2f\n", r.M, r.Policy, r.AdversaryBlocked, r.RandomBlockFraction)
	}
	tw.Flush()
}

// FaultRow is one failure count of experiment E11.
type FaultRow struct {
	Failures int
	// AdaptiveOK: NONBLOCKINGADAPTIVE with RouteAvoiding stays clean.
	AdaptiveOK bool
	// SparedOK: the Theorem-3 scheme with dedicated spares stays clean
	// (false once failures exceed spares).
	SparedOK bool
	// NaiveBlocked: the naive class-folding remap provably blocks.
	NaiveBlocked bool
}

// FaultResult is experiment E11.
type FaultResult struct {
	N, R, M, Spares, Trials int
	Rows                    []FaultRow
}

// Fault measures degraded-mode behaviour with k failed top switches on
// ftree(n + n² + s, r): the adaptive router reroutes around failures as
// long as enough switches survive — its configuration demand is below n²
// for large n, so it tolerates *more* failures than it was given spares —
// while the deterministic scheme survives exactly its provisioned spares,
// and naive class folding blocks at the first failure. Pick n with
// (c+1)·n·⌈n/(c+2)⌉ comfortably below n² (n ≥ 8 with r = n²) so the
// asymmetry is visible.
func Fault(n, r, spares, trials int, seed int64) (*FaultResult, error) {
	if n < 2 || r < 1 || trials < 1 || spares < 0 {
		return nil, fmt.Errorf("experiments: Fault needs n >= 2, r >= 1, trials >= 1, spares >= 0 (got n=%d r=%d trials=%d spares=%d)",
			n, r, trials, spares)
	}
	// The sampler draws k distinct failed switches from the n² class
	// switches for k up to spares+1; with spares+1 > n² the draw loop
	// could never complete (it used to spin forever).
	if spares+1 > n*n {
		return nil, fmt.Errorf("experiments: Fault samples up to spares+1 = %d failed class switches but ftree(%d+%d,%d) has only n² = %d",
			spares+1, n, n*n+spares, r, n*n)
	}
	m := n*n + spares
	f := topology.NewFoldedClos(n, m, r)
	ad, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		return nil, err
	}
	res := &FaultResult{N: n, R: r, M: m, Spares: spares, Trials: trials}
	rng := rand.New(rand.NewSource(seed))
	c := analysis.NewChecker(f.Net)
	for k := 0; k <= spares+1; k++ {
		row := FaultRow{Failures: k}
		failed := map[int]bool{}
		for len(failed) < k {
			failed[rng.Intn(n*n)] = true // fail class switches: the hard case
		}
		// Adaptive: random patterns must stay contention-free when
		// enough healthy switches remain.
		row.AdaptiveOK = true
		for trial := 0; trial < trials; trial++ {
			p := permutation.Random(rng, f.Ports())
			a, err := ad.RouteAvoiding(p, failed)
			if err != nil {
				row.AdaptiveOK = false
				break
			}
			c.Analyze(a)
			if c.HasContention() {
				row.AdaptiveOK = false
				break
			}
		}
		// Spared deterministic: exact Lemma-1 verdict.
		if sp, err := routing.NewPaperDeterministicSpared(f, failed); err == nil {
			l1, err := analysis.CheckLemma1AllPairs(sp, f.Ports())
			if err != nil {
				return nil, err
			}
			row.SparedOK = l1.Nonblocking
		}
		// Naive folding: exact Lemma-1 verdict (blocks whenever k > 0).
		// When every class switch failed the remap cannot even be
		// built — worse than blocked.
		if k > 0 {
			if nr, err := routing.NewPaperDeterministicNaiveRemap(f, failed); err != nil {
				row.NaiveBlocked = true
			} else {
				l1, err := analysis.CheckLemma1AllPairs(nr, f.Ports())
				if err != nil {
					return nil, err
				}
				row.NaiveBlocked = !l1.Nonblocking
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the fault-tolerance table.
func (t *FaultResult) Render(w io.Writer) {
	fmt.Fprintf(w, "ftree(%d+%d,%d) with %d spare top switches, %d random patterns per cell\n",
		t.N, t.M, t.R, t.Spares, t.Trials)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "failed\tadaptive reroutes\tspared deterministic\tnaive folding blocks")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\n", r.Failures, r.AdaptiveOK, r.SparedOK, r.NaiveBlocked)
	}
	tw.Flush()
}

// LoadSweepResult is experiment E12.
type LoadSweepResult struct {
	Network string
	Rows    []loadSweepRow
}

type loadSweepRow struct {
	Router string
	Points []sim.LoadSweepPoint
}

// LoadSweepExperiment produces latency/accepted-throughput curves over
// offered load for the nonblocking routing versus destination-mod static
// routing on the same ftree(n+n², r) — the open-loop counterpart of E6.
// The pattern is chosen adversarially *against dest-mod* (hill-climbing
// contention search), so the sweep contrasts a permutation that saturates
// the static routing while the Theorem-3 routing, by construction, carries
// the very same permutation at full load.
func LoadSweepExperiment(n, r int, rates []float64, seed int64) (*LoadSweepResult, error) {
	f := topology.NewFoldedClos(n, n*n, r)
	search := &analysis.WorstCaseSearch{
		Router:   routing.NewDestMod(f),
		Hosts:    f.Ports(),
		Restarts: 3,
		Steps:    120,
		Seed:     seed,
	}
	worst, err := search.Run()
	if err != nil {
		return nil, err
	}
	p := worst.Permutation
	if worst.ContendedLinks == 0 {
		p = permutation.SwitchShift(n, r, 1) // fall back to a structured pattern
	}
	dst := make([]int, p.N())
	for i := 0; i < p.N(); i++ {
		dst[i] = p.Dst(i)
	}
	pairs := sim.PermPairs(dst)
	base := sim.OpenLoopConfig{
		PacketFlits:     4,
		WarmupPackets:   20,
		MeasuredPackets: 100,
		Seed:            seed,
		Arbiter:         sim.RoundRobin,
	}
	res := &LoadSweepResult{Network: f.Net.Name}
	paper, err := routing.NewPaperDeterministic(f)
	if err != nil {
		return nil, err
	}
	for _, rt := range []routing.PairRouter{paper, routing.NewDestMod(f)} {
		points, err := sim.LoadSweep(f.Net, pairs, sim.PairPathsFunc(rt), rates, base)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, loadSweepRow{Router: rt.Name(), Points: points})
	}
	return res, nil
}

// Render writes the load-sweep curves.
func (t *LoadSweepResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s, adversarial permutation (vs dest-mod), open-loop injection\n", t.Network)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "routing\toffered\taccepted\tmean latency\tp99")
	for _, row := range t.Rows {
		for _, pt := range row.Points {
			fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.1f\t%d\n",
				row.Router, pt.OfferedLoad, pt.AcceptedLoad, pt.MeanLatency, pt.P99Latency)
		}
	}
	tw.Flush()
}

// WorstLoadRow is one routing scheme of experiment E17.
type WorstLoadRow struct {
	Router string
	// MaxLoad is the exact worst-case permutation-realizable link load.
	MaxLoad int
	// WitnessLoad re-verifies the constructed worst permutation.
	WitnessLoad int
}

// WorstLoadResult is experiment E17: exact worst-case link load per
// deterministic routing scheme, by per-link maximum matching ([17]-style
// oblivious performance analysis, solved exactly).
type WorstLoadResult struct {
	N, M, R int
	Rows    []WorstLoadRow
}

// WorstLoad computes the exact worst-case link load of every single-path
// deterministic scheme on ftree(n+n², r) and re-verifies each with a
// constructed witness permutation.
func WorstLoad(n, r int, seed int64) (*WorstLoadResult, error) {
	f := topology.NewFoldedClos(n, n*n, r)
	res := &WorstLoadResult{N: n, M: n * n, R: r}
	paper, err := routing.NewPaperDeterministic(f)
	if err != nil {
		return nil, err
	}
	for _, rt := range []routing.PairRouter{
		paper,
		routing.NewDestMod(f),
		routing.NewSourceMod(f),
		routing.NewDestSwitchMod(f),
		routing.NewRandomFixed(f, seed),
	} {
		wl, err := analysis.WorstCaseLinkLoad(rt, f.Ports())
		if err != nil {
			return nil, err
		}
		row := WorstLoadRow{Router: rt.Name(), MaxLoad: wl.MaxLoad}
		p, err := analysis.WorstCasePermutationFor(rt, f.Ports(), wl.Link)
		if err != nil {
			return nil, err
		}
		a, err := rt.Route(p)
		if err != nil {
			return nil, err
		}
		row.WitnessLoad = analysis.Check(a).MaxLoad
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the worst-load table.
func (t *WorstLoadResult) Render(w io.Writer) {
	fmt.Fprintf(w, "exact worst-case permutation link load on ftree(%d+%d,%d) (max bipartite matching per link)\n", t.N, t.M, t.R)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "routing\tworst-case load (exact)\twitness re-verified")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\n", r.Router, r.MaxLoad, r.WitnessLoad)
	}
	tw.Flush()
	fmt.Fprintln(w, "load 1 = nonblocking (Lemma 1); the witness column re-routes the constructed")
	fmt.Fprintln(w, "worst permutation and reports the observed load — always equal to the bound.")
}

// InNetworkRow is one scheme of experiment E16.
type InNetworkRow struct {
	Scheme       string
	MeanSlowdown float64
	MaxSlowdown  float64
}

// InNetworkResult is experiment E16: per-packet in-network adaptivity
// ([1], [9]) versus pattern-level routing on the same ftree(n+n², r).
type InNetworkResult struct {
	Hosts, Trials int
	Rows          []InNetworkRow
}

// InNetworkAdaptive compares, over random permutations against the
// crossbar reference: the Theorem-3 assignment (provably clean), dest-mod
// static routing, switch-local per-packet adaptivity, and oracle-informed
// per-packet adaptivity.
func InNetworkAdaptive(n, r, trials int, seed int64, cfg sim.Config) (*InNetworkResult, error) {
	f := topology.NewFoldedClos(n, n*n, r)
	hosts := f.Ports()
	res := &InNetworkResult{Hosts: hosts, Trials: trials}
	paper, err := routing.NewPaperDeterministic(f)
	if err != nil {
		return nil, err
	}

	type runner struct {
		name string
		run  func(p *permutation.Permutation) (*sim.Result, error)
	}
	runners := []runner{
		{paper.Name(), func(p *permutation.Permutation) (*sim.Result, error) {
			_, out, err := sim.RunPermutation(f.Net, paper, p, cfg)
			return out, err
		}},
		{"dest-mod", func(p *permutation.Permutation) (*sim.Result, error) {
			_, out, err := sim.RunPermutation(f.Net, routing.NewDestMod(f), p, cfg)
			return out, err
		}},
		{"adapt-local", func(p *permutation.Permutation) (*sim.Result, error) {
			return sim.RunFtreeAdaptive(f, p, cfg, sim.AdaptLocal)
		}},
		{"adapt-oracle", func(p *permutation.Permutation) (*sim.Result, error) {
			return sim.RunFtreeAdaptive(f, p, cfg, sim.AdaptOracle)
		}},
	}
	for _, rn := range runners {
		rng := rand.New(rand.NewSource(seed))
		row := InNetworkRow{Scheme: rn.name}
		for trial := 0; trial < trials; trial++ {
			p := permutation.Random(rng, hosts)
			out, err := rn.run(p)
			if err != nil {
				return nil, err
			}
			ref, err := sim.CrossbarReference(hosts, p, cfg)
			if err != nil {
				return nil, err
			}
			s := out.Slowdown(ref)
			row.MeanSlowdown += s
			if s > row.MaxSlowdown {
				row.MaxSlowdown = s
			}
		}
		if trials > 0 {
			row.MeanSlowdown /= float64(trials)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the in-network adaptivity comparison.
func (t *InNetworkResult) Render(w io.Writer) {
	fmt.Fprintf(w, "per-packet in-network adaptivity vs pattern-level routing, %d hosts, %d random permutations\n", t.Hosts, t.Trials)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tmean slowdown\tmax slowdown")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\n", r.Scheme, r.MeanSlowdown, r.MaxSlowdown)
	}
	tw.Flush()
}

// RandomModelRow is one m value of experiment E14.
type RandomModelRow struct {
	M        int
	Model    float64
	Measured float64
}

// RandomModelResult is experiment E14: the analytic birthday model of
// randomized routing vs Monte Carlo measurement.
type RandomModelResult struct {
	N, R, Trials int
	Rows         []RandomModelRow
}

// RandomModel sweeps m and compares ModelRandomClearProb against measured
// clear probability — the Greenberg–Leiserson [6] randomized-routing
// regime: random permutations only become usually-clear once m ≫ r·n²,
// far beyond the deterministic guarantee m = n².
func RandomModel(n, r, trials int, ms []int, seed int64) (*RandomModelResult, error) {
	res := &RandomModelResult{N: n, R: r, Trials: trials}
	for _, m := range ms {
		meas, err := analysis.MeasureRandomClearProb(n, m, r, trials, seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, RandomModelRow{
			M:        m,
			Model:    analysis.ModelRandomClearProb(n, m, r),
			Measured: meas,
		})
	}
	return res, nil
}

// Render writes the model comparison.
func (t *RandomModelResult) Render(w io.Writer) {
	fmt.Fprintf(w, "randomized routing on ftree(%d+m,%d): P(random permutation clear), %d trials\n", t.N, t.R, t.Trials)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "m\tbirthday model\tmeasured")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\n", r.M, r.Model, r.Measured)
	}
	tw.Flush()
	fmt.Fprintf(tw, "deterministic guarantee needs only m = n² = %d — with the *right* paths, not random ones\n", t.N*t.N)
	tw.Flush()
}

// WorstCaseResult is the adversarial-search experiment: how badly the
// baselines can be made to contend versus the provably clean schemes.
type WorstCaseResult struct {
	Hosts int
	Rows  []WorstCaseRow
}

// WorstCaseRow is one router's worst pattern found.
type WorstCaseRow struct {
	Router         string
	ContendedLinks int
	MaxLoad        int
}

// WorstCase runs hill-climbing contention maximization against each
// routing scheme on ftree(n+n², r).
func WorstCase(n, r, restarts, steps int, seed int64) (*WorstCaseResult, error) {
	f := topology.NewFoldedClos(n, n*n, r)
	paper, err := routing.NewPaperDeterministic(f)
	if err != nil {
		return nil, err
	}
	res := &WorstCaseResult{Hosts: f.Ports()}
	for _, rt := range []routing.Router{paper, routing.NewDestMod(f), routing.NewSourceMod(f), routing.NewRandomFixed(f, seed)} {
		s := &analysis.WorstCaseSearch{Router: rt, Hosts: f.Ports(), Restarts: restarts, Steps: steps, Seed: seed}
		out, err := s.Run()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, WorstCaseRow{Router: rt.Name(), ContendedLinks: out.ContendedLinks, MaxLoad: out.MaxLoad})
	}
	return res, nil
}

// Render writes the worst-case table.
func (t *WorstCaseResult) Render(w io.Writer) {
	fmt.Fprintf(w, "adversarial hill climbing, %d hosts\n", t.Hosts)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "routing\tworst contended links\tworst max load")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\n", r.Router, r.ContendedLinks, r.MaxLoad)
	}
	tw.Flush()
}
