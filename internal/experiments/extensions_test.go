package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestOnlineExperiment(t *testing.T) {
	res, err := Online(2, 3, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]int]OnlineRow{}
	for _, row := range res.Rows {
		byKey[[2]int{row.M, int(row.Policy)}] = row
	}
	// m = 2n−1 = 3: strict-sense — nothing blocks.
	ff3 := byKey[[2]int{3, 0}]
	if ff3.AdversaryBlocked || ff3.RandomBlockFraction != 0 {
		t.Fatalf("m=2n−1 blocked: %+v", ff3)
	}
	// m = 2n−2 = 2: the adversary blocks first-fit.
	ff2 := byKey[[2]int{2, 0}]
	if !ff2.AdversaryBlocked {
		t.Fatalf("m=2n−2 adversary did not block: %+v", ff2)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "adversary blocks") {
		t.Fatal("render incomplete")
	}
}

func TestFaultExperiment(t *testing.T) {
	// n = 8, r = 64: adaptive needs ⌈8/4⌉·3·8 = 48 < 64 = n², so it
	// shrugs off spares+1 failures while the spared deterministic scheme
	// dies exactly at spares+1.
	res, err := Fault(8, 64, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // k = 0..spares+1
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.AdaptiveOK {
			t.Errorf("adaptive failed at %d failures despite ample m", row.Failures)
		}
		if row.Failures <= res.Spares && !row.SparedOK {
			t.Errorf("spared scheme failed within its spare budget at %d failures", row.Failures)
		}
		if row.Failures > res.Spares && row.SparedOK {
			t.Errorf("spared scheme claimed success beyond its spares at %d failures", row.Failures)
		}
		if row.Failures > 0 && !row.NaiveBlocked {
			t.Errorf("naive folding did not block at %d failures", row.Failures)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "naive folding blocks") {
		t.Fatal("render incomplete")
	}
}

// Regression: spares+1 > n² used to spin forever in the failure sampler
// (it draws k ≤ spares+1 distinct switches from only n² classes). The
// call must return an error instead of hanging.
func TestFaultRejectsOversizedSpares(t *testing.T) {
	if _, err := Fault(2, 4, 4, 1, 1); err == nil {
		t.Fatal("expected error for spares+1 = 5 > n² = 4")
	}
	if _, err := Fault(2, 4, -1, 1, 1); err == nil {
		t.Fatal("expected error for negative spares")
	}
	if _, err := Fault(1, 4, 0, 1, 1); err == nil {
		t.Fatal("expected error for n < 2")
	}
	if _, err := Fault(2, 4, 0, 0, 1); err == nil {
		t.Fatal("expected error for zero trials")
	}
	// The boundary case spares+1 == n² must still run.
	if _, err := Fault(2, 4, 3, 1, 1); err != nil {
		t.Fatalf("spares+1 == n² should be accepted: %v", err)
	}
}

func TestLoadSweepExperiment(t *testing.T) {
	res, err := LoadSweepExperiment(2, 5, []float64{0.2, 1.0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The nonblocking routing accepts full load; dest-mod saturates
	// below it on the switch-shift pattern when collisions exist — at
	// minimum its latency at load 1.0 must be at least the nonblocking
	// routing's.
	nb, dm := res.Rows[0], res.Rows[1]
	if nb.Router != "paper-deterministic" {
		t.Fatal("row order")
	}
	if nb.Points[1].AcceptedLoad < 0.9 {
		t.Fatalf("nonblocking accepted %.2f at full load", nb.Points[1].AcceptedLoad)
	}
	if dm.Points[1].MeanLatency < nb.Points[1].MeanLatency {
		t.Fatalf("dest-mod latency %.1f below nonblocking %.1f at full load",
			dm.Points[1].MeanLatency, nb.Points[1].MeanLatency)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "accepted") {
		t.Fatal("render incomplete")
	}
}

func TestInNetworkAdaptiveExperiment(t *testing.T) {
	res, err := InNetworkAdaptive(2, 5, 5, 1, simCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]InNetworkRow{}
	for _, row := range res.Rows {
		byName[row.Scheme] = row
	}
	nb := byName["paper-deterministic"]
	for name, row := range byName {
		if row.MeanSlowdown < nb.MeanSlowdown-1e-9 {
			t.Errorf("%s mean slowdown %.2f beats the nonblocking scheme %.2f", name, row.MeanSlowdown, nb.MeanSlowdown)
		}
	}
	if byName["adapt-local"].MeanSlowdown > byName["dest-mod"].MeanSlowdown {
		t.Errorf("adapt-local %.2f should not lose to dest-mod %.2f",
			byName["adapt-local"].MeanSlowdown, byName["dest-mod"].MeanSlowdown)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "adapt-oracle") {
		t.Error("render incomplete")
	}
}

func simCfg() sim.Config {
	return sim.Config{PacketFlits: 2, PacketsPerPair: 6}
}

func TestRandomModelExperiment(t *testing.T) {
	res, err := RandomModel(2, 5, 150, []int{4, 16, 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prevModel, prevMeas := -1.0, -1.0
	for _, row := range res.Rows {
		if row.Model < prevModel {
			t.Error("model not monotone in m")
		}
		if row.Measured < prevMeas-0.1 {
			t.Error("measurement grossly non-monotone")
		}
		if diff := row.Model - row.Measured; diff > 0.15 || diff < -0.15 {
			t.Errorf("m=%d: model %.3f vs measured %.3f", row.M, row.Model, row.Measured)
		}
		prevModel, prevMeas = row.Model, row.Measured
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "birthday model") {
		t.Error("render incomplete")
	}
}

func TestWorstCaseExperiment(t *testing.T) {
	res, err := WorstCase(2, 5, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Router != "paper-deterministic" || res.Rows[0].ContendedLinks != 0 {
		t.Fatalf("nonblocking row wrong: %+v", res.Rows[0])
	}
	foundContention := false
	for _, row := range res.Rows[1:] {
		if row.ContendedLinks > 0 {
			foundContention = true
		}
	}
	if !foundContention {
		t.Fatal("adversary found no contention on any baseline")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "worst contended links") {
		t.Fatal("render incomplete")
	}
}

func TestWorstLoadExperiment(t *testing.T) {
	res, err := WorstLoad(2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Router != "paper-deterministic" || res.Rows[0].MaxLoad != 1 {
		t.Fatalf("nonblocking row wrong: %+v", res.Rows[0])
	}
	for _, row := range res.Rows {
		if row.WitnessLoad != row.MaxLoad {
			t.Errorf("%s: witness %d != exact %d", row.Router, row.WitnessLoad, row.MaxLoad)
		}
		if row.Router != "paper-deterministic" && row.MaxLoad < 2 {
			t.Errorf("%s: baseline should have worst-case load >= 2", row.Router)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "worst-case load (exact)") {
		t.Error("render incomplete")
	}
}
