package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestCollectivesExperiment(t *testing.T) {
	res, err := Collectives(2, 1, sim.Config{PacketFlits: 2, PacketsPerPair: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 12 {
		t.Fatalf("hosts = %d", res.Hosts)
	}
	if len(res.Rows) < 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Rows) != 2 {
			t.Fatalf("%s: cells = %d", row.Workload, len(row.Rows))
		}
		nb := row.Rows[0]
		if nb.Router != "paper-deterministic" {
			t.Fatal("router order")
		}
		if nb.ContendedPhases != 0 {
			t.Errorf("%s: nonblocking contended in %d phases", row.Workload, nb.ContendedPhases)
		}
		if nb.Slowdown > 1.6 {
			t.Errorf("%s: nonblocking slowdown %.2f", row.Workload, nb.Slowdown)
		}
		dm := row.Rows[1]
		if dm.TotalCycles < nb.TotalCycles {
			t.Errorf("%s: dest-mod faster than nonblocking", row.Workload)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "contended phases") {
		t.Error("render incomplete")
	}
}
