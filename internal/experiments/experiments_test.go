package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTableIExperiment(t *testing.T) {
	res := TableI()
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"36", "80", "30", "200", "55", "150", "78", "252", "63", "882"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "paper prints 88") {
		t.Error("typo note missing")
	}
}

func TestTheorem3Experiment(t *testing.T) {
	res, err := Theorem3([][2]int{{2, 5}, {3, 7}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.Nonblocking {
			t.Errorf("n=%d r=%d: not nonblocking", row.N, row.R)
		}
		if !row.TightBlocks || row.Witness == "" {
			t.Errorf("n=%d r=%d: tightness not demonstrated", row.N, row.R)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "true") {
		t.Error("render missing verdicts")
	}
}

func TestLemma2Experiment(t *testing.T) {
	res := Lemma2([]int{1, 2}, []int{3, 5})
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.WitnessOK {
			t.Errorf("n=%d r=%d: witness failed", row.N, row.R)
		}
		if row.Exact > row.Cap {
			t.Errorf("n=%d r=%d: exact %d above cap %d", row.N, row.R, row.Exact, row.Cap)
		}
		if row.R >= 2*row.N+1 && !row.Tight {
			t.Errorf("n=%d r=%d: r(r−1) branch should be tight", row.N, row.R)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "regime") {
		t.Error("render incomplete")
	}
}

func TestTheorem1Experiment(t *testing.T) {
	res := Theorem1([]int{2, 3})
	for _, row := range res.Rows {
		if row.Ports > row.Bound {
			t.Errorf("n=%d r=%d: ports %d above bound %d", row.N, row.R, row.Ports, row.Bound)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "bound") {
		t.Error("render incomplete")
	}
}

func TestAdaptiveExperiment(t *testing.T) {
	res, err := Adaptive([]int{4, 6}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.MeasuredRandom < 1 || row.MeasuredAdversarial < 1 {
			t.Errorf("n=%d: measurements missing", row.N)
		}
		if row.MeasuredRandom > row.SimpleBound {
			t.Errorf("n=%d: measured %d above the simple worst-case bound %d", row.N, row.MeasuredRandom, row.SimpleBound)
		}
		if row.FirstFit < row.MeasuredAdversarial {
			t.Errorf("n=%d: first-fit %d beat greedy %d on the adversarial pattern", row.N, row.FirstFit, row.MeasuredAdversarial)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "deterministic n²") {
		t.Error("render incomplete")
	}
}

func TestThroughputExperiment(t *testing.T) {
	cfg := sim.Config{PacketFlits: 2, PacketsPerPair: 4}
	res, err := Throughput(2, 3, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Row 0 is the nonblocking system: best mean slowdown of the set.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].MeanSlowdown < res.Rows[0].MeanSlowdown {
			t.Errorf("%s/%s mean slowdown %.2f beats the nonblocking system %.2f",
				res.Rows[i].Network, res.Rows[i].Router, res.Rows[i].MeanSlowdown, res.Rows[0].MeanSlowdown)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "crossbar") {
		t.Error("render incomplete")
	}
}

func TestMultipathExperiment(t *testing.T) {
	res, err := Multipath(2, 5, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Router != "paper-deterministic" || res.Rows[0].BlockFraction != 0 {
		t.Fatalf("single-path row wrong: %+v", res.Rows[0])
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Router != "full-spray" || last.BlockFraction == 0 {
		t.Fatalf("full spray should block: %+v", last)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "P(contention)") {
		t.Error("render incomplete")
	}
}

func TestThreeLevelExperiment(t *testing.T) {
	res, err := ThreeLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Nonblocking {
		t.Fatal("3-level not nonblocking")
	}
	if res.Design.Switches != 52 || res.Design.Ports != 24 {
		t.Fatalf("design = %+v", res.Design)
	}
	if res.PaperCount != 60 {
		t.Fatalf("paper count = %d", res.PaperCount)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "paper prints") {
		t.Error("render missing the count note")
	}
}

func TestMultiLevelExperiment(t *testing.T) {
	res, err := MultiLevel(2, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	wantPorts := []int{12, 24, 48}
	for i, row := range res.Rows {
		if !row.Nonblocking {
			t.Errorf("levels=%d not nonblocking", row.Levels)
		}
		if row.Design.Ports != wantPorts[i] {
			t.Errorf("levels=%d ports %d, want %d", row.Levels, row.Design.Ports, wantPorts[i])
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "nonblocking (exact)") {
		t.Error("render incomplete")
	}
}

func TestBenesExperiment(t *testing.T) {
	res, err := Benes(3, 4, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	byM := map[int]BenesRow{}
	for _, row := range res.Rows {
		byM[row.M] = row
	}
	if byM[3-1].GlobalOK {
		t.Error("m = n−1 should fail centralized routing")
	}
	if !byM[3].GlobalOK {
		t.Error("m = n should succeed centralized routing")
	}
	if byM[3].GreedyBlockFraction == 0 {
		t.Error("distributed greedy at m = n should block some patterns")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "centralized") {
		t.Error("render incomplete")
	}
}

func TestScalingExperiment(t *testing.T) {
	res, err := Scaling([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatal("rows")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "replace-bottom") {
		t.Error("render incomplete")
	}
}
