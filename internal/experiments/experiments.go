// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the derived experiments that validate each theorem and
// lemma empirically (the experiment index lives in DESIGN.md §5 and the
// paper-vs-measured record in EXPERIMENTS.md). Each experiment returns a
// structured result and renders a human-readable table; cmd/nbtables and
// the repository benchmarks are thin wrappers around this package.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"repro/internal/analysis"
	"repro/internal/conditions"
	"repro/internal/cost"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TableIResult is experiment T1: the paper's Table I.
type TableIResult struct {
	Rows []cost.TableIRow
}

// TableI regenerates Table I with the paper's 20/30/42-port building
// blocks.
func TableI() *TableIResult {
	return &TableIResult{Rows: cost.PaperTableI()}
}

// Render writes the table.
func (t *TableIResult) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "switch\tnonblocking ftree(n+n²,n+n²)\t\trearrangeable FT(N,2)\t")
	fmt.Fprintln(tw, "ports\t# switches\t# ports\t# switches\t# ports")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\n",
			r.SwitchPorts, r.Nonblocking.Switches, r.Nonblocking.Ports,
			r.Rearrangeable.Switches, r.Rearrangeable.Ports)
	}
	tw.Flush()
	fmt.Fprintln(w, "note: the paper prints 88 switches / 884 ports in the 42-port row;")
	fmt.Fprintln(w, "      the construction yields 2n²+n = 78 and N²/2 = 882 (see EXPERIMENTS.md).")
}

// Theorem3Row is one verification case of experiment E1.
type Theorem3Row struct {
	N, R        int
	Nonblocking bool
	// TightM is n²−1; TightBlocks reports that the under-provisioned
	// folded routing admits a blocking permutation (Theorem 2 tightness).
	TightM      int
	TightBlocks bool
	// Witness is a blocked two-pair permutation on the tight instance.
	Witness string
}

// Theorem3Result is experiment E1.
type Theorem3Result struct {
	Rows []Theorem3Row
}

// Theorem3 verifies the Theorem-3 routing exactly (Lemma 1 over all SD
// pairs) for each (n, r), and demonstrates tightness of m ≥ n² by finding
// a blocking permutation at m = n²−1.
func Theorem3(cases [][2]int) (*Theorem3Result, error) {
	res := &Theorem3Result{}
	for _, c := range cases {
		n, r := c[0], c[1]
		f := topology.NewFoldedClos(n, n*n, r)
		rt, err := routing.NewPaperDeterministic(f)
		if err != nil {
			return nil, err
		}
		l1, err := analysis.CheckLemma1AllPairs(rt, f.Ports())
		if err != nil {
			return nil, err
		}
		row := Theorem3Row{N: n, R: r, Nonblocking: l1.Nonblocking, TightM: n*n - 1}
		if n >= 2 {
			tight := topology.NewFoldedClos(n, n*n-1, r)
			tr := routing.NewPaperDeterministicFolded(tight)
			tl1, err := analysis.CheckLemma1AllPairs(tr, tight.Ports())
			if err != nil {
				return nil, err
			}
			if !tl1.Nonblocking {
				w, err := analysis.BlockingWitness(tl1, tight.Ports())
				if err != nil {
					return nil, err
				}
				row.TightBlocks = true
				row.Witness = w.String()
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the verification table.
func (t *Theorem3Result) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ftree\tm=n² nonblocking\tm=n²−1 blocks\twitness")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "ftree(%d+%d,%d)\t%v\t%v\t%s\n", r.N, r.N*r.N, r.R, r.Nonblocking, r.TightBlocks, r.Witness)
	}
	tw.Flush()
}

// Lemma2Row is one instance of experiment E2.
type Lemma2Row struct {
	N, R int
	// Exact is the mode-search maximum of SD pairs through one root.
	Exact int
	// Cap is the paper's closed-form bound.
	Cap int
	// Tight reports Exact == Cap.
	Tight bool
	// WitnessOK confirms the constructive pair set checks out.
	WitnessOK bool
}

// Lemma2Result is experiment E2.
type Lemma2Result struct {
	Rows []Lemma2Row
}

// Lemma2 computes the exact maximum load of a single top-level switch for
// every (n, r) in the ranges and compares with the paper's caps.
func Lemma2(ns, rs []int) *Lemma2Result {
	res := &Lemma2Result{}
	for _, n := range ns {
		for _, r := range rs {
			exact := analysis.MaxRootPairsModes(n, r)
			witness := analysis.RootSetWitness(n, r)
			ok := analysis.CheckRootSet(n, r, witness) == nil && len(witness) == exact
			cap := conditions.Lemma2Cap(n, r)
			res.Rows = append(res.Rows, Lemma2Row{
				N: n, R: r, Exact: exact, Cap: cap, Tight: exact == cap, WitnessOK: ok,
			})
		}
	}
	return res
}

// Render writes the Lemma-2 table.
func (t *Lemma2Result) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tr\texact max\tpaper cap\ttight\tregime")
	for _, r := range t.Rows {
		regime := "r ≥ 2n+1: r(r−1)"
		if r.R < 2*r.N+1 {
			regime = "r < 2n+1: 2nr"
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\t%s\n", r.N, r.R, r.Exact, r.Cap, r.Tight, regime)
	}
	tw.Flush()
}

// Theorem1Row is one row of experiment E3.
type Theorem1Row struct {
	N, R int
	// MinM is the Lemma-2 consequence ⌈(r−1)n/2⌉.
	MinM int
	// Ports is r·n; Bound is 2(n+MinM).
	Ports, Bound int
}

// Theorem1Result is experiment E3.
type Theorem1Result struct {
	Rows []Theorem1Row
}

// Theorem1 tabulates the small-top-switch regime: for r ≤ 2n+1 the port
// count never exceeds 2(n+m).
func Theorem1(ns []int) *Theorem1Result {
	res := &Theorem1Result{}
	for _, n := range ns {
		for r := 2; r <= 2*n+1; r++ {
			m := conditions.SmallTopMinM(n, r)
			res.Rows = append(res.Rows, Theorem1Row{
				N: n, R: r, MinM: m,
				Ports: n * r, Bound: conditions.Theorem1PortBound(n, m),
			})
		}
	}
	return res
}

// Render writes the Theorem-1 table.
func (t *Theorem1Result) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tr\tmin m\tports r·n\tbound 2(n+m)\tports ≤ bound")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%v\n", r.N, r.R, r.MinM, r.Ports, r.Bound, r.Ports <= r.Bound)
	}
	tw.Flush()
}

// AdaptiveRow is one point of experiment E4.
type AdaptiveRow struct {
	N, R, C int
	// MeasuredRandom / MeasuredAdversarial are the top-switch demands of
	// NONBLOCKINGADAPTIVE over random and adversarial permutations.
	MeasuredRandom, MeasuredAdversarial int
	// FirstFit is the ablation's adversarial demand.
	FirstFit int
	// SimpleBound, Theorem5Budget and DetMinM are the analytic lines.
	SimpleBound, Theorem5Budget, DetMinM int
}

// AdaptiveResult is experiment E4.
type AdaptiveResult struct {
	Rows []AdaptiveRow
}

// Adaptive measures how many top-level switches NONBLOCKINGADAPTIVE needs
// as n grows with r = n² (c = 2), against the deterministic n² and the
// paper's bounds.
func Adaptive(ns []int, trials int, seed int64) (*AdaptiveResult, error) {
	res := &AdaptiveResult{}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range ns {
		r := n * n
		f := topology.NewFoldedClos(n, 1, r) // m irrelevant for Plan
		ad, err := routing.NewNonblockingAdaptive(f)
		if err != nil {
			return nil, err
		}
		ff := &routing.NonblockingAdaptive{F: f, C: ad.C, FirstFit: true}
		row := AdaptiveRow{
			N: n, R: r, C: ad.C,
			SimpleBound:    conditions.AdaptiveSimpleM(n, ad.C),
			Theorem5Budget: conditions.AdaptiveTheorem5M(n, ad.C),
			DetMinM:        conditions.DeterministicMinM(n),
		}
		for i := 0; i < trials; i++ {
			p := permutation.Random(rng, f.Ports())
			need, err := ad.RequiredM(p)
			if err != nil {
				return nil, err
			}
			if need > row.MeasuredRandom {
				row.MeasuredRandom = need
			}
		}
		adv := permutation.GreedyLowSpread(n, r, ad.C)
		if row.MeasuredAdversarial, err = ad.RequiredM(adv); err != nil {
			return nil, err
		}
		if row.FirstFit, err = ff.RequiredM(adv); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the adaptive scaling table.
func (t *AdaptiveResult) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tr=n²\tc\tmeasured(random)\tmeasured(adversarial)\tfirst-fit ablation\tsimple bound\tThm-5 budget\tdeterministic n²")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.N, r.R, r.C, r.MeasuredRandom, r.MeasuredAdversarial, r.FirstFit,
			r.SimpleBound, r.Theorem5Budget, r.DetMinM)
	}
	tw.Flush()
}

// ThroughputRow is one router's line in experiment E6.
type ThroughputRow struct {
	Network, Router               string
	MeanSlowdown, MaxSlowdown     float64
	MedianSlowdown, RelThroughput float64
}

// ThroughputResult is experiment E6.
type ThroughputResult struct {
	Hosts, Trials int
	Rows          []ThroughputRow
}

// Throughput runs the Hoefler-style comparison: random permutations under
// (a) the paper's nonblocking ftree, (b) the same ftree with destination-
// mod static routing, (c) a same-radix FT(N,2) with destination-mod
// routing, (d) FT(N,2) with frozen random routing — all against the
// crossbar reference.
func Throughput(n, trials int, seed int64, cfg sim.Config) (*ThroughputResult, error) {
	r := n + n*n // same-radix comparison: every switch has N = n+n² ports
	nb := topology.NewFoldedClos(n, n*n, r)
	paper, err := routing.NewPaperDeterministic(nb)
	if err != nil {
		return nil, err
	}
	hosts := nb.Ports()
	res := &ThroughputResult{Hosts: hosts, Trials: trials}

	add := func(network string, net *topology.Network, rt routing.Router, hostCount int) error {
		sum, err := sim.CompareToCrossbar(net, rt, hostCount, trials, seed, cfg)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, ThroughputRow{
			Network: network, Router: rt.Name(),
			MeanSlowdown: sum.MeanSlowdown, MaxSlowdown: sum.MaxSlowdown,
			MedianSlowdown: sum.MedianSlowdown, RelThroughput: sum.MeanRelThroughput,
		})
		return nil
	}
	if err := add(nb.Net.Name, nb.Net, paper, hosts); err != nil {
		return nil, err
	}
	if err := add(nb.Net.Name, nb.Net, routing.NewDestMod(nb), hosts); err != nil {
		return nil, err
	}
	ft := topology.NewMPortNTree(n+n*n, 2)
	if err := add(ft.Net.Name, ft.Net, routing.NewMNTDestMod(ft), ft.Hosts()); err != nil {
		return nil, err
	}
	if err := add(ft.Net.Name, ft.Net, routing.NewMNTRandomFixed(ft, seed), ft.Hosts()); err != nil {
		return nil, err
	}
	return res, nil
}

// Render writes the throughput comparison.
func (t *ThroughputResult) Render(w io.Writer) {
	fmt.Fprintf(w, "random permutations, slowdown vs ideal crossbar (1.00 = crossbar), %d trials\n", t.Trials)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "network\trouting\tmean\tmedian\tmax\trel. throughput")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.Network, r.Router, r.MeanSlowdown, r.MedianSlowdown, r.MaxSlowdown, r.RelThroughput)
	}
	tw.Flush()
}

// MultipathRow is one spray width of experiment E7.
type MultipathRow struct {
	Router        string
	BlockFraction float64
	MeanMaxLoad   float64
}

// MultipathResult is experiment E7.
type MultipathResult struct {
	N, M, R, Trials int
	Rows            []MultipathRow
}

// Multipath estimates blocking probability over random permutations for
// oblivious multipath schemes of increasing width on ftree(n+n², r),
// versus the single-path Theorem-3 scheme (width 1, zero blocking): §IV.B —
// spraying does not relax the nonblocking condition.
func Multipath(n, r, trials int, seed int64) (*MultipathResult, error) {
	f := topology.NewFoldedClos(n, n*n, r)
	res := &MultipathResult{N: n, M: n * n, R: r, Trials: trials}
	paper, err := routing.NewPaperDeterministic(f)
	if err != nil {
		return nil, err
	}
	routers := []routing.Router{paper}
	for _, w := range []int{2, n, n * n} {
		if w <= f.M {
			ks, err := routing.NewKSpray(f, w)
			if err != nil {
				return nil, err
			}
			routers = append(routers, ks)
		}
	}
	routers = append(routers, routing.NewFullSpray(f))
	for _, rt := range routers {
		frac, load, err := analysis.BlockingProbability(rt, f.Ports(), trials, seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, MultipathRow{Router: rt.Name(), BlockFraction: frac, MeanMaxLoad: load})
	}
	return res, nil
}

// Render writes the multipath table.
func (t *MultipathResult) Render(w io.Writer) {
	fmt.Fprintf(w, "ftree(%d+%d,%d), %d random permutations\n", t.N, t.M, t.R, t.Trials)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "routing\tP(contention)\tmean max link load")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\n", r.Router, r.BlockFraction, r.MeanMaxLoad)
	}
	tw.Flush()
}

// ThreeLevelResult is experiment E8.
type ThreeLevelResult struct {
	N           int
	Design      cost.Design
	Nonblocking bool
	PaperCount  int // the paper's printed switch count 2n⁴+3n³+n²
}

// MultiLevelRow is one depth of the generalized E8 experiment.
type MultiLevelRow struct {
	Levels      int
	Design      cost.Design
	Nonblocking bool
}

// MultiLevelResult extends E8 to arbitrary recursion depth.
type MultiLevelResult struct {
	N    int
	Rows []MultiLevelRow
}

// MultiLevel builds the canonical L-level construction for each depth and
// verifies it exactly (Lemma 1 over all SD pairs) — the induction the
// Discussion sketches, executed.
func MultiLevel(n int, depths []int) (*MultiLevelResult, error) {
	res := &MultiLevelResult{N: n}
	for _, l := range depths {
		m := topology.NewMultiFtree(n, l)
		if err := m.Validate(); err != nil {
			return nil, err
		}
		rt := routing.NewMultiLevelPaper(m)
		l1, err := analysis.CheckLemma1AllPairs(rt, m.Ports())
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, MultiLevelRow{
			Levels:      l,
			Design:      cost.MultiLevelNonblocking(n, l),
			Nonblocking: l1.Nonblocking,
		})
	}
	return res, nil
}

// Render writes the multi-level table.
func (t *MultiLevelResult) Render(w io.Writer) {
	fmt.Fprintf(w, "canonical L-level recursive nonblocking networks, n=%d, %d-port switches\n", t.N, t.N+t.N*t.N)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "levels\tports\tswitches\tswitches/port\tnonblocking (exact)")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.2f\t%v\n", r.Levels, r.Design.Ports, r.Design.Switches, r.Design.CostPerPort(), r.Nonblocking)
	}
	tw.Flush()
}

// ThreeLevel verifies the recursive construction and reports its cost.
func ThreeLevel(n int) (*ThreeLevelResult, error) {
	tl := topology.NewThreeLevelFtree(n, n*n*n+n*n)
	if err := tl.Validate(); err != nil {
		return nil, err
	}
	rt := routing.NewThreeLevelPaper(tl)
	l1, err := analysis.CheckLemma1AllPairs(rt, tl.Ports())
	if err != nil {
		return nil, err
	}
	return &ThreeLevelResult{
		N:           n,
		Design:      cost.ThreeLevelNonblocking(n),
		Nonblocking: l1.Nonblocking,
		PaperCount:  2*n*n*n*n + 3*n*n*n + n*n,
	}, nil
}

// Render writes the three-level summary.
func (t *ThreeLevelResult) Render(w io.Writer) {
	fmt.Fprintf(w, "3-level nonblocking ftree, n=%d: %d switches (%d-port), %d ports, nonblocking=%v\n",
		t.N, t.Design.Switches, t.Design.SwitchPorts, t.Design.Ports, t.Nonblocking)
	fmt.Fprintf(w, "note: paper prints 2n⁴+3n³+n² = %d switches; the construction uses 2n⁴+2n³+n² = %d\n",
		t.PaperCount, t.Design.Switches)
}

// BenesRow is one m value of experiment E9.
type BenesRow struct {
	M int
	// GlobalOK reports whether centralized edge-coloring routing handled
	// every tested permutation.
	GlobalOK bool
	// GreedyBlockFraction is the blocking fraction of the distributed
	// greedy-local router at the same m.
	GreedyBlockFraction float64
}

// BenesResult is experiment E9.
type BenesResult struct {
	N, R, Trials int
	Rows         []BenesRow
}

// Benes contrasts centralized rearrangeable routing (m = n suffices,
// m = n−1 fails) with a distributed local heuristic at the same m, over
// random full permutations.
func Benes(n, r, trials int, seed int64) (*BenesResult, error) {
	res := &BenesResult{N: n, R: r, Trials: trials}
	c := analysis.NewChecker(nil)
	for _, m := range []int{n - 1, n, 2*n - 1} {
		if m < 1 {
			continue
		}
		f := topology.NewFoldedClos(n, m, r)
		global := routing.NewGlobalRearrangeable(f)
		rng := rand.New(rand.NewSource(seed))
		ok := true
		for i := 0; i < trials; i++ {
			p := permutation.Random(rng, f.Ports())
			a, err := global.Route(p)
			if err != nil {
				ok = false
				break
			}
			c.Analyze(a)
			if c.HasContention() {
				ok = false
				break
			}
		}
		frac, _, err := analysis.BlockingProbability(routing.NewGreedyLocal(f), f.Ports(), trials, seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, BenesRow{M: m, GlobalOK: ok, GreedyBlockFraction: frac})
	}
	return res, nil
}

// Render writes the Benes comparison.
func (t *BenesResult) Render(w io.Writer) {
	fmt.Fprintf(w, "ftree(%d+m,%d), %d random permutations\n", t.N, t.R, t.Trials)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "m\tcentralized edge-coloring OK\tdistributed greedy P(contention)")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%v\t%.2f\n", r.M, r.GlobalOK, r.GreedyBlockFraction)
	}
	tw.Flush()
}

// ScalingResult is the Discussion's multi-level cost comparison.
type ScalingResult struct {
	Rows []cost.ScalingRow
}

// Scaling tabulates 2- vs 3-level nonblocking and rearrangeable designs.
func Scaling(ns []int) (*ScalingResult, error) {
	rows, err := cost.ScalingTable(ns)
	if err != nil {
		return nil, err
	}
	return &ScalingResult{Rows: rows}, nil
}

// Render writes the scaling table.
func (t *ScalingResult) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "N\tn\tnb 2-level sw/ports\tnb 3-level sw/ports\tFT(N,2) sw/ports\tFT(N,3) sw/ports\treplace-bottom sw/ports")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%d/%d\t%d/%d\t%d/%d\t%d/%d\t%d/%d\n",
			r.N, r.HostsPerSwitch,
			r.Nonblocking2L.Switches, r.Nonblocking2L.Ports,
			r.Nonblocking3L.Switches, r.Nonblocking3L.Ports,
			r.Rearrangeable2L.Switches, r.Rearrangeable2L.Ports,
			r.Rearrangeable3L.Switches, r.Rearrangeable3L.Ports,
			r.ReplaceBottomVariant.Switches, r.ReplaceBottomVariant.Ports)
	}
	tw.Flush()
}
