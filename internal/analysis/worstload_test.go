package analysis

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

func TestWorstCaseLinkLoadNonblockingIsOne(t *testing.T) {
	// Lemma 1 restated: the Theorem-3 routing's worst-case load is
	// exactly 1 on every link.
	f := topology.NewFoldedClos(3, 9, 7)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := WorstCaseLinkLoad(r, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoad != 1 {
		t.Fatalf("nonblocking worst-case load = %d", res.MaxLoad)
	}
	for l, load := range res.PerLink {
		if load != 1 {
			t.Fatalf("link %d worst-case load %d", l, load)
		}
	}
}

func TestWorstCaseLinkLoadDestMod(t *testing.T) {
	// Dest-mod with m = n² on ftree(2+4,5): host uplinks carry one
	// source each (load 1), but each trunk downlink t→w aggregates every
	// source toward one destination... per (t, w) the destinations are
	// w's hosts ≡ t mod m: with n=2 < m=4 exactly one destination per
	// (t, w), so downlinks stay at 1 while *uplinks* aggregate pairs from
	// both hosts of a switch toward destinations ≡ t mod 4 — distinct
	// sources and distinct destinations: worst-case 2.
	f := topology.NewFoldedClos(2, 4, 5)
	r := routing.NewDestMod(f)
	res, err := WorstCaseLinkLoad(r, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoad != 2 {
		t.Fatalf("dest-mod worst-case load = %d, want 2", res.MaxLoad)
	}
	// The witness permutation must actually realize the load.
	p, err := WorstCasePermutationFor(r, f.Ports(), res.Link)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Route(p)
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(a)
	if rep.MaxLoad != res.MaxLoad {
		t.Fatalf("witness realizes load %d, want %d", rep.MaxLoad, res.MaxLoad)
	}
}

func TestWorstCaseLinkLoadGrowsWithAggregation(t *testing.T) {
	// Source-mod routing: all pairs from one host share one top switch;
	// each downlink t→w then carries pairs from up to r−1 distinct
	// sources to n distinct destinations — worst-case min(sources, n)=n.
	f := topology.NewFoldedClos(3, 9, 7)
	r := routing.NewSourceMod(f)
	res, err := WorstCaseLinkLoad(r, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoad < 3 {
		t.Fatalf("source-mod worst-case load = %d, want >= n = 3", res.MaxLoad)
	}
	p, err := WorstCasePermutationFor(r, f.Ports(), res.Link)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Route(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := Check(a).MaxLoad; got != res.MaxLoad {
		t.Fatalf("witness load %d, want %d", got, res.MaxLoad)
	}
}

func TestWorstCasePermutationForErrors(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WorstCasePermutationFor(r, f.Ports(), topology.LinkID(99999)); err == nil {
		t.Fatal("unloaded link accepted")
	}
}
