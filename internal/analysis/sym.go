package analysis

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Symmetry-reduced exhaustive sweeps. A folded-Clos fabric's host
// relabelings (permutation.BlockSymmetry, the wreath product S_b ≀ S_r of
// within-switch and whole-switch permutations) conjugate permutation
// patterns into orbits along which every contention quantity is constant —
// provided the routing cooperates. The engines here sweep one canonical
// representative per orbit with the CSR delta checker, scale the counters
// by orbit size, and re-derive order-sensitive fields (FirstBlocked) by a
// targeted scan in the full engine's own enumeration order, so the
// SweepResult is byte-identical to the corresponding full sweep wherever
// both can run. When the symmetry argument does not hold — infeasible
// geometry, pattern-dependent routing, or a route table that fails the
// equivariance certificate — they fall back to the full engine, again
// byte-identically.
//
// Soundness rests on a per-pattern load-transport argument: if for a host
// relabeling g there is a link bijection λ with T(g·s, g·d) = λ(T(s, d))
// for every pair, then for any pattern p and its conjugate p' = g∘p∘g⁻¹,
// load_{p'}(λl) = load_p(l) — the load multiset, the maximum load, and
// blockedness are all invariant. Such a λ exists iff the multiset of
// per-link pair neighborhoods {pairs routed over l} is preserved when all
// pairs are relabeled through g, which routeTableEquivariant checks
// exactly, per group generator (the condition composes: λ_{gh} = λ_g∘λ_h,
// so generators suffice). Top-switch permutations never need checking —
// they are link relabelings absorbed into λ itself.

// SymStats reports how a symmetry-reduced sweep executed.
type SymStats struct {
	// Applied is true when the sweep ran over orbit representatives;
	// false when it fell back to the full engine.
	Applied bool
	// Reason explains a fallback (empty when Applied).
	Reason string
	// Orbits counts the representatives tested when Applied.
	Orbits int
	// GroupOrder is |S_b ≀ S_r| when the geometry was feasible.
	GroupOrder int
}

// SweepExhaustiveSym is SweepExhaustive reduced over the block symmetry
// group of a fabric with blockSize hosts per bottom switch: byte-identical
// result, hosts!/#orbits times fewer patterns routed. When the reduction
// does not apply the full engine runs instead (stats.Reason says why).
func SweepExhaustiveSym(r routing.Router, hosts, blockSize int) (*SweepResult, *SymStats) {
	res, stats, _ := sweepExhaustiveSym(context.Background(), r, hosts, blockSize, false, false, 0, nil)
	return res, stats
}

// SweepExhaustiveSymCtx is SweepExhaustiveSym with cooperative
// cancellation (see SweepExhaustiveCtx for the contract).
func SweepExhaustiveSymCtx(ctx context.Context, r routing.Router, hosts, blockSize int) (*SweepResult, *SymStats, error) {
	return sweepExhaustiveSym(ctx, r, hosts, blockSize, false, false, 0, nil)
}

// SweepExhaustiveSymFirstBlocked is SweepExhaustiveFirstBlocked with
// symmetry reduction. A nonblocking router is certified entirely from
// representatives; a blocking one pays one early-exit scan in Heap order
// to reproduce the full engine's examined-prefix counters exactly.
func SweepExhaustiveSymFirstBlocked(r routing.Router, hosts, blockSize int) (*SweepResult, *SymStats) {
	res, stats, _ := sweepExhaustiveSym(context.Background(), r, hosts, blockSize, true, false, 0, nil)
	return res, stats
}

// SweepExhaustiveSymFirstBlockedCtx is SweepExhaustiveSymFirstBlocked
// with cooperative cancellation.
func SweepExhaustiveSymFirstBlockedCtx(ctx context.Context, r routing.Router, hosts, blockSize int) (*SweepResult, *SymStats, error) {
	return sweepExhaustiveSym(ctx, r, hosts, blockSize, true, false, 0, nil)
}

// SweepExhaustiveSymParallelProgressCtx matches
// SweepExhaustiveParallelProgressCtx byte-for-byte: counters are the full
// parallel sweep's, and FirstBlocked is re-derived in the parallel merge
// order (first blocked pattern of the lowest-numbered level-1 prefix
// shard). The representative sweep itself is sequential — it is orders of
// magnitude smaller than the full sweep — so workers only feeds the
// fallback engine. fn receives orbit-scaled tested/blocked deltas that sum
// to the final counters.
func SweepExhaustiveSymParallelProgressCtx(ctx context.Context, r routing.Router, hosts, blockSize, workers int, fn ProgressFunc) (*SweepResult, *SymStats, error) {
	return sweepExhaustiveSym(ctx, r, hosts, blockSize, false, true, workers, fn)
}

// SweepSymShardCtx sweeps one contiguous shard of the orbit enumeration —
// the orbits whose top-level necklace index falls in [lo, hi), per
// permutation.BlockSymmetry.Shards — scaling counters by orbit size.
// FirstBlocked is the shard's first blocked representative, which only
// signals blockedness: a coordinator merging sym shards must re-derive
// the full-order witness itself (SweepSymWitness). Unlike the prefix
// shard sweep, inapplicability here is a returned error, not a fallback —
// a coordinator plans sym shards only after proving applicability, so a
// worker that disagrees is misconfigured and must say so loudly.
func SweepSymShardCtx(ctx context.Context, r routing.Router, hosts, blockSize, lo, hi int, fn ProgressFunc) (*SweepResult, *SymStats, error) {
	res := &SweepResult{}
	if err := ctx.Err(); err != nil {
		return res, &SymStats{}, err
	}
	sym, table, stats, err := prepareSym(r, hosts, blockSize)
	if err != nil {
		return res, stats, err
	}
	err = sweepSymOrbits(ctx, sym, table, res, stats, fn, lo, hi, false)
	return res, stats, err
}

// SymApplicable reports whether a symmetry-reduced sweep would actually
// reduce (geometry feasible, route table cacheable, routing equivariant)
// without running anything. Coordinators call this before planning sym
// shards; the answer is deterministic in (router, hosts, blockSize), so
// identically configured workers always agree with it.
func SymApplicable(r routing.Router, hosts, blockSize int) *SymStats {
	_, _, stats, _ := prepareSym(r, hosts, blockSize)
	return stats
}

// SweepSymWitness re-derives the FirstBlocked witness a full sweep would
// report, in the requested order: parallel order (first blocked pattern
// of the lowest-numbered level-1 prefix shard — what
// SweepExhaustiveParallel's merge yields) or sequential Heap order. Call
// it only when the sweep is known blocked, so the early-exit scan
// terminates at the witness. Exported for the distributed coordinator,
// which merges sym shard counters and must then attach the same witness a
// single-node sweep would.
func SweepSymWitness(ctx context.Context, r routing.Router, hosts int, parallelOrder bool) (*permutation.Permutation, error) {
	if !parallelOrder {
		res, err := sweepExhaustiveDelta(ctx, r, hosts, true, nil)
		return res.FirstBlocked, err
	}
	for shard := 0; shard < hosts; shard++ {
		res, err := SweepShardFirstBlockedCtx(ctx, r, hosts, []int{shard}, nil)
		if err != nil {
			return nil, err
		}
		if res.FirstBlocked != nil {
			return res.FirstBlocked, nil
		}
	}
	return nil, nil
}

// prepareSym runs the three applicability gates and returns the symmetry
// group and route table on success; on failure stats.Reason names the
// gate and err mirrors it.
func prepareSym(r routing.Router, hosts, blockSize int) (*permutation.BlockSymmetry, *routing.RouteTable, *SymStats, error) {
	stats := &SymStats{}
	if err := permutation.SymFeasible(hosts, blockSize); err != nil {
		stats.Reason = err.Error()
		return nil, nil, stats, fmt.Errorf("analysis: symmetry reduction not applicable: %w", err)
	}
	sym, err := permutation.NewBlockSymmetry(hosts, blockSize)
	if err != nil {
		stats.Reason = err.Error()
		return nil, nil, stats, fmt.Errorf("analysis: symmetry reduction not applicable: %w", err)
	}
	stats.GroupOrder = sym.GroupOrder()
	table, err := routing.BuildRouteTable(r, hosts)
	if err != nil {
		stats.Reason = fmt.Sprintf("no pattern-independent route table: %v", err)
		return nil, nil, stats, fmt.Errorf("analysis: symmetry reduction not applicable: %s", stats.Reason)
	}
	if !routeTableEquivariant(table, sym.Generators()) {
		stats.Reason = fmt.Sprintf("routing %q is not equivariant under the block symmetry group", table.RouterName())
		return nil, nil, stats, fmt.Errorf("analysis: symmetry reduction not applicable: %s", stats.Reason)
	}
	stats.Applied = true
	return sym, table, stats, nil
}

// sweepSymOrbits drives the delta checker over the representatives in
// [lo, hi), accumulating orbit-scaled counters into res. FirstBlocked is
// set to the first blocked representative. firstOnly stops at it.
func sweepSymOrbits(ctx context.Context, sym *permutation.BlockSymmetry, table *routing.RouteTable, res *SweepResult, stats *SymStats, fn ProgressFunc, lo, hi int, firstOnly bool) error {
	d := NewDeltaChecker(table)
	cancel := newSweepCanceller(ctx)
	prog := progressMeter{fn: fn}
	cancelled := false
	sym.OrbitsRange(lo, hi, func(rep *permutation.Permutation, orbit int) bool {
		if cancel.cancelled() {
			cancelled = true
			return false
		}
		d.Reset(rep)
		stats.Orbits++
		res.Tested += orbit
		if d.MaxLoad() > res.MaxLinkLoad {
			res.MaxLinkLoad = d.MaxLoad()
		}
		if d.HasContention() {
			res.Blocked += orbit
			if res.FirstBlocked == nil {
				// The enumerator reuses rep between orbits; retain a copy.
				res.FirstBlocked = rep.Clone()
			}
			if firstOnly {
				return false
			}
		}
		prog.step(res.Tested, res.Blocked)
		return true
	})
	prog.flush(res.Tested, res.Blocked)
	if cancelled {
		return ctx.Err()
	}
	return nil
}

func sweepExhaustiveSym(ctx context.Context, r routing.Router, hosts, blockSize int, firstOnly, parallelWitness bool, workers int, fn ProgressFunc) (*SweepResult, *SymStats, error) {
	if err := ctx.Err(); err != nil {
		return &SweepResult{}, &SymStats{}, err
	}
	sym, table, stats, _ := prepareSym(r, hosts, blockSize)
	if !stats.Applied {
		res, ferr := symFallback(ctx, r, hosts, firstOnly, parallelWitness, workers, fn)
		return res, stats, ferr
	}
	res := &SweepResult{}
	if err := sweepSymOrbits(ctx, sym, table, res, stats, fn, 0, sym.NecklaceCount(), firstOnly); err != nil {
		return res, stats, err
	}
	if !firstOnly && res.Tested != permutation.CountFull(hosts) {
		// Defensive: the orbit enumeration failed to partition the space.
		// The counting property is heavily tested, so this is unreachable,
		// but a wrong certificate must never be served — discard and run
		// the full engine.
		stats.Applied = false
		stats.Reason = fmt.Sprintf("internal orbit-count mismatch: %d != %d!", res.Tested, hosts)
		res, ferr := symFallback(ctx, r, hosts, firstOnly, parallelWitness, workers, nil)
		return res, stats, ferr
	}
	if res.Blocked == 0 {
		return res, stats, nil
	}
	// Blocked: order-sensitive fields come from the full engine's own
	// enumeration order. In firstOnly mode the whole result does — the
	// full engine's examined prefix (Tested, MaxLinkLoad) is not derivable
	// from orbits — and the scan early-exits at the first blocked pattern,
	// whose existence the orbit sweep just proved.
	if firstOnly {
		fres, ferr := sweepExhaustiveDelta(ctx, r, hosts, true, nil)
		return fres, stats, ferr
	}
	w, werr := SweepSymWitness(ctx, r, hosts, parallelWitness)
	if werr != nil {
		return res, stats, werr
	}
	res.FirstBlocked = w
	return res, stats, nil
}

// symFallback runs the full engine matching the caller's requested shape.
func symFallback(ctx context.Context, r routing.Router, hosts int, firstOnly, parallel bool, workers int, fn ProgressFunc) (*SweepResult, error) {
	if parallel {
		return sweepExhaustiveParallel(ctx, r, hosts, workers, fn)
	}
	return sweepExhaustiveDelta(ctx, r, hosts, firstOnly, fn)
}

// routeTableEquivariant checks, for every generator g, that relabeling
// all SD pairs through g permutes the per-link pair neighborhoods — the
// exact condition for a load-transporting link bijection λ_g to exist.
// Neighborhoods are compared as multisets of exact pair-index lists (both
// sides built in ascending pair order, so equal sets compare equally);
// no hashing, no false positives. The lists live in two flat CSR buffers
// reused across generators, so the whole certificate costs a handful of
// allocations instead of per-link append churn.
func routeTableEquivariant(t *routing.RouteTable, gens []*permutation.Permutation) bool {
	hosts := t.Hosts()
	numLinks := t.NumLinks()
	fwd := newPairCSR(numLinks, t.Entries())
	rel := newPairCSR(numLinks, t.Entries())
	for _, g := range gens {
		fwd.build(t, hosts, nil)
		rel.build(t, hosts, g)
		// Multiset equality of the per-link lists: order both sides'
		// links by list content ((length, lex) on pair indices) and
		// compare position by position.
		fwd.sortByContent()
		rel.sortByContent()
		for k := 0; k < numLinks; k++ {
			a := fwd.list(fwd.ord[k])
			b := rel.list(rel.ord[k])
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
	}
	return true
}

// pairCSR stores, for every link, the list of pair indices routed over it,
// in one flat buffer with per-link offsets — the reusable scratch behind
// routeTableEquivariant.
type pairCSR struct {
	off  []int32 // off[l]..off[l+1] bounds link l's list in data
	pos  []int32 // fill cursors during build
	data []int32 // pair indices, ascending within each link
	ord  []int   // link indices sorted by list content
}

func newPairCSR(numLinks, entries int) *pairCSR {
	return &pairCSR{
		off:  make([]int32, numLinks+1),
		pos:  make([]int32, numLinks),
		data: make([]int32, entries),
		ord:  make([]int, numLinks),
	}
}

// build fills the CSR with pair index s*hosts+d appended to every link of
// PairLinks(g(s), g(d)) (identity when g is nil), iterating pairs in
// ascending index order so each link's list comes out sorted.
func (c *pairCSR) build(t *routing.RouteTable, hosts int, g *permutation.Permutation) {
	for i := range c.pos {
		c.pos[i] = 0
	}
	forEachPair(t, hosts, g, func(_ int32, links []topology.LinkID) {
		for _, l := range links {
			c.pos[l]++
		}
	})
	c.off[0] = 0
	for l := 0; l < len(c.pos); l++ {
		c.off[l+1] = c.off[l] + c.pos[l]
		c.pos[l] = c.off[l]
	}
	forEachPair(t, hosts, g, func(idx int32, links []topology.LinkID) {
		for _, l := range links {
			c.data[c.pos[l]] = idx
			c.pos[l]++
		}
	})
}

func forEachPair(t *routing.RouteTable, hosts int, g *permutation.Permutation, fn func(idx int32, links []topology.LinkID)) {
	for s := 0; s < hosts; s++ {
		for d := 0; d < hosts; d++ {
			if s == d {
				continue
			}
			rs, rd := s, d
			if g != nil {
				rs, rd = g.Dst(s), g.Dst(d)
			}
			fn(int32(s*hosts+d), t.PairLinks(rs, rd))
		}
	}
}

func (c *pairCSR) list(l int) []int32 { return c.data[c.off[l]:c.off[l+1]] }

func (c *pairCSR) sortByContent() {
	for i := range c.ord {
		c.ord[i] = i
	}
	sort.Slice(c.ord, func(i, j int) bool {
		a, b := c.list(c.ord[i]), c.list(c.ord[j])
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
