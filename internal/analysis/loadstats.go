package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/routing"
)

// LoadStats summarizes the per-link SD-pair load distribution of a routed
// pattern — the quantity the blocking-probability literature tracks and
// the simulator's serialization behaviour is governed by.
type LoadStats struct {
	// Histogram[k] counts links carrying exactly k SD pairs (k ≥ 1).
	Histogram map[int]int
	// LoadedLinks is the number of links carrying at least one pair.
	LoadedLinks int
	// MaxLoad is the largest per-link load.
	MaxLoad int
	// MeanLoad is the average load over loaded links.
	MeanLoad float64
	// ContendedFraction is the share of loaded links with load ≥ 2.
	ContendedFraction float64
}

// ComputeLoadStats builds the load distribution of an assignment.
func ComputeLoadStats(a *routing.Assignment) *LoadStats {
	c := NewChecker(a.Net)
	c.Analyze(a)
	st := &LoadStats{Histogram: make(map[int]int)}
	total := 0
	contended := 0
	for _, l := range c.LoadedLinks() {
		k := len(c.PairsOn(l))
		st.Histogram[k]++
		st.LoadedLinks++
		total += k
		if k > st.MaxLoad {
			st.MaxLoad = k
		}
		if k >= 2 {
			contended++
		}
	}
	if st.LoadedLinks > 0 {
		st.MeanLoad = float64(total) / float64(st.LoadedLinks)
		st.ContendedFraction = float64(contended) / float64(st.LoadedLinks)
	}
	return st
}

// String renders the distribution compactly, e.g.
// "links=96 mean=1.25 max=3 contended=12.5% hist[1:84 2:8 3:4]".
func (s *LoadStats) String() string {
	keys := make([]int, 0, len(s.Histogram))
	for k := range s.Histogram {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var hist strings.Builder
	for i, k := range keys {
		if i > 0 {
			hist.WriteByte(' ')
		}
		fmt.Fprintf(&hist, "%d:%d", k, s.Histogram[k])
	}
	return fmt.Sprintf("links=%d mean=%.2f max=%d contended=%.1f%% hist[%s]",
		s.LoadedLinks, s.MeanLoad, s.MaxLoad, 100*s.ContendedFraction, hist.String())
}
