package analysis

import (
	"fmt"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Exact worst-case contention for deterministic routing, in the spirit of
// the oblivious-performance-ratio analysis of [17]: for a single-path
// deterministic routing, the worst number of SD pairs a permutation can
// simultaneously place on link L equals the maximum matching of L's
// pair set viewed as a bipartite graph (sources × destinations) — a
// permutation may use each source and each destination at most once
// (Property 1), and conversely any source/destination-distinct subset
// extends to a permutation. Maximizing over links yields the routing's
// exact worst-case link load:
//
//   - 1 for a nonblocking routing (this is Lemma 1 restated: every link's
//     pair set has all-equal sources or all-equal destinations, so its
//     matching number is 1);
//   - ≥ 2 for every blocking routing, quantifying *how* blocking it is.

// WorstLoadResult reports the exact worst-case analysis.
type WorstLoadResult struct {
	// MaxLoad is the largest permutation-realizable load on any link.
	MaxLoad int
	// Link attains the maximum.
	Link topology.LinkID
	// PerLink maps every loaded link to its worst-case load.
	PerLink map[topology.LinkID]int
}

// WorstCaseLinkLoad routes all SD pairs of an N-host network under a
// single-path deterministic router and computes, per link, the maximum
// matching of its pair set — the exact worst-case number of permutation
// flows that can collide there.
func WorstCaseLinkLoad(r routing.PairRouter, hosts int) (*WorstLoadResult, error) {
	res, err := CheckLemma1AllPairs(r, hosts)
	if err != nil {
		return nil, err
	}
	return worstLoadFrom(res), nil
}

// WorstCaseLinkLoadParallel is WorstCaseLinkLoad with the all-pairs
// routing sharded over `workers` goroutines (CheckLemma1AllPairsParallel);
// the result is identical to the sequential analysis.
func WorstCaseLinkLoadParallel(r routing.PairRouter, hosts, workers int) (*WorstLoadResult, error) {
	res, err := CheckLemma1AllPairsParallel(r, hosts, workers)
	if err != nil {
		return nil, err
	}
	return worstLoadFrom(res), nil
}

func worstLoadFrom(res *Lemma1Result) *WorstLoadResult {
	out := &WorstLoadResult{PerLink: make(map[topology.LinkID]int, len(res.Links)), Link: topology.NoLink}
	for id, view := range res.Links {
		load := maxBipartiteMatching(view)
		out.PerLink[id] = load
		// Ties break toward the lowest link ID so sequential and parallel
		// analyses report the same attaining link.
		if load > out.MaxLoad || (load == out.MaxLoad && out.Link != topology.NoLink && id < out.Link) {
			out.MaxLoad = load
			out.Link = id
		}
	}
	return out
}

// maxBipartiteMatching computes the maximum matching of a link's SD pairs
// (sources left, destinations right) by augmenting paths — Kuhn's
// algorithm, adequate for per-link pair sets.
func maxBipartiteMatching(view *LinkSDView) int {
	srcIdx := make(map[int]int, len(view.Sources))
	for i, s := range view.Sources {
		srcIdx[s] = i
	}
	dstIdx := make(map[int]int, len(view.Dests))
	for i, d := range view.Dests {
		dstIdx[d] = i
	}
	adj := make([][]int, len(view.Sources))
	for _, pr := range view.Pairs {
		si := srcIdx[pr.Src]
		adj[si] = append(adj[si], dstIdx[pr.Dst])
	}
	matchDst := make([]int, len(view.Dests))
	for i := range matchDst {
		matchDst[i] = -1
	}
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		for _, v := range adj[u] {
			if seen[v] {
				continue
			}
			seen[v] = true
			if matchDst[v] == -1 || try(matchDst[v], seen) {
				matchDst[v] = u
				return true
			}
		}
		return false
	}
	count := 0
	for u := range adj {
		seen := make([]bool, len(view.Dests))
		if try(u, seen) {
			count++
		}
	}
	return count
}

// WorstCasePermutationFor constructs a permutation realizing the
// worst-case load on the given link: the matched pairs of the link's
// maximum matching, which are source- and destination-distinct by
// construction. The returned pattern routes `load` pairs over one link.
func WorstCasePermutationFor(r routing.PairRouter, hosts int, link topology.LinkID) (*permutation.Permutation, error) {
	res, err := CheckLemma1AllPairs(r, hosts)
	if err != nil {
		return nil, err
	}
	view, ok := res.Links[link]
	if !ok {
		return nil, fmt.Errorf("analysis: link %d carries no SD pairs", link)
	}
	// Re-run the matching, keeping the matched pairs.
	srcIdx := make(map[int]int, len(view.Sources))
	for i, s := range view.Sources {
		srcIdx[s] = i
	}
	dstIdx := make(map[int]int, len(view.Dests))
	for i, d := range view.Dests {
		dstIdx[d] = i
	}
	adj := make([][]int, len(view.Sources))
	for _, pr := range view.Pairs {
		si := srcIdx[pr.Src]
		adj[si] = append(adj[si], dstIdx[pr.Dst])
	}
	matchDst := make([]int, len(view.Dests))
	for i := range matchDst {
		matchDst[i] = -1
	}
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		for _, v := range adj[u] {
			if seen[v] {
				continue
			}
			seen[v] = true
			if matchDst[v] == -1 || try(matchDst[v], seen) {
				matchDst[v] = u
				return true
			}
		}
		return false
	}
	for u := range adj {
		seen := make([]bool, len(view.Dests))
		try(u, seen)
	}
	p := permutation.New(hosts)
	for v, u := range matchDst {
		if u == -1 {
			continue
		}
		if err := p.Add(view.Sources[u], view.Dests[v]); err != nil {
			return nil, fmt.Errorf("analysis: matching not permutation-compatible: %w", err)
		}
	}
	return p, nil
}
