package analysis

import (
	"strings"
	"testing"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestLoadStatsNonblockingAllOnes(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 5)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Route(permutation.SwitchShift(2, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeLoadStats(a)
	if st.MaxLoad != 1 || st.ContendedFraction != 0 || st.MeanLoad != 1 {
		t.Fatalf("nonblocking stats: %+v", st)
	}
	// Each of the 10 cross-switch pairs uses 4 links, all distinct.
	if st.LoadedLinks != 40 || st.Histogram[1] != 40 {
		t.Fatalf("loaded links: %+v", st)
	}
	if !strings.Contains(st.String(), "max=1") {
		t.Fatalf("String: %s", st)
	}
}

func TestLoadStatsContended(t *testing.T) {
	f := topology.NewFoldedClos(2, 2, 3)
	collide := &routing.FtreeSinglePath{F: f, RouterName: "collide", TopChoice: func(s, d int) int { return 0 }}
	p, err := permutation.FromPairs(f.Ports(), []permutation.Pair{{Src: 0, Dst: 4}, {Src: 2, Dst: 5}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := collide.Route(p)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeLoadStats(a)
	if st.MaxLoad != 2 || st.Histogram[2] != 1 {
		t.Fatalf("contended stats: %+v", st)
	}
	if st.ContendedFraction <= 0 || st.MeanLoad <= 1 {
		t.Fatalf("fractions: %+v", st)
	}
	if !strings.Contains(st.String(), "2:1") {
		t.Fatalf("String: %s", st)
	}
}

func TestLoadStatsEmpty(t *testing.T) {
	f := topology.NewFoldedClos(2, 2, 3)
	r, err := routing.NewPaperDeterministicFolded(f), error(nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Route(permutation.New(f.Ports()))
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeLoadStats(a)
	if st.LoadedLinks != 0 || st.MeanLoad != 0 {
		t.Fatalf("empty stats: %+v", st)
	}
}
