package analysis

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

func TestWorstCaseSearchFindsHeavyContention(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 5)
	s := &WorstCaseSearch{
		Router:   routing.NewDestMod(f),
		Hosts:    f.Ports(),
		Restarts: 3,
		Steps:    60,
		Seed:     1,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Permutation == nil || res.Evaluated == 0 {
		t.Fatal("search produced nothing")
	}
	if res.ContendedLinks < 2 {
		t.Fatalf("hill climbing found only %d contended links on dest-mod", res.ContendedLinks)
	}
	// Re-verify the reported pattern independently.
	a, err := s.Router.Route(res.Permutation)
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(a)
	if len(rep.Contended) != res.ContendedLinks || rep.MaxLoad != res.MaxLoad {
		t.Fatalf("reported (%d,%d) vs recomputed (%d,%d)",
			res.ContendedLinks, res.MaxLoad, len(rep.Contended), rep.MaxLoad)
	}
}

func TestWorstCaseSearchOnNonblockingStaysZero(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 5)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	s := &WorstCaseSearch{Router: r, Hosts: f.Ports(), Restarts: 2, Steps: 40, Seed: 2}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ContendedLinks != 0 || res.MaxLoad > 1 {
		t.Fatalf("adversary found contention on the nonblocking routing: %+v", res)
	}
}

func TestWorstCaseSearchSurfacesRoutingErrors(t *testing.T) {
	f := topology.NewFoldedClos(2, 1, 4)
	ad, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	s := &WorstCaseSearch{Router: ad, Hosts: f.Ports(), Restarts: 1, Steps: 5, Seed: 3}
	if _, err := s.Run(); err == nil {
		t.Fatal("expected routing error with m=1")
	}
}
