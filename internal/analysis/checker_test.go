package analysis

import (
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// checkReference is the original map-based Check, kept verbatim as the
// behavioural oracle for the flat-array Checker: identical LinkPairs
// content, identical ascending Contended list, identical MaxLoad.
func checkReference(a *routing.Assignment) *Report {
	rep := &Report{Assignment: a, LinkPairs: make(map[topology.LinkID][]int)}
	for i, ps := range a.PathSets {
		seen := map[topology.LinkID]bool{}
		for _, p := range ps {
			for _, l := range p.Links {
				if !seen[l] {
					seen[l] = true
					rep.LinkPairs[l] = append(rep.LinkPairs[l], i)
				}
			}
		}
	}
	for l, pairs := range rep.LinkPairs {
		if len(pairs) > rep.MaxLoad {
			rep.MaxLoad = len(pairs)
		}
		if len(pairs) >= 2 {
			rep.Contended = append(rep.Contended, l)
		}
	}
	slices.Sort(rep.Contended)
	return rep
}

func reportsMatch(t *testing.T, name string, got, want *Report) {
	t.Helper()
	if got.MaxLoad != want.MaxLoad {
		t.Fatalf("%s: MaxLoad %d, want %d", name, got.MaxLoad, want.MaxLoad)
	}
	if !reflect.DeepEqual(got.Contended, want.Contended) {
		t.Fatalf("%s: Contended %v, want %v", name, got.Contended, want.Contended)
	}
	if !reflect.DeepEqual(got.LinkPairs, want.LinkPairs) {
		t.Fatalf("%s: LinkPairs mismatch\n got %v\nwant %v", name, got.LinkPairs, want.LinkPairs)
	}
}

// TestCheckerGoldenParity drives Check and a single reused Checker over a
// corpus of routed patterns — single-path and multipath routers, folded
// Clos and m-port n-tree, full and partial permutations, clean and
// contended — and demands byte-identical reports from the seed map-based
// implementation.
func TestCheckerGoldenParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	type routed struct {
		name string
		a    *routing.Assignment
	}
	var cases []routed
	add := func(r routing.Router, p *permutation.Permutation) {
		a, err := r.Route(p)
		if err != nil {
			t.Fatalf("%s on %s: %v", r.Name(), p, err)
		}
		cases = append(cases, routed{fmt.Sprintf("%s/%s", r.Name(), p), a})
	}

	f := topology.NewFoldedClos(2, 4, 3)
	paper, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*permutation.Permutation{
		permutation.Identity(f.Ports()),
		permutation.SwitchShift(2, 3, 1),
		permutation.Random(rng, f.Ports()),
		permutation.RandomPartial(rng, f.Ports(), 0.5),
		permutation.RandomPartial(rng, f.Ports(), 0.1),
	} {
		for _, r := range []routing.Router{paper, routing.NewDestMod(f), routing.NewFullSpray(f)} {
			add(r, p)
		}
	}

	tr := topology.NewMPortNTree(4, 2)
	spray, err := routing.NewMNTSpray(tr, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*permutation.Permutation{
		permutation.Random(rng, tr.Hosts()),
		permutation.RandomPartial(rng, tr.Hosts(), 0.4),
	} {
		for _, r := range []routing.Router{routing.NewMNTDestMod(tr), routing.NewMNTRandomFixed(tr, 5), spray} {
			add(r, p)
		}
	}

	c := NewChecker(nil) // one scratch Checker reused across every case and both networks
	for _, tc := range cases {
		want := checkReference(tc.a)
		reportsMatch(t, tc.name+"/Check", Check(tc.a), want)
		c.Analyze(tc.a)
		reportsMatch(t, tc.name+"/Checker.Report", c.Report(), want)
		if c.MaxLoad() != want.MaxLoad {
			t.Fatalf("%s: Checker.MaxLoad %d, want %d", tc.name, c.MaxLoad(), want.MaxLoad)
		}
		if c.HasContention() != (len(want.Contended) > 0) {
			t.Fatalf("%s: HasContention %v", tc.name, c.HasContention())
		}
		if c.ContendedCount() != len(want.Contended) {
			t.Fatalf("%s: ContendedCount %d, want %d", tc.name, c.ContendedCount(), len(want.Contended))
		}
		got := append([]topology.LinkID(nil), c.ContendedLinks()...)
		if !reflect.DeepEqual(got, want.Contended) {
			t.Fatalf("%s: ContendedLinks %v, want %v", tc.name, got, want.Contended)
		}
		if len(c.LoadedLinks()) != len(want.LinkPairs) {
			t.Fatalf("%s: %d loaded links, want %d", tc.name, len(c.LoadedLinks()), len(want.LinkPairs))
		}
		for _, l := range c.LoadedLinks() {
			if !reflect.DeepEqual(c.PairsOn(l), want.LinkPairs[l]) {
				t.Fatalf("%s: PairsOn(%d) = %v, want %v", tc.name, l, c.PairsOn(l), want.LinkPairs[l])
			}
		}
	}
}

func TestCheckEmptyAssignment(t *testing.T) {
	f := topology.NewFoldedClos(2, 2, 3)
	a := &routing.Assignment{Net: f.Net}
	rep := Check(a)
	if rep.MaxLoad != 0 || rep.HasContention() || len(rep.LinkPairs) != 0 || rep.Contended != nil {
		t.Fatalf("empty assignment: %+v", rep)
	}
	c := NewChecker(f.Net)
	c.Analyze(a)
	if c.MaxLoad() != 0 || c.Pairs() != 0 || c.HasContention() || len(c.LoadedLinks()) != 0 {
		t.Fatal("empty assignment leaves Checker state dirty")
	}
	reportsMatch(t, "empty", c.Report(), checkReference(a))
}

// TestCheckerMultipathCountsOncePerPair pins the §IV.B accounting rule at
// the Checker level: a pair whose paths share links loads each shared link
// once, not once per path.
func TestCheckerMultipathCountsOncePerPair(t *testing.T) {
	f := topology.NewFoldedClos(2, 2, 3)
	p1 := f.RouteVia(f.HostID(0, 0), f.HostID(2, 0), 0)
	p2 := f.RouteVia(f.HostID(0, 0), f.HostID(2, 0), 1)
	a := &routing.Assignment{
		Net:      f.Net,
		Pairs:    []permutation.Pair{{Src: 0, Dst: 4}},
		PathSets: [][]topology.Path{{p1, p2}},
	}
	c := NewChecker(f.Net)
	c.Analyze(a)
	if c.MaxLoad() != 1 || c.HasContention() {
		t.Fatalf("single pair: MaxLoad=%d HasContention=%v", c.MaxLoad(), c.HasContention())
	}
	for _, l := range c.LoadedLinks() {
		if !reflect.DeepEqual(c.PairsOn(l), []int{0}) {
			t.Fatalf("link %d loaded %v, want [0]", l, c.PairsOn(l))
		}
	}
	reportsMatch(t, "multipath", c.Report(), checkReference(a))
}

// TestCheckerReportIndependence materializes Reports from a reused Checker
// and verifies later Analyze calls do not corrupt earlier Reports (no
// aliasing of scratch state).
func TestCheckerReportIndependence(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	destmod := routing.NewDestMod(f)
	rng := rand.New(rand.NewSource(3))
	c := NewChecker(nil)
	var reports, wants []*Report
	for i := 0; i < 5; i++ {
		p := permutation.Random(rng, f.Ports())
		a, err := destmod.Route(p)
		if err != nil {
			t.Fatal(err)
		}
		c.Analyze(a)
		reports = append(reports, c.Report())
		wants = append(wants, checkReference(a))
	}
	for i := range reports {
		reportsMatch(t, fmt.Sprintf("report %d", i), reports[i], wants[i])
	}
}

// TestAnalyzePatternFastPathMatchesRoute verifies the PairLinkAppender
// fast path computes the same verdicts as Route+Check, and reports exactly
// the error Route would.
func TestAnalyzePatternFastPathMatchesRoute(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	paper, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := interface{}(paper).(routing.PairLinkAppender); !ok {
		t.Fatal("FtreeSinglePath must implement PairLinkAppender for the fast path")
	}
	rng := rand.New(rand.NewSource(9))
	c := NewChecker(nil)
	for i := 0; i < 4; i++ {
		p := permutation.Random(rng, f.Ports())
		if err := c.AnalyzePattern(paper, p); err != nil {
			t.Fatal(err)
		}
		a, err := paper.Route(p)
		if err != nil {
			t.Fatal(err)
		}
		want := checkReference(a)
		if c.MaxLoad() != want.MaxLoad || c.HasContention() != (len(want.Contended) > 0) {
			t.Fatalf("fast path MaxLoad=%d HasContention=%v, want %d/%v",
				c.MaxLoad(), c.HasContention(), want.MaxLoad, len(want.Contended) > 0)
		}
		got := append([]topology.LinkID(nil), c.ContendedLinks()...)
		if !reflect.DeepEqual(got, want.Contended) {
			t.Fatalf("fast path ContendedLinks %v, want %v", got, want.Contended)
		}
	}
	// Error parity: an out-of-range trunk choice must surface through the
	// fast path with the exact message Route produces.
	bad := &routing.FtreeSinglePath{F: f, RouterName: "bad", TopChoice: func(s, d int) int { return 99 }}
	p := permutation.SwitchShift(2, 3, 1)
	errFast := c.AnalyzePattern(bad, p)
	_, errRoute := bad.Route(p)
	if errFast == nil || errRoute == nil {
		t.Fatalf("expected errors, got fast=%v route=%v", errFast, errRoute)
	}
	if errFast.Error() != errRoute.Error() {
		t.Fatalf("fast-path error %q differs from Route error %q", errFast, errRoute)
	}
}
