package analysis

import (
	"context"

	"repro/internal/routing"
)

// Sweep progress reporting. Long sweeps (minutes of wall clock once the
// host count passes the delta engine's comfort zone) are consumed by
// interactive clients — nbserve's SSE job streams, nbverify's -remote
// mode — that need to show liveness without slowing the hot loop. The
// hooks here piggyback on the existing strided cancellation poll points:
// the per-pattern cost is the same nil check the canceller already pays,
// and the callback fires at most once per cancelCheckMask+1 patterns plus
// one flush per enumeration.

// ProgressFunc receives incremental sweep progress: the number of patterns
// tested and found blocked since the previous call from the same sweep
// goroutine. Parallel sweeps invoke one callback concurrently from every
// worker, so implementations must be safe for concurrent use (atomic adds
// are the intended shape); deltas from all workers sum to the final
// SweepResult counters. Callbacks run on the sweep hot path — keep them
// cheap and never block.
type ProgressFunc func(testedDelta, blockedDelta int)

// progressMeter forwards cumulative counters as deltas on the same stride
// as the cancellation poll. The zero fn disables it at the cost of one nil
// check per pattern.
type progressMeter struct {
	fn                      ProgressFunc
	lastTested, lastBlocked int
	tick                    uint
}

// step is called once per pattern with the sweep's cumulative counters.
func (m *progressMeter) step(tested, blocked int) {
	if m.fn == nil {
		return
	}
	m.tick++
	if m.tick&cancelCheckMask != 0 {
		return
	}
	m.fn(tested-m.lastTested, blocked-m.lastBlocked)
	m.lastTested, m.lastBlocked = tested, blocked
}

// flush reports the remainder below one stride; call once when the
// enumeration ends so the deltas sum exactly to the final counters.
func (m *progressMeter) flush(tested, blocked int) {
	if m.fn == nil {
		return
	}
	if dt, db := tested-m.lastTested, blocked-m.lastBlocked; dt != 0 || db != 0 {
		m.fn(dt, db)
	}
	m.lastTested, m.lastBlocked = tested, blocked
}

// SweepExhaustiveProgressCtx is SweepExhaustiveCtx with progress
// reporting: fn receives tested/blocked deltas on the cancellation-poll
// stride. A nil fn makes it exactly SweepExhaustiveCtx.
func SweepExhaustiveProgressCtx(ctx context.Context, r routing.Router, hosts int, fn ProgressFunc) (*SweepResult, error) {
	return sweepExhaustiveDelta(ctx, r, hosts, false, fn)
}

// SweepExhaustiveParallelProgressCtx is SweepExhaustiveParallelCtx with
// progress reporting: every worker goroutine forwards its deltas to fn
// (which therefore must be concurrency-safe). A nil fn makes it exactly
// SweepExhaustiveParallelCtx.
func SweepExhaustiveParallelProgressCtx(ctx context.Context, r routing.Router, hosts, workers int, fn ProgressFunc) (*SweepResult, error) {
	return sweepExhaustiveParallel(ctx, r, hosts, workers, fn)
}
