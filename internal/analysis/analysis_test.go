package analysis

import (
	"strings"
	"testing"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestCheckDetectsContention(t *testing.T) {
	f := topology.NewFoldedClos(2, 2, 3)
	// Force two different pairs through top switch 0 into switch 2.
	p1 := f.RouteVia(f.HostID(0, 0), f.HostID(2, 0), 0)
	p2 := f.RouteVia(f.HostID(1, 0), f.HostID(2, 1), 0)
	a := &routing.Assignment{
		Net:      f.Net,
		Pairs:    []permutation.Pair{{Src: 0, Dst: 4}, {Src: 2, Dst: 5}},
		PathSets: [][]topology.Path{{p1}, {p2}},
	}
	rep := Check(a)
	if !rep.HasContention() {
		t.Fatal("shared downlink not detected")
	}
	if rep.MaxLoad != 2 {
		t.Fatalf("max load %d, want 2", rep.MaxLoad)
	}
	if err := rep.ContentionError(); err == nil || !strings.Contains(err.Error(), "carries 2 SD pairs") {
		t.Fatalf("ContentionError = %v", err)
	}
	// The contended link must be the downlink top0 -> bottom2.
	want := f.DownLink(0, 2)
	found := false
	for _, l := range rep.Contended {
		if l == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("contended links %v do not include %d", rep.Contended, want)
	}
}

func TestCheckCleanAssignment(t *testing.T) {
	f := topology.NewFoldedClos(2, 2, 3)
	p1 := f.RouteVia(f.HostID(0, 0), f.HostID(2, 0), 0)
	p2 := f.RouteVia(f.HostID(1, 0), f.HostID(2, 1), 1)
	a := &routing.Assignment{
		Net:      f.Net,
		Pairs:    []permutation.Pair{{Src: 0, Dst: 4}, {Src: 2, Dst: 5}},
		PathSets: [][]topology.Path{{p1}, {p2}},
	}
	rep := Check(a)
	if rep.HasContention() {
		t.Fatal("false contention")
	}
	if rep.ContentionError() != nil {
		t.Fatal("ContentionError should be nil")
	}
	if rep.MaxLoad != 1 {
		t.Fatalf("max load %d", rep.MaxLoad)
	}
}

func TestCheckMultipathCountsOncePerPair(t *testing.T) {
	// A pair whose two paths share their host uplink must not count
	// twice on that link.
	f := topology.NewFoldedClos(2, 2, 3)
	p1 := f.RouteVia(f.HostID(0, 0), f.HostID(2, 0), 0)
	p2 := f.RouteVia(f.HostID(0, 0), f.HostID(2, 0), 1)
	a := &routing.Assignment{
		Net:      f.Net,
		Pairs:    []permutation.Pair{{Src: 0, Dst: 4}},
		PathSets: [][]topology.Path{{p1, p2}},
	}
	rep := Check(a)
	if rep.HasContention() {
		t.Fatal("single pair cannot contend with itself")
	}
	if rep.MaxLoad != 1 {
		t.Fatalf("max load %d, want 1", rep.MaxLoad)
	}
}

func TestBlockingWitnessErrorsOnNonblocking(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 5)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckLemma1AllPairs(r, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BlockingWitness(res, f.Ports()); err == nil {
		t.Fatal("witness for nonblocking routing should error")
	}
}

func TestSweepRandomReportsBlocked(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 5)
	r := routing.NewDestMod(f)
	res := SweepRandom(r, f.Ports(), 50, 13)
	if res.RouteErr != nil {
		t.Fatal(res.RouteErr)
	}
	if res.Blocked == 0 || res.FirstBlocked == nil {
		t.Fatal("dest-mod should block some patterns")
	}
	if res.Nonblocking() {
		t.Fatal("Nonblocking() inconsistent")
	}
}

func TestSweepExhaustiveStopsOnRouteError(t *testing.T) {
	f := topology.NewFoldedClos(2, 1, 2)
	r, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	res := SweepExhaustive(r, f.Ports())
	if res.RouteErr == nil {
		t.Fatal("expected route error with m=1")
	}
	if res.Nonblocking() {
		t.Fatal("errored sweep must not claim nonblocking")
	}
}

func TestBlockingProbabilityBounds(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 5)
	good, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	frac, load, err := BlockingProbability(good, f.Ports(), 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 0 || load != 1 {
		t.Fatalf("nonblocking router: frac=%v load=%v", frac, load)
	}
	bad := routing.NewDestMod(f)
	frac, load, err = BlockingProbability(bad, f.Ports(), 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if frac <= 0 || load <= 1 {
		t.Fatalf("dest-mod: frac=%v load=%v", frac, load)
	}
	// Zero trials are a no-op.
	frac, load, err = BlockingProbability(good, f.Ports(), 0, 3)
	if err != nil || frac != 0 || load != 0 {
		t.Fatal("zero trials should return zeros")
	}
	// Routing errors surface.
	tiny := topology.NewFoldedClos(2, 1, 3)
	ad, err := routing.NewNonblockingAdaptive(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := BlockingProbability(ad, tiny.Ports(), 10, 3); err == nil {
		t.Fatal("expected routing error")
	}
}

func TestLinkSDViewPredicate(t *testing.T) {
	v := &LinkSDView{Sources: []int{1}, Dests: []int{2, 3}}
	if !v.OneSourceOrOneDest() {
		t.Fatal("single source should pass")
	}
	v = &LinkSDView{Sources: []int{1, 2}, Dests: []int{3}}
	if !v.OneSourceOrOneDest() {
		t.Fatal("single dest should pass")
	}
	v = &LinkSDView{Sources: []int{1, 2}, Dests: []int{3, 4}}
	if v.OneSourceOrOneDest() {
		t.Fatal("multi/multi should fail")
	}
}
