package analysis

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TestSweepShardMergeMatchesParallel: sweeping every shard of a planned
// prefix partition and merging in order reproduces the single-process
// parallel sweep — counts, max load, and the FirstBlocked witness — at
// level-1 sharding and when the partition is forced one level deeper
// (where the witness needs the coordinator's first-blocked re-derivation
// on the lowest blocked top-level shard).
func TestSweepShardMergeMatchesParallel(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	good, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	bad := routing.NewDestMod(f)
	wide := topology.NewFoldedClos(2, 6, 3) // m wide enough for adaptive routing
	ad, err := routing.NewNonblockingAdaptive(wide)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, tc := range []struct {
		r     routing.Router
		hosts int
	}{
		{good, f.Ports()},
		{bad, f.Ports()},
		{ad, wide.Ports()}, // pattern-dependent: oracle engine
	} {
		r, hosts := tc.r, tc.hosts
		want := SweepExhaustiveParallel(r, hosts, 4)
		for _, minShards := range []int{1, hosts, hosts + 1, hosts * (hosts - 1)} {
			shards := permutation.PrefixShards(hosts, minShards)
			results := make([]SweepResult, len(shards))
			for i, pfx := range shards {
				res, err := SweepShardCtx(ctx, r, hosts, pfx, nil)
				if err != nil {
					t.Fatalf("%s shard %v: %v", r.Name(), pfx, err)
				}
				results[i] = *res
			}
			got := MergeShardSweeps(results)
			if got.Tested != want.Tested || got.Blocked != want.Blocked || got.MaxLinkLoad != want.MaxLinkLoad {
				t.Fatalf("%s min=%d: merged (%d,%d,%d) vs parallel (%d,%d,%d)",
					r.Name(), minShards, got.Tested, got.Blocked, got.MaxLinkLoad,
					want.Tested, want.Blocked, want.MaxLinkLoad)
			}
			if (want.FirstBlocked == nil) != (got.FirstBlocked == nil) {
				t.Fatalf("%s min=%d: FirstBlocked presence mismatch", r.Name(), minShards)
			}
			if want.FirstBlocked == nil {
				continue
			}
			witness := got.FirstBlocked
			if len(shards[0]) > 1 {
				// Deep partition: sub-shard witnesses are not comparable to
				// the single-process answer. Re-derive on the lowest blocked
				// top-level shard, as the coordinator does.
				top := -1
				for i, pfx := range shards {
					if results[i].Blocked > 0 {
						top = pfx[0]
						break
					}
				}
				fb, err := SweepShardFirstBlockedCtx(ctx, r, hosts, []int{top}, nil)
				if err != nil {
					t.Fatal(err)
				}
				witness = fb.FirstBlocked
			}
			if witness == nil || witness.String() != want.FirstBlocked.String() {
				t.Fatalf("%s min=%d: witness %v, parallel %v", r.Name(), minShards, witness, want.FirstBlocked)
			}
		}
	}
}

// TestSweepShardRouteErr: a shard hitting a routing failure reports it in
// the result (not the returned error), the merge surfaces it, and
// SweepFirstRouteErr re-derives exactly the canonical error the parallel
// sweep reports.
func TestSweepShardRouteErr(t *testing.T) {
	tiny := topology.NewFoldedClos(2, 1, 3) // m=1: adaptive routing fails
	ad, err := routing.NewNonblockingAdaptive(tiny)
	if err != nil {
		t.Fatal(err)
	}
	hosts := tiny.Ports()
	shards := permutation.PrefixShards(hosts, hosts)
	results := make([]SweepResult, len(shards))
	sawErr := false
	for i, pfx := range shards {
		res, err := SweepShardCtx(context.Background(), ad, hosts, pfx, nil)
		if err != nil {
			t.Fatalf("shard %v: transport-level err %v", pfx, err)
		}
		results[i] = *res
		sawErr = sawErr || res.RouteErr != nil
	}
	if !sawErr {
		t.Fatal("no shard reported the routing failure")
	}
	if MergeShardSweeps(results).RouteErr == nil {
		t.Fatal("merge dropped the routing failure")
	}
	want := SweepExhaustiveParallel(ad, hosts, 4)
	got := SweepFirstRouteErr(ad, hosts)
	if got.RouteErr == nil || got.RouteErr.Error() != want.RouteErr.Error() {
		t.Fatalf("re-derived %v, parallel %v", got.RouteErr, want.RouteErr)
	}
	if got.Tested != 0 || got.Blocked != 0 || got.MaxLinkLoad != 0 {
		t.Fatalf("canonical error result carries statistics: %+v", got)
	}
}

// TestSweepShardInvalidPrefix: out-of-range prefix destinations are an
// error, not a silent empty shard — a coordinator bug must not merge to a
// plausible-looking zero result.
func TestSweepShardInvalidPrefix(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, pfx := range [][]int{{-1}, {f.Ports()}, {0, f.Ports() + 3}} {
		if _, err := SweepShardCtx(context.Background(), r, f.Ports(), pfx, nil); err == nil {
			t.Fatalf("prefix %v accepted", pfx)
		}
	}
}

// TestProgressDeltasSumToCounters: progress callbacks from sequential,
// parallel, and shard sweeps deliver non-negative deltas that sum exactly
// to the final counters. hosts = 7 gives 5040 patterns, so the 4096-stride
// fires mid-sweep and the flush carries a remainder.
func TestProgressDeltasSumToCounters(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 4)
	bad := routing.NewDestMod(f)
	hosts := 7 // sweep a subspace: n! = 5040 > one 4096 stride
	ctx := context.Background()
	for _, v := range []struct {
		name string
		run  func(fn ProgressFunc) (*SweepResult, error)
	}{
		{"sequential", func(fn ProgressFunc) (*SweepResult, error) {
			return SweepExhaustiveProgressCtx(ctx, bad, hosts, fn)
		}},
		{"parallel", func(fn ProgressFunc) (*SweepResult, error) {
			return SweepExhaustiveParallelProgressCtx(ctx, bad, hosts, 3, fn)
		}},
		{"shard", func(fn ProgressFunc) (*SweepResult, error) {
			return SweepShardCtx(ctx, bad, hosts, []int{2}, fn)
		}},
	} {
		var tested, blocked, calls atomic.Int64
		res, err := v.run(func(dt, db int) {
			if dt < 0 || db < 0 {
				t.Errorf("%s: negative delta (%d,%d)", v.name, dt, db)
			}
			tested.Add(int64(dt))
			blocked.Add(int64(db))
			calls.Add(1)
		})
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if int(tested.Load()) != res.Tested || int(blocked.Load()) != res.Blocked {
			t.Fatalf("%s: deltas sum to (%d,%d), result (%d,%d)",
				v.name, tested.Load(), blocked.Load(), res.Tested, res.Blocked)
		}
		if calls.Load() == 0 {
			t.Fatalf("%s: progress callback never fired", v.name)
		}
		if v.name == "sequential" && calls.Load() < 2 {
			t.Fatalf("sequential: %d calls; stride should fire mid-sweep plus flush", calls.Load())
		}
	}
}
