package analysis

import (
	"repro/internal/permutation"
	"repro/internal/routing"
)

// DeltaChecker is the incremental counterpart of Checker for enumerations
// that step between patterns by swapping two destinations — Heap's
// algorithm (permutation.EnumerateFullSwaps and the per-shard
// EnumerateFullPrefixSwaps) and the adversarial hill climb's pairwise
// swaps. Where Checker.AnalyzePattern re-routes and re-accounts all n
// pairs of every pattern, a DeltaChecker reads precomputed per-pair link
// sets from a routing.RouteTable and, per swap, subtracts the two outgoing
// pairs' links and adds the two incoming pairs' links: O(path length) work
// per pattern instead of O(n · path length), and zero allocations after
// construction.
//
// Maintained invariants (see DESIGN.md "Delta-sweep verification engine"):
//
//   - load[l] is the number of distinct pairs of the current pattern whose
//     path sets cross link l (per-pair deduplication is baked into the
//     RouteTable spans);
//   - countAt[v] is the number of links with load exactly v, for v ≥ 1;
//   - contended = Σ_{v≥2} countAt[v] and maxLoad = max{v : countAt[v] > 0}
//     are carried across swaps: contended adjusts when a link crosses the
//     load-2 boundary, and maxLoad is re-derived from the countAt
//     histogram only when the previous maximum's witness count drops to
//     zero — which, because loads move by ±1, walks at most one step.
//
// A DeltaChecker is NOT safe for concurrent use; parallel sweeps give each
// worker its own checker over one shared (immutable) RouteTable.
type DeltaChecker struct {
	t *routing.RouteTable
	// dst mirrors the enumerator's current destination vector; Swap keeps
	// it in lockstep so the checker needs no Permutation on the hot path.
	dst []int
	// load[l] counts pairs crossing link l in the current pattern.
	load []int32
	// countAt[v] counts links at load exactly v (v ≥ 1; unloaded links are
	// untracked). Loads never exceed the pair count, so hosts+2 entries
	// suffice.
	countAt   []int32
	contended int
	maxLoad   int
}

// NewDeltaChecker returns a checker sized for the table's network. Call
// Reset to load an initial pattern before the first Swap.
func NewDeltaChecker(t *routing.RouteTable) *DeltaChecker {
	d := &DeltaChecker{
		t:       t,
		dst:     make([]int, t.Hosts()),
		load:    make([]int32, t.NumLinks()),
		countAt: make([]int32, t.Hosts()+2),
	}
	for i := range d.dst {
		d.dst[i] = permutation.Unused
	}
	return d
}

// Reset rebuilds the state for pattern p from scratch — O(n · path length),
// paid once per enumeration shard or hill-climb restart. p may be partial;
// Unused sources load nothing. p.N() must equal the table's host count.
func (d *DeltaChecker) Reset(p *permutation.Permutation) {
	for i := range d.load {
		d.load[i] = 0
	}
	for i := range d.countAt {
		d.countAt[i] = 0
	}
	d.contended, d.maxLoad = 0, 0
	for s := range d.dst {
		dt := p.Dst(s)
		d.dst[s] = dt
		d.add(s, dt)
	}
}

// add loads every link of pair (s, dt); dt < 0 (Unused) loads nothing.
func (d *DeltaChecker) add(s, dt int) {
	if dt < 0 {
		return
	}
	for _, l := range d.t.PairLinks(s, dt) {
		v := d.load[l] + 1
		d.load[l] = v
		if v > 1 {
			d.countAt[v-1]--
		}
		d.countAt[v]++
		if int(v) > d.maxLoad {
			d.maxLoad = int(v)
		}
		if v == 2 {
			d.contended++
		}
	}
}

// remove unloads every link of pair (s, dt); dt < 0 (Unused) is a no-op.
func (d *DeltaChecker) remove(s, dt int) {
	if dt < 0 {
		return
	}
	for _, l := range d.t.PairLinks(s, dt) {
		v := d.load[l]
		d.load[l] = v - 1
		d.countAt[v]--
		if v > 1 {
			d.countAt[v-1]++
		}
		if v == 2 {
			d.contended--
		}
		if int(v) == d.maxLoad && d.countAt[v] == 0 {
			// The decremented link now sits at v−1, so the maximum drops
			// exactly one step unless the network just went idle.
			m := d.maxLoad - 1
			for m > 0 && d.countAt[m] == 0 {
				m--
			}
			d.maxLoad = m
		}
	}
}

// Swap exchanges the destinations of sources i and j — the Heap/hill-climb
// step — updating per-link state for the at most four affected pairs. It
// must mirror the enumerator's swaps exactly (same positions, same order).
// Swap is its own inverse, which is what lets the adversarial search
// score a candidate and back it out in O(path length). i == j is a no-op.
func (d *DeltaChecker) Swap(i, j int) {
	if i == j {
		return
	}
	di, dj := d.dst[i], d.dst[j]
	d.remove(i, di)
	d.remove(j, dj)
	d.dst[i], d.dst[j] = dj, di
	d.add(i, dj)
	d.add(j, di)
}

// MaxLoad is the largest number of pairs sharing one link in the current
// pattern.
func (d *DeltaChecker) MaxLoad() int { return d.maxLoad }

// ContendedCount is the number of links carrying two or more pairs.
func (d *DeltaChecker) ContendedCount() int { return d.contended }

// HasContention reports whether any link carries two or more pairs.
func (d *DeltaChecker) HasContention() bool { return d.contended > 0 }

// LinkLoad returns the current load of link l (zero when out of range).
func (d *DeltaChecker) LinkLoad(l int) int {
	if l < 0 || l >= len(d.load) {
		return 0
	}
	return int(d.load[l])
}
