package analysis

import (
	"context"
	"testing"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// symCase pairs a router with its fabric geometry: hosts and the
// hosts-per-bottom-switch block size the symmetry group acts on.
type symCase struct {
	name      string
	r         routing.Router
	hosts     int
	blockSize int
}

// symRouters is the router zoo the symmetry engine is property-tested
// against: fully symmetric multipath schemes (where the reduction must
// engage), asymmetric deterministic schemes (where the equivariance
// certificate decides), a seeded random routing (certain to fail the
// certificate), and a pattern-dependent adaptive scheme (no route table
// at all). Every case must produce byte-identical results either way.
func symRouters(t *testing.T) []symCase {
	t.Helper()
	var out []symCase
	add := func(name string, r routing.Router, hosts, blockSize int) {
		out = append(out, symCase{name, r, hosts, blockSize})
	}
	f63 := topology.NewFoldedClos(2, 4, 3) // 6 hosts, blocks of 2, nonblocking m
	f33 := topology.NewFoldedClos(2, 3, 3) // folded variant: plenty of contention
	f24 := topology.NewFoldedClos(2, 2, 4) // 8 hosts, blocks of 2, blocking m
	f32 := topology.NewFoldedClos(3, 4, 2) // 6 hosts, blocks of 3
	paper, err := routing.NewPaperDeterministic(f63)
	if err != nil {
		t.Fatal(err)
	}
	add("paper", paper, f63.Ports(), 2)
	add("paper-folded", routing.NewPaperDeterministicFolded(f33), f33.Ports(), 2)
	add("dest-mod", routing.NewDestMod(f63), f63.Ports(), 2)
	add("dest-mod-blocking", routing.NewDestMod(f24), f24.Ports(), 2)
	add("source-mod", routing.NewSourceMod(f32), f32.Ports(), 3)
	add("full-spray", routing.NewFullSpray(f33), f33.Ports(), 2)
	add("full-spray-8", routing.NewFullSpray(f24), f24.Ports(), 2)
	kspray, err := routing.NewKSpray(f63, 2)
	if err != nil {
		t.Fatal(err)
	}
	add("spray-2", kspray, f63.Ports(), 2)
	pm, err := routing.NewPaperMultipath(f63)
	if err != nil {
		t.Fatal(err)
	}
	add("paper-multipath", pm, f63.Ports(), 2)
	add("random-fixed", routing.NewRandomFixed(f24, 7), f24.Ports(), 2)
	adaptive, err := routing.NewNonblockingAdaptive(f63)
	if err != nil {
		t.Fatal(err)
	}
	add("adaptive", adaptive, f63.Ports(), 2)
	tr := topology.NewMPortNTree(4, 2)
	add("mnt-dest-mod", routing.NewMNTDestMod(tr), tr.Hosts(), tr.Hosts()/2)
	return out
}

// TestSweepExhaustiveSymMatchesOracle is the acceptance property: across
// the whole zoo — whether the reduction engages or falls back — the sym
// sweep's result equals the scratch oracle's in every field.
func TestSweepExhaustiveSymMatchesOracle(t *testing.T) {
	for _, c := range symRouters(t) {
		want := SweepExhaustiveOracle(c.r, c.hosts)
		got, stats := SweepExhaustiveSym(c.r, c.hosts, c.blockSize)
		sameSweepResult(t, c.name, got, want)
		if stats.Applied && stats.Orbits == 0 && c.hosts > 0 {
			t.Fatalf("%s: applied with zero orbits", c.name)
		}
		if !stats.Applied && stats.Reason == "" {
			t.Fatalf("%s: fallback without a reason", c.name)
		}
		wantFB := SweepExhaustiveFirstBlocked(c.r, c.hosts)
		gotFB, _ := SweepExhaustiveSymFirstBlocked(c.r, c.hosts, c.blockSize)
		sameSweepResult(t, c.name+"/first-blocked", gotFB, wantFB)
	}
}

// TestSweepExhaustiveSymParallelOrder checks the parallel-flavored sym
// sweep against the in-process parallel engine, whose FirstBlocked comes
// from the lowest level-1 prefix shard rather than Heap order.
func TestSweepExhaustiveSymParallelOrder(t *testing.T) {
	for _, c := range symRouters(t) {
		want := SweepExhaustiveParallel(c.r, c.hosts, 4)
		got, _, err := SweepExhaustiveSymParallelProgressCtx(context.Background(), c.r, c.hosts, c.blockSize, 4, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		sameSweepResult(t, c.name+"/parallel", got, want)
	}
}

// TestSymEngagesWhereExpected pins which zoo members actually reduce: the
// fully symmetric sprays must engage, and pattern-dependent adaptive
// routing plus seeded-random fixed paths must not.
func TestSymEngagesWhereExpected(t *testing.T) {
	for _, c := range symRouters(t) {
		stats := SymApplicable(c.r, c.hosts, c.blockSize)
		switch c.name {
		case "full-spray", "full-spray-8":
			if !stats.Applied {
				t.Errorf("%s: expected symmetry to engage, fell back: %s", c.name, stats.Reason)
			}
		case "adaptive", "random-fixed":
			if stats.Applied {
				t.Errorf("%s: expected fallback, symmetry engaged", c.name)
			}
		}
	}
}

// TestSymProgressSumsToCounters checks the orbit-scaled progress deltas
// sum exactly to the final counters, applied or not.
func TestSymProgressSumsToCounters(t *testing.T) {
	f := topology.NewFoldedClos(2, 3, 3)
	for _, r := range []routing.Router{routing.NewFullSpray(f), routing.NewRandomFixed(f, 3)} {
		tested, blocked := 0, 0
		res, _, err := SweepExhaustiveSymParallelProgressCtx(context.Background(), r, f.Ports(), 2, 1, func(dt, db int) {
			tested += dt
			blocked += db
		})
		if err != nil {
			t.Fatal(err)
		}
		if tested != res.Tested || blocked != res.Blocked {
			t.Fatalf("%s: progress deltas (%d,%d) != counters (%d,%d)", r.Name(), tested, blocked, res.Tested, res.Blocked)
		}
	}
}

// TestSweepSymShardParity: sharded orbit sweeps merge to the unsharded
// counters, and the re-derived witness matches the parallel engine's.
func TestSweepSymShardParity(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		f         *topology.FoldedClos
		blockSize int
	}{
		{topology.NewFoldedClos(2, 3, 3), 2},
		{topology.NewFoldedClos(2, 2, 4), 2},
	} {
		r := routing.NewFullSpray(tc.f)
		hosts := tc.f.Ports()
		sym, err := permutation.NewBlockSymmetry(hosts, tc.blockSize)
		if err != nil {
			t.Fatal(err)
		}
		merged := &SweepResult{}
		orbits := 0
		for _, sh := range sym.Shards(3) {
			res, stats, err := SweepSymShardCtx(ctx, r, hosts, tc.blockSize, sh[0], sh[1], nil)
			if err != nil {
				t.Fatalf("shard %v: %v", sh, err)
			}
			orbits += stats.Orbits
			merged.Tested += res.Tested
			merged.Blocked += res.Blocked
			if res.MaxLinkLoad > merged.MaxLinkLoad {
				merged.MaxLinkLoad = res.MaxLinkLoad
			}
		}
		full, stats := SweepExhaustiveSym(r, hosts, tc.blockSize)
		if !stats.Applied {
			t.Fatalf("spray fell back: %s", stats.Reason)
		}
		if merged.Tested != full.Tested || merged.Blocked != full.Blocked || merged.MaxLinkLoad != full.MaxLinkLoad || orbits != stats.Orbits {
			t.Fatalf("sharded merge (%d,%d,%d,%d orbits) != full (%d,%d,%d,%d orbits)",
				merged.Tested, merged.Blocked, merged.MaxLinkLoad, orbits,
				full.Tested, full.Blocked, full.MaxLinkLoad, stats.Orbits)
		}
		if merged.Blocked > 0 {
			w, err := SweepSymWitness(ctx, r, hosts, true)
			if err != nil {
				t.Fatal(err)
			}
			want := SweepExhaustiveParallel(r, hosts, 4)
			if w == nil || !w.Equal(want.FirstBlocked) {
				t.Fatalf("re-derived witness %s != parallel witness %s", w, want.FirstBlocked)
			}
		}
	}
}

// TestSweepSymShardRejectsInapplicable: sym shards are planned only after
// an applicability precheck, so a worker asked to sweep one for an
// inapplicable router must error rather than silently fall back.
func TestSweepSymShardRejectsInapplicable(t *testing.T) {
	f := topology.NewFoldedClos(2, 2, 4)
	if _, _, err := SweepSymShardCtx(context.Background(), routing.NewRandomFixed(f, 1), f.Ports(), 2, 0, 1, nil); err == nil {
		t.Fatal("inapplicable sym shard did not error")
	}
}

// TestSymMatchesDeltaAtNine runs the n=9 wall itself: the sym sweep must
// reproduce the full delta engine's certificate while touching ~800x
// fewer patterns.
func TestSymMatchesDeltaAtNine(t *testing.T) {
	f := topology.NewFoldedClos(3, 5, 3) // 9 hosts, m = 2n-1: nonblocking spray fabric
	r := routing.NewFullSpray(f)
	want := SweepExhaustive(r, f.Ports())
	got, stats := SweepExhaustiveSym(r, f.Ports(), 3)
	sameSweepResult(t, "spray-n9", got, want)
	if !stats.Applied {
		t.Fatalf("sym fell back at n=9: %s", stats.Reason)
	}
	if stats.Orbits >= want.Tested/100 {
		t.Fatalf("weak reduction: %d orbits for %d patterns", stats.Orbits, want.Tested)
	}
}

// TestSymCancellation: a pre-cancelled context stops the sweep
// immediately with ctx.Err.
func TestSymCancellation(t *testing.T) {
	f := topology.NewFoldedClos(2, 3, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := SweepExhaustiveSymCtx(ctx, routing.NewFullSpray(f), f.Ports(), 2); err == nil {
		t.Fatal("cancelled sym sweep returned nil error")
	}
}
