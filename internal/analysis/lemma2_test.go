package analysis

import (
	"testing"

	"repro/internal/conditions"
	"repro/internal/permutation"
)

func TestMaxRootPairsModesMatchesNaive(t *testing.T) {
	// Cross-validate the canonical-mode search against the direct
	// branch-and-bound over pair subsets on every tractable instance.
	cases := []struct{ n, r int }{
		{1, 2}, {1, 3}, {1, 4}, {2, 2}, {2, 3}, {3, 2},
	}
	for _, c := range cases {
		modes := MaxRootPairsModes(c.n, c.r)
		naive := MaxRootPairsNaive(c.n, c.r)
		if modes != naive {
			t.Errorf("n=%d r=%d: modes=%d naive=%d", c.n, c.r, modes, naive)
		}
	}
}

func TestMaxRootPairsAgainstLemma2Cap(t *testing.T) {
	// The paper's closed-form caps must upper-bound the exact maximum,
	// and be attained exactly when r ≥ 2n+1.
	for n := 1; n <= 3; n++ {
		for r := 2; r <= 6; r++ {
			got := MaxRootPairsModes(n, r)
			cap := conditions.Lemma2Cap(n, r)
			if got > cap {
				t.Errorf("n=%d r=%d: exact %d exceeds Lemma-2 cap %d", n, r, got, cap)
			}
			if r >= 2*n+1 && got != r*(r-1) {
				t.Errorf("n=%d r=%d: exact %d, want r(r-1)=%d (tight branch)", n, r, got, r*(r-1))
			}
		}
	}
}

func TestMaxRootPairsSmallTopBranchIsLoose(t *testing.T) {
	// For r < 2n+1 the 2nr bound is strictly loose in general: record
	// exact values so EXPERIMENTS.md can report them. (A looser cap only
	// strengthens Theorem 1, which divides by it.)
	type row struct{ n, r, exact int }
	var rows []row
	for _, c := range []struct{ n, r int }{{2, 3}, {2, 4}, {3, 3}, {3, 4}, {3, 6}} {
		rows = append(rows, row{c.n, c.r, MaxRootPairsModes(c.n, c.r)})
	}
	for _, rw := range rows {
		cap := conditions.Lemma2Cap(rw.n, rw.r)
		if rw.exact > cap {
			t.Fatalf("n=%d r=%d exact %d > cap %d", rw.n, rw.r, rw.exact, cap)
		}
	}
	// Specific regression anchors (computed by both searches).
	if got := MaxRootPairsModes(2, 3); got != 8 {
		t.Errorf("n=2 r=3 exact = %d, want 8", got)
	}
	if got := MaxRootPairsModes(2, 4); got != 12 {
		t.Errorf("n=2 r=4 exact = %d, want 12", got)
	}
}

func TestMaxRootPairsClosedFormConjecture(t *testing.T) {
	// The exact search reveals a clean closed form the paper's Lemma 2
	// over-approximates in the small-r branch: the true maximum is
	// (r−1)·max(r, 2n) — equal to r(r−1) for r ≥ 2n (matching the
	// paper's tight branch) and 2n(r−1) for r ≤ 2n (the paper caps at
	// 2nr, loose by exactly 2n). Recorded in EXPERIMENTS.md E2.
	for n := 1; n <= 3; n++ {
		for r := 2; r <= 6; r++ {
			want := (r - 1) * maxOf(r, 2*n)
			if got := MaxRootPairsModes(n, r); got != want {
				t.Errorf("n=%d r=%d: exact %d, closed form (r−1)·max(r,2n) = %d", n, r, got, want)
			}
		}
	}
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestRootSetWitnessValidAndMaximal(t *testing.T) {
	for _, c := range []struct{ n, r int }{{1, 3}, {2, 3}, {2, 5}, {3, 4}, {3, 7}} {
		pairs := RootSetWitness(c.n, c.r)
		if err := CheckRootSet(c.n, c.r, pairs); err != nil {
			t.Errorf("n=%d r=%d: witness invalid: %v", c.n, c.r, err)
			continue
		}
		want := MaxRootPairsModes(c.n, c.r)
		if len(pairs) != want {
			t.Errorf("n=%d r=%d: witness size %d, want %d", c.n, c.r, len(pairs), want)
		}
	}
	if RootSetWitness(2, 1) != nil {
		t.Error("r=1 witness should be empty")
	}
}

func TestCheckRootSetRejections(t *testing.T) {
	if err := CheckRootSet(2, 3, []permutation.Pair{{Src: 0, Dst: 2}, {Src: 0, Dst: 2}}); err == nil {
		t.Fatal("duplicate pair accepted")
	}
	if err := CheckRootSet(2, 3, []permutation.Pair{{Src: 0, Dst: 1}}); err == nil {
		t.Fatal("intra-switch pair accepted")
	}
	if err := CheckRootSet(2, 3, []permutation.Pair{{Src: 0, Dst: 99}}); err == nil {
		t.Fatal("out-of-range pair accepted")
	}
	// Uplink with two sources and two destinations.
	bad := []permutation.Pair{{Src: 0, Dst: 2}, {Src: 1, Dst: 4}}
	if err := CheckRootSet(2, 3, bad); err == nil {
		t.Fatal("uplink violation accepted")
	}
	// Downlink with two sources and two destinations.
	bad = []permutation.Pair{{Src: 0, Dst: 4}, {Src: 2, Dst: 5}}
	if err := CheckRootSet(2, 3, bad); err == nil {
		t.Fatal("downlink violation accepted")
	}
	// A clean single-source set passes.
	good := []permutation.Pair{{Src: 0, Dst: 2}, {Src: 0, Dst: 4}}
	if err := CheckRootSet(2, 3, good); err != nil {
		t.Fatal(err)
	}
}
