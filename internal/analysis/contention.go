// Package analysis judges routing assignments against the paper's
// definitions: link-level contention (Definition 2), the Lemma-1
// one-source-or-one-destination link predicate that characterizes
// nonblocking single-path deterministic routing, exhaustive and randomized
// nonblocking verification sweeps, the Lemma-2 maximum-pairs-per-root
// search, and Monte-Carlo blocking probability estimation.
package analysis

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Cancellation support. The sweep engines poll ctx.Done() with a strided
// counter so the per-pattern hot loop pays at most one nil check per
// pattern when the context cannot be cancelled (Done() == nil, e.g.
// context.Background()) and one cheap masked increment otherwise: the
// delta engine processes a pattern in tens of nanoseconds, so calling
// ctx.Err() per pattern would dominate the sweep.

// cancelCheckMask strides context polls to every 4096 patterns — frequent
// enough that cancellation lands within microseconds, rare enough to be
// invisible in the per-pattern cost.
const cancelCheckMask = 1<<12 - 1

// sweepCanceller is the strided poll state shared by the sweep loops.
type sweepCanceller struct {
	done <-chan struct{}
	tick uint
}

func newSweepCanceller(ctx context.Context) sweepCanceller {
	return sweepCanceller{done: ctx.Done()}
}

// cancelled reports whether the context fired, polling only every
// cancelCheckMask+1 calls.
func (c *sweepCanceller) cancelled() bool {
	if c.done == nil {
		return false
	}
	c.tick++
	if c.tick&cancelCheckMask != 0 {
		return false
	}
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Report is the contention analysis of one routed pattern.
type Report struct {
	// Assignment is the analyzed routing output.
	Assignment *routing.Assignment
	// LinkPairs maps every loaded link to the indices (into
	// Assignment.Pairs) of the SD pairs whose path sets traverse it.
	LinkPairs map[topology.LinkID][]int
	// Contended lists links carrying two or more SD pairs, ascending.
	Contended []topology.LinkID
	// MaxLoad is the largest number of SD pairs sharing one link.
	MaxLoad int
}

// Check computes the link loads of an assignment. A link is contended when
// packets of two different SD pairs of the pattern may cross it
// (Definition 2); for multipath assignments every path in a pair's set
// counts, per the §IV.B timing argument. Check is the one-shot wrapper
// around Checker; loops over many patterns should reuse one Checker
// instead, which does O(1) allocations per pattern.
func Check(a *routing.Assignment) *Report {
	c := NewChecker(a.Net)
	c.Analyze(a)
	return c.Report()
}

// HasContention reports whether any link carries two or more SD pairs.
func (r *Report) HasContention() bool { return len(r.Contended) > 0 }

// ContentionError formats the first contended link with its pairs, or
// returns nil.
func (r *Report) ContentionError() error {
	if !r.HasContention() {
		return nil
	}
	l := r.Contended[0]
	lk := r.Assignment.Net.Link(l)
	msg := fmt.Sprintf("link %d (%s -> %s) carries %d SD pairs:",
		l, r.Assignment.Net.Node(lk.From).Label, r.Assignment.Net.Node(lk.To).Label, len(r.LinkPairs[l]))
	for _, i := range r.LinkPairs[l] {
		msg += fmt.Sprintf(" %d->%d", r.Assignment.Pairs[i].Src, r.Assignment.Pairs[i].Dst)
	}
	return fmt.Errorf("analysis: %s", msg)
}

// LinkSDView describes the traffic crossing one link of an all-pairs
// routing — the accounting illustrated by Fig. 3 of the paper.
type LinkSDView struct {
	Link topology.LinkID
	// Pairs are the SD pairs routed over the link.
	Pairs []permutation.Pair
	// Sources and Dests are the distinct endpoints among Pairs.
	Sources, Dests []int
}

// OneSourceOrOneDest reports the Lemma-1 predicate for this link: all
// pairs share a source, or all share a destination.
func (v *LinkSDView) OneSourceOrOneDest() bool {
	return len(v.Sources) <= 1 || len(v.Dests) <= 1
}

// Lemma1Result is the outcome of checking a single-path deterministic
// routing against Lemma 1 over all SD pairs of the network.
type Lemma1Result struct {
	// Nonblocking is true when every link satisfies the predicate, which
	// by Lemma 1 is equivalent to the routing being nonblocking.
	Nonblocking bool
	// Violation, when not nonblocking, identifies a link together with
	// two pairs with distinct sources and destinations crossing it; by
	// the Lemma-1 necessity argument these two pairs form a permutation
	// that blocks.
	Violation *LinkSDView
	// Links holds the per-link view of every loaded link.
	Links map[topology.LinkID]*LinkSDView
}

// CheckLemma1AllPairs routes every SD pair (s ≠ d) of an N-host network
// with a single-path deterministic router and evaluates Lemma 1: the
// routing is nonblocking if and only if each link carries traffic either
// from one source or to one destination. This is an *exact* nonblocking
// decision procedure for deterministic routing — no permutation
// enumeration needed.
func CheckLemma1AllPairs(r routing.PairRouter, hosts int) (*Lemma1Result, error) {
	res := &Lemma1Result{Nonblocking: true, Links: make(map[topology.LinkID]*LinkSDView)}
	for s := 0; s < hosts; s++ {
		for d := 0; d < hosts; d++ {
			if s == d {
				continue
			}
			p, err := r.PathFor(s, d)
			if err != nil {
				return nil, fmt.Errorf("analysis: routing pair %d->%d: %w", s, d, err)
			}
			for _, l := range p.Links {
				v := res.Links[l]
				if v == nil {
					v = &LinkSDView{Link: l}
					res.Links[l] = v
				}
				v.Pairs = append(v.Pairs, permutation.Pair{Src: s, Dst: d})
				insertDistinct(&v.Sources, s)
				insertDistinct(&v.Dests, d)
			}
		}
	}
	for _, v := range res.Links {
		if !v.OneSourceOrOneDest() {
			res.Nonblocking = false
			if res.Violation == nil || v.Link < res.Violation.Link {
				res.Violation = v
			}
		}
	}
	return res, nil
}

func insertDistinct(s *[]int, x int) {
	for _, y := range *s {
		if y == x {
			return
		}
	}
	*s = append(*s, x)
}

// BlockingWitness extracts from a Lemma-1 violation a two-pair permutation
// that the routing blocks: two SD pairs with distinct sources and distinct
// destinations crossing the violated link (the constructive half of the
// Lemma-1 necessity proof).
func BlockingWitness(res *Lemma1Result, hosts int) (*permutation.Permutation, error) {
	if res.Nonblocking || res.Violation == nil {
		return nil, fmt.Errorf("analysis: routing is nonblocking; no witness exists")
	}
	v := res.Violation
	for i := 0; i < len(v.Pairs); i++ {
		for j := i + 1; j < len(v.Pairs); j++ {
			a, b := v.Pairs[i], v.Pairs[j]
			if a.Src != b.Src && a.Dst != b.Dst {
				return permutation.FromPairs(hosts, []permutation.Pair{a, b})
			}
		}
	}
	return nil, fmt.Errorf("analysis: internal error: violated link has no distinct-endpoint pair combination")
}

// SweepResult summarizes a nonblocking verification sweep over many
// permutations.
type SweepResult struct {
	// Tested counts patterns routed.
	Tested int
	// Blocked counts patterns with contention.
	Blocked int
	// FirstBlocked is a clone of the first contended pattern, nil if all
	// passed.
	FirstBlocked *permutation.Permutation
	// MaxLinkLoad is the worst per-link SD-pair count observed.
	MaxLinkLoad int
	// RouteErr records the first routing failure (e.g. adaptive routing
	// running out of top switches); sweeps stop at routing failures.
	RouteErr error
}

// Nonblocking reports whether every tested pattern routed without
// contention.
func (s *SweepResult) Nonblocking() bool { return s.Blocked == 0 && s.RouteErr == nil }

// SweepExhaustive routes every full permutation of hosts endpoints
// (hosts! patterns — practical up to hosts ≈ 9–10) and checks contention.
// For deterministic routing this plus CheckLemma1AllPairs gives two
// independent exact verdicts; for adaptive routing it is the ground-truth
// check on small networks.
//
// Routers with pattern-independent per-pair paths (PairLinkAppender,
// MultiPairRouter or PairRouter) are swept by the incremental delta
// engine: their per-pair link sets are precomputed once into a CSR
// routing.RouteTable and a DeltaChecker updates contention state per
// Heap-algorithm swap, making each pattern O(path length) instead of
// O(n · path length). Pattern-dependent routers — and any router whose
// table build fails — fall back to SweepExhaustiveOracle, so results
// (including routing-error reporting) are identical either way.
func SweepExhaustive(r routing.Router, hosts int) *SweepResult {
	res, _ := sweepExhaustiveDelta(context.Background(), r, hosts, false, nil)
	return res
}

// SweepExhaustiveCtx is SweepExhaustive with cooperative cancellation: the
// sweep polls ctx between blocks of patterns (never inside the per-pattern
// accounting) and, once ctx fires, stops and returns the partial result
// together with ctx.Err(). A run that completes under a never-cancelled
// context returns a result identical to SweepExhaustive's and a nil error.
func SweepExhaustiveCtx(ctx context.Context, r routing.Router, hosts int) (*SweepResult, error) {
	return sweepExhaustiveDelta(ctx, r, hosts, false, nil)
}

// SweepExhaustiveFirstBlocked is SweepExhaustive in early-exit mode for
// callers that only need a yes/no nonblocking verdict plus a witness: the
// sweep stops at the first contended pattern. Tested counts the patterns
// examined up to and including the blocked one; Blocked is at most 1, and
// MaxLinkLoad covers only the examined prefix. A fully nonblocking router
// yields a result identical to SweepExhaustive's.
func SweepExhaustiveFirstBlocked(r routing.Router, hosts int) *SweepResult {
	res, _ := sweepExhaustiveDelta(context.Background(), r, hosts, true, nil)
	return res
}

// SweepExhaustiveFirstBlockedCtx is SweepExhaustiveFirstBlocked with
// cooperative cancellation (see SweepExhaustiveCtx).
func SweepExhaustiveFirstBlockedCtx(ctx context.Context, r routing.Router, hosts int) (*SweepResult, error) {
	return sweepExhaustiveDelta(ctx, r, hosts, true, nil)
}

// SweepExhaustiveOracle is the scratch-rebuild reference implementation of
// SweepExhaustive: one Checker.AnalyzePattern per pattern, no cross-pattern
// state. It is the parity oracle the delta engine is property-tested
// against, and the engine every pattern-dependent router uses.
func SweepExhaustiveOracle(r routing.Router, hosts int) *SweepResult {
	res, _ := sweepExhaustiveOracle(context.Background(), r, hosts, false, nil)
	return res
}

// SweepExhaustiveOracleCtx is SweepExhaustiveOracle with cooperative
// cancellation (see SweepExhaustiveCtx).
func SweepExhaustiveOracleCtx(ctx context.Context, r routing.Router, hosts int) (*SweepResult, error) {
	return sweepExhaustiveOracle(ctx, r, hosts, false, nil)
}

func sweepExhaustiveOracle(ctx context.Context, r routing.Router, hosts int, firstOnly bool, fn ProgressFunc) (*SweepResult, error) {
	res := &SweepResult{}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	c := NewChecker(nil)
	cancel := newSweepCanceller(ctx)
	prog := progressMeter{fn: fn}
	cancelled := false
	permutation.EnumerateFull(hosts, func(p *permutation.Permutation) bool {
		if cancel.cancelled() {
			cancelled = true
			return false
		}
		if err := c.AnalyzePattern(r, p); err != nil {
			res.RouteErr = fmt.Errorf("analysis: pattern %s: %w", p, err)
			return false
		}
		res.Tested++
		if c.MaxLoad() > res.MaxLinkLoad {
			res.MaxLinkLoad = c.MaxLoad()
		}
		if c.HasContention() {
			res.Blocked++
			if res.FirstBlocked == nil {
				res.FirstBlocked = p.Clone()
			}
			if firstOnly {
				return false
			}
		}
		prog.step(res.Tested, res.Blocked)
		return true
	})
	prog.flush(res.Tested, res.Blocked)
	if cancelled {
		return res, ctx.Err()
	}
	return res, nil
}

func sweepExhaustiveDelta(ctx context.Context, r routing.Router, hosts int, firstOnly bool, fn ProgressFunc) (*SweepResult, error) {
	if err := ctx.Err(); err != nil {
		return &SweepResult{}, err
	}
	t, err := routing.BuildRouteTable(r, hosts)
	if err != nil {
		// Pattern-dependent router, a pair that failed to route, or a
		// table too large for the CSR offsets. The oracle reproduces the
		// exact sequential accounting either way — in the failure case
		// including the canonical first routing error at the first pattern
		// exercising the failing pair.
		return sweepExhaustiveOracle(ctx, r, hosts, firstOnly, fn)
	}
	res := &SweepResult{}
	d := NewDeltaChecker(t)
	cancel := newSweepCanceller(ctx)
	prog := progressMeter{fn: fn}
	cancelled := false
	permutation.EnumerateFullSwaps(hosts, func(p *permutation.Permutation, i, j int) bool {
		if cancel.cancelled() {
			cancelled = true
			return false
		}
		if i < 0 {
			d.Reset(p)
		} else {
			d.Swap(i, j)
		}
		res.Tested++
		if d.MaxLoad() > res.MaxLinkLoad {
			res.MaxLinkLoad = d.MaxLoad()
		}
		if d.HasContention() {
			res.Blocked++
			if res.FirstBlocked == nil {
				res.FirstBlocked = p.Clone()
			}
			if firstOnly {
				return false
			}
		}
		prog.step(res.Tested, res.Blocked)
		return true
	})
	prog.flush(res.Tested, res.Blocked)
	if cancelled {
		return res, ctx.Err()
	}
	return res, nil
}

// SweepRandom routes trials random full permutations (seeded) plus the
// structured patterns most hostile to fat-trees — switch shifts, local
// rotations, transpose and bit-reversal where the host count allows — and
// checks contention.
func SweepRandom(r routing.Router, hosts, trials int, seed int64) *SweepResult {
	res, _ := sweepRandom(context.Background(), r, hosts, trials, seed)
	return res
}

// SweepRandomCtx is SweepRandom with cooperative cancellation: ctx is
// polled between patterns (each pattern routes all its pairs, so the check
// is off the per-pair hot path) and a fired ctx stops the sweep, returning
// the partial result with ctx.Err(). Under a never-cancelled context the
// result is identical to SweepRandom's.
func SweepRandomCtx(ctx context.Context, r routing.Router, hosts, trials int, seed int64) (*SweepResult, error) {
	return sweepRandom(ctx, r, hosts, trials, seed)
}

func sweepRandom(ctx context.Context, r routing.Router, hosts, trials int, seed int64) (*SweepResult, error) {
	res := &SweepResult{}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	done := ctx.Done()
	cancelled := false
	rng := rand.New(rand.NewSource(seed))
	c := NewChecker(nil)
	test := func(p *permutation.Permutation) bool {
		if done != nil {
			select {
			case <-done:
				cancelled = true
				return false
			default:
			}
		}
		if err := c.AnalyzePattern(r, p); err != nil {
			res.RouteErr = fmt.Errorf("analysis: pattern %s: %w", p, err)
			return false
		}
		res.Tested++
		if c.MaxLoad() > res.MaxLinkLoad {
			res.MaxLinkLoad = c.MaxLoad()
		}
		if c.HasContention() {
			res.Blocked++
			if res.FirstBlocked == nil {
				res.FirstBlocked = p.Clone()
			}
		}
		return true
	}
	finish := func() (*SweepResult, error) {
		if cancelled {
			return res, ctx.Err()
		}
		return res, nil
	}
	// One pattern and one scratch serve every random trial: test never
	// retains its argument (FirstBlocked is a clone), so refilling in
	// place keeps the per-trial loop allocation-free while consuming rng
	// exactly as the allocating generators would.
	p := permutation.New(hosts)
	scratch := permutation.NewPatternScratch(hosts)
	for i := 0; i < trials; i++ {
		permutation.RandomInto(rng, p)
		if !test(p) {
			return finish()
		}
	}
	for i := 0; i < trials/2; i++ {
		permutation.RandomPartialInto(rng, p, 0.25+rng.Float64()/2, scratch)
		if !test(p) {
			return finish()
		}
	}
	for k := 1; k < hosts && k <= 8; k++ {
		if !test(permutation.Shift(hosts, k)) {
			return finish()
		}
	}
	if hosts > 0 && hosts&(hosts-1) == 0 {
		if !test(permutation.BitReversal(hosts)) {
			return finish()
		}
	}
	for d := 2; d*d <= hosts; d++ {
		if hosts%d == 0 {
			if !test(permutation.Transpose(d, hosts/d)) {
				return finish()
			}
		}
	}
	test(permutation.Neighbor(hosts))
	return finish()
}

// BlockingProbability estimates, over trials seeded random full
// permutations, the fraction that suffer contention under the router, and
// the mean of the worst per-link load — the blocking-probability metric
// the related work optimizes ([6], [9], [15], [17]).
func BlockingProbability(r routing.Router, hosts, trials int, seed int64) (blockFrac, meanMaxLoad float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	c := NewChecker(nil)
	blocked, loadSum := 0, 0
	for i := 0; i < trials; i++ {
		p := permutation.Random(rng, hosts)
		if rerr := c.AnalyzePattern(r, p); rerr != nil {
			return 0, 0, rerr
		}
		if c.HasContention() {
			blocked++
		}
		loadSum += c.MaxLoad()
	}
	if trials == 0 {
		return 0, 0, nil
	}
	return float64(blocked) / float64(trials), float64(loadSum) / float64(trials), nil
}
