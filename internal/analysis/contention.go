// Package analysis judges routing assignments against the paper's
// definitions: link-level contention (Definition 2), the Lemma-1
// one-source-or-one-destination link predicate that characterizes
// nonblocking single-path deterministic routing, exhaustive and randomized
// nonblocking verification sweeps, the Lemma-2 maximum-pairs-per-root
// search, and Monte-Carlo blocking probability estimation.
package analysis

import (
	"fmt"
	"math/rand"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Report is the contention analysis of one routed pattern.
type Report struct {
	// Assignment is the analyzed routing output.
	Assignment *routing.Assignment
	// LinkPairs maps every loaded link to the indices (into
	// Assignment.Pairs) of the SD pairs whose path sets traverse it.
	LinkPairs map[topology.LinkID][]int
	// Contended lists links carrying two or more SD pairs, ascending.
	Contended []topology.LinkID
	// MaxLoad is the largest number of SD pairs sharing one link.
	MaxLoad int
}

// Check computes the link loads of an assignment. A link is contended when
// packets of two different SD pairs of the pattern may cross it
// (Definition 2); for multipath assignments every path in a pair's set
// counts, per the §IV.B timing argument. Check is the one-shot wrapper
// around Checker; loops over many patterns should reuse one Checker
// instead, which does O(1) allocations per pattern.
func Check(a *routing.Assignment) *Report {
	c := NewChecker(a.Net)
	c.Analyze(a)
	return c.Report()
}

// HasContention reports whether any link carries two or more SD pairs.
func (r *Report) HasContention() bool { return len(r.Contended) > 0 }

// ContentionError formats the first contended link with its pairs, or
// returns nil.
func (r *Report) ContentionError() error {
	if !r.HasContention() {
		return nil
	}
	l := r.Contended[0]
	lk := r.Assignment.Net.Link(l)
	msg := fmt.Sprintf("link %d (%s -> %s) carries %d SD pairs:",
		l, r.Assignment.Net.Node(lk.From).Label, r.Assignment.Net.Node(lk.To).Label, len(r.LinkPairs[l]))
	for _, i := range r.LinkPairs[l] {
		msg += fmt.Sprintf(" %d->%d", r.Assignment.Pairs[i].Src, r.Assignment.Pairs[i].Dst)
	}
	return fmt.Errorf("analysis: %s", msg)
}

// LinkSDView describes the traffic crossing one link of an all-pairs
// routing — the accounting illustrated by Fig. 3 of the paper.
type LinkSDView struct {
	Link topology.LinkID
	// Pairs are the SD pairs routed over the link.
	Pairs []permutation.Pair
	// Sources and Dests are the distinct endpoints among Pairs.
	Sources, Dests []int
}

// OneSourceOrOneDest reports the Lemma-1 predicate for this link: all
// pairs share a source, or all share a destination.
func (v *LinkSDView) OneSourceOrOneDest() bool {
	return len(v.Sources) <= 1 || len(v.Dests) <= 1
}

// Lemma1Result is the outcome of checking a single-path deterministic
// routing against Lemma 1 over all SD pairs of the network.
type Lemma1Result struct {
	// Nonblocking is true when every link satisfies the predicate, which
	// by Lemma 1 is equivalent to the routing being nonblocking.
	Nonblocking bool
	// Violation, when not nonblocking, identifies a link together with
	// two pairs with distinct sources and destinations crossing it; by
	// the Lemma-1 necessity argument these two pairs form a permutation
	// that blocks.
	Violation *LinkSDView
	// Links holds the per-link view of every loaded link.
	Links map[topology.LinkID]*LinkSDView
}

// CheckLemma1AllPairs routes every SD pair (s ≠ d) of an N-host network
// with a single-path deterministic router and evaluates Lemma 1: the
// routing is nonblocking if and only if each link carries traffic either
// from one source or to one destination. This is an *exact* nonblocking
// decision procedure for deterministic routing — no permutation
// enumeration needed.
func CheckLemma1AllPairs(r routing.PairRouter, hosts int) (*Lemma1Result, error) {
	res := &Lemma1Result{Nonblocking: true, Links: make(map[topology.LinkID]*LinkSDView)}
	for s := 0; s < hosts; s++ {
		for d := 0; d < hosts; d++ {
			if s == d {
				continue
			}
			p, err := r.PathFor(s, d)
			if err != nil {
				return nil, fmt.Errorf("analysis: routing pair %d->%d: %w", s, d, err)
			}
			for _, l := range p.Links {
				v := res.Links[l]
				if v == nil {
					v = &LinkSDView{Link: l}
					res.Links[l] = v
				}
				v.Pairs = append(v.Pairs, permutation.Pair{Src: s, Dst: d})
				insertDistinct(&v.Sources, s)
				insertDistinct(&v.Dests, d)
			}
		}
	}
	for _, v := range res.Links {
		if !v.OneSourceOrOneDest() {
			res.Nonblocking = false
			if res.Violation == nil || v.Link < res.Violation.Link {
				res.Violation = v
			}
		}
	}
	return res, nil
}

func insertDistinct(s *[]int, x int) {
	for _, y := range *s {
		if y == x {
			return
		}
	}
	*s = append(*s, x)
}

// BlockingWitness extracts from a Lemma-1 violation a two-pair permutation
// that the routing blocks: two SD pairs with distinct sources and distinct
// destinations crossing the violated link (the constructive half of the
// Lemma-1 necessity proof).
func BlockingWitness(res *Lemma1Result, hosts int) (*permutation.Permutation, error) {
	if res.Nonblocking || res.Violation == nil {
		return nil, fmt.Errorf("analysis: routing is nonblocking; no witness exists")
	}
	v := res.Violation
	for i := 0; i < len(v.Pairs); i++ {
		for j := i + 1; j < len(v.Pairs); j++ {
			a, b := v.Pairs[i], v.Pairs[j]
			if a.Src != b.Src && a.Dst != b.Dst {
				return permutation.FromPairs(hosts, []permutation.Pair{a, b})
			}
		}
	}
	return nil, fmt.Errorf("analysis: internal error: violated link has no distinct-endpoint pair combination")
}

// SweepResult summarizes a nonblocking verification sweep over many
// permutations.
type SweepResult struct {
	// Tested counts patterns routed.
	Tested int
	// Blocked counts patterns with contention.
	Blocked int
	// FirstBlocked is a clone of the first contended pattern, nil if all
	// passed.
	FirstBlocked *permutation.Permutation
	// MaxLinkLoad is the worst per-link SD-pair count observed.
	MaxLinkLoad int
	// RouteErr records the first routing failure (e.g. adaptive routing
	// running out of top switches); sweeps stop at routing failures.
	RouteErr error
}

// Nonblocking reports whether every tested pattern routed without
// contention.
func (s *SweepResult) Nonblocking() bool { return s.Blocked == 0 && s.RouteErr == nil }

// SweepExhaustive routes every full permutation of hosts endpoints
// (hosts! patterns — practical up to hosts ≈ 9–10) and checks contention.
// For deterministic routing this plus CheckLemma1AllPairs gives two
// independent exact verdicts; for adaptive routing it is the ground-truth
// check on small networks.
//
// Routers with pattern-independent per-pair paths (PairLinkAppender,
// MultiPairRouter or PairRouter) are swept by the incremental delta
// engine: their per-pair link sets are precomputed once into a CSR
// routing.RouteTable and a DeltaChecker updates contention state per
// Heap-algorithm swap, making each pattern O(path length) instead of
// O(n · path length). Pattern-dependent routers — and any router whose
// table build fails — fall back to SweepExhaustiveOracle, so results
// (including routing-error reporting) are identical either way.
func SweepExhaustive(r routing.Router, hosts int) *SweepResult {
	return sweepExhaustiveDelta(r, hosts, false)
}

// SweepExhaustiveFirstBlocked is SweepExhaustive in early-exit mode for
// callers that only need a yes/no nonblocking verdict plus a witness: the
// sweep stops at the first contended pattern. Tested counts the patterns
// examined up to and including the blocked one; Blocked is at most 1, and
// MaxLinkLoad covers only the examined prefix. A fully nonblocking router
// yields a result identical to SweepExhaustive's.
func SweepExhaustiveFirstBlocked(r routing.Router, hosts int) *SweepResult {
	return sweepExhaustiveDelta(r, hosts, true)
}

// SweepExhaustiveOracle is the scratch-rebuild reference implementation of
// SweepExhaustive: one Checker.AnalyzePattern per pattern, no cross-pattern
// state. It is the parity oracle the delta engine is property-tested
// against, and the engine every pattern-dependent router uses.
func SweepExhaustiveOracle(r routing.Router, hosts int) *SweepResult {
	return sweepExhaustiveOracle(r, hosts, false)
}

func sweepExhaustiveOracle(r routing.Router, hosts int, firstOnly bool) *SweepResult {
	res := &SweepResult{}
	c := NewChecker(nil)
	permutation.EnumerateFull(hosts, func(p *permutation.Permutation) bool {
		if err := c.AnalyzePattern(r, p); err != nil {
			res.RouteErr = fmt.Errorf("analysis: pattern %s: %w", p, err)
			return false
		}
		res.Tested++
		if c.MaxLoad() > res.MaxLinkLoad {
			res.MaxLinkLoad = c.MaxLoad()
		}
		if c.HasContention() {
			res.Blocked++
			if res.FirstBlocked == nil {
				res.FirstBlocked = p.Clone()
			}
			if firstOnly {
				return false
			}
		}
		return true
	})
	return res
}

func sweepExhaustiveDelta(r routing.Router, hosts int, firstOnly bool) *SweepResult {
	t, err := routing.BuildRouteTable(r, hosts)
	if err != nil {
		// Pattern-dependent router, or some pair failed to route. The
		// oracle reproduces the exact sequential accounting either way —
		// in the failure case including the canonical first routing error
		// at the first pattern exercising the failing pair.
		return sweepExhaustiveOracle(r, hosts, firstOnly)
	}
	res := &SweepResult{}
	d := NewDeltaChecker(t)
	permutation.EnumerateFullSwaps(hosts, func(p *permutation.Permutation, i, j int) bool {
		if i < 0 {
			d.Reset(p)
		} else {
			d.Swap(i, j)
		}
		res.Tested++
		if d.MaxLoad() > res.MaxLinkLoad {
			res.MaxLinkLoad = d.MaxLoad()
		}
		if d.HasContention() {
			res.Blocked++
			if res.FirstBlocked == nil {
				res.FirstBlocked = p.Clone()
			}
			if firstOnly {
				return false
			}
		}
		return true
	})
	return res
}

// SweepRandom routes trials random full permutations (seeded) plus the
// structured patterns most hostile to fat-trees — switch shifts, local
// rotations, transpose and bit-reversal where the host count allows — and
// checks contention.
func SweepRandom(r routing.Router, hosts, trials int, seed int64) *SweepResult {
	res := &SweepResult{}
	rng := rand.New(rand.NewSource(seed))
	c := NewChecker(nil)
	test := func(p *permutation.Permutation) bool {
		if err := c.AnalyzePattern(r, p); err != nil {
			res.RouteErr = fmt.Errorf("analysis: pattern %s: %w", p, err)
			return false
		}
		res.Tested++
		if c.MaxLoad() > res.MaxLinkLoad {
			res.MaxLinkLoad = c.MaxLoad()
		}
		if c.HasContention() {
			res.Blocked++
			if res.FirstBlocked == nil {
				res.FirstBlocked = p.Clone()
			}
		}
		return true
	}
	for i := 0; i < trials; i++ {
		if !test(permutation.Random(rng, hosts)) {
			return res
		}
	}
	for i := 0; i < trials/2; i++ {
		if !test(permutation.RandomPartial(rng, hosts, 0.25+rng.Float64()/2)) {
			return res
		}
	}
	for k := 1; k < hosts && k <= 8; k++ {
		if !test(permutation.Shift(hosts, k)) {
			return res
		}
	}
	if hosts > 0 && hosts&(hosts-1) == 0 {
		if !test(permutation.BitReversal(hosts)) {
			return res
		}
	}
	for d := 2; d*d <= hosts; d++ {
		if hosts%d == 0 {
			if !test(permutation.Transpose(d, hosts/d)) {
				return res
			}
		}
	}
	test(permutation.Neighbor(hosts))
	return res
}

// BlockingProbability estimates, over trials seeded random full
// permutations, the fraction that suffer contention under the router, and
// the mean of the worst per-link load — the blocking-probability metric
// the related work optimizes ([6], [9], [15], [17]).
func BlockingProbability(r routing.Router, hosts, trials int, seed int64) (blockFrac, meanMaxLoad float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	c := NewChecker(nil)
	blocked, loadSum := 0, 0
	for i := 0; i < trials; i++ {
		p := permutation.Random(rng, hosts)
		if rerr := c.AnalyzePattern(r, p); rerr != nil {
			return 0, 0, rerr
		}
		if c.HasContention() {
			blocked++
		}
		loadSum += c.MaxLoad()
	}
	if trials == 0 {
		return 0, 0, nil
	}
	return float64(blocked) / float64(trials), float64(loadSum) / float64(trials), nil
}
