package analysis

import (
	"math"
	"math/rand"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Analytic blocking model for randomized oblivious routing ([6], [15]):
// when every cross-switch SD pair of a permutation picks an independent
// uniform top switch out of m, contention arises exactly when two pairs
// sharing a source switch pick the same top switch (uplink birthday
// collision) or two pairs sharing a destination switch do (downlink). A
// random permutation keeps each pair inside its switch with probability
// 1/r (no top-level traversal), thinning the birthday participants by
// α = (1−1/r)² per colliding pair. Treating the 2r per-switch events as
// independent gives
//
//	P(contention-free) ≈ [ ∏_{i<n} (1 − i·α/m) ]^(2r)
//
// — the birthday bound that quantifies why randomized routing needs
// m ≫ r·n² before *random* permutations are usually clear, while never
// reaching the paper's guarantee: for any m some permutation still blocks
// under randomized choices.

// ModelRandomClearProb returns the analytic approximation of the
// probability that a random full permutation routes contention-free under
// independent uniform top-switch choices on ftree(n+m, r).
func ModelRandomClearProb(n, m, r int) float64 {
	alpha := 1 - 1/float64(r)
	alpha *= alpha
	logClear := 0.0
	for i := 0; i < n; i++ {
		term := 1 - float64(i)*alpha/float64(m)
		if term <= 0 {
			return 0
		}
		logClear += math.Log(term)
	}
	return math.Exp(float64(2*r) * logClear)
}

// MeasureRandomClearProb estimates the same probability by Monte Carlo:
// `trials` random permutations, each routed with freshly drawn uniform
// top-switch choices (a new random-fixed table per trial).
func MeasureRandomClearProb(n, m, r, trials int, seed int64) (float64, error) {
	f := topology.NewFoldedClos(n, m, r)
	rng := rand.New(rand.NewSource(seed))
	c := NewChecker(f.Net)
	clear := 0
	for trial := 0; trial < trials; trial++ {
		router := routing.NewRandomFixed(f, rng.Int63())
		p := permutation.Random(rng, f.Ports())
		if err := c.AnalyzePattern(router, p); err != nil {
			return 0, err
		}
		if !c.HasContention() {
			clear++
		}
	}
	if trials == 0 {
		return 0, nil
	}
	return float64(clear) / float64(trials), nil
}

// ModelExpectedCollisions returns the expected number of colliding link
// pairs under the same independence model: 2r · C(n,2) / m — the
// first-order term showing collisions scale with r·n²/m.
func ModelExpectedCollisions(n, m, r int) float64 {
	return float64(2*r) * float64(n*(n-1)) / 2 / float64(m)
}
