package analysis

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/routing"
	"repro/internal/topology"
)

// cancelTestRouter builds the ftree(2+4,8) paper router: 16 hosts,
// cacheable per-pair link sets, so both the delta and (forced) oracle
// engines apply.
func cancelTestRouter(t *testing.T) (routing.Router, int) {
	t.Helper()
	f := topology.NewFoldedClos(2, 4, 8)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	return r, f.Ports()
}

// TestSweepCtxBackgroundParity pins the no-cancellation contract: every Ctx
// variant run under context.Background() returns a nil error and the exact
// result of its pre-context counterpart. hosts=7 keeps the exhaustive
// sweeps at 5040 patterns.
func TestSweepCtxBackgroundParity(t *testing.T) {
	r, _ := cancelTestRouter(t)
	const hosts = 7
	ctx := context.Background()

	type variant struct {
		name string
		old  func() *SweepResult
		new  func() (*SweepResult, error)
	}
	for _, v := range []variant{
		{"exhaustive",
			func() *SweepResult { return SweepExhaustive(r, hosts) },
			func() (*SweepResult, error) { return SweepExhaustiveCtx(ctx, r, hosts) }},
		{"first-blocked",
			func() *SweepResult { return SweepExhaustiveFirstBlocked(r, hosts) },
			func() (*SweepResult, error) { return SweepExhaustiveFirstBlockedCtx(ctx, r, hosts) }},
		{"oracle",
			func() *SweepResult { return SweepExhaustiveOracle(r, hosts) },
			func() (*SweepResult, error) { return SweepExhaustiveOracleCtx(ctx, r, hosts) }},
		{"random",
			func() *SweepResult { return SweepRandom(r, hosts, 500, 42) },
			func() (*SweepResult, error) { return SweepRandomCtx(ctx, r, hosts, 500, 42) }},
		{"parallel",
			func() *SweepResult { return SweepExhaustiveParallel(r, hosts, 3) },
			func() (*SweepResult, error) { return SweepExhaustiveParallelCtx(ctx, r, hosts, 3) }},
	} {
		want := v.old()
		got, err := v.new()
		if err != nil {
			t.Fatalf("%s: background ctx returned %v", v.name, err)
		}
		if got.Tested != want.Tested || got.Blocked != want.Blocked || got.MaxLinkLoad != want.MaxLinkLoad {
			t.Fatalf("%s: ctx (%d,%d,%d) vs plain (%d,%d,%d)",
				v.name, got.Tested, got.Blocked, got.MaxLinkLoad,
				want.Tested, want.Blocked, want.MaxLinkLoad)
		}
		if (got.FirstBlocked == nil) != (want.FirstBlocked == nil) {
			t.Fatalf("%s: FirstBlocked presence mismatch", v.name)
		}
		if got.FirstBlocked != nil && !got.FirstBlocked.Equal(want.FirstBlocked) {
			t.Fatalf("%s: FirstBlocked %s vs %s", v.name, got.FirstBlocked, want.FirstBlocked)
		}
	}

	s := &WorstCaseSearch{Router: r, Hosts: hosts, Restarts: 4, Steps: 200, Seed: 7}
	want, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.RunCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.ContendedLinks != want.ContendedLinks || got.MaxLoad != want.MaxLoad || got.Evaluated != want.Evaluated {
		t.Fatalf("worst-case: ctx (%d,%d,%d) vs plain (%d,%d,%d)",
			got.ContendedLinks, got.MaxLoad, got.Evaluated,
			want.ContendedLinks, want.MaxLoad, want.Evaluated)
	}
	if !got.Permutation.Equal(want.Permutation) {
		t.Fatalf("worst-case: permutation %s vs %s", got.Permutation, want.Permutation)
	}
}

// TestSweepCtxPreCancelled pins the fast path: an already-cancelled context
// returns ctx.Err() without touching a single pattern.
func TestSweepCtxPreCancelled(t *testing.T) {
	r, hosts := cancelTestRouter(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, v := range []struct {
		name string
		run  func() (*SweepResult, error)
	}{
		{"exhaustive", func() (*SweepResult, error) { return SweepExhaustiveCtx(ctx, r, hosts) }},
		{"first-blocked", func() (*SweepResult, error) { return SweepExhaustiveFirstBlockedCtx(ctx, r, hosts) }},
		{"oracle", func() (*SweepResult, error) { return SweepExhaustiveOracleCtx(ctx, r, hosts) }},
		{"random", func() (*SweepResult, error) { return SweepRandomCtx(ctx, r, hosts, 1000, 1) }},
		{"parallel", func() (*SweepResult, error) { return SweepExhaustiveParallelCtx(ctx, r, hosts, 4) }},
	} {
		res, err := v.run()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", v.name, err)
		}
		if res == nil {
			t.Fatalf("%s: nil result on cancellation", v.name)
		}
		if res.Tested != 0 {
			t.Fatalf("%s: tested %d patterns under a pre-cancelled ctx", v.name, res.Tested)
		}
	}

	s := &WorstCaseSearch{Router: r, Hosts: hosts, Restarts: 10, Steps: 1000, Seed: 1}
	res, err := s.RunCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("worst-case: err = %v, want context.Canceled", err)
	}
	if res == nil || res.Evaluated != 0 {
		t.Fatalf("worst-case: evaluated %v patterns under a pre-cancelled ctx", res)
	}
}

// TestSweepCtxCancelPrompt starts sweeps that would take far longer than
// any test timeout (16! exhaustive patterns; effectively unbounded
// worst-case search) and cancels them shortly after start. Each call must
// observe the signal within the polling stride — bounded here at 10s of
// wall clock, orders of magnitude under the uncancelled runtime — and all
// parallel workers must be joined on return (no goroutine leak).
func TestSweepCtxCancelPrompt(t *testing.T) {
	r, hosts := cancelTestRouter(t) // 16 hosts: 16! ≈ 2·10^13 patterns
	before := runtime.NumGoroutine()

	for _, v := range []struct {
		name string
		run  func(ctx context.Context) (int, error)
	}{
		{"exhaustive-delta", func(ctx context.Context) (int, error) {
			res, err := SweepExhaustiveCtx(ctx, r, hosts)
			return res.Tested, err
		}},
		{"exhaustive-oracle", func(ctx context.Context) (int, error) {
			res, err := SweepExhaustiveOracleCtx(ctx, r, hosts)
			return res.Tested, err
		}},
		{"random", func(ctx context.Context) (int, error) {
			res, err := SweepRandomCtx(ctx, r, hosts, 1<<30, 99)
			return res.Tested, err
		}},
		{"parallel-delta", func(ctx context.Context) (int, error) {
			res, err := SweepExhaustiveParallelCtx(ctx, r, hosts, 4)
			return res.Tested, err
		}},
		{"parallel-oracle", func(ctx context.Context) (int, error) {
			res, err := sweepParallelOracle(ctx, r, hosts, 4, nil)
			return res.Tested, err
		}},
		{"worst-case", func(ctx context.Context) (int, error) {
			s := &WorstCaseSearch{Router: r, Hosts: hosts, Restarts: 1 << 30, Steps: 1 << 30, Seed: 3}
			res, err := s.RunCtx(ctx)
			return res.Evaluated, err
		}},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(50*time.Millisecond, cancel)
		start := time.Now()
		_, err := v.run(ctx)
		elapsed := time.Since(start)
		timer.Stop()
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", v.name, err)
		}
		if elapsed > 10*time.Second {
			t.Fatalf("%s: took %v to observe cancellation", v.name, elapsed)
		}
	}

	// All workers are joined before the Ctx calls return, so the goroutine
	// count settles back to the baseline (poll briefly: the runtime may
	// still be tearing down timer goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
