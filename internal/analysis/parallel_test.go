package analysis

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestSweepExhaustiveParallelMatchesSequential(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	good, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	bad := routing.NewDestMod(f)
	for _, r := range []routing.Router{good, bad} {
		seq := SweepExhaustive(r, f.Ports())
		for _, workers := range []int{1, 2, 4, 0} {
			par := SweepExhaustiveParallel(r, f.Ports(), workers)
			if par.Tested != seq.Tested || par.Blocked != seq.Blocked || par.MaxLinkLoad != seq.MaxLinkLoad {
				t.Fatalf("%s workers=%d: parallel (%d,%d,%d) vs sequential (%d,%d,%d)",
					r.Name(), workers, par.Tested, par.Blocked, par.MaxLinkLoad,
					seq.Tested, seq.Blocked, seq.MaxLinkLoad)
			}
			if (seq.FirstBlocked == nil) != (par.FirstBlocked == nil) {
				t.Fatalf("%s: FirstBlocked presence mismatch", r.Name())
			}
		}
	}
}

func TestSweepExhaustiveParallelTinyAndErrors(t *testing.T) {
	f := topology.NewFoldedClos(1, 1, 1)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	res := SweepExhaustiveParallel(r, f.Ports(), 4)
	if res.Tested != 1 {
		t.Fatalf("hosts=1: tested %d", res.Tested)
	}
	// Routing errors surface and stop the sweep.
	tiny := topology.NewFoldedClos(2, 1, 3)
	ad, err := routing.NewNonblockingAdaptive(tiny)
	if err != nil {
		t.Fatal(err)
	}
	out := SweepExhaustiveParallel(ad, tiny.Ports(), 3)
	if out.RouteErr == nil {
		t.Fatal("expected route error")
	}
	if out.Nonblocking() {
		t.Fatal("errored sweep must not claim nonblocking")
	}
}

// failingRouter wraps a working router but fails on every pattern sending
// host 0 to failDst — a deterministic, pattern-keyed fault for exercising
// the sweep error path.
type failingRouter struct {
	inner   routing.Router
	failDst int
}

func (r *failingRouter) Name() string { return "failing-" + r.inner.Name() }

func (r *failingRouter) Route(p *permutation.Permutation) (*routing.Assignment, error) {
	if p.Dst(0) == r.failDst {
		return nil, fmt.Errorf("injected failure for 0->%d", r.failDst)
	}
	return r.inner.Route(p)
}

// TestSweepExhaustiveParallelErrorPathDeterministic is the regression test
// for the racy error path: a parallel sweep hitting a routing failure must
// report the same (sequential-order first) error as SweepExhaustive and
// zeroed statistics, identically across worker counts and repeated runs.
func TestSweepExhaustiveParallelErrorPathDeterministic(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	good, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	r := &failingRouter{inner: good, failDst: 2}
	seq := SweepExhaustive(r, f.Ports())
	if seq.RouteErr == nil {
		t.Fatal("sequential sweep should hit the injected failure")
	}
	for _, workers := range []int{1, 2, 4, 8, 0} {
		for rep := 0; rep < 5; rep++ {
			par := SweepExhaustiveParallel(r, f.Ports(), workers)
			if par.RouteErr == nil || par.RouteErr.Error() != seq.RouteErr.Error() {
				t.Fatalf("workers=%d rep=%d: RouteErr %v, want %v", workers, rep, par.RouteErr, seq.RouteErr)
			}
			if par.Tested != 0 || par.Blocked != 0 || par.MaxLinkLoad != 0 || par.FirstBlocked != nil {
				t.Fatalf("workers=%d rep=%d: error path must zero statistics, got (%d,%d,%d,%v)",
					workers, rep, par.Tested, par.Blocked, par.MaxLinkLoad, par.FirstBlocked)
			}
			if par.Nonblocking() {
				t.Fatal("errored sweep must not claim nonblocking")
			}
		}
	}
}

func TestCheckLemma1AllPairsParallelMatchesSequential(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	good, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	bad := routing.NewDestMod(f)
	for _, r := range []routing.PairRouter{good, bad} {
		seq, err := CheckLemma1AllPairs(r, f.Ports())
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 0} {
			par, err := CheckLemma1AllPairsParallel(r, f.Ports(), workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Nonblocking != seq.Nonblocking {
				t.Fatalf("%s workers=%d: Nonblocking %v vs %v", r.Name(), workers, par.Nonblocking, seq.Nonblocking)
			}
			if !reflect.DeepEqual(par.Links, seq.Links) {
				t.Fatalf("%s workers=%d: Links differ from sequential", r.Name(), workers)
			}
			if !reflect.DeepEqual(par.Violation, seq.Violation) {
				t.Fatalf("%s workers=%d: Violation %+v vs %+v", r.Name(), workers, par.Violation, seq.Violation)
			}
		}
	}
	// Error path: the parallel check reports the sequential-order first
	// failing pair regardless of worker count.
	broke := &routing.FtreeSinglePath{F: f, RouterName: "broke", TopChoice: func(s, d int) int {
		if s >= 4 {
			return 99
		}
		return 0
	}}
	_, errSeq := CheckLemma1AllPairs(broke, f.Ports())
	if errSeq == nil {
		t.Fatal("expected sequential error")
	}
	for _, workers := range []int{2, 5, 0} {
		_, errPar := CheckLemma1AllPairsParallel(broke, f.Ports(), workers)
		if errPar == nil || errPar.Error() != errSeq.Error() {
			t.Fatalf("workers=%d: error %v, want %v", workers, errPar, errSeq)
		}
	}
}

func TestWorstCaseLinkLoadParallelMatchesSequential(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	for _, r := range []routing.PairRouter{routing.NewDestMod(f)} {
		seq, err := WorstCaseLinkLoad(r, f.Ports())
		if err != nil {
			t.Fatal(err)
		}
		par, err := WorstCaseLinkLoadParallel(r, f.Ports(), 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("parallel %+v vs sequential %+v", par, seq)
		}
	}
}

func TestBlockingProbabilityParallel(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 5)
	good, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	frac, load, err := BlockingProbabilityParallel(good, f.Ports(), 40, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 0 || load != 1 {
		t.Fatalf("nonblocking: frac=%v load=%v", frac, load)
	}
	bad := routing.NewDestMod(f)
	frac, _, err = BlockingProbabilityParallel(bad, f.Ports(), 40, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if frac <= 0 {
		t.Fatal("dest-mod should block sometimes")
	}
	// workers > trials and workers <= 1 paths.
	if _, _, err := BlockingProbabilityParallel(good, f.Ports(), 2, 8, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := BlockingProbabilityParallel(good, f.Ports(), 5, 1, 1); err != nil {
		t.Fatal(err)
	}
	if f2, l2, err := BlockingProbabilityParallel(good, f.Ports(), 0, 0, 1); err != nil || f2 != 0 || l2 != 0 {
		t.Fatal("zero trials should return zeros")
	}
	// Errors propagate.
	tiny := topology.NewFoldedClos(2, 1, 3)
	ad, err := routing.NewNonblockingAdaptive(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := BlockingProbabilityParallel(ad, tiny.Ports(), 8, 4, 1); err == nil {
		t.Fatal("expected routing error")
	}
}

func TestMaxRootPairsModesParallelMatchesSequential(t *testing.T) {
	for _, c := range []struct{ n, r int }{{1, 3}, {2, 3}, {2, 5}, {3, 4}} {
		seq := MaxRootPairsModes(c.n, c.r)
		for _, workers := range []int{1, 3, 0} {
			par := MaxRootPairsModesParallel(c.n, c.r, workers)
			if par != seq {
				t.Fatalf("n=%d r=%d workers=%d: parallel %d vs sequential %d", c.n, c.r, workers, par, seq)
			}
		}
	}
	if MaxRootPairsModesParallel(2, 1, 2) != 0 {
		t.Fatal("r=1 should be 0")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("invalid instance should panic")
			}
		}()
		MaxRootPairsModesParallel(0, 2, 2)
	}()
}

func TestEnumerateFullPrefixShardsPartition(t *testing.T) {
	// The n shards together must produce exactly the n! permutations,
	// each once.
	n := 5
	seen := map[string]bool{}
	total := 0
	for shard := 0; shard < n; shard++ {
		ok := permutation.EnumerateFullPrefix(n, shard, func(p *permutation.Permutation) bool {
			s := p.String()
			if seen[s] {
				t.Fatalf("duplicate %s", s)
			}
			seen[s] = true
			total++
			if p.Dst(0) != shard {
				t.Fatalf("shard %d produced %s", shard, s)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			return true
		})
		if !ok {
			t.Fatal("shard aborted")
		}
	}
	if total != permutation.CountFull(n) {
		t.Fatalf("total %d, want %d", total, permutation.CountFull(n))
	}
	// Degenerate shards.
	if !permutation.EnumerateFullPrefix(0, 0, func(*permutation.Permutation) bool { return true }) {
		t.Fatal("n=0 shard")
	}
	if !permutation.EnumerateFullPrefix(3, 9, func(*permutation.Permutation) bool { return true }) {
		t.Fatal("out-of-range shard should be empty and complete")
	}
	// Early stop.
	count := 0
	done := permutation.EnumerateFullPrefix(4, 1, func(*permutation.Permutation) bool {
		count++
		return count < 2
	})
	if done || count != 2 {
		t.Fatalf("early stop: done=%v count=%d", done, count)
	}
}
