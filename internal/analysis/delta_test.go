package analysis

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// deltaRouters builds the pattern-independent router zoo the delta engine
// is property-tested against: single-path fat-tree schemes (nonblocking
// and blocking), oblivious multipath sets, and PathFor-only m-port n-tree
// routers, each paired with its host count.
func deltaRouters(t *testing.T) []struct {
	r     routing.Router
	hosts int
} {
	t.Helper()
	var out []struct {
		r     routing.Router
		hosts int
	}
	add := func(r routing.Router, hosts int) {
		out = append(out, struct {
			r     routing.Router
			hosts int
		}{r, hosts})
	}
	f := topology.NewFoldedClos(2, 4, 3)
	paper, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	add(paper, f.Ports())
	add(routing.NewDestMod(f), f.Ports())
	folded := topology.NewFoldedClos(2, 3, 3)
	add(routing.NewPaperDeterministicFolded(folded), folded.Ports())
	spray, err := routing.NewKSpray(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	add(spray, f.Ports())
	add(routing.NewFullSpray(folded), folded.Ports())
	pm, err := routing.NewPaperMultipath(f)
	if err != nil {
		t.Fatal(err)
	}
	add(pm, f.Ports())
	tr := topology.NewMPortNTree(4, 2)
	add(routing.NewMNTDestMod(tr), tr.Hosts())
	mspray, err := routing.NewMNTSpray(tr, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	add(mspray, tr.Hosts())
	return out
}

func sameSweepResult(t *testing.T, name string, got, want *SweepResult) {
	t.Helper()
	if got.Tested != want.Tested || got.Blocked != want.Blocked || got.MaxLinkLoad != want.MaxLinkLoad {
		t.Fatalf("%s: (%d,%d,%d), oracle (%d,%d,%d)", name,
			got.Tested, got.Blocked, got.MaxLinkLoad, want.Tested, want.Blocked, want.MaxLinkLoad)
	}
	switch {
	case (got.FirstBlocked == nil) != (want.FirstBlocked == nil):
		t.Fatalf("%s: FirstBlocked presence mismatch", name)
	case got.FirstBlocked != nil && !got.FirstBlocked.Equal(want.FirstBlocked):
		t.Fatalf("%s: FirstBlocked %s, oracle %s", name, got.FirstBlocked, want.FirstBlocked)
	}
	switch {
	case (got.RouteErr == nil) != (want.RouteErr == nil):
		t.Fatalf("%s: RouteErr %v vs %v", name, got.RouteErr, want.RouteErr)
	case got.RouteErr != nil && got.RouteErr.Error() != want.RouteErr.Error():
		t.Fatalf("%s: RouteErr %q, oracle %q", name, got.RouteErr, want.RouteErr)
	}
}

// TestSweepExhaustiveDeltaMatchesOracle is the headline parity property:
// for every cacheable router, the delta-swept result must equal the
// scratch-rebuild oracle's in every field — counts, max load, and the
// identity of the first blocked pattern.
func TestSweepExhaustiveDeltaMatchesOracle(t *testing.T) {
	for _, c := range deltaRouters(t) {
		if _, err := routing.BuildRouteTable(c.r, c.hosts); err != nil {
			t.Fatalf("%s: table build failed: %v", c.r.Name(), err)
		}
		got := SweepExhaustive(c.r, c.hosts)
		want := SweepExhaustiveOracle(c.r, c.hosts)
		sameSweepResult(t, c.r.Name(), got, want)
	}
}

// TestDeltaCheckerLockstepWithChecker steps a DeltaChecker and a scratch
// Checker through the same Heap enumeration and compares the full
// contention state — max load, contended count, and every link's load —
// after every single swap.
func TestDeltaCheckerLockstepWithChecker(t *testing.T) {
	f := topology.NewFoldedClos(2, 3, 3) // folded: plenty of contention
	r := routing.NewPaperDeterministicFolded(f)
	hosts := f.Ports()
	table, err := routing.BuildRouteTable(r, hosts)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeltaChecker(table)
	c := NewChecker(nil)
	permutation.EnumerateFullSwaps(hosts, func(p *permutation.Permutation, i, j int) bool {
		if i < 0 {
			d.Reset(p)
		} else {
			d.Swap(i, j)
		}
		if err := c.AnalyzePattern(r, p); err != nil {
			t.Fatal(err)
		}
		if d.MaxLoad() != c.MaxLoad() || d.ContendedCount() != c.ContendedCount() || d.HasContention() != c.HasContention() {
			t.Fatalf("pattern %s: delta (%d,%d), checker (%d,%d)",
				p, d.MaxLoad(), d.ContendedCount(), c.MaxLoad(), c.ContendedCount())
		}
		for l := 0; l < table.NumLinks(); l++ {
			if got, want := d.LinkLoad(l), len(c.PairsOn(topology.LinkID(l))); got != want {
				t.Fatalf("pattern %s link %d: delta load %d, checker %d", p, l, got, want)
			}
		}
		return true
	})
	// Out-of-range loads read as zero.
	if d.LinkLoad(-1) != 0 || d.LinkLoad(1<<20) != 0 {
		t.Fatal("out-of-range LinkLoad not zero")
	}
}

// TestDeltaCheckerResetPartialPattern checks Reset on partial permutations
// (Unused sources load nothing) against the scratch Checker.
func TestDeltaCheckerResetPartialPattern(t *testing.T) {
	f := topology.NewFoldedClos(2, 3, 3)
	r := routing.NewPaperDeterministicFolded(f)
	table, err := routing.BuildRouteTable(r, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeltaChecker(table)
	c := NewChecker(nil)
	p := permutation.New(f.Ports())
	for _, pair := range []permutation.Pair{{Src: 0, Dst: 3}, {Src: 2, Dst: 1}, {Src: 5, Dst: 4}} {
		if err := p.Add(pair.Src, pair.Dst); err != nil {
			t.Fatal(err)
		}
	}
	d.Reset(p)
	if err := c.AnalyzePattern(r, p); err != nil {
		t.Fatal(err)
	}
	if d.MaxLoad() != c.MaxLoad() || d.ContendedCount() != c.ContendedCount() {
		t.Fatalf("partial pattern: delta (%d,%d), checker (%d,%d)",
			d.MaxLoad(), d.ContendedCount(), c.MaxLoad(), c.ContendedCount())
	}
	// Swapping two sources of a partial pattern (one used, one unused)
	// must stay in lockstep too.
	d.Swap(0, 1)
	q := permutation.New(f.Ports())
	for _, pair := range []permutation.Pair{{Src: 1, Dst: 3}, {Src: 2, Dst: 1}, {Src: 5, Dst: 4}} {
		if err := q.Add(pair.Src, pair.Dst); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AnalyzePattern(r, q); err != nil {
		t.Fatal(err)
	}
	if d.MaxLoad() != c.MaxLoad() || d.ContendedCount() != c.ContendedCount() {
		t.Fatalf("after partial swap: delta (%d,%d), checker (%d,%d)",
			d.MaxLoad(), d.ContendedCount(), c.MaxLoad(), c.ContendedCount())
	}
}

// erroringAppender routes like its inner router but fails on one pair —
// exercising the build-failure fallback: SweepExhaustive must degrade to
// the oracle and report its exact mid-enumeration routing error.
type erroringAppender struct {
	inner routing.PairLinkAppender
	src   int
	dst   int
}

func (r *erroringAppender) Name() string { return "erroring-" + r.inner.Name() }

func (r *erroringAppender) Route(p *permutation.Permutation) (*routing.Assignment, error) {
	return r.inner.Route(p)
}

func (r *erroringAppender) AppendPairLinks(src, dst int, buf []topology.LinkID) ([]topology.LinkID, error) {
	if src == r.src && dst == r.dst {
		return buf, fmt.Errorf("injected pair failure")
	}
	return r.inner.AppendPairLinks(src, dst, buf)
}

func TestSweepExhaustiveErroringRouterFallsBackToOracle(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	paper, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	r := &erroringAppender{inner: paper, src: 2, dst: 5}
	if _, err := routing.BuildRouteTable(r, f.Ports()); err == nil {
		t.Fatal("table build should fail on the injected pair")
	}
	got := SweepExhaustive(r, f.Ports())
	want := SweepExhaustiveOracle(r, f.Ports())
	if got.RouteErr == nil {
		t.Fatal("sweep should surface the injected failure")
	}
	if !strings.Contains(got.RouteErr.Error(), "routing pair 2->5: injected pair failure") {
		t.Fatalf("RouteErr %v", got.RouteErr)
	}
	sameSweepResult(t, r.Name(), got, want)
	// Same for the first-blocked and parallel entry points.
	sameSweepResult(t, r.Name(), SweepExhaustiveFirstBlocked(r, f.Ports()), want)
	sameSweepResult(t, r.Name(), SweepExhaustiveParallel(r, f.Ports(), 3), &SweepResult{RouteErr: want.RouteErr})
}

func TestSweepExhaustiveFirstBlockedSemantics(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	paper, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	// Nonblocking router: identical to the full sweep.
	sameSweepResult(t, "paper", SweepExhaustiveFirstBlocked(paper, f.Ports()), SweepExhaustive(paper, f.Ports()))

	// Blocking routers: exactly one blocked pattern, the same FirstBlocked
	// as the full sweep, and a Tested count that stops right there. The
	// examined prefix is enumeration-order, so Tested is the 1-based index
	// of FirstBlocked in the full enumeration for both engines.
	for _, c := range deltaRouters(t) {
		full := SweepExhaustive(c.r, c.hosts)
		if full.Blocked == 0 {
			continue
		}
		fb := SweepExhaustiveFirstBlocked(c.r, c.hosts)
		if fb.Blocked != 1 {
			t.Fatalf("%s: Blocked %d, want 1", c.r.Name(), fb.Blocked)
		}
		if fb.FirstBlocked == nil || !fb.FirstBlocked.Equal(full.FirstBlocked) {
			t.Fatalf("%s: FirstBlocked %s, full sweep %s", c.r.Name(), fb.FirstBlocked, full.FirstBlocked)
		}
		if fb.Tested <= 0 || fb.Tested > full.Tested {
			t.Fatalf("%s: Tested %d outside (0,%d]", c.r.Name(), fb.Tested, full.Tested)
		}
		if fb.MaxLinkLoad > full.MaxLinkLoad {
			t.Fatalf("%s: prefix MaxLinkLoad %d exceeds full %d", c.r.Name(), fb.MaxLinkLoad, full.MaxLinkLoad)
		}
		// Oracle early-exit agrees field for field.
		oracle, err := sweepExhaustiveOracle(context.Background(), c.r, c.hosts, true, nil)
		if err != nil {
			t.Fatalf("%s: oracle sweep: %v", c.r.Name(), err)
		}
		sameSweepResult(t, c.r.Name(), fb, oracle)
	}
}

func TestSweepExhaustiveParallelDeltaMatchesSequential(t *testing.T) {
	for _, c := range deltaRouters(t) {
		seq := SweepExhaustive(c.r, c.hosts)
		for _, workers := range []int{1, 3, 0} {
			par := SweepExhaustiveParallel(c.r, c.hosts, workers)
			if par.Tested != seq.Tested || par.Blocked != seq.Blocked || par.MaxLinkLoad != seq.MaxLinkLoad {
				t.Fatalf("%s workers=%d: parallel (%d,%d,%d) vs sequential (%d,%d,%d)",
					c.r.Name(), workers, par.Tested, par.Blocked, par.MaxLinkLoad,
					seq.Tested, seq.Blocked, seq.MaxLinkLoad)
			}
			if (seq.FirstBlocked == nil) != (par.FirstBlocked == nil) {
				t.Fatalf("%s: FirstBlocked presence mismatch", c.r.Name())
			}
		}
	}
}

// patternOnlyRouter hides every pairwise interface of its inner router,
// forcing the pattern-dependent (oracle) engine on a router that would
// otherwise be delta-swept — the lever for delta-vs-oracle comparisons of
// whole search procedures.
type patternOnlyRouter struct {
	inner routing.Router
}

func (r *patternOnlyRouter) Name() string { return r.inner.Name() }

func (r *patternOnlyRouter) Route(p *permutation.Permutation) (*routing.Assignment, error) {
	return r.inner.Route(p)
}

// TestWorstCaseSearchDeltaMatchesOracle runs the adversarial hill climb
// with the delta scorer and with the per-pattern oracle (forced via
// interface hiding) on the same seed: identical RNG consumption must give
// identical results, pattern included.
func TestWorstCaseSearchDeltaMatchesOracle(t *testing.T) {
	for _, c := range deltaRouters(t) {
		sDelta := &WorstCaseSearch{Router: c.r, Hosts: c.hosts, Restarts: 3, Steps: 40, Seed: 7}
		sOracle := &WorstCaseSearch{Router: &patternOnlyRouter{inner: c.r}, Hosts: c.hosts, Restarts: 3, Steps: 40, Seed: 7}
		got, err := sDelta.Run()
		if err != nil {
			t.Fatalf("%s delta: %v", c.r.Name(), err)
		}
		want, err := sOracle.Run()
		if err != nil {
			t.Fatalf("%s oracle: %v", c.r.Name(), err)
		}
		if got.ContendedLinks != want.ContendedLinks || got.MaxLoad != want.MaxLoad || got.Evaluated != want.Evaluated {
			t.Fatalf("%s: delta (%d,%d,%d), oracle (%d,%d,%d)", c.r.Name(),
				got.ContendedLinks, got.MaxLoad, got.Evaluated,
				want.ContendedLinks, want.MaxLoad, want.Evaluated)
		}
		if !got.Permutation.Equal(want.Permutation) {
			t.Fatalf("%s: delta %s, oracle %s", c.r.Name(), got.Permutation, want.Permutation)
		}
	}
}

// TestDeltaCheckerSwapZeroAllocs pins the acceptance criterion that the
// steady-state delta path allocates nothing: Reset and Swap run over live
// table spans and flat counters only.
func TestDeltaCheckerSwapZeroAllocs(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	table, err := routing.BuildRouteTable(r, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeltaChecker(table)
	d.Reset(permutation.Identity(f.Ports()))
	if avg := testing.AllocsPerRun(100, func() {
		d.Swap(0, 3)
		d.Swap(1, 4)
		d.Swap(0, 3)
		d.Swap(1, 4)
		_ = d.MaxLoad() + d.ContendedCount()
	}); avg != 0 {
		t.Fatalf("Swap allocates %v per run", avg)
	}
	ident := permutation.Identity(f.Ports())
	if avg := testing.AllocsPerRun(100, func() {
		d.Reset(ident)
	}); avg != 0 {
		t.Fatalf("Reset allocates %v per run", avg)
	}
}

// TestDeltaCheckerSwapIsInvolution: applying the same swap twice must
// restore the exact contention state — the property the adversarial
// search's reject path depends on.
func TestDeltaCheckerSwapIsInvolution(t *testing.T) {
	f := topology.NewFoldedClos(2, 3, 3)
	r := routing.NewPaperDeterministicFolded(f)
	table, err := routing.BuildRouteTable(r, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeltaChecker(table)
	d.Reset(permutation.Shift(f.Ports(), 1))
	type state struct{ max, cont int }
	before := state{d.MaxLoad(), d.ContendedCount()}
	loads := make([]int, table.NumLinks())
	for l := range loads {
		loads[l] = d.LinkLoad(l)
	}
	for i := 0; i < f.Ports(); i++ {
		for j := 0; j < f.Ports(); j++ {
			d.Swap(i, j)
			d.Swap(i, j)
			if (state{d.MaxLoad(), d.ContendedCount()}) != before {
				t.Fatalf("swap(%d,%d) twice moved summary state", i, j)
			}
			for l := range loads {
				if d.LinkLoad(l) != loads[l] {
					t.Fatalf("swap(%d,%d) twice moved load of link %d", i, j, l)
				}
			}
		}
	}
}
