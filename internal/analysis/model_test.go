package analysis

import (
	"math"
	"testing"
)

func TestModelClearProbEdgeCases(t *testing.T) {
	// Saturated birthday term: i·α/m ≥ 1 collapses to 0.
	if ModelRandomClearProb(40, 3, 100) != 0 {
		t.Fatal("saturated case should be 0")
	}
	// n = 1: every pair has its own source and destination switch slot;
	// never a collision.
	if got := ModelRandomClearProb(1, 1, 5); got != 1 {
		t.Fatalf("n=1 clear prob = %v", got)
	}
	// Monotone in m.
	prev := 0.0
	for _, m := range []int{2, 4, 8, 16, 64, 256} {
		p := ModelRandomClearProb(2, m, 5)
		if p < prev {
			t.Fatalf("clear prob not monotone at m=%d", m)
		}
		prev = p
	}
	// Large m limit approaches 1.
	if p := ModelRandomClearProb(2, 1<<20, 5); p < 0.9999 {
		t.Fatalf("large-m clear prob = %v", p)
	}
}

func TestModelMatchesMonteCarlo(t *testing.T) {
	// The independence approximation should track measurements within a
	// few percentage points on small instances.
	cases := []struct{ n, m, r int }{
		{2, 8, 4}, {2, 16, 4}, {2, 32, 4}, {3, 27, 3},
	}
	for _, c := range cases {
		model := ModelRandomClearProb(c.n, c.m, c.r)
		meas, err := MeasureRandomClearProb(c.n, c.m, c.r, 400, 7)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(model - meas); diff > 0.12 {
			t.Errorf("n=%d m=%d r=%d: model %.3f vs measured %.3f (diff %.3f)",
				c.n, c.m, c.r, model, meas, diff)
		}
	}
}

func TestModelExpectedCollisionsScaling(t *testing.T) {
	// Doubling m halves expected collisions; doubling r doubles them.
	base := ModelExpectedCollisions(3, 9, 10)
	if got := ModelExpectedCollisions(3, 18, 10); math.Abs(got-base/2) > 1e-12 {
		t.Fatal("m scaling wrong")
	}
	if got := ModelExpectedCollisions(3, 9, 20); math.Abs(got-2*base) > 1e-12 {
		t.Fatal("r scaling wrong")
	}
	if ModelExpectedCollisions(1, 9, 10) != 0 {
		t.Fatal("n=1 should have zero expected collisions")
	}
}

func TestMeasureRandomClearProbZeroTrials(t *testing.T) {
	got, err := MeasureRandomClearProb(2, 8, 3, 0, 1)
	if err != nil || got != 0 {
		t.Fatal("zero trials should return 0, nil")
	}
}
