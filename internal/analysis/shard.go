package analysis

import (
	"context"
	"fmt"

	"repro/internal/permutation"
	"repro/internal/routing"
)

// Shard sweeps: the worker half of the distributed exhaustive sweep. A
// coordinator plans a prefix partition (permutation.PrefixShards), posts
// one shard per request to worker nbserve nodes, and merges the returned
// SweepResults. Each shard sweep here uses the same engine selection and
// per-pattern accounting as one shard of sweepParallelDelta /
// sweepParallelOracle, so merging the per-shard results in lexicographic
// prefix order reproduces the single-process parallel sweep exactly.

// SweepShardCtx sweeps the single prefix shard of the n! enumeration
// identified by prefix: every full permutation whose sources
// 0..len(prefix)−1 send to prefix[0..len(prefix)−1]. Routers with
// cacheable link sets run the delta engine over Heap-swap enumeration
// (the order sweepParallelDelta uses); pattern-dependent routers fall
// back to the per-pattern Checker over lexicographic enumeration. A
// routing failure stops the shard and is reported in SweepResult.RouteErr
// (not as the returned error) so a coordinator can distinguish "shard
// finished, route error found" from transport failures; the coordinator
// must then re-derive the canonical error via SweepFirstRouteErr. fn, if
// non-nil, receives tested/blocked deltas on the cancellation-poll
// stride. An empty prefix sweeps the full enumeration.
func SweepShardCtx(ctx context.Context, r routing.Router, hosts int, prefix []int, fn ProgressFunc) (*SweepResult, error) {
	return sweepShard(ctx, r, hosts, prefix, false, fn)
}

// SweepShardFirstBlockedCtx is SweepShardCtx stopping at the shard's
// first blocked pattern (in the shard engine's enumeration order). The
// coordinator uses it to re-derive a canonical FirstBlocked witness for
// the lowest blocked top-level shard when the sweep was split deeper than
// one prefix level — sub-shard witnesses cannot be merged into the
// single-process answer, but a first-blocked scan of the whole top-level
// shard in its native order can.
func SweepShardFirstBlockedCtx(ctx context.Context, r routing.Router, hosts int, prefix []int, fn ProgressFunc) (*SweepResult, error) {
	return sweepShard(ctx, r, hosts, prefix, true, fn)
}

func sweepShard(ctx context.Context, r routing.Router, hosts int, prefix []int, firstOnly bool, fn ProgressFunc) (*SweepResult, error) {
	res := &SweepResult{}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if hosts <= 0 {
		return res, nil
	}
	for _, d := range prefix {
		if d < 0 || d >= hosts {
			return res, fmt.Errorf("analysis: shard prefix %v out of range for %d hosts", prefix, hosts)
		}
	}
	cancel := newSweepCanceller(ctx)
	prog := progressMeter{fn: fn}
	cancelled := false
	if table, err := routing.BuildRouteTable(r, hosts); err == nil {
		d := NewDeltaChecker(table)
		permutation.EnumerateFullPrefixSeqSwaps(hosts, prefix, func(p *permutation.Permutation, i, j int) bool {
			if cancel.cancelled() {
				cancelled = true
				return false
			}
			if i < 0 {
				d.Reset(p)
			} else {
				d.Swap(i, j)
			}
			res.Tested++
			if d.MaxLoad() > res.MaxLinkLoad {
				res.MaxLinkLoad = d.MaxLoad()
			}
			if d.HasContention() {
				res.Blocked++
				if res.FirstBlocked == nil {
					res.FirstBlocked = p.Clone()
				}
				if firstOnly {
					return false
				}
			}
			prog.step(res.Tested, res.Blocked)
			return true
		})
	} else {
		c := NewChecker(nil)
		permutation.EnumerateFullPrefixSeq(hosts, prefix, func(p *permutation.Permutation) bool {
			if cancel.cancelled() {
				cancelled = true
				return false
			}
			if err := c.AnalyzePattern(r, p); err != nil {
				res.RouteErr = fmt.Errorf("analysis: pattern %s: %w", p, err)
				return false
			}
			res.Tested++
			if c.MaxLoad() > res.MaxLinkLoad {
				res.MaxLinkLoad = c.MaxLoad()
			}
			if c.HasContention() {
				res.Blocked++
				if res.FirstBlocked == nil {
					res.FirstBlocked = p.Clone()
				}
				if firstOnly {
					return false
				}
			}
			prog.step(res.Tested, res.Blocked)
			return true
		})
	}
	prog.flush(res.Tested, res.Blocked)
	if cancelled {
		return res, ctx.Err()
	}
	return res, nil
}

// MergeShardSweeps folds per-shard sweep results, given in lexicographic
// prefix order, the same way the in-process parallel sweep merges its
// level-1 shards: counts are exact sums, MaxLinkLoad is the max, and
// FirstBlocked comes from the first (lowest-prefix) blocked shard in that
// shard's own enumeration order. RouteErr is taken from the first shard
// reporting one; callers must then discard the statistical fields and
// re-derive the canonical error with SweepFirstRouteErr, exactly as
// sweepParallelOracle does.
func MergeShardSweeps(results []SweepResult) *SweepResult {
	merged := mergeShardResults(results)
	for i := range results {
		if results[i].RouteErr != nil {
			merged.RouteErr = results[i].RouteErr
			break
		}
	}
	return merged
}
