package analysis

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// TestSweepRandomSteadyStateAllocs pins the pooled-trial property: a
// random sweep's allocation count is a per-call constant (rng, checker,
// the one reused pattern and its scratch), independent of the trial
// count, because each trial refills the pooled pattern in place and the
// checker's delta path reuses its link buffers.
func TestSweepRandomSteadyStateAllocs(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3) // m = n²: deterministic nonblocking, so no witness clone
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	hosts := f.Ports()
	measure := func(trials int) float64 {
		return testing.AllocsPerRun(10, func() {
			res := SweepRandom(r, hosts, trials, 7)
			if res.RouteErr != nil {
				t.Fatalf("SweepRandom(trials=%d): %v", trials, res.RouteErr)
			}
			if res.Blocked != 0 {
				t.Fatalf("SweepRandom(trials=%d): unexpectedly blocked (the fixture must stay nonblocking for this test)", trials)
			}
		})
	}
	small := measure(8)
	large := measure(64)
	if large > small {
		t.Fatalf("SweepRandom allocations scale with trials: %v allocs at 8 trials, %v at 64", small, large)
	}
}
