package analysis

import (
	"fmt"
	"slices"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Checker is the flat-array contention-accounting engine behind Check and
// every verification sweep. Link IDs are dense (the topology package
// assigns them consecutively from zero), so per-link state lives in slices
// indexed by LinkID instead of maps, and one Checker amortizes its scratch
// over an arbitrary number of patterns: analyzing a pattern does O(1)
// allocations once the scratch has warmed up, versus O(pairs) maps for the
// map-based accounting it replaced.
//
// A Checker is NOT safe for concurrent use; parallel sweeps give each
// worker its own. Results exposed by the accessors (ContendedLinks,
// PairsOn, LoadedLinks) alias internal scratch and are valid only until
// the next Analyze/AnalyzePattern call; Report materializes an independent
// map-based Report for callers that need to retain the analysis.
type Checker struct {
	// a is the last analyzed assignment (nil after AnalyzePattern's
	// assignment-free fast path).
	a *routing.Assignment
	// linkPairs[l] lists the indices of pairs whose path sets traverse
	// link l. Slices are truncated, never freed, between patterns.
	linkPairs [][]int
	// mark[l] == pairEpoch marks l as already counted for the pair being
	// added, deduplicating links shared by several paths of one pair
	// (§IV.B: a pair's path set loads each link once).
	mark      []uint64
	pairEpoch uint64
	// touched lists loaded links in first-touch order — the reset list.
	touched []topology.LinkID
	// contended lists links with load ≥ 2; sorted lazily.
	contended []topology.LinkID
	sorted    bool
	maxLoad   int
	pairs     int
	// linkBuf is scratch for PairLinkAppender routers.
	linkBuf []topology.LinkID
}

// NewChecker returns a Checker with scratch sized for net. A nil net is
// allowed; the scratch then grows on demand as link IDs are observed.
func NewChecker(net *topology.Network) *Checker {
	c := &Checker{}
	if net != nil {
		c.grow(net.NumLinks())
	}
	return c
}

func (c *Checker) grow(n int) {
	if n <= len(c.linkPairs) {
		return
	}
	lp := make([][]int, n)
	copy(lp, c.linkPairs)
	c.linkPairs = lp
	mk := make([]uint64, n)
	copy(mk, c.mark)
	c.mark = mk
}

// begin resets the per-pattern state, keeping allocated capacity.
func (c *Checker) begin(nLinks int) {
	c.grow(nLinks)
	for _, l := range c.touched {
		c.linkPairs[l] = c.linkPairs[l][:0]
	}
	c.touched = c.touched[:0]
	c.contended = c.contended[:0]
	c.sorted = false
	c.maxLoad = 0
	c.pairs = 0
	c.a = nil
}

// addLink records that pair i's path set crosses link l; repeated links
// within the current pair (same pairEpoch) are counted once.
func (c *Checker) addLink(i int, l topology.LinkID) {
	if int(l) >= len(c.linkPairs) {
		c.grow(int(l) + 1)
	}
	if c.mark[l] == c.pairEpoch {
		return
	}
	c.mark[l] = c.pairEpoch
	lp := c.linkPairs[l]
	if len(lp) == 0 {
		c.touched = append(c.touched, l)
	}
	c.linkPairs[l] = append(lp, i)
}

// finish derives the load summary after all pairs have been added.
func (c *Checker) finish(pairs int) {
	c.pairs = pairs
	for _, l := range c.touched {
		load := len(c.linkPairs[l])
		if load > c.maxLoad {
			c.maxLoad = load
		}
		if load >= 2 {
			c.contended = append(c.contended, l)
		}
	}
}

// Analyze computes the link loads of an assignment, exactly as Check does,
// into the Checker's reusable scratch.
func (c *Checker) Analyze(a *routing.Assignment) {
	c.begin(a.Net.NumLinks())
	for i, ps := range a.PathSets {
		c.pairEpoch++
		for _, p := range ps {
			for _, l := range p.Links {
				c.addLink(i, l)
			}
		}
	}
	c.finish(len(a.Pairs))
	c.a = a
}

// AnalyzePattern routes pattern p with r and analyzes its contention. When
// the router implements routing.PairLinkAppender the pattern is analyzed
// without materializing an Assignment — the sweep hot path — and the
// resulting loads are identical to Analyze(r.Route(p)): pairs are indexed
// in ascending source order, matching Assignment.Pairs. Routing errors are
// returned wrapped exactly as Route wraps them.
func (c *Checker) AnalyzePattern(r routing.Router, p *permutation.Permutation) error {
	la, ok := r.(routing.PairLinkAppender)
	if !ok {
		a, err := r.Route(p)
		if err != nil {
			return err
		}
		c.Analyze(a)
		return nil
	}
	c.begin(0)
	buf := c.linkBuf
	i := 0
	var err error
	for s, n := 0, p.N(); s < n; s++ {
		d := p.Dst(s)
		if d == permutation.Unused {
			continue
		}
		buf, err = la.AppendPairLinks(s, d, buf[:0])
		if err != nil {
			c.linkBuf = buf
			return fmt.Errorf("routing pair %d->%d: %w", s, d, err)
		}
		c.pairEpoch++
		for _, l := range buf {
			c.addLink(i, l)
		}
		i++
	}
	c.linkBuf = buf
	c.finish(i)
	return nil
}

// MaxLoad is the largest number of SD pairs sharing one link in the last
// analyzed pattern.
func (c *Checker) MaxLoad() int { return c.maxLoad }

// Pairs is the number of SD pairs of the last analyzed pattern.
func (c *Checker) Pairs() int { return c.pairs }

// HasContention reports whether any link carries two or more SD pairs.
func (c *Checker) HasContention() bool { return len(c.contended) > 0 }

// ContendedCount is the number of links carrying two or more SD pairs.
func (c *Checker) ContendedCount() int { return len(c.contended) }

// ContendedLinks returns the contended links in ascending ID order. The
// slice aliases Checker scratch: valid until the next analysis.
func (c *Checker) ContendedLinks() []topology.LinkID {
	if !c.sorted {
		slices.Sort(c.contended)
		c.sorted = true
	}
	return c.contended
}

// LoadedLinks returns every link carrying at least one pair, in first-touch
// order. The slice aliases Checker scratch: valid until the next analysis.
func (c *Checker) LoadedLinks() []topology.LinkID { return c.touched }

// PairsOn returns the indices of the pairs loading link l (empty when l is
// unloaded). The slice aliases Checker scratch: valid until the next
// analysis.
func (c *Checker) PairsOn(l topology.LinkID) []int {
	if int(l) >= len(c.linkPairs) {
		return nil
	}
	return c.linkPairs[l]
}

// Report materializes the analysis as an independent map-based Report,
// byte-identical to what Check produces for the same assignment. After the
// assignment-free AnalyzePattern fast path the Report's Assignment field is
// nil.
func (c *Checker) Report() *Report {
	rep := &Report{
		Assignment: c.a,
		LinkPairs:  make(map[topology.LinkID][]int, len(c.touched)),
		MaxLoad:    c.maxLoad,
	}
	for _, l := range c.touched {
		rep.LinkPairs[l] = append([]int(nil), c.linkPairs[l]...)
	}
	rep.Contended = append([]topology.LinkID(nil), c.ContendedLinks()...)
	return rep
}
