package analysis

import (
	"context"
	"math/rand"

	"repro/internal/permutation"
	"repro/internal/routing"
)

// WorstCaseSearch looks for permutations that maximize contention under a
// router by seeded random restarts plus pairwise-swap hill climbing: the
// adversarial counterpart to the average-case BlockingProbability. The
// objective is the number of contended links, with the maximum per-link
// load as tie-breaker. For deterministic routing the Lemma-1 analysis
// already yields exact two-pair witnesses; this search instead produces
// *heavily* blocked full permutations, quantifying how bad worst-case
// patterns get (the paper's motivation cites factor-of-several throughput
// losses, which need many contended links, not just one).
type WorstCaseSearch struct {
	// Router is the scheme under attack.
	Router routing.Router
	// Hosts is the endpoint count.
	Hosts int
	// Restarts and Steps bound the search (restarts × steps routings).
	Restarts, Steps int
	// Seed makes the search reproducible.
	Seed int64
}

// WorstCaseResult reports the most-contended pattern found.
type WorstCaseResult struct {
	// Permutation is the worst pattern found (a clone; caller-owned).
	Permutation *permutation.Permutation
	// ContendedLinks and MaxLoad are its contention metrics.
	ContendedLinks, MaxLoad int
	// Evaluated counts routed candidate patterns.
	Evaluated int
}

// Run executes the search. Routing errors abort with the error. Routers
// with cacheable per-pair link sets are scored by a DeltaChecker over a
// precomputed route table — a candidate swap is applied, scored, and (on
// rejection) backed out, all in O(path length) — with the same RNG
// consumption, acceptance decisions, and tie-breaking as the per-pattern
// oracle, so results are identical for a given seed. Pattern-dependent
// routers fall back to re-routing every candidate.
func (s *WorstCaseSearch) Run() (*WorstCaseResult, error) {
	return s.RunCtx(context.Background())
}

// RunCtx is Run with cooperative cancellation: the search polls ctx once
// per restart and on a stride within the step loop, outside the
// per-candidate scoring. On cancellation it returns the best pattern found
// so far together with ctx.Err(), so callers can keep the partial result or
// discard it. A run completing under a never-cancelled context is identical
// to Run's for the same seed.
func (s *WorstCaseSearch) RunCtx(ctx context.Context) (*WorstCaseResult, error) {
	if err := ctx.Err(); err != nil {
		return &WorstCaseResult{}, err
	}
	if table, err := routing.BuildRouteTable(s.Router, s.Hosts); err == nil {
		return s.runDelta(ctx, table)
	}
	return s.runOracle(ctx)
}

// runDelta is the incremental scorer: one table build up front, then
// O(path length) per candidate swap.
func (s *WorstCaseSearch) runDelta(ctx context.Context, table *routing.RouteTable) (*WorstCaseResult, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	best := &WorstCaseResult{}
	d := NewDeltaChecker(table)
	cancel := newSweepCanceller(ctx)
	for restart := 0; restart < s.Restarts; restart++ {
		if cancel.done != nil && ctx.Err() != nil {
			return best, ctx.Err()
		}
		cur := permutation.Random(rng, s.Hosts)
		d.Reset(cur)
		curC, curL := d.ContendedCount(), d.MaxLoad()
		best.Evaluated++
		s.consider(best, cur, curC, curL)
		for step := 0; step < s.Steps; step++ {
			if cancel.cancelled() {
				return best, ctx.Err()
			}
			// Swap the destinations of two random sources.
			i, j := rng.Intn(s.Hosts), rng.Intn(s.Hosts)
			if i == j {
				continue
			}
			d.Swap(i, j)
			cc, cl := d.ContendedCount(), d.MaxLoad()
			best.Evaluated++
			if cc > curC || (cc == curC && cl >= curL) {
				// Accept: mirror the swap into the permutation.
				di, dj := cur.Dst(i), cur.Dst(j)
				cur.Remove(i)
				cur.Remove(j)
				if err := cur.Add(i, dj); err != nil {
					return nil, err
				}
				if err := cur.Add(j, di); err != nil {
					return nil, err
				}
				curC, curL = cc, cl
				s.consider(best, cur, curC, curL)
			} else {
				// Reject: Swap is its own inverse.
				d.Swap(i, j)
			}
		}
	}
	return best, nil
}

// runOracle re-routes every candidate pattern from scratch — required for
// adaptive/global routers, whose paths depend on the whole pattern.
func (s *WorstCaseSearch) runOracle(ctx context.Context) (*WorstCaseResult, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	best := &WorstCaseResult{}
	c := NewChecker(nil)
	cancel := newSweepCanceller(ctx)
	score := func(p *permutation.Permutation) (int, int, error) {
		if err := c.AnalyzePattern(s.Router, p); err != nil {
			return 0, 0, err
		}
		return c.ContendedCount(), c.MaxLoad(), nil
	}
	for restart := 0; restart < s.Restarts; restart++ {
		if cancel.done != nil && ctx.Err() != nil {
			return best, ctx.Err()
		}
		cur := permutation.Random(rng, s.Hosts)
		curC, curL, err := score(cur)
		if err != nil {
			return nil, err
		}
		best.Evaluated++
		s.consider(best, cur, curC, curL)
		for step := 0; step < s.Steps; step++ {
			if cancel.cancelled() {
				return best, ctx.Err()
			}
			// Swap the destinations of two random sources.
			i, j := rng.Intn(s.Hosts), rng.Intn(s.Hosts)
			if i == j {
				continue
			}
			cand := cur.Clone()
			di, dj := cand.Dst(i), cand.Dst(j)
			cand.Remove(i)
			cand.Remove(j)
			if err := cand.Add(i, dj); err != nil {
				return nil, err
			}
			if err := cand.Add(j, di); err != nil {
				return nil, err
			}
			cc, cl, err := score(cand)
			if err != nil {
				return nil, err
			}
			best.Evaluated++
			if cc > curC || (cc == curC && cl >= curL) {
				cur, curC, curL = cand, cc, cl
				s.consider(best, cur, curC, curL)
			}
		}
	}
	return best, nil
}

func (s *WorstCaseSearch) consider(best *WorstCaseResult, p *permutation.Permutation, contended, load int) {
	if contended > best.ContendedLinks || (contended == best.ContendedLinks && load > best.MaxLoad) ||
		best.Permutation == nil {
		best.Permutation = p.Clone()
		best.ContendedLinks = contended
		best.MaxLoad = load
	}
}
