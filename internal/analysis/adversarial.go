package analysis

import (
	"math/rand"

	"repro/internal/permutation"
	"repro/internal/routing"
)

// WorstCaseSearch looks for permutations that maximize contention under a
// router by seeded random restarts plus pairwise-swap hill climbing: the
// adversarial counterpart to the average-case BlockingProbability. The
// objective is the number of contended links, with the maximum per-link
// load as tie-breaker. For deterministic routing the Lemma-1 analysis
// already yields exact two-pair witnesses; this search instead produces
// *heavily* blocked full permutations, quantifying how bad worst-case
// patterns get (the paper's motivation cites factor-of-several throughput
// losses, which need many contended links, not just one).
type WorstCaseSearch struct {
	// Router is the scheme under attack.
	Router routing.Router
	// Hosts is the endpoint count.
	Hosts int
	// Restarts and Steps bound the search (restarts × steps routings).
	Restarts, Steps int
	// Seed makes the search reproducible.
	Seed int64
}

// WorstCaseResult reports the most-contended pattern found.
type WorstCaseResult struct {
	// Permutation is the worst pattern found (a clone; caller-owned).
	Permutation *permutation.Permutation
	// ContendedLinks and MaxLoad are its contention metrics.
	ContendedLinks, MaxLoad int
	// Evaluated counts routed candidate patterns.
	Evaluated int
}

// Run executes the search. Routing errors abort with the error.
func (s *WorstCaseSearch) Run() (*WorstCaseResult, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	best := &WorstCaseResult{}
	c := NewChecker(nil)
	score := func(p *permutation.Permutation) (int, int, error) {
		if err := c.AnalyzePattern(s.Router, p); err != nil {
			return 0, 0, err
		}
		return c.ContendedCount(), c.MaxLoad(), nil
	}
	for restart := 0; restart < s.Restarts; restart++ {
		cur := permutation.Random(rng, s.Hosts)
		curC, curL, err := score(cur)
		if err != nil {
			return nil, err
		}
		best.Evaluated++
		s.consider(best, cur, curC, curL)
		for step := 0; step < s.Steps; step++ {
			// Swap the destinations of two random sources.
			i, j := rng.Intn(s.Hosts), rng.Intn(s.Hosts)
			if i == j {
				continue
			}
			cand := cur.Clone()
			di, dj := cand.Dst(i), cand.Dst(j)
			cand.Remove(i)
			cand.Remove(j)
			if err := cand.Add(i, dj); err != nil {
				return nil, err
			}
			if err := cand.Add(j, di); err != nil {
				return nil, err
			}
			cc, cl, err := score(cand)
			if err != nil {
				return nil, err
			}
			best.Evaluated++
			if cc > curC || (cc == curC && cl >= curL) {
				cur, curC, curL = cand, cc, cl
				s.consider(best, cur, curC, curL)
			}
		}
	}
	return best, nil
}

func (s *WorstCaseSearch) consider(best *WorstCaseResult, p *permutation.Permutation, contended, load int) {
	if contended > best.ContendedLinks || (contended == best.ContendedLinks && load > best.MaxLoad) ||
		best.Permutation == nil {
		best.Permutation = p.Clone()
		best.ContendedLinks = contended
		best.MaxLoad = load
	}
}
