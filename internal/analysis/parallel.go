package analysis

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// The parallel verification engine. Every router in this repository is
// safe for concurrent Route calls — routing state is per-call — so sweeps
// parallelize over patterns with a plain worker pool; each worker owns a
// flat-array Checker, so the hot loop allocates nothing per pattern.
// Results are merged deterministically: counts are exact, and FirstBlocked
// is the blocked pattern from the lowest-numbered shard (sequential
// order), so parallel and sequential sweeps agree on everything except
// wall-clock time. On a routing failure the shards' partial counters are
// racy (other shards stop mid-enumeration), so the merged result zeroes
// the statistical fields and re-derives the canonical sequential-order
// first routing error — parallel and sequential sweeps then agree on the
// reported error as well.

// SweepExhaustiveParallel is SweepExhaustive over `workers` goroutines,
// sharding the n! permutations into n batches by the first endpoint's
// destination. workers ≤ 0 selects GOMAXPROCS. Routers with cacheable
// per-pair link sets run the delta engine per shard: one CSR RouteTable is
// built up front and shared read-only by all workers, each worker owns a
// DeltaChecker, and each shard is enumerated by EnumerateFullPrefixSwaps —
// seeded from EnumerateFullPrefix's first permutation, then advanced one
// Heap swap at a time. Pattern-dependent routers use the per-pattern
// Checker path unchanged.
func SweepExhaustiveParallel(r routing.Router, hosts, workers int) *SweepResult {
	res, _ := sweepExhaustiveParallel(context.Background(), r, hosts, workers, nil)
	return res
}

// SweepExhaustiveParallelCtx is SweepExhaustiveParallel with cooperative
// cancellation: every worker polls ctx on a stride outside its per-pattern
// accounting, the shard feeder stops once ctx fires, and all workers are
// joined before the call returns — a cancelled sweep leaks no goroutines.
// On cancellation the merged partial counters depend on where each worker
// observed the signal, so treat them as progress indicators only; the
// returned error is ctx.Err(). A run completing under a never-cancelled
// context is identical to SweepExhaustiveParallel's.
func SweepExhaustiveParallelCtx(ctx context.Context, r routing.Router, hosts, workers int) (*SweepResult, error) {
	return sweepExhaustiveParallel(ctx, r, hosts, workers, nil)
}

func sweepExhaustiveParallel(ctx context.Context, r routing.Router, hosts, workers int, fn ProgressFunc) (*SweepResult, error) {
	if hosts <= 1 {
		return sweepExhaustiveDelta(ctx, r, hosts, false, fn)
	}
	if err := ctx.Err(); err != nil {
		return &SweepResult{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if table, err := routing.BuildRouteTable(r, hosts); err == nil {
		return sweepParallelDelta(ctx, table, hosts, workers, fn)
	}
	return sweepParallelOracle(ctx, r, hosts, workers, fn)
}

// sweepParallelDelta fans the n delta-swept shards over the worker pool.
// The table build already routed every pair successfully, so shards cannot
// hit routing errors; the only abort source is ctx.
func sweepParallelDelta(ctx context.Context, table *routing.RouteTable, hosts, workers int, fn ProgressFunc) (*SweepResult, error) {
	shards := make(chan int)
	results := make([]SweepResult, hosts)
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := NewDeltaChecker(table)
			cancel := newSweepCanceller(ctx)
			prog := progressMeter{fn: fn}
			tested, blocked := 0, 0 // worker-cumulative, for progress deltas
			cancelled := false
			for shard := range shards {
				if cancelled {
					continue // drain the channel so the feeder never blocks
				}
				sr := &results[shard]
				permutation.EnumerateFullPrefixSwaps(hosts, shard, func(p *permutation.Permutation, i, j int) bool {
					if cancel.cancelled() {
						cancelled = true
						return false
					}
					if i < 0 {
						d.Reset(p)
					} else {
						d.Swap(i, j)
					}
					sr.Tested++
					tested++
					if d.MaxLoad() > sr.MaxLinkLoad {
						sr.MaxLinkLoad = d.MaxLoad()
					}
					if d.HasContention() {
						sr.Blocked++
						blocked++
						if sr.FirstBlocked == nil {
							sr.FirstBlocked = p.Clone()
						}
					}
					prog.step(tested, blocked)
					return true
				})
			}
			prog.flush(tested, blocked)
		}()
	}
feed:
	for shard := 0; shard < hosts; shard++ {
		select {
		case shards <- shard:
		case <-done:
			break feed
		}
	}
	close(shards)
	wg.Wait()
	return mergeShardResults(results), ctx.Err()
}

// sweepParallelOracle is the per-pattern Checker engine for routers whose
// link sets cannot be cached (adaptive, global) or whose table build
// failed.
func sweepParallelOracle(ctx context.Context, r routing.Router, hosts, workers int, fn ProgressFunc) (*SweepResult, error) {
	shards := make(chan int)
	results := make([]SweepResult, hosts)
	done := ctx.Done()
	var wg sync.WaitGroup
	var abort atomic.Bool

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewChecker(nil)
			cancel := newSweepCanceller(ctx)
			prog := progressMeter{fn: fn}
			tested, blocked := 0, 0 // worker-cumulative, for progress deltas
			cancelled := false
			for shard := range shards {
				if cancelled {
					continue // drain the channel so the feeder never blocks
				}
				sr := &results[shard]
				permutation.EnumerateFullPrefix(hosts, shard, func(p *permutation.Permutation) bool {
					if cancel.cancelled() {
						cancelled = true
						return false
					}
					if abort.Load() {
						return false
					}
					if err := c.AnalyzePattern(r, p); err != nil {
						sr.RouteErr = fmt.Errorf("analysis: pattern %s: %w", p, err)
						abort.Store(true)
						return false
					}
					sr.Tested++
					tested++
					if c.MaxLoad() > sr.MaxLinkLoad {
						sr.MaxLinkLoad = c.MaxLoad()
					}
					if c.HasContention() {
						sr.Blocked++
						blocked++
						if sr.FirstBlocked == nil {
							sr.FirstBlocked = p.Clone()
						}
					}
					prog.step(tested, blocked)
					return true
				})
			}
			prog.flush(tested, blocked)
		}()
	}
feed:
	for shard := 0; shard < hosts; shard++ {
		select {
		case shards <- shard:
		case <-done:
			break feed
		}
	}
	close(shards)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return mergeShardResults(results), err
	}
	for i := range results {
		if results[i].RouteErr != nil {
			// Error path: which patterns the other shards managed to test
			// before observing the abort flag is a race, so the partial
			// counters are meaningless and, worse, nondeterministic.
			// Discard them and re-derive the sequential-order first
			// routing failure, which is deterministic because every
			// router's outcome depends only on the pattern.
			return SweepFirstRouteErr(r, hosts), nil
		}
	}
	return mergeShardResults(results), nil
}

// mergeShardResults folds per-shard sweep results deterministically:
// counts are exact sums, and FirstBlocked is taken from the
// lowest-numbered blocked shard (in that shard's enumeration order).
func mergeShardResults(results []SweepResult) *SweepResult {
	merged := &SweepResult{}
	for i := range results {
		sr := &results[i]
		merged.Tested += sr.Tested
		merged.Blocked += sr.Blocked
		if sr.MaxLinkLoad > merged.MaxLinkLoad {
			merged.MaxLinkLoad = sr.MaxLinkLoad
		}
		if merged.FirstBlocked == nil && sr.FirstBlocked != nil {
			merged.FirstBlocked = sr.FirstBlocked
		}
	}
	return merged
}

// SweepFirstRouteErr scans the full enumeration in sequential order and
// returns a SweepResult carrying only the canonical first routing error,
// with all statistical fields zeroed. Call it only after a sweep has
// already observed at least one routing failure, so the scan is
// guaranteed to terminate at the first failing pattern. Exported for the
// distributed coordinator, which must re-derive the same canonical error
// a single-process parallel sweep would report when any shard returns a
// routing failure.
func SweepFirstRouteErr(r routing.Router, hosts int) *SweepResult {
	res := &SweepResult{}
	c := NewChecker(nil)
	permutation.EnumerateFull(hosts, func(p *permutation.Permutation) bool {
		if err := c.AnalyzePattern(r, p); err != nil {
			res.RouteErr = fmt.Errorf("analysis: pattern %s: %w", p, err)
			return false
		}
		return true
	})
	return res
}

// CheckLemma1AllPairsParallel is CheckLemma1AllPairs with the all-pairs
// routing sharded over `workers` goroutines by source host. The merged
// result is identical to the sequential one: per-link pair lists are
// assembled in (source, destination) order, and the reported violation and
// routing error are the sequential-order first. workers ≤ 0 selects
// GOMAXPROCS.
func CheckLemma1AllPairsParallel(r routing.PairRouter, hosts, workers int) (*Lemma1Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > hosts {
		workers = hosts
	}
	if workers <= 1 || hosts <= 1 {
		return CheckLemma1AllPairs(r, hosts)
	}
	type entry struct {
		link topology.LinkID
		dst  int
	}
	type shardOut struct {
		entries []entry
		err     error
	}
	outs := make([]shardOut, hosts)
	srcs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range srcs {
				o := &outs[s]
				for d := 0; d < hosts; d++ {
					if s == d {
						continue
					}
					p, err := r.PathFor(s, d)
					if err != nil {
						o.err = fmt.Errorf("analysis: routing pair %d->%d: %w", s, d, err)
						break
					}
					for _, l := range p.Links {
						o.entries = append(o.entries, entry{l, d})
					}
				}
			}
		}()
	}
	for s := 0; s < hosts; s++ {
		srcs <- s
	}
	close(srcs)
	wg.Wait()

	res := &Lemma1Result{Nonblocking: true, Links: make(map[topology.LinkID]*LinkSDView)}
	for s := 0; s < hosts; s++ {
		if outs[s].err != nil {
			return nil, outs[s].err
		}
		for _, e := range outs[s].entries {
			v := res.Links[e.link]
			if v == nil {
				v = &LinkSDView{Link: e.link}
				res.Links[e.link] = v
			}
			v.Pairs = append(v.Pairs, permutation.Pair{Src: s, Dst: e.dst})
			insertDistinct(&v.Sources, s)
			insertDistinct(&v.Dests, e.dst)
		}
	}
	for _, v := range res.Links {
		if !v.OneSourceOrOneDest() {
			res.Nonblocking = false
			if res.Violation == nil || v.Link < res.Violation.Link {
				res.Violation = v
			}
		}
	}
	return res, nil
}

// BlockingProbabilityParallel is BlockingProbability over a worker pool:
// `trials` random permutations are split across workers with per-worker
// derived seeds (seed+worker). The estimate is statistically equivalent to
// the sequential version but not bit-identical (different RNG streams).
func BlockingProbabilityParallel(r routing.Router, hosts, trials, workers int, seed int64) (blockFrac, meanMaxLoad float64, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		return BlockingProbability(r, hosts, trials, seed)
	}
	type out struct {
		blocked, loadSum, trials int
		err                      error
	}
	outs := make([]out, workers)
	var wg sync.WaitGroup
	per := trials / workers
	extra := trials % workers
	for w := 0; w < workers; w++ {
		quota := per
		if w < extra {
			quota++
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			frac, load, err := BlockingProbability(r, hosts, quota, seed+int64(w)*7919)
			if err != nil {
				outs[w].err = err
				return
			}
			outs[w].trials = quota
			outs[w].blocked = int(frac*float64(quota) + 0.5)
			outs[w].loadSum = int(load*float64(quota) + 0.5)
		}(w, quota)
	}
	wg.Wait()
	blocked, loadSum, total := 0, 0, 0
	for _, o := range outs {
		if o.err != nil {
			return 0, 0, o.err
		}
		blocked += o.blocked
		loadSum += o.loadSum
		total += o.trials
	}
	if total == 0 {
		return 0, 0, nil
	}
	return float64(blocked) / float64(total), float64(loadSum) / float64(total), nil
}

// MaxRootPairsModesParallel is MaxRootPairsModes parallelized over the
// first switch's uplink mode (r branches). Exact and identical to the
// sequential search.
func MaxRootPairsModesParallel(n, r, workers int) int {
	if n < 1 || r < 1 {
		panic(fmt.Sprintf("analysis: invalid Lemma-2 instance n=%d r=%d", n, r))
	}
	if r == 1 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Branches: first switch's mode is modeShared or DST(t), t ∈ [1, r)
	// (t = 0 is the switch itself, excluded).
	branches := make(chan int)
	best := make([]int, r+1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			up := make([]int, r)
			for b := range branches {
				if b == 0 {
					up[0] = modeShared
				} else {
					up[0] = b // DST(b)
				}
				best[b] = lemma2SearchFrom(n, r, up, 1)
			}
		}()
	}
	for b := 0; b < r; b++ {
		branches <- b
	}
	close(branches)
	wg.Wait()
	max := 0
	for _, v := range best {
		if v > max {
			max = v
		}
	}
	return max
}

// lemma2SearchFrom explores uplink modes for switches v.. and returns the
// best total, with up[0..v) already fixed.
func lemma2SearchFrom(n, r int, up []int, v int) int {
	if v == r {
		total := 0
		for w := 0; w < r; w++ {
			bestW := 0
			for dw := -1; dw < r; dw++ {
				if dw == w {
					continue
				}
				s := 0
				for x := 0; x < r; x++ {
					if x != w {
						s += lemma2f(n, x, w, up[x], dw)
					}
				}
				if s > bestW {
					bestW = s
				}
			}
			total += bestW
		}
		return total
	}
	best := 0
	try := func() {
		if t := lemma2SearchFrom(n, r, up, v+1); t > best {
			best = t
		}
	}
	up[v] = modeShared
	try()
	for t := 0; t < r; t++ {
		if t == v {
			continue
		}
		up[v] = t
		try()
	}
	return best
}
