package analysis

import (
	"fmt"

	"repro/internal/permutation"
)

// Lemma 2 of the paper bounds how many SD pairs a single top-level switch
// of ftree(n+m, r) can carry when every link must satisfy the Lemma-1
// one-source-or-one-destination predicate: at most r(r−1) when r ≥ 2n+1
// and at most 2nr when r ≤ 2n+1. This file provides three independent
// evaluations of the true maximum on the Fig. 2 subgraph ftree(n+1, r):
//
//   - MaxRootPairsModes: exact search over canonical link-mode
//     assignments (every feasible pair set induces, per link, a
//     "single designated source" or "single designated destination"
//     mode; within-switch host relabeling makes host 0 the canonical
//     designee). Runs in r^r·r³ time — exact for r ≤ 7 in practice.
//   - MaxRootPairsNaive: branch-and-bound directly over SD-pair subsets,
//     feasible only for tiny (n, r); used to cross-validate the mode
//     search.
//   - RootSetWitness: constructive pair sets attaining the mode optimum,
//     validated by CheckRootSet.
//
// The experiments show the r ≥ 2n+1 branch of Lemma 2 is tight (attained
// by the Theorem-3 routing, r−1 pairs per link) while the 2nr branch is a
// safe over-estimate for r < 2n+1 — strengthening, not weakening,
// Theorem 1's negative result.

// upSrc and dnDst are the canonical "single designated endpoint" modes.
const (
	modeShared = -1 // up: single-source mode; down: single-destination mode
)

// lemma2f counts the SD pairs switch pair (v → w) contributes under
// canonical modes: uv is switch v's uplink mode (modeShared = all pairs
// from host 0 of v; t ≥ 0 = all pairs to host 0 of switch t) and dw is
// switch w's downlink mode (modeShared = all pairs to host 0 of w; u ≥ 0 =
// all pairs from host 0 of switch u).
func lemma2f(n, v, w, uv, dw int) int {
	switch {
	case uv == modeShared && dw == modeShared:
		return 1 // (host0(v) -> host0(w))
	case uv == modeShared && dw == v:
		return n // host0(v) -> every host of w
	case uv == w && dw == modeShared:
		return n // every host of v -> host0(w)
	case uv == w && dw == v:
		return 1 // (host0(v) -> host0(w)) under doubly-shared modes
	default:
		return 0
	}
}

// MaxRootPairsModes computes the exact maximum number of SD pairs (with
// source and destination in different switches) routable through the root
// of ftree(n+1, r) under the Lemma-1 link predicate, by exhausting
// canonical mode assignments. For each fixed vector of uplink modes the
// optimal downlink mode of every switch is independent, so the search
// costs r^r·r³.
func MaxRootPairsModes(n, r int) int {
	if n < 1 || r < 1 {
		panic(fmt.Sprintf("analysis: invalid Lemma-2 instance n=%d r=%d", n, r))
	}
	if r == 1 {
		return 0 // no cross-switch pairs exist
	}
	return lemma2SearchFrom(n, r, make([]int, r), 0)
}

// RootSetWitness returns an explicit SD-pair set of size
// MaxRootPairsModes(n, r) that satisfies the Lemma-1 predicate on every
// link of ftree(n+1, r), by re-running the mode search and materializing
// the optimum. Hosts are numbered v·n+k.
func RootSetWitness(n, r int) []permutation.Pair {
	if r <= 1 {
		return nil
	}
	up := make([]int, r)
	bestUp := make([]int, r)
	bestDn := make([]int, r)
	best := -1
	var rec func(v int)
	rec = func(v int) {
		if v == r {
			total := 0
			dn := make([]int, r)
			for w := 0; w < r; w++ {
				bw, bd := -1, modeShared
				for dw := -1; dw < r; dw++ {
					if dw == w {
						continue
					}
					s := 0
					for x := 0; x < r; x++ {
						if x != w {
							s += lemma2f(n, x, w, up[x], dw)
						}
					}
					if s > bw {
						bw, bd = s, dw
					}
				}
				dn[w] = bd
				total += bw
			}
			if total > best {
				best = total
				copy(bestUp, up)
				copy(bestDn, dn)
			}
			return
		}
		up[v] = modeShared
		rec(v + 1)
		for t := 0; t < r; t++ {
			if t == v {
				continue
			}
			up[v] = t
			rec(v + 1)
		}
	}
	rec(0)

	var pairs []permutation.Pair
	host0 := func(v int) int { return v * n }
	for v := 0; v < r; v++ {
		for w := 0; w < r; w++ {
			if v == w {
				continue
			}
			switch {
			case bestUp[v] == modeShared && bestDn[w] == modeShared:
				pairs = append(pairs, permutation.Pair{Src: host0(v), Dst: host0(w)})
			case bestUp[v] == modeShared && bestDn[w] == v:
				for k := 0; k < n; k++ {
					pairs = append(pairs, permutation.Pair{Src: host0(v), Dst: w*n + k})
				}
			case bestUp[v] == w && bestDn[w] == modeShared:
				for k := 0; k < n; k++ {
					pairs = append(pairs, permutation.Pair{Src: v*n + k, Dst: host0(w)})
				}
			case bestUp[v] == w && bestDn[w] == v:
				pairs = append(pairs, permutation.Pair{Src: host0(v), Dst: host0(w)})
			}
		}
	}
	return pairs
}

// CheckRootSet verifies that routing the given cross-switch SD pairs
// through the single root of ftree(n+1, r) satisfies the Lemma-1 predicate
// on every uplink (source switch → root) and downlink (root → destination
// switch). It returns an error naming the first violated link.
func CheckRootSet(n, r int, pairs []permutation.Pair) error {
	// Flat-array distinct-endpoint accounting: hosts are dense in
	// [0, n·r), so each of the 2r links tracks its distinct sources and
	// destinations with a boolean row plus a counter instead of maps.
	hosts := n * r
	type view struct {
		srcSeen, dstSeen []bool
		srcs, dsts       int
	}
	views := make([]view, 2*r) // uplink of switch v at [v], downlink at [r+v]
	marks := make([]bool, 4*r*hosts)
	for i := range views {
		views[i].srcSeen = marks[(2*i)*hosts : (2*i+1)*hosts]
		views[i].dstSeen = marks[(2*i+1)*hosts : (2*i+2)*hosts]
	}
	add := func(v *view, src, dst int) {
		if !v.srcSeen[src] {
			v.srcSeen[src] = true
			v.srcs++
		}
		if !v.dstSeen[dst] {
			v.dstSeen[dst] = true
			v.dsts++
		}
	}
	seen := make([]bool, hosts*hosts)
	for _, p := range pairs {
		if p.Src < 0 || p.Src >= hosts || p.Dst < 0 || p.Dst >= hosts {
			return fmt.Errorf("analysis: pair %v out of range", p)
		}
		sv, dv := p.Src/n, p.Dst/n
		if sv == dv {
			return fmt.Errorf("analysis: pair %v does not cross the root", p)
		}
		if seen[p.Src*hosts+p.Dst] {
			return fmt.Errorf("analysis: duplicate pair %v", p)
		}
		seen[p.Src*hosts+p.Dst] = true
		add(&views[sv], p.Src, p.Dst)
		add(&views[r+dv], p.Src, p.Dst)
	}
	for v := 0; v < r; v++ {
		if up := &views[v]; up.srcs > 1 && up.dsts > 1 {
			return fmt.Errorf("analysis: uplink of switch %d carries %d sources and %d destinations", v, up.srcs, up.dsts)
		}
		if dn := &views[r+v]; dn.srcs > 1 && dn.dsts > 1 {
			return fmt.Errorf("analysis: downlink of switch %d carries %d sources and %d destinations", v, dn.srcs, dn.dsts)
		}
	}
	return nil
}

// MaxRootPairsNaive computes the Lemma-2 maximum by branch-and-bound
// directly over subsets of the r(r−1)n² candidate SD pairs, with the
// Lemma-1 predicate enforced incrementally per link. Exponential — keep
// n·r small (n·n·r·(r−1) ≲ 40 candidates). Used to cross-validate
// MaxRootPairsModes.
func MaxRootPairsNaive(n, r int) int {
	type cand struct{ s, d, sv, dv int }
	var cands []cand
	for sv := 0; sv < r; sv++ {
		for dv := 0; dv < r; dv++ {
			if sv == dv {
				continue
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					cands = append(cands, cand{sv*n + i, dv*n + j, sv, dv})
				}
			}
		}
	}
	type lstate struct {
		srcs, dsts map[int]int // endpoint -> multiplicity
	}
	mk := func() lstate { return lstate{map[int]int{}, map[int]int{}} }
	ups := make([]lstate, r)
	downs := make([]lstate, r)
	for i := range ups {
		ups[i], downs[i] = mk(), mk()
	}
	ok := func(l lstate) bool { return len(l.srcs) <= 1 || len(l.dsts) <= 1 }
	add := func(l lstate, s, d int) { l.srcs[s]++; l.dsts[d]++ }
	del := func(l lstate, s, d int) {
		if l.srcs[s]--; l.srcs[s] == 0 {
			delete(l.srcs, s)
		}
		if l.dsts[d]--; l.dsts[d] == 0 {
			delete(l.dsts, d)
		}
	}
	best := 0
	// Include-first DFS so the incumbent rises quickly, with the trivial
	// cur+remaining bound for pruning.
	var rec2 func(i, cur int)
	rec2 = func(i, cur int) {
		if i == len(cands) {
			if cur > best {
				best = cur
			}
			return
		}
		if cur+len(cands)-i <= best {
			return
		}
		c := cands[i]
		add(ups[c.sv], c.s, c.d)
		add(downs[c.dv], c.s, c.d)
		if ok(ups[c.sv]) && ok(downs[c.dv]) {
			rec2(i+1, cur+1)
		}
		del(ups[c.sv], c.s, c.d)
		del(downs[c.dv], c.s, c.d)
		rec2(i+1, cur)
	}
	rec2(0, 0)
	return best
}
