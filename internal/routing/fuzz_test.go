package routing_test

import (
	"testing"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// FuzzEdgeColorBipartite checks the König coloring engine on arbitrary
// bipartite multigraphs: it must always succeed within the max degree and
// produce a proper coloring, or reject out-of-range edges.
func FuzzEdgeColorBipartite(f *testing.F) {
	f.Add(2, 2, []byte{0, 0, 1, 1, 0, 1, 1, 0})
	f.Add(1, 1, []byte{0, 0, 0, 0, 0, 0})
	f.Add(3, 2, []byte{})
	f.Fuzz(func(t *testing.T, nl, nr int, raw []byte) {
		if nl < 1 || nl > 8 || nr < 1 || nr > 8 || len(raw) > 64 {
			t.Skip()
		}
		edges := make([][2]int, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, [2]int{int(raw[i]) % nl, int(raw[i+1]) % nr})
		}
		colors, err := routing.EdgeColorBipartite(nl, nr, edges)
		if err != nil {
			t.Fatalf("coloring failed on in-range input: %v", err)
		}
		deg := 0
		dl := make([]int, nl)
		dr := make([]int, nr)
		for _, e := range edges {
			dl[e[0]]++
			dr[e[1]]++
			if dl[e[0]] > deg {
				deg = dl[e[0]]
			}
			if dr[e[1]] > deg {
				deg = dr[e[1]]
			}
		}
		usedL := map[[2]int]bool{}
		usedR := map[[2]int]bool{}
		for i, e := range edges {
			c := colors[i]
			if c < 0 || c >= deg {
				t.Fatalf("edge %d color %d out of [0,%d)", i, c, deg)
			}
			if usedL[[2]int{e[0], c}] || usedR[[2]int{e[1], c}] {
				t.Fatalf("improper coloring at edge %d", i)
			}
			usedL[[2]int{e[0], c}] = true
			usedR[[2]int{e[1], c}] = true
		}
	})
}

// FuzzBenesLooping checks the looping algorithm on arbitrary destination
// vectors: valid full permutations must route edge-disjointly.
func FuzzBenesLooping(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{3, 2, 1, 0})
	f.Add([]byte{1, 0, 3, 2, 5, 4, 7, 6})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Interpret raw as a permutation of size 4 or 8.
		n := len(raw)
		if n != 4 && n != 8 {
			t.Skip()
		}
		seen := map[int]bool{}
		dst := make([]int, n)
		for i, b := range raw {
			d := int(b) % n
			if seen[d] {
				t.Skip() // not a permutation
			}
			seen[d] = true
			dst[i] = d
		}
		k := 2
		if n == 8 {
			k = 3
		}
		b := topoBenes(k)
		r := routing.NewBenesLooping(b)
		p := permFromDsts(t, dst)
		a, err := r.Route(p)
		if err != nil {
			t.Fatalf("looping failed on %v: %v", dst, err)
		}
		// Edge-disjointness: no link appears in two paths.
		used := map[int32]bool{}
		for i := range a.Pairs {
			for _, l := range a.Path(i).Links {
				if used[int32(l)] {
					t.Fatalf("link %d reused for %v", l, dst)
				}
				used[int32(l)] = true
			}
		}
	})
}

// topoBenes and permFromDsts are tiny fuzz helpers.
func topoBenes(k int) *topology.Benes { return topology.NewBenes(k) }

func permFromDsts(t *testing.T, dst []int) *permutation.Permutation {
	t.Helper()
	p, err := permutation.FromDsts(dst)
	if err != nil {
		t.Skip()
	}
	return p
}

// FuzzRouteTableParity checks the CSR route-table cache against direct
// AppendPairLinks output on fuzz-chosen fat-tree shapes and routing
// schemes: every pair's span must be the deduplicated (first occurrence
// kept) direct link stream, and table metadata must stay consistent.
func FuzzRouteTableParity(f *testing.F) {
	f.Add(2, 4, 3, uint8(0))
	f.Add(2, 3, 3, uint8(1))
	f.Add(3, 9, 2, uint8(2))
	f.Add(2, 2, 2, uint8(3))
	f.Fuzz(func(t *testing.T, n, m, r int, scheme uint8) {
		if n < 1 || n > 3 || m < 1 || m > 9 || r < 1 || r > 4 {
			t.Skip()
		}
		ft := topology.NewFoldedClos(n, m, r)
		var router routing.PairLinkAppender
		switch scheme % 4 {
		case 0:
			router = routing.NewDestMod(ft)
		case 1:
			router = routing.NewPaperDeterministicFolded(ft)
		case 2:
			router = routing.NewFullSpray(ft)
		default:
			k := 1 + int(scheme/4)%m
			ks, err := routing.NewKSpray(ft, k)
			if err != nil {
				t.Skip()
			}
			router = ks
		}
		tab, err := routing.BuildRouteTable(router, ft.Ports())
		if err != nil {
			t.Fatalf("%s on ftree(%d+%d,%d): %v", router.Name(), n, m, r, err)
		}
		for s := 0; s < ft.Ports(); s++ {
			for d := 0; d < ft.Ports(); d++ {
				raw, err := router.AppendPairLinks(s, d, nil)
				if err != nil {
					t.Fatalf("AppendPairLinks(%d,%d): %v", s, d, err)
				}
				seen := map[topology.LinkID]bool{}
				want := []topology.LinkID{}
				for _, l := range raw {
					if !seen[l] {
						seen[l] = true
						want = append(want, l)
					}
				}
				got := tab.PairLinks(s, d)
				if len(got) != len(want) {
					t.Fatalf("pair %d->%d: span %v, want %v", s, d, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("pair %d->%d: span %v, want %v", s, d, got, want)
					}
					if int(got[i]) >= tab.NumLinks() {
						t.Fatalf("pair %d->%d: link %d >= NumLinks %d", s, d, got[i], tab.NumLinks())
					}
				}
			}
		}
	})
}
