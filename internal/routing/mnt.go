package routing

import (
	"fmt"

	"repro/internal/permutation"
	"repro/internal/topology"
)

// MNTDestMod is static destination-keyed up*/down* routing for the m-port
// n-tree FT(m, n): at every up hop the freed digit is taken from the
// destination address (the d-mod-k family used by InfiniBand fat-tree
// subnet managers [12]). Deterministic and pattern-oblivious — the routing
// whose blocking behaviour on rearrangeably-nonblocking fat-trees
// motivates the paper ([5], [7]).
type MNTDestMod struct {
	T *topology.MPortNTree
}

// NewMNTDestMod builds the router.
func NewMNTDestMod(t *topology.MPortNTree) *MNTDestMod { return &MNTDestMod{T: t} }

// Name returns "mnt-dest-mod".
func (r *MNTDestMod) Name() string { return "mnt-dest-mod" }

// PathFor routes (src, dst) with up-hop choices derived from the
// destination host index: choice at up hop l is digit l of dst in base k.
func (r *MNTDestMod) PathFor(src, dst int) (topology.Path, error) {
	if src == dst {
		return topology.Path{Nodes: []topology.NodeID{topology.NodeID(src)}}, nil
	}
	s, d := topology.NodeID(src), topology.NodeID(dst)
	hops := r.T.NumUpHops(s, d)
	choices := make([]int, hops)
	x := dst
	for l := 0; l < hops; l++ {
		choices[l] = x % r.T.K
		x /= r.T.K
	}
	return r.T.UpDownPath(s, d, choices)
}

// Route assigns a path to every SD pair of the pattern.
func (r *MNTDestMod) Route(p *permutation.Permutation) (*Assignment, error) {
	return routePairwise(r.T.Net, p, func(s, d int) ([]topology.Path, error) {
		path, err := r.PathFor(s, d)
		if err != nil {
			return nil, err
		}
		return []topology.Path{path}, nil
	})
}

// MNTRandomFixed is static routing with a uniformly random but fixed
// up-path per SD pair — randomized oblivious routing [6] frozen into a
// deterministic assignment, reproducible per seed.
type MNTRandomFixed struct {
	T    *topology.MPortNTree
	seed int64
}

// NewMNTRandomFixed builds the router.
func NewMNTRandomFixed(t *topology.MPortNTree, seed int64) *MNTRandomFixed {
	return &MNTRandomFixed{T: t, seed: seed}
}

// Name returns "mnt-random-fixed".
func (r *MNTRandomFixed) Name() string { return "mnt-random-fixed" }

// PathFor routes (src, dst) over the up-path whose digit choices are drawn
// from a per-pair seeded generator.
func (r *MNTRandomFixed) PathFor(src, dst int) (topology.Path, error) {
	if src == dst {
		return topology.Path{Nodes: []topology.NodeID{topology.NodeID(src)}}, nil
	}
	s, d := topology.NodeID(src), topology.NodeID(dst)
	hops := r.T.NumUpHops(s, d)
	rng := pairRNG(r.seed, src, dst)
	choices := make([]int, hops)
	for l := range choices {
		choices[l] = rng.Intn(r.T.K)
	}
	putPairRNG(rng)
	return r.T.UpDownPath(s, d, choices)
}

// Route assigns a path to every SD pair of the pattern.
func (r *MNTRandomFixed) Route(p *permutation.Permutation) (*Assignment, error) {
	return routePairwise(r.T.Net, p, func(s, d int) ([]topology.Path, error) {
		path, err := r.PathFor(s, d)
		if err != nil {
			return nil, err
		}
		return []topology.Path{path}, nil
	})
}

// MNTSpray is traffic-oblivious multipath on FT(m, n): each pair may use
// Width sampled up-paths (all distinct digit choices when Width covers the
// full diversity). Packets spray over the set per-packet in the simulator.
type MNTSpray struct {
	T *topology.MPortNTree
	// Width caps the number of paths per pair.
	Width int
	seed  int64
}

// NewMNTSpray builds the router; width ≥ 1.
func NewMNTSpray(t *topology.MPortNTree, width int, seed int64) (*MNTSpray, error) {
	if width < 1 {
		return nil, fmt.Errorf("routing: spray width %d < 1", width)
	}
	return &MNTSpray{T: t, Width: width, seed: seed}, nil
}

// Name returns "mnt-spray-<width>".
func (r *MNTSpray) Name() string { return fmt.Sprintf("mnt-spray-%d", r.Width) }

// PathsFor returns the pair's path set: every distinct up-digit choice
// when the diversity k^hops ≤ Width, otherwise Width distinct sampled
// choices.
func (r *MNTSpray) PathsFor(src, dst int) ([]topology.Path, error) {
	if src == dst {
		return selfPath(topology.NodeID(src)), nil
	}
	s, d := topology.NodeID(src), topology.NodeID(dst)
	hops := r.T.NumUpHops(s, d)
	k := r.T.K
	total := 1
	for i := 0; i < hops; i++ {
		total *= k
	}
	var paths []topology.Path
	if total <= r.Width {
		choices := make([]int, hops)
		for code := 0; code < total; code++ {
			x := code
			for l := 0; l < hops; l++ {
				choices[l] = x % k
				x /= k
			}
			p, err := r.T.UpDownPath(s, d, choices)
			if err != nil {
				return nil, err
			}
			paths = append(paths, p)
		}
		return paths, nil
	}
	rng := pairRNG(r.seed, src, dst)
	defer putPairRNG(rng)
	seen := map[int]bool{}
	for len(paths) < r.Width {
		code := rng.Intn(total)
		if seen[code] {
			continue
		}
		seen[code] = true
		choices := make([]int, hops)
		x := code
		for l := 0; l < hops; l++ {
			choices[l] = x % k
			x /= k
		}
		p, err := r.T.UpDownPath(s, d, choices)
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// Route assigns the full path set to every SD pair.
func (r *MNTSpray) Route(p *permutation.Permutation) (*Assignment, error) {
	return routePairwise(r.T.Net, p, r.PathsFor)
}

// ThreeLevelPaper wraps the recursive Theorem-3 routing of the three-level
// nonblocking construction (Discussion §IV.A): the outer level picks
// virtual top network (i, j), the inner level re-applies the same rule to
// the virtual switch's port numbers.
type ThreeLevelPaper struct {
	T *topology.ThreeLevelFtree
}

// NewThreeLevelPaper builds the router.
func NewThreeLevelPaper(t *topology.ThreeLevelFtree) *ThreeLevelPaper {
	return &ThreeLevelPaper{T: t}
}

// Name returns "paper-three-level".
func (r *ThreeLevelPaper) Name() string { return "paper-three-level" }

// PathFor routes one SD pair through the recursive construction.
func (r *ThreeLevelPaper) PathFor(src, dst int) (topology.Path, error) {
	if src < 0 || src >= r.T.Ports() || dst < 0 || dst >= r.T.Ports() {
		return topology.Path{}, fmt.Errorf("host index out of range: %d or %d", src, dst)
	}
	if src == dst {
		return topology.Path{Nodes: []topology.NodeID{topology.NodeID(src)}}, nil
	}
	return r.T.Route(topology.NodeID(src), topology.NodeID(dst)), nil
}

// Route assigns a path to every SD pair of the pattern.
func (r *ThreeLevelPaper) Route(p *permutation.Permutation) (*Assignment, error) {
	return routePairwise(r.T.Net, p, func(s, d int) ([]topology.Path, error) {
		path, err := r.PathFor(s, d)
		if err != nil {
			return nil, err
		}
		return []topology.Path{path}, nil
	})
}

// MultiLevelPaper wraps the recursive Theorem-3 routing of the generic
// L-level nonblocking construction (topology.MultiFtree): at every level
// the virtual top network (i, j) is selected from the port numbers' local
// digits, recursively down to physical switches.
type MultiLevelPaper struct {
	T *topology.MultiFtree
}

// NewMultiLevelPaper builds the router.
func NewMultiLevelPaper(t *topology.MultiFtree) *MultiLevelPaper {
	return &MultiLevelPaper{T: t}
}

// Name returns "paper-multi-level".
func (r *MultiLevelPaper) Name() string { return "paper-multi-level" }

// PathFor routes one SD pair through the recursive construction.
func (r *MultiLevelPaper) PathFor(src, dst int) (topology.Path, error) {
	if src < 0 || src >= r.T.Ports() || dst < 0 || dst >= r.T.Ports() {
		return topology.Path{}, fmt.Errorf("host index out of range: %d or %d", src, dst)
	}
	if src == dst {
		return topology.Path{Nodes: []topology.NodeID{topology.NodeID(src)}}, nil
	}
	return r.T.Route(topology.NodeID(src), topology.NodeID(dst)), nil
}

// Route assigns a path to every SD pair of the pattern.
func (r *MultiLevelPaper) Route(p *permutation.Permutation) (*Assignment, error) {
	return routePairwise(r.T.Net, p, func(s, d int) ([]topology.Path, error) {
		path, err := r.PathFor(s, d)
		if err != nil {
			return nil, err
		}
		return []topology.Path{path}, nil
	})
}

// CrossbarRouter routes on the reference crossbar: every pair crosses the
// single switch and never contends with any other pair of a permutation.
type CrossbarRouter struct {
	X *topology.Crossbar
}

// NewCrossbarRouter builds the router.
func NewCrossbarRouter(x *topology.Crossbar) *CrossbarRouter { return &CrossbarRouter{X: x} }

// Name returns "crossbar".
func (r *CrossbarRouter) Name() string { return "crossbar" }

// PathFor routes one pair through the crossbar.
func (r *CrossbarRouter) PathFor(src, dst int) (topology.Path, error) {
	if src < 0 || src >= r.X.N || dst < 0 || dst >= r.X.N {
		return topology.Path{}, fmt.Errorf("host index out of range: %d or %d", src, dst)
	}
	if src == dst {
		return topology.Path{Nodes: []topology.NodeID{topology.NodeID(src)}}, nil
	}
	return r.X.Route(src, dst), nil
}

// Route assigns a path to every SD pair of the pattern.
func (r *CrossbarRouter) Route(p *permutation.Permutation) (*Assignment, error) {
	return routePairwise(r.X.Net, p, func(s, d int) ([]topology.Path, error) {
		path, err := r.PathFor(s, d)
		if err != nil {
			return nil, err
		}
		return []topology.Path{path}, nil
	})
}
