package routing_test

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestAdaptiveRouteAvoidingStaysNonblocking(t *testing.T) {
	// ftree(2+14, 4): the simple bound needs 1 configuration of 6
	// switches; fail 8 of the 14 and the adaptive router must still route
	// every pattern clean through the 6 healthy ones.
	f := topology.NewFoldedClos(2, 14, 4)
	r, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	failed := map[int]bool{0: true, 2: true, 3: true, 5: true, 7: true, 8: true, 11: true, 13: true}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		p := permutation.Random(rng, f.Ports())
		a, err := r.RouteAvoiding(p, failed)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		if analysis.Check(a).HasContention() {
			t.Fatalf("contention with failures on %s", p)
		}
		for _, ps := range a.PathSets {
			for _, path := range ps {
				for _, node := range path.Nodes {
					nd := f.Net.Node(node)
					if nd.Kind == topology.Switch && nd.Level == 2 && failed[nd.Index] {
						t.Fatalf("path uses failed top switch %d", nd.Index)
					}
				}
			}
		}
	}
}

func TestAdaptiveRouteAvoidingExhaustsHealthy(t *testing.T) {
	f := topology.NewFoldedClos(2, 6, 4)
	r, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	// Only 5 healthy switches < one configuration (6): must error on a
	// pattern with cross-switch pairs.
	failed := map[int]bool{1: true}
	if _, err := r.RouteAvoiding(permutation.SwitchShift(2, 4, 1), failed); err == nil {
		t.Fatal("expected healthy-exhausted error")
	}
	// A purely local pattern still routes.
	local, err := permutation.FromPairs(f.Ports(), []permutation.Pair{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RouteAvoiding(local, failed); err != nil {
		t.Fatal(err)
	}
}

func TestSparedDeterministicSurvivesFailures(t *testing.T) {
	// m = n² + 3 spares; fail 3 class switches: still exactly nonblocking.
	n, r := 3, 7
	f := topology.NewFoldedClos(n, n*n+3, r)
	failed := map[int]bool{0: true, 4: true, 8: true}
	sp, err := routing.NewPaperDeterministicSpared(f, failed)
	if err != nil {
		t.Fatal(err)
	}
	if sp.UsesFailedSwitch() {
		t.Fatal("remap landed on a failed switch")
	}
	res, err := analysis.CheckLemma1AllPairs(sp, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Nonblocking {
		t.Fatalf("spared scheme not nonblocking: %+v", res.Violation)
	}
}

func TestSparedDeterministicFailedSpare(t *testing.T) {
	// A failed spare must be skipped when remapping.
	n := 2
	f := topology.NewFoldedClos(n, n*n+2, 5)
	failed := map[int]bool{1: true, 4: true} // class 1 and the first spare
	sp, err := routing.NewPaperDeterministicSpared(f, failed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.CheckLemma1AllPairs(sp, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Nonblocking {
		t.Fatal("failed spare mishandled")
	}
}

func TestSparedDeterministicExhaustsSpares(t *testing.T) {
	n := 2
	f := topology.NewFoldedClos(n, n*n+1, 5)
	failed := map[int]bool{0: true, 1: true} // two failures, one spare
	if _, err := routing.NewPaperDeterministicSpared(f, failed); err == nil {
		t.Fatal("expected spare-exhausted error")
	}
	small := topology.NewFoldedClos(2, 3, 5)
	if _, err := routing.NewPaperDeterministicSpared(small, nil); err == nil {
		t.Fatal("m < n² accepted")
	}
}

func TestSparedDeterministicMechanics(t *testing.T) {
	f := topology.NewFoldedClos(2, 6, 4)
	sp, err := routing.NewPaperDeterministicSpared(f, map[int]bool{2: true})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name() != "paper-deterministic-spared" {
		t.Fatal("name")
	}
	if _, err := sp.PathFor(-1, 0); err == nil {
		t.Fatal("range check missing")
	}
	p, err := sp.PathFor(3, 3)
	if err != nil || p.Len() != 0 {
		t.Fatal("self pair wrong")
	}
	p, err = sp.PathFor(0, 1)
	if err != nil || p.Len() != 2 {
		t.Fatal("local pair wrong")
	}
	a, err := sp.Route(permutation.SwitchShift(2, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if analysis.Check(a).HasContention() {
		t.Fatal("spared route contends")
	}
}

func TestNaiveRemapViolatesLemma1(t *testing.T) {
	// Folding a failed class onto a neighbour class's switch merges two
	// classes and must produce a Lemma-1 violation and a real blocking
	// permutation.
	n := 2
	f := topology.NewFoldedClos(n, n*n, 5)
	nr, err := routing.NewPaperDeterministicNaiveRemap(f, map[int]bool{1: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.CheckLemma1AllPairs(nr, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	if res.Nonblocking {
		t.Fatal("naive remap reported nonblocking")
	}
	w, err := analysis.BlockingWitness(res, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	a, err := nr.Route(w)
	if err != nil {
		t.Fatal(err)
	}
	if !analysis.Check(a).HasContention() {
		t.Fatal("witness does not block")
	}
	// No failures: identical to the exact scheme, still nonblocking.
	clean, err := routing.NewPaperDeterministicNaiveRemap(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err = analysis.CheckLemma1AllPairs(clean, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Nonblocking {
		t.Fatal("no-failure remap should be nonblocking")
	}
	// All class switches failed: constructor refuses.
	if _, err := routing.NewPaperDeterministicNaiveRemap(f, map[int]bool{0: true, 1: true, 2: true, 3: true}); err == nil {
		t.Fatal("total failure accepted")
	}
	small := topology.NewFoldedClos(2, 3, 5)
	if _, err := routing.NewPaperDeterministicNaiveRemap(small, nil); err == nil {
		t.Fatal("m < n² accepted")
	}
}
