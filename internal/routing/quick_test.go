package routing_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Property: the Theorem-3 router's path for any pair has the canonical
// structure — length 0 (self), 2 (intra-switch) or 4 (via top switch
// (i, j) = (s mod n)·n + d mod n) — and is always valid in the graph.
func TestQuickPaperRouterPathStructure(t *testing.T) {
	f := topology.NewFoldedClos(3, 9, 7)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b uint16) bool {
		s := int(a) % f.Ports()
		d := int(b) % f.Ports()
		p, err := r.PathFor(s, d)
		if err != nil {
			return false
		}
		switch {
		case s == d:
			return p.Len() == 0
		case s/f.N == d/f.N:
			return p.Len() == 2 && p.Valid(f.Net)
		default:
			if p.Len() != 4 || !p.Valid(f.Net) {
				return false
			}
			wantTop := f.Top((s%f.N)*f.N + d%f.N)
			return p.Nodes[2] == wantTop
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: NONBLOCKINGADAPTIVE's partition keys always lie in [0, n), and
// two destinations in one switch never share the full key vector (the
// Class-DIFF precondition).
func TestQuickAdaptivePartitionKeys(t *testing.T) {
	f := topology.NewFoldedClos(4, 48, 16)
	ad, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b uint16) bool {
		d1 := int(a) % f.Ports()
		d2 := int(b) % f.Ports()
		for q := 0; q <= ad.C; q++ {
			k1 := ad.PartitionKey(q, d1)
			if k1 < 0 || k1 >= f.N {
				return false
			}
		}
		// Distinct destinations in one switch differ in at least one key.
		if d1 != d2 && d1/f.N == d2/f.N {
			same := true
			for q := 0; q <= ad.C; q++ {
				if ad.PartitionKey(q, d1) != ad.PartitionKey(q, d2) {
					same = false
					break
				}
			}
			if same {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any random pattern, the adaptive plan assigns every
// cross-switch pair a top switch consistent with its partition key: the
// in-partition offset equals the key of the destination.
func TestQuickAdaptivePlanConsistency(t *testing.T) {
	f := topology.NewFoldedClos(3, 36, 9)
	ad, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := permutation.RandomPartial(rng, f.Ports(), 0.7)
		tops, pairs, confs, err := ad.Plan(p)
		if err != nil {
			return false
		}
		if confs < 0 {
			return false
		}
		block := (ad.C + 1) * f.N
		for i, pr := range pairs {
			if tops[i] < 0 {
				continue
			}
			within := tops[i] % block
			q := within / f.N
			key := within % f.N
			if ad.PartitionKey(q, pr.Dst) != key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the global edge-coloring router never uses more colors than
// the pattern's switch-level degree, for any partial pattern.
func TestQuickGlobalColorsWithinDegree(t *testing.T) {
	f := topology.NewFoldedClos(3, 3, 5)
	g := routing.NewGlobalRearrangeable(f)
	prop := func(seed int64, dens uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := permutation.RandomPartial(rng, f.Ports(), float64(dens%101)/100)
		a, err := g.Route(p)
		if err != nil {
			return false // with m = n this should never fail
		}
		return !analysis.Check(a).HasContention()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestTableILargestExact verifies the biggest Table-I network exactly —
// ftree(6+36, 42), 252 hosts, 63,252 routed SD pairs — with both the
// sequential and parallel engines agreeing.
func TestTableILargestExact(t *testing.T) {
	f := topology.NewFoldedClos(6, 36, 42)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.CheckLemma1AllPairs(r, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Nonblocking {
		t.Fatal("Table-I flagship network not nonblocking")
	}
	// Every trunk link of a complete all-pairs routing carries exactly
	// r−1 = 41 SD pairs (Fig. 3 accounting at full scale).
	for v := 0; v < f.R; v++ {
		for tt := 0; tt < f.M; tt++ {
			view := res.Links[f.UpLink(v, tt)]
			if view == nil || len(view.Pairs) != f.R-1 {
				t.Fatalf("uplink (%d,%d) carries %v pairs, want %d", v, tt, view, f.R-1)
			}
		}
	}
}
