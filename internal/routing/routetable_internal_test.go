package routing

import (
	"errors"
	"math"
	"testing"

	"repro/internal/topology"
)

// TestBuildRouteTableOffsetOverflowGuard exercises the int32 CSR overflow
// guard by lowering the entry cap instead of materializing a >2 GiB table:
// the moment the flat link array outgrows what the offsets can address,
// the build must fail with ErrRouteTableTooLarge (which sweeps translate
// into the per-pattern oracle fallback) rather than wrapping the stored
// offset negative.
func TestBuildRouteTableOffsetOverflowGuard(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	r, err := NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	full, err := BuildRouteTable(r, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	if full.Entries() < 2 {
		t.Fatalf("network too small to trip the guard: %d entries", full.Entries())
	}

	defer func() { maxRouteTableEntries = math.MaxInt32 }()
	maxRouteTableEntries = full.Entries() - 1
	_, err = BuildRouteTable(r, f.Ports())
	if !errors.Is(err, ErrRouteTableTooLarge) {
		t.Fatalf("err = %v, want ErrRouteTableTooLarge", err)
	}

	// At exactly the cap the table still builds: the guard rejects only
	// genuinely unaddressable sizes.
	maxRouteTableEntries = full.Entries()
	if _, err := BuildRouteTable(r, f.Ports()); err != nil {
		t.Fatalf("build at the exact cap failed: %v", err)
	}
}

// TestLinkDedupEpochWrap pins the wrap behaviour of the dedup scratch: a
// generation counter that wraps to zero would make every never-marked
// entry (seen[l] == 0) look already-seen, silently dropping links from
// spans. The wrap must clear the scratch and restart at epoch 1.
func TestLinkDedupEpochWrap(t *testing.T) {
	d := linkDedup{epoch: ^uint32(0) - 1}
	d.nextPair() // epoch = MaxUint32
	if !d.firstSight(0) || !d.firstSight(1) {
		t.Fatal("fresh links not first sights before the wrap")
	}
	if d.firstSight(0) {
		t.Fatal("duplicate link reported as first sight")
	}
	d.nextPair() // wraps: must clear and restart at 1
	if d.epoch != 1 {
		t.Fatalf("post-wrap epoch = %d, want 1", d.epoch)
	}
	for l := topology.LinkID(0); l < 2; l++ {
		if d.seen[l] != 0 {
			t.Fatalf("seen[%d] = %d not cleared on wrap", l, d.seen[l])
		}
	}
	if !d.firstSight(0) {
		t.Fatal("post-wrap pair aliased a stale entry: link 0 not a first sight")
	}
	if d.firstSight(0) {
		t.Fatal("post-wrap duplicate reported as first sight")
	}
}

// TestBuildRouteTableEpochWrapParity forces the 2^32 wrap inside a small
// build (via the start-epoch test hook) and requires the resulting table
// to be identical to one built with a fresh counter — the regression that
// previously aliased stale marks and emptied every post-wrap span.
func TestBuildRouteTableEpochWrapParity(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	r, err := NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BuildRouteTable(r, f.Ports())
	if err != nil {
		t.Fatal(err)
	}

	defer func() { routeTableStartEpoch = 0 }()
	// The wrap lands a few pairs into the hosts² pair scan.
	routeTableStartEpoch = ^uint32(0) - 3
	got, err := BuildRouteTable(r, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries() != want.Entries() || got.NumLinks() != want.NumLinks() {
		t.Fatalf("wrapped build: %d entries / %d links, want %d / %d",
			got.Entries(), got.NumLinks(), want.Entries(), want.NumLinks())
	}
	for s := 0; s < f.Ports(); s++ {
		for d := 0; d < f.Ports(); d++ {
			a, b := got.PairLinks(s, d), want.PairLinks(s, d)
			if len(a) != len(b) {
				t.Fatalf("pair %d->%d: wrapped span %v, want %v", s, d, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("pair %d->%d: wrapped span %v, want %v", s, d, a, b)
				}
			}
		}
	}
}
