package routing

import (
	"fmt"
	"math/rand"

	"repro/internal/permutation"
	"repro/internal/topology"
)

// FtreeSinglePath is a single-path deterministic router for ftree(n+m, r):
// the top-level switch of each cross-switch SD pair is TopChoice(src, dst),
// a pure function of the endpoints. All concrete deterministic schemes
// (the paper's Theorem-3 scheme, destination-mod, source-mod, random-fixed)
// are instances with different TopChoice functions.
type FtreeSinglePath struct {
	F *topology.FoldedClos
	// TopChoice maps a cross-switch SD pair (host indices) to the index
	// of the top-level switch carrying it, in [0, m).
	TopChoice func(src, dst int) int
	// RouterName is reported by Name.
	RouterName string
	// PairCheck, when non-nil, can reject an SD pair before routing —
	// fault-aware schemes use it to refuse pairs with a detached
	// endpoint. It runs after the range check and before self-pair
	// handling.
	PairCheck func(src, dst int) error
}

// Name returns the scheme name.
func (r *FtreeSinglePath) Name() string { return r.RouterName }

// PathFor routes one SD pair: intra-switch pairs go through their bottom
// switch only; cross-switch pairs go through top switch TopChoice(s, d).
func (r *FtreeSinglePath) PathFor(src, dst int) (topology.Path, error) {
	n := r.F.N
	if src < 0 || src >= r.F.Ports() || dst < 0 || dst >= r.F.Ports() {
		return topology.Path{}, fmt.Errorf("host index out of range: %d or %d", src, dst)
	}
	if r.PairCheck != nil {
		if err := r.PairCheck(src, dst); err != nil {
			return topology.Path{}, err
		}
	}
	if src == dst {
		return topology.Path{Nodes: []topology.NodeID{topology.NodeID(src)}}, nil
	}
	sv, dv := src/n, dst/n
	if sv == dv {
		return r.F.RouteVia(topology.NodeID(src), topology.NodeID(dst), 0), nil
	}
	t := r.TopChoice(src, dst)
	if t < 0 || t >= r.F.M {
		return topology.Path{}, fmt.Errorf("TopChoice(%d,%d) = %d out of [0,%d)", src, dst, t, r.F.M)
	}
	return r.F.RouteVia(topology.NodeID(src), topology.NodeID(dst), t), nil
}

// Route assigns a path to every SD pair of the pattern.
func (r *FtreeSinglePath) Route(p *permutation.Permutation) (*Assignment, error) {
	return routePairwise(r.F.Net, p, func(s, d int) ([]topology.Path, error) {
		path, err := r.PathFor(s, d)
		if err != nil {
			return nil, err
		}
		return []topology.Path{path}, nil
	})
}

// AppendPairLinks implements PairLinkAppender: it appends the link IDs of
// PathFor(src, dst) without building the Path, keeping verification sweeps
// allocation-free.
func (r *FtreeSinglePath) AppendPairLinks(src, dst int, buf []topology.LinkID) ([]topology.LinkID, error) {
	n := r.F.N
	if src < 0 || src >= r.F.Ports() || dst < 0 || dst >= r.F.Ports() {
		return buf, fmt.Errorf("host index out of range: %d or %d", src, dst)
	}
	if r.PairCheck != nil {
		if err := r.PairCheck(src, dst); err != nil {
			return buf, err
		}
	}
	if src == dst {
		return buf, nil
	}
	sv, sk := src/n, src%n
	dv, dk := dst/n, dst%n
	if sv == dv {
		return append(buf, r.F.HostUpLink(sv, sk), r.F.HostDownLink(dv, dk)), nil
	}
	t := r.TopChoice(src, dst)
	if t < 0 || t >= r.F.M {
		return buf, fmt.Errorf("TopChoice(%d,%d) = %d out of [0,%d)", src, dst, t, r.F.M)
	}
	return append(buf,
		r.F.HostUpLink(sv, sk),
		r.F.UpLink(sv, t),
		r.F.DownLink(t, dv),
		r.F.HostDownLink(dv, dk)), nil
}

// NewPaperDeterministic returns the Theorem-3 routing algorithm for
// ftree(n+m, r): SD pair (s = (v, i), d = (w, j)) is routed through top
// switch (i, j) ≡ i·n+j. With m ≥ n² this routing is nonblocking for any
// permutation (Theorem 3); the constructor rejects smaller m — use
// NewPaperDeterministicFolded for the under-provisioned variant the
// tightness experiments block.
func NewPaperDeterministic(f *topology.FoldedClos) (*FtreeSinglePath, error) {
	if f.M < f.N*f.N {
		return nil, fmt.Errorf("routing: Theorem-3 scheme needs m >= n^2 (%d >= %d); ftree(%d+%d,%d) is under-provisioned",
			f.N*f.N, f.M, f.N, f.M, f.R)
	}
	n := f.N
	return &FtreeSinglePath{
		F:          f,
		RouterName: "paper-deterministic",
		TopChoice: func(src, dst int) int {
			i, j := src%n, dst%n
			return i*n + j
		},
	}, nil
}

// NewPaperDeterministicFolded returns the Theorem-3 scheme with the top
// switch index folded modulo m. For m ≥ n² it is identical to
// NewPaperDeterministic; for m < n² it shares top switches between (i, j)
// classes and therefore blocks some permutations — the construction used
// to demonstrate that the m ≥ n² condition in Theorem 2 is tight.
func NewPaperDeterministicFolded(f *topology.FoldedClos) *FtreeSinglePath {
	n, m := f.N, f.M
	return &FtreeSinglePath{
		F:          f,
		RouterName: fmt.Sprintf("paper-deterministic-folded(m=%d)", m),
		TopChoice: func(src, dst int) int {
			i, j := src%n, dst%n
			return (i*n + j) % m
		},
	}
}

// NewDestMod returns destination-based routing: the top switch is the
// destination host index modulo m. This mirrors the destination-keyed
// forwarding used by InfiniBand-style fat-tree routing ([12]): every
// packet to d climbs to the same top switch regardless of its source, so
// downlinks carry traffic to one destination but uplinks aggregate many
// sources — blocking for many permutations unless m is very large.
func NewDestMod(f *topology.FoldedClos) *FtreeSinglePath {
	m := f.M
	return &FtreeSinglePath{
		F:          f,
		RouterName: "dest-mod",
		TopChoice:  func(src, dst int) int { return dst % m },
	}
}

// NewSourceMod returns source-based routing: the top switch is the source
// host index modulo m. Symmetric to NewDestMod with uplinks clean and
// downlinks aggregated.
func NewSourceMod(f *topology.FoldedClos) *FtreeSinglePath {
	m := f.M
	return &FtreeSinglePath{
		F:          f,
		RouterName: "source-mod",
		TopChoice:  func(src, dst int) int { return src % m },
	}
}

// NewDestSwitchMod returns routing keyed on the destination switch index
// modulo m, the coarser destination-rooted-tree variant common in
// up*/down* InfiniBand deployments.
func NewDestSwitchMod(f *topology.FoldedClos) *FtreeSinglePath {
	n, m := f.N, f.M
	return &FtreeSinglePath{
		F:          f,
		RouterName: "dest-switch-mod",
		TopChoice:  func(src, dst int) int { return (dst / n) % m },
	}
}

// NewRandomFixed returns single-path routing with a uniformly random but
// fixed top switch per SD pair, drawn once from seed at construction: the
// "randomized routing" of Greenberg/Leiserson [6] frozen into a
// deterministic assignment. Path choices are reproducible for a seed.
func NewRandomFixed(f *topology.FoldedClos, seed int64) *FtreeSinglePath {
	rng := rand.New(rand.NewSource(seed))
	ports := f.Ports()
	choice := make([]int32, ports*ports)
	for i := range choice {
		choice[i] = int32(rng.Intn(f.M))
	}
	return &FtreeSinglePath{
		F:          f,
		RouterName: "random-fixed",
		TopChoice:  func(src, dst int) int { return int(choice[src*ports+dst]) },
	}
}
