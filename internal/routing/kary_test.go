package routing_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestKAryDestModPathsValid(t *testing.T) {
	for _, c := range [][2]int{{2, 3}, {3, 2}, {3, 3}} {
		tr := topology.NewKAryNTree(c[0], c[1])
		r := routing.NewKAryDestMod(tr)
		for s := 0; s < tr.Hosts(); s++ {
			for d := 0; d < tr.Hosts(); d++ {
				p, err := r.PathFor(s, d)
				if err != nil {
					t.Fatalf("%d-ary %d-tree %d->%d: %v", c[0], c[1], s, d, err)
				}
				if s == d {
					if p.Len() != 0 {
						t.Fatal("self path should be linkless")
					}
					continue
				}
				if !p.Valid(tr.Net) {
					t.Fatalf("invalid path %d->%d", s, d)
				}
			}
		}
	}
}

func TestKAryDestModBlocksButRoutes(t *testing.T) {
	tr := topology.NewKAryNTree(2, 3)
	r := routing.NewKAryDestMod(tr)
	frac, load, err := analysis.BlockingProbability(r, tr.Hosts(), 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.3 || load <= 1 {
		t.Fatalf("static routing on a k-ary n-tree should block often: frac=%.2f load=%.2f", frac, load)
	}
	a, err := r.Route(permutation.Shift(tr.Hosts(), 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.PathFor(-1, 2); err == nil {
		t.Fatal("range check missing")
	}
	if r.Name() != "kary-dest-mod" {
		t.Fatal("name")
	}
}

func TestKAryRandomFixedReproducible(t *testing.T) {
	tr := topology.NewKAryNTree(3, 2)
	r1 := routing.NewKAryRandomFixed(tr, 5)
	r2 := routing.NewKAryRandomFixed(tr, 5)
	for s := 0; s < tr.Hosts(); s++ {
		for d := 0; d < tr.Hosts(); d++ {
			p1, err1 := r1.PathFor(s, d)
			p2, err2 := r2.PathFor(s, d)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if len(p1.Nodes) != len(p2.Nodes) {
				t.Fatal("nondeterministic")
			}
			for i := range p1.Nodes {
				if p1.Nodes[i] != p2.Nodes[i] {
					t.Fatal("same seed produced different paths")
				}
			}
		}
	}
	a, err := r1.Route(permutation.Neighbor(tr.Hosts()))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.PathFor(0, 99); err == nil {
		t.Fatal("range check missing")
	}
	if p, err := r1.PathFor(4, 4); err != nil || p.Len() != 0 {
		t.Fatal("self pair wrong")
	}
	if r1.Name() != "kary-random-fixed" {
		t.Fatal("name")
	}
}
