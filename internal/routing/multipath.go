package routing

import (
	"fmt"

	"repro/internal/permutation"
	"repro/internal/topology"
)

// FtreeMultipath is traffic-oblivious multi-path deterministic routing for
// ftree(n+m, r) (§IV.B): each cross-switch SD pair may use any top switch
// in its predetermined path set, with packets spread over the set by a
// pattern-oblivious policy (round-robin or hashed). Because the instant at
// which each path carries a packet is unpredictable, the nonblocking
// analysis must treat every path in the set as loaded, which is why the
// paper proves the m ≥ n² condition carries over unchanged from
// single-path routing.
type FtreeMultipath struct {
	F *topology.FoldedClos
	// TopSet maps a cross-switch SD pair to the top-level switch indices
	// its packets may use; must be non-empty.
	TopSet func(src, dst int) []int
	// RouterName is reported by Name.
	RouterName string
}

// Name returns the scheme name.
func (r *FtreeMultipath) Name() string { return r.RouterName }

// PathsFor returns every path the pair's packets may take.
func (r *FtreeMultipath) PathsFor(src, dst int) ([]topology.Path, error) {
	n := r.F.N
	if src < 0 || src >= r.F.Ports() || dst < 0 || dst >= r.F.Ports() {
		return nil, fmt.Errorf("host index out of range: %d or %d", src, dst)
	}
	if src == dst {
		return selfPath(topology.NodeID(src)), nil
	}
	if src/n == dst/n {
		return []topology.Path{r.F.RouteVia(topology.NodeID(src), topology.NodeID(dst), 0)}, nil
	}
	set := r.TopSet(src, dst)
	if len(set) == 0 {
		return nil, fmt.Errorf("empty top-switch set for pair %d->%d", src, dst)
	}
	paths := make([]topology.Path, len(set))
	for i, t := range set {
		if t < 0 || t >= r.F.M {
			return nil, fmt.Errorf("TopSet(%d,%d) contains %d out of [0,%d)", src, dst, t, r.F.M)
		}
		paths[i] = r.F.RouteVia(topology.NodeID(src), topology.NodeID(dst), t)
	}
	return paths, nil
}

// Route assigns the full path set to every SD pair of the pattern.
func (r *FtreeMultipath) Route(p *permutation.Permutation) (*Assignment, error) {
	return routePairwise(r.F.Net, p, r.PathsFor)
}

// AppendPairLinks implements PairLinkAppender: it appends the link IDs of
// every path in PathsFor(src, dst) without building Path values, with
// identical error conditions and messages. Links shared by several paths
// of the set (the host up/down links, always) repeat in the output; the
// accounting layer deduplicates per pair.
func (r *FtreeMultipath) AppendPairLinks(src, dst int, buf []topology.LinkID) ([]topology.LinkID, error) {
	n := r.F.N
	if src < 0 || src >= r.F.Ports() || dst < 0 || dst >= r.F.Ports() {
		return buf, fmt.Errorf("host index out of range: %d or %d", src, dst)
	}
	if src == dst {
		return buf, nil
	}
	sv, sk := src/n, src%n
	dv, dk := dst/n, dst%n
	if sv == dv {
		return append(buf, r.F.HostUpLink(sv, sk), r.F.HostDownLink(dv, dk)), nil
	}
	set := r.TopSet(src, dst)
	if len(set) == 0 {
		return buf, fmt.Errorf("empty top-switch set for pair %d->%d", src, dst)
	}
	for _, t := range set {
		if t < 0 || t >= r.F.M {
			return buf, fmt.Errorf("TopSet(%d,%d) contains %d out of [0,%d)", src, dst, t, r.F.M)
		}
		buf = append(buf,
			r.F.HostUpLink(sv, sk),
			r.F.UpLink(sv, t),
			r.F.DownLink(t, dv),
			r.F.HostDownLink(dv, dk))
	}
	return buf, nil
}

// NewFullSpray returns the maximal oblivious multipath scheme: every
// cross-switch pair may use all m top switches (per-packet spraying, the
// InfiniBand LMC-style multipath of [8] pushed to its limit).
func NewFullSpray(f *topology.FoldedClos) *FtreeMultipath {
	all := make([]int, f.M)
	for i := range all {
		all[i] = i
	}
	return &FtreeMultipath{
		F:          f,
		RouterName: "full-spray",
		TopSet:     func(src, dst int) []int { return all },
	}
}

// NewKSpray returns oblivious multipath over k paths per pair: pair
// (s, d) may use top switches (s+d+i) mod m for i in [0, k) — a fixed,
// traffic-independent subset as in multiple-LID routing [12].
func NewKSpray(f *topology.FoldedClos, k int) (*FtreeMultipath, error) {
	if k < 1 || k > f.M {
		return nil, fmt.Errorf("routing: spray width %d out of [1,%d]", k, f.M)
	}
	m := f.M
	return &FtreeMultipath{
		F:          f,
		RouterName: fmt.Sprintf("spray-%d", k),
		TopSet: func(src, dst int) []int {
			set := make([]int, k)
			for i := 0; i < k; i++ {
				set[i] = (src + dst + i) % m
			}
			return set
		},
	}, nil
}

// NewPaperMultipath returns the multipath variant of the Theorem-3 scheme:
// pair ((v, i), (w, j)) may use any top switch in row i — the set
// {(i, 0), …, (i, n−1)} — spreading load while preserving clean uplinks.
// Downlinks then aggregate destinations, so this scheme demonstrates
// §IV.B: extra oblivious paths do not relax the nonblocking condition.
func NewPaperMultipath(f *topology.FoldedClos) (*FtreeMultipath, error) {
	if f.M < f.N*f.N {
		return nil, fmt.Errorf("routing: paper multipath needs m >= n^2")
	}
	n := f.N
	return &FtreeMultipath{
		F:          f,
		RouterName: "paper-multipath-row",
		TopSet: func(src, dst int) []int {
			i := src % n
			set := make([]int, n)
			for j := 0; j < n; j++ {
				set[j] = i*n + j
			}
			return set
		},
	}, nil
}
