package routing

import (
	"fmt"

	"repro/internal/permutation"
	"repro/internal/topology"
)

// NonblockingAdaptive implements algorithm NONBLOCKINGADAPTIVE (Fig. 4 of
// the paper): local adaptive routing for ftree(n+m, r) that achieves
// nonblocking communication with m = O(n^(2−1/(2(c+1)))) top-level
// switches, where c is the smallest constant with r ≤ n^c.
//
// Bottom switches are numbered with c base-n digits s_{c−1}…s_0 and hosts
// with an extra low-order digit p. Top-level switches are organized into
// *configurations* of (c+1)·n switches, each split into c+1 *partitions*
// of n switches. Partition 0 of a configuration routes SD pairs keyed on
// the destination's local digit p; partition q ≥ 1 keys on
// (s_{q−1} − p) mod n. Every partition's keying is a Class-DIFF scheme
// (Lemma 4): two destinations in one switch always land on different top
// switches, so pairs from different source switches never contend
// (Lemma 3) and the algorithm only has to schedule pairs from the same
// switch, which it does greedily — per configuration, repeatedly routing
// the largest key-distinct subset on an unused partition (Lemma 5).
type NonblockingAdaptive struct {
	F *topology.FoldedClos
	// C is the number of base-n digits used for switch numbers.
	C int
	// FirstFit, when set, replaces the greedy largest-subset partition
	// choice (Fig. 4 line 7) with first-fit partition order — the
	// ablation showing the greedy step is what achieves the Theorem-5
	// bound.
	FirstFit bool
}

// NewNonblockingAdaptive builds the router for f, deriving c as the
// smallest integer with r ≤ n^c. It requires n ≥ 2 (with n = 1 every
// bottom switch has a single host and the trivial m = 1 deterministic
// routing is already nonblocking).
func NewNonblockingAdaptive(f *topology.FoldedClos) (*NonblockingAdaptive, error) {
	if f.N < 2 {
		return nil, fmt.Errorf("routing: NONBLOCKINGADAPTIVE needs n >= 2 (n=1 is nonblocking with m=1 deterministically)")
	}
	c := 1
	pw := f.N
	for pw < f.R {
		pw *= f.N
		c++
	}
	return &NonblockingAdaptive{F: f, C: c}, nil
}

// Name returns "nonblocking-adaptive" (or its first-fit ablation name).
func (r *NonblockingAdaptive) Name() string {
	if r.FirstFit {
		return "nonblocking-adaptive-firstfit"
	}
	return "nonblocking-adaptive"
}

// PartitionKey returns the §V key of destination host d under partition q:
// q = 0 keys on the local digit p; q ≥ 1 keys on (s_{q−1} − p) mod n.
// Within a partition, destinations with different keys may be routed
// concurrently (they use different top switches); destinations sharing a
// key must wait for another partition or configuration.
func (r *NonblockingAdaptive) PartitionKey(q, d int) int {
	n := r.F.N
	p := d % n
	if q == 0 {
		return p
	}
	w := d / n
	digit := w
	for i := 1; i < q; i++ {
		digit /= n
	}
	digit %= n
	return ((digit-p)%n + n) % n
}

// topIndex maps (configuration, partition, key) to a physical top-level
// switch index: configurations occupy consecutive blocks of (c+1)·n
// switches — the merge step of Fig. 4 lines 14–16, where corresponding
// partitions of every source switch's configuration share physical
// switches (safe by Lemma 4).
func (r *NonblockingAdaptive) topIndex(conf, q, key int) int {
	n := r.F.N
	return conf*(r.C+1)*n + q*n + key
}

// Plan runs the Fig. 4 scheduling and returns, for every SD pair, the top
// switch index it would use (−1 for intra-switch pairs that bypass the top
// level), along with the number of configurations consumed. Plan ignores
// the physical m, so experiments can measure how many top switches any
// permutation needs; Route enforces m.
func (r *NonblockingAdaptive) Plan(p *permutation.Permutation) (tops []int, pairs []permutation.Pair, confs int, err error) {
	if p.N() != r.F.Ports() {
		return nil, nil, 0, fmt.Errorf("routing: pattern over %d endpoints, network has %d", p.N(), r.F.Ports())
	}
	pairs = p.Pairs()
	tops = make([]int, len(pairs))
	n := r.F.N

	// Group cross-switch pairs by source switch (line 1).
	bySrc := make(map[int][]int) // source switch -> indices into pairs
	for i, pr := range pairs {
		tops[i] = -1
		if pr.Src != pr.Dst && pr.Src/n != pr.Dst/n {
			v := pr.Src / n
			bySrc[v] = append(bySrc[v], i)
		}
	}

	maxConf := 0
	for _, rem := range bySrc {
		conf := 0
		for len(rem) > 0 {
			// Line 5: allocate a new configuration.
			usedPart := make([]bool, r.C+1)
			for len(rem) > 0 {
				// Line 7: the largest key-distinct subset over unused
				// partitions (or the first non-empty partition in the
				// first-fit ablation).
				bestQ, bestKeys := -1, map[int]int(nil)
				for q := 0; q <= r.C; q++ {
					if usedPart[q] {
						continue
					}
					keys := make(map[int]int, len(rem))
					for _, idx := range rem {
						k := r.PartitionKey(q, pairs[idx].Dst)
						if _, dup := keys[k]; !dup {
							keys[k] = idx
						}
					}
					if bestQ == -1 || len(keys) > len(bestKeys) {
						bestQ, bestKeys = q, keys
					}
					if r.FirstFit {
						break
					}
				}
				if bestQ == -1 {
					break // configuration exhausted (line 6)
				}
				// Lines 8–10: route the subset, mark partition used.
				routed := make(map[int]bool, len(bestKeys))
				for key, idx := range bestKeys {
					tops[idx] = r.topIndex(conf, bestQ, key)
					routed[idx] = true
				}
				usedPart[bestQ] = true
				next := rem[:0]
				for _, idx := range rem {
					if !routed[idx] {
						next = append(next, idx)
					}
				}
				rem = next
			}
			conf++
		}
		if conf > maxConf {
			maxConf = conf
		}
	}
	return tops, pairs, maxConf, nil
}

// Route runs Plan and materializes paths, verifying that the physical
// network has enough top-level switches: m ≥ confs·(c+1)·n.
func (r *NonblockingAdaptive) Route(p *permutation.Permutation) (*Assignment, error) {
	tops, pairs, confs, err := r.Plan(p)
	if err != nil {
		return nil, err
	}
	need := confs * (r.C + 1) * r.F.N
	if need > r.F.M {
		return nil, fmt.Errorf("routing: pattern needs %d top switches (%d configurations of %d), network has m=%d",
			need, confs, (r.C+1)*r.F.N, r.F.M)
	}
	return r.assemble(pairs, tops, confs, need, identTop), nil
}

func identTop(t int) int { return t }

// assemble materializes a planned assignment: each pair's logical top-switch
// slot is mapped to a physical switch by physTop (the identity on a healthy
// network; the healthy-switch renumbering when avoiding failures). It is the
// single path-construction body shared by Route and RouteAvoiding, so the
// degraded path cannot drift from the healthy one.
func (r *NonblockingAdaptive) assemble(pairs []permutation.Pair, tops []int, confs, need int, physTop func(int) int) *Assignment {
	a := &Assignment{
		Net:             r.F.Net,
		Pairs:           pairs,
		PathSets:        make([][]topology.Path, len(pairs)),
		Configurations:  confs,
		TopSwitchesUsed: need,
	}
	for i, pr := range pairs {
		switch {
		case pr.Src == pr.Dst:
			a.PathSets[i] = selfPath(topology.NodeID(pr.Src))
		case tops[i] < 0:
			// Intra-switch pair: RouteVia ignores the top switch.
			a.PathSets[i] = []topology.Path{r.F.RouteVia(topology.NodeID(pr.Src), topology.NodeID(pr.Dst), 0)}
		default:
			a.PathSets[i] = []topology.Path{r.F.RouteVia(topology.NodeID(pr.Src), topology.NodeID(pr.Dst), physTop(tops[i]))}
		}
	}
	return a
}

// RequiredM reports how many top-level switches the algorithm needs for
// pattern p: configurations·(c+1)·n.
func (r *NonblockingAdaptive) RequiredM(p *permutation.Permutation) (int, error) {
	_, _, confs, err := r.Plan(p)
	if err != nil {
		return 0, err
	}
	return confs * (r.C + 1) * r.F.N, nil
}

// GreedyLocal is the natural local adaptive baseline *without* the
// Class-DIFF guarantee: each source switch assigns its pairs to its
// least-used uplinks (ties toward lower top-switch indices), blind to what
// other switches choose. It spreads load well but two switches may steer
// pairs with different destinations in one switch through one top switch,
// so it is not nonblocking — the contrast motivating Lemma 3.
type GreedyLocal struct {
	F *topology.FoldedClos
}

// NewGreedyLocal builds the baseline router.
func NewGreedyLocal(f *topology.FoldedClos) *GreedyLocal { return &GreedyLocal{F: f} }

// Name returns "greedy-local".
func (r *GreedyLocal) Name() string { return "greedy-local" }

// Route assigns, per source switch independently, each cross-switch pair
// to the top switch whose uplink from this switch carries the fewest pairs
// so far.
func (r *GreedyLocal) Route(p *permutation.Permutation) (*Assignment, error) {
	if p.N() != r.F.Ports() {
		return nil, fmt.Errorf("routing: pattern over %d endpoints, network has %d", p.N(), r.F.Ports())
	}
	pairs := p.Pairs()
	a := &Assignment{Net: r.F.Net, Pairs: pairs, PathSets: make([][]topology.Path, len(pairs))}
	n := r.F.N
	load := make(map[int][]int) // source switch -> per-top uplink load
	for i, pr := range pairs {
		switch {
		case pr.Src == pr.Dst:
			a.PathSets[i] = selfPath(topology.NodeID(pr.Src))
		case pr.Src/n == pr.Dst/n:
			a.PathSets[i] = []topology.Path{r.F.RouteVia(topology.NodeID(pr.Src), topology.NodeID(pr.Dst), 0)}
		default:
			v := pr.Src / n
			ld := load[v]
			if ld == nil {
				ld = make([]int, r.F.M)
				load[v] = ld
			}
			best := 0
			for t := 1; t < r.F.M; t++ {
				if ld[t] < ld[best] {
					best = t
				}
			}
			ld[best]++
			a.PathSets[i] = []topology.Path{r.F.RouteVia(topology.NodeID(pr.Src), topology.NodeID(pr.Dst), best)}
		}
	}
	return a, nil
}
