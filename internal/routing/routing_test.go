package routing_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// --- Theorem 3: the paper's single-path routing makes ftree(n+n², r)
// nonblocking -------------------------------------------------------------

func TestTheorem3Lemma1AllPairs(t *testing.T) {
	cases := []struct{ n, r int }{
		{1, 3}, {2, 5}, {2, 8}, {3, 7}, {3, 10}, {4, 9}, {2, 3}, {3, 4},
	}
	for _, c := range cases {
		f := topology.NewFoldedClos(c.n, c.n*c.n, c.r)
		r, err := routing.NewPaperDeterministic(f)
		if err != nil {
			t.Fatal(err)
		}
		res, err := analysis.CheckLemma1AllPairs(r, f.Ports())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Nonblocking {
			t.Errorf("ftree(%d+%d,%d): Theorem-3 routing violates Lemma 1: %+v", c.n, c.n*c.n, c.r, res.Violation)
		}
	}
}

func TestTheorem3ExhaustiveSmall(t *testing.T) {
	// Every one of the 6! = 720 full permutations of ftree(2+4, 3) must
	// route without contention.
	f := topology.NewFoldedClos(2, 4, 3)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.SweepExhaustive(r, f.Ports())
	if !res.Nonblocking() {
		t.Fatalf("blocked %d of %d permutations; first: %v (err %v)", res.Blocked, res.Tested, res.FirstBlocked, res.RouteErr)
	}
	if res.Tested != 720 {
		t.Fatalf("tested %d permutations, want 720", res.Tested)
	}
}

func TestTheorem3RandomSweepLarger(t *testing.T) {
	f := topology.NewFoldedClos(4, 16, 12) // 48 hosts
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.SweepRandom(r, f.Ports(), 200, 1)
	if !res.Nonblocking() {
		t.Fatalf("blocked %d of %d patterns; first: %v (err %v)", res.Blocked, res.Tested, res.FirstBlocked, res.RouteErr)
	}
	if res.MaxLinkLoad > 1 {
		t.Fatalf("max link load %d under a permutation, want 1", res.MaxLinkLoad)
	}
}

// Fig. 3: the uplink from bottom switch v to top switch (i, j) carries
// exactly the r−1 SD pairs (s=(v,i), d=(w,j)) for w ≠ v; the downlink the
// r−1 pairs (s=(w,i), d=(v,j)).
func TestFig3LinkAccounting(t *testing.T) {
	n, r := 3, 7
	f := topology.NewFoldedClos(n, n*n, r)
	rt, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.CheckLemma1AllPairs(rt, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	v, i, j := 2, 1, 2
	up := f.UpLink(v, i*n+j)
	view := res.Links[up]
	if view == nil {
		t.Fatal("uplink not loaded")
	}
	if len(view.Pairs) != r-1 {
		t.Fatalf("uplink carries %d pairs, want r-1=%d", len(view.Pairs), r-1)
	}
	if len(view.Sources) != 1 || view.Sources[0] != v*n+i {
		t.Fatalf("uplink sources = %v, want exactly host (v,i)=%d", view.Sources, v*n+i)
	}
	for _, pr := range view.Pairs {
		if pr.Dst%n != j {
			t.Fatalf("uplink pair %v has destination local index %d, want j=%d", pr, pr.Dst%n, j)
		}
	}
	down := f.DownLink(i*n+j, v)
	dview := res.Links[down]
	if dview == nil || len(dview.Pairs) != r-1 {
		t.Fatalf("downlink pairs = %v, want r-1", dview)
	}
	if len(dview.Dests) != 1 || dview.Dests[0] != v*n+j {
		t.Fatalf("downlink dests = %v, want exactly host (v,j)=%d", dview.Dests, v*n+j)
	}
}

// --- Theorem 2 tightness: m = n²−1 blocks ---------------------------------

func TestTheorem2TightnessFoldedBlocks(t *testing.T) {
	for _, c := range []struct{ n, r int }{{2, 5}, {3, 7}} {
		m := c.n*c.n - 1
		f := topology.NewFoldedClos(c.n, m, c.r)
		r := routing.NewPaperDeterministicFolded(f)
		res, err := analysis.CheckLemma1AllPairs(r, f.Ports())
		if err != nil {
			t.Fatal(err)
		}
		if res.Nonblocking {
			t.Fatalf("ftree(%d+%d,%d) with folded routing reported nonblocking; Theorem 2 requires m >= n²", c.n, m, c.r)
		}
		w, err := analysis.BlockingWitness(res, f.Ports())
		if err != nil {
			t.Fatal(err)
		}
		a, err := r.Route(w)
		if err != nil {
			t.Fatal(err)
		}
		if !analysis.Check(a).HasContention() {
			t.Fatalf("witness permutation %v does not actually block", w)
		}
	}
}

func TestPaperDeterministicRejectsSmallM(t *testing.T) {
	f := topology.NewFoldedClos(3, 8, 7)
	if _, err := routing.NewPaperDeterministic(f); err == nil {
		t.Fatal("expected error for m < n²")
	}
}

func TestPaperDeterministicFoldedEqualsExactWhenProvisioned(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 5)
	exact, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	folded := routing.NewPaperDeterministicFolded(f)
	for s := 0; s < f.Ports(); s++ {
		for d := 0; d < f.Ports(); d++ {
			if s == d {
				continue
			}
			p1, err1 := exact.PathFor(s, d)
			p2, err2 := folded.PathFor(s, d)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if len(p1.Nodes) != len(p2.Nodes) {
				t.Fatalf("path shapes differ for %d->%d", s, d)
			}
			for i := range p1.Nodes {
				if p1.Nodes[i] != p2.Nodes[i] {
					t.Fatalf("paths differ for %d->%d", s, d)
				}
			}
		}
	}
}

// --- Baseline deterministic routings block --------------------------------

func TestDestAndSourceModBlock(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 5) // even with m = n² these block
	for _, r := range []routing.PairRouter{
		routing.NewDestMod(f),
		routing.NewSourceMod(f),
		routing.NewDestSwitchMod(f),
		routing.NewRandomFixed(f, 7),
	} {
		res, err := analysis.CheckLemma1AllPairs(r, f.Ports())
		if err != nil {
			t.Fatal(err)
		}
		if res.Nonblocking {
			t.Errorf("%s: unexpectedly nonblocking on ftree(2+4,5)", r.Name())
			continue
		}
		w, err := analysis.BlockingWitness(res, f.Ports())
		if err != nil {
			t.Fatal(err)
		}
		a, err := r.Route(w)
		if err != nil {
			t.Fatal(err)
		}
		if !analysis.Check(a).HasContention() {
			t.Errorf("%s: witness %v does not block", r.Name(), w)
		}
	}
}

func TestRouterMechanics(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	// Self pair: empty path.
	p, err := r.PathFor(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Fatal("self pair should not use links")
	}
	// Intra-switch pair: two hops, no top level.
	p, err = r.PathFor(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("intra-switch path length %d", p.Len())
	}
	// Out of range.
	if _, err := r.PathFor(-1, 0); err == nil {
		t.Fatal("negative host accepted")
	}
	if _, err := r.PathFor(0, 99); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	// Route over a pattern validates.
	a, err := r.Route(permutation.Shift(f.Ports(), 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.SinglePath() {
		t.Fatal("deterministic assignment should be single-path")
	}
	if got := a.Path(0); !got.Valid(f.Net) {
		t.Fatal("Path(0) invalid")
	}
}

func TestTopChoiceOutOfRangeSurfaces(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	r := &routing.FtreeSinglePath{F: f, RouterName: "bad", TopChoice: func(s, d int) int { return 99 }}
	if _, err := r.PathFor(0, 5); err == nil || !strings.Contains(err.Error(), "out of") {
		t.Fatalf("expected range error, got %v", err)
	}
}

// --- §IV.B: oblivious multipath -------------------------------------------

func TestMultipathSprayContends(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 4)
	spray := routing.NewFullSpray(f)
	// Two pairs from different switches to the same destination switch:
	// with all-paths spraying both may use any top switch, so every
	// downlink into the destination switch is shared.
	p, err := permutation.FromPairs(f.Ports(), []permutation.Pair{{Src: 0, Dst: 6}, {Src: 2, Dst: 7}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := spray.Route(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.SinglePath() {
		t.Fatal("spray assignment should be multipath")
	}
	rep := analysis.Check(a)
	if !rep.HasContention() {
		t.Fatal("full spray should contend on shared downlinks (§IV.B)")
	}
}

func TestKSprayWidths(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 4)
	if _, err := routing.NewKSpray(f, 0); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := routing.NewKSpray(f, 5); err == nil {
		t.Fatal("width > m accepted")
	}
	r, err := routing.NewKSpray(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := r.PathsFor(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("paths = %d, want 2", len(ps))
	}
	// Intra-switch pair: single local path.
	ps, err = r.PathsFor(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].Len() != 2 {
		t.Fatal("intra-switch multipath should be the single local path")
	}
	// Self pair.
	ps, err = r.PathsFor(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].Len() != 0 {
		t.Fatal("self pair should be linkless")
	}
}

func TestPaperMultipathRowCleanUplinks(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 5)
	r, err := routing.NewPaperMultipath(f)
	if err != nil {
		t.Fatal(err)
	}
	// The row scheme keeps each uplink dedicated to one source, but
	// downlinks aggregate destinations: a permutation with two pairs of
	// different sources/destinations into one switch must contend.
	p, err := permutation.FromPairs(f.Ports(), []permutation.Pair{{Src: 0, Dst: 8}, {Src: 2, Dst: 9}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Route(p)
	if err != nil {
		t.Fatal(err)
	}
	if !analysis.Check(a).HasContention() {
		t.Fatal("row multipath should contend on downlinks")
	}
	// Under-provisioned construction is rejected.
	small := topology.NewFoldedClos(3, 4, 5)
	if _, err := routing.NewPaperMultipath(small); err == nil {
		t.Fatal("m < n² accepted")
	}
}

// --- NONBLOCKINGADAPTIVE ---------------------------------------------------

func TestAdaptiveNonblockingExhaustive(t *testing.T) {
	// ftree(2+12, 4): c = 2, worst case 1 configuration of (c+1)·n = 6
	// switches per the simple bound; m = 12 is ample. All 8! = 40320
	// permutations must route contention-free (Theorem 4).
	f := topology.NewFoldedClos(2, 12, 4)
	r, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.C != 2 {
		t.Fatalf("c = %d, want 2", r.C)
	}
	res := analysis.SweepExhaustive(r, f.Ports())
	if !res.Nonblocking() {
		t.Fatalf("blocked %d/%d; first %v (err %v)", res.Blocked, res.Tested, res.FirstBlocked, res.RouteErr)
	}
}

func TestAdaptivePartialPatternsExhaustive(t *testing.T) {
	// Adaptive routes depend on the pattern, so partial permutations are
	// not covered by full-permutation sweeps; enumerate all of them on a
	// small instance.
	f := topology.NewFoldedClos(2, 12, 3)
	r, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	permutation.EnumerateSubsets(f.Ports(), func(p *permutation.Permutation) bool {
		a, err := r.Route(p)
		if err != nil {
			t.Fatalf("pattern %v: %v", p, err)
		}
		if analysis.Check(a).HasContention() {
			t.Fatalf("pattern %v contends", p)
		}
		checked++
		return true
	})
	if checked < 1000 {
		t.Fatalf("only %d patterns checked", checked)
	}
}

func TestAdaptiveNonblockingExhaustiveC1(t *testing.T) {
	// r = n exercises c = 1: switch numbers are single base-n digits and
	// a configuration has only 2 partitions. All 9! permutations of
	// ftree(3+24, 3) must route clean.
	f := topology.NewFoldedClos(3, 24, 3)
	r, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.C != 1 {
		t.Fatalf("c = %d, want 1", r.C)
	}
	res := analysis.SweepExhaustiveParallel(r, f.Ports(), 0)
	if !res.Nonblocking() {
		t.Fatalf("blocked %d/%d; first %v (err %v)", res.Blocked, res.Tested, res.FirstBlocked, res.RouteErr)
	}
	if res.Tested != 362880 {
		t.Fatalf("tested %d", res.Tested)
	}
}

func TestAdaptiveNonblockingC3(t *testing.T) {
	// n = 2, r = 5 gives c = 3 (2² < 5 ≤ 2³): four partitions per
	// configuration. Randomized + structured sweep plus all partial
	// patterns of the first six hosts embedded in the network.
	f := topology.NewFoldedClos(2, 24, 5)
	r, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.C != 3 {
		t.Fatalf("c = %d, want 3", r.C)
	}
	res := analysis.SweepRandom(r, f.Ports(), 300, 13)
	if !res.Nonblocking() {
		t.Fatalf("blocked %d/%d; first %v (err %v)", res.Blocked, res.Tested, res.FirstBlocked, res.RouteErr)
	}
}

func TestAdaptiveRandomSweepLarger(t *testing.T) {
	f := topology.NewFoldedClos(4, 48, 16) // c=2, ample m
	r, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.SweepRandom(r, f.Ports(), 100, 3)
	if !res.Nonblocking() {
		t.Fatalf("blocked %d/%d; first %v (err %v)", res.Blocked, res.Tested, res.FirstBlocked, res.RouteErr)
	}
}

func TestAdaptiveBeatsDeterministicBoundAsymptotically(t *testing.T) {
	// For growing n with r = n² (c = 2), the measured top-switch demand
	// must stay below the deterministic requirement n² once n is large
	// enough, and within the Theorem-5 budget always.
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{8, 12, 16} {
		r := n * n // c = 2 since n^2 >= r
		f := topology.NewFoldedClos(n, 1, r)
		ad, err := routing.NewNonblockingAdaptive(f)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0
		for trial := 0; trial < 5; trial++ {
			p := permutation.Random(rng, f.Ports())
			need, err := ad.RequiredM(p)
			if err != nil {
				t.Fatal(err)
			}
			if need > worst {
				worst = need
			}
		}
		adv := permutation.GreedyLowSpread(n, r, ad.C)
		need, err := ad.RequiredM(adv)
		if err != nil {
			t.Fatal(err)
		}
		if need > worst {
			worst = need
		}
		if n >= 12 && worst >= n*n {
			t.Errorf("n=%d: adaptive used %d top switches, not below deterministic n²=%d", n, worst, n*n)
		}
	}
}

func TestAdaptiveRejectsInsufficientM(t *testing.T) {
	// With m=1 the router cannot place even one configuration for
	// patterns with cross-switch pairs.
	f := topology.NewFoldedClos(2, 1, 4)
	r, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route(permutation.SwitchShift(2, 4, 1)); err == nil {
		t.Fatal("expected m-exhausted error")
	}
}

func TestAdaptiveRejectsNEquals1AndWrongSize(t *testing.T) {
	f := topology.NewFoldedClos(1, 1, 4)
	if _, err := routing.NewNonblockingAdaptive(f); err == nil {
		t.Fatal("n=1 accepted")
	}
	f2 := topology.NewFoldedClos(2, 12, 4)
	r, err := routing.NewNonblockingAdaptive(f2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route(permutation.Identity(3)); err == nil {
		t.Fatal("wrong-size pattern accepted")
	}
}

func TestAdaptiveClassDiffProperty(t *testing.T) {
	// Lemma 3/4: SD pairs from different source switches never share a
	// link, whatever the pattern. Check on random patterns by examining
	// the contention report pair lists.
	f := topology.NewFoldedClos(3, 36, 9)
	r, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		p := permutation.RandomPartial(rng, f.Ports(), 0.8)
		a, err := r.Route(p)
		if err != nil {
			t.Fatal(err)
		}
		rep := analysis.Check(a)
		for _, idxs := range rep.LinkPairs {
			for i := 1; i < len(idxs); i++ {
				s1 := a.Pairs[idxs[0]].Src / f.N
				s2 := a.Pairs[idxs[i]].Src / f.N
				if s1 != s2 {
					t.Fatalf("pairs from switches %d and %d share a link", s1, s2)
				}
			}
		}
	}
}

func TestAdaptiveFirstFitUsesMoreConfigs(t *testing.T) {
	// Ablation: first-fit partition selection must never beat greedy
	// largest-subset, and should lose on adversarial patterns.
	n, r := 6, 36
	f := topology.NewFoldedClos(n, 1, r)
	greedy, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	firstfit := &routing.NonblockingAdaptive{F: f, C: greedy.C, FirstFit: true}
	worse, better := 0, 0
	rng := rand.New(rand.NewSource(17))
	pats := []*permutation.Permutation{
		permutation.GreedyLowSpread(n, r, greedy.C),
		permutation.LocalRotate(n, r),
	}
	for i := 0; i < 10; i++ {
		pats = append(pats, permutation.Random(rng, f.Ports()))
	}
	for _, p := range pats {
		g, err := greedy.RequiredM(p)
		if err != nil {
			t.Fatal(err)
		}
		ff, err := firstfit.RequiredM(p)
		if err != nil {
			t.Fatal(err)
		}
		if ff < g {
			better++
		}
		if ff > g {
			worse++
		}
	}
	if better > worse {
		t.Fatalf("first-fit beat greedy on %d patterns vs losing %d", better, worse)
	}
}

// --- Greedy local baseline --------------------------------------------------

func TestGreedyLocalNotNonblocking(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 5)
	r := routing.NewGreedyLocal(f)
	res := analysis.SweepRandom(r, f.Ports(), 300, 11)
	if res.RouteErr != nil {
		t.Fatal(res.RouteErr)
	}
	if res.Blocked == 0 {
		t.Fatal("greedy-local found no blocked pattern in 300+ trials; expected blocking (no Class-DIFF guarantee)")
	}
}

func TestGreedyLocalMechanics(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	r := routing.NewGreedyLocal(f)
	if r.Name() != "greedy-local" {
		t.Fatal("name")
	}
	if _, err := r.Route(permutation.Identity(3)); err == nil {
		t.Fatal("wrong-size pattern accepted")
	}
	a, err := r.Route(permutation.Neighbor(f.Ports()))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}
