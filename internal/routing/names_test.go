package routing_test

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// TestRouterNames pins every scheme's reported name — these strings appear
// in experiment tables, reports and CLI output, so renames must be
// deliberate.
func TestRouterNames(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 5)
	paper, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	spray, err := routing.NewKSpray(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	pmp, err := routing.NewPaperMultipath(f)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	ff := &routing.NonblockingAdaptive{F: f, C: ad.C, FirstFit: true}
	mnt := topology.NewMPortNTree(4, 2)
	mntSpray, err := routing.NewMNTSpray(mnt, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tl := topology.NewThreeLevelFtree(2, 12)
	ml := topology.NewMultiFtree(2, 2)
	want := map[string]interface{ Name() string }{
		"paper-deterministic":             paper,
		"paper-deterministic-folded(m=4)": routing.NewPaperDeterministicFolded(f),
		"dest-mod":                        routing.NewDestMod(f),
		"source-mod":                      routing.NewSourceMod(f),
		"dest-switch-mod":                 routing.NewDestSwitchMod(f),
		"random-fixed":                    routing.NewRandomFixed(f, 1),
		"full-spray":                      routing.NewFullSpray(f),
		"spray-2":                         spray,
		"paper-multipath-row":             pmp,
		"nonblocking-adaptive":            ad,
		"nonblocking-adaptive-firstfit":   ff,
		"greedy-local":                    routing.NewGreedyLocal(f),
		"global-rearrangeable":            routing.NewGlobalRearrangeable(f),
		"mnt-dest-mod":                    routing.NewMNTDestMod(mnt),
		"mnt-random-fixed":                routing.NewMNTRandomFixed(mnt, 1),
		"mnt-spray-2":                     mntSpray,
		"paper-three-level":               routing.NewThreeLevelPaper(tl),
		"paper-multi-level":               routing.NewMultiLevelPaper(ml),
		"crossbar":                        routing.NewCrossbarRouter(topology.NewCrossbar(4)),
		"benes-looping":                   routing.NewBenesLooping(topology.NewBenes(2)),
		"kary-dest-mod":                   routing.NewKAryDestMod(topology.NewKAryNTree(2, 2)),
		"kary-random-fixed":               routing.NewKAryRandomFixed(topology.NewKAryNTree(2, 2), 1),
	}
	for name, r := range want {
		if got := r.Name(); got != name {
			t.Errorf("Name() = %q, want %q", got, name)
		}
	}
	sp, err := routing.NewPaperDeterministicSpared(topology.NewFoldedClos(2, 5, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name() != "paper-deterministic-spared" {
		t.Error("spared name")
	}
}
