package routing

import (
	"fmt"

	"repro/internal/permutation"
	"repro/internal/topology"
)

// KAryDestMod is static destination-keyed up*/down* routing for the
// k-ary n-tree [14]: at every up hop the freed switch digit is taken from
// the destination address — the same d-mod-k family as on m-port n-trees.
type KAryDestMod struct {
	T *topology.KAryNTree
}

// NewKAryDestMod builds the router.
func NewKAryDestMod(t *topology.KAryNTree) *KAryDestMod { return &KAryDestMod{T: t} }

// Name returns "kary-dest-mod".
func (r *KAryDestMod) Name() string { return "kary-dest-mod" }

// PathFor routes (src, dst) with up-hop choices taken from the destination
// address digits.
func (r *KAryDestMod) PathFor(src, dst int) (topology.Path, error) {
	if src < 0 || src >= r.T.Hosts() || dst < 0 || dst >= r.T.Hosts() {
		return topology.Path{}, fmt.Errorf("host index out of range: %d or %d", src, dst)
	}
	if src == dst {
		return topology.Path{Nodes: []topology.NodeID{topology.NodeID(src)}}, nil
	}
	s, d := topology.NodeID(src), topology.NodeID(dst)
	hops := r.T.NumUpHops(s, d)
	choices := make([]int, hops)
	x := dst
	for l := 0; l < hops; l++ {
		choices[l] = x % r.T.K
		x /= r.T.K
	}
	return r.T.UpDownPath(s, d, choices)
}

// Route assigns a path to every SD pair of the pattern.
func (r *KAryDestMod) Route(p *permutation.Permutation) (*Assignment, error) {
	return routePairwise(r.T.Net, p, func(s, d int) ([]topology.Path, error) {
		path, err := r.PathFor(s, d)
		if err != nil {
			return nil, err
		}
		return []topology.Path{path}, nil
	})
}

// KAryRandomFixed freezes a uniformly random up-path per SD pair on the
// k-ary n-tree, reproducible per seed.
type KAryRandomFixed struct {
	T    *topology.KAryNTree
	seed int64
}

// NewKAryRandomFixed builds the router.
func NewKAryRandomFixed(t *topology.KAryNTree, seed int64) *KAryRandomFixed {
	return &KAryRandomFixed{T: t, seed: seed}
}

// Name returns "kary-random-fixed".
func (r *KAryRandomFixed) Name() string { return "kary-random-fixed" }

// PathFor routes (src, dst) over a seeded random up-path.
func (r *KAryRandomFixed) PathFor(src, dst int) (topology.Path, error) {
	if src < 0 || src >= r.T.Hosts() || dst < 0 || dst >= r.T.Hosts() {
		return topology.Path{}, fmt.Errorf("host index out of range: %d or %d", src, dst)
	}
	if src == dst {
		return topology.Path{Nodes: []topology.NodeID{topology.NodeID(src)}}, nil
	}
	s, d := topology.NodeID(src), topology.NodeID(dst)
	hops := r.T.NumUpHops(s, d)
	rng := pairRNG(r.seed, src, dst)
	choices := make([]int, hops)
	for l := range choices {
		choices[l] = rng.Intn(r.T.K)
	}
	putPairRNG(rng)
	return r.T.UpDownPath(s, d, choices)
}

// Route assigns a path to every SD pair of the pattern.
func (r *KAryRandomFixed) Route(p *permutation.Permutation) (*Assignment, error) {
	return routePairwise(r.T.Net, p, func(s, d int) ([]topology.Path, error) {
		path, err := r.PathFor(s, d)
		if err != nil {
			return nil, err
		}
		return []topology.Path{path}, nil
	})
}
