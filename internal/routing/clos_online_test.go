package routing_test

import (
	"math/rand"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

func TestClosOnlineBasicLifecycle(t *testing.T) {
	c := topology.NewClos(2, 3, 3)
	o := routing.NewClosOnline(c, routing.FirstFit)
	mid, err := o.Connect(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mid != 0 {
		t.Fatalf("first-fit should pick middle 0, got %d", mid)
	}
	if o.Active() != 1 {
		t.Fatal("active count wrong")
	}
	p, err := o.PathOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid(c.Net) || p.Len() != 4 {
		t.Fatalf("circuit path wrong: %+v", p)
	}
	// Busy terminals rejected.
	if _, err := o.Connect(0, 4); err == nil {
		t.Fatal("busy input accepted")
	}
	if _, err := o.Connect(1, 5); err == nil {
		t.Fatal("busy output accepted")
	}
	if _, err := o.Connect(-1, 2); err == nil {
		t.Fatal("out of range accepted")
	}
	if err := o.Disconnect(0); err != nil {
		t.Fatal(err)
	}
	if err := o.Disconnect(0); err == nil {
		t.Fatal("double disconnect accepted")
	}
	if _, err := o.PathOf(0); err == nil {
		t.Fatal("path of idle terminal accepted")
	}
	// Same-switch circuits use distinct middles.
	m1, _ := o.Connect(0, 0)
	m2, err := o.Connect(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("two circuits of one input switch share a middle")
	}
	o.Reset()
	if o.Active() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestClosStrictSenseCondition(t *testing.T) {
	// m = 2n−1: the classic adversary fails to block, and random
	// setup/teardown churn never blocks (strict-sense, Clos 1953).
	c := topology.NewClos(2, 3, 3)
	if idx, err := routing.Replay(c, routing.FirstFit, routing.ClosAdversary()); err != nil || idx != -1 {
		t.Fatalf("m=2n−1 blocked at %d (err %v)", idx, err)
	}
	rng := rand.New(rand.NewSource(5))
	o := routing.NewClosOnline(c, routing.FirstFit)
	dst := make(map[int]int)
	for step := 0; step < 20000; step++ {
		s := rng.Intn(c.Ports())
		if d, busy := dst[s]; busy {
			_ = d
			if err := o.Disconnect(s); err != nil {
				t.Fatal(err)
			}
			delete(dst, s)
			continue
		}
		// Pick an idle output terminal.
		d := rng.Intn(c.Ports())
		idle := true
		for _, dd := range dst {
			if dd == d {
				idle = false
				break
			}
		}
		if !idle {
			continue
		}
		if _, err := o.Connect(s, d); err != nil {
			t.Fatalf("strict-sense network blocked at step %d: %v", step, err)
		}
		dst[s] = d
	}
}

func TestClosAdversaryBlocksBelowStrictSense(t *testing.T) {
	// m = 2n−2 = 2: the adversarial sequence blocks under first-fit.
	c := topology.NewClos(2, 2, 3)
	idx, err := routing.Replay(c, routing.FirstFit, routing.ClosAdversary())
	if err != nil {
		t.Fatal(err)
	}
	if idx != 4 {
		t.Fatalf("expected blocking at event 4, got %d", idx)
	}
}

func TestClosRearrangeableOfflineStillFitsPermutations(t *testing.T) {
	// Online first-fit at m = n can block a permutation loaded in an
	// unlucky order, while the offline edge-coloring router fits it —
	// the rearrangeable vs wide/strict-sense separation.
	c := topology.NewClos(2, 2, 3)
	rng := rand.New(rand.NewSource(11))
	blockedOnline := false
	for trial := 0; trial < 500 && !blockedOnline; trial++ {
		o := routing.NewClosOnline(c, routing.FirstFit)
		perm := rng.Perm(c.Ports())
		order := rng.Perm(c.Ports())
		for _, s := range order {
			if _, err := o.Connect(s, perm[s]); err != nil {
				blockedOnline = true
				break
			}
		}
	}
	if !blockedOnline {
		t.Fatal("online first-fit at m=n never blocked a permutation in 500 trials; expected blocking")
	}
}

func TestClosPoliciesDiffer(t *testing.T) {
	c := topology.NewClos(2, 4, 4)
	pack := routing.NewClosOnline(c, routing.Packing)
	least := routing.NewClosOnline(c, routing.LeastLoaded)
	// Two circuits from different switch pairs: packing reuses middle 0,
	// least-loaded spreads to middle 1.
	if m, _ := pack.Connect(0, 0); m != 0 {
		t.Fatal("packing first circuit")
	}
	if m, _ := pack.Connect(2, 4); m != 0 {
		t.Fatal("packing should reuse the busiest feasible middle")
	}
	if m, _ := least.Connect(0, 0); m != 0 {
		t.Fatal("least-loaded first circuit")
	}
	if m, _ := least.Connect(2, 4); m != 1 {
		t.Fatal("least-loaded should spread")
	}
	if routing.Packing.String() != "packing" || routing.FirstFit.String() != "first-fit" ||
		routing.LeastLoaded.String() != "least-loaded" {
		t.Fatal("policy names")
	}
}

func TestReplayRejectsMalformedSequences(t *testing.T) {
	c := topology.NewClos(2, 3, 3)
	// Disconnect of an idle terminal is malformed, not blocking.
	if _, err := routing.Replay(c, routing.FirstFit, []routing.ClosEvent{{Connect: false, S: 0}}); err == nil {
		t.Fatal("malformed teardown accepted")
	}
	// Connect to a busy output is malformed.
	seq := []routing.ClosEvent{
		{Connect: true, S: 0, D: 0},
		{Connect: true, S: 1, D: 0},
	}
	if _, err := routing.Replay(c, routing.FirstFit, seq); err == nil {
		t.Fatal("busy-output setup accepted")
	}
	// Connect from a busy input is malformed.
	seq = []routing.ClosEvent{
		{Connect: true, S: 0, D: 0},
		{Connect: true, S: 0, D: 1},
	}
	if _, err := routing.Replay(c, routing.FirstFit, seq); err == nil {
		t.Fatal("busy-input setup accepted")
	}
}

func TestPackingSurvivesWhereFirstFitBlocks(t *testing.T) {
	// On the specific adversarial sequence, packing at m = 2n−2 also
	// blocks (the sequence forces the same state), confirming the
	// sequence attacks the state, not the policy ordering.
	c := topology.NewClos(2, 2, 3)
	idx, err := routing.Replay(c, routing.Packing, routing.ClosAdversary())
	if err != nil {
		t.Fatal(err)
	}
	if idx == -1 {
		t.Fatal("packing at m=2n−2 unexpectedly survived the adversary")
	}
}
