package routing_test

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestBenesTopologyStructure(t *testing.T) {
	for k := 1; k <= 5; k++ {
		b := topology.NewBenes(k)
		if b.N != 1<<k || b.Stages() != 2*k-1 {
			t.Fatalf("k=%d: N=%d stages=%d", k, b.N, b.Stages())
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("k=0 should panic")
			}
		}()
		topology.NewBenes(0)
	}()
}

func TestBenesLoopingExhaustive(t *testing.T) {
	// Every permutation of B(2) (N=4, 4! = 24) and B(3) (N=8, 8! = 40320)
	// must route with edge-disjoint paths — rearrangeability, proven by
	// execution.
	for k := 1; k <= 3; k++ {
		b := topology.NewBenes(k)
		r := routing.NewBenesLooping(b)
		res := analysis.SweepExhaustive(r, b.N)
		if !res.Nonblocking() {
			t.Fatalf("k=%d: looping blocked %d/%d (err %v); first %v",
				k, res.Blocked, res.Tested, res.RouteErr, res.FirstBlocked)
		}
		if res.Tested != permutation.CountFull(b.N) {
			t.Fatalf("k=%d: tested %d", k, res.Tested)
		}
	}
}

func TestBenesLoopingRandomLarge(t *testing.T) {
	b := topology.NewBenes(6) // 64 terminals, 11 stages
	r := routing.NewBenesLooping(b)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		p := permutation.Random(rng, b.N)
		a, err := r.Route(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		rep := analysis.Check(a)
		if rep.HasContention() {
			t.Fatalf("trial %d: %v", trial, rep.ContentionError())
		}
		// Every path must have exactly stages+1 hops.
		for i := range a.Pairs {
			if got := a.Path(i).Len(); got != b.Stages()+1 {
				t.Fatalf("path length %d, want %d", got, b.Stages()+1)
			}
		}
	}
}

func TestBenesLoopingPartialPatterns(t *testing.T) {
	b := topology.NewBenes(3)
	r := routing.NewBenesLooping(b)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		p := permutation.RandomPartial(rng, b.N, 0.5)
		a, err := r.Route(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Pairs) != p.Size() {
			t.Fatalf("returned %d pairs, pattern has %d", len(a.Pairs), p.Size())
		}
		if analysis.Check(a).HasContention() {
			t.Fatal("partial pattern contends")
		}
	}
}

func TestBenesLoopingIdentityAndReversal(t *testing.T) {
	b := topology.NewBenes(4)
	r := routing.NewBenesLooping(b)
	for _, p := range []*permutation.Permutation{
		permutation.Identity(b.N),
		permutation.BitReversal(b.N),
		permutation.Shift(b.N, 5),
		permutation.Neighbor(b.N),
	} {
		a, err := r.Route(p)
		if err != nil {
			t.Fatal(err)
		}
		if analysis.Check(a).HasContention() {
			t.Fatalf("pattern %s contends", p)
		}
	}
}

func TestBenesLoopingWrongSize(t *testing.T) {
	b := topology.NewBenes(2)
	r := routing.NewBenesLooping(b)
	if _, err := r.Route(permutation.Identity(5)); err == nil {
		t.Fatal("wrong-size pattern accepted")
	}
	if r.Name() != "benes-looping" {
		t.Fatal("name")
	}
}

func TestBenesSwitchCostComparison(t *testing.T) {
	// §II context: Benes costs (2k−1)·N/2 2×2 switches — N log N scale —
	// versus the paper's 2-level nonblocking cost in larger switches.
	b := topology.NewBenes(4)
	if got := b.Net.NumSwitches(); got != 7*8 {
		t.Fatalf("B(16) switches = %d, want 56", got)
	}
}
