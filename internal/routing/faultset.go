package routing

import (
	"fmt"

	"repro/internal/permutation"
	"repro/internal/topology"
)

// This file promotes the degraded-mode schemes to first-class Routers over
// a topology.FailureView, so the fault campaign can drive all of them
// through the same sweep and simulation engines it uses on healthy
// fabrics.
//
// The global schemes (avoiding adaptive, spared deterministic, naive
// remap) pick one top switch per traffic class for every source switch at
// once, so they can only use switches whose entire trunk fan is healthy:
// a top with even one failed cable is excluded via view.TopIntact. That
// conservatism is what lets the resulting paths avoid failed links without
// per-pair link checks. The local-reroute scheme (localreroute.go) instead
// consults link health hop by hop.

// topOutage returns the top switches a global scheme must avoid: failed
// switches plus switches with any failed incident trunk.
func topOutage(f *topology.FoldedClos, view *topology.FailureView) map[int]bool {
	failed := make(map[int]bool)
	for t := 0; t < f.M; t++ {
		if !view.TopIntact(t) {
			failed[t] = true
		}
	}
	return failed
}

// checkPairsAlive rejects patterns that use a detached host (a host whose
// bottom switch failed): no route of any kind exists for such a pair.
func checkPairsAlive(view *topology.FailureView, p *permutation.Permutation) error {
	for _, pr := range p.Pairs() {
		if !view.HostAlive(pr.Src) || !view.HostAlive(pr.Dst) {
			return fmt.Errorf("routing: pair %d->%d uses a detached host (failed bottom switch)", pr.Src, pr.Dst)
		}
	}
	return nil
}

// pairCheckAlive is the per-pair form of checkPairsAlive for PairRouters.
func pairCheckAlive(view *topology.FailureView) func(src, dst int) error {
	return func(src, dst int) error {
		if !view.HostAlive(src) || !view.HostAlive(dst) {
			return fmt.Errorf("routing: pair %d->%d uses a detached host (failed bottom switch)", src, dst)
		}
		return nil
	}
}

// AvoidingAdaptive is NONBLOCKINGADAPTIVE's RouteAvoiding as a first-class
// Router: configuration blocks are renumbered over the intact top switches
// and the pattern fails when it needs more of them than remain.
type AvoidingAdaptive struct {
	ad     *NonblockingAdaptive
	view   *topology.FailureView
	failed map[int]bool
}

// NewAvoidingAdaptive builds the degraded adaptive router for the failure
// view.
func NewAvoidingAdaptive(f *topology.FoldedClos, view *topology.FailureView) (*AvoidingAdaptive, error) {
	ad, err := NewNonblockingAdaptive(f)
	if err != nil {
		return nil, err
	}
	return &AvoidingAdaptive{ad: ad, view: view, failed: topOutage(f, view)}, nil
}

// Name returns "adaptive-avoiding".
func (r *AvoidingAdaptive) Name() string { return "adaptive-avoiding" }

// Route plans the pattern and materializes paths over intact top switches
// only.
func (r *AvoidingAdaptive) Route(p *permutation.Permutation) (*Assignment, error) {
	if err := checkPairsAlive(r.view, p); err != nil {
		return nil, err
	}
	return r.ad.RouteAvoiding(p, r.failed)
}

// NewSparedDeterministicView builds the spared Theorem-3 scheme for a
// failure view: classes whose top switch is not intact move to healthy
// spares, and pairs with detached endpoints are rejected.
func NewSparedDeterministicView(f *topology.FoldedClos, view *topology.FailureView) (*SparedDeterministic, error) {
	sp, err := NewPaperDeterministicSpared(f, topOutage(f, view))
	if err != nil {
		return nil, err
	}
	sp.view = view
	return sp, nil
}

// NewNaiveRemapView builds the broken cyclic-fold remap for a failure
// view — the negative control every campaign includes.
func NewNaiveRemapView(f *topology.FoldedClos, view *topology.FailureView) (*FtreeSinglePath, error) {
	r, err := NewPaperDeterministicNaiveRemap(f, topOutage(f, view))
	if err != nil {
		return nil, err
	}
	r.PairCheck = pairCheckAlive(view)
	return r, nil
}
