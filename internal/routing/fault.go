package routing

import (
	"fmt"
	"sort"

	"repro/internal/permutation"
	"repro/internal/topology"
)

// This file extends the paper's schemes to degraded networks — top-level
// switches marked failed — an extension the paper's framework supports
// naturally and that separates the two routing classes sharply:
//
//   - NONBLOCKINGADAPTIVE only needs *some* (c+1)·n healthy top switches
//     per configuration. Renumbering the healthy switches preserves the
//     Class-DIFF structure (the renumbering is one bijection shared by
//     every source switch), so the algorithm stays nonblocking as long as
//     enough healthy switches remain.
//
//   - The Theorem-3 deterministic scheme dedicates top switch (i, j) to
//     the (i, j) traffic class; a failure leaves its class unroutable, and
//     any static remap onto surviving switches merges two classes on one
//     switch, violating Lemma 1 — the scheme is brittle without spare
//     structure. NewPaperDeterministicSpared shows the fix: provision
//     m = n²+s and remap failed switches onto dedicated spares; it remains
//     nonblocking for up to s failures and blocks beyond.

// RouteAvoiding runs NONBLOCKINGADAPTIVE using only healthy top-level
// switches: configuration blocks are laid out over the healthy switches in
// ascending order. It fails when the pattern needs more healthy switches
// than remain.
func (r *NonblockingAdaptive) RouteAvoiding(p *permutation.Permutation, failed map[int]bool) (*Assignment, error) {
	healthy := make([]int, 0, r.F.M)
	for t := 0; t < r.F.M; t++ {
		if !failed[t] {
			healthy = append(healthy, t)
		}
	}
	tops, pairs, confs, err := r.Plan(p)
	if err != nil {
		return nil, err
	}
	need := confs * (r.C + 1) * r.F.N
	if need > len(healthy) {
		return nil, fmt.Errorf("routing: pattern needs %d top switches, only %d healthy of m=%d",
			need, len(healthy), r.F.M)
	}
	return r.assemble(pairs, tops, confs, need, func(t int) int { return healthy[t] }), nil
}

// SparedDeterministic is the Theorem-3 scheme hardened with spare top
// switches: ftree(n+m, r) with m = n²+s. Traffic class (i, j) normally
// uses top switch i·n+j; when that switch is failed the class moves, whole,
// to a dedicated spare. Because each class still owns a private top switch,
// Lemma 1 is preserved and the network remains nonblocking for up to s
// simultaneous failures.
type SparedDeterministic struct {
	F *topology.FoldedClos
	// remap[class] is the physical top switch serving the class.
	remap []int
	// failures records the failed switch set the remap was built for.
	failures map[int]bool
	// view, when non-nil (NewSparedDeterministicView), rejects pairs
	// whose endpoint host is detached by a bottom-switch failure.
	view *topology.FailureView
}

// NewPaperDeterministicSpared builds the hardened router for the failure
// set. It requires m ≥ n² and errors when the failures exhaust the spares
// (a class would have to share a switch, which provably blocks).
func NewPaperDeterministicSpared(f *topology.FoldedClos, failed map[int]bool) (*SparedDeterministic, error) {
	n2 := f.N * f.N
	if f.M < n2 {
		return nil, fmt.Errorf("routing: spared scheme needs m >= n² (%d >= %d)", f.M, n2)
	}
	// Spares are the switches beyond the first n², healthy ones first.
	var spares []int
	for t := n2; t < f.M; t++ {
		if !failed[t] {
			spares = append(spares, t)
		}
	}
	sort.Ints(spares)
	healthySpares := len(spares)
	remap := make([]int, n2)
	for class := 0; class < n2; class++ {
		if !failed[class] {
			remap[class] = class
			continue
		}
		if len(spares) == 0 {
			// Report the spares actually available: failed spares don't
			// count, so f.M-n2 would overstate the budget whenever a
			// spare is itself failed.
			return nil, fmt.Errorf("routing: %d failures exceed the %d healthy spare top switches (%d provisioned)",
				countTrue(failed), healthySpares, f.M-n2)
		}
		remap[class] = spares[0]
		spares = spares[1:]
	}
	cp := make(map[int]bool, len(failed))
	for k, v := range failed {
		if v {
			cp[k] = true
		}
	}
	return &SparedDeterministic{F: f, remap: remap, failures: cp}, nil
}

func countTrue(m map[int]bool) int {
	c := 0
	for _, v := range m {
		if v {
			c++
		}
	}
	return c
}

// Name returns "paper-deterministic-spared".
func (r *SparedDeterministic) Name() string { return "paper-deterministic-spared" }

// PathFor routes one SD pair through its class's (possibly remapped) top
// switch.
func (r *SparedDeterministic) PathFor(src, dst int) (topology.Path, error) {
	n := r.F.N
	if src < 0 || src >= r.F.Ports() || dst < 0 || dst >= r.F.Ports() {
		return topology.Path{}, fmt.Errorf("host index out of range: %d or %d", src, dst)
	}
	if r.view != nil {
		if !r.view.HostAlive(src) || !r.view.HostAlive(dst) {
			return topology.Path{}, fmt.Errorf("routing: pair %d->%d uses a detached host (failed bottom switch)", src, dst)
		}
	}
	if src == dst {
		return topology.Path{Nodes: []topology.NodeID{topology.NodeID(src)}}, nil
	}
	if src/n == dst/n {
		return r.F.RouteVia(topology.NodeID(src), topology.NodeID(dst), 0), nil
	}
	class := (src%n)*n + dst%n
	return r.F.RouteVia(topology.NodeID(src), topology.NodeID(dst), r.remap[class]), nil
}

// Route assigns a path to every SD pair of the pattern.
func (r *SparedDeterministic) Route(p *permutation.Permutation) (*Assignment, error) {
	return routePairwise(r.F.Net, p, func(s, d int) ([]topology.Path, error) {
		path, err := r.PathFor(s, d)
		if err != nil {
			return nil, err
		}
		return []topology.Path{path}, nil
	})
}

// UsesFailedSwitch reports whether any remapped class lands on a failed
// switch (always false for a successfully constructed router; exposed for
// tests and diagnostics).
func (r *SparedDeterministic) UsesFailedSwitch() bool {
	for _, t := range r.remap {
		if r.failures[t] {
			return true
		}
	}
	return false
}

// NewPaperDeterministicNaiveRemap is the *broken* failure response the
// spared scheme exists to avoid: fold a failed class onto the next healthy
// switch in cyclic order, sharing it with that switch's own class. The
// result violates Lemma 1 and blocks — used by experiments to demonstrate
// why deterministic fault tolerance needs dedicated spares.
func NewPaperDeterministicNaiveRemap(f *topology.FoldedClos, failed map[int]bool) (*FtreeSinglePath, error) {
	n2 := f.N * f.N
	if f.M < n2 {
		return nil, fmt.Errorf("routing: naive remap needs m >= n²")
	}
	healthyCount := 0
	for t := 0; t < n2; t++ {
		if !failed[t] {
			healthyCount++
		}
	}
	if healthyCount == 0 {
		return nil, fmt.Errorf("routing: every class switch failed")
	}
	n := f.N
	return &FtreeSinglePath{
		F:          f,
		RouterName: "paper-deterministic-naive-remap",
		TopChoice: func(src, dst int) int {
			t := (src%n)*n + dst%n
			for failed[t] {
				t = (t + 1) % n2
			}
			return t
		},
	}, nil
}
