package routing

import (
	"errors"
	"fmt"

	"repro/internal/topology"
)

// ErrPatternDependent is returned by BuildRouteTable for routers whose
// per-pair paths may depend on the traffic pattern (adaptive, global
// rearrangeable): their link sets cannot be precomputed per pair, so
// verification must route every pattern from scratch.
var ErrPatternDependent = errors.New("routing: per-pair link sets are pattern-dependent and cannot be cached")

// RouteTable is a precomputed all-pairs link-set cache in CSR layout: one
// flat backing array of link IDs plus an offsets array indexed by
// src*hosts+dst, so the link set of any SD pair is a zero-allocation slice
// view obtained with two array reads and no routing work. It is the route
// layer of the incremental (delta) verification engine: exhaustive sweeps
// route each of the n×(n−1) pairs exactly once at table-build time instead
// of once per permutation.
//
// Per-pair lists are deduplicated at build time (a multipath set may cross
// the same link on several paths, but contention accounting loads each
// link once per pair — the §IV.B rule), so consumers may add and subtract
// span entries as ±1 load updates without epoch marks. Entry order is
// first-occurrence order of the underlying router's link stream.
//
// A RouteTable is immutable after construction and therefore safe for
// concurrent readers; parallel sweeps share one table across workers.
type RouteTable struct {
	hosts int
	// offs[s*hosts+d] .. offs[s*hosts+d+1] delimit pair (s, d)'s span in
	// links. Self-pairs and intra-host pairs occupy empty spans.
	offs     []int32
	links    []topology.LinkID
	numLinks int
	name     string
}

// pairLinkAppendFunc adapts r to the AppendPairLinks shape, preferring the
// allocation-free PairLinkAppender fast path and falling back to
// materialized PathsFor/PathFor output (build-time only, so the
// allocations are paid once). Routers implementing none of the pairwise
// interfaces are pattern-dependent by contract and are rejected.
func pairLinkAppendFunc(r Router) (func(src, dst int, buf []topology.LinkID) ([]topology.LinkID, error), error) {
	switch rr := r.(type) {
	case PairLinkAppender:
		return rr.AppendPairLinks, nil
	case MultiPairRouter:
		return func(src, dst int, buf []topology.LinkID) ([]topology.LinkID, error) {
			paths, err := rr.PathsFor(src, dst)
			if err != nil {
				return buf, err
			}
			for _, p := range paths {
				buf = append(buf, p.Links...)
			}
			return buf, nil
		}, nil
	case PairRouter:
		return func(src, dst int, buf []topology.LinkID) ([]topology.LinkID, error) {
			p, err := rr.PathFor(src, dst)
			if err != nil {
				return buf, err
			}
			return append(buf, p.Links...), nil
		}, nil
	}
	return nil, ErrPatternDependent
}

// BuildRouteTable precomputes every SD pair's deduplicated link set for a
// router with pattern-independent paths (PairLinkAppender, MultiPairRouter
// or PairRouter — checked in that order). It returns ErrPatternDependent
// for routers with none of those interfaces, and the first per-pair
// routing failure, in ascending (src, dst) order, wrapped exactly as the
// routing layer wraps it ("routing pair s->d: ...").
func BuildRouteTable(r Router, hosts int) (*RouteTable, error) {
	if hosts < 0 {
		return nil, fmt.Errorf("routing: negative host count %d", hosts)
	}
	appendLinks, err := pairLinkAppendFunc(r)
	if err != nil {
		return nil, err
	}
	t := &RouteTable{
		hosts: hosts,
		offs:  make([]int32, hosts*hosts+1),
		links: make([]topology.LinkID, 0, hosts*hosts*4),
		name:  r.Name(),
	}
	var (
		buf   []topology.LinkID
		seen  []uint32 // seen[l] == epoch marks l as already in the current pair's span
		epoch uint32
	)
	idx := 0
	for s := 0; s < hosts; s++ {
		for d := 0; d < hosts; d++ {
			buf, err = appendLinks(s, d, buf[:0])
			if err != nil {
				return nil, fmt.Errorf("routing pair %d->%d: %w", s, d, err)
			}
			epoch++
			for _, l := range buf {
				if l < 0 {
					return nil, fmt.Errorf("routing pair %d->%d: invalid link id %d", s, d, l)
				}
				if int(l) >= len(seen) {
					grown := make([]uint32, int(l)+1)
					copy(grown, seen)
					seen = grown
				}
				if seen[l] == epoch {
					continue
				}
				seen[l] = epoch
				t.links = append(t.links, l)
				if int(l)+1 > t.numLinks {
					t.numLinks = int(l) + 1
				}
			}
			idx++
			t.offs[idx] = int32(len(t.links))
		}
	}
	return t, nil
}

// Hosts reports the endpoint count the table was built for.
func (t *RouteTable) Hosts() int { return t.hosts }

// NumLinks is one past the largest link ID any pair references — the size
// consumers need for flat per-link state (zero when no pair crosses any
// link).
func (t *RouteTable) NumLinks() int { return t.numLinks }

// RouterName identifies the routing scheme the table caches.
func (t *RouteTable) RouterName() string { return t.name }

// Entries reports the total number of (pair, link) incidences stored.
func (t *RouteTable) Entries() int { return len(t.links) }

// PairLinks returns pair (src, dst)'s deduplicated link set as a view into
// the shared backing array. The slice must not be modified. Indices are
// unchecked beyond the usual slice bounds: both must be in [0, Hosts()).
func (t *RouteTable) PairLinks(src, dst int) []topology.LinkID {
	i := src*t.hosts + dst
	return t.links[t.offs[i]:t.offs[i+1]]
}
