package routing

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/topology"
)

// ErrPatternDependent is returned by BuildRouteTable for routers whose
// per-pair paths may depend on the traffic pattern (adaptive, global
// rearrangeable): their link sets cannot be precomputed per pair, so
// verification must route every pattern from scratch.
var ErrPatternDependent = errors.New("routing: per-pair link sets are pattern-dependent and cannot be cached")

// ErrRouteTableTooLarge is returned (wrapped) by BuildRouteTable when the
// total (pair, link) incidence count exceeds what the int32 CSR offsets
// can address. Without the guard the offset would silently wrap negative
// and every later pair's span would read garbage; with it, callers fall
// back to the per-pattern oracle engines exactly as they do for
// pattern-dependent routers.
var ErrRouteTableTooLarge = errors.New("routing: route table exceeds int32 CSR offset range")

// maxRouteTableEntries is the largest (pair, link) incidence count the
// int32 offsets array can delimit. A variable so the overflow guard can be
// exercised in tests without materializing a >2 GiB table.
var maxRouteTableEntries = math.MaxInt32

// routeTableStartEpoch is the dedup scratch's initial generation counter —
// always zero outside tests, which raise it to force an epoch wrap within
// a small build.
var routeTableStartEpoch uint32

// RouteTable is a precomputed all-pairs link-set cache in CSR layout: one
// flat backing array of link IDs plus an offsets array indexed by
// src*hosts+dst, so the link set of any SD pair is a zero-allocation slice
// view obtained with two array reads and no routing work. It is the route
// layer of the incremental (delta) verification engine: exhaustive sweeps
// route each of the n×(n−1) pairs exactly once at table-build time instead
// of once per permutation.
//
// Per-pair lists are deduplicated at build time (a multipath set may cross
// the same link on several paths, but contention accounting loads each
// link once per pair — the §IV.B rule), so consumers may add and subtract
// span entries as ±1 load updates without epoch marks. Entry order is
// first-occurrence order of the underlying router's link stream.
//
// A RouteTable is immutable after construction and therefore safe for
// concurrent readers; parallel sweeps share one table across workers.
type RouteTable struct {
	hosts int
	// offs[s*hosts+d] .. offs[s*hosts+d+1] delimit pair (s, d)'s span in
	// links. Self-pairs and intra-host pairs occupy empty spans.
	offs     []int32
	links    []topology.LinkID
	numLinks int
	name     string
}

// pairLinkAppendFunc adapts r to the AppendPairLinks shape, preferring the
// allocation-free PairLinkAppender fast path and falling back to
// materialized PathsFor/PathFor output (build-time only, so the
// allocations are paid once). Routers implementing none of the pairwise
// interfaces are pattern-dependent by contract and are rejected.
func pairLinkAppendFunc(r Router) (func(src, dst int, buf []topology.LinkID) ([]topology.LinkID, error), error) {
	switch rr := r.(type) {
	case PairLinkAppender:
		return rr.AppendPairLinks, nil
	case MultiPairRouter:
		return func(src, dst int, buf []topology.LinkID) ([]topology.LinkID, error) {
			paths, err := rr.PathsFor(src, dst)
			if err != nil {
				return buf, err
			}
			for _, p := range paths {
				buf = append(buf, p.Links...)
			}
			return buf, nil
		}, nil
	case PairRouter:
		return func(src, dst int, buf []topology.LinkID) ([]topology.LinkID, error) {
			p, err := rr.PathFor(src, dst)
			if err != nil {
				return buf, err
			}
			return append(buf, p.Links...), nil
		}, nil
	}
	return nil, ErrPatternDependent
}

// BuildRouteTable precomputes every SD pair's deduplicated link set for a
// router with pattern-independent paths (PairLinkAppender, MultiPairRouter
// or PairRouter — checked in that order). It returns ErrPatternDependent
// for routers with none of those interfaces, and the first per-pair
// routing failure, in ascending (src, dst) order, wrapped exactly as the
// routing layer wraps it ("routing pair s->d: ...").
func BuildRouteTable(r Router, hosts int) (*RouteTable, error) {
	if hosts < 0 {
		return nil, fmt.Errorf("routing: negative host count %d", hosts)
	}
	appendLinks, err := pairLinkAppendFunc(r)
	if err != nil {
		return nil, err
	}
	t := &RouteTable{
		hosts: hosts,
		offs:  make([]int32, hosts*hosts+1),
		links: make([]topology.LinkID, 0, hosts*hosts*4),
		name:  r.Name(),
	}
	var buf []topology.LinkID
	dedup := linkDedup{epoch: routeTableStartEpoch}
	idx := 0
	for s := 0; s < hosts; s++ {
		for d := 0; d < hosts; d++ {
			buf, err = appendLinks(s, d, buf[:0])
			if err != nil {
				return nil, fmt.Errorf("routing pair %d->%d: %w", s, d, err)
			}
			dedup.nextPair()
			for _, l := range buf {
				if l < 0 {
					return nil, fmt.Errorf("routing pair %d->%d: invalid link id %d", s, d, l)
				}
				if !dedup.firstSight(l) {
					continue
				}
				t.links = append(t.links, l)
				if int(l)+1 > t.numLinks {
					t.numLinks = int(l) + 1
				}
			}
			if len(t.links) > maxRouteTableEntries {
				return nil, fmt.Errorf("routing pair %d->%d: %d entries: %w",
					s, d, len(t.links), ErrRouteTableTooLarge)
			}
			idx++
			t.offs[idx] = int32(len(t.links))
		}
	}
	return t, nil
}

// linkDedup is the per-pair link-deduplication scratch: seen[l] == epoch
// marks link l as already present in the current pair's span, so starting
// a new pair is one counter increment instead of clearing the slice.
type linkDedup struct {
	seen  []uint32
	epoch uint32
}

// nextPair opens a fresh dedup generation. When the epoch counter wraps at
// 2^32 the zero value would alias every never-seen entry (and any entry
// last marked exactly 2^32 pairs ago), so the scratch is cleared and the
// epoch restarts at 1 — the same state as a fresh scratch.
func (d *linkDedup) nextPair() {
	d.epoch++
	if d.epoch == 0 {
		for i := range d.seen {
			d.seen[i] = 0
		}
		d.epoch = 1
	}
}

// firstSight marks link l in the current generation and reports whether
// this is its first occurrence within the pair. l must be non-negative.
func (d *linkDedup) firstSight(l topology.LinkID) bool {
	if int(l) >= len(d.seen) {
		grown := make([]uint32, int(l)+1)
		copy(grown, d.seen)
		d.seen = grown
	}
	if d.seen[l] == d.epoch {
		return false
	}
	d.seen[l] = d.epoch
	return true
}

// Hosts reports the endpoint count the table was built for.
func (t *RouteTable) Hosts() int { return t.hosts }

// NumLinks is one past the largest link ID any pair references — the size
// consumers need for flat per-link state (zero when no pair crosses any
// link).
func (t *RouteTable) NumLinks() int { return t.numLinks }

// RouterName identifies the routing scheme the table caches.
func (t *RouteTable) RouterName() string { return t.name }

// Entries reports the total number of (pair, link) incidences stored.
func (t *RouteTable) Entries() int { return len(t.links) }

// PairLinks returns pair (src, dst)'s deduplicated link set as a view into
// the shared backing array. The slice must not be modified. Indices are
// unchecked beyond the usual slice bounds: both must be in [0, Hosts()).
func (t *RouteTable) PairLinks(src, dst int) []topology.LinkID {
	i := src*t.hosts + dst
	return t.links[t.offs[i]:t.offs[i+1]]
}
