package routing

import (
	"fmt"

	"repro/internal/permutation"
	"repro/internal/topology"
)

// BenesLooping routes permutations on the Benes network B(k) with the
// classic looping algorithm ([3]): at each recursion level the connections
// are 2-colored by alternating walks so that the two connections entering
// every input-stage switch use different sub-networks and the two leaving
// every output-stage switch arrive from different sub-networks; each half
// then recurses. The result is edge-disjoint paths for *any* permutation —
// the constructive proof that m = n suffices for rearrangeable networks,
// requiring exactly the global pattern knowledge the paper's
// computer-communication model rules out.
type BenesLooping struct {
	B *topology.Benes
}

// NewBenesLooping builds the router.
func NewBenesLooping(b *topology.Benes) *BenesLooping { return &BenesLooping{B: b} }

// Name returns "benes-looping".
func (r *BenesLooping) Name() string { return "benes-looping" }

// Route assigns edge-disjoint paths: pattern sources are input terminals,
// destinations output terminals. Partial permutations are completed
// internally (idle inputs matched to idle outputs in order) so the
// recursion always sees full permutations; only requested pairs are
// returned.
func (r *BenesLooping) Route(p *permutation.Permutation) (*Assignment, error) {
	n := r.B.N
	if p.N() != n {
		return nil, fmt.Errorf("routing: pattern over %d endpoints, Benes has %d terminals", p.N(), n)
	}
	full := make([]int, n)
	usedDst := make([]bool, n)
	for i := range full {
		full[i] = -1
	}
	for _, pr := range p.Pairs() {
		full[pr.Src] = pr.Dst
		usedDst[pr.Dst] = true
	}
	next := 0
	for i := range full {
		if full[i] == -1 {
			for usedDst[next] {
				next++
			}
			full[i] = next
			usedDst[next] = true
		}
	}

	lines, err := loopSolve(r.B.K, full)
	if err != nil {
		return nil, err
	}

	pairs := p.Pairs()
	a := &Assignment{Net: r.B.Net, Pairs: pairs, PathSets: make([][]topology.Path, len(pairs))}
	for idx, pr := range pairs {
		nodes := make([]topology.NodeID, 0, r.B.Stages()+2)
		nodes = append(nodes, r.B.InTerminal(pr.Src))
		for s := 0; s < r.B.Stages(); s++ {
			nodes = append(nodes, r.B.SwitchID(s, lines[pr.Src][s]/2))
		}
		nodes = append(nodes, r.B.OutTerminal(pr.Dst))
		path, err := r.B.Net.PathBetween(nodes...)
		if err != nil {
			return nil, fmt.Errorf("routing: looping produced a broken path for %d->%d: %w", pr.Src, pr.Dst, err)
		}
		a.PathSets[idx] = []topology.Path{path}
	}
	return a, nil
}

// loopSolve routes the full permutation perm over 2^k terminals and
// returns, for each connection i, the wire (line) it occupies entering
// each of the 2k−1 stages, in the coordinates of this (sub-)instance.
//
// Recursion invariant (matching topology.Benes's wiring): sub-network
// c ∈ {0, 1} of an instance occupying a line block corresponds to the
// half-block [c·N/2, (c+1)·N/2), the stage-0 output wire (i/2)·2+c is
// unshuffled to line c·N/2 + i/2, and the sub-instance's final output
// wire c·N/2 + d is shuffled to line 2d + c of the last stage.
func loopSolve(k int, perm []int) ([][]int, error) {
	n := 1 << k
	stages := 2*k - 1
	res := make([][]int, n)
	if k == 1 {
		// One 2×2 switch: both connections enter on their input line.
		for i := 0; i < n; i++ {
			res[i] = []int{i}
		}
		return res, nil
	}

	color, err := loopColor(perm)
	if err != nil {
		return nil, err
	}

	// Build the two sub-permutations over input/output switch indices.
	half := n / 2
	subPerm := [2][]int{make([]int, half), make([]int, half)}
	connAt := [2][]int{make([]int, half), make([]int, half)}
	for i := 0; i < n; i++ {
		c := color[i]
		subPerm[c][i/2] = perm[i] / 2
		connAt[c][i/2] = i
	}
	var subRes [2][][]int
	for c := 0; c < 2; c++ {
		sr, err := loopSolve(k-1, subPerm[c])
		if err != nil {
			return nil, err
		}
		subRes[c] = sr
	}
	for i := 0; i < n; i++ {
		c := color[i]
		a := i / 2
		seq := make([]int, stages)
		seq[0] = i
		sub := subRes[c][a]
		for s := 0; s < len(sub); s++ {
			seq[1+s] = c*half + sub[s]
		}
		seq[stages-1] = (perm[i]/2)*2 + c
		res[i] = seq
	}
	return res, nil
}

// loopColor 2-colors the connections of a full permutation so that input
// partners (2a, 2a+1) and output partners (the two connections addressing
// one output switch) always receive different colors — the looping walk.
func loopColor(perm []int) ([]int, error) {
	n := len(perm)
	// outMate[i] is the connection sharing i's output switch.
	byOutSwitch := make([][2]int, n/2)
	fill := make([]int, n/2)
	for i := 0; i < n; i++ {
		sw := perm[i] / 2
		byOutSwitch[sw][fill[sw]] = i
		fill[sw]++
	}
	for sw, c := range fill {
		if c != 2 {
			return nil, fmt.Errorf("routing: output switch %d has %d connections; permutation not full", sw, c)
		}
	}
	outMate := func(i int) int {
		pair := byOutSwitch[perm[i]/2]
		if pair[0] == i {
			return pair[1]
		}
		return pair[0]
	}

	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	for start := 0; start < n; start++ {
		if color[start] != -1 {
			continue
		}
		// Alternate: color i with c; its output mate gets 1−c; that
		// mate's input partner gets c again; repeat until the cycle
		// closes.
		i, c := start, 0
		for color[i] == -1 {
			color[i] = c
			j := outMate(i)
			if color[j] == -1 {
				color[j] = 1 - c
			} else if color[j] != 1-c {
				return nil, fmt.Errorf("routing: looping inconsistency at connection %d", j)
			}
			i = j ^ 1 // input partner of j
		}
		if color[i] != c {
			return nil, fmt.Errorf("routing: looping cycle closed inconsistently at %d", i)
		}
	}
	// Verify both constraint families (cheap and catches wiring bugs).
	for a := 0; a < n/2; a++ {
		if color[2*a] == color[2*a+1] {
			return nil, fmt.Errorf("routing: input switch %d not split across sub-networks", a)
		}
	}
	for sw := 0; sw < n/2; sw++ {
		if color[byOutSwitch[sw][0]] == color[byOutSwitch[sw][1]] {
			return nil, fmt.Errorf("routing: output switch %d not split across sub-networks", sw)
		}
	}
	return color, nil
}
