package routing

import (
	"fmt"

	"repro/internal/topology"
)

// ClosPolicy selects the middle switch for a new connection in the online
// circuit-switching model of the classic literature (§II): connections are
// set up and torn down one at a time by a centralized controller that sees
// the current state but not the future.
type ClosPolicy uint8

const (
	// FirstFit picks the lowest-numbered feasible middle switch. Clos
	// [2]: with m ≥ 2n−1 no sequence of setups and teardowns can block
	// (strict-sense nonblocking); with m = 2n−2 an adversarial sequence
	// blocks.
	FirstFit ClosPolicy = iota
	// Packing picks the feasible middle switch already carrying the most
	// connections (ties toward lower index) — the wide-sense strategy of
	// Yang and Wang [16].
	Packing
	// LeastLoaded picks the feasible middle switch with the fewest
	// connections — the intuitive but provably inferior strategy.
	LeastLoaded
)

// String names the policy.
func (p ClosPolicy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case Packing:
		return "packing"
	case LeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("ClosPolicy(%d)", uint8(p))
	}
}

// ClosOnline is an online connection manager for Clos(n, m, r): the
// telephone-switching model under which the §II conditions were proven.
// It maintains the set of active circuits and serves Connect/Disconnect
// requests with a configurable middle-switch selection policy.
type ClosOnline struct {
	C      *topology.Clos
	Policy ClosPolicy

	inUse   [][]bool    // [input switch][middle] occupied
	outUse  [][]bool    // [output switch][middle] occupied
	midLoad []int       // connections per middle switch
	active  map[int]int // input terminal -> middle switch
	dstOf   map[int]int // input terminal -> output terminal
	dstBusy map[int]int // output terminal -> input terminal
}

// NewClosOnline builds an idle connection manager.
func NewClosOnline(c *topology.Clos, policy ClosPolicy) *ClosOnline {
	o := &ClosOnline{
		C:       c,
		Policy:  policy,
		inUse:   make([][]bool, c.R),
		outUse:  make([][]bool, c.R),
		midLoad: make([]int, c.M),
		active:  make(map[int]int),
		dstOf:   make(map[int]int),
		dstBusy: make(map[int]int),
	}
	for i := 0; i < c.R; i++ {
		o.inUse[i] = make([]bool, c.M)
		o.outUse[i] = make([]bool, c.M)
	}
	return o
}

// Active reports the number of established circuits.
func (o *ClosOnline) Active() int { return len(o.active) }

// Connect establishes a circuit from input terminal s to output terminal
// d, returning the middle switch used. It fails when either terminal is
// busy or — the blocking event the nonblocking conditions quantify — no
// middle switch is free on both the input and output sides.
func (o *ClosOnline) Connect(s, d int) (int, error) {
	if s < 0 || s >= o.C.Ports() || d < 0 || d >= o.C.Ports() {
		return -1, fmt.Errorf("routing: terminal out of range: %d or %d", s, d)
	}
	if _, busy := o.active[s]; busy {
		return -1, fmt.Errorf("routing: input terminal %d already connected", s)
	}
	if prev, busy := o.dstBusy[d]; busy {
		return -1, fmt.Errorf("routing: output terminal %d already connected (to input %d)", d, prev)
	}
	in, out := s/o.C.N, d/o.C.N
	best := -1
	for j := 0; j < o.C.M; j++ {
		if o.inUse[in][j] || o.outUse[out][j] {
			continue
		}
		switch o.Policy {
		case FirstFit:
			best = j
		case Packing:
			if best == -1 || o.midLoad[j] > o.midLoad[best] {
				best = j
			}
		case LeastLoaded:
			if best == -1 || o.midLoad[j] < o.midLoad[best] {
				best = j
			}
		}
		if o.Policy == FirstFit && best != -1 {
			break
		}
	}
	if best == -1 {
		return -1, fmt.Errorf("routing: BLOCKED: no middle switch free for %d->%d (input switch %d, output switch %d)", s, d, in, out)
	}
	o.inUse[in][best] = true
	o.outUse[out][best] = true
	o.midLoad[best]++
	o.active[s] = best
	o.dstOf[s] = d
	o.dstBusy[d] = s
	return best, nil
}

// Disconnect tears down the circuit originating at input terminal s.
func (o *ClosOnline) Disconnect(s int) error {
	mid, ok := o.active[s]
	if !ok {
		return fmt.Errorf("routing: input terminal %d has no circuit", s)
	}
	d := o.dstOf[s]
	in, out := s/o.C.N, d/o.C.N
	o.inUse[in][mid] = false
	o.outUse[out][mid] = false
	o.midLoad[mid]--
	delete(o.active, s)
	delete(o.dstOf, s)
	delete(o.dstBusy, d)
	return nil
}

// PathOf returns the circuit path of input terminal s.
func (o *ClosOnline) PathOf(s int) (topology.Path, error) {
	mid, ok := o.active[s]
	if !ok {
		return topology.Path{}, fmt.Errorf("routing: input terminal %d has no circuit", s)
	}
	return o.C.RouteVia(s, o.dstOf[s], mid), nil
}

// Reset tears down every circuit.
func (o *ClosOnline) Reset() {
	for s := range o.active {
		// Disconnect never fails for an active terminal.
		_ = o.Disconnect(s)
	}
}

// ClosEvent is one step of an online request sequence.
type ClosEvent struct {
	// Connect distinguishes setups from teardowns.
	Connect bool
	// S is the input terminal; D the output terminal (setups only).
	S, D int
}

// Replay applies a sequence of events to a fresh manager and returns the
// index of the first blocked setup, or −1 when the whole sequence fits.
// Terminal-busy errors fail loudly: they indicate a malformed sequence,
// not blocking.
func Replay(c *topology.Clos, policy ClosPolicy, events []ClosEvent) (int, error) {
	o := NewClosOnline(c, policy)
	for i, e := range events {
		if !e.Connect {
			if err := o.Disconnect(e.S); err != nil {
				return -1, fmt.Errorf("routing: event %d: %w", i, err)
			}
			continue
		}
		if _, err := o.Connect(e.S, e.D); err != nil {
			if _, busyIn := o.active[e.S]; busyIn {
				return -1, fmt.Errorf("routing: event %d: %w", i, err)
			}
			if _, busyOut := o.dstBusy[e.D]; busyOut {
				return -1, fmt.Errorf("routing: event %d: %w", i, err)
			}
			return i, nil // genuine blocking
		}
	}
	return -1, nil
}

// ClosAdversary returns the classic sequence demonstrating that
// m = 2n−2 blocks under first-fit for Clos(2, 2, r), r ≥ 3:
//
//	a1→x1, b1→y1, b2→y2, teardown b1→y1, a2→y1  ← blocked
//
// Input switch A then occupies middle 0, output switch Y middle 1, and the
// new circuit a2→y1 finds no middle free on both sides even though both
// terminals are idle. Generalizing to arbitrary n is possible but the
// n = 2 instance suffices to separate m = 2n−2 from m = 2n−1 = 3.
func ClosAdversary() []ClosEvent {
	// Terminals for Clos(2, m, 3): input switch A = {0,1}, B = {2,3};
	// output switch X = {0,1}, Y = {2,3}.
	return []ClosEvent{
		{Connect: true, S: 0, D: 0}, // a1→x1 via mid 0
		{Connect: true, S: 2, D: 2}, // b1→y1 via mid 0
		{Connect: true, S: 3, D: 3}, // b2→y2 via mid 1
		{Connect: false, S: 2},      // teardown b1→y1
		{Connect: true, S: 1, D: 2}, // a2→y1: mid0 busy at A, mid1 busy at Y
	}
}
