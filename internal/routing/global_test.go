package routing_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

func checkColoring(t *testing.T, nLeft, nRight int, edges [][2]int, colors []int, maxDeg int) {
	t.Helper()
	if len(colors) != len(edges) {
		t.Fatalf("colors %d, edges %d", len(colors), len(edges))
	}
	usedL := map[[2]int]bool{}
	usedR := map[[2]int]bool{}
	for i, e := range edges {
		c := colors[i]
		if c < 0 || c >= maxDeg {
			t.Fatalf("edge %d color %d out of [0,%d)", i, c, maxDeg)
		}
		if usedL[[2]int{e[0], c}] {
			t.Fatalf("left vertex %d repeats color %d", e[0], c)
		}
		if usedR[[2]int{e[1], c}] {
			t.Fatalf("right vertex %d repeats color %d", e[1], c)
		}
		usedL[[2]int{e[0], c}] = true
		usedR[[2]int{e[1], c}] = true
	}
}

func TestEdgeColorSimple(t *testing.T) {
	edges := [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	colors, err := routing.EdgeColorBipartite(2, 2, edges)
	if err != nil {
		t.Fatal(err)
	}
	checkColoring(t, 2, 2, edges, colors, 2)
}

func TestEdgeColorMultigraph(t *testing.T) {
	// Parallel edges force distinct colors.
	edges := [][2]int{{0, 0}, {0, 0}, {0, 0}}
	colors, err := routing.EdgeColorBipartite(1, 1, edges)
	if err != nil {
		t.Fatal(err)
	}
	checkColoring(t, 1, 1, edges, colors, 3)
}

func TestEdgeColorEmptyAndErrors(t *testing.T) {
	colors, err := routing.EdgeColorBipartite(3, 3, nil)
	if err != nil || len(colors) != 0 {
		t.Fatal("empty graph should color trivially")
	}
	if _, err := routing.EdgeColorBipartite(2, 2, [][2]int{{2, 0}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := routing.EdgeColorBipartite(2, 2, [][2]int{{0, -1}}); err == nil {
		t.Fatal("negative vertex accepted")
	}
}

func TestEdgeColorRandomQuick(t *testing.T) {
	f := func(seed int64, szL, szR, ne uint8) bool {
		nl := int(szL%6) + 1
		nr := int(szR%6) + 1
		n := int(ne % 40)
		rng := rand.New(rand.NewSource(seed))
		edges := make([][2]int, n)
		deg := 0
		dl := make([]int, nl)
		dr := make([]int, nr)
		for i := range edges {
			edges[i] = [2]int{rng.Intn(nl), rng.Intn(nr)}
			dl[edges[i][0]]++
			dr[edges[i][1]]++
			if dl[edges[i][0]] > deg {
				deg = dl[edges[i][0]]
			}
			if dr[edges[i][1]] > deg {
				deg = dr[edges[i][1]]
			}
		}
		colors, err := routing.EdgeColorBipartite(nl, nr, edges)
		if err != nil {
			return false
		}
		usedL := map[[2]int]bool{}
		usedR := map[[2]int]bool{}
		for i, e := range edges {
			c := colors[i]
			if c < 0 || c >= deg {
				return false
			}
			if usedL[[2]int{e[0], c}] || usedR[[2]int{e[1], c}] {
				return false
			}
			usedL[[2]int{e[0], c}] = true
			usedR[[2]int{e[1], c}] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalRearrangeableBenesCondition(t *testing.T) {
	// m = n suffices under centralized control (Benes): every permutation
	// of ftree(3+3, 4) routes contention-free.
	f := topology.NewFoldedClos(3, 3, 4)
	r := routing.NewGlobalRearrangeable(f)
	res := analysis.SweepRandom(r, f.Ports(), 300, 21)
	if !res.Nonblocking() {
		t.Fatalf("m=n blocked %d/%d (err %v)", res.Blocked, res.Tested, res.RouteErr)
	}
	// Exhaustive on a tiny instance.
	f2 := topology.NewFoldedClos(2, 2, 3)
	r2 := routing.NewGlobalRearrangeable(f2)
	res2 := analysis.SweepExhaustive(r2, f2.Ports())
	if !res2.Nonblocking() {
		t.Fatalf("exhaustive: blocked %d/%d (err %v)", res2.Blocked, res2.Tested, res2.RouteErr)
	}
}

func TestGlobalRearrangeableFailsBelowN(t *testing.T) {
	// m = n−1 cannot route a full permutation that loads some switch's
	// uplinks with n cross-switch pairs.
	f := topology.NewFoldedClos(3, 2, 4)
	r := routing.NewGlobalRearrangeable(f)
	if _, err := r.Route(permutation.SwitchShift(3, 4, 1)); err == nil {
		t.Fatal("expected failure with m < n")
	}
	if _, err := r.Route(permutation.Identity(5)); err == nil {
		t.Fatal("wrong-size pattern accepted")
	}
}

func TestGlobalRearrangeableHandlesLocalPairs(t *testing.T) {
	f := topology.NewFoldedClos(2, 2, 3)
	r := routing.NewGlobalRearrangeable(f)
	p, err := permutation.FromPairs(6, []permutation.Pair{{Src: 0, Dst: 1}, {Src: 2, Dst: 2}, {Src: 3, Dst: 5}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Route(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if analysis.Check(a).HasContention() {
		t.Fatal("mixed local/self/cross pattern contends")
	}
}

func TestClosRearrangeable(t *testing.T) {
	c := topology.NewClos(3, 3, 4)
	r := routing.NewClosRearrangeable(c)
	if r.Name() != "clos-rearrangeable" {
		t.Fatal("name")
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		p := permutation.Random(rng, c.Ports())
		a, err := r.Route(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		if rep := analysis.Check(a); rep.HasContention() {
			t.Fatalf("Benes m=n blocked on Clos: %v", rep.ContentionError())
		}
		if a.TopSwitchesUsed > c.N {
			t.Fatalf("used %d middle switches, want <= n=%d", a.TopSwitchesUsed, c.N)
		}
	}
	// Same-index input/output switches still cross the middle stage.
	p, err := permutation.FromPairs(c.Ports(), []permutation.Pair{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Route(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Path(0).Len() != 4 {
		t.Fatal("Clos path must have 4 hops")
	}
	// m < n fails on a saturating permutation.
	small := topology.NewClos(3, 2, 2)
	rs := routing.NewClosRearrangeable(small)
	if _, err := rs.Route(permutation.Shift(small.Ports(), 1)); err == nil {
		t.Fatal("expected failure with m < n")
	}
	if _, err := rs.Route(permutation.Identity(2)); err == nil {
		t.Fatal("wrong-size pattern accepted")
	}
}
