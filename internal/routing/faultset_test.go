package routing

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/permutation"
	"repro/internal/topology"
)

// The shared assemble helper must make RouteAvoiding with no failures
// byte-identical to the healthy Route.
func TestRouteAvoidingNoFailuresMatchesRoute(t *testing.T) {
	f := topology.NewFoldedClos(3, 9, 9)
	ad, err := NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p := permutation.Random(rng, f.Ports())
		a, err := ad.Route(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ad.RouteAvoiding(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.PathSets, b.PathSets) {
			t.Fatalf("trial %d: RouteAvoiding(∅) diverged from Route", trial)
		}
	}
}

// The spared constructor's error must report the healthy spare count, not
// the provisioned one, when spares are themselves failed.
func TestSparedErrorReportsHealthySpares(t *testing.T) {
	n := 2
	f := topology.NewFoldedClos(n, n*n+2, 4) // 2 provisioned spares: 4, 5
	// Fail one spare and two class switches: 1 healthy spare < 2 classes.
	failed := map[int]bool{0: true, 1: true, 5: true}
	_, err := NewPaperDeterministicSpared(f, failed)
	if err == nil {
		t.Fatal("expected spare exhaustion error")
	}
	if !strings.Contains(err.Error(), "1 healthy spare") {
		t.Fatalf("error should name the 1 healthy spare, got: %v", err)
	}
	if !strings.Contains(err.Error(), "2 provisioned") {
		t.Fatalf("error should name the 2 provisioned spares, got: %v", err)
	}
}

func TestLocalRerouteHealthyMatchesDeterministic(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 4)
	lr := NewLocalReroute(f, nil, 1)
	det, err := NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < f.Ports(); s++ {
		for d := 0; d < f.Ports(); d++ {
			a, err := lr.PathFor(s, d)
			if err != nil {
				t.Fatalf("PathFor(%d,%d): %v", s, d, err)
			}
			b, _ := det.PathFor(s, d)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("pair (%d,%d): healthy local reroute diverged from Theorem-3 path", s, d)
			}
		}
	}
}

func TestLocalRerouteDeterministicAndHealthyPaths(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 4)
	fs := topology.FailureSet{
		Tops:   []int{0},
		Trunks: []topology.Trunk{{Bottom: 1, Top: 2}, {Bottom: 3, Top: 1}},
	}
	view, err := fs.View(f)
	if err != nil {
		t.Fatal(err)
	}
	lr := NewLocalReroute(f, view, 42)
	lr2 := NewLocalReroute(f, view, 42)
	for s := 0; s < f.Ports(); s++ {
		for d := 0; d < f.Ports(); d++ {
			p1, err1 := lr.PathFor(s, d)
			p2, err2 := lr2.PathFor(s, d)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("pair (%d,%d): nondeterministic error", s, d)
			}
			if err1 != nil {
				continue
			}
			if !reflect.DeepEqual(p1, p2) {
				t.Fatalf("pair (%d,%d): nondeterministic path", s, d)
			}
			if !p1.Valid(f.Net) {
				t.Fatalf("pair (%d,%d): invalid path %v", s, d, p1)
			}
			if !view.PathHealthy(p1) {
				t.Fatalf("pair (%d,%d): path traverses a failed element: %v", s, d, p1)
			}
		}
	}
}

func TestLocalRerouteRejectsDetachedHosts(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 4)
	view, err := topology.FailureSet{Bottoms: []int{1}}.View(f)
	if err != nil {
		t.Fatal(err)
	}
	lr := NewLocalReroute(f, view, 1)
	if _, err := lr.PathFor(2, 0); err == nil {
		t.Fatal("expected error for detached source host")
	}
	if _, err := lr.PathFor(0, 3); err == nil {
		t.Fatal("expected error for detached destination host")
	}
	if _, err := lr.PathFor(0, 6); err != nil {
		t.Fatalf("alive pair should route: %v", err)
	}
}

func TestFaultViewRoutersRejectDetachedHosts(t *testing.T) {
	f := topology.NewFoldedClos(2, 6, 4) // m = n²+2 spares
	view, err := topology.FailureSet{Bottoms: []int{0}}.View(f)
	if err != nil {
		t.Fatal(err)
	}
	p := permutation.New(f.Ports())
	if err := p.Add(0, 5); err != nil { // host 0 is detached
		t.Fatal(err)
	}

	av, err := NewAvoidingAdaptive(f, view)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := av.Route(p); err == nil {
		t.Fatal("avoiding adaptive should reject detached pair")
	}
	sp, err := NewSparedDeterministicView(f, view)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.PathFor(0, 5); err == nil {
		t.Fatal("spared deterministic should reject detached pair")
	}
	nr, err := NewNaiveRemapView(f, view)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nr.PathFor(0, 5); err == nil {
		t.Fatal("naive remap should reject detached pair")
	}
}
