package routing_test

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestMNTDestModPathsValid(t *testing.T) {
	for _, c := range [][2]int{{4, 2}, {4, 3}, {6, 2}} {
		tr := topology.NewMPortNTree(c[0], c[1])
		r := routing.NewMNTDestMod(tr)
		for s := 0; s < tr.Hosts(); s++ {
			for d := 0; d < tr.Hosts(); d++ {
				p, err := r.PathFor(s, d)
				if err != nil {
					t.Fatalf("FT(%d,%d) %d->%d: %v", c[0], c[1], s, d, err)
				}
				if s == d {
					if p.Len() != 0 {
						t.Fatal("self path should be linkless")
					}
					continue
				}
				if !p.Valid(tr.Net) {
					t.Fatalf("invalid path %d->%d", s, d)
				}
			}
		}
	}
}

func TestMNTDestModDestinationConsistency(t *testing.T) {
	// Destination-keyed routing sends all sources to one destination over
	// the same top-level switch: the down-paths into d coincide.
	tr := topology.NewMPortNTree(6, 2)
	r := routing.NewMNTDestMod(tr)
	d := int(tr.HostID(4, 2))
	var apex topology.NodeID = -1
	for s := 0; s < tr.Hosts(); s++ {
		if s == d || s/3 == d/3 {
			continue
		}
		p, err := r.PathFor(s, d)
		if err != nil {
			t.Fatal(err)
		}
		mid := p.Nodes[2]
		if apex == -1 {
			apex = mid
		} else if apex != mid {
			t.Fatalf("destination %d reached via two apexes %d and %d", d, apex, mid)
		}
	}
}

func TestMNTDestModBlocksRandomPermutations(t *testing.T) {
	// The Hoefler/Geoffray motivation: static routing on a rearrangeably
	// nonblocking fat-tree blocks many permutations.
	tr := topology.NewMPortNTree(6, 2)
	r := routing.NewMNTDestMod(tr)
	frac, meanLoad, err := analysis.BlockingProbability(r, tr.Hosts(), 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.5 {
		t.Fatalf("blocking fraction %.2f unexpectedly low for static routing", frac)
	}
	if meanLoad <= 1 {
		t.Fatalf("mean max link load %.2f, expected > 1", meanLoad)
	}
}

func TestMNTRandomFixedReproducible(t *testing.T) {
	tr := topology.NewMPortNTree(4, 3)
	r1 := routing.NewMNTRandomFixed(tr, 42)
	r2 := routing.NewMNTRandomFixed(tr, 42)
	r3 := routing.NewMNTRandomFixed(tr, 43)
	diff := false
	for s := 0; s < tr.Hosts(); s++ {
		for d := 0; d < tr.Hosts(); d++ {
			p1, err1 := r1.PathFor(s, d)
			p2, err2 := r2.PathFor(s, d)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			for i := range p1.Nodes {
				if p1.Nodes[i] != p2.Nodes[i] {
					t.Fatal("same seed produced different paths")
				}
			}
			p3, err := r3.PathFor(s, d)
			if err != nil {
				t.Fatal(err)
			}
			if len(p3.Nodes) == len(p1.Nodes) {
				for i := range p1.Nodes {
					if p1.Nodes[i] != p3.Nodes[i] {
						diff = true
					}
				}
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical routings")
	}
	a, err := r1.Route(permutation.Shift(tr.Hosts(), 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMNTSpray(t *testing.T) {
	tr := topology.NewMPortNTree(4, 2)
	if _, err := routing.NewMNTSpray(tr, 0, 1); err == nil {
		t.Fatal("width 0 accepted")
	}
	r, err := routing.NewMNTSpray(tr, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-group pair in FT(4,2): k = 2 distinct paths total.
	ps, err := r.PathsFor(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("full diversity = %d paths, want 2", len(ps))
	}
	// Width smaller than diversity.
	r2, err := routing.NewMNTSpray(tr, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps, err = r2.PathsFor(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 {
		t.Fatalf("width-1 spray = %d paths", len(ps))
	}
	// Self pair.
	ps, err = r.PathsFor(2, 2)
	if err != nil || len(ps) != 1 || ps[0].Len() != 0 {
		t.Fatal("self pair wrong")
	}
	a, err := r.Route(permutation.Shift(tr.Hosts(), 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThreeLevelPaperNonblocking(t *testing.T) {
	// The recursive construction with the recursive Theorem-3 routing
	// must satisfy Lemma 1 over all SD pairs (Discussion §IV.A).
	for _, n := range []int{2, 3} {
		tl := topology.NewThreeLevelFtree(n, n*n*n+n*n)
		r := routing.NewThreeLevelPaper(tl)
		res, err := analysis.CheckLemma1AllPairs(r, tl.Ports())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Nonblocking {
			t.Fatalf("3-level construction (n=%d) violates Lemma 1: %+v", n, res.Violation)
		}
	}
}

func TestThreeLevelPaperRandomSweep(t *testing.T) {
	tl := topology.NewThreeLevelFtree(2, 12)
	r := routing.NewThreeLevelPaper(tl)
	res := analysis.SweepRandom(r, tl.Ports(), 100, 8)
	if !res.Nonblocking() {
		t.Fatalf("blocked %d/%d (err %v)", res.Blocked, res.Tested, res.RouteErr)
	}
	if _, err := r.PathFor(-1, 0); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestMultiLevelPaperNonblocking(t *testing.T) {
	// The generic recursive construction must satisfy Lemma 1 at every
	// depth — the induction step of the Discussion, checked exactly.
	for _, c := range [][2]int{{2, 2}, {3, 2}, {2, 3}, {3, 3}, {2, 4}} {
		m := topology.NewMultiFtree(c[0], c[1])
		r := routing.NewMultiLevelPaper(m)
		res, err := analysis.CheckLemma1AllPairs(r, m.Ports())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Nonblocking {
			t.Errorf("ftree%d(n=%d) violates Lemma 1: %+v", c[1], c[0], res.Violation)
		}
	}
}

func TestMultiLevelPaperMechanics(t *testing.T) {
	m := topology.NewMultiFtree(2, 3)
	r := routing.NewMultiLevelPaper(m)
	if r.Name() != "paper-multi-level" {
		t.Fatal("name")
	}
	if _, err := r.PathFor(-1, 0); err == nil {
		t.Fatal("range check missing")
	}
	p, err := r.PathFor(5, 5)
	if err != nil || p.Len() != 0 {
		t.Fatal("self pair wrong")
	}
	a, err := r.Route(permutation.Shift(m.Ports(), 7))
	if err != nil {
		t.Fatal(err)
	}
	if analysis.Check(a).HasContention() {
		t.Fatal("shift pattern contends on the recursive construction")
	}
}

func TestCrossbarRouterNeverBlocks(t *testing.T) {
	x := topology.NewCrossbar(6)
	r := routing.NewCrossbarRouter(x)
	res := analysis.SweepExhaustive(r, 6)
	if !res.Nonblocking() {
		t.Fatalf("crossbar blocked %d/%d", res.Blocked, res.Tested)
	}
	if res.MaxLinkLoad != 1 {
		t.Fatalf("crossbar max link load %d", res.MaxLinkLoad)
	}
	if _, err := r.PathFor(0, 9); err == nil {
		t.Fatal("out-of-range accepted")
	}
	p, err := r.PathFor(2, 2)
	if err != nil || p.Len() != 0 {
		t.Fatal("self pair wrong")
	}
}

func TestMNTRoutersRandomPermutationsValid(t *testing.T) {
	tr := topology.NewMPortNTree(6, 3)
	rng := rand.New(rand.NewSource(14))
	routers := []routing.Router{
		routing.NewMNTDestMod(tr),
		routing.NewMNTRandomFixed(tr, 5),
	}
	for _, r := range routers {
		for trial := 0; trial < 5; trial++ {
			p := permutation.Random(rng, tr.Hosts())
			a, err := r.Route(p)
			if err != nil {
				t.Fatalf("%s: %v", r.Name(), err)
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("%s: %v", r.Name(), err)
			}
		}
	}
}
