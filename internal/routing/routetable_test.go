package routing_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// dedupedPairLinks is the test oracle for one table entry: the pair's
// direct AppendPairLinks output with duplicates removed, first occurrence
// kept — exactly what BuildRouteTable promises to store.
func dedupedPairLinks(t *testing.T, r routing.PairLinkAppender, s, d int) []topology.LinkID {
	t.Helper()
	raw, err := r.AppendPairLinks(s, d, nil)
	if err != nil {
		t.Fatalf("AppendPairLinks(%d,%d): %v", s, d, err)
	}
	seen := map[topology.LinkID]bool{}
	var out []topology.LinkID
	for _, l := range raw {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

func sameLinks(a, b []topology.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildRouteTableMatchesAppendPairLinks(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	single, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	spray, err := routing.NewKSpray(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []routing.PairLinkAppender{single, spray, routing.NewFullSpray(f), routing.NewDestMod(f)} {
		tab, err := routing.BuildRouteTable(r, f.Ports())
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if tab.Hosts() != f.Ports() || tab.RouterName() != r.Name() {
			t.Fatalf("%s: hosts=%d name=%q", r.Name(), tab.Hosts(), tab.RouterName())
		}
		if tab.NumLinks() <= 0 || tab.NumLinks() > f.Net.NumLinks() {
			t.Fatalf("%s: NumLinks %d outside (0,%d]", r.Name(), tab.NumLinks(), f.Net.NumLinks())
		}
		entries := 0
		for s := 0; s < f.Ports(); s++ {
			for d := 0; d < f.Ports(); d++ {
				want := dedupedPairLinks(t, r, s, d)
				got := tab.PairLinks(s, d)
				if !sameLinks(got, want) {
					t.Fatalf("%s pair %d->%d: table %v, direct %v", r.Name(), s, d, got, want)
				}
				if s == d && len(got) != 0 {
					t.Fatalf("%s: self-pair %d loaded links %v", r.Name(), s, got)
				}
				entries += len(got)
			}
		}
		if tab.Entries() != entries {
			t.Fatalf("%s: Entries %d, want %d", r.Name(), tab.Entries(), entries)
		}
	}
}

// TestBuildRouteTableMultipathDedups pins the §IV.B dedup: a multipath
// pair's span must load the shared host links once even though every path
// of the set repeats them in the raw link stream.
func TestBuildRouteTableMultipathDedups(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	r := routing.NewFullSpray(f)
	tab, err := routing.BuildRouteTable(r, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	// Cross-switch pair 0->2: 4 top switches × 4 links raw, but only
	// 2 + 2·4 distinct (host up/down shared by all paths).
	raw, err := r.AppendPairLinks(0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 16 {
		t.Fatalf("raw stream %d links, want 16", len(raw))
	}
	span := tab.PairLinks(0, 2)
	if len(span) != 10 {
		t.Fatalf("deduped span %d links, want 10", len(span))
	}
	uniq := map[topology.LinkID]bool{}
	for _, l := range span {
		if uniq[l] {
			t.Fatalf("span repeats link %d", l)
		}
		uniq[l] = true
	}
}

// TestBuildRouteTablePairRouterFallback covers the PathFor-only build:
// m-port n-tree routers implement only PairRouter, so the table is built
// from materialized paths.
func TestBuildRouteTablePairRouterFallback(t *testing.T) {
	tr := topology.NewMPortNTree(4, 2)
	r := routing.NewMNTDestMod(tr)
	tab, err := routing.BuildRouteTable(r, tr.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < tr.Hosts(); s++ {
		for d := 0; d < tr.Hosts(); d++ {
			if s == d {
				if len(tab.PairLinks(s, d)) != 0 {
					t.Fatalf("self-pair %d not empty", s)
				}
				continue
			}
			p, err := r.PathFor(s, d)
			if err != nil {
				t.Fatal(err)
			}
			if !sameLinks(tab.PairLinks(s, d), p.Links) {
				t.Fatalf("pair %d->%d: table %v, PathFor %v", s, d, tab.PairLinks(s, d), p.Links)
			}
		}
	}
	// MNTSpray implements MultiPairRouter; its table must build too.
	spray, err := routing.NewMNTSpray(tr, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := routing.BuildRouteTable(spray, tr.Hosts()); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRouteTablePatternDependent(t *testing.T) {
	f := topology.NewFoldedClos(2, 12, 4)
	ad, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []routing.Router{ad, routing.NewGreedyLocal(f), routing.NewGlobalRearrangeable(f)} {
		if _, err := routing.BuildRouteTable(r, f.Ports()); !errors.Is(err, routing.ErrPatternDependent) {
			t.Fatalf("%s: err %v, want ErrPatternDependent", r.Name(), err)
		}
	}
}

// brokenAppender fails on one specific pair, and emits a negative link on
// another — the two build-time rejection paths.
type brokenAppender struct {
	routing.PairLinkAppender
	failSrc, failDst int
	negSrc, negDst   int
}

func (r *brokenAppender) AppendPairLinks(src, dst int, buf []topology.LinkID) ([]topology.LinkID, error) {
	if src == r.failSrc && dst == r.failDst {
		return buf, fmt.Errorf("injected failure")
	}
	if src == r.negSrc && dst == r.negDst {
		return append(buf, topology.NoLink), nil
	}
	return r.PairLinkAppender.AppendPairLinks(src, dst, buf)
}

func TestBuildRouteTableErrors(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	good, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	r := &brokenAppender{PairLinkAppender: good, failSrc: 1, failDst: 3, negSrc: -1, negDst: -1}
	_, err = routing.BuildRouteTable(r, f.Ports())
	if err == nil || !strings.Contains(err.Error(), "routing pair 1->3: injected failure") {
		t.Fatalf("err %v, want wrapped pair failure", err)
	}
	neg := &brokenAppender{PairLinkAppender: good, failSrc: -1, failDst: -1, negSrc: 2, negDst: 0}
	_, err = routing.BuildRouteTable(neg, f.Ports())
	if err == nil || !strings.Contains(err.Error(), "invalid link id") {
		t.Fatalf("err %v, want invalid link id", err)
	}
	if _, err := routing.BuildRouteTable(good, -1); err == nil {
		t.Fatal("negative host count accepted")
	}
	// hosts=0 builds an empty but valid table.
	tab, err := routing.BuildRouteTable(good, 0)
	if err != nil || tab.Entries() != 0 || tab.NumLinks() != 0 {
		t.Fatalf("empty table: %v %+v", err, tab)
	}
}

// TestFtreeMultipathAppendPairLinksMatchesPathsFor pins the new fast path
// on FtreeMultipath against its materialized PathsFor output, including
// error parity on a malformed TopSet.
func TestFtreeMultipathAppendPairLinksMatchesPathsFor(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	spray, err := routing.NewKSpray(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := routing.NewPaperMultipath(topology.NewFoldedClos(2, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*routing.FtreeMultipath{spray, routing.NewFullSpray(f), pm} {
		for s := 0; s < f.Ports(); s++ {
			for d := 0; d < f.Ports(); d++ {
				links, err := r.AppendPairLinks(s, d, nil)
				if err != nil {
					t.Fatalf("%s AppendPairLinks(%d,%d): %v", r.Name(), s, d, err)
				}
				paths, err := r.PathsFor(s, d)
				if err != nil {
					t.Fatalf("%s PathsFor(%d,%d): %v", r.Name(), s, d, err)
				}
				var want []topology.LinkID
				for _, p := range paths {
					want = append(want, p.Links...)
				}
				if !sameLinks(links, want) {
					t.Fatalf("%s pair %d->%d: append %v, paths %v", r.Name(), s, d, links, want)
				}
			}
		}
		// Out-of-range errors match.
		_, errA := r.AppendPairLinks(-1, 0, nil)
		_, errP := r.PathsFor(-1, 0)
		if errA == nil || errP == nil || errA.Error() != errP.Error() {
			t.Fatalf("%s: out-of-range errors differ: %v vs %v", r.Name(), errA, errP)
		}
	}
	// Malformed TopSet errors must be identical on both paths.
	for _, bad := range []*routing.FtreeMultipath{
		{F: f, RouterName: "empty-set", TopSet: func(int, int) []int { return nil }},
		{F: f, RouterName: "oob-set", TopSet: func(int, int) []int { return []int{99} }},
	} {
		_, errA := bad.AppendPairLinks(0, 2, nil)
		_, errP := bad.PathsFor(0, 2)
		if errA == nil || errP == nil || errA.Error() != errP.Error() {
			t.Fatalf("%s: errors differ: %v vs %v", bad.RouterName, errA, errP)
		}
	}
}

// TestRouteTableConcurrentReaders exercises the immutability contract: many
// goroutines reading one table must agree with a direct re-read (run under
// -race in CI).
func TestRouteTableConcurrentReaders(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 2)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := routing.BuildRouteTable(r, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]topology.LinkID, f.Ports()*f.Ports())
	for s := 0; s < f.Ports(); s++ {
		for d := 0; d < f.Ports(); d++ {
			want[s*f.Ports()+d] = dedupedPairLinks(t, r, s, d)
		}
	}
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func() {
			ok := true
			for rep := 0; rep < 50; rep++ {
				for s := 0; s < f.Ports(); s++ {
					for d := 0; d < f.Ports(); d++ {
						if !sameLinks(tab.PairLinks(s, d), want[s*f.Ports()+d]) {
							ok = false
						}
					}
				}
			}
			done <- ok
		}()
	}
	for w := 0; w < 4; w++ {
		if !<-done {
			t.Fatal("concurrent reader observed a mismatched span")
		}
	}
}

// TestRouteTableDrivesSweepConsistently is a small end-to-end anchor: the
// table's spans reproduce per-pattern loads of a real route. (The full
// delta-vs-oracle property tests live in internal/analysis.)
func TestRouteTableSpansCoverPermutationPairs(t *testing.T) {
	f := topology.NewFoldedClos(2, 4, 3)
	r, err := routing.NewPaperDeterministic(f)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := routing.BuildRouteTable(r, f.Ports())
	if err != nil {
		t.Fatal(err)
	}
	p := permutation.Shift(f.Ports(), 1)
	for s := 0; s < p.N(); s++ {
		path, err := r.PathFor(s, p.Dst(s))
		if err != nil {
			t.Fatal(err)
		}
		if !sameLinks(tab.PairLinks(s, p.Dst(s)), path.Links) {
			t.Fatalf("pair %d->%d span mismatch", s, p.Dst(s))
		}
	}
}
