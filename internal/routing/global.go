package routing

import (
	"fmt"

	"repro/internal/permutation"
	"repro/internal/topology"
)

// EdgeColorBipartite colors the edges of a bipartite multigraph with Δ
// colors, where Δ is the maximum vertex degree — the constructive form of
// König's edge-coloring theorem. edges[i] = (u, v) with u a left vertex in
// [0, nLeft) and v a right vertex in [0, nRight). The returned slice maps
// each edge to a color in [0, Δ); edges sharing a vertex get distinct
// colors.
//
// This is the engine of centralized rearrangeable routing: treating source
// switches as left vertices, destination switches as right vertices and SD
// pairs as edges, a coloring with Δ ≤ n colors assigns each pair a middle
// (top) switch such that no two pairs share an uplink or downlink —
// realizing the classic Benes condition m ≥ n, which requires exactly the
// global pattern knowledge that distributed computer networks lack (§II).
func EdgeColorBipartite(nLeft, nRight int, edges [][2]int) ([]int, error) {
	deg := 0
	degL := make([]int, nLeft)
	degR := make([]int, nRight)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= nLeft || v < 0 || v >= nRight {
			return nil, fmt.Errorf("routing: edge (%d,%d) out of range (%d left, %d right)", u, v, nLeft, nRight)
		}
		degL[u]++
		degR[v]++
		if degL[u] > deg {
			deg = degL[u]
		}
		if degR[v] > deg {
			deg = degR[v]
		}
	}
	if deg == 0 {
		return make([]int, len(edges)), nil
	}

	// tableL[u][c] / tableR[v][c]: edge currently colored c at the vertex,
	// or −1.
	tableL := make([][]int, nLeft)
	for u := range tableL {
		tableL[u] = newFilled(deg, -1)
	}
	tableR := make([][]int, nRight)
	for v := range tableR {
		tableR[v] = newFilled(deg, -1)
	}
	color := newFilled(len(edges), -1)

	freeAt := func(table []int) int {
		for c, e := range table {
			if e == -1 {
				return c
			}
		}
		return -1
	}

	for i, e := range edges {
		u, v := e[0], e[1]
		a := freeAt(tableL[u])
		b := freeAt(tableR[v])
		if a == -1 || b == -1 {
			return nil, fmt.Errorf("routing: internal error: no free color at edge %d", i)
		}
		if tableR[v][a] == -1 {
			// a free at both endpoints.
			color[i] = a
			tableL[u][a], tableR[v][a] = i, i
			continue
		}
		// Flip the a/b alternating path starting at v. In a bipartite
		// graph the path cannot reach u (u has no a-edge, yet every
		// left-side vertex on the path is entered over an a-edge), so
		// flipping frees color a at v without disturbing u.
		var pathEdges []int
		cur, curLeft, want := v, false, a
		for {
			var eid int
			if curLeft {
				eid = tableL[cur][want]
			} else {
				eid = tableR[cur][want]
			}
			if eid == -1 {
				break
			}
			pathEdges = append(pathEdges, eid)
			if curLeft {
				cur = edges[eid][1]
			} else {
				cur = edges[eid][0]
			}
			curLeft = !curLeft
			if want == a {
				want = b
			} else {
				want = a
			}
		}
		for _, eid := range pathEdges {
			old := color[eid]
			nw := a
			if old == a {
				nw = b
			}
			eu, ev := edges[eid][0], edges[eid][1]
			tableL[eu][old], tableR[ev][old] = -1, -1
			color[eid] = nw
		}
		for _, eid := range pathEdges {
			eu, ev := edges[eid][0], edges[eid][1]
			c := color[eid]
			if tableL[eu][c] != -1 || tableR[ev][c] != -1 {
				return nil, fmt.Errorf("routing: internal error: flip produced a clash at edge %d", eid)
			}
			tableL[eu][c], tableR[ev][c] = eid, eid
		}
		if tableL[u][a] != -1 || tableR[v][a] != -1 {
			return nil, fmt.Errorf("routing: internal error: color %d still busy after flip", a)
		}
		color[i] = a
		tableL[u][a], tableR[v][a] = i, i
	}
	return color, nil
}

func newFilled(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// GlobalRearrangeable is the centralized routing baseline for
// ftree(n+m, r): given the whole permutation, it edge-colors the
// switch-level demand graph and uses the color as the top-switch index.
// Any permutation is routed contention-free whenever m ≥ n — the
// rearrangeably-nonblocking condition that holds only under centralized
// control, against which the paper's distributed m ≥ n² (deterministic)
// and O(n^(2−1/(2(c+1)))) (local adaptive) conditions are contrasted.
type GlobalRearrangeable struct {
	F *topology.FoldedClos
}

// NewGlobalRearrangeable builds the centralized router.
func NewGlobalRearrangeable(f *topology.FoldedClos) *GlobalRearrangeable {
	return &GlobalRearrangeable{F: f}
}

// Name returns "global-rearrangeable".
func (r *GlobalRearrangeable) Name() string { return "global-rearrangeable" }

// Route colors the pattern's switch-level bipartite multigraph and assigns
// each cross-switch pair the top switch named by its color. It fails when
// the pattern needs more colors than the network has top switches (m < n
// for full permutations).
func (r *GlobalRearrangeable) Route(p *permutation.Permutation) (*Assignment, error) {
	if p.N() != r.F.Ports() {
		return nil, fmt.Errorf("routing: pattern over %d endpoints, network has %d", p.N(), r.F.Ports())
	}
	pairs := p.Pairs()
	n := r.F.N
	var cross []int
	edges := make([][2]int, 0, len(pairs))
	for i, pr := range pairs {
		if pr.Src != pr.Dst && pr.Src/n != pr.Dst/n {
			cross = append(cross, i)
			edges = append(edges, [2]int{pr.Src / n, pr.Dst / n})
		}
	}
	colors, err := EdgeColorBipartite(r.F.R, r.F.R, edges)
	if err != nil {
		return nil, err
	}
	used := 0
	for _, c := range colors {
		if c+1 > used {
			used = c + 1
		}
	}
	if used > r.F.M {
		return nil, fmt.Errorf("routing: pattern needs %d top switches, network has m=%d", used, r.F.M)
	}
	a := &Assignment{Net: r.F.Net, Pairs: pairs, PathSets: make([][]topology.Path, len(pairs)), TopSwitchesUsed: used}
	for i, pr := range pairs {
		if pr.Src == pr.Dst {
			a.PathSets[i] = selfPath(topology.NodeID(pr.Src))
		} else if pr.Src/n == pr.Dst/n {
			a.PathSets[i] = []topology.Path{r.F.RouteVia(topology.NodeID(pr.Src), topology.NodeID(pr.Dst), 0)}
		}
	}
	for k, i := range cross {
		pr := a.Pairs[i]
		a.PathSets[i] = []topology.Path{r.F.RouteVia(topology.NodeID(pr.Src), topology.NodeID(pr.Dst), colors[k])}
	}
	return a, nil
}

// ClosRearrangeable is the same centralized baseline on the unidirectional
// three-stage Clos(n, m, r): every connection (including ones between
// same-indexed switches) crosses a middle switch chosen by edge coloring.
type ClosRearrangeable struct {
	C *topology.Clos
}

// NewClosRearrangeable builds the centralized Clos router.
func NewClosRearrangeable(c *topology.Clos) *ClosRearrangeable {
	return &ClosRearrangeable{C: c}
}

// Name returns "clos-rearrangeable".
func (r *ClosRearrangeable) Name() string { return "clos-rearrangeable" }

// Route interprets pattern sources as input terminals and destinations as
// output terminals and assigns middle switches by edge coloring. Any
// permutation is routed contention-free whenever m ≥ n (Benes [3]).
func (r *ClosRearrangeable) Route(p *permutation.Permutation) (*Assignment, error) {
	if p.N() != r.C.Ports() {
		return nil, fmt.Errorf("routing: pattern over %d endpoints, Clos has %d ports", p.N(), r.C.Ports())
	}
	pairs := p.Pairs()
	n := r.C.N
	edges := make([][2]int, len(pairs))
	for i, pr := range pairs {
		edges[i] = [2]int{pr.Src / n, pr.Dst / n}
	}
	colors, err := EdgeColorBipartite(r.C.R, r.C.R, edges)
	if err != nil {
		return nil, err
	}
	used := 0
	for _, c := range colors {
		if c+1 > used {
			used = c + 1
		}
	}
	if used > r.C.M {
		return nil, fmt.Errorf("routing: pattern needs %d middle switches, Clos has m=%d", used, r.C.M)
	}
	a := &Assignment{Net: r.C.Net, Pairs: pairs, PathSets: make([][]topology.Path, len(pairs)), TopSwitchesUsed: used}
	for i, pr := range pairs {
		a.PathSets[i] = []topology.Path{r.C.RouteVia(pr.Src, pr.Dst, colors[i])}
	}
	return a, nil
}
