package routing

import (
	"fmt"

	"repro/internal/permutation"
	"repro/internal/topology"
)

// LocalReroute implements Bankhamer-style randomized local fast rerouting
// (Bankhamer, Elsässer & Schmid, "Randomized Local Fast Rerouting for
// Datacenter Networks with Almost Optimal Congestion", PAPERS.md) adapted
// to the paper's two-level folded Clos: failover happens at the point of
// failure using only link health that is locally visible at each switch,
// with no global route recomputation.
//
// A packet for cross-switch pair (src, dst) first tries the Theorem-3
// class switch. When a switch finds the next link dead it deflects to a
// pseudo-random healthy alternative: a bottom switch picks another intact
// uplink, and a top switch that cannot reach the destination's bottom
// switch bounces the packet down to a random healthy bottom switch, which
// retries upward. Deflection targets are drawn from a SplitMix64 stream
// keyed on (seed, src, dst), so the walk is a pure function of the
// endpoints: LocalReroute is a PairRouter, cacheable in route tables and
// byte-reproducible across runs, while still modeling the independent
// per-switch coin flips of the scheme (distinct pairs get unrelated
// streams).
//
// The walk gives up after a visit budget of 4+⌈log₂ m⌉ top switches; on a
// connected degraded fabric the random deflections escape any local
// minimum well before that with high probability, mirroring the paper's
// O(log n)-bounce bound.
type LocalReroute struct {
	F    *topology.FoldedClos
	view *topology.FailureView
	seed int64
	// maxVisits bounds the top-level switches one packet may visit.
	maxVisits int
}

// NewLocalReroute builds the local-reroute router for the failure view
// (nil means a pristine fabric).
func NewLocalReroute(f *topology.FoldedClos, view *topology.FailureView, seed int64) *LocalReroute {
	if view == nil {
		view, _ = topology.FailureSet{}.View(f)
	}
	visits := 4
	for m := f.M; m > 1; m >>= 1 {
		visits++
	}
	return &LocalReroute{F: f, view: view, seed: seed, maxVisits: visits}
}

// Name returns "local-reroute".
func (r *LocalReroute) Name() string { return "local-reroute" }

// PathFor walks the deflection route for one SD pair. It errors when an
// endpoint is detached, a switch has no healthy escape link, or the visit
// budget is exhausted.
func (r *LocalReroute) PathFor(src, dst int) (topology.Path, error) {
	f, v, n := r.F, r.view, r.F.N
	if src < 0 || src >= f.Ports() || dst < 0 || dst >= f.Ports() {
		return topology.Path{}, fmt.Errorf("host index out of range: %d or %d", src, dst)
	}
	if !v.HostAlive(src) || !v.HostAlive(dst) {
		return topology.Path{}, fmt.Errorf("routing: pair %d->%d uses a detached host (failed bottom switch)", src, dst)
	}
	if src == dst {
		return topology.Path{Nodes: []topology.NodeID{topology.NodeID(src)}}, nil
	}
	sv, sk := src/n, src%n
	dv, dk := dst/n, dst%n
	if sv == dv {
		return f.RouteVia(topology.NodeID(src), topology.NodeID(dst), 0), nil
	}
	pref := ((src%n)*n + dst%n) % f.M // Theorem-3 class switch (folded for small m)
	state := uint64(pairSeed(r.seed, src, dst))
	nodes := []topology.NodeID{topology.NodeID(src), f.Bottom(sv)}
	links := []topology.LinkID{f.HostUpLink(sv, sk)}
	cur, lastTop := sv, -1
	for visit := 0; visit < r.maxVisits; visit++ {
		var t int
		if visit == 0 && !v.TrunkFailed(cur, pref) {
			t = pref
		} else {
			t = r.pickTop(cur, lastTop, &state)
		}
		if t < 0 {
			return topology.Path{}, fmt.Errorf("routing: local reroute for %d->%d stuck at bottom switch %d: no healthy uplink", src, dst, cur)
		}
		nodes = append(nodes, f.Top(t))
		links = append(links, f.UpLink(cur, t))
		if !v.TrunkFailed(dv, t) {
			nodes = append(nodes, f.Bottom(dv), topology.NodeID(dst))
			links = append(links, f.DownLink(t, dv), f.HostDownLink(dv, dk))
			return topology.Path{Nodes: nodes, Links: links}, nil
		}
		// The top switch cannot reach the destination: bounce down to a
		// random healthy bottom switch and retry from there.
		w := r.pickBottom(t, cur, &state)
		if w < 0 {
			return topology.Path{}, fmt.Errorf("routing: local reroute for %d->%d stuck at top switch %d: no healthy downlink", src, dst, t)
		}
		nodes = append(nodes, f.Bottom(w))
		links = append(links, f.DownLink(t, w))
		cur, lastTop = w, t
	}
	return topology.Path{}, fmt.Errorf("routing: local reroute for %d->%d exceeded %d top-switch visits", src, dst, r.maxVisits)
}

// pickTop draws a uniform healthy uplink of bottom switch b, avoiding the
// top the packet just bounced off when another choice exists.
func (r *LocalReroute) pickTop(b, exclude int, state *uint64) int {
	count := 0
	for t := 0; t < r.F.M; t++ {
		if t != exclude && !r.view.TrunkFailed(b, t) {
			count++
		}
	}
	if count == 0 {
		if exclude >= 0 && !r.view.TrunkFailed(b, exclude) {
			return exclude
		}
		return -1
	}
	k := int(splitmix64(state) % uint64(count))
	for t := 0; t < r.F.M; t++ {
		if t != exclude && !r.view.TrunkFailed(b, t) {
			if k == 0 {
				return t
			}
			k--
		}
	}
	return -1
}

// pickBottom draws a uniform healthy downlink of top switch t, avoiding
// an immediate backtrack to the switch the packet came from when another
// choice exists.
func (r *LocalReroute) pickBottom(t, from int, state *uint64) int {
	count := 0
	for w := 0; w < r.F.R; w++ {
		if w != from && !r.view.TrunkFailed(w, t) {
			count++
		}
	}
	if count == 0 {
		if !r.view.TrunkFailed(from, t) {
			return from
		}
		return -1
	}
	k := int(splitmix64(state) % uint64(count))
	for w := 0; w < r.F.R; w++ {
		if w != from && !r.view.TrunkFailed(w, t) {
			if k == 0 {
				return w
			}
			k--
		}
	}
	return -1
}

// Route assigns a deflection path to every SD pair of the pattern.
func (r *LocalReroute) Route(p *permutation.Permutation) (*Assignment, error) {
	return routePairwise(r.F.Net, p, func(s, d int) ([]topology.Path, error) {
		path, err := r.PathFor(s, d)
		if err != nil {
			return nil, err
		}
		return []topology.Path{path}, nil
	})
}
