// Package routing implements every routing scheme the paper analyzes for
// folded-Clos networks, plus the baselines it compares against:
//
//   - single-path deterministic routing, including the paper's Theorem-3
//     scheme that makes ftree(n+n², r) nonblocking;
//   - traffic-oblivious multi-path deterministic routing (§IV.B);
//   - the local adaptive algorithm NONBLOCKINGADAPTIVE (Fig. 4);
//   - a greedy local adaptive baseline without the Class-DIFF guarantee;
//   - centralized (global) rearrangeable routing via bipartite edge
//     coloring, realizing the classic Benes m ≥ n condition;
//   - up*/down* deterministic and oblivious routing for m-port n-trees.
//
// All routers consume a permutation pattern over host indices and produce
// an Assignment: the set of paths that will carry each SD pair's traffic.
// Contention properties of assignments are judged by package analysis.
//
// Every router in this package is safe for concurrent Route/PathFor calls:
// routing state is fixed at construction and per-call scratch is local.
// The parallel simulation drivers (sim.RunTrialsParallel and friends) and
// the parallel verification sweeps rely on this contract.
package routing

import (
	"fmt"

	"repro/internal/permutation"
	"repro/internal/topology"
)

// Assignment is the output of routing a communication pattern: for each SD
// pair, the set of paths that may carry its packets. Deterministic
// single-path and adaptive routers produce exactly one path per pair;
// traffic-oblivious multi-path routers produce several (§IV.B: since the
// timing of path use is unpredictable, nonblocking analysis must account
// for every path in the set).
type Assignment struct {
	// Net is the network the paths live in.
	Net *topology.Network
	// Pairs lists the routed SD pairs in deterministic order.
	Pairs []permutation.Pair
	// PathSets[i] holds the paths assigned to Pairs[i]; always non-empty.
	PathSets [][]topology.Path
	// TopSwitchesUsed counts distinct top-level switches referenced by the
	// assignment, when the router tracks it (adaptive routing reports the
	// m it consumed); zero otherwise.
	TopSwitchesUsed int
	// Configurations counts scheduling configurations consumed by
	// NONBLOCKINGADAPTIVE; zero for other routers.
	Configurations int
}

// Path returns the single path of pair i; it panics when the pair has more
// than one path (use PathSets for multipath assignments).
func (a *Assignment) Path(i int) topology.Path {
	if len(a.PathSets[i]) != 1 {
		panic(fmt.Sprintf("routing: pair %d has %d paths; single-path access invalid", i, len(a.PathSets[i])))
	}
	return a.PathSets[i][0]
}

// SinglePath reports whether every pair has exactly one assigned path.
func (a *Assignment) SinglePath() bool {
	for _, ps := range a.PathSets {
		if len(ps) != 1 {
			return false
		}
	}
	return true
}

// Validate checks that every path is internally consistent with the
// network and starts/ends at the pair's endpoints (self-pairs may have
// empty host-local paths).
func (a *Assignment) Validate() error {
	if len(a.Pairs) != len(a.PathSets) {
		return fmt.Errorf("routing: %d pairs but %d path sets", len(a.Pairs), len(a.PathSets))
	}
	for i, ps := range a.PathSets {
		if len(ps) == 0 {
			return fmt.Errorf("routing: pair %v has no paths", a.Pairs[i])
		}
		for _, p := range ps {
			if !p.Valid(a.Net) {
				return fmt.Errorf("routing: pair %v has an invalid path", a.Pairs[i])
			}
		}
	}
	return nil
}

// Router routes whole communication patterns. Deterministic routers ignore
// the pattern structure and route each pair independently; adaptive and
// global routers may examine it.
type Router interface {
	// Name identifies the scheme in reports and benchmarks.
	Name() string
	// Route assigns paths to every SD pair of the pattern.
	Route(p *permutation.Permutation) (*Assignment, error)
}

// PairRouter is implemented by single-path deterministic routers, which
// can route an SD pair in isolation — the property that defines
// "deterministic" in the paper: the path depends only on (src, dst).
type PairRouter interface {
	Router
	// PathFor returns the unique path for the SD pair (src, dst), given
	// as host indices.
	PathFor(src, dst int) (topology.Path, error)
}

// MultiPairRouter is implemented by traffic-oblivious multi-path routers:
// the path *set* depends only on (src, dst); packets are spread over the
// set by a policy that does not see the traffic pattern.
type MultiPairRouter interface {
	Router
	// PathsFor returns every path packets of (src, dst) may take.
	PathsFor(src, dst int) ([]topology.Path, error)
}

// PairLinkAppender is the allocation-free fast path for contention
// accounting: routers that can enumerate the links of one SD pair's path
// set directly — without materializing Path or Assignment values — let
// verification sweeps analyze a pattern with zero allocations per pair.
// Implementations must report exactly the links PathFor/PathsFor would,
// with identical error conditions and messages, so sweep results are
// independent of which code path analyzed them.
type PairLinkAppender interface {
	Router
	// AppendPairLinks appends every link of the pair's path set to buf
	// and returns it. Self-pairs (src == dst) append nothing. Links of a
	// multipath set may repeat; the accounting layer deduplicates per
	// pair.
	AppendPairLinks(src, dst int, buf []topology.LinkID) ([]topology.LinkID, error)
}

// routePairwise assembles an Assignment for a pattern using a per-pair
// path-set function.
func routePairwise(net *topology.Network, p *permutation.Permutation, pathsFor func(s, d int) ([]topology.Path, error)) (*Assignment, error) {
	pairs := p.Pairs()
	a := &Assignment{Net: net, Pairs: pairs, PathSets: make([][]topology.Path, len(pairs))}
	for i, pr := range pairs {
		ps, err := pathsFor(pr.Src, pr.Dst)
		if err != nil {
			return nil, fmt.Errorf("routing pair %d->%d: %w", pr.Src, pr.Dst, err)
		}
		a.PathSets[i] = ps
	}
	return a, nil
}

// selfPath is the degenerate path of a self-pair (s == d): the traffic
// never leaves the host, so it occupies no network link.
func selfPath(host topology.NodeID) []topology.Path {
	return []topology.Path{{Nodes: []topology.NodeID{host}}}
}
