package routing

import (
	"math/rand"
	"sync"
)

// Per-pair seeded randomness for the random-fixed and spray routers.
//
// The seed for pair (src, dst) is a splitmix64-style hash of the router
// seed and both endpoints. The previous derivation,
// seed ^ src<<20 ^ dst, collided structurally: any dst ≥ 2^20 bled into
// the source bits, and two pairs (s, d) and (s', d') with
// s<<20 ^ d == s'<<20 ^ d' shared one RNG stream — silently correlating
// "independent" random path choices on large networks. The full-width
// avalanche of splitmix64 makes distinct (seed, src, dst) triples produce
// unrelated streams.
//
// Generators are pooled and reseeded instead of constructed per routed
// pair: seeding the splitmix source is a single store, so PathFor does no
// RNG allocation in steady state and stays safe for concurrent use.

// splitmix64 advances the SplitMix64 state and returns the mixed output
// (Steele, Lea & Flood, OOPSLA 2014 — the java.util.SplittableRandom
// finalizer).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// pairSeed hashes (seed, src, dst) into an RNG seed with no structural
// collisions between distinct pairs.
func pairSeed(seed int64, src, dst int) int64 {
	s := uint64(seed)
	h := splitmix64(&s)
	s ^= h ^ uint64(src)
	h = splitmix64(&s)
	s ^= h ^ uint64(dst)
	return int64(splitmix64(&s))
}

// splitmixSource is a rand.Source64 backed by SplitMix64: O(1) reseeding
// (math/rand's default source pays a 607-word refill per Seed call) and
// no allocation.
type splitmixSource struct {
	state uint64
}

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }
func (s *splitmixSource) Uint64() uint64  { return splitmix64(&s.state) }
func (s *splitmixSource) Int63() int64    { return int64(s.Uint64() >> 1) }

var pairRNGPool = sync.Pool{
	New: func() interface{} { return rand.New(new(splitmixSource)) },
}

// pairRNG returns a pooled generator deterministically seeded for
// (seed, src, dst). Return it with putPairRNG when done; the generator
// must not be retained afterwards.
func pairRNG(seed int64, src, dst int) *rand.Rand {
	rng := pairRNGPool.Get().(*rand.Rand)
	rng.Seed(pairSeed(seed, src, dst))
	return rng
}

func putPairRNG(rng *rand.Rand) { pairRNGPool.Put(rng) }
