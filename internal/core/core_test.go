package core

import (
	"strings"
	"testing"

	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestDeterministicSystemVerifies(t *testing.T) {
	s, err := NewDeterministicSystem(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Class != Deterministic || s.Ports() != 12 {
		t.Fatal("system metadata wrong")
	}
	rep, err := s.Verify(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Nonblocking || rep.Method != "lemma1-all-pairs" {
		t.Fatalf("verify = %+v", rep)
	}
}

func TestAdaptiveSystemVerifies(t *testing.T) {
	s, err := NewAdaptiveSystem(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Verify(8, 0, 0) // 8 hosts: exhaustive
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Nonblocking || rep.Method != "exhaustive-sweep" {
		t.Fatalf("verify = %+v", rep)
	}
	if rep.PatternsTested != 40320 {
		t.Fatalf("tested %d patterns", rep.PatternsTested)
	}
	// Larger instance: random sweep path.
	s2, err := NewAdaptiveSystem(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := s2.Verify(8, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Nonblocking || rep2.Method != "random-sweep" || rep2.PatternsTested == 0 {
		t.Fatalf("verify = %+v", rep2)
	}
	if _, err := NewAdaptiveSystem(1, 4); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestRearrangeableSystem(t *testing.T) {
	s := NewRearrangeableSystem(2, 5)
	rep, err := s.Verify(4, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Nonblocking {
		t.Fatalf("global m=n should pass sweeps: %+v", rep)
	}
	if s.Class.String() != "global-rearrangeable" {
		t.Fatal("class string wrong")
	}
}

func TestVerifyReportsBlockingWitness(t *testing.T) {
	// A deterministic system with m < n² must be caught by the exact
	// Lemma-1 method. Build it manually through the same struct.
	s, err := NewDeterministicSystem(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a blocking router on a smaller network via RoutePattern:
	// instead verify detection through a blocked pattern on dest-mod —
	// covered elsewhere. Here check RoutePattern plumbing.
	p := permutation.SwitchShift(2, 6, 1)
	a, rep, err := s.RoutePattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasContention() {
		t.Fatal("nonblocking system contended")
	}
	if len(a.Pairs) != 12 {
		t.Fatalf("pairs = %d", len(a.Pairs))
	}
}

func TestVerifyBlockingDeterministicYieldsWitness(t *testing.T) {
	// A System wrapping a blocking deterministic router must get the
	// exact verdict plus a concrete witness.
	f := topology.NewFoldedClos(2, 4, 5)
	s := &System{F: f, Router: routing.NewDestMod(f), Class: Deterministic}
	rep, err := s.Verify(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nonblocking || rep.Method != "lemma1-all-pairs" {
		t.Fatalf("verify = %+v", rep)
	}
	if !strings.Contains(rep.Detail, "blocking permutation:") {
		t.Fatalf("witness missing: %q", rep.Detail)
	}
}

func TestVerifySweepBlockingAndErrors(t *testing.T) {
	// Greedy-local (non-PairRouter): exhaustive sweep finds blocking on a
	// tiny instance.
	f := topology.NewFoldedClos(2, 2, 3)
	s := &System{F: f, Router: routing.NewGreedyLocal(f), Class: LocalAdaptive}
	rep, err := s.Verify(6, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nonblocking || rep.Method != "exhaustive-sweep" || rep.Detail == "" {
		t.Fatalf("verify = %+v", rep)
	}
	// Random sweep path with blocking.
	f2 := topology.NewFoldedClos(2, 4, 5)
	s2 := &System{F: f2, Router: routing.NewGreedyLocal(f2), Class: LocalAdaptive}
	rep2, err := s2.Verify(4, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Nonblocking || rep2.Method != "random-sweep" {
		t.Fatalf("verify = %+v", rep2)
	}
	// Route errors show in Detail.
	f3 := topology.NewFoldedClos(2, 1, 3)
	ad, err := routing.NewNonblockingAdaptive(f3)
	if err != nil {
		t.Fatal(err)
	}
	s3 := &System{F: f3, Router: ad, Class: LocalAdaptive}
	rep3, err := s3.Verify(6, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Nonblocking || rep3.Detail == "" {
		t.Fatalf("verify = %+v", rep3)
	}
	// RoutePattern surfaces routing errors.
	if _, _, err := s3.RoutePattern(permutation.SwitchShift(2, 3, 1)); err == nil {
		t.Fatal("expected route error")
	}
}

func TestRoutingClassString(t *testing.T) {
	if Deterministic.String() != "deterministic" ||
		LocalAdaptive.String() != "local-adaptive" ||
		!strings.Contains(RoutingClass(9).String(), "9") {
		t.Fatal("strings wrong")
	}
}

func TestPlan(t *testing.T) {
	props, err := Plan(20)
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[RoutingClass]Proposal{}
	for _, p := range props {
		byClass[p.Class] = p
		if p.MaxRadix > 20 {
			t.Errorf("%v design exceeds radix: %+v", p.Class, p)
		}
		if p.Ports != p.N*p.R || p.Switches != p.R+p.M {
			t.Errorf("%v design inconsistent: %+v", p.Class, p)
		}
	}
	det, ok := byClass[Deterministic]
	if !ok {
		t.Fatal("no deterministic proposal for radix 20")
	}
	// Radix 20 = 4+16: the Table-I design with r = 20 → 80 ports.
	if det.N != 4 || det.M != 16 || det.Ports != 80 {
		t.Fatalf("deterministic proposal = %+v", det)
	}
	reb, ok := byClass[GlobalRearrangeable]
	if !ok {
		t.Fatal("no rearrangeable proposal")
	}
	if reb.Ports <= det.Ports {
		t.Fatalf("centralized control should support more ports (%d vs %d)", reb.Ports, det.Ports)
	}
	if p := byClass[LocalAdaptive]; p.Ports < det.Ports {
		t.Fatalf("adaptive proposal %+v worse than deterministic %+v", p, det)
	}
	if _, err := Plan(1); err == nil {
		t.Fatal("radix 1 accepted")
	}
	if _, err := Plan(2); err != nil {
		t.Fatalf("radix 2 should at least fit the rearrangeable design: %v", err)
	}
	// CostPerPort helper.
	if (Proposal{}).CostPerPort() != 0 {
		t.Fatal("zero proposal cost/port")
	}
	if det.CostPerPort() <= 0 {
		t.Fatal("cost/port should be positive")
	}
}

func TestPlanAdaptiveBeatsDeterministicAtScale(t *testing.T) {
	// For a large radix the adaptive design fits a larger n (smaller m)
	// and therefore supports more ports than the deterministic one.
	props, err := Plan(600)
	if err != nil {
		t.Fatal(err)
	}
	var det, ad Proposal
	for _, p := range props {
		switch p.Class {
		case Deterministic:
			det = p
		case LocalAdaptive:
			ad = p
		}
	}
	if ad.Ports <= det.Ports {
		t.Fatalf("adaptive %d ports should exceed deterministic %d at radix 600", ad.Ports, det.Ports)
	}
}
