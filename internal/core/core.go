// Package core assembles the paper's primary contribution into ready-to-use
// systems: a nonblocking folded-Clos network paired with the routing
// algorithm that makes it nonblocking, plus a design engine that answers
// the feasibility question the paper poses — given a switch radix, what
// nonblocking interconnects can be built, at what cost, under which
// routing class?
package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/conditions"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// RoutingClass selects the control model, in increasing order of the
// information available to the router.
type RoutingClass uint8

const (
	// Deterministic is single-path deterministic routing (§IV): paths
	// are a pure function of (src, dst); nonblocking needs m ≥ n².
	Deterministic RoutingClass = iota
	// LocalAdaptive is NONBLOCKINGADAPTIVE (§V): each source switch
	// adapts to its local pattern; nonblocking with
	// m = O(n^(2−1/(2(c+1)))).
	LocalAdaptive
	// GlobalRearrangeable is the centralized baseline: the whole pattern
	// is known; m ≥ n suffices (Benes), but no distributed
	// implementation exists — included for comparison only.
	GlobalRearrangeable
)

// String names the class.
func (c RoutingClass) String() string {
	switch c {
	case Deterministic:
		return "deterministic"
	case LocalAdaptive:
		return "local-adaptive"
	case GlobalRearrangeable:
		return "global-rearrangeable"
	default:
		return fmt.Sprintf("RoutingClass(%d)", uint8(c))
	}
}

// System is a folded-Clos network paired with the router that serves it.
type System struct {
	// F is the underlying two-level folded-Clos topology.
	F *topology.FoldedClos
	// Router routes patterns over F.
	Router routing.Router
	// Class records the control model.
	Class RoutingClass
}

// NewDeterministicSystem builds the Theorem-3 nonblocking system:
// ftree(n+n², r) with the paper's single-path deterministic routing.
func NewDeterministicSystem(n, r int) (*System, error) {
	f := topology.NewFoldedClos(n, n*n, r)
	rt, err := routing.NewPaperDeterministic(f)
	if err != nil {
		return nil, err
	}
	return &System{F: f, Router: rt, Class: Deterministic}, nil
}

// NewAdaptiveSystem builds the §V nonblocking system: ftree(n+m, r) with
// NONBLOCKINGADAPTIVE and m set to the simple worst-case budget
// ⌈n/(c+2)⌉·(c+1)·n (always sufficient; usually generous — measured
// demand is reported per pattern by the router).
func NewAdaptiveSystem(n, r int) (*System, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: adaptive systems need n >= 2")
	}
	c := conditions.SmallestC(n, r)
	m := conditions.AdaptiveSimpleM(n, c)
	f := topology.NewFoldedClos(n, m, r)
	rt, err := routing.NewNonblockingAdaptive(f)
	if err != nil {
		return nil, err
	}
	return &System{F: f, Router: rt, Class: LocalAdaptive}, nil
}

// NewRearrangeableSystem builds the centralized baseline: ftree(n+n, r)
// with global edge-coloring routing (Benes m = n).
func NewRearrangeableSystem(n, r int) *System {
	f := topology.NewFoldedClos(n, n, r)
	return &System{F: f, Router: routing.NewGlobalRearrangeable(f), Class: GlobalRearrangeable}
}

// Ports reports the system's host count.
func (s *System) Ports() int { return s.F.Ports() }

// VerifyReport is the outcome of a nonblocking verification.
type VerifyReport struct {
	// Method describes how the verdict was reached.
	Method string
	// Nonblocking is the verdict.
	Nonblocking bool
	// Detail is a counterexample description when blocking, else empty.
	Detail string
	// PatternsTested counts patterns routed by sweep methods (0 for the
	// exact Lemma-1 method).
	PatternsTested int
}

// Verify checks the system's nonblocking property. Deterministic systems
// get the exact Lemma-1 all-pairs decision; adaptive and global systems
// get an exhaustive sweep when the network is tiny (ports ≤ maxExhaustive)
// and a seeded randomized+structured sweep otherwise.
func (s *System) Verify(maxExhaustive, randomTrials int, seed int64) (*VerifyReport, error) {
	if pr, ok := s.Router.(routing.PairRouter); ok {
		res, err := analysis.CheckLemma1AllPairs(pr, s.Ports())
		if err != nil {
			return nil, err
		}
		rep := &VerifyReport{Method: "lemma1-all-pairs", Nonblocking: res.Nonblocking}
		if !res.Nonblocking {
			w, err := analysis.BlockingWitness(res, s.Ports())
			if err != nil {
				return nil, err
			}
			rep.Detail = fmt.Sprintf("blocking permutation: %s", w)
		}
		return rep, nil
	}
	if s.Ports() <= maxExhaustive {
		res := analysis.SweepExhaustive(s.Router, s.Ports())
		rep := &VerifyReport{Method: "exhaustive-sweep", Nonblocking: res.Nonblocking(), PatternsTested: res.Tested}
		if res.FirstBlocked != nil {
			rep.Detail = fmt.Sprintf("blocking permutation: %s", res.FirstBlocked)
		}
		if res.RouteErr != nil {
			rep.Detail = res.RouteErr.Error()
		}
		return rep, nil
	}
	res := analysis.SweepRandom(s.Router, s.Ports(), randomTrials, seed)
	rep := &VerifyReport{Method: "random-sweep", Nonblocking: res.Nonblocking(), PatternsTested: res.Tested}
	if res.FirstBlocked != nil {
		rep.Detail = fmt.Sprintf("blocking permutation: %s", res.FirstBlocked)
	}
	if res.RouteErr != nil {
		rep.Detail = res.RouteErr.Error()
	}
	return rep, nil
}

// RoutePattern routes one permutation and reports contention.
func (s *System) RoutePattern(p *permutation.Permutation) (*routing.Assignment, *analysis.Report, error) {
	a, err := s.Router.Route(p)
	if err != nil {
		return nil, nil, err
	}
	return a, analysis.Check(a), nil
}

// Proposal is one feasible design produced by the planner.
type Proposal struct {
	// Class is the routing class the design relies on.
	Class RoutingClass
	// N, M, R are the ftree(n+m, r) parameters.
	N, M, R int
	// Ports and Switches quantify the design.
	Ports, Switches int
	// MaxRadix is the largest switch radix the design requires.
	MaxRadix int
	// Note explains the condition backing the design.
	Note string
}

// CostPerPort is switches per host port.
func (p Proposal) CostPerPort() float64 {
	if p.Ports == 0 {
		return 0
	}
	return float64(p.Switches) / float64(p.Ports)
}

// Plan enumerates the best two-level nonblocking designs buildable from
// switches of the given radix for each routing class: for every feasible
// n it sizes m by the class's nonblocking condition, sets r to the largest
// value the top-switch radix allows (r = radix), and keeps the design with
// the most ports per class. It answers the paper's feasibility question
// directly.
func Plan(radix int) ([]Proposal, error) {
	if radix < 2 {
		return nil, fmt.Errorf("core: radix %d too small", radix)
	}
	best := map[RoutingClass]Proposal{}
	consider := func(p Proposal) {
		if cur, ok := best[p.Class]; !ok || p.Ports > cur.Ports ||
			(p.Ports == cur.Ports && p.Switches < cur.Switches) {
			best[p.Class] = p
		}
	}
	for n := 1; n <= radix-1; n++ {
		r := radix // top switches have radix r
		// Deterministic: m = n², bottom radix n+n².
		if n+n*n <= radix && r >= 2*n+1 {
			consider(Proposal{
				Class: Deterministic, N: n, M: n * n, R: r,
				Ports: n * r, Switches: r + n*n,
				MaxRadix: maxInt(n+n*n, r),
				Note:     "Theorem 3: m = n² single-path deterministic",
			})
		}
		// Local adaptive: m per the simple §V budget.
		if n >= 2 {
			c := conditions.SmallestC(n, r)
			m := conditions.AdaptiveSimpleM(n, c)
			if n+m <= radix {
				consider(Proposal{
					Class: LocalAdaptive, N: n, M: m, R: r,
					Ports: n * r, Switches: r + m,
					MaxRadix: maxInt(n+m, r),
					Note:     fmt.Sprintf("§V: m = ⌈n/(c+2)⌉(c+1)n with c = %d", c),
				})
			}
		}
		// Global rearrangeable (reference only): m = n.
		if 2*n <= radix {
			consider(Proposal{
				Class: GlobalRearrangeable, N: n, M: n, R: r,
				Ports: n * r, Switches: r + n,
				MaxRadix: maxInt(2*n, r),
				Note:     "Benes m = n; requires centralized control",
			})
		}
	}
	res := make([]Proposal, 0, len(best))
	for _, cls := range []RoutingClass{Deterministic, LocalAdaptive, GlobalRearrangeable} {
		if p, ok := best[cls]; ok {
			res = append(res, p)
		}
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("core: no nonblocking design fits radix %d", radix)
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
