package campaign

import (
	"fmt"
	"math/rand"

	"repro/internal/topology"
)

// Scenario selects how a campaign draws failure sets of a given size.
type Scenario string

const (
	// ScenarioLinks fails k distinct trunk cables drawn uniformly from
	// the r·m bottom↔top duplex cables — independent cable faults.
	ScenarioLinks Scenario = "links"
	// ScenarioTops fails k distinct top-level switches drawn uniformly —
	// independent switch faults, the paper's degraded-mode model.
	ScenarioTops Scenario = "tops"
	// ScenarioTopsCorrelated fails a contiguous (cyclic) block of k top
	// switches starting at a uniform offset — a shared power feed or a
	// staged firmware rollout taking out neighbors together. Correlation
	// is the worst case for the spared deterministic scheme, whose
	// spares are themselves contiguous.
	ScenarioTopsCorrelated Scenario = "tops-correlated"
	// ScenarioPods fails k distinct bottom-level switches, detaching
	// each one's n hosts — whole-pod loss.
	ScenarioPods Scenario = "pods"
)

// Scenarios lists every failure scenario.
func Scenarios() []Scenario {
	return []Scenario{ScenarioLinks, ScenarioTops, ScenarioTopsCorrelated, ScenarioPods}
}

// KnownScenario reports whether sc names a scenario.
func KnownScenario(sc Scenario) bool {
	switch sc {
	case ScenarioLinks, ScenarioTops, ScenarioTopsCorrelated, ScenarioPods:
		return true
	}
	return false
}

// ScenarioDomain returns how many elements of ftree(n+m, r) the scenario
// can fail — the upper bound for a campaign's MaxFailures.
func ScenarioDomain(sc Scenario, n, m, r int) (int, error) {
	switch sc {
	case ScenarioLinks:
		return r * m, nil
	case ScenarioTops, ScenarioTopsCorrelated:
		return m, nil
	case ScenarioPods:
		return r, nil
	}
	return 0, fmt.Errorf("campaign: unknown scenario %q", sc)
}

// SampleFailures draws one failure set with exactly k failed elements.
// The draw consumes a deterministic amount of rng state for a given
// (scenario, k, fabric), so derived seeds stay reproducible.
func SampleFailures(f *topology.FoldedClos, sc Scenario, k int, rng *rand.Rand) (topology.FailureSet, error) {
	dom, err := ScenarioDomain(sc, f.N, f.M, f.R)
	if err != nil {
		return topology.FailureSet{}, err
	}
	if k < 0 || k > dom {
		return topology.FailureSet{}, fmt.Errorf("campaign: cannot fail %d of %d %s elements", k, dom, sc)
	}
	var fs topology.FailureSet
	switch sc {
	case ScenarioLinks:
		for _, idx := range rng.Perm(dom)[:k] {
			fs.Trunks = append(fs.Trunks, topology.Trunk{Bottom: idx / f.M, Top: idx % f.M})
		}
	case ScenarioTops:
		fs.Tops = append(fs.Tops, rng.Perm(f.M)[:k]...)
	case ScenarioTopsCorrelated:
		start := rng.Intn(f.M)
		for i := 0; i < k; i++ {
			fs.Tops = append(fs.Tops, (start+i)%f.M)
		}
	case ScenarioPods:
		fs.Bottoms = append(fs.Bottoms, rng.Perm(f.R)[:k]...)
	}
	fs.Normalize()
	return fs, nil
}
