package campaign

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func TestRunSmallCampaign(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		N: 2, R: 4, Scenario: ScenarioTops, MaxFailures: 2, Samples: 2, Trials: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Curves) != 4 {
		t.Fatalf("curves = %d, want 4", len(rep.Curves))
	}
	for _, curve := range rep.Curves {
		if len(curve.Points) != 3 {
			t.Fatalf("scheme %s: points = %d, want 3 (k=0..2)", curve.Scheme, len(curve.Points))
		}
		p0 := curve.Points[0]
		if p0.Failures != 0 || p0.Samples != 1 || p0.Patterns != 10 {
			t.Fatalf("scheme %s: malformed k=0 point %+v", curve.Scheme, p0)
		}
		// Every scheme is clean on the pristine fabric (m = n²+2 here).
		if curve.Scheme != SchemeNaive && p0.DegradedFrac != 0 {
			t.Errorf("scheme %s degraded at k=0: %+v", curve.Scheme, p0)
		}
	}
	// The naive remap is the negative control: it must degrade under
	// failures while the spared scheme (within its spare budget) stays
	// clean.
	var naive, spared *[3]float64
	for _, c := range rep.Curves {
		var fr [3]float64
		for i, pt := range c.Points {
			fr[i] = pt.DegradedFrac
		}
		switch c.Scheme {
		case SchemeNaive:
			naive = &fr
		case SchemeSpared:
			spared = &fr
		}
	}
	if naive[1] == 0 && naive[2] == 0 {
		t.Error("naive remap never degraded under top-switch failures")
	}
	if spared[1] != 0 || spared[2] != 0 {
		t.Errorf("spared scheme degraded within its spare budget: %v", *spared)
	}
}

// The tentpole determinism claim: a parallel campaign is byte-identical
// to the sequential one.
func TestRunParallelMatchesSequential(t *testing.T) {
	for _, sc := range Scenarios() {
		cfg := Config{
			N: 2, R: 4, Scenario: sc, MaxFailures: 3, Samples: 2, Trials: 8, Seed: 7, Sim: true,
		}
		seq, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s sequential: %v", sc, err)
		}
		cfg.Workers = 8
		par, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", sc, err)
		}
		sj, _ := json.Marshal(seq)
		pj, _ := json.Marshal(par)
		if string(sj) != string(pj) {
			t.Fatalf("scenario %s: parallel output differs from sequential:\n%s\nvs\n%s", sc, sj, pj)
		}
	}
}

// Satellite property test: no fault-aware router may emit a path that
// traverses a failed link or switch, over random failure sets of every
// scenario and the full fault-routing zoo.
func TestNoRouterEmitsFailedPath(t *testing.T) {
	f := topology.NewFoldedClos(2, 7, 4) // m = n²+3: spares for the spared scheme
	rng := rand.New(rand.NewSource(99))
	for _, sc := range Scenarios() {
		dom, err := ScenarioDomain(sc, f.N, f.M, f.R)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 25; round++ {
			k := rng.Intn(dom + 1)
			fs, err := SampleFailures(f, sc, k, rng)
			if err != nil {
				t.Fatalf("%s k=%d: %v", sc, k, err)
			}
			view, err := fs.View(f)
			if err != nil {
				t.Fatal(err)
			}
			alive := view.AliveHosts()
			if len(alive) < 2 {
				continue
			}
			p := randomAlivePerm(f.Ports(), alive, rng)
			for _, scheme := range DefaultSchemes() {
				r, err := BuildRouter(f, scheme, view, 5)
				if err != nil {
					continue // spares exhausted etc: a legal outcome
				}
				a, err := r.Route(p)
				if err != nil {
					continue // unroutable pattern: a legal outcome
				}
				for i, paths := range a.PathSets {
					for _, path := range paths {
						if !path.Valid(f.Net) {
							t.Fatalf("%s/%s k=%d: invalid path for pair %v", sc, scheme, k, a.Pairs[i])
						}
						if !view.PathHealthy(path) {
							t.Fatalf("%s/%s k=%d: path for pair %v traverses failed element (set %s)",
								sc, scheme, k, a.Pairs[i], fs.Key())
						}
					}
				}
			}
		}
	}
}

func TestSampleFailuresShapes(t *testing.T) {
	f := topology.NewFoldedClos(2, 5, 3)
	rng := rand.New(rand.NewSource(3))
	fs, err := SampleFailures(f, ScenarioLinks, 4, rng)
	if err != nil || len(fs.Trunks) != 4 {
		t.Fatalf("links: %v %+v", err, fs)
	}
	fs, err = SampleFailures(f, ScenarioTops, 5, rng)
	if err != nil || len(fs.Tops) != 5 {
		t.Fatalf("tops: %v %+v", err, fs)
	}
	fs, err = SampleFailures(f, ScenarioTopsCorrelated, 3, rng)
	if err != nil || len(fs.Tops) != 3 {
		t.Fatalf("tops-correlated: %v %+v", err, fs)
	}
	fs, err = SampleFailures(f, ScenarioPods, 2, rng)
	if err != nil || len(fs.Bottoms) != 2 {
		t.Fatalf("pods: %v %+v", err, fs)
	}
	if _, err := SampleFailures(f, ScenarioPods, 4, rng); err == nil {
		t.Fatal("expected error: cannot fail 4 of 3 pods")
	}
	if _, err := SampleFailures(f, Scenario("bogus"), 1, rng); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 1, R: 4, Scenario: ScenarioTops},                               // n too small
		{N: 2, R: 4, Scenario: Scenario("nope")},                           // unknown scenario
		{N: 2, R: 4, Scenario: ScenarioPods, MaxFailures: 9},               // beyond domain
		{N: 2, R: 4, Scenario: ScenarioTops, Schemes: []string{"quantum"}}, // unknown scheme
		{N: 2, R: 4, Scenario: ScenarioTops, MaxFailures: -1, Samples: 1},  // negative k
		{N: 2, R: 4, Scenario: ScenarioTops, Trials: -1},                   // negative trials
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}
