// Package campaign is the fault-injection campaign engine: it sweeps a
// failure count k from 0 to a maximum, draws sampled failure sets of a
// scenario at each k, rebuilds every fault-aware routing scheme against
// each set, and fans the analysis and simulation engines over the sample —
// producing one "nonblocking margin vs failures" degradation curve per
// scheme (api.FailuresReport).
//
// Determinism: the campaign is a pure function of its Config. Every
// random draw (failure sets, test patterns, simulation injection) is
// seeded by a SplitMix64 hash of (Seed, stream, k, sample), so each
// (k, sample) cell is independent of every other and of the worker that
// runs it; failure sets and patterns depend only on (k, sample), never on
// the scheme, so all schemes face identical damage and identical traffic.
// Cells are merged in a fixed order, making parallel runs byte-identical
// to sequential ones (TestRunParallelMatchesSequential).
package campaign

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/permutation"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config parameterizes one campaign over ftree(n+m, r).
type Config struct {
	// N, M, R define the fabric. M = 0 defaults to n² + MaxFailures so
	// the spared scheme has exactly enough spares to survive to the edge
	// of the sweep.
	N, M, R int
	// Scenario selects the failure-set sampler.
	Scenario Scenario
	// MaxFailures is the largest failure count k swept (default 4,
	// clamped nowhere — validation rejects counts beyond the scenario's
	// domain).
	MaxFailures int
	// Samples is the number of failure sets drawn per k ≥ 1 (default 3);
	// k = 0 always runs exactly one (the pristine fabric).
	Samples int
	// Trials is the number of random permutations over the surviving
	// hosts measured per failure set per scheme (default 50).
	Trials int
	// Schemes lists campaign scheme names (see Schemes); empty selects
	// DefaultSchemes.
	Schemes []string
	// Seed drives every random draw.
	Seed int64
	// Workers > 1 runs cells on a worker pool; the report is
	// byte-identical to the sequential run regardless.
	Workers int
	// Sim additionally measures open-loop accepted load at offered 1.0
	// once per failure set.
	Sim bool
	// SimFlits and SimPackets parameterize that simulation (defaults 4
	// and 8, the nbsim defaults).
	SimFlits, SimPackets int
}

// Campaign scheme names.
const (
	SchemeAvoiding = "adaptive-avoiding"
	SchemeSpared   = "spared-deterministic"
	SchemeNaive    = "naive-remap"
	SchemeLocal    = "local-reroute"
)

// DefaultSchemes returns the full comparison: the adaptive avoiding
// router, the spared Theorem-3 scheme, the broken naive remap (negative
// control), and Bankhamer-style randomized local rerouting.
func DefaultSchemes() []string {
	return []string{SchemeAvoiding, SchemeSpared, SchemeNaive, SchemeLocal}
}

// KnownScheme reports whether name is a campaign scheme.
func KnownScheme(name string) bool {
	switch name {
	case SchemeAvoiding, SchemeSpared, SchemeNaive, SchemeLocal:
		return true
	}
	return false
}

// BuildRouter instantiates a campaign scheme against a failure view. An
// error means the scheme cannot serve this failure set at all (e.g.
// spares exhausted) — the campaign records it as a router failure.
func BuildRouter(f *topology.FoldedClos, scheme string, view *topology.FailureView, seed int64) (routing.Router, error) {
	switch scheme {
	case SchemeAvoiding:
		return routing.NewAvoidingAdaptive(f, view)
	case SchemeSpared:
		return routing.NewSparedDeterministicView(f, view)
	case SchemeNaive:
		return routing.NewNaiveRemapView(f, view)
	case SchemeLocal:
		return routing.NewLocalReroute(f, view, seed), nil
	}
	return nil, fmt.Errorf("campaign: unknown scheme %q", scheme)
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxFailures == 0 {
		cfg.MaxFailures = 4
	}
	if cfg.M == 0 {
		cfg.M = cfg.N*cfg.N + cfg.MaxFailures
	}
	if cfg.Samples == 0 {
		cfg.Samples = 3
	}
	if cfg.Trials == 0 {
		cfg.Trials = 50
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = DefaultSchemes()
	}
	if cfg.SimFlits == 0 {
		cfg.SimFlits = 4
	}
	if cfg.SimPackets == 0 {
		cfg.SimPackets = 8
	}
	return cfg
}

func (cfg Config) validate() error {
	if cfg.N < 2 || cfg.M < 1 || cfg.R < 1 {
		return fmt.Errorf("campaign: need n >= 2, m >= 1, r >= 1 (got n=%d m=%d r=%d)", cfg.N, cfg.M, cfg.R)
	}
	if cfg.MaxFailures < 0 || cfg.Samples < 1 || cfg.Trials < 1 {
		return fmt.Errorf("campaign: need max_failures >= 0, samples >= 1, trials >= 1")
	}
	dom, err := ScenarioDomain(cfg.Scenario, cfg.N, cfg.M, cfg.R)
	if err != nil {
		return err
	}
	if cfg.MaxFailures > dom {
		return fmt.Errorf("campaign: max_failures %d exceeds the %d failable %s elements of ftree(%d+%d,%d)",
			cfg.MaxFailures, dom, cfg.Scenario, cfg.N, cfg.M, cfg.R)
	}
	for _, s := range cfg.Schemes {
		if !KnownScheme(s) {
			return fmt.Errorf("campaign: unknown scheme %q", s)
		}
	}
	return nil
}

// splitmix64 is the SplitMix64 finalizer (same constants as
// routing/rng.go).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix derives an independent RNG seed from the campaign seed and a stream
// tag plus cell coordinates.
func mix(seed int64, parts ...uint64) int64 {
	h := uint64(seed)
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return int64(h)
}

// cellResult is the raw measurement of one (scheme, k, sample) cell.
type cellResult struct {
	routerFailed  bool
	patterns      int
	routeFailures int
	blocked       int
	routed        int
	maxLinkLoad   int
	sumMaxLoad    int64
	simRan        bool
	acceptedLoad  float64
}

type cellID struct{ scheme, k, sample int }

// Run executes the campaign. With cfg.Workers > 1 the cells run on a
// worker pool; the report is byte-identical either way.
func Run(ctx context.Context, cfg Config) (*api.FailuresReport, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := topology.NewFoldedClos(cfg.N, cfg.M, cfg.R)
	samplesFor := func(k int) int {
		if k == 0 {
			return 1
		}
		return cfg.Samples
	}
	var ids []cellID
	for si := range cfg.Schemes {
		for k := 0; k <= cfg.MaxFailures; k++ {
			for s := 0; s < samplesFor(k); s++ {
				ids = append(ids, cellID{si, k, s})
			}
		}
	}
	cells := make([]cellResult, len(ids))
	if cfg.Workers <= 1 {
		for i, id := range ids {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cells[i] = runCell(f, cfg, id)
		}
	} else {
		workers := cfg.Workers
		if workers > len(ids) {
			workers = len(ids)
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					cells[i] = runCell(f, cfg, ids[i])
				}
			}()
		}
	feed:
		for i := range ids {
			select {
			case idx <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(idx)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return reduce(f, cfg, samplesFor, cells), nil
}

// runCell measures one scheme against one sampled failure set. The
// failure set and test patterns are seeded by (k, sample) only, so every
// scheme of the campaign faces identical damage and identical traffic.
func runCell(f *topology.FoldedClos, cfg Config, id cellID) cellResult {
	var res cellResult
	lost := func() cellResult {
		// A scheme that cannot instantiate loses every pattern.
		res.routerFailed = true
		res.patterns = cfg.Trials
		res.routeFailures = cfg.Trials
		return res
	}
	rng := rand.New(rand.NewSource(mix(cfg.Seed, 1, uint64(id.k), uint64(id.sample))))
	fs, err := SampleFailures(f, cfg.Scenario, id.k, rng)
	if err != nil {
		return lost()
	}
	view, err := fs.View(f)
	if err != nil {
		return lost()
	}
	r, err := BuildRouter(f, cfg.Schemes[id.scheme], view, cfg.Seed)
	if err != nil {
		return lost()
	}
	alive := view.AliveHosts()
	if len(alive) < 2 {
		return res // nothing left to communicate
	}
	chk := analysis.NewChecker(f.Net)
	prng := rand.New(rand.NewSource(mix(cfg.Seed, 2, uint64(id.k), uint64(id.sample))))
	for trial := 0; trial < cfg.Trials; trial++ {
		p := randomAlivePerm(f.Ports(), alive, prng)
		res.patterns++
		if err := chk.AnalyzePattern(r, p); err != nil {
			res.routeFailures++
			continue
		}
		res.routed++
		ml := chk.MaxLoad()
		res.sumMaxLoad += int64(ml)
		if ml > res.maxLinkLoad {
			res.maxLinkLoad = ml
		}
		if chk.HasContention() {
			res.blocked++
		}
	}
	if cfg.Sim && res.routed > 0 {
		srng := rand.New(rand.NewSource(mix(cfg.Seed, 3, uint64(id.k), uint64(id.sample))))
		p := randomAlivePerm(f.Ports(), alive, srng)
		if acc, ok := simAccepted(f, r, p, cfg, mix(cfg.Seed, 4, uint64(id.k), uint64(id.sample))); ok {
			res.simRan = true
			res.acceptedLoad = acc
		}
	}
	return res
}

// randomAlivePerm draws a uniform permutation of the surviving hosts,
// embedded in the full host space as a partial permutation.
func randomAlivePerm(ports int, alive []int, rng *rand.Rand) *permutation.Permutation {
	p := permutation.New(ports)
	for i, j := range rng.Perm(len(alive)) {
		_ = p.Add(alive[i], alive[j]) // distinct srcs/dsts by construction
	}
	return p
}

// simAccepted runs one open-loop simulation at offered load 1.0 over a
// random surviving-host permutation and reports the accepted load.
func simAccepted(f *topology.FoldedClos, r routing.Router, p *permutation.Permutation, cfg Config, seed int64) (float64, bool) {
	var pairs [][2]int
	for _, pr := range p.Pairs() {
		if pr.Src != pr.Dst {
			pairs = append(pairs, [2]int{pr.Src, pr.Dst})
		}
	}
	if len(pairs) == 0 {
		return 0, false
	}
	var pathsFor func(s, d int) ([]topology.Path, error)
	if pr, ok := r.(routing.PairRouter); ok {
		pathsFor = sim.PairPathsFunc(pr)
	} else {
		// Pattern-dependent router (the avoiding adaptive): route the
		// whole pattern once and serve paths from the assignment.
		a, err := r.Route(p)
		if err != nil {
			return 0, false
		}
		pathsFor = sim.AssignmentPathsFunc(a)
	}
	res, err := sim.OpenLoop(f.Net, pairs, pathsFor, sim.OpenLoopConfig{
		PacketFlits:     cfg.SimFlits,
		Rate:            1.0,
		WarmupPackets:   2,
		MeasuredPackets: cfg.SimPackets,
		Seed:            seed,
	})
	if err != nil {
		return 0, false
	}
	return res.AcceptedLoad, true
}

// reduce folds the cells, in fixed order, into the per-scheme curves.
// All floating-point aggregates are computed here from exact integer (or
// order-fixed float) sums, which is what makes parallel output
// byte-identical to sequential.
func reduce(f *topology.FoldedClos, cfg Config, samplesFor func(int) int, cells []cellResult) *api.FailuresReport {
	rep := &api.FailuresReport{
		Network:     f.Net.Name,
		Hosts:       f.Ports(),
		Scenario:    string(cfg.Scenario),
		MaxFailures: cfg.MaxFailures,
		Samples:     cfg.Samples,
		Trials:      cfg.Trials,
		Seed:        cfg.Seed,
		Sim:         cfg.Sim,
	}
	i := 0
	for _, scheme := range cfg.Schemes {
		curve := api.FailureCurve{Scheme: scheme}
		for k := 0; k <= cfg.MaxFailures; k++ {
			pt := api.FailurePoint{Failures: k}
			var sumMax int64
			var sumAcc float64
			minAcc := math.Inf(1)
			routed, simCount := 0, 0
			for s := 0; s < samplesFor(k); s++ {
				c := cells[i]
				i++
				pt.Samples++
				if c.routerFailed {
					pt.RouterFailures++
				}
				pt.Patterns += c.patterns
				pt.RouteFailures += c.routeFailures
				pt.Blocked += c.blocked
				routed += c.routed
				sumMax += c.sumMaxLoad
				if c.maxLinkLoad > pt.MaxLinkLoad {
					pt.MaxLinkLoad = c.maxLinkLoad
				}
				if c.simRan {
					simCount++
					sumAcc += c.acceptedLoad
					if c.acceptedLoad < minAcc {
						minAcc = c.acceptedLoad
					}
				}
			}
			if pt.Patterns > 0 {
				pt.DegradedFrac = float64(pt.Blocked+pt.RouteFailures) / float64(pt.Patterns)
			}
			if routed > 0 {
				pt.MeanMaxLoad = float64(sumMax) / float64(routed)
			}
			if simCount > 0 {
				pt.AcceptedLoad = sumAcc / float64(simCount)
				pt.MinAcceptedLoad = minAcc
			}
			curve.Points = append(curve.Points, pt)
		}
		rep.Curves = append(rep.Curves, curve)
	}
	return rep
}
