package campaign

import (
	"fmt"
	"io"

	"repro/internal/api"
)

// Render writes the campaign report as the text tables used by nbverify
// -failures, nbreport's E20 section, and the fault-smoke golden file.
func Render(w io.Writer, rep *api.FailuresReport) {
	fmt.Fprintf(w, "fault campaign: %s (%d hosts), scenario %s, k = 0..%d, %d set(s)/k, %d trials/set, seed %d\n",
		rep.Network, rep.Hosts, rep.Scenario, rep.MaxFailures, rep.Samples, rep.Trials, rep.Seed)
	fmt.Fprintf(w, "degraded = blocked or unroutable patterns / tested; nonblocking margin is its complement\n")
	for _, curve := range rep.Curves {
		fmt.Fprintf(w, "\nscheme %s\n", curve.Scheme)
		if rep.Sim {
			fmt.Fprintf(w, "  %2s  %4s  %6s  %9s  %8s  %6s  %8s  %8s  %8s\n",
				"k", "sets", "rfail", "degraded", "blocked", "nroute", "maxload", "meanmax", "accepted")
		} else {
			fmt.Fprintf(w, "  %2s  %4s  %6s  %9s  %8s  %6s  %8s  %8s\n",
				"k", "sets", "rfail", "degraded", "blocked", "nroute", "maxload", "meanmax")
		}
		for _, pt := range curve.Points {
			line := fmt.Sprintf("  %2d  %4d  %6d  %8.1f%%  %8d  %6d  %8d  %8.2f",
				pt.Failures, pt.Samples, pt.RouterFailures, 100*pt.DegradedFrac,
				pt.Blocked, pt.RouteFailures, pt.MaxLinkLoad, pt.MeanMaxLoad)
			if rep.Sim {
				line += fmt.Sprintf("  %8.3f", pt.AcceptedLoad)
			}
			fmt.Fprintln(w, line)
		}
	}
}
