package design

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/api"
	"repro/internal/conditions"
)

// pairRouterNames lists the single-path deterministic routings, for which
// mode auto runs the exact Lemma-1 analysis at any size. Multipath
// routers get an exact verdict only from an exhaustive sweep (hosts ≤
// max_exhaustive); beyond that the randomized engine's verdict is
// empirical. This mirrors runVerify's engine selection.
var pairRouterNames = map[string]bool{
	"paper": true, "paper-folded": true, "dest-mod": true, "source-mod": true,
	"dest-switch-mod": true, "random-fixed": true,
	"mnt-dest-mod": true, "mnt-random": true,
}

// groupKey identifies one monotone family: fixed (n, r, router) on ftree,
// with m the searched dimension.
type groupKey struct {
	n, r   int
	router string
}

// group is the result of one tier-1 binary search: the smallest m in
// [n, hiTop] whose probe verdict is nonblocking (minM = hiTop+1 when the
// whole domain is blocking), the guarantee level that verdict certifies,
// and the boundary replays.
type group struct {
	hiTop  int
	minM   int
	level  int
	upper  *api.DesignReplay // probe at minM
	lower  *api.DesignReplay // probe at minM−1 (nil when minM = n: pigeonhole)
	upKey  string
	freshM map[int]bool // m values freshly verified by this search
}

type planner struct {
	cat  *api.DesignCatalog
	v    api.DesignVerify
	opts Options
	rep  *api.DesignReport

	groups map[groupKey]*group
	// doms holds decided points with level ≥ 2, the only ones that can
	// dominance-prune an undecided candidate. Processing is in ascending
	// cost order, so every member already costs no more than the
	// candidate under test.
	doms []*candidate
}

// Plan enumerates the catalog and decides every candidate through the
// three-tier planner, returning the effectiveness counters and the Pareto
// frontier. The report is deterministic for a fixed catalog and options.
func Plan(ctx context.Context, cat *api.DesignCatalog, opts Options) (*api.DesignReport, error) {
	if err := ValidateCatalog(cat); err != nil {
		return nil, err
	}
	cands, err := enumerate(cat)
	if err != nil {
		return nil, err
	}
	p := &planner{
		cat: cat, v: resolvedVerify(cat), opts: opts,
		rep:    &api.DesignReport{Candidates: len(cands)},
		groups: make(map[groupKey]*group),
	}
	// Cost-ascending processing order: cheaper points decide first so the
	// dominance check only ever looks backwards. Ties break by host count
	// (bigger first, so it can dominate same-cost smaller points) and
	// then by enumeration order, keeping the whole run deterministic.
	order := make([]*candidate, len(cands))
	copy(order, cands)
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.pt.CostPerPort != b.pt.CostPerPort {
			return a.pt.CostPerPort < b.pt.CostPerPort
		}
		if a.pt.Hosts != b.pt.Hosts {
			return a.pt.Hosts > b.pt.Hosts
		}
		return a.idx < b.idx
	})
	for i, c := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := p.decide(ctx, c); err != nil {
			return nil, err
		}
		if opts.Logf != nil && (i+1)%2000 == 0 {
			opts.Logf("design: %d/%d candidates decided (%d fresh runs)", i+1, len(order), p.rep.FreshRuns)
		}
	}
	p.rep.Frontier = frontier(order)
	return p.rep, nil
}

// frontier keeps the non-dominated decided points of the cost-ascending
// order: a point is dropped when an already-kept point has hosts ≥ and
// level ≥ (its cost is ≤ by the iteration order). Non-strict comparison
// makes the first of an exact tie win, so the result is deterministic —
// and identical with or without pruning, because a pruned candidate's
// dominator satisfies the same inequalities its own entry would have to
// beat.
func frontier(order []*candidate) []api.DesignPoint {
	var kept []*candidate
	for _, c := range order {
		if !c.decided || c.pruned {
			continue
		}
		dominated := false
		for _, k := range kept {
			if k.pt.Hosts >= c.pt.Hosts && k.pt.Level >= c.pt.Level {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, c)
		}
	}
	pts := make([]api.DesignPoint, len(kept))
	for i, c := range kept {
		pts[i] = c.pt
	}
	return pts
}

// settle finalizes a candidate's decision and updates the tier counters.
func (p *planner) settle(c *candidate, tier, level int, cert api.DesignCertificate) {
	cert.Tier = tier
	c.pt.Level = level
	c.pt.Guarantee = guaranteeName(level)
	c.pt.Certificate = cert
	c.decided = true
	switch tier {
	case 0:
		p.rep.Tier0++
	case 1:
		p.rep.Tier1++
	default:
		p.rep.Tier2++
	}
	if level >= 2 && !c.pruned {
		p.doms = append(p.doms, c)
	}
}

// optimisticLevel is the best guarantee a not-yet-verified candidate
// could still reach: 3 when an exact engine applies (single-path router,
// or a fabric small enough for an exhaustive sweep), 2 when only the
// randomized engine would run.
func (p *planner) optimisticLevel(c *candidate) int {
	if pairRouterNames[c.pt.Router] || c.pt.Hosts <= p.v.MaxExhaustive {
		return 3
	}
	return 2
}

// decide runs one candidate through the tiers.
func (p *planner) decide(ctx context.Context, c *candidate) error {
	if p.tier0(c) {
		return nil
	}
	// Tier 1a: dominance. A decided point with cost ≤, hosts ≥, and level
	// ≥ everything this candidate could achieve keeps it off the frontier
	// no matter how verification would come out — skip the verification.
	if !p.opts.NoPrune {
		opt := p.optimisticLevel(c)
		for _, d := range p.doms {
			if d.pt.Hosts >= c.pt.Hosts && d.pt.Level >= opt {
				c.pruned = true
				p.rep.Pruned++
				p.settle(c, 1, 0, api.DesignCertificate{
					Condition: "dominated",
					Citation:  fmt.Sprintf("dominated by %s (cost %.4f, %d hosts, level %d)", d.pt.Name, d.pt.CostPerPort, d.pt.Hosts, d.pt.Level),
				})
				return nil
			}
		}
	}
	switch c.pt.Family {
	case "ftree":
		return p.decideFtreeVerified(ctx, c)
	case "mnt":
		return p.decideMnt(ctx, c)
	}
	// xgft and multilevel are always decided at tier 0.
	return fmt.Errorf("design: internal: %s candidate %s fell through tier 0", c.pt.Family, c.pt.Name)
}

// tier0 decides a candidate from closed forms alone. Returns false when
// the candidate needs verification.
func (p *planner) tier0(c *candidate) bool {
	n, m, r := c.pt.N, c.pt.M, c.pt.R
	switch c.pt.Family {
	case "multilevel":
		p.settle(c, 0, 3, api.DesignCertificate{
			Condition: "multilevel-recursive",
			Citation:  "Discussion: recursive replacement of top-level switches with two-level nonblocking ftrees stays nonblocking at every scale",
		})
		return true
	case "mnt":
		// The telephone-sense floor is free; whether a sweep can say more
		// is tier 2's business.
		if !p.eligible(c.pt.Hosts) {
			p.settle(c, 0, 1, api.DesignCertificate{
				Condition: "mnt-rearrangeable",
				Citation:  "FT(N, l) is rearrangeably nonblocking in the telephone sense (Table I) but blocking under distributed control",
			})
			return true
		}
		return false
	}
	// ftree and xgft share the closed forms: XGFT(2; n, r; 1, m) is
	// ftree(n+m, r) in Öhring's notation.
	switch c.pt.Router {
	case "deterministic":
		p.settleDeterministic(c)
		return true
	case "adaptive":
		if n < 2 {
			// n = 1: one host per switch; m ≥ 1 deterministic routing is
			// already nonblocking, and SmallestC is undefined.
			p.settleDeterministic(c)
			return true
		}
		cDigits := conditions.SmallestC(n, r)
		if m >= conditions.AdaptiveTheorem5M(n, cDigits) {
			p.settle(c, 0, 3, api.DesignCertificate{
				Condition: "adaptive-theorem5",
				Citation:  fmt.Sprintf("Theorem 5: NONBLOCKINGADAPTIVE is nonblocking with m ≥ T(n)·(c+1)·n = %d (c = %d)", conditions.AdaptiveTheorem5M(n, cDigits), cDigits),
			})
			return true
		}
		if m < conditions.UplinkPigeonholeMinM(n) {
			p.settlePigeonhole(c)
			return true
		}
		// The band between n and the Theorem-5 budget stays closed-form:
		// a sweep cannot decide it, because NONBLOCKINGADAPTIVE's planner
		// errors (rather than producing a contended assignment) on
		// patterns whose configuration need exceeds m.
		p.settle(c, 0, 1, api.DesignCertificate{
			Condition: "adaptive-band-rearrangeable",
			Citation:  "below the Theorem-5 budget no closed form decides NONBLOCKINGADAPTIVE; certified rearrangeable only (Benes 1962, m ≥ n)",
		})
		return true
	case "paper":
		// The Theorem-3 scheme is the construction behind Theorem 2: it
		// exists exactly when m ≥ n², so this router never needs a sweep.
		if m >= conditions.DeterministicMinM(n) {
			p.settle(c, 0, 3, api.DesignCertificate{
				Condition: "paper-theorem3",
				Citation:  "Theorem 3: route (v,i)→(w,j) through top switch i·n+j; nonblocking for every permutation when m ≥ n²",
			})
			return true
		}
		if m < conditions.UplinkPigeonholeMinM(n) {
			p.settlePigeonhole(c)
			return true
		}
		p.settle(c, 0, 1, api.DesignCertificate{
			Condition: "rearrangeable-benes",
			Citation:  "Theorem-3 scheme needs m ≥ n²; below it the fabric is certified rearrangeable only (Benes 1962, m ≥ n)",
		})
		return true
	case "paper-folded":
		if m >= conditions.DeterministicMinM(n) {
			// Folding modulo m is the identity when m ≥ n²: same scheme,
			// same Theorem-3 guarantee.
			p.settle(c, 0, 3, api.DesignCertificate{
				Condition: "paper-theorem3",
				Citation:  "Theorem 3: with m ≥ n² the folded scheme equals the (i,j) ↦ i·n+j assignment, nonblocking for every permutation",
			})
			return true
		}
	}
	// Concrete routers below their closed-form regime.
	if m < conditions.UplinkPigeonholeMinM(n) {
		p.settlePigeonhole(c)
		return true
	}
	if !p.eligible(c.pt.Hosts) {
		p.settle(c, 0, 1, api.DesignCertificate{
			Condition: "verify-out-of-range",
			Citation:  fmt.Sprintf("%d hosts exceed the tier-2 budget (max_hosts %d); certified rearrangeable only (Benes 1962, m ≥ n)", c.pt.Hosts, p.v.MaxHosts),
		})
		return true
	}
	return false
}

// settleDeterministic applies Theorems 1–3 to the abstract single-path
// deterministic discipline.
func (p *planner) settleDeterministic(c *candidate) {
	n, m, r := c.pt.N, c.pt.M, c.pt.R
	switch {
	case m >= conditions.DeterministicMinM(n):
		p.settle(c, 0, 3, api.DesignCertificate{
			Condition: "det-theorem2",
			Citation:  fmt.Sprintf("Theorem 2: m ≥ n² = %d suffices for single-path deterministic routing (construction: Theorem 3)", conditions.DeterministicMinM(n)),
		})
	case !conditions.IsDeterministicNonblockingFeasible(n, m, r):
		if m < conditions.UplinkPigeonholeMinM(n) {
			p.settlePigeonhole(c)
			return
		}
		p.settle(c, 0, 1, api.DesignCertificate{
			Condition: "det-theorem1-infeasible",
			Citation:  "Theorems 1–3: no single-path deterministic routing is nonblocking at this m; certified rearrangeable only (Benes 1962, m ≥ n)",
		})
	default:
		// r < 2n+1 band: above the Theorem-1 necessary bound
		// ⌈(r−1)n/2⌉ but below the n² construction — feasibility open.
		p.settle(c, 0, 1, api.DesignCertificate{
			Condition: "det-small-r-band",
			Citation:  fmt.Sprintf("Theorem 1 admits m ≥ ⌈(r−1)n/2⌉ = %d for r < 2n+1, but no construction below n² is known; certified rearrangeable only", conditions.SmallTopMinM(n, r)),
		})
	}
}

func (p *planner) settlePigeonhole(c *candidate) {
	p.settle(c, 0, 0, api.DesignCertificate{
		Condition: "uplink-pigeonhole",
		Citation:  fmt.Sprintf("m = %d < n = %d: a cross-switch permutation loads some uplink with two SD pairs under any routing", c.pt.M, c.pt.N),
	})
}

// eligible reports whether a fabric of this size fits the tier-2 budget.
func (p *planner) eligible(hosts int) bool {
	return p.opts.Verify != nil && hosts <= p.v.MaxHosts
}

// shortcutMin returns the m at or above which tier 0 already certifies
// the router nonblocking, bounding the binary-search domain from above.
// Returns 0 when no closed form applies.
func (p *planner) shortcutMin(c *candidate) int {
	if c.pt.Router == "paper-folded" {
		return conditions.DeterministicMinM(c.pt.N)
	}
	return 0
}

// decideFtreeVerified settles a concrete-router ftree candidate by group
// binary search (tier 1, NoPrune off) or an individual probe.
func (p *planner) decideFtreeVerified(ctx context.Context, c *candidate) error {
	if p.opts.NoPrune {
		q := p.ftreeRequest(c.pt.N, c.pt.M, c.pt.R, c.pt.Router)
		return p.settleByProbe(ctx, c, q)
	}
	g, err := p.groupFor(ctx, c)
	if err != nil {
		return err
	}
	m := c.pt.M
	tier := 1
	if g.freshM[m] {
		tier = 2
	}
	switch {
	case m >= g.minM:
		cert := api.DesignCertificate{
			Condition: "monotone-above-minm",
			Citation:  fmt.Sprintf("nonblocking is monotone non-decreasing in m at fixed (n=%d, r=%d, %s); verified witness at m = %d", c.pt.N, c.pt.R, c.pt.Router, g.minM),
			MinM:      g.minM,
			SweepKey:  g.upKey,
		}
		if g.upper != nil {
			cert.Replays = append(cert.Replays, *g.upper)
		}
		if g.lower != nil {
			cert.Replays = append(cert.Replays, *g.lower)
		}
		p.settle(c, tier, g.level, cert)
	case g.minM > g.hiTop:
		cert := api.DesignCertificate{
			Condition: "no-nonblocking-m-found",
			Citation:  fmt.Sprintf("no m ≤ %d verified nonblocking for (n=%d, r=%d, %s); certified rearrangeable only (Benes 1962, m ≥ n)", g.hiTop, c.pt.N, c.pt.R, c.pt.Router),
		}
		if g.lower != nil {
			cert.Replays = append(cert.Replays, *g.lower)
		}
		p.settle(c, tier, 1, cert)
	default:
		cert := api.DesignCertificate{
			Condition: "monotone-below-minm",
			Citation:  fmt.Sprintf("m = %d is below the verified minimal nonblocking m = %d for (n=%d, r=%d, %s); certified rearrangeable only", m, g.minM, c.pt.N, c.pt.R, c.pt.Router),
			MinM:      g.minM,
		}
		if g.lower != nil {
			cert.Replays = append(cert.Replays, *g.lower)
		}
		p.settle(c, tier, 1, cert)
	}
	return nil
}

// decideMnt settles an m-port n-tree candidate by one direct probe —
// there is no m dimension to search.
func (p *planner) decideMnt(ctx context.Context, c *candidate) error {
	q := p.mntRequest(c.pt.Ports, c.pt.Levels, c.pt.Router)
	return p.settleByProbe(ctx, c, q)
}

// settleByProbe verifies one candidate at its own parameters and settles
// it from the verdict. The rearrangeable floor (level 1) holds even when
// the probe proves the routing blocking.
func (p *planner) settleByProbe(ctx context.Context, c *candidate, q *api.Request) error {
	rep, key, fresh, err := p.probe(ctx, q)
	tier := 1
	if fresh {
		tier = 2
	}
	if errors.Is(err, ErrInfeasible) {
		p.settle(c, tier, 1, api.DesignCertificate{
			Condition: "constructor-infeasible",
			Citation:  "router constructor rejects these parameters; certified rearrangeable only (Benes 1962, m ≥ n)",
		})
		return nil
	}
	if err != nil {
		return err
	}
	cert := api.DesignCertificate{
		SweepKey: key,
		Replays:  []api.DesignReplay{{Request: *q, WantVerdict: rep.Verdict, WantExact: rep.Exact}},
	}
	switch rep.Verdict {
	case "nonblocking":
		cert.Condition, cert.Citation = "verified-sweep", "exact verification: "+rep.Method
		p.settle(c, tier, 3, cert)
	case "no-blocking-found":
		if rep.Exact {
			cert.Condition, cert.Citation = "verified-sweep", "exact verification: "+rep.Method
			p.settle(c, tier, 3, cert)
		} else {
			cert.Condition, cert.Citation = "verified-sweep", "randomized verification (not a proof): "+rep.Method
			p.settle(c, tier, 2, cert)
		}
	default: // blocking
		cert.Condition = "verified-blocking"
		cert.Citation = "verification found a blocked permutation; the fabric keeps its telephone-sense rearrangeable floor (Benes 1962)"
		p.settle(c, tier, 1, cert)
	}
	return nil
}

// groupFor returns (running it on first use) the monotone binary search
// for the candidate's (n, r, router) group. The search domain is
// [n, hiTop]: below n the pigeonhole bound already decides, and at or
// above the router's closed-form shortcut tier 0 decides, so hiTop is the
// catalog's m-axis top clamped below the shortcut.
func (p *planner) groupFor(ctx context.Context, c *candidate) (*group, error) {
	key := groupKey{n: c.pt.N, r: c.pt.R, router: c.pt.Router}
	if g, ok := p.groups[key]; ok {
		return g, nil
	}
	n, r := c.pt.N, c.pt.R
	hiTop := axis(p.cat.M, defaultM).Max
	if sc := p.shortcutMin(c); sc > 0 && sc-1 < hiTop {
		hiTop = sc - 1
	}
	g := &group{hiTop: hiTop, freshM: make(map[int]bool)}
	p.groups[key] = g
	p.rep.Groups++
	if p.opts.Logf != nil {
		p.opts.Logf("design: group search (n=%d, r=%d, %s) over m ∈ [%d, %d]", n, r, c.pt.Router, n, hiTop)
	}

	// One probe, remembering boundary evidence for the certificates.
	test := func(m int) (bool, error) {
		q := p.ftreeRequest(n, m, r, c.pt.Router)
		rep, pkey, fresh, err := p.probe(ctx, q)
		if fresh {
			g.freshM[m] = true
		}
		if errors.Is(err, ErrInfeasible) {
			return false, nil
		}
		if err != nil {
			return false, err
		}
		replay := &api.DesignReplay{Request: *q, WantVerdict: rep.Verdict, WantExact: rep.Exact}
		if rep.Verdict == "blocking" {
			g.lower = replay
			return false, nil
		}
		g.upper, g.upKey = replay, pkey
		if rep.Exact {
			g.level = 3
		} else {
			g.level = 2
		}
		return true, nil
	}

	// Binary search for the smallest nonblocking m, assuming monotonicity
	// (the property test in design_test pins the assumption against a
	// linear scan). Invariant: P(lo) false, P(hi) true; lo starts at n−1,
	// false by the pigeonhole bound without a probe.
	if hiTop < n {
		g.minM = hiTop + 1 // empty domain: every group candidate was tier-0 decided
		return g, nil
	}
	ok, err := test(hiTop)
	if err != nil {
		return nil, err
	}
	if !ok {
		g.minM = hiTop + 1
		return g, nil
	}
	lo, hi := n-1, hiTop
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		ok, err := test(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	g.minM = hi
	// Re-point the boundary evidence at the boundary itself: the last
	// true probe may not have been at hi, and the last false not at hi−1.
	if g.upper == nil || g.upper.Request.M != g.minM {
		if _, err := test(g.minM); err != nil {
			return nil, err
		}
	}
	if g.minM > n && (g.lower == nil || g.lower.Request.M != g.minM-1) {
		if _, err := test(g.minM - 1); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// probe answers one verification request: shared memo first (tier-1
// evidence), then the injected VerifyFunc (tier 2). fresh reports whether
// a real run happened.
func (p *planner) probe(ctx context.Context, q *api.Request) (rep *api.VerifyReport, key string, fresh bool, err error) {
	key = q.CacheKey("verify")
	if p.opts.Memo != nil {
		if body, ok := p.opts.Memo.Get(key); ok {
			rep = &api.VerifyReport{}
			if uerr := json.Unmarshal(body, rep); uerr == nil {
				p.rep.MemoHits++
				return rep, key, false, nil
			}
			// An undecodable entry (foreign schema under a colliding key)
			// falls through to a fresh run.
		}
	}
	if p.opts.Verify == nil {
		return nil, key, false, fmt.Errorf("design: internal: probe without a verifier")
	}
	rep, err = p.opts.Verify(ctx, q)
	if err != nil {
		return nil, key, false, err
	}
	p.rep.FreshRuns++
	if p.opts.Memo != nil {
		if body, merr := json.Marshal(rep); merr == nil {
			p.opts.Memo.Put(key, body)
		}
	}
	return rep, key, true, nil
}

// ftreeRequest builds the fully-specified verify request for one ftree
// probe. Every normalize-filled field is set explicitly so the CacheKey
// equals the server's canonical job key for the same point — the parity
// is pinned by a test against server.VerifyCacheKey.
func (p *planner) ftreeRequest(n, m, r int, router string) *api.Request {
	return &api.Request{
		Topo: "ftree", N: n, M: m, R: r,
		Ports: 20, Levels: 2, // normalize parity for the unused mnt fields
		Routing: router, Mode: "auto",
		Trials: p.v.Trials, Seed: api.SeedPtr(p.v.Seed),
		MaxExhaustive: p.v.MaxExhaustive,
		Restarts:      8, Steps: 400,
		Pattern: "random", Flits: 4, Pkts: 8, Arbiter: "round-robin",
		SymReduce: true,
	}
}

// mntRequest is ftreeRequest for the m-port n-tree family.
func (p *planner) mntRequest(ports, levels int, router string) *api.Request {
	return &api.Request{
		Topo: "mnt", Ports: ports, Levels: levels,
		N: 4, M: 16, R: 20, // normalize parity for the unused ftree fields
		Routing: router, Mode: "auto",
		Trials: p.v.Trials, Seed: api.SeedPtr(p.v.Seed),
		MaxExhaustive: p.v.MaxExhaustive,
		Restarts:      8, Steps: 400,
		Pattern: "random", Flits: 4, Pkts: 8, Arbiter: "round-robin",
		SymReduce: true,
	}
}
