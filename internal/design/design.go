// Package design implements the nbdesign explorer: an enumerator over the
// (topology family × n × m × r × router) design space driven by a
// three-tier verification planner.
//
// Tier 0 answers candidates from the paper's closed forms in package
// conditions (Theorems 1–3 for deterministic routing, Theorem 5 for
// NONBLOCKINGADAPTIVE, the Benes rearrangeability condition, the recursive
// multi-level construction) as certified YES/NO without building a
// topology. Tier 1 exploits monotonicity — nonblocking is monotone
// non-decreasing in the top-switch count m at fixed (n, r, router) — so
// one binary search on m decides a whole group, and dominance pruning
// skips any candidate that is costlier and no more capable than an
// already-decided point. Tier 2 falls through to real verification
// (POST /v1/verify semantics: exact Lemma-1 analysis for single-path
// routers, symmetry-reduced exhaustive sweeps for small multipath fabrics,
// randomized sweeps beyond), memoized under the server's canonical job
// keys so the explorer and nbserve share one result cache.
//
// The output is the Pareto frontier of cost versus guarantee: every point
// carries a certificate — a closed-form citation, a monotonicity witness,
// or a sweep result key with replayable requests — at the tier that
// decided it.
package design

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/api"
	"repro/internal/cost"
	"repro/internal/store"
)

// VerifyFunc runs one verification probe (the semantics of POST
// /v1/verify). Implementations return ErrInfeasible (wrapped or bare) for
// candidates whose router cannot be constructed at the probed point —
// e.g. the Theorem-3 scheme below m = n² — which the planner treats as
// "not nonblocking here", never as a fatal error.
type VerifyFunc func(ctx context.Context, q *api.Request) (*api.VerifyReport, error)

// ErrInfeasible marks a probe that failed because the candidate cannot be
// built (router constructor rejected the parameters), as opposed to an
// execution failure.
var ErrInfeasible = errors.New("design: candidate not constructible at this point")

// Options configures a Plan run.
type Options struct {
	// Verify executes tier-2 probes. Nil disables tier 2: candidates the
	// closed forms cannot decide get conservative rearrangeable-only
	// certificates.
	Verify VerifyFunc
	// Memo caches probe results under the canonical /v1/verify keys.
	// Passing the server's result store makes the explorer and nbserve
	// share one cache. Nil runs without memoization.
	Memo store.Store
	// NoPrune disables tier 1 (the monotone binary search and dominance
	// pruning): every closed-form-undecidable candidate is verified
	// individually. The frontier is identical either way; the flag exists
	// to measure what the planner saves.
	NoPrune bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Tier-2 budget defaults (DesignVerify zero values).
const (
	defaultMaxHosts      = 48
	defaultMaxExhaustive = 8
	defaultTrials        = 200
	defaultSeed          = 1
)

// maxCatalogCandidates bounds the enumerated grid so a hostile
// /v1/design body cannot allocate without limit.
const maxCatalogCandidates = 1 << 20

// Axis defaults when the catalog leaves a range nil.
var (
	defaultN      = api.DesignRange{Min: 2, Max: 4}
	defaultR      = api.DesignRange{Min: 3, Max: 9}
	defaultM      = api.DesignRange{Min: 1, Max: 16}
	defaultPorts  = api.DesignRange{Min: 4, Max: 8}
	defaultLevels = api.DesignRange{Min: 2, Max: 3}
)

// Router vocabularies per family. The concrete ftree names are exactly
// the /v1/verify routing names; "deterministic" and "adaptive" are the
// closed-form disciplines of Theorems 1–3 and 5.
var (
	ftreeConcreteRouters = map[string]bool{
		"paper": true, "paper-folded": true, "dest-mod": true,
		"source-mod": true, "dest-switch-mod": true, "random-fixed": true,
		"adaptive": true, "greedy-local": true, "global": true, "spray": true,
	}
	abstractRouters = map[string]bool{"deterministic": true, "adaptive": true}
	mntRouters      = map[string]bool{"mnt-dest-mod": true, "mnt-random": true}
)

func knownFamily(f string) bool {
	switch f {
	case "ftree", "xgft", "mnt", "multilevel":
		return true
	}
	return false
}

// resolvedVerify fills the DesignVerify defaults.
func resolvedVerify(cat *api.DesignCatalog) api.DesignVerify {
	var v api.DesignVerify
	if cat.Verify != nil {
		v = *cat.Verify
	}
	if v.MaxHosts == 0 {
		v.MaxHosts = defaultMaxHosts
	}
	if v.MaxExhaustive == 0 {
		v.MaxExhaustive = defaultMaxExhaustive
	}
	if v.Trials == 0 {
		v.Trials = defaultTrials
	}
	if v.Seed == 0 {
		v.Seed = defaultSeed
	}
	return v
}

func axis(r *api.DesignRange, def api.DesignRange) api.DesignRange {
	if r == nil {
		return def
	}
	return *r
}

func axisLen(r api.DesignRange) int { return r.Max - r.Min + 1 }

// ValidateCatalog rejects malformed catalogs before any enumeration.
func ValidateCatalog(cat *api.DesignCatalog) error {
	if len(cat.Families) == 0 {
		return fmt.Errorf("design: catalog names no families")
	}
	seen := map[string]bool{}
	for _, f := range cat.Families {
		if !knownFamily(f) {
			return fmt.Errorf("design: unknown family %q (ftree | xgft | mnt | multilevel)", f)
		}
		if seen[f] {
			return fmt.Errorf("design: family %q listed twice", f)
		}
		seen[f] = true
	}
	for _, rt := range cat.Routers {
		if !ftreeConcreteRouters[rt] && !abstractRouters[rt] && !mntRouters[rt] {
			return fmt.Errorf("design: unknown router %q", rt)
		}
	}
	for _, ax := range []struct {
		name     string
		r        api.DesignRange
		min, max int
	}{
		{"n", axis(cat.N, defaultN), 1, 64},
		{"r", axis(cat.R, defaultR), 2, 1 << 16},
		{"m", axis(cat.M, defaultM), 1, 1 << 16},
		{"ports", axis(cat.Ports, defaultPorts), 2, 1 << 16},
		{"levels", axis(cat.Levels, defaultLevels), 2, 8},
	} {
		if ax.r.Min < ax.min || ax.r.Max > ax.max || ax.r.Max < ax.r.Min {
			return fmt.Errorf("design: %s range [%d, %d] outside [%d, %d] or empty",
				ax.name, ax.r.Min, ax.r.Max, ax.min, ax.max)
		}
	}
	if cat.MinHosts < 0 {
		return fmt.Errorf("design: min_hosts must be >= 0 (have %d)", cat.MinHosts)
	}
	if cat.Verify != nil {
		for _, p := range []struct {
			name string
			v    int
		}{
			{"max_hosts", cat.Verify.MaxHosts}, {"max_exhaustive", cat.Verify.MaxExhaustive},
			{"trials", cat.Verify.Trials},
		} {
			if p.v < 0 {
				return fmt.Errorf("design: verify.%s must be >= 0 (have %d)", p.name, p.v)
			}
		}
		if cat.Verify.Seed < 0 {
			return fmt.Errorf("design: verify.seed must be >= 0 (have %d)", cat.Verify.Seed)
		}
	}
	if g := gridSize(cat); g > maxCatalogCandidates {
		return fmt.Errorf("design: catalog enumerates %d candidates, limit %d", g, maxCatalogCandidates)
	}
	return nil
}

// gridSize upper-bounds the candidate count without enumerating.
func gridSize(cat *api.DesignCatalog) int {
	n, r, m := axis(cat.N, defaultN), axis(cat.R, defaultR), axis(cat.M, defaultM)
	ports, levels := axis(cat.Ports, defaultPorts), axis(cat.Levels, defaultLevels)
	nf, na, nm := routersFor(cat)
	total := 0
	for _, f := range cat.Families {
		switch f {
		case "ftree":
			total += axisLen(n) * axisLen(r) * axisLen(m) * len(nf)
		case "xgft":
			total += axisLen(n) * axisLen(r) * axisLen(m) * len(na)
		case "mnt":
			total += axisLen(ports) * axisLen(levels) * len(nm)
		case "multilevel":
			total += axisLen(n) * axisLen(levels)
		}
		if total > maxCatalogCandidates {
			return total
		}
	}
	return total
}

// routersFor splits the catalog's router list into the per-family
// selections (ftree gets concrete and abstract names, xgft abstract only,
// mnt its own), with defaults when a family would otherwise get none.
func routersFor(cat *api.DesignCatalog) (ftree, xgft, mnt []string) {
	for _, rt := range cat.Routers {
		if ftreeConcreteRouters[rt] || abstractRouters[rt] {
			ftree = append(ftree, rt)
		}
		if abstractRouters[rt] {
			xgft = append(xgft, rt)
		}
		if mntRouters[rt] {
			mnt = append(mnt, rt)
		}
	}
	if len(ftree) == 0 {
		ftree = []string{"deterministic"}
	}
	if len(xgft) == 0 {
		xgft = []string{"deterministic"}
	}
	if len(mnt) == 0 {
		mnt = []string{"mnt-dest-mod"}
	}
	return ftree, xgft, mnt
}

// candidate is one enumerated design point in flight through the planner.
type candidate struct {
	pt      api.DesignPoint
	idx     int // enumeration order, the deterministic tiebreak
	decided bool
	pruned  bool
}

// enumerate expands the catalog grid into candidates with identity and
// cost filled (pure arithmetic — no topology is built). Order is
// deterministic: families as listed, then router, n, r/ports/levels, m.
func enumerate(cat *api.DesignCatalog) ([]*candidate, error) {
	nAx, rAx, mAx := axis(cat.N, defaultN), axis(cat.R, defaultR), axis(cat.M, defaultM)
	portsAx, levelsAx := axis(cat.Ports, defaultPorts), axis(cat.Levels, defaultLevels)
	ftreeR, xgftR, mntR := routersFor(cat)

	var cands []*candidate
	add := func(pt api.DesignPoint) {
		if pt.Hosts < cat.MinHosts {
			return
		}
		cands = append(cands, &candidate{pt: pt, idx: len(cands)})
	}
	for _, fam := range cat.Families {
		switch fam {
		case "ftree", "xgft":
			routers := ftreeR
			if fam == "xgft" {
				routers = xgftR
			}
			for _, rt := range routers {
				for n := nAx.Min; n <= nAx.Max; n++ {
					for r := rAx.Min; r <= rAx.Max; r++ {
						for m := mAx.Min; m <= mAx.Max; m++ {
							d, err := cost.FtreeGeneral(n, m, r)
							if err != nil {
								return nil, err
							}
							name := d.Name
							if fam == "xgft" {
								// XGFT(2; n, r; 1, m) is the paper's
								// ftree(n+m, r) in Öhring's notation.
								name = fmt.Sprintf("XGFT(2;%d,%d;1,%d)", n, r, m)
							}
							add(api.DesignPoint{
								Family: fam, Name: name + "/" + rt,
								N: n, M: m, R: r, Router: rt,
								SwitchPorts: d.SwitchPorts, Switches: d.Switches,
								Hosts: d.Ports, CostPerPort: d.CostPerPort(),
							})
						}
					}
				}
			}
		case "mnt":
			for _, rt := range mntR {
				for ports := portsAx.Min; ports <= portsAx.Max; ports++ {
					if ports%2 != 0 {
						continue // FT(N, l) needs even N
					}
					for l := levelsAx.Min; l <= levelsAx.Max; l++ {
						d, err := cost.MPortNTreeDesign(ports, l)
						if err != nil {
							return nil, err
						}
						add(api.DesignPoint{
							Family: "mnt", Name: d.Name + "/" + rt,
							Ports: ports, Levels: l, Router: rt,
							SwitchPorts: d.SwitchPorts, Switches: d.Switches,
							Hosts: d.Ports, CostPerPort: d.CostPerPort(),
						})
					}
				}
			}
		case "multilevel":
			for n := nAx.Min; n <= nAx.Max; n++ {
				for l := levelsAx.Min; l <= levelsAx.Max; l++ {
					d := cost.MultiLevelNonblocking(n, l)
					add(api.DesignPoint{
						Family: "multilevel", Name: d.Name + "/recursive",
						N: n, Levels: l, Router: "recursive",
						SwitchPorts: d.SwitchPorts, Switches: d.Switches,
						Hosts: d.Ports, CostPerPort: d.CostPerPort(),
					})
				}
			}
		}
	}
	return cands, nil
}

// guaranteeName maps a level to its report string.
func guaranteeName(level int) string {
	switch level {
	case 3:
		return "nonblocking"
	case 2:
		return "empirical"
	case 1:
		return "rearrangeable"
	}
	return "none"
}
