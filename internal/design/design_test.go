// Package design_test exercises the planner from outside: through the
// exported Plan/SearchMinM/ReplayCondition surface and through a live
// nbserve (the external test package may import internal/server — the
// server's own import of internal/design is not a cycle through _test).
package design_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"testing"

	"repro/internal/api"
	"repro/internal/design"
	"repro/internal/server"
	"repro/internal/store"
)

// localVerify adapts the in-process /v1/verify engine to the planner,
// translating validation rejections into ErrInfeasible exactly like
// cmd/nbdesign's local mode.
func localVerify(ctx context.Context, q *api.Request) (*api.VerifyReport, error) {
	rep, err := server.RunVerifyRequest(ctx, q)
	if err != nil && server.IsBadRequest(err) {
		return nil, fmt.Errorf("%w: %v", design.ErrInfeasible, err)
	}
	return rep, err
}

func TestValidateCatalogRejects(t *testing.T) {
	cases := []struct {
		name string
		cat  api.DesignCatalog
	}{
		{"no families", api.DesignCatalog{}},
		{"unknown family", api.DesignCatalog{Families: []string{"torus"}}},
		{"duplicate family", api.DesignCatalog{Families: []string{"ftree", "ftree"}}},
		{"unknown router", api.DesignCatalog{Families: []string{"ftree"}, Routers: []string{"bogus"}}},
		{"empty n range", api.DesignCatalog{Families: []string{"ftree"}, N: &api.DesignRange{Min: 4, Max: 2}}},
		{"r below 2", api.DesignCatalog{Families: []string{"ftree"}, R: &api.DesignRange{Min: 1, Max: 3}}},
		{"negative min_hosts", api.DesignCatalog{Families: []string{"ftree"}, MinHosts: -1}},
		{"negative trials", api.DesignCatalog{Families: []string{"ftree"}, Verify: &api.DesignVerify{Trials: -1}}},
		{"grid too big", api.DesignCatalog{
			Families: []string{"ftree"},
			N:        &api.DesignRange{Min: 1, Max: 64},
			R:        &api.DesignRange{Min: 2, Max: 1 << 9},
			M:        &api.DesignRange{Min: 1, Max: 1 << 9},
		}},
	}
	for _, tc := range cases {
		if err := design.ValidateCatalog(&tc.cat); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
}

// TestSearchMinMMatchesLinearScan pins the planner's two load-bearing
// assumptions — nonblocking is monotone non-decreasing in m at fixed
// (n, r, router), and m < n is always blocking — by comparing the tier-1
// binary search against a full linear scan of the same verifier over a
// grid of (n, r, router). The scan also asserts monotonicity directly:
// once a verdict is nonblocking it must stay nonblocking for every
// larger m.
func TestSearchMinMMatchesLinearScan(t *testing.T) {
	ctx := context.Background()
	v := api.DesignVerify{MaxHosts: 48, MaxExhaustive: 7, Trials: 100, Seed: 1}
	opts := design.Options{Verify: localVerify, Memo: store.NewMemory(512)}
	defer opts.Memo.Close()

	cases := []struct {
		router string
		ns, rs []int
		mMax   func(n, r int) int
	}{
		// Single-path pair routers: the Lemma-1 analysis is exact at any
		// size. dest-mod/source-mod become nonblocking at m = n·r;
		// dest-switch-mod never does (two same-switch sources to one
		// destination switch always share a trunk).
		{"dest-mod", []int{2, 3}, []int{3, 4, 5}, func(n, r int) int { return n*r + 2 }},
		{"source-mod", []int{2, 3}, []int{3, 4}, func(n, r int) int { return n*r + 2 }},
		{"dest-switch-mod", []int{2, 3}, []int{3, 4}, func(n, r int) int { return n * r }},
		// Multipath routers on fabrics small enough for the exhaustive
		// engine (hosts ≤ max_exhaustive = 7): verdicts stay exact.
		{"spray", []int{2}, []int{3}, func(n, r int) int { return 8 }},
		{"greedy-local", []int{2}, []int{3}, func(n, r int) int { return 8 }},
	}
	probe := func(n, m, r int, router string) bool {
		q := &api.Request{
			Topo: "ftree", N: n, M: m, R: r, Ports: 20, Levels: 2,
			Routing: router, Mode: "auto",
			Trials: v.Trials, Seed: api.SeedPtr(v.Seed), MaxExhaustive: v.MaxExhaustive,
			Restarts: 8, Steps: 400,
			Pattern: "random", Flits: 4, Pkts: 8, Arbiter: "round-robin",
			SymReduce: true,
		}
		rep, err := localVerify(ctx, q)
		if err != nil {
			t.Fatalf("probe ftree(%d+%d,%d)/%s: %v", n, m, r, router, err)
		}
		return rep.Verdict != "blocking"
	}
	for _, tc := range cases {
		for _, n := range tc.ns {
			for _, r := range tc.rs {
				mMax := tc.mMax(n, r)
				linear := mMax + 1
				for m := 1; m <= mMax; m++ {
					ok := probe(n, m, r, tc.router)
					if ok && linear > mMax {
						linear = m
					}
					if !ok && linear <= mMax {
						t.Fatalf("%s n=%d r=%d: nonblocking at m=%d but blocking at m=%d — not monotone",
							tc.router, n, r, linear, m)
					}
					if ok && m < n {
						t.Fatalf("%s n=%d r=%d: nonblocking at m=%d < n — pigeonhole bound violated",
							tc.router, n, r, m)
					}
				}
				got, err := design.SearchMinM(ctx, n, r, mMax, tc.router, v, opts)
				if err != nil {
					t.Fatalf("SearchMinM(%s n=%d r=%d): %v", tc.router, n, r, err)
				}
				if got != linear {
					t.Errorf("%s n=%d r=%d: binary search minM=%d, linear scan minM=%d", tc.router, n, r, got, linear)
				}
			}
		}
	}
}

func loadCatalog(t *testing.T, path string) *api.DesignCatalog {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var cat api.DesignCatalog
	if err := json.Unmarshal(raw, &cat); err != nil {
		t.Fatal(err)
	}
	return &cat
}

// TestPlanParetoCatalog is the headline acceptance run: the committed
// pareto catalog enumerates over 10,000 candidates and the planner
// decides at least 95% of them at tiers 0–1 (no topology built), every
// frontier certificate re-deriving cleanly.
func TestPlanParetoCatalog(t *testing.T) {
	cat := loadCatalog(t, "../../catalogs/pareto.json")
	memo := store.NewMemory(4096)
	defer memo.Close()
	rep, err := design.Plan(context.Background(), cat, design.Options{Verify: localVerify, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates < 10000 {
		t.Fatalf("pareto catalog enumerates %d candidates, want >= 10000", rep.Candidates)
	}
	if rep.Tier0+rep.Tier1+rep.Tier2 != rep.Candidates {
		t.Fatalf("tier counts %d+%d+%d do not cover %d candidates", rep.Tier0, rep.Tier1, rep.Tier2, rep.Candidates)
	}
	cheap := float64(rep.Tier0+rep.Tier1) / float64(rep.Candidates)
	if cheap < 0.95 {
		t.Fatalf("tiers 0–1 decided %.2f%% of candidates, want >= 95%% (tier0=%d tier1=%d tier2=%d)",
			100*cheap, rep.Tier0, rep.Tier1, rep.Tier2)
	}
	if len(rep.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for i := range rep.Frontier {
		if err := design.ReplayCondition(&rep.Frontier[i]); err != nil {
			t.Error(err)
		}
	}
	t.Logf("pareto: %d candidates, tier0 %d (%.1f%%), tier1 %d, tier2 %d, %d pruned, %d groups, %d fresh runs, %d frontier points",
		rep.Candidates, rep.Tier0, 100*float64(rep.Tier0)/float64(rep.Candidates),
		rep.Tier1, rep.Tier2, rep.Pruned, rep.Groups, rep.FreshRuns, len(rep.Frontier))
}

// TestNoPruneFrontierEquality: tier 1 is an optimization, not a
// different answer — the frontier with the planner on equals the
// frontier with every undecided candidate verified individually.
func TestNoPruneFrontierEquality(t *testing.T) {
	cat := loadCatalog(t, "../../catalogs/smoke.json")
	run := func(noPrune bool) *api.DesignReport {
		memo := store.NewMemory(2048)
		defer memo.Close()
		rep, err := design.Plan(context.Background(), cat, design.Options{Verify: localVerify, Memo: memo, NoPrune: noPrune})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	pruned, exhaustive := run(false), run(true)
	if pruned.Candidates != exhaustive.Candidates {
		t.Fatalf("candidate counts differ: %d vs %d", pruned.Candidates, exhaustive.Candidates)
	}
	if exhaustive.Pruned != 0 || exhaustive.Groups != 0 {
		t.Fatalf("no-prune run still pruned %d / grouped %d", exhaustive.Pruned, exhaustive.Groups)
	}
	if len(pruned.Frontier) != len(exhaustive.Frontier) {
		t.Fatalf("frontier sizes differ: %d vs %d", len(pruned.Frontier), len(exhaustive.Frontier))
	}
	for i := range pruned.Frontier {
		p, q := pruned.Frontier[i], exhaustive.Frontier[i]
		if p.Name != q.Name || p.Level != q.Level || p.CostPerPort != q.CostPerPort || p.Hosts != q.Hosts {
			t.Errorf("frontier[%d] differs: %s level %d vs %s level %d", i, p.Name, p.Level, q.Name, q.Level)
		}
	}
	if pruned.FreshRuns > exhaustive.FreshRuns {
		t.Errorf("planner ran more probes (%d) than the no-prune baseline (%d)", pruned.FreshRuns, exhaustive.FreshRuns)
	}
}

// TestDesignEndToEndServer drives the full integration: POST /v1/design
// on a live nbserve, replay every frontier certificate through
// /v1/verify on the same server, check key parity with the shared result
// store (a replayed probe must be a cache hit — the explorer memoized it
// under the server's own canonical key).
func TestDesignEndToEndServer(t *testing.T) {
	srv := server.New(server.Config{Workers: 2, CacheEntries: 2048})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cat := loadCatalog(t, "../../catalogs/smoke.json")
	body, _ := json.Marshal(api.DesignRequest{Catalog: *cat})
	resp, err := http.Post(ts.URL+"/v1/design", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/design: %s", resp.Status)
	}
	var rep api.DesignReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	replayed := 0
	for i := range rep.Frontier {
		pt := &rep.Frontier[i]
		if err := design.ReplayCondition(pt); err != nil {
			t.Error(err)
			continue
		}
		for _, rp := range pt.Certificate.Replays {
			// Key parity: the certificate's sweep key is the server's
			// canonical key for the same request.
			if key := server.VerifyCacheKey(rp.Request); pt.Certificate.SweepKey != "" && rp.Request.M == pt.Certificate.MinM && key != pt.Certificate.SweepKey {
				t.Errorf("%s: replay key %q != certificate sweep key %q", pt.Name, key, pt.Certificate.SweepKey)
			}
			rb, _ := json.Marshal(rp.Request)
			vresp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(rb))
			if err != nil {
				t.Fatal(err)
			}
			var vrep api.VerifyReport
			if err := json.NewDecoder(vresp.Body).Decode(&vrep); err != nil {
				t.Fatal(err)
			}
			cache := vresp.Header.Get("X-Nbserve-Cache")
			vresp.Body.Close()
			if vresp.StatusCode != http.StatusOK {
				t.Errorf("%s: replay POST /v1/verify: %s", pt.Name, vresp.Status)
				continue
			}
			if vrep.Verdict != rp.WantVerdict || vrep.Exact != rp.WantExact {
				t.Errorf("%s: replay verdict %q (exact %v), certificate recorded %q (exact %v)",
					pt.Name, vrep.Verdict, vrep.Exact, rp.WantVerdict, rp.WantExact)
			}
			if cache != "hit" {
				t.Errorf("%s: replayed probe was a cache %s — explorer and server do not share the result store", pt.Name, cache)
			}
			replayed++
		}
	}
	if replayed == 0 {
		t.Fatal("no certificate carried a replay — the smoke catalog no longer exercises tier 2")
	}
}

// TestDesignRequestValidationHTTP pins the /v1/design error surface.
func TestDesignRequestValidationHTTP(t *testing.T) {
	srv := server.New(server.Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"unknown field", `{"catalog":{"families":["ftree"]},"bogus":1}`, http.StatusBadRequest},
		{"unknown family", `{"catalog":{"families":["torus"]}}`, http.StatusBadRequest},
		{"no families", `{"catalog":{}}`, http.StatusBadRequest},
		{"ok", `{"catalog":{"families":["multilevel"]}}`, http.StatusOK},
	} {
		resp, err := http.Post(ts.URL+"/v1/design", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// TestPlanDeterministic: two runs over the same catalog produce
// byte-identical reports — the property the golden-file smoke test and
// the /v1/design cacheability story rest on.
func TestPlanDeterministic(t *testing.T) {
	cat := loadCatalog(t, "../../catalogs/smoke.json")
	run := func() []byte {
		memo := store.NewMemory(2048)
		defer memo.Close()
		rep, err := design.Plan(context.Background(), cat, design.Options{Verify: localVerify, Memo: memo})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical Plan runs produced different reports")
	}
}
