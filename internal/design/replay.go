package design

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/api"
	"repro/internal/conditions"
)

// ReplayCondition re-evaluates a decided point's certificate condition
// from scratch: closed-form conditions are re-derived from the paper's
// arithmetic in package conditions, evidence-backed conditions are
// checked for structural consistency (the sweep replays themselves go
// back through /v1/verify — see the frontier replay test). A nil return
// means the certificate checks out.
func ReplayCondition(pt *api.DesignPoint) error {
	c := pt.Certificate
	n, m, r := pt.N, pt.M, pt.R
	fail := func(format string, args ...any) error {
		return fmt.Errorf("design: %s: certificate %q does not replay: %s",
			pt.Name, c.Condition, fmt.Sprintf(format, args...))
	}
	wantLevel := func(want int) error {
		if pt.Level != want {
			return fail("level %d, want %d", pt.Level, want)
		}
		return nil
	}
	switch c.Condition {
	case "multilevel-recursive":
		if pt.Family != "multilevel" {
			return fail("family %s", pt.Family)
		}
		return wantLevel(3)
	case "mnt-rearrangeable":
		if pt.Family != "mnt" {
			return fail("family %s", pt.Family)
		}
		return wantLevel(1)
	case "det-theorem2", "paper-theorem3":
		if m < conditions.DeterministicMinM(n) {
			return fail("m = %d < n² = %d", m, conditions.DeterministicMinM(n))
		}
		return wantLevel(3)
	case "det-theorem1-infeasible":
		if conditions.IsDeterministicNonblockingFeasible(n, m, r) {
			return fail("Theorems 1–3 do not exclude (n=%d, m=%d, r=%d)", n, m, r)
		}
		if m < conditions.UplinkPigeonholeMinM(n) {
			return fail("m = %d < n: the pigeonhole condition applies instead", m)
		}
		return wantLevel(1)
	case "det-small-r-band":
		if r >= 2*n+1 {
			return fail("r = %d ≥ 2n+1: the band only exists for small r", r)
		}
		if !conditions.IsDeterministicNonblockingFeasible(n, m, r) || m >= conditions.DeterministicMinM(n) {
			return fail("(n=%d, m=%d, r=%d) is not in the open band", n, m, r)
		}
		return wantLevel(1)
	case "adaptive-theorem5":
		if n < 2 {
			return fail("n = %d < 2", n)
		}
		need := conditions.AdaptiveTheorem5M(n, conditions.SmallestC(n, r))
		if m < need {
			return fail("m = %d below the Theorem-5 budget %d", m, need)
		}
		return wantLevel(3)
	case "adaptive-band-rearrangeable":
		if n < 2 {
			return fail("n = %d < 2", n)
		}
		need := conditions.AdaptiveTheorem5M(n, conditions.SmallestC(n, r))
		if m >= need || m < conditions.UplinkPigeonholeMinM(n) {
			return fail("m = %d is not in [n, %d)", m, need)
		}
		return wantLevel(1)
	case "uplink-pigeonhole":
		if r < 2 && pt.Family != "mnt" {
			return fail("r = %d < 2: the pigeonhole argument needs a cross-switch pair", r)
		}
		if m >= conditions.UplinkPigeonholeMinM(n) {
			return fail("m = %d ≥ n = %d", m, n)
		}
		return wantLevel(0)
	case "rearrangeable-benes":
		if m < conditions.ClosRearrangeableM(n) || m >= conditions.DeterministicMinM(n) {
			return fail("m = %d is not in [n, n²)", m)
		}
		return wantLevel(1)
	case "verify-out-of-range", "constructor-infeasible", "no-nonblocking-m-found", "dominated":
		// Conservative floors and prune markers carry no re-derivable
		// arithmetic beyond the level they claim.
		if c.Condition == "dominated" {
			return nil
		}
		return wantLevel(1)
	case "monotone-above-minm":
		if c.MinM < 1 {
			return fail("no MinM witness")
		}
		if m < c.MinM {
			return fail("m = %d below the witness MinM = %d", m, c.MinM)
		}
		if len(c.Replays) == 0 || c.Replays[0].Request.M != c.MinM {
			return fail("missing the MinM replay")
		}
		if pt.Level < 2 {
			return fail("level %d below the verified witness level", pt.Level)
		}
		return nil
	case "monotone-below-minm":
		if c.MinM < 1 || m >= c.MinM {
			return fail("m = %d is not below MinM = %d", m, c.MinM)
		}
		if m < conditions.UplinkPigeonholeMinM(n) {
			return fail("m = %d < n: the pigeonhole condition applies instead", m)
		}
		return wantLevel(1)
	case "verified-sweep":
		if len(c.Replays) == 0 {
			return fail("no replay")
		}
		rp := c.Replays[0]
		switch rp.WantVerdict {
		case "nonblocking":
			return wantLevel(3)
		case "no-blocking-found":
			if rp.WantExact {
				return wantLevel(3)
			}
			return wantLevel(2)
		}
		return fail("verdict %q does not support a nonblocking guarantee", rp.WantVerdict)
	case "verified-blocking":
		if len(c.Replays) == 0 || c.Replays[0].WantVerdict != "blocking" {
			return fail("no blocking replay")
		}
		return wantLevel(1)
	}
	return fail("unknown condition")
}

// SearchMinM runs the planner's tier-1 binary search standalone: the
// smallest m in [1, mMax] for which the verifier reports ftree(n+m, r)
// nonblocking under router (mMax+1 when none is). It assumes — like the
// planner — that nonblocking is monotone non-decreasing in m and that
// m < n is excluded by the pigeonhole bound; the property test compares
// it against a full linear scan to pin both assumptions.
func SearchMinM(ctx context.Context, n, r, mMax int, router string, v api.DesignVerify, opts Options) (int, error) {
	if opts.Verify == nil {
		return 0, fmt.Errorf("design: SearchMinM needs a verifier")
	}
	p := &planner{v: v, opts: opts, rep: &api.DesignReport{}}
	test := func(m int) (bool, error) {
		rep, _, _, err := p.probe(ctx, p.ftreeRequest(n, m, r, router))
		if errors.Is(err, ErrInfeasible) {
			return false, nil
		}
		if err != nil {
			return false, err
		}
		return rep.Verdict != "blocking", nil
	}
	if mMax < n {
		return mMax + 1, nil
	}
	ok, err := test(mMax)
	if err != nil {
		return 0, err
	}
	if !ok {
		return mMax + 1, nil
	}
	lo, hi := n-1, mMax
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		ok, err := test(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
