package api

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSeedZeroRoundTrip is the regression for the seed-0 hole: an explicit
// {"seed": 0} must survive a JSON round-trip as zero, stay distinct from
// an absent seed, and produce its own cache key.
func TestSeedZeroRoundTrip(t *testing.T) {
	var q Request
	if err := json.Unmarshal([]byte(`{"seed":0}`), &q); err != nil {
		t.Fatal(err)
	}
	if q.Seed == nil || *q.Seed != 0 {
		t.Fatalf("seed 0 decoded as %v", q.Seed)
	}
	if q.SeedValue() != 0 {
		t.Fatalf("SeedValue() = %d, want 0", q.SeedValue())
	}
	out, err := json.Marshal(&q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"seed":0`) {
		t.Fatalf("seed 0 dropped on marshal: %s", out)
	}

	var absent Request
	if err := json.Unmarshal([]byte(`{}`), &absent); err != nil {
		t.Fatal(err)
	}
	if absent.Seed != nil {
		t.Fatalf("absent seed decoded as %v", *absent.Seed)
	}
	if absent.SeedValue() != 1 {
		t.Fatalf("absent SeedValue() = %d, want the default 1", absent.SeedValue())
	}
	if absent.CacheKey("verify") == q.CacheKey("verify") {
		t.Fatal("seed 0 and absent seed share a cache key")
	}

	// Canonicality across the pointer change: absent and explicit seed 1
	// remain one cache entry.
	one := Request{Seed: SeedPtr(1)}
	if absent.CacheKey("verify") != one.CacheKey("verify") {
		t.Fatal("absent seed and explicit seed 1 diverged")
	}
}

// TestShardKeying: the shard prefix renders canonically, participates in
// the cache key only when set, and distinct shards get distinct keys.
func TestShardKeying(t *testing.T) {
	if got := ShardID([]int{2, 0, 11}); got != "2.0.11" {
		t.Fatalf("ShardID = %q", got)
	}
	if got := ShardID(nil); got != "" {
		t.Fatalf("ShardID(nil) = %q", got)
	}
	base := Request{N: 2, R: 4}
	withNil := base
	withNil.ShardPrefix = nil
	if base.CacheKey("verify/shard") != withNil.CacheKey("verify/shard") {
		t.Fatal("nil shard prefix changed the key")
	}
	a, b := base, base
	a.ShardPrefix = []int{0}
	b.ShardPrefix = []int{1}
	if a.CacheKey("verify/shard") == base.CacheKey("verify/shard") {
		t.Fatal("shard prefix absent from the key")
	}
	if a.CacheKey("verify/shard") == b.CacheKey("verify/shard") {
		t.Fatal("distinct shards share a key")
	}
	if !strings.Contains(a.CacheKey("verify/shard"), "|shard=0") {
		t.Fatalf("key missing shard segment: %s", a.CacheKey("verify/shard"))
	}
}
