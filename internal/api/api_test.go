package api

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSeedZeroRoundTrip is the regression for the seed-0 hole: an explicit
// {"seed": 0} must survive a JSON round-trip as zero, stay distinct from
// an absent seed, and produce its own cache key.
func TestSeedZeroRoundTrip(t *testing.T) {
	var q Request
	if err := json.Unmarshal([]byte(`{"seed":0}`), &q); err != nil {
		t.Fatal(err)
	}
	if q.Seed == nil || *q.Seed != 0 {
		t.Fatalf("seed 0 decoded as %v", q.Seed)
	}
	if q.SeedValue() != 0 {
		t.Fatalf("SeedValue() = %d, want 0", q.SeedValue())
	}
	out, err := json.Marshal(&q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"seed":0`) {
		t.Fatalf("seed 0 dropped on marshal: %s", out)
	}

	var absent Request
	if err := json.Unmarshal([]byte(`{}`), &absent); err != nil {
		t.Fatal(err)
	}
	if absent.Seed != nil {
		t.Fatalf("absent seed decoded as %v", *absent.Seed)
	}
	if absent.SeedValue() != 1 {
		t.Fatalf("absent SeedValue() = %d, want the default 1", absent.SeedValue())
	}
	if absent.CacheKey("verify") == q.CacheKey("verify") {
		t.Fatal("seed 0 and absent seed share a cache key")
	}

	// Canonicality across the pointer change: absent and explicit seed 1
	// remain one cache entry.
	one := Request{Seed: SeedPtr(1)}
	if absent.CacheKey("verify") != one.CacheKey("verify") {
		t.Fatal("absent seed and explicit seed 1 diverged")
	}
}
