package api

// Design-explorer schema: the input catalog and output report of
// cmd/nbdesign and POST /v1/design. The types live here (not in
// internal/design) so the planner, the server, and the CLIs share one
// JSON vocabulary without an import cycle — exactly like Request and the
// engine reports above.

// DesignRange is an inclusive integer interval of a catalog axis.
type DesignRange struct {
	Min int `json:"min"`
	Max int `json:"max"`
}

// DesignVerify bounds the planner's tier-2 (real-verification) budget and
// pins the sweep parameters so every probe has one canonical cache key.
type DesignVerify struct {
	// MaxHosts is the largest topology (host count) the planner will
	// verify for real; bigger candidates fall back to closed-form
	// certificates only. 0 selects 48.
	MaxHosts int `json:"max_hosts,omitempty"`
	// MaxExhaustive and Trials mirror the verify request fields: sweeps up
	// to MaxExhaustive hosts are exhaustive (symmetry-reduced), larger
	// multipath fabrics fall back to Trials random patterns. 0 selects
	// 8 / 200.
	MaxExhaustive int `json:"max_exhaustive,omitempty"`
	Trials        int `json:"trials,omitempty"`
	// Seed is the RNG seed of randomized probes (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// DesignCatalog is the input of the design-space explorer: the axes of
// the (family × n × m × r × router) grid to enumerate.
type DesignCatalog struct {
	// Families to enumerate: ftree | xgft | mnt | multilevel.
	Families []string `json:"families"`
	// Routers: for ftree, any routing name POST /v1/verify accepts plus
	// the closed-form disciplines "deterministic" and "adaptive"; xgft
	// uses only the closed-form disciplines; mnt uses mnt-dest-mod /
	// mnt-random. Families ignore routers that do not apply to them.
	// Empty selects "deterministic" (and mnt-dest-mod for mnt).
	Routers []string `json:"routers,omitempty"`
	// Grid axes. ftree/xgft enumerate n × r × m; mnt enumerates
	// ports × levels (odd port counts are skipped — FT(N, l) needs even
	// N); multilevel enumerates n × levels. Nil axes pick small defaults.
	N      *DesignRange `json:"n,omitempty"`
	R      *DesignRange `json:"r,omitempty"`
	M      *DesignRange `json:"m,omitempty"`
	Ports  *DesignRange `json:"ports,omitempty"`
	Levels *DesignRange `json:"levels,omitempty"`
	// MinHosts drops candidates supporting fewer hosts before planning.
	MinHosts int `json:"min_hosts,omitempty"`
	// Verify bounds the tier-2 budget; nil selects the defaults above.
	Verify *DesignVerify `json:"verify,omitempty"`
}

// DesignRequest is the body of POST /v1/design.
type DesignRequest struct {
	Catalog DesignCatalog `json:"catalog"`
	// NoPrune disables the tier-1 planner (monotone binary search on m and
	// dominance pruning): every closed-form-undecidable candidate is
	// verified individually. The frontier is identical either way — the
	// flag exists to measure what the planner saves.
	NoPrune   bool  `json:"no_prune,omitempty"`
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// DesignReplay is one verification request whose re-execution reproduces
// the evidence a certificate rests on: POST Request to /v1/verify and
// compare the verdict.
type DesignReplay struct {
	Request     Request `json:"request"`
	WantVerdict string  `json:"want_verdict"`
	WantExact   bool    `json:"want_exact"`
}

// DesignCertificate says why a frontier point's guarantee level holds and
// at which planner tier it was decided: 0 = closed form (no topology
// built), 1 = monotonicity/memo (derived from another point's evidence),
// 2 = fresh verification run.
type DesignCertificate struct {
	Tier int `json:"tier"`
	// Condition is the machine-checkable condition id
	// (design.ReplayCondition re-evaluates it); Citation is the
	// human-readable source in the paper.
	Condition string `json:"condition"`
	Citation  string `json:"citation"`
	// MinM is the monotonicity witness: the smallest top-switch count of
	// this (family, n, r, router) group that verified nonblocking
	// (0 when the certificate is not monotonicity-based).
	MinM int `json:"min_m,omitempty"`
	// SweepKey is the canonical /v1/verify cache key of the deciding
	// sweep, shared with the nbserve result store.
	SweepKey string `json:"sweep_key,omitempty"`
	// Replays reproduce the sweep evidence; empty for pure closed forms.
	Replays []DesignReplay `json:"replays,omitempty"`
}

// DesignPoint is one decided candidate: identity, cost, and certified
// guarantee. Level orders the guarantees: 3 = certified nonblocking
// (closed form or exact sweep), 2 = empirically nonblocking (randomized
// sweep found no blocking; not a proof), 1 = rearrangeably nonblocking in
// the telephone sense only, 0 = blocking / no guarantee.
type DesignPoint struct {
	Family string `json:"family"`
	Name   string `json:"name"`
	N      int    `json:"n,omitempty"`
	M      int    `json:"m,omitempty"`
	R      int    `json:"r,omitempty"`
	Ports  int    `json:"ports,omitempty"`
	Levels int    `json:"levels,omitempty"`
	Router string `json:"router"`

	SwitchPorts int     `json:"switch_ports"`
	Switches    int     `json:"switches"`
	Hosts       int     `json:"hosts"`
	CostPerPort float64 `json:"cost_per_port"`

	Level       int               `json:"level"`
	Guarantee   string            `json:"guarantee"`
	Certificate DesignCertificate `json:"certificate"`
}

// DesignReport is the explorer output: planner effectiveness counters and
// the Pareto frontier of cost versus guarantee. The report is fully
// deterministic for a fixed catalog (no timing, no map iteration), so it
// can be diffed against a golden file.
type DesignReport struct {
	// Candidates enumerated (after the MinHosts filter), and how many were
	// decided at each tier. Tier1 includes dominance-pruned candidates
	// (Pruned counts them separately) and memo/monotonicity decisions.
	Candidates int `json:"candidates"`
	Tier0      int `json:"tier0"`
	Tier1      int `json:"tier1"`
	Tier2      int `json:"tier2"`
	Pruned     int `json:"pruned"`
	// Groups is the number of (family, n, r, router) binary searches run;
	// FreshRuns the fresh verifications they (and direct probes) cost;
	// MemoHits the probes answered by the shared result store.
	Groups    int `json:"groups"`
	FreshRuns int `json:"fresh_runs"`
	MemoHits  int `json:"memo_hits"`
	// Frontier holds the non-dominated points, cheapest first: no other
	// point has cost-per-port ≤, hosts ≥, and level ≥ all at once.
	Frontier []DesignPoint `json:"frontier"`
}
