// Package api defines the machine-readable request/response schemas shared
// by the nbserve HTTP service and the CLI tools. The simulation report here
// is the exact `nbsim -json` schema (documented in EXPERIMENTS.md), so
// tooling written against the CLI output consumes nbserve responses
// unchanged, and vice versa. Everything round-trips through encoding/json.
package api

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Request is the body of every nbserve POST endpoint. The endpoint path
// selects the operation; the topology/routing/workload fields mirror the
// nbsim and nbverify flags one for one. Zero values select the same
// defaults as the CLIs.
type Request struct {
	// Topology: ftree (default) is the paper's folded Clos ftree(n+m, r);
	// mnt is the m-port n-tree baseline.
	Topo   string `json:"topo,omitempty"`
	N      int    `json:"n,omitempty"`
	M      int    `json:"m,omitempty"` // 0 = n² (Theorem-3 provisioning)
	R      int    `json:"r,omitempty"`
	Ports  int    `json:"ports,omitempty"`  // mnt
	Levels int    `json:"levels,omitempty"` // mnt

	// Routing scheme, same names as the CLIs: paper | paper-folded |
	// dest-mod | source-mod | dest-switch-mod | random-fixed | adaptive |
	// greedy-local | global | spray | mnt-dest-mod | mnt-random.
	Routing    string `json:"routing,omitempty"`
	SprayWidth int    `json:"spray_width,omitempty"`

	// Verification (POST /v1/verify). Mode: auto (default) picks the exact
	// Lemma-1 analysis for single-path routers and a sweep otherwise;
	// exhaustive | exhaustive-parallel | random force an engine. Forcing an
	// exhaustive engine over more than max_exhaustive hosts is refused with
	// a 400 (hosts! patterns): raising max_exhaustive in the request is the
	// explicit opt-in for bigger sweeps.
	Mode   string `json:"mode,omitempty"`
	Trials int    `json:"trials,omitempty"`
	// Seed is a pointer so "absent" (nil → default 1) is distinct from an
	// explicit {"seed": 0}: seed 0 is a legal, requestable RNG seed.
	// Construct literals with SeedPtr; read through SeedValue.
	Seed          *int64 `json:"seed,omitempty"`
	MaxExhaustive int    `json:"max_exhaustive,omitempty"`
	FirstBlocked  bool   `json:"first_blocked,omitempty"`
	Workers       int    `json:"workers,omitempty"`

	// Adversarial search (POST /v1/worstcase).
	Restarts int `json:"restarts,omitempty"`
	Steps    int `json:"steps,omitempty"`

	// Simulation (POST /v1/sim), mirroring nbsim: pattern random | shift |
	// rotate | transpose, or open_loop for the rate sweep.
	Pattern  string `json:"pattern,omitempty"`
	Flits    int    `json:"flits,omitempty"`
	Pkts     int    `json:"pkts,omitempty"`
	Arbiter  string `json:"arbiter,omitempty"`
	OpenLoop bool   `json:"open_loop,omitempty"`

	// Shard selection (POST /v1/verify/shard): sweep only the full
	// permutations whose sources 0..len(shard_prefix)−1 send to these
	// destinations. Set by the distributed sweep coordinator when it fans
	// one exhaustive sweep across worker nbserve nodes; empty everywhere
	// else.
	ShardPrefix []int `json:"shard_prefix,omitempty"`

	// SymShard selects one contiguous range [lo, hi) of top-level necklace
	// indices of the symmetry-reduced orbit enumeration
	// (permutation.BlockSymmetry.Shards). Only valid on /v1/verify/shard,
	// only together with sym_reduce, and mutually exclusive with
	// shard_prefix. Set by the coordinator when it fans a symmetry-reduced
	// sweep across workers.
	SymShard []int `json:"sym_shard,omitempty"`

	// Failures configures the fault-injection campaign (POST /v1/failures)
	// and is only valid there. Nil everywhere else.
	Failures *FailuresRequest `json:"failures,omitempty"`

	// Execution controls. These do NOT participate in the result-cache key:
	// they change how a job runs, not what it computes. SymReduce asks the
	// exhaustive engines to sweep one canonical representative per orbit of
	// the fabric's block symmetry group instead of all hosts! patterns —
	// the result is byte-identical wherever the reduction applies (and the
	// engine falls back to the full sweep where it does not), so a
	// symmetry-reduced verify and its full counterpart share one cache
	// entry.
	SymReduce bool  `json:"sym_reduce,omitempty"`
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	NoCache   bool  `json:"no_cache,omitempty"`
}

// CacheKey canonicalizes the result-determining fields into a stable
// string. Two requests with equal keys compute byte-identical responses,
// so the server may serve one from the other's cached result. Execution
// controls (timeout, cache directives) and the worker count are excluded:
// parallel sweeps are deterministic in their merged counters regardless of
// worker count, and sim trials already split work deterministically.
// The op is prefixed because the same topology tuple means different work
// on different endpoints.
func (q *Request) CacheKey(op string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|topo=%s,n=%d,m=%d,r=%d,ports=%d,levels=%d", op, q.Topo, q.N, q.M, q.R, q.Ports, q.Levels)
	fmt.Fprintf(&b, "|routing=%s,spray=%d", q.Routing, q.SprayWidth)
	fmt.Fprintf(&b, "|mode=%s,trials=%d,seed=%d,maxexh=%d,fb=%t", q.Mode, q.Trials, q.SeedValue(), q.MaxExhaustive, q.FirstBlocked)
	fmt.Fprintf(&b, "|restarts=%d,steps=%d", q.Restarts, q.Steps)
	fmt.Fprintf(&b, "|pattern=%s,flits=%d,pkts=%d,arbiter=%s,open=%t", q.Pattern, q.Flits, q.Pkts, q.Arbiter, q.OpenLoop)
	if len(q.ShardPrefix) > 0 {
		// Appended only when set so every pre-existing key is unchanged.
		fmt.Fprintf(&b, "|shard=%s", ShardID(q.ShardPrefix))
	}
	if len(q.SymShard) == 2 {
		// A sym shard computes a different partial result than the whole
		// sweep (or any prefix shard), so it keys separately. SymReduce
		// itself stays out of the key: a symmetry-reduced sweep's final
		// report is byte-identical to the full engine's.
		fmt.Fprintf(&b, "|symshard=%s", SymShardID(q.SymShard[0], q.SymShard[1]))
	}
	if q.Failures != nil {
		// Appended only when set so every pre-existing key is unchanged.
		fr := q.Failures
		fmt.Fprintf(&b, "|failures=%s,max=%d,samples=%d,ftrials=%d,schemes=%s,fsim=%t",
			fr.Scenario, fr.MaxFailures, fr.Samples, fr.Trials, strings.Join(fr.Schemes, "+"), fr.Sim)
	}
	return b.String()
}

// ShardID renders a shard prefix as the canonical dotted string used in
// cache keys, checkpoint keys, and progress events: "2.0.1" for prefix
// [2 0 1]. Empty prefix renders as "" (the whole space).
func ShardID(prefix []int) string {
	var b strings.Builder
	for i, d := range prefix {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	return b.String()
}

// SymShardID renders a symmetry-reduced shard range as the canonical
// string used in cache keys, checkpoint keys, and shard reports:
// "sym.2.5" for necklace indices [2, 5). The "sym." prefix keeps these
// IDs disjoint from prefix-shard IDs, which are digits and dots only.
func SymShardID(lo, hi int) string {
	return fmt.Sprintf("sym.%d.%d", lo, hi)
}

// SeedPtr returns v as a *int64, for constructing Request literals with an
// explicit seed (including the previously unrequestable seed 0).
func SeedPtr(v int64) *int64 { return &v }

// SeedValue resolves the request seed: nil (field absent) selects the
// CLI default of 1; any explicit value — zero included — is itself.
// CacheKey uses this resolution, so an absent seed and an explicit
// {"seed": 1} stay one cache entry, exactly as before the pointer change.
func (q *Request) SeedValue() int64 {
	if q.Seed == nil {
		return 1
	}
	return *q.Seed
}

// BatchRequest is the body of POST /v1/verify/batch: many verify points in
// one call. Items with identical canonical cache keys are deduplicated
// within the batch (one computation, every item answered); the rest fan
// out across the server's worker pool. TimeoutMs bounds the whole batch;
// NoCache bypasses the result store for every item (an individual item's
// no_cache does the same for just that item — it is never served a store
// hit, even when another item in the batch shares its canonical key).
type BatchRequest struct {
	Items     []Request `json:"items"`
	TimeoutMs int64     `json:"timeout_ms,omitempty"`
	NoCache   bool      `json:"no_cache,omitempty"`
}

// BatchItemReport is one item's outcome, at the same index as its request.
// Status is the HTTP status the item would have received on /v1/verify
// (200 with Result, or 400/429/500/504 with Error). One bad item never
// fails the batch: the batch-level status is 200 whenever the batch itself
// was well-formed and enqueueable.
type BatchItemReport struct {
	Status int `json:"status"`
	// Cache: hit (served from the result store) | miss (computed by this
	// batch) | dedup (identical to an earlier item in this batch; served
	// from its computation).
	Cache  string          `json:"cache,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// BatchReport is the POST /v1/verify/batch response. Items align
// one-to-one, in order, with the request's items.
type BatchReport struct {
	Items []BatchItemReport `json:"items"`
	// Unique counts the groups evaluated at most once: distinct canonical
	// keys among the valid items, with no_cache items grouped apart from
	// cacheable ones sharing their key. Deduplicated counts items answered
	// by another item's evaluation in this batch (never items of a
	// store-hit group); CacheHits counts items served from the result
	// store. The two are disjoint. JobsRun counts fresh computations this
	// batch scheduled.
	Unique       int `json:"unique"`
	Deduplicated int `json:"deduplicated"`
	CacheHits    int `json:"cache_hits"`
	JobsRun      int `json:"jobs_run"`
}

// SimReport is the simulation response and the `nbsim -json` output schema
// (EXPERIMENTS.md, "Metrics schema"). Exactly one of Closed, Sweep, Trials
// is populated, keyed by Mode.
type SimReport struct {
	Network        string `json:"network"`
	Hosts          int    `json:"hosts"`
	Routing        string `json:"routing"`
	PacketFlits    int    `json:"packet_flits"`
	PacketsPerPair int    `json:"packets_per_pair,omitempty"`
	Arbiter        string `json:"arbiter"`
	Mode           string `json:"mode"` // closed-loop | open-loop | random-trials
	Pattern        string `json:"pattern,omitempty"`

	Closed *ClosedReport          `json:"closed,omitempty"`
	Sweep  []sim.LoadSweepPoint   `json:"sweep,omitempty"`
	Trials *sim.ThroughputSummary `json:"trials,omitempty"`
}

// ClosedReport is the closed-loop (single structured pattern) section.
type ClosedReport struct {
	Pairs            int          `json:"pairs"`
	ContendedLinks   int          `json:"contended_links"`
	MaxLinkLoad      int          `json:"max_link_load"`
	Makespan         int64        `json:"makespan"`
	CrossbarMakespan int64        `json:"crossbar_makespan"`
	Slowdown         float64      `json:"slowdown"`
	MeanLatency      float64      `json:"mean_latency"`
	Metrics          *sim.Metrics `json:"metrics,omitempty"`
}

// VerifyReport is the POST /v1/verify response.
type VerifyReport struct {
	Network string `json:"network"`
	Hosts   int    `json:"hosts"`
	Routing string `json:"routing"`
	// Method records which engine decided: lemma1-exact | exhaustive |
	// exhaustive-first-blocked | exhaustive-parallel | random.
	Method string `json:"method"`
	// Verdict: nonblocking (exact) | blocking (exact or witnessed) |
	// no-blocking-found (sweep exhausted without a contended pattern;
	// exact only if the sweep was exhaustive).
	Verdict string `json:"verdict"`
	// Exact is true when the verdict is a proof (Lemma-1 analysis or a
	// completed exhaustive sweep), false for randomized sampling.
	Exact bool `json:"exact"`
	// Sweep statistics (zero for the Lemma-1 path).
	Tested      int `json:"tested,omitempty"`
	Blocked     int `json:"blocked,omitempty"`
	MaxLinkLoad int `json:"max_link_load,omitempty"`
	// Witness is a concrete blocked permutation ("0->3 1->2 ...") when the
	// verdict is blocking.
	Witness string `json:"witness,omitempty"`
}

// WorstCaseReport is the POST /v1/worstcase response.
type WorstCaseReport struct {
	Network        string `json:"network"`
	Hosts          int    `json:"hosts"`
	Routing        string `json:"routing"`
	ContendedLinks int    `json:"contended_links"`
	MaxLinkLoad    int    `json:"max_link_load"`
	Evaluated      int    `json:"evaluated"`
	// Permutation is the most-contended pattern found.
	Permutation string `json:"permutation,omitempty"`
}

// ShardReport is the POST /v1/verify/shard response: the raw SweepResult
// of one prefix shard, before any merging. FirstBlocked is the shard's
// first blocked pattern in its engine's enumeration order ("0->3 1->2 ...",
// empty when none); RouteErr carries a routing failure the shard hit
// (shard-level data, not an HTTP error, so the coordinator can tell
// "finished, found a route error" from transport failures).
type ShardReport struct {
	Network      string `json:"network"`
	Hosts        int    `json:"hosts"`
	Routing      string `json:"routing"`
	Shard        string `json:"shard"` // ShardID form, or SymShardID ("sym.lo.hi") for sym shards
	Tested       int    `json:"tested"`
	Blocked      int    `json:"blocked"`
	MaxLinkLoad  int    `json:"max_link_load"`
	FirstBlocked string `json:"first_blocked,omitempty"`
	RouteErr     string `json:"route_err,omitempty"`
}

// SweepAccepted is the immediate POST /v1/verify/sweep response: the
// sweep runs as a tracked job, and the client follows its progress via
// the returned URLs. Resumed counts shards restored from store
// checkpoints rather than dispatched.
type SweepAccepted struct {
	JobID     string `json:"job_id"`
	Shards    int    `json:"shards"`
	Workers   int    `json:"workers"` // 0 = local in-process sweep
	Resumed   int    `json:"resumed"`
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
}

// SweepStatus is the GET /v1/jobs/{id} response and the payload of every
// SSE `progress` event on GET /v1/jobs/{id}/events. Counters are
// monotonically non-decreasing over a job's lifetime. State: running |
// done | failed. Result holds the final VerifyReport (byte-identical to
// the single-process engine's) once State is done; Error the failure
// message once State is failed.
type SweepStatus struct {
	JobID       string          `json:"job_id"`
	State       string          `json:"state"`
	ShardsTotal int             `json:"shards_total"`
	ShardsDone  int             `json:"shards_done"`
	Resumed     int             `json:"resumed"`
	Tested      int64           `json:"tested"`
	Blocked     int64           `json:"blocked"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

// FailuresRequest configures a fault-injection campaign (POST
// /v1/failures): for every failure count k = 0..max_failures it draws
// `samples` failure sets of the scenario, rebuilds each fault-aware
// routing scheme against each set, and measures `trials` random
// permutations per set, reporting a degradation curve per scheme.
type FailuresRequest struct {
	// Scenario: links (k random trunk cables) | tops (k random top
	// switches) | tops-correlated (a contiguous block of k tops — a
	// shared power/firmware domain) | pods (k whole bottom switches with
	// their hosts).
	Scenario string `json:"scenario"`
	// MaxFailures is the largest failure count k swept; 0 means the
	// server default.
	MaxFailures int `json:"max_failures,omitempty"`
	// Samples is the number of failure sets drawn per k ≥ 1 (k = 0 runs
	// once — the pristine fabric needs no sampling).
	Samples int `json:"samples,omitempty"`
	// Trials is the number of random permutations measured per failure
	// set per scheme.
	Trials int `json:"trials,omitempty"`
	// Schemes are campaign scheme names (adaptive-avoiding |
	// spared-deterministic | naive-remap | local-reroute); empty selects
	// all four.
	Schemes []string `json:"schemes,omitempty"`
	// Sim additionally runs an open-loop simulation at offered load 1.0
	// per failure set and reports the mean accepted load.
	Sim bool `json:"sim,omitempty"`
}

// FailuresReport is the POST /v1/failures response: one degradation curve
// per routing scheme. Curves are ordered as requested and points by
// ascending failure count.
type FailuresReport struct {
	Network     string         `json:"network"`
	Hosts       int            `json:"hosts"`
	Scenario    string         `json:"scenario"`
	MaxFailures int            `json:"max_failures"`
	Samples     int            `json:"samples"`
	Trials      int            `json:"trials"`
	Seed        int64          `json:"seed"`
	Sim         bool           `json:"sim"`
	Curves      []FailureCurve `json:"curves"`
}

// FailureCurve is one scheme's nonblocking-margin-vs-failures curve.
type FailureCurve struct {
	Scheme string         `json:"scheme"`
	Points []FailurePoint `json:"points"`
}

// FailurePoint aggregates every sampled failure set with k failures for
// one scheme.
type FailurePoint struct {
	// Failures is k, the failure count of this point.
	Failures int `json:"failures"`
	// Samples is the number of failure sets aggregated here.
	Samples int `json:"samples"`
	// RouterFailures counts samples where the scheme could not even be
	// instantiated (e.g. spares exhausted) — every pattern of such a
	// sample is lost and is also counted in RouteFailures.
	RouterFailures int `json:"router_failures,omitempty"`
	// Patterns is the total number of patterns tested (samples × trials).
	Patterns int `json:"patterns"`
	// RouteFailures counts patterns the scheme failed to route at all.
	RouteFailures int `json:"route_failures,omitempty"`
	// Blocked counts routed patterns with link contention.
	Blocked int `json:"blocked"`
	// DegradedFrac is the fraction of patterns that were blocked or
	// unroutable: (Blocked+RouteFailures)/Patterns — the "nonblocking
	// margin" is its complement.
	DegradedFrac float64 `json:"degraded_frac"`
	// MaxLinkLoad is the worst link load over all routed patterns.
	MaxLinkLoad int `json:"max_link_load"`
	// MeanMaxLoad averages each routed pattern's max link load.
	MeanMaxLoad float64 `json:"mean_max_load"`
	// AcceptedLoad is the mean open-loop accepted load at offered 1.0
	// over simulated samples (Sim only; 0 when disabled or nothing
	// simulated). MinAcceptedLoad is the worst sample.
	AcceptedLoad    float64 `json:"accepted_load,omitempty"`
	MinAcceptedLoad float64 `json:"min_accepted_load,omitempty"`
}

// ErrorReport is the JSON body of every non-2xx nbserve response.
type ErrorReport struct {
	Error string `json:"error"`
}
