package store

import (
	"container/list"
	"sync"
)

// Memory is a fixed-capacity LRU over encoded response bodies. A hit is a
// single map lookup plus a list splice — no sweep, no re-encoding.
// Eviction is strictly least-recently-used (Get refreshes recency).
type Memory struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *entry
	items map[string]*list.Element
}

type entry struct {
	key  string
	body []byte
}

// Entry is one stored key/value pair, exported for log compaction and
// tests.
type Entry struct {
	Key  string
	Body []byte
}

// NewMemory returns an empty LRU holding at most max entries (minimum 1).
func NewMemory(max int) *Memory {
	if max < 1 {
		max = 1
	}
	return &Memory{max: max, order: list.New(), items: make(map[string]*list.Element, max)}
}

// Get returns the cached body for key, refreshing its recency.
func (c *Memory) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry).body, true
}

// Put inserts body under key, evicting the least-recently-used entry when
// over capacity. Re-inserting an existing key refreshes it.
func (c *Memory) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry{key: key, body: body})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
	}
}

// Len reports the current entry count.
func (c *Memory) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Close is a no-op; Memory holds no external resources.
func (c *Memory) Close() error { return nil }

// Entries returns the current contents, least-recently-used first, so a
// replay of Put calls in this order reconstructs the same LRU state. Used
// by the File backend's log compaction.
func (c *Memory) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		out = append(out, Entry{Key: e.key, Body: e.body})
	}
	return out
}
