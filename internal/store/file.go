package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// File is the embedded persistent backend: a Memory LRU mirrored to an
// append-only log of JSON records, one per Put. On open the log is
// replayed in order through the same LRU (later records override earlier
// ones, the capacity bound evicts the oldest), then rewritten compacted,
// so a restarted server starts with exactly the live entries of the old
// one. Recency gained by Gets is not logged — across a restart the LRU
// order degrades to insertion order, which is the usual persistence
// trade-off for a cache and never changes any stored value.
//
// Torn tails are tolerated: a record that fails to parse (a crash mid-
// append) ends the replay and is dropped by the next compaction. Log
// write errors never fail a Put — the store degrades to memory-only and
// reports the first error from Close.
type File struct {
	mu      sync.Mutex
	mem     *Memory
	f       *os.File
	w       *bufio.Writer
	path    string
	records int   // records in the log, including stale overwrites
	err     error // first append/compact failure, surfaced by Close
}

// record is one log line. Body round-trips through encoding/json's
// base64, so arbitrary response bytes are newline-safe.
type record struct {
	K string `json:"k"`
	V []byte `json:"v"`
}

// compactFactor bounds log growth: when the log holds more than
// compactFactor times the live entry count (and more than compactMin
// records), it is rewritten with only the live entries.
const (
	compactFactor = 4
	compactMin    = 64
)

// NewFile opens (or creates) the log at path and replays it into an LRU
// of at most max entries. The replayed state is compacted back to disk
// immediately, so startup cost is proportional to the log, and the log
// after open is proportional to the live entries.
func NewFile(path string, max int) (*File, error) {
	s := &File{mem: NewMemory(max), path: path}
	if err := s.replay(); err != nil {
		return nil, fmt.Errorf("store: replay %s: %w", path, err)
	}
	if err := s.compact(); err != nil {
		return nil, fmt.Errorf("store: compact %s: %w", path, err)
	}
	return s, nil
}

// replay loads every parseable record in order. A missing file is an
// empty store; a malformed record ends the replay (torn tail).
func (s *File) replay() error {
	f, err := os.Open(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	// ReadBytes has no line-size cap (a Scanner limit would turn one large
	// stored body into a mid-file error, silently dropping — and then
	// compacting away — every valid record after it). A record missing its
	// trailing newline (crash mid-append) still arrives with io.EOF and is
	// parsed if complete.
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			var r record
			if json.Unmarshal(line, &r) != nil || r.K == "" {
				break
			}
			s.mem.Put(r.K, r.V)
		}
		if err != nil {
			break
		}
	}
	// Read errors are treated like a torn tail: keep what replayed cleanly.
	return nil
}

// compact atomically rewrites the log with only the live entries, LRU
// order preserved, and swaps the append handle to the new file.
func (s *File) compact() error {
	tmp, err := os.CreateTemp(dirOf(s.path), ".nbstore-*")
	if err != nil {
		return err
	}
	w := bufio.NewWriter(tmp)
	entries := s.mem.Entries()
	for _, e := range entries {
		if err := writeRecord(w, e.Key, e.Body); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if s.f != nil {
		s.f.Close()
	}
	s.f = tmp
	s.w = bufio.NewWriter(s.f)
	s.records = len(entries)
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i+1]
		}
	}
	return "."
}

func writeRecord(w *bufio.Writer, key string, body []byte) error {
	line, err := json.Marshal(record{K: key, V: body})
	if err != nil {
		return err
	}
	if _, err := w.Write(line); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// Get returns the stored body for key, refreshing its in-memory recency.
func (s *File) Get(key string) ([]byte, bool) { return s.mem.Get(key) }

// Put stores body under key and appends it to the log. Append failures
// leave the in-memory store correct and are reported by Close.
func (s *File) Put(key string, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem.Put(key, body)
	if err := writeRecord(s.w, key, body); err != nil {
		s.fail(err)
		return
	}
	if err := s.w.Flush(); err != nil {
		s.fail(err)
		return
	}
	s.records++
	if s.records > compactMin && s.records > compactFactor*s.mem.Len() {
		if err := s.compact(); err != nil {
			s.fail(err)
		}
	}
}

func (s *File) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Len reports the current live entry count.
func (s *File) Len() int { return s.mem.Len() }

// Close flushes and closes the log, returning the first deferred write
// error if any occurred.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return s.err
	}
	if err := s.w.Flush(); err != nil {
		s.fail(err)
	}
	if err := s.f.Sync(); err != nil {
		s.fail(err)
	}
	if err := s.f.Close(); err != nil {
		s.fail(err)
	}
	s.f = nil
	return s.err
}
