// Package store provides the nbserve result store: a small key/value
// interface over encoded response bodies, keyed by the canonicalized
// request (api.Request.CacheKey). Two backends implement it — Memory, a
// fixed-capacity in-process LRU, and File, the same LRU mirrored to an
// append-only log so completed results survive a restart. The server picks
// one at startup (`nbserve -store memory|file`); everything above the
// interface is backend-agnostic, which is what lets the batch endpoint and
// the single-request handlers share one caching policy.
package store

// Store is a pluggable result store. Implementations must be safe for
// concurrent use. Values are immutable once inserted: callers hand over
// the byte slice and must not mutate it afterwards, and must treat
// returned slices as read-only (both backends return the stored slice
// without copying).
type Store interface {
	// Get returns the stored body for key, refreshing its recency.
	Get(key string) ([]byte, bool)
	// Put inserts body under key, evicting the least-recently-used entry
	// when over capacity. Re-inserting an existing key refreshes it.
	Put(key string, body []byte)
	// Len reports the current entry count.
	Len() int
	// Close releases backend resources (flushes the log for File; a no-op
	// for Memory). The store must not be used after Close.
	Close() error
}
