package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// openFunc builds a fresh store with the given capacity. The conformance
// suite runs against every backend through this seam.
type openFunc func(t *testing.T, max int) Store

func openMemory(t *testing.T, max int) Store { return NewMemory(max) }

func openFile(t *testing.T, max int) Store {
	s, err := NewFile(filepath.Join(t.TempDir(), "results.log"), max)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testConformance is the backend-agnostic contract: every Store must pass
// it identically. Run under -race the Concurrent case is the data-race
// gate for the backend.
func testConformance(t *testing.T, open openFunc) {
	t.Run("PutGet", func(t *testing.T) {
		s := open(t, 4)
		defer s.Close()
		if _, ok := s.Get("missing"); ok {
			t.Fatal("hit on empty store")
		}
		s.Put("a", []byte("1"))
		if v, ok := s.Get("a"); !ok || string(v) != "1" {
			t.Fatalf("get a = %q, %t", v, ok)
		}
		if s.Len() != 1 {
			t.Fatalf("len %d", s.Len())
		}
	})

	t.Run("Overwrite", func(t *testing.T) {
		s := open(t, 4)
		defer s.Close()
		s.Put("k", []byte("old"))
		s.Put("k", []byte("new"))
		if v, _ := s.Get("k"); string(v) != "new" {
			t.Fatalf("overwrite lost: %q", v)
		}
		if s.Len() != 1 {
			t.Fatalf("overwrite duplicated: len %d", s.Len())
		}
	})

	t.Run("LRUEviction", func(t *testing.T) {
		s := open(t, 2)
		defer s.Close()
		s.Put("a", []byte("1"))
		s.Put("b", []byte("2"))
		if _, ok := s.Get("a"); !ok { // refresh a; b becomes LRU
			t.Fatal("a missing")
		}
		s.Put("c", []byte("3"))
		if _, ok := s.Get("b"); ok {
			t.Fatal("b should have been evicted")
		}
		if v, ok := s.Get("a"); !ok || string(v) != "1" {
			t.Fatal("a lost")
		}
		if v, ok := s.Get("c"); !ok || string(v) != "3" {
			t.Fatal("c lost")
		}
		if s.Len() != 2 {
			t.Fatalf("len %d", s.Len())
		}
	})

	t.Run("Concurrent", func(t *testing.T) {
		s := open(t, 64)
		defer s.Close()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					key := fmt.Sprintf("k%d", i%16)
					body := []byte(fmt.Sprintf("g%d-i%d", g, i))
					s.Put(key, body)
					if v, ok := s.Get(key); ok && len(v) == 0 {
						t.Errorf("empty body for %s", key)
					}
					s.Len()
				}
			}(g)
		}
		wg.Wait()
		if s.Len() != 16 {
			t.Fatalf("len %d after concurrent churn, want 16", s.Len())
		}
	})
}

func TestMemoryConformance(t *testing.T) { testConformance(t, openMemory) }
func TestFileConformance(t *testing.T)   { testConformance(t, openFile) }

// TestFilePersistRestart is the restart contract: entries put before Close
// are hits after reopening the same path, and the capacity bound holds
// across the restart (the oldest insertion is evicted on replay).
func TestFilePersistRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s, err := NewFile(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Put("c", []byte("3")) // evicts a
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewFile(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Get("a"); ok {
		t.Fatal("evicted entry resurrected by restart")
	}
	if v, ok := r.Get("b"); !ok || string(v) != "2" {
		t.Fatalf("b after restart: %q, %t", v, ok)
	}
	if v, ok := r.Get("c"); !ok || string(v) != "3" {
		t.Fatalf("c after restart: %q, %t", v, ok)
	}
	if r.Len() != 2 {
		t.Fatalf("len %d after restart", r.Len())
	}
}

// TestFileTornTail simulates a crash mid-append: a garbage trailing line
// is dropped on replay and every intact record survives.
func TestFileTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s, err := NewFile(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"k":"torn","v":"aGFsZi13cml0`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := NewFile(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("len %d after torn tail, want 2", r.Len())
	}
	if _, ok := r.Get("torn"); ok {
		t.Fatal("torn record resurrected")
	}
	if v, ok := r.Get("b"); !ok || string(v) != "2" {
		t.Fatalf("intact record lost: %q, %t", v, ok)
	}
}

// TestFileLargeRecordReplay guards replay against any line-size cap: a
// stored body bigger than a scanner-style fixed buffer (17MB here, ~23MB
// as a base64 JSON line) must survive a restart, and — the worse failure —
// must not end replay early and silently drop, then compact away, every
// valid record written after it.
func TestFileLargeRecordReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s, err := NewFile(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 17<<20)
	s.Put("before", []byte("1"))
	s.Put("big", big)
	s.Put("after", []byte("2"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewFile(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 3 {
		t.Fatalf("len %d after restart, want 3", r.Len())
	}
	if v, ok := r.Get("big"); !ok || !bytes.Equal(v, big) {
		t.Fatalf("large record lost (ok=%t, %d bytes)", ok, len(v))
	}
	if v, ok := r.Get("after"); !ok || string(v) != "2" {
		t.Fatalf("record after the large one lost: %q, %t", v, ok)
	}
}

// TestFileCompaction overwrites one key far past the compaction
// threshold and checks the on-disk log stays proportional to the live
// entries instead of the put count.
func TestFileCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s, err := NewFile(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 1000; i++ {
		s.Put("hot", body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// One live 100-byte record is ~160 bytes encoded; the compaction
	// threshold allows a few hundred stale records at most, never 1000.
	if fi.Size() > 64*1024 {
		t.Fatalf("log grew to %d bytes for one live entry", fi.Size())
	}
	r, err := NewFile(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, ok := r.Get("hot"); !ok || !bytes.Equal(v, body) {
		t.Fatal("compaction lost the live entry")
	}
}

// TestMemoryEntriesOrder pins the Entries contract the File compaction
// depends on: least-recently-used first, so replaying the sequence of
// Puts reconstructs the same LRU.
func TestMemoryEntriesOrder(t *testing.T) {
	m := NewMemory(3)
	m.Put("a", []byte("1"))
	m.Put("b", []byte("2"))
	m.Put("c", []byte("3"))
	m.Get("a") // a becomes most recent
	got := m.Entries()
	want := []string{"b", "c", "a"}
	if len(got) != len(want) {
		t.Fatalf("entries %v", got)
	}
	for i, k := range want {
		if got[i].Key != k {
			t.Fatalf("entries order %v, want %v", got, want)
		}
	}
	// Replaying into a fresh LRU reproduces the eviction victim.
	r := NewMemory(3)
	for _, e := range got {
		r.Put(e.Key, e.Body)
	}
	r.Put("d", []byte("4")) // should evict b, the LRU
	if _, ok := r.Get("b"); ok {
		t.Fatal("replayed LRU evicted the wrong entry")
	}
}

// TestCheckpointKeyDisjoint: checkpoint keys can never collide with
// result keys (ops never start with "ckpt|") and are unique per
// (sweep, shard).
func TestCheckpointKeyDisjoint(t *testing.T) {
	k := CheckpointKey("verify|topo=ftree,n=2", "0.1")
	if !strings.HasPrefix(k, "ckpt|") {
		t.Fatalf("key %q lacks the reserved prefix", k)
	}
	if k == CheckpointKey("verify|topo=ftree,n=2", "0.2") {
		t.Fatal("shards share a checkpoint key")
	}
	if k == CheckpointKey("verify|topo=ftree,n=3", "0.1") {
		t.Fatal("sweeps share a checkpoint key")
	}
}
