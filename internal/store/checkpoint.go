package store

// Sweep checkpoints ride the same Store as cached results: the
// coordinator Puts each completed shard's encoded ShardReport under a
// reserved key derived from the sweep's canonical cache key, and on
// restart Gets each planned shard's key back before dispatching anything.
// No scan operation is needed — the shard plan is deterministic, so
// resume is a fixed set of point lookups. The "ckpt|" prefix cannot
// collide with result keys, which always start with an endpoint op name
// ("verify|...", "sim|...").

// CheckpointKey is the store key for one shard's checkpoint within a
// sweep: sweepKey is the sweep's canonical cache key
// (api.Request.CacheKey), shard the dotted prefix (api.ShardID).
func CheckpointKey(sweepKey, shard string) string {
	return "ckpt|" + sweepKey + "|" + shard
}
